# QB2OLAP-Go build and experiment targets. Everything is stdlib-only;
# no tools beyond the Go toolchain are required.

GO ?= go

.PHONY: all build test race cover bench fuzz examples experiments clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./... .

race:
	$(GO) test -race ./... .

cover:
	$(GO) test -cover ./internal/...

# The experiment harness of EXPERIMENTS.md (one benchmark per figure /
# claim of the paper).
bench:
	$(GO) test -run xxx -bench . -benchmem -timeout 60m .

# Short fuzzing pass over all four parsers.
fuzz:
	$(GO) test -fuzz FuzzParse$$ -fuzztime 30s ./internal/turtle/
	$(GO) test -fuzz FuzzParseNQuads -fuzztime 15s ./internal/turtle/
	$(GO) test -fuzz FuzzParseQuery -fuzztime 30s ./internal/sparql/
	$(GO) test -fuzz FuzzParseUpdate -fuzztime 15s ./internal/sparql/
	$(GO) test -fuzz FuzzParse -fuzztime 15s ./internal/ql/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/externallink
	$(GO) run ./examples/endpointdemo
	$(GO) run ./examples/migration -obs 20000

# Regenerate the outputs recorded in the repository.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -run xxx -bench . -benchmem -timeout 60m . 2>&1 | tee bench_output.txt

clean:
	$(GO) clean -testcache
