# QB2OLAP-Go build and experiment targets. Everything is stdlib-only;
# no tools beyond the Go toolchain are required.

GO ?= go

.PHONY: all build test race cover bench bench-json bench-concurrent fuzz examples experiments obs-smoke clean

# The default check builds, vets, and runs the whole test suite under
# the race detector: the engine evaluates queries on a worker pool and
# the endpoint serves queries without locks, so every CI pass
# revalidates the concurrency invariants (TestConcurrentQueryUpdate,
# TestParallelMatchesSequential, ...). Benchmarks are not run here; the
# 80k-observation fixtures additionally sit behind a -short guard so a
# `go test -short -bench .` smoke pass stays fast.
all: build race obs-smoke bench-json

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./... .

race:
	$(GO) test -race ./... .

cover:
	$(GO) test -cover ./internal/...

# The experiment harness of EXPERIMENTS.md (one benchmark per figure /
# claim of the paper).
bench:
	$(GO) test -run xxx -bench . -benchmem -timeout 60m .

# Machine-readable benchmark snapshot: one fast pass (-short,
# -benchtime 1x) over every benchmark, converted to JSON by
# cmd/benchjson and committed as BENCH_PR3.json so regressions show up
# in review diffs. Use `make bench` for real measurements.
bench-json:
	$(GO) test -run xxx -bench . -benchmem -short -benchtime 1x . \
	  | $(GO) run ./cmd/benchjson -o BENCH_PR3.json

# The A-next concurrent-load experiment alone (EXPERIMENTS.md): Mary
# query throughput vs. client count at engine parallelism 1 and
# GOMAXPROCS on the 80k-observation cube.
bench-concurrent:
	$(GO) test -run xxx -bench 'BenchmarkConcurrentQuery|BenchmarkParallelGroupBy' -timeout 30m .

# Observability smoke test: boots sparqld on the demo cube with a
# tracer and a debug listener, then drives /metrics, /debug/vars, and a
# traced (?explain=1) query over HTTP. curl -f fails the target on any
# non-200 response; the trap tears the server down either way.
obs-smoke:
	@set -e; \
	$(GO) build -o /tmp/sparqld-smoke ./cmd/sparqld; \
	/tmp/sparqld-smoke -addr 127.0.0.1:18080 -demo 1000 -trace 8 -debug-addr 127.0.0.1:18081 >/tmp/sparqld-smoke.log 2>&1 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
	  curl -fsS -o /dev/null http://127.0.0.1:18081/metrics 2>/dev/null && break; sleep 0.1; \
	done; \
	curl -fsS http://127.0.0.1:18081/metrics >/dev/null; \
	curl -fsS http://127.0.0.1:18081/debug/vars >/dev/null; \
	curl -fsS --get http://127.0.0.1:18080/sparql \
	  --data-urlencode 'explain=1' \
	  --data-urlencode 'query=SELECT ?s WHERE { ?s ?p ?o } LIMIT 5' | grep -q 'BGP'; \
	curl -fsS http://127.0.0.1:18081/debug/traces | grep -q 'SELECT'; \
	echo "obs-smoke: ok"

# Short fuzzing pass over all four parsers.
fuzz:
	$(GO) test -fuzz FuzzParse$$ -fuzztime 30s ./internal/turtle/
	$(GO) test -fuzz FuzzParseNQuads -fuzztime 15s ./internal/turtle/
	$(GO) test -fuzz FuzzParseQuery -fuzztime 30s ./internal/sparql/
	$(GO) test -fuzz FuzzParseUpdate -fuzztime 15s ./internal/sparql/
	$(GO) test -fuzz FuzzParse -fuzztime 15s ./internal/ql/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/externallink
	$(GO) run ./examples/endpointdemo
	$(GO) run ./examples/migration -obs 20000

# Regenerate the outputs recorded in the repository.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -run xxx -bench . -benchmem -timeout 60m . 2>&1 | tee bench_output.txt

clean:
	$(GO) clean -testcache
