# QB2OLAP-Go build and experiment targets. Everything is stdlib-only;
# no tools beyond the Go toolchain are required.

GO ?= go

.PHONY: all build test race cover bench bench-concurrent fuzz examples experiments clean

# The default check builds, vets, and runs the whole test suite under
# the race detector: the engine evaluates queries on a worker pool and
# the endpoint serves queries without locks, so every CI pass
# revalidates the concurrency invariants (TestConcurrentQueryUpdate,
# TestParallelMatchesSequential, ...). Benchmarks are not run here; the
# 80k-observation fixtures additionally sit behind a -short guard so a
# `go test -short -bench .` smoke pass stays fast.
all: build race

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./... .

race:
	$(GO) test -race ./... .

cover:
	$(GO) test -cover ./internal/...

# The experiment harness of EXPERIMENTS.md (one benchmark per figure /
# claim of the paper).
bench:
	$(GO) test -run xxx -bench . -benchmem -timeout 60m .

# The A-next concurrent-load experiment alone (EXPERIMENTS.md): Mary
# query throughput vs. client count at engine parallelism 1 and
# GOMAXPROCS on the 80k-observation cube.
bench-concurrent:
	$(GO) test -run xxx -bench 'BenchmarkConcurrentQuery|BenchmarkParallelGroupBy' -timeout 30m .

# Short fuzzing pass over all four parsers.
fuzz:
	$(GO) test -fuzz FuzzParse$$ -fuzztime 30s ./internal/turtle/
	$(GO) test -fuzz FuzzParseNQuads -fuzztime 15s ./internal/turtle/
	$(GO) test -fuzz FuzzParseQuery -fuzztime 30s ./internal/sparql/
	$(GO) test -fuzz FuzzParseUpdate -fuzztime 15s ./internal/sparql/
	$(GO) test -fuzz FuzzParse -fuzztime 15s ./internal/ql/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/externallink
	$(GO) run ./examples/endpointdemo
	$(GO) run ./examples/migration -obs 20000

# Regenerate the outputs recorded in the repository.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -run xxx -bench . -benchmem -timeout 60m . 2>&1 | tee bench_output.txt

clean:
	$(GO) clean -testcache
