# QB2OLAP-Go build and experiment targets. Everything is stdlib-only;
# no tools beyond the Go toolchain are required.

GO ?= go

.PHONY: all build test race cover bench bench-json bench-compare bench-concurrent bench-slo fuzz fuzz-smoke chaos examples experiments obs-smoke clean

# The default check builds, vets, and runs the whole test suite under
# the race detector: the engine evaluates queries on a worker pool and
# the endpoint serves queries without locks, so every CI pass
# revalidates the concurrency invariants (TestConcurrentQueryUpdate,
# TestParallelMatchesSequential, ...). Benchmarks are not run here; the
# 80k-observation fixtures additionally sit behind a -short guard so a
# `go test -short -bench .` smoke pass stays fast.
all: build race chaos fuzz-smoke obs-smoke bench-slo bench-json bench-compare

build:
	$(GO) build ./...
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
	  staticcheck ./... ; \
	else \
	  echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./... .

race:
	$(GO) test -race ./... .

cover:
	$(GO) test -cover ./internal/...

# The experiment harness of EXPERIMENTS.md (one benchmark per figure /
# claim of the paper).
bench:
	$(GO) test -run xxx -bench . -benchmem -timeout 60m .

# Machine-readable benchmark snapshot: one fast pass (-short,
# -benchtime 1x) over every benchmark, converted to JSON by
# cmd/benchjson and committed as BENCH_PR10.json so regressions show up
# in review diffs. Use `make bench` for real measurements.
bench-json:
	$(GO) test -run xxx -bench . -benchmem -short -benchtime 1x . \
	  | $(GO) run ./cmd/benchjson -o BENCH_PR10.json

# Regression gates. First: diff the previous PR's committed snapshot
# against this PR's and fail on ns/op regressions. The tool's default
# threshold is 10%, but the committed snapshots are single-iteration
# (-benchtime 1x) smoke numbers whose parallel benchmarks swing ±40%
# run to run, so the gate here uses a noise-tolerant 50%; run `make
# bench` and benchjson -compare -threshold 0.10 on the output for real
# regression hunting. Second: the planner ablation gate — within this
# PR's snapshot, every planner=on sub-benchmark must stay within the
# threshold of its planner=off sibling, so turning the cost-based
# planner on by default can never ship a slowdown.
bench-compare:
	$(GO) run ./cmd/benchjson -compare -threshold 0.50 BENCH_PR7.json BENCH_PR10.json
	$(GO) run ./cmd/benchjson -ablation planner -threshold 0.50 BENCH_PR10.json

# SLO gate: boot sparqld on the demo cube, enrich it over HTTP, fire a
# short seeded mixed workload with `qb2olap bench` through the remote
# client, and gate the run report against the checked-in slo.json with
# `benchjson -slo`. Fails the build when the p99, error-rate, or
# shed-rate thresholds are violated. The thresholds are deliberately
# loose — this is a correctness gate (nothing errors, sheds stay
# bounded, latency is sane under 8 concurrent clients), not a
# performance benchmark; EXPERIMENTS.md A-load holds the real numbers.
bench-slo:
	@set -e; \
	$(GO) build -o /tmp/sparqld-slo ./cmd/sparqld; \
	$(GO) build -o /tmp/qb2olap-slo ./cmd/qb2olap; \
	$(GO) build -o /tmp/benchjson-slo ./cmd/benchjson; \
	/tmp/sparqld-slo -addr 127.0.0.1:18090 -demo 1000 >/tmp/sparqld-slo.log 2>&1 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
	  curl -fsS -o /dev/null http://127.0.0.1:18090/healthz 2>/dev/null && break; sleep 0.1; \
	done; \
	/tmp/qb2olap-slo bench -endpoint http://127.0.0.1:18090 -demo-enrich \
	  -mix 'ql=3,sparql=2,update=1' -mode closed -clients 8 -requests 200 \
	  -seed 42 -snapshot-interval 0 -report /tmp/bench-slo-report.json; \
	/tmp/benchjson-slo -slo slo.json /tmp/bench-slo-report.json; \
	echo "bench-slo: ok"

# The A-next concurrent-load experiment alone (EXPERIMENTS.md): Mary
# query throughput vs. client count at engine parallelism 1 and
# GOMAXPROCS on the 80k-observation cube.
bench-concurrent:
	$(GO) test -run xxx -bench 'BenchmarkConcurrentQuery|BenchmarkParallelGroupBy' -timeout 30m .

# Observability smoke test: boots sparqld on the demo cube with a
# tracer, trace export, a debug listener, and the metrics time-series
# sampler with slo.json as live alert rules, then drives /metrics
# (JSON and Prometheus text), /healthz, /readyz, /debug/vars, a traced
# (?explain=1) query, the workload-fingerprint view (/workload, both
# JSON and text), the time-series API (/timeseries), the alert state
# (/alerts), the HTML dashboard (/debug/dash, which must carry inline
# SVG), and the offline trace analyzer over the exported archive.
# A second short-lived server with an absurdly tight SLO (p99 ≤ 0.1µs)
# and sub-second burn-rate windows proves the alert pipeline actually
# fires under load — the negative test that guards against an
# evaluator that never transitions. curl -f fails the target on any
# non-200 response; the trap tears the servers down either way.
obs-smoke:
	@set -e; \
	$(GO) build -o /tmp/sparqld-smoke ./cmd/sparqld; \
	$(GO) build -o /tmp/qb2olap-smoke ./cmd/qb2olap; \
	rm -f /tmp/sparqld-smoke-traces.jsonl; \
	/tmp/sparqld-smoke -addr 127.0.0.1:18080 -demo 1000 -trace 8 -sample 1 \
	  -trace-export /tmp/sparqld-smoke-traces.jsonl \
	  -slo slo.json -tick 250ms \
	  -debug-addr 127.0.0.1:18081 >/tmp/sparqld-smoke.log 2>&1 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
	  curl -fsS -o /dev/null http://127.0.0.1:18081/metrics 2>/dev/null && break; sleep 0.1; \
	done; \
	curl -fsS http://127.0.0.1:18081/metrics >/dev/null; \
	curl -fsS -H 'Accept: text/plain' http://127.0.0.1:18081/metrics | grep -q '# TYPE'; \
	curl -fsS -H 'Accept: text/plain' http://127.0.0.1:18081/metrics | grep -q 'go_goroutines'; \
	curl -fsS http://127.0.0.1:18081/metrics | grep -q 'go_heap_inuse_bytes'; \
	curl -fsS http://127.0.0.1:18080/healthz | grep -q 'ok'; \
	curl -fsS http://127.0.0.1:18080/readyz | grep -q '"ready":true'; \
	curl -fsS http://127.0.0.1:18081/debug/vars >/dev/null; \
	curl -fsS --get http://127.0.0.1:18080/sparql \
	  --data-urlencode 'explain=1' \
	  --data-urlencode 'query=SELECT ?s WHERE { ?s ?p ?o } LIMIT 5' | grep -q 'BGP'; \
	curl -fsS --get http://127.0.0.1:18080/sparql \
	  --data-urlencode 'query=SELECT ?s WHERE { ?s ?p ?o } LIMIT 5' >/dev/null; \
	curl -fsS http://127.0.0.1:18081/debug/traces | grep -q 'SELECT'; \
	curl -fsS 'http://127.0.0.1:18080/workload?text=1' | grep -q 'workload:'; \
	curl -fsS http://127.0.0.1:18080/workload | grep -q '"shapes"'; \
	sleep 0.6; \
	curl -fsS 'http://127.0.0.1:18080/timeseries?window=1m' | grep -c '"series"' >/dev/null; \
	curl -fsS 'http://127.0.0.1:18080/timeseries?window=1m&name=queries_total' | grep -c 'queries_total' >/dev/null; \
	curl -fsS http://127.0.0.1:18080/alerts | grep -c '"rules"' >/dev/null; \
	curl -fsS http://127.0.0.1:18080/debug/dash | grep -c '<svg' >/dev/null; \
	curl -fsS http://127.0.0.1:18081/debug/dash | grep -c '<svg' >/dev/null; \
	/tmp/qb2olap-smoke monitor -endpoint http://127.0.0.1:18080 -once | grep -c 'qb2olap monitor' >/dev/null; \
	/tmp/qb2olap-smoke trace -in /tmp/sparqld-smoke-traces.jsonl -top 3 | grep -q 'Per-operator breakdown'; \
	printf '{"max_p99_ms": 0.0001}' > /tmp/slo-tight.json; \
	/tmp/sparqld-smoke -addr 127.0.0.1:18082 -demo 200 -tick 250ms \
	  -slo /tmp/slo-tight.json -alert-fast 1s -alert-slow 2s \
	  >/tmp/sparqld-smoke-alert.log 2>&1 & \
	pid2=$$!; trap 'kill $$pid $$pid2 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
	  curl -fsS -o /dev/null http://127.0.0.1:18082/healthz 2>/dev/null && break; sleep 0.1; \
	done; \
	for i in $$(seq 1 20); do \
	  curl -fsS -o /dev/null --get http://127.0.0.1:18082/sparql \
	    --data-urlencode 'query=SELECT ?s WHERE { ?s ?p ?o } LIMIT 5'; \
	  sleep 0.15; \
	done; \
	curl -fsS http://127.0.0.1:18082/alerts | grep -c '"firing": true' >/dev/null; \
	echo "obs-smoke: ok"

# The chaos suite: the queries/ corpus through endpoint.Remote against
# a fault-injected server (drop/5xx/slow/truncate/mixed profiles), plus
# the seeded cancellation property test on the Mary query. Both are
# deterministic (fixed injector and cancel-point seeds) and also run as
# part of the ordinary `race` suite; this target reruns them verbosely.
chaos:
	$(GO) test -run 'TestChaosQueryCorpus|TestQueryCancellationProperty' -count=1 -v .

# Quick fuzzing pass over the wire decoders every untrusted byte goes
# through: the W3C traceparent parser, the X-Qb2olap-Trace span-tree
# decoder, and the SPARQL results JSON decoder.
fuzz-smoke:
	$(GO) test -fuzz FuzzParseTraceparent -fuzztime 30s ./internal/obs/
	$(GO) test -fuzz FuzzDecodeSpanWire -fuzztime 30s ./internal/obs/
	$(GO) test -fuzz FuzzResultsFromJSON -fuzztime 30s ./internal/sparql/
	$(GO) test -fuzz FuzzResultsDecoder -fuzztime 30s ./internal/sparql/

# Short fuzzing pass over all four parsers.
fuzz:
	$(GO) test -fuzz FuzzParse$$ -fuzztime 30s ./internal/turtle/
	$(GO) test -fuzz FuzzParseNQuads -fuzztime 15s ./internal/turtle/
	$(GO) test -fuzz FuzzParseQuery -fuzztime 30s ./internal/sparql/
	$(GO) test -fuzz FuzzParseUpdate -fuzztime 15s ./internal/sparql/
	$(GO) test -fuzz FuzzParse -fuzztime 15s ./internal/ql/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/externallink
	$(GO) run ./examples/endpointdemo
	$(GO) run ./examples/migration -obs 20000

# Regenerate the outputs recorded in the repository.
experiments:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -run xxx -bench . -benchmem -timeout 60m . 2>&1 | tee bench_output.txt

clean:
	$(GO) clean -testcache
