// Package repro holds the repository-level benchmark harness: one
// benchmark per experiment of DESIGN.md's per-experiment index. The
// paper (an ICDE demo) publishes no numeric tables; these benchmarks
// regenerate the measurable artifacts behind its figures and claims —
// the enrichment workflow of Figure 2, the querying workflow of
// Figure 3, the direct-versus-alternative translation trade-off, and
// the scaling behaviour on the ≈80,000-observation demo subset.
// EXPERIMENTS.md records the measured outcomes.
package repro

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/demo"
	"repro/internal/endpoint"
	"repro/internal/enrich"
	"repro/internal/eurostat"
	"repro/internal/obs"
	"repro/internal/ql"
	"repro/internal/sparql"
	"repro/internal/store"
)

// skipIfShort keeps the 80k-observation (demo-scale) fixtures out of
// short runs, so `go test -short -bench .` stays a quick smoke pass and
// the tier-1 loop never builds the big fixtures.
func skipIfShort(b *testing.B, obs int) {
	b.Helper()
	if testing.Short() && obs >= 80000 {
		b.Skipf("skipping %d-observation fixture in -short mode", obs)
	}
}

// ---------------------------------------------------------------------
// Shared fixtures: generated datasets and enriched cubes per scale,
// built once and reused across benchmarks.

var (
	fixtureMu sync.Mutex
	rawStores = map[int]*fixtureRaw{}
	enriched  = map[int]*demo.Enriched{}
)

type fixtureRaw struct {
	data *eurostat.Dataset
}

func configFor(obs int) eurostat.Config {
	cfg := eurostat.DefaultConfig()
	cfg.TargetObservations = obs
	return cfg
}

// rawDataset returns the generated (un-enriched) dataset for a scale.
func rawDataset(b *testing.B, obs int) *eurostat.Dataset {
	b.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if f, ok := rawStores[obs]; ok {
		return f.data
	}
	d := eurostat.Generate(configFor(obs))
	rawStores[obs] = &fixtureRaw{data: d}
	return d
}

// enrichedEnv returns the fully enriched demo environment for a scale.
func enrichedEnv(b *testing.B, obs int) *demo.Enriched {
	b.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if e, ok := enriched[obs]; ok {
		return e
	}
	e, err := demo.Build(configFor(obs))
	if err != nil {
		b.Fatal(err)
	}
	enriched[obs] = e
	return e
}

const demoScale = 20000 // default per-op scale; the sweep covers 80k

// demoQuery is the paper's Section IV query.
const demoQuery = `
PREFIX data: <http://eurostat.linked-statistics.org/data/>
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asyl_appDim);
$C2 := SLICE ($C1, schema:sexDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := ROLLUP ($C3, schema:citizenDim, schema:continent);
$C5 := ROLLUP ($C4, schema:refPeriodDim, schema:year);
$C6 := DICE ($C5, (schema:citizenDim|schema:continent|schema:continentName = "Africa"));
$C7 := DICE ($C6, schema:geoDim|property:geo|schema:countryName = "France");
`

// ---------------------------------------------------------------------
// E2 / Figure 2 — the Enrichment module workflow.

// BenchmarkGeneration measures synthetic dataset generation (the
// substitute for downloading the Eurostat linked data subset).
func BenchmarkGeneration(b *testing.B) {
	for _, obs := range []int{1000, 5000, 20000, 80000} {
		b.Run(fmt.Sprintf("obs=%d", obs), func(b *testing.B) {
			skipIfShort(b, obs)
			for i := 0; i < b.N; i++ {
				d := eurostat.Generate(configFor(obs))
				if len(d.Observations) == 0 {
					b.Fatal("no observations")
				}
			}
		})
	}
}

// BenchmarkLoad measures bulk-loading the generated triples into the
// store (the "QB data set loaded into the endpoint" step).
func BenchmarkLoad(b *testing.B) {
	for _, obs := range []int{5000, 20000, 80000} {
		if testing.Short() && obs >= 80000 {
			continue
		}
		d := rawDataset(b, obs)
		b.Run(fmt.Sprintf("obs=%d", obs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st := newEmptyStore()
				loadDataset(st, d)
			}
		})
	}
}

// BenchmarkRedefinition measures the Redefinition phase: loading the QB
// DSD and producing the QB4OLAP skeleton.
func BenchmarkRedefinition(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enrich.NewSession(env.Client, eurostat.DSDIRI, enrich.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFDDiscovery measures candidate discovery (the FD scan) on
// the citizenship level.
func BenchmarkFDDiscovery(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	sess, err := enrich.NewSession(env.Client, eurostat.DSDIRI, enrich.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := sess.Suggest(eurostat.PropCitizen)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := enrich.FindCandidate(cands, eurostat.PropContinent); !ok {
			b.Fatal("continent not found")
		}
	}
}

// BenchmarkQuasiFDSweep (C5) measures discovery across noise rates,
// with the threshold opened up so the quasi-FD is still accepted.
func BenchmarkQuasiFDSweep(b *testing.B) {
	for _, noise := range []float64{0, 0.01, 0.02, 0.05, 0.10} {
		b.Run(fmt.Sprintf("noise=%.2f", noise), func(b *testing.B) {
			cfg := configFor(5000)
			cfg.QuasiFDNoise = noise
			st, _ := eurostat.NewStore(cfg)
			client := endpoint.NewLocal(st)
			opts := enrich.DefaultOptions()
			opts.QuasiFDThreshold = 0.2
			sess, err := enrich.NewSession(client, eurostat.DSDIRI, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands, err := sess.Suggest(eurostat.PropCitizen)
				if err != nil {
					b.Fatal(err)
				}
				c, ok := enrich.FindCandidate(cands, eurostat.PropContinent)
				if !ok || c.Kind != enrich.LevelCandidate {
					b.Fatalf("continent not accepted at noise %.2f", noise)
				}
			}
		})
	}
}

// BenchmarkTripleGeneration measures the Triple Generation phase for
// the full demo enrichment.
func BenchmarkTripleGeneration(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		schema, instances, err := env.Session.GenerateTriples()
		if err != nil {
			b.Fatal(err)
		}
		if len(schema) == 0 || len(instances) == 0 {
			b.Fatal("empty generation")
		}
	}
}

// BenchmarkEnrichmentPipeline measures the whole Figure 2 workflow:
// redefinition, iterative discovery and level addition, triple
// generation, and commit — on a fresh store each iteration.
func BenchmarkEnrichmentPipeline(b *testing.B) {
	for _, obs := range []int{5000, 20000, 80000} {
		if testing.Short() && obs >= 80000 {
			continue
		}
		d := rawDataset(b, obs)
		b.Run(fmt.Sprintf("obs=%d", obs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := newEmptyStore()
				loadDataset(st, d)
				client := endpoint.NewLocal(st)
				b.StartTimer()
				if _, err := demo.EnrichDataset(client); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// E3 / Figure 3 — the Querying module workflow.

// BenchmarkQLParse measures QL parsing of the demo program.
func BenchmarkQLParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ql.Parse(demoQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQLSimplify measures analysis plus the Query Simplification
// phase.
func BenchmarkQLSimplify(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	prog, err := ql.Parse(demoQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := ql.Analyze(prog, env.Schema)
		if err != nil {
			b.Fatal(err)
		}
		if s := ql.Simplify(a); len(s.Statements) == 0 {
			b.Fatal("empty simplification")
		}
	}
}

// BenchmarkQLTranslate measures the Query Translation phase (both
// SPARQL variants).
func BenchmarkQLTranslate(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := ql.Prepare(demoQuery, env.Schema)
		if err != nil {
			b.Fatal(err)
		}
		if p.Translation.Direct == "" || p.Translation.Alternative == "" {
			b.Fatal("missing translation")
		}
	}
}

// BenchmarkQLExecuteDirect measures the SPARQL Execution phase for the
// direct translation at demo scale.
func BenchmarkQLExecuteDirect(b *testing.B) {
	benchmarkExecute(b, ql.Direct)
}

// BenchmarkQLExecuteAlternative measures execution of the alternative
// translation at demo scale.
func BenchmarkQLExecuteAlternative(b *testing.B) {
	benchmarkExecute(b, ql.Alternative)
}

func benchmarkExecute(b *testing.B, v ql.Variant) {
	env := enrichedEnv(b, demoScale)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cube, err := ql.Execute(env.Client, p.Translation, v)
		if err != nil {
			b.Fatal(err)
		}
		if len(cube.Cells) == 0 {
			b.Fatal("empty cube")
		}
	}
}

// ---------------------------------------------------------------------
// A1 — direct versus alternative across dataset scales.

// BenchmarkDirectVsAlternative sweeps the observation count and runs
// both translations, exposing where (if anywhere) they cross over.
func BenchmarkDirectVsAlternative(b *testing.B) {
	for _, obs := range []int{1000, 5000, 20000, 80000} {
		if testing.Short() && obs >= 80000 {
			continue
		}
		env := enrichedEnv(b, obs)
		p, err := ql.Prepare(demoQuery, env.Schema)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range []ql.Variant{ql.Direct, ql.Alternative} {
			b.Run(fmt.Sprintf("obs=%d/%s", obs, v), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ql.Execute(env.Client, p.Translation, v); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// A2 / A-planner — cost-based planner ablation.

// plannerModes are the three evaluation configurations the ablations
// compare: the cost-based pre-evaluation planner (the default), the
// pre-planner runtime greedy reorder (planner=off), and fully textual
// order (planner=off/textual — the worst case the bench-compare
// ablation gate does not compare against).
var plannerModes = []struct {
	name   string
	engine func(st *store.Store) *sparql.Engine
}{
	{"planner=on", func(st *store.Store) *sparql.Engine {
		return sparql.NewEngine(st)
	}},
	{"planner=off", func(st *store.Store) *sparql.Engine {
		return sparql.NewEngine(st, sparql.WithPlanner(false))
	}},
	{"planner=off/textual", func(st *store.Store) *sparql.Engine {
		eng := sparql.NewEngine(st, sparql.WithPlanner(false))
		eng.DisableReorder = true
		return eng
	}},
}

// BenchmarkPlannerAblation runs the direct demo query under each
// planner mode. The generated query is already well ordered, so this is
// the no-regression side of the gate: planner=on must not lose to
// planner=off beyond the bench-compare threshold.
func BenchmarkPlannerAblation(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	q, err := sparql.ParseQuery(p.Translation.Direct)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range plannerModes {
		b.Run(mode.name, func(b *testing.B) {
			eng := mode.engine(env.Store)
			for i := 0; i < b.N; i++ {
				res, err := eng.Select(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}

// BenchmarkPlannerAblationAdversarial reverses the generated query's
// basic graph pattern so the textual order starts from the small
// disconnected dimension patterns. Textual evaluation forces cartesian
// intermediate results; both the runtime reorder and the cost-based
// planner recover the order. A small dataset keeps the textual case
// tractable.
func BenchmarkPlannerAblationAdversarial(b *testing.B) {
	env := enrichedEnv(b, 2000)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	adversarial := reverseBGP(p.Translation.Direct)
	q, err := sparql.ParseQuery(adversarial)
	if err != nil {
		b.Fatalf("%v\n%s", err, adversarial)
	}
	for _, mode := range plannerModes {
		b.Run(mode.name, func(b *testing.B) {
			eng := mode.engine(env.Store)
			for i := 0; i < b.N; i++ {
				res, err := eng.Select(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}

// BenchmarkPlannerOnOff is the end-to-end planner gate: the full QL
// execution path with the planner on (translation auto-selected by
// estimated cost, joins pre-ordered, filters pushed) versus off (the
// pre-planner default: direct translation, runtime greedy reorder).
// bench-compare's ablation mode pins planner=on to within the
// threshold of planner=off.
func BenchmarkPlannerOnOff(b *testing.B) {
	for _, obs := range []int{demoScale, 80000} {
		skipIfShort(b, obs)
		env := enrichedEnv(b, obs)
		for _, mode := range []struct {
			name string
			on   bool
			v    ql.Variant
		}{{"planner=on", true, ql.Auto}, {"planner=off", false, ql.Direct}} {
			b.Run(fmt.Sprintf("obs=%d/%s", obs, mode.name), func(b *testing.B) {
				client := endpoint.NewLocal(env.Store, sparql.WithPlanner(mode.on))
				p, err := ql.Prepare(demoQuery, env.Schema)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cube, err := ql.Execute(client, p.Translation, mode.v)
					if err != nil {
						b.Fatal(err)
					}
					if len(cube.Cells) == 0 {
						b.Fatal("empty cube")
					}
				}
			})
		}
	}
}

// reverseBGP reverses the triple-pattern lines of the first WHERE block
// of a generated query, leaving everything else in place.
func reverseBGP(query string) string {
	lines := strings.Split(query, "\n")
	start, end := -1, -1
	for i, l := range lines {
		if start < 0 && strings.HasSuffix(l, "WHERE {") {
			start = i + 1
			continue
		}
		if start >= 0 {
			t := strings.TrimSpace(l)
			if strings.HasPrefix(t, "?") && strings.HasSuffix(t, ".") {
				end = i
				continue
			}
			break
		}
	}
	if start < 0 || end < start {
		return query
	}
	for i, j := start, end; i < j; i, j = i+1, j-1 {
		lines[i], lines[j] = lines[j], lines[i]
	}
	return strings.Join(lines, "\n")
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks: store and SPARQL engine.

// BenchmarkStoreLoadTriples measures raw triple ingestion.
func BenchmarkStoreLoadTriples(b *testing.B) {
	d := rawDataset(b, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := newEmptyStore()
		loadDataset(st, d)
	}
}

// BenchmarkSPARQLGroupBy measures a flat aggregation over all
// observations (no hierarchy navigation), isolating GROUP BY cost.
func BenchmarkSPARQLGroupBy(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	query := `
PREFIX qb: <http://purl.org/linked-data/cube#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
SELECT ?c (SUM(?v) AS ?total) WHERE {
  ?o qb:dataSet <http://eurostat.linked-statistics.org/data/migr_asyappctzm> ;
     property:citizen ?c ;
     sdmx-measure:obsValue ?v .
} GROUP BY ?c`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.Client.Select(query)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() == 0 {
			b.Fatal("no rows")
		}
	}
}

// ---------------------------------------------------------------------
// A-next — concurrent query throughput (the worker-pool engine under
// load).

// BenchmarkConcurrentQuery measures aggregate query throughput with
// concurrent clients hammering the demo-scale (80k-observation) cube:
// both translations of the Mary query, at engine parallelism 1
// (sequential evaluation) and GOMAXPROCS (the default). clients=N uses
// b.RunParallel with enough goroutines per core to keep N in flight;
// ns/op is per completed query, so queries/sec = clients adjusted
// aggregate 1e9/(ns/op). EXPERIMENTS.md A-next records the measured
// scaling curve.
func BenchmarkConcurrentQuery(b *testing.B) {
	const obs = 80000
	skipIfShort(b, obs)
	env := enrichedEnv(b, obs)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	gmp := runtime.GOMAXPROCS(0)
	pars := []int{1}
	if gmp > 1 {
		pars = append(pars, gmp)
	}
	for _, v := range []ql.Variant{ql.Direct, ql.Alternative} {
		for _, par := range pars {
			for _, clients := range []int{1, 4, 16, 64} {
				name := fmt.Sprintf("%s/par=%d/clients=%d", v, par, clients)
				b.Run(name, func(b *testing.B) {
					client := endpoint.NewLocal(env.Store, sparql.WithParallelism(par))
					b.SetParallelism((clients + gmp - 1) / gmp)
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						for pb.Next() {
							cube, err := ql.Execute(client, p.Translation, v)
							if err != nil {
								b.Fatal(err)
							}
							if len(cube.Cells) == 0 {
								b.Fatal("empty cube")
							}
						}
					})
				})
			}
		}
	}
}

// ---------------------------------------------------------------------
// A-resource — per-query resource accounting: overhead and the
// concurrent-load memory curve.

// BenchmarkAccountingOverhead runs the direct demo translation with
// accounting in its three states: disabled (the default — the hot loops
// see only nil checks), enabled with a process tracker, and enabled
// with a generous admission budget on top. EXPERIMENTS.md A-resource
// records the measured deltas; the acceptance bar is the disabled path
// staying within noise of the pre-accounting snapshot.
func BenchmarkAccountingOverhead(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts []sparql.Option
	}{
		{"acct=off", nil},
		{"acct=on", []sparql.Option{sparql.WithResources(obs.NewResourceTracker())}},
		{"acct=budget", []sparql.Option{
			sparql.WithResources(obs.NewResourceTracker()), sparql.WithMaxQueryMem(1 << 32)}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			client := endpoint.NewLocal(env.Store, m.opts...)
			for i := 0; i < b.N; i++ {
				if _, err := ql.Execute(client, p.Translation, ql.Direct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentQueryAccounted repeats BenchmarkConcurrentQuery's
// client sweep (direct translation, engine parallelism 1) with the
// resource tracker attached, and reports the process-wide peak
// in-flight bytes each load level reached as the peak-bytes metric.
// EXPERIMENTS.md A-resource records the resulting memory curve — the
// measured answer to "how much intermediate state do 64 concurrent
// Mary queries actually hold at once?".
func BenchmarkConcurrentQueryAccounted(b *testing.B) {
	skipIfShort(b, 80000)
	env := enrichedEnv(b, 80000)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	gmp := runtime.GOMAXPROCS(0)
	for _, clients := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("direct/clients=%d", clients), func(b *testing.B) {
			tr := obs.NewResourceTracker()
			client := endpoint.NewLocal(env.Store, sparql.WithParallelism(1), sparql.WithResources(tr))
			b.SetParallelism((clients + gmp - 1) / gmp)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					cube, err := ql.Execute(client, p.Translation, ql.Direct)
					if err != nil {
						b.Fatal(err)
					}
					if len(cube.Cells) == 0 {
						b.Fatal("empty cube")
					}
				}
			})
			b.ReportMetric(float64(tr.HighWater()), "peak-bytes")
		})
	}
}

// BenchmarkParallelGroupBy sweeps the engine's worker budget on the
// flat group-by over every observation (the hot path the paper's
// alternative translation works around), isolating intra-query
// parallel speedup — and, on a single core, the worker-pool overhead.
func BenchmarkParallelGroupBy(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	query := `
PREFIX qb: <http://purl.org/linked-data/cube#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
SELECT ?c (SUM(?v) AS ?total) WHERE {
  ?o qb:dataSet <http://eurostat.linked-statistics.org/data/migr_asyappctzm> ;
     property:citizen ?c ;
     sdmx-measure:obsValue ?v .
} GROUP BY ?c`
	q, err := sparql.ParseQuery(query)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			eng := sparql.NewEngine(env.Store, sparql.WithParallelism(par))
			for i := 0; i < b.N; i++ {
				res, err := eng.Select(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}

// BenchmarkTimeSeriesTick measures one sampler pass over a registry
// sized like a live sparqld (counters, gauges, histograms). This is
// the steady-state cost the time-series layer adds per tick — the
// per-sample budget the observability PR is accountable to — and it
// must stay allocation-free after warm-up.
func BenchmarkTimeSeriesTick(b *testing.B) {
	reg := obs.NewRegistry()
	for i := 0; i < 20; i++ {
		c := reg.Counter(fmt.Sprintf("bench_counter_%d", i))
		c.Add(int64(i * 17))
	}
	for i := 0; i < 5; i++ {
		v := int64(i)
		reg.Gauge(fmt.Sprintf("bench_gauge_%d", i), func() int64 { return v })
	}
	for i := 0; i < 3; i++ {
		h := reg.Histogram(fmt.Sprintf("bench_hist_%d", i))
		for j := 0; j < 256; j++ {
			h.Observe(time.Duration(j%50+1) * time.Millisecond)
		}
	}
	ts := obs.NewTimeSeries(reg, obs.NewLadder(time.Second, 12*time.Hour))
	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	ts.SetNow(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(time.Second)
		return now
	})
	ts.Sample() // warm the sampled-metric cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Sample()
	}
}

// ---------------------------------------------------------------------
// A-streaming — the chunked pull pipeline: chunk-size sweep and
// concurrent throughput under a per-query memory budget the
// materialized evaluator cannot meet.

// BenchmarkChunkSize sweeps the streaming chunk size on the direct
// Mary translation (chunk=0 is the materialized baseline). The sweep
// justifies the 1024-row default: small chunks pay per-boundary
// overhead and fall below the parallel kernels' batch threshold, huge
// chunks converge on materialized latency while growing the per-stage
// footprint. EXPERIMENTS.md A-streaming records the measured curve.
func BenchmarkChunkSize(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	for _, cs := range []int{0, 64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("chunk=%d", cs), func(b *testing.B) {
			client := endpoint.NewLocal(env.Store, sparql.WithChunkSize(cs))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cube, err := ql.Execute(client, p.Translation, ql.Direct)
				if err != nil {
					b.Fatal(err)
				}
				if len(cube.Cells) == 0 {
					b.Fatal("empty cube")
				}
			}
		})
	}
}

// BenchmarkConcurrentQueryStreamed is BenchmarkConcurrentQuery's
// 64-client configuration under a 40 MB per-query budget — less than a
// quarter of the direct Mary query's materialized peak, so only the
// streamed pipeline can run it at all. ns/op per completed query; the
// acceptance bar is 64-client aggregate throughput holding at least
// half the single-client rate.
func BenchmarkConcurrentQueryStreamed(b *testing.B) {
	const obs = 80000
	skipIfShort(b, obs)
	env := enrichedEnv(b, obs)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	gmp := runtime.GOMAXPROCS(0)
	for _, clients := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			client := endpoint.NewLocal(env.Store,
				sparql.WithChunkSize(1024), sparql.WithMaxQueryMem(40<<20))
			b.SetParallelism((clients + gmp - 1) / gmp)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					cube, err := ql.Execute(client, p.Translation, ql.Direct)
					if err != nil {
						b.Fatal(err)
					}
					if len(cube.Cells) == 0 {
						b.Fatal("empty cube")
					}
				}
			})
		})
	}
}

// ---------------------------------------------------------------------
// helpers

func newEmptyStore() *store.Store { return store.New() }

func loadDataset(st *store.Store, d *eurostat.Dataset) {
	d.LoadInto(st)
}
