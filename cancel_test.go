package repro

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/demo"
	"repro/internal/endpoint"
	"repro/internal/ql"
	"repro/internal/sparql"
)

// cancelSeed fixes the randomized cancel points, so a run that
// exposes a slow cancellation path can be replayed.
const cancelSeed = 11

// TestQueryCancellationProperty cancels the paper's Mary query at
// seeded random points during evaluation, across engine parallelism 1,
// 4, and 8, and asserts the cancellation contract: the call returns
// promptly (well under 250ms from cancel), the error is a cooperative
// *sparql.CanceledError satisfying errors.Is(err, context.Canceled),
// and no evaluation goroutines are leaked. Run under -race (the
// Makefile default) this also validates that cancellation never races
// the worker pool.
func TestQueryCancellationProperty(t *testing.T) {
	obsCount := 80000
	if testing.Short() {
		obsCount = 5000
	}
	env, err := demo.Build(configFor(obsCount))
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("queries/mary.ql")
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := ql.Prepare(string(src), env.Schema)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(cancelSeed))
	for _, par := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			client := endpoint.NewLocal(env.Store, sparql.WithParallelism(par))
			before := runtime.NumGoroutine()

			// Uncanceled baseline: both the correctness anchor and the
			// window the random cancel points are drawn from.
			start := time.Now()
			if _, err := ql.ExecuteContext(context.Background(), client, pipe.Translation, ql.Direct); err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			full := time.Since(start)

			const rounds = 6
			canceled := 0
			var maxLat time.Duration
			for i := 0; i < rounds; i++ {
				delay := time.Duration(rng.Int63n(int64(full) + 1))
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan error, 1)
				go func() {
					_, err := ql.ExecuteContext(ctx, client, pipe.Translation, ql.Direct)
					done <- err
				}()
				time.Sleep(delay)
				cancelAt := time.Now()
				cancel()
				var runErr error
				select {
				case runErr = <-done:
				case <-time.After(5 * time.Second):
					t.Fatalf("round %d (delay %v): evaluation ignored cancel", i, delay)
				}
				lat := time.Since(cancelAt)
				if lat > maxLat {
					maxLat = lat
				}
				if lat > 250*time.Millisecond {
					t.Errorf("round %d (delay %v): returned %v after cancel, want <250ms", i, delay, lat)
				}
				if runErr == nil {
					continue // finished before the cancel landed
				}
				canceled++
				if !errors.Is(runErr, context.Canceled) {
					t.Errorf("round %d: error does not unwrap to context.Canceled: %v", i, runErr)
				}
				var ce *sparql.CanceledError
				if !errors.As(runErr, &ce) {
					t.Errorf("round %d: error is not a cooperative *sparql.CanceledError: %v", i, runErr)
				}
			}
			t.Logf("baseline %v, %d/%d rounds canceled mid-flight, max cancel→return latency %v",
				full, canceled, rounds, maxLat)

			// Leak check: worker goroutines must drain after cancellation,
			// not linger parked on channels.
			deadline := time.Now().Add(2 * time.Second)
			for {
				if n := runtime.NumGoroutine(); n <= before+2 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("goroutine leak after canceled runs: %d before, %d after", before, runtime.NumGoroutine())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}
