package repro

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/demo"
	"repro/internal/endpoint"
	"repro/internal/faults"
	"repro/internal/ql"
	"repro/internal/sparql"
)

// chaosSeed fixes the fault injector's decision sequence: queries run
// sequentially against the server, so a given (profile, seed) pair
// injects the same faults at the same points on every run.
const chaosSeed = 7

// preparedQuery is one corpus program with its clean-run expectations.
type preparedQuery struct {
	file string
	pipe *ql.Pipeline
	want map[ql.Variant]string // variant -> CSV of the fault-free cube
}

// TestChaosQueryCorpus runs the whole queries/ corpus through
// endpoint.Remote against a SPARQL server wrapped in the deterministic
// fault injector, one profile at a time. The resilience contract under
// faults: every query either produces a cube byte-identical to the
// fault-free run, or fails with a typed retryable *endpoint.Error —
// never a hang, a panic, or a silently wrong answer.
func TestChaosQueryCorpus(t *testing.T) {
	env, err := demo.Build(configFor(2000))
	if err != nil {
		t.Fatal(err)
	}

	// Clean expectations come from the in-process client: the same
	// store the chaos server evaluates against, with no HTTP in between.
	clean := endpoint.NewLocal(env.Store, sparql.WithParallelism(4))
	files, err := filepath.Glob("queries/*.ql")
	if err != nil || len(files) == 0 {
		t.Fatalf("no QL programs found under queries/: %v", err)
	}
	variants := []ql.Variant{ql.Direct, ql.Alternative}
	var corpus []preparedQuery
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ql.Prepare(string(src), env.Schema)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		q := preparedQuery{file: file, pipe: p, want: map[ql.Variant]string{}}
		for _, v := range variants {
			cube, err := ql.Execute(clean, p.Translation, v)
			if err != nil {
				t.Fatalf("%s/%s clean run: %v", file, v, err)
			}
			q.want[v] = cube.EncodeCSV()
		}
		corpus = append(corpus, q)
	}

	handler := endpoint.NewServer(env.Store, sparql.WithParallelism(4)).Handler()
	for _, name := range []string{"drops", "flaky5xx", "slow", "truncate", "chaos"} {
		t.Run(name, func(t *testing.T) {
			profile, ok := faults.ByName(name)
			if !ok {
				t.Fatalf("unknown fault profile %q", name)
			}
			inj := faults.New(profile, chaosSeed)
			hs := httptest.NewServer(inj.Handler(handler))
			defer hs.Close()

			r := endpoint.NewRemote(hs.URL)
			r.Retries = 5
			r.Timeout = 2 * time.Second
			r.Backoff = time.Millisecond // keep the schedule fast under test

			// The context bounds the whole profile run, so a resilience
			// bug shows up as a test failure, not a suite hang.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			matched, failedRetryable := 0, 0
			for _, q := range corpus {
				for _, v := range variants {
					cube, err := ql.ExecuteContext(ctx, r, q.pipe.Translation, v)
					if err != nil {
						if !endpoint.IsRetryable(err) {
							t.Errorf("%s/%s: non-retryable failure under %s: %v", q.file, v, name, err)
						} else {
							failedRetryable++
						}
						continue
					}
					if got := cube.EncodeCSV(); got != q.want[v] {
						t.Errorf("%s/%s: silently wrong result under %s faults", q.file, v, name)
						continue
					}
					matched++
				}
			}
			if matched == 0 {
				t.Errorf("no query survived the %s profile (retries exhausted on all %d runs)", name, failedRetryable)
			}
			t.Logf("%s: %d matched clean run, %d exhausted retries (typed retryable), %d retries by client, %d faults injected %v",
				name, matched, failedRetryable, r.RetryCount(), inj.Injected(), inj.Counts())
		})
	}
}
