// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON map on stdout (or -o file): benchmark name →
// ns/op, B/op, allocs/op. It exists so `make bench-json` can snapshot
// benchmark results (BENCH_PR3.json) without any tooling beyond the Go
// toolchain.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem . | benchjson -o BENCH.json
//
// The GOMAXPROCS suffix (-8) is stripped from names so snapshots
// diff cleanly across machines; sub-benchmark paths are kept.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. Zero-valued fields were not
// reported (e.g. -benchmem missing).
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// benchLine matches "BenchmarkName-8   10   123 ns/op   45 B/op   6 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// procSuffix is the trailing GOMAXPROCS marker on the name (Go appends
// it once, at the very end of the full sub-benchmark path).
var procSuffix = regexp.MustCompile(`-\d+$`)

func parse(lines *bufio.Scanner) (map[string]Result, error) {
	out := make(map[string]Result)
	for lines.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(lines.Text()))
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := Result{Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		out[name] = r
	}
	return out, lines.Err()
}

func main() {
	outPath := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results, err := parse(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// Sorted keys make committed snapshots diff cleanly.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(results[n])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, "  %q: %s", n, enc)
		if i < len(names)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")

	if *outPath == "-" {
		os.Stdout.WriteString(b.String())
		return
	}
	if err := os.WriteFile(*outPath, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *outPath)
}
