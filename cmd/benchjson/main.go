// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON map on stdout (or -o file): benchmark name →
// ns/op, B/op, allocs/op. It exists so `make bench-json` can snapshot
// benchmark results (BENCH_PR3.json) without any tooling beyond the Go
// toolchain.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem . | benchjson -o BENCH.json
//	benchjson -compare [-threshold 0.10] OLD.json NEW.json
//	benchjson -ablation planner [-threshold 0.10] BENCH.json
//	benchjson -slo slo.json REPORT.json
//
// The GOMAXPROCS suffix (-8) is stripped from names so snapshots
// diff cleanly across machines; sub-benchmark paths are kept.
//
// -compare diffs two snapshots benchmark by benchmark and exits
// non-zero when any benchmark's ns/op regressed by more than
// -threshold (a fraction; default 0.10 = 10%). Added and removed
// benchmarks are reported but never fail the comparison.
//
// -slo FILE gates a `qb2olap bench -report` run report against the
// SLO thresholds in FILE (p50/p99 latency, error rate, shed rate —
// globally and per traffic class) and exits non-zero when any
// threshold is violated. `make bench-slo` uses this to fail the build
// when a short mixed workload against the fixture server breaks the
// checked-in slo.json.
//
// -ablation KEY gates an on/off ablation within a single snapshot: for
// every benchmark whose sub-benchmark path ends in "/KEY=on", the
// sibling ending in "/KEY=off" is looked up and the comparison exits
// non-zero when the on arm is slower than the off arm by more than
// -threshold. `make bench-compare` uses this to pin the cost-based
// planner (planner=on) to within the threshold of the planner-off
// baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
)

// Result is one benchmark's measurements. Zero-valued fields were not
// reported (e.g. -benchmem missing).
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// benchLine matches "BenchmarkName-8   10   123 ns/op   45 B/op   6 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// procSuffix is the trailing GOMAXPROCS marker on the name (Go appends
// it once, at the very end of the full sub-benchmark path).
var procSuffix = regexp.MustCompile(`-\d+$`)

func parse(lines *bufio.Scanner) (map[string]Result, error) {
	out := make(map[string]Result)
	for lines.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(lines.Text()))
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := Result{Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		out[name] = r
	}
	return out, lines.Err()
}

// loadSnapshot reads a JSON snapshot previously written by this tool.
func loadSnapshot(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// fmtNs renders a ns/op value as a human duration (µs/ms/s) without
// losing sub-microsecond precision for fast benchmarks.
func fmtNs(ns float64) string {
	if ns < 1000 {
		return fmt.Sprintf("%.0fns", ns)
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

// compareSnapshots diffs old→new and writes a report. It returns the
// names of benchmarks whose ns/op grew by more than threshold;
// benchmarks present in only one snapshot are listed but never count
// as regressions (a new PR legitimately adds and retires benchmarks).
func compareSnapshots(oldRes, newRes map[string]Result, threshold float64, w io.Writer) []string {
	names := make([]string, 0, len(oldRes)+len(newRes))
	seen := make(map[string]bool)
	for n := range oldRes {
		names, seen[n] = append(names, n), true
	}
	for n := range newRes {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var regressions, added, removed []string
	fmt.Fprintf(w, "%-64s %12s %12s %9s\n", "BENCHMARK", "OLD", "NEW", "DELTA")
	for _, n := range names {
		o, inOld := oldRes[n]
		nw, inNew := newRes[n]
		short := strings.TrimPrefix(n, "Benchmark")
		switch {
		case !inOld:
			added = append(added, n)
			fmt.Fprintf(w, "%-64s %12s %12s %9s\n", short, "-", fmtNs(nw.NsPerOp), "added")
		case !inNew:
			removed = append(removed, n)
			fmt.Fprintf(w, "%-64s %12s %12s %9s\n", short, fmtNs(o.NsPerOp), "-", "removed")
		case o.NsPerOp <= 0:
			fmt.Fprintf(w, "%-64s %12s %12s %9s\n", short, fmtNs(o.NsPerOp), fmtNs(nw.NsPerOp), "n/a")
		default:
			delta := (nw.NsPerOp - o.NsPerOp) / o.NsPerOp
			mark := ""
			if delta > threshold {
				mark = "  REGRESSION"
				regressions = append(regressions, n)
			}
			fmt.Fprintf(w, "%-64s %12s %12s %+8.1f%%%s\n", short, fmtNs(o.NsPerOp), fmtNs(nw.NsPerOp), delta*100, mark)
		}
	}
	fmt.Fprintf(w, "\n%d compared, %d added, %d removed, %d regression(s) beyond %.0f%%\n",
		len(names)-len(added)-len(removed), len(added), len(removed), len(regressions), threshold*100)
	return regressions
}

// compareAblation gates the KEY=on arms of one snapshot against their
// KEY=off siblings and returns the names of on-arms slower than off by
// more than threshold. On-arms without an off sibling are reported but
// never fail (a benchmark may legitimately run only one arm).
func compareAblation(res map[string]Result, key string, threshold float64, w io.Writer) []string {
	onSuffix, offSuffix := "/"+key+"=on", "/"+key+"=off"
	names := make([]string, 0, len(res))
	for n := range res {
		if strings.HasSuffix(n, onSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var regressions []string
	unpaired := 0
	fmt.Fprintf(w, "%-64s %12s %12s %9s\n", "BENCHMARK ("+key+" ablation)", "ON", "OFF", "DELTA")
	for _, n := range names {
		on := res[n]
		off, ok := res[strings.TrimSuffix(n, onSuffix)+offSuffix]
		short := strings.TrimPrefix(strings.TrimSuffix(n, onSuffix), "Benchmark")
		switch {
		case !ok:
			unpaired++
			fmt.Fprintf(w, "%-64s %12s %12s %9s\n", short, fmtNs(on.NsPerOp), "-", "unpaired")
		case off.NsPerOp <= 0:
			fmt.Fprintf(w, "%-64s %12s %12s %9s\n", short, fmtNs(on.NsPerOp), fmtNs(off.NsPerOp), "n/a")
		default:
			delta := (on.NsPerOp - off.NsPerOp) / off.NsPerOp
			mark := ""
			if delta > threshold {
				mark = "  REGRESSION"
				regressions = append(regressions, n)
			}
			fmt.Fprintf(w, "%-64s %12s %12s %+8.1f%%%s\n", short, fmtNs(on.NsPerOp), fmtNs(off.NsPerOp), delta*100, mark)
		}
	}
	fmt.Fprintf(w, "\n%d pair(s) compared, %d unpaired, %d regression(s) beyond %.0f%%\n",
		len(names)-unpaired, unpaired, len(regressions), threshold*100)
	return regressions
}

// gateSLO checks a `qb2olap bench` run report against an SLO file and
// writes a verdict line per checked scope. It returns the violations.
func gateSLO(sloPath, reportPath string, w io.Writer) ([]loadgen.Violation, error) {
	slo, err := loadgen.LoadSLO(sloPath)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		return nil, err
	}
	var rep loadgen.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", reportPath, err)
	}
	if rep.Total.Sent == 0 {
		return nil, fmt.Errorf("%s: report has no requests — nothing to gate", reportPath)
	}
	violations := loadgen.CheckSLO(&rep, slo)
	fmt.Fprintf(w, "SLO gate: %s vs %s (%s, %d requests, p99 %.1fms, errors %d, shed %d)\n",
		reportPath, sloPath, rep.Mode, rep.Total.Sent, rep.Total.Latency.P99Ms,
		rep.Total.Errors+rep.Total.Timeouts, rep.Total.Shed)
	if len(violations) == 0 {
		fmt.Fprintln(w, "PASS: all thresholds met")
		return nil, nil
	}
	for _, v := range violations {
		fmt.Fprintf(w, "FAIL: %s\n", v)
	}
	return violations, nil
}

func main() {
	outPath := flag.String("o", "-", "output file (- for stdout)")
	compare := flag.Bool("compare", false, "compare two snapshot files (OLD.json NEW.json) instead of reading bench output")
	ablation := flag.String("ablation", "", "gate KEY=on vs KEY=off sub-benchmarks within one snapshot file (e.g. -ablation planner BENCH.json)")
	sloPath := flag.String("slo", "", "gate a `qb2olap bench` run report (REPORT.json) against this SLO file")
	threshold := flag.Float64("threshold", 0.10, "with -compare or -ablation: fail on ns/op regressions beyond this fraction")
	flag.Parse()

	if *sloPath != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -slo wants exactly one run report file: REPORT.json")
			os.Exit(2)
		}
		violations, err := gateSLO(*sloPath, flag.Arg(0), os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d SLO violation(s)\n", len(violations))
			os.Exit(1)
		}
		return
	}

	if *ablation != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -ablation wants exactly one snapshot file: BENCH.json")
			os.Exit(2)
		}
		res, err := loadSnapshot(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		regressions := compareAblation(res, *ablation, *threshold, os.Stdout)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d %s=on arm(s) beyond %.0f%% of their off baseline: %s\n",
				len(regressions), *ablation, *threshold*100, strings.Join(regressions, ", "))
			os.Exit(1)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare wants exactly two snapshot files: OLD.json NEW.json")
			os.Exit(2)
		}
		oldRes, err := loadSnapshot(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		newRes, err := loadSnapshot(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		regressions := compareSnapshots(oldRes, newRes, *threshold, os.Stdout)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%: %s\n",
				len(regressions), *threshold*100, strings.Join(regressions, ", "))
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results, err := parse(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// Sorted keys make committed snapshots diff cleanly.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(results[n])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, "  %q: %s", n, enc)
		if i < len(names)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")

	if *outPath == "-" {
		os.Stdout.WriteString(b.String())
		return
	}
	if err := os.WriteFile(*outPath, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *outPath)
}
