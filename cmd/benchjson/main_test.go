package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
BenchmarkLoad/obs=5000-8         	      10	 12345678 ns/op	 4096 B/op	     42 allocs/op
BenchmarkQLParse-8               	  100000	    10432 ns/op
PASS
ok  	repro	1.234s
`
	got, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %v", len(got), got)
	}
	load, ok := got["BenchmarkLoad/obs=5000"]
	if !ok {
		t.Fatalf("proc suffix not stripped: %v", got)
	}
	if load.NsPerOp != 12345678 || load.BytesPerOp != 4096 || load.AllocsPerOp != 42 || load.Iterations != 10 {
		t.Errorf("load = %+v", load)
	}
	p, ok := got["BenchmarkQLParse"]
	if !ok || p.NsPerOp != 10432 || p.BytesPerOp != 0 {
		t.Errorf("parse = %+v ok=%v", p, ok)
	}
}
