package main

import (
	"bufio"
	"path/filepath"
	"strings"
	"testing"

	"os"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
BenchmarkLoad/obs=5000-8         	      10	 12345678 ns/op	 4096 B/op	     42 allocs/op
BenchmarkQLParse-8               	  100000	    10432 ns/op
PASS
ok  	repro	1.234s
`
	got, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %v", len(got), got)
	}
	load, ok := got["BenchmarkLoad/obs=5000"]
	if !ok {
		t.Fatalf("proc suffix not stripped: %v", got)
	}
	if load.NsPerOp != 12345678 || load.BytesPerOp != 4096 || load.AllocsPerOp != 42 || load.Iterations != 10 {
		t.Errorf("load = %+v", load)
	}
	p, ok := got["BenchmarkQLParse"]
	if !ok || p.NsPerOp != 10432 || p.BytesPerOp != 0 {
		t.Errorf("parse = %+v ok=%v", p, ok)
	}
}

func TestCompareSnapshots(t *testing.T) {
	oldRes := map[string]Result{
		"BenchmarkStable":   {NsPerOp: 1000},
		"BenchmarkFaster":   {NsPerOp: 2000},
		"BenchmarkSlower":   {NsPerOp: 1000},
		"BenchmarkRetired":  {NsPerOp: 500},
		"BenchmarkBoundary": {NsPerOp: 1000},
	}
	newRes := map[string]Result{
		"BenchmarkStable":   {NsPerOp: 1050}, // +5%: within threshold
		"BenchmarkFaster":   {NsPerOp: 1000}, // -50%: improvement, never fails
		"BenchmarkSlower":   {NsPerOp: 1300}, // +30%: regression
		"BenchmarkBoundary": {NsPerOp: 1100}, // exactly +10%: not beyond threshold
		"BenchmarkNew":      {NsPerOp: 99},   // added, never fails
	}
	var out strings.Builder
	regs := compareSnapshots(oldRes, newRes, 0.10, &out)
	if len(regs) != 1 || regs[0] != "BenchmarkSlower" {
		t.Fatalf("regressions = %v, want [BenchmarkSlower]\n%s", regs, out.String())
	}
	got := out.String()
	for _, want := range []string{"REGRESSION", "added", "removed", "4 compared, 1 added, 1 removed, 1 regression(s)"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "REGRESSION") != 1 {
		t.Errorf("want exactly one REGRESSION mark:\n%s", got)
	}
}

func TestCompareAblation(t *testing.T) {
	res := map[string]Result{
		"BenchmarkA/x=1/planner=on":          {NsPerOp: 1000},
		"BenchmarkA/x=1/planner=off":         {NsPerOp: 1200}, // on faster: fine
		"BenchmarkA/x=2/planner=on":          {NsPerOp: 1500},
		"BenchmarkA/x=2/planner=off":         {NsPerOp: 1000}, // on +50%: regression
		"BenchmarkB/planner=on":              {NsPerOp: 1050},
		"BenchmarkB/planner=off":             {NsPerOp: 1000}, // on +5%: within threshold
		"BenchmarkB/planner=off/textual":     {NsPerOp: 9000}, // third arm: never paired
		"BenchmarkLonely/planner=on":         {NsPerOp: 100},  // no off sibling: unpaired
		"BenchmarkUnrelated/other=on":        {NsPerOp: 1},    // different key: ignored
		"BenchmarkUnrelated/no-ablation-arm": {NsPerOp: 1},
	}
	var out strings.Builder
	regs := compareAblation(res, "planner", 0.10, &out)
	if len(regs) != 1 || regs[0] != "BenchmarkA/x=2/planner=on" {
		t.Fatalf("regressions = %v, want [BenchmarkA/x=2/planner=on]\n%s", regs, out.String())
	}
	got := out.String()
	for _, want := range []string{"REGRESSION", "unpaired", "3 pair(s) compared, 1 unpaired, 1 regression(s)"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "REGRESSION") != 1 {
		t.Errorf("want exactly one REGRESSION mark:\n%s", got)
	}
}

func TestCompareSnapshotsRoundTripFiles(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	os.WriteFile(oldPath, []byte(`{"BenchmarkX": {"iterations": 1, "nsPerOp": 100}}`), 0o644)
	os.WriteFile(newPath, []byte(`{"BenchmarkX": {"iterations": 1, "nsPerOp": 400}}`), 0o644)
	oldRes, err := loadSnapshot(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := loadSnapshot(newPath)
	if err != nil {
		t.Fatal(err)
	}
	regs := compareSnapshots(oldRes, newRes, 0.10, &strings.Builder{})
	if len(regs) != 1 {
		t.Fatalf("regressions = %v", regs)
	}
	if _, err := loadSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}
