package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleReport is a bench run report with p99 = 80ms, error rate 2%,
// shed rate 4% overall.
const sampleReport = `{
  "mode": "closed", "clients": 4, "seed": 1,
  "durationMs": 1000, "throughputPerSec": 100,
  "total": {"class": "all", "sent": 100, "ok": 94, "errors": 2, "shed": 4, "timeouts": 0, "canceled": 0,
            "latency": {"count": 100, "avgMs": 10, "p50Ms": 8, "p90Ms": 40, "p95Ms": 60, "p99Ms": 80, "maxMs": 90}},
  "classes": [
    {"class": "ql", "sent": 60, "ok": 60, "errors": 0, "shed": 0, "timeouts": 0, "canceled": 0,
     "latency": {"count": 60, "avgMs": 12, "p50Ms": 10, "p90Ms": 50, "p95Ms": 70, "p99Ms": 85, "maxMs": 90}},
    {"class": "update", "sent": 40, "ok": 34, "errors": 2, "shed": 4, "timeouts": 0, "canceled": 0,
     "latency": {"count": 40, "avgMs": 5, "p50Ms": 4, "p90Ms": 10, "p95Ms": 12, "p99Ms": 15, "maxMs": 20}}
  ]
}`

func writeSLOFixtures(t *testing.T, slo string) (sloPath, reportPath string) {
	t.Helper()
	dir := t.TempDir()
	sloPath = filepath.Join(dir, "slo.json")
	reportPath = filepath.Join(dir, "report.json")
	if err := os.WriteFile(sloPath, []byte(slo), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(reportPath, []byte(sampleReport), 0o644); err != nil {
		t.Fatal(err)
	}
	return sloPath, reportPath
}

func TestGateSLOPass(t *testing.T) {
	sloPath, reportPath := writeSLOFixtures(t,
		`{"max_p99_ms": 200, "max_error_rate": 0.05, "max_shed_rate": 0.10}`)
	var out strings.Builder
	violations, err := gateSLO(sloPath, reportPath, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("violations = %v, want none", violations)
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("output missing PASS verdict:\n%s", out.String())
	}
}

// TestGateSLOViolated is the negative test: thresholds deliberately
// set below the run's observed values must fail the gate, globally and
// per class.
func TestGateSLOViolated(t *testing.T) {
	sloPath, reportPath := writeSLOFixtures(t,
		`{"max_p99_ms": 50, "max_error_rate": 0.01, "max_shed_rate": 0.01,
		  "classes": {"update": {"max_error_rate": 0.01}}}`)
	var out strings.Builder
	violations, err := gateSLO(sloPath, reportPath, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 4 {
		t.Fatalf("got %d violations, want 4 (global p99, error rate, shed rate + update error rate):\n%s",
			len(violations), out.String())
	}
	for _, want := range []string{
		"all: p99_ms = 80.000 exceeds limit 50.000",
		"all: error_rate = 0.020 exceeds limit 0.010",
		"all: shed_rate = 0.040 exceeds limit 0.010",
		"update: error_rate = 0.050 exceeds limit 0.010",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGateSLOBadInputs(t *testing.T) {
	sloPath, reportPath := writeSLOFixtures(t, `{"max_p99_ms": 50}`)
	var out strings.Builder
	if _, err := gateSLO(filepath.Join(t.TempDir(), "missing.json"), reportPath, &out); err == nil {
		t.Error("missing SLO file accepted")
	}
	if _, err := gateSLO(sloPath, filepath.Join(t.TempDir(), "missing.json"), &out); err == nil {
		t.Error("missing report file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(empty, []byte(`{"mode":"closed","total":{"class":"all","sent":0,"latency":{}},"classes":[]}`), 0o644)
	if _, err := gateSLO(sloPath, empty, &out); err == nil {
		t.Error("zero-request report accepted — an empty run must not pass the gate silently")
	}
}
