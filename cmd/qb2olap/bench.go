package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/demo"
	"repro/internal/endpoint"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/ql"
)

// cmdBench is the workload driver: it fires a weighted mix of QL
// programs, raw SPARQL SELECTs, and INSERT DATA updates from the
// corpus directory at the selected source — closed-loop (fixed
// clients) or open-loop (Poisson arrivals at -rate, latency charged
// from the intended send instant) — and writes a machine-readable run
// report that `benchjson -slo` gates on.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var src sourceFlags
	src.register(fs)
	mix := fs.String("mix", "ql=3,sparql=2,update=1", "traffic mix as class=weight, classes: ql, sparql, update")
	mode := fs.String("mode", "closed", "closed (fixed -clients in lock-step) or open (Poisson arrivals at -rate)")
	clients := fs.Int("clients", 4, "closed-loop concurrent clients")
	rate := fs.Float64("rate", 50, "open-loop arrival rate per second")
	requests := fs.Int("requests", 200, "total request budget (0 = bound by -duration alone)")
	duration := fs.Duration("duration", 0, "wall-clock bound (0 = bound by -requests alone)")
	queriesDir := fs.String("queries", "queries", "corpus directory: *.ql feeds the ql class, *.rq the sparql class")
	cube := fs.String("cube", "", "QB4OLAP cube IRI for QL preparation (default: the only cube)")
	variant := fs.String("variant", "auto", "QL translation: auto (cost-chosen once at startup), direct, or alternative")
	demoEnrich := fs.Bool("demo-enrich", false, "run the demonstration enrichment first (for -demo/-data sources)")
	reportPath := fs.String("report", "", "write the JSON run report to this file")
	snapInterval := fs.Duration("snapshot-interval", time.Second, "live snapshot period on stderr (0 disables)")
	traceEvery := fs.Int("trace-every", 0, "trace every Nth request; the slowest traced requests are cross-linked in the report (0 disables)")
	traceExport := fs.String("trace-export", "", "append sampled traces as JSONL for `qb2olap trace` (with -trace-every)")
	timeout := fs.Duration("request-timeout", 0, "per-request deadline inside the driver (0 = none)")
	dashAddr := fs.String("dash-addr", "", "serve a live /debug/dash + /timeseries + /metrics view of this bench run on this address (empty disables)")
	fs.Parse(args)

	mixNames, weights, err := loadgen.ParseMix(*mix)
	if err != nil {
		return err
	}
	tool, err := src.open()
	if err != nil {
		return err
	}
	if *demoEnrich {
		if _, err := demo.EnrichDataset(tool.Client()); err != nil {
			return err
		}
	}

	exec := &benchExecutor{client: tool.Client(), pipelines: map[string]*benchPipeline{}}
	if *traceExport != "" {
		exp, err := obs.NewExporter(*traceExport, obs.DefaultExportMaxBytes, 3)
		if err != nil {
			return fmt.Errorf("bench: opening trace export: %w", err)
		}
		defer exp.Close()
		exec.exporter = exp
	}

	var classes []loadgen.Class
	for _, name := range mixNames {
		w := weights[name]
		if w == 0 {
			continue
		}
		var reqs []loadgen.Request
		switch name {
		case "ql":
			reqs, err = loadQLCorpus(tool, exec, *queriesDir, *cube, *variant, src.plannerOn())
		case "sparql":
			reqs, err = loadSPARQLCorpus(*queriesDir)
		case "update":
			reqs = updateCorpus()
		default:
			return fmt.Errorf("bench: unknown mix class %q (want ql, sparql, or update)", name)
		}
		if err != nil {
			return err
		}
		if len(reqs) == 0 {
			return fmt.Errorf("bench: class %q has an empty corpus in %s", name, *queriesDir)
		}
		classes = append(classes, loadgen.Class{Name: name, Weight: w, Requests: reqs})
	}

	opts := loadgen.Options{
		Mode:       loadgen.Mode(*mode),
		Clients:    *clients,
		Rate:       *rate,
		Requests:   *requests,
		Duration:   *duration,
		Seed:       src.seed,
		Timeout:    *timeout,
		TraceEvery: *traceEvery,
	}
	if *snapInterval > 0 {
		opts.SnapshotInterval = *snapInterval
		opts.OnSnapshot = func(s loadgen.Snapshot) {
			fmt.Fprintf(os.Stderr,
				"[bench %6.1fs] sent=%d ok=%d err=%d shed=%d tmout=%d inflight=%d p50=%.1fms p99=%.1fms %.1f/s\n",
				s.ElapsedMs/1000, s.Sent, s.OK, s.Errors, s.Shed, s.Timeouts, s.InFlight,
				s.P50Ms, s.P99Ms, s.ThroughputPerSec)
		}
	}
	// -dash-addr: the driver mirrors its accounting into a metrics
	// registry, a time-series sampler watches it, and a local listener
	// serves the same dashboard surfaces sparqld has — so a bench run
	// is browsable live at http://<dash-addr>/debug/dash.
	if *dashAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntimeGauges(reg)
		opts.Metrics = reg
		series := obs.NewTimeSeries(reg, obs.NewLadder(time.Second, time.Hour))
		stopSeries := series.Start()
		defer stopSeries()
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		mux.HandleFunc("/timeseries", obs.TimeSeriesHandler(series))
		mux.HandleFunc("/debug/dash", obs.DashHandler(series, nil, obs.BenchDashConfig()))
		dashSrv := &http.Server{Addr: *dashAddr, Handler: mux}
		go func() {
			if err := dashSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "# bench dashboard listener: %v\n", err)
			}
		}()
		defer dashSrv.Close()
		fmt.Fprintf(os.Stderr, "# bench dashboard: http://%s/debug/dash\n", *dashAddr)
	}
	driver, err := loadgen.New(classes, exec, opts)
	if err != nil {
		return err
	}
	rep, err := driver.Run(context.Background())
	if err != nil {
		return err
	}
	// With -report -, stdout is the machine-readable JSON (pipeable
	// into benchjson -slo) and the human table moves to stderr.
	human := os.Stdout
	if *reportPath == "-" {
		human = os.Stderr
	}
	printBenchReport(human, rep)
	if *reportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *reportPath == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(*reportPath, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "# report written to %s\n", *reportPath)
		}
	}
	return nil
}

// loadQLCorpus reads every *.ql program, prepares it against the cube
// schema once, and (for -variant auto) resolves the cost-based
// translation choice up front so the hot path pays no planning.
func loadQLCorpus(tool toolLike, exec *benchExecutor, dir, cube, variant string, plannerOn bool) ([]loadgen.Request, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ql"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, nil
	}
	schema, err := loadSchemaForQuery(tool, cube)
	if err != nil {
		return nil, err
	}
	var reqs []loadgen.Request
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		name := filepath.Base(path)
		p, err := ql.Prepare(string(data), schema)
		if err != nil {
			return nil, fmt.Errorf("bench: preparing %s: %w", name, err)
		}
		v := ql.Direct
		switch variant {
		case "auto":
			if plannerOn {
				sel := ql.Choose(exec.client, p.Translation)
				p.Translation.Selection = &sel
				v = sel.Variant
			}
		case "direct":
		case "alternative":
			v = ql.Alternative
		default:
			return nil, fmt.Errorf("bench: invalid -variant %q (want auto, direct, or alternative)", variant)
		}
		exec.pipelines[name] = &benchPipeline{t: p.Translation, v: v}
		reqs = append(reqs, loadgen.Request{Kind: loadgen.KindQL, Name: name, Text: string(data)})
	}
	return reqs, nil
}

// loadSPARQLCorpus reads every *.rq file as a raw SPARQL SELECT.
func loadSPARQLCorpus(dir string) ([]loadgen.Request, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.rq"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var reqs []loadgen.Request
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, loadgen.Request{Kind: loadgen.KindSPARQL, Name: filepath.Base(path), Text: string(data)})
	}
	return reqs, nil
}

// updateCorpus synthesizes the INSERT DATA class: a small rotation of
// statements into a scratch graph. RDF set semantics make each
// statement idempotent, so a long run re-asserts the same few triples
// instead of growing the store without bound.
func updateCorpus() []loadgen.Request {
	var reqs []loadgen.Request
	for i := 0; i < 8; i++ {
		text := fmt.Sprintf(
			"INSERT DATA {\nGRAPH <urn:qb2olap:bench> {\n<urn:qb2olap:bench#probe-%d> <urn:qb2olap:bench#touched> \"%d\" .\n}\n}", i, i)
		reqs = append(reqs, loadgen.Request{
			Kind: loadgen.KindUpdate,
			Name: fmt.Sprintf("insert-probe-%d", i),
			Text: text,
		})
	}
	return reqs
}

// benchPipeline is one prepared QL program with its resolved variant.
type benchPipeline struct {
	t *ql.Translation
	v ql.Variant
}

// benchExecutor runs loadgen requests against the tool's client.
type benchExecutor struct {
	client    endpoint.SPARQLClient
	pipelines map[string]*benchPipeline
	exporter  *obs.Exporter
}

func (e *benchExecutor) Do(ctx context.Context, req loadgen.Request) error {
	switch req.Kind {
	case loadgen.KindQL:
		p := e.pipelines[req.Name]
		_, err := ql.ExecuteContext(ctx, e.client, p.t, p.v)
		return err
	case loadgen.KindSPARQL:
		_, err := endpoint.SelectContext(ctx, e.client, req.Text)
		return err
	case loadgen.KindUpdate:
		return endpoint.UpdateContext(ctx, e.client, req.Text)
	}
	return fmt.Errorf("bench: unknown request kind %q", req.Kind)
}

// DoTraced runs one sampled request with tracing forced and returns
// its trace ID, exporting the trace when -trace-export is set. Updates
// and clients without forced tracing fall back to the untraced path.
func (e *benchExecutor) DoTraced(ctx context.Context, req loadgen.Request) (string, error) {
	tc, ok := e.client.(endpoint.TracedClient)
	if !ok || req.Kind == loadgen.KindUpdate {
		return "", e.Do(ctx, req)
	}
	text := req.Text
	if req.Kind == loadgen.KindQL {
		p := e.pipelines[req.Name]
		text = p.t.Direct
		if p.v == ql.Alternative {
			text = p.t.Alternative
		}
	}
	_, tr, err := tc.SelectTraced(text)
	if tr == nil {
		return "", err
	}
	e.exporter.Export(tr) // nil-safe
	return string(tr.ID), err
}

// RetryCount forwards the client's transport retry counter when it has
// one (endpoint.Remote does), so snapshots and the report include it.
func (e *benchExecutor) RetryCount() int64 {
	if rc, ok := e.client.(loadgen.RetryCounter); ok {
		return rc.RetryCount()
	}
	return 0
}

// printBenchReport renders the human summary on w (stdout normally,
// stderr when -report - claims stdout for the JSON).
func printBenchReport(w io.Writer, rep *loadgen.Report) {
	fmt.Fprintf(w, "mode=%s clients=%d", rep.Mode, rep.Clients)
	if rep.Rate > 0 {
		fmt.Fprintf(w, " rate=%.1f/s", rep.Rate)
	}
	fmt.Fprintf(w, " seed=%d duration=%.1fs throughput=%.1f/s", rep.Seed, rep.DurationMs/1000, rep.ThroughputPerSec)
	if rep.Retries > 0 {
		fmt.Fprintf(w, " retries=%d", rep.Retries)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s %8s %8s %6s %6s %6s %6s %9s %9s %9s %9s\n",
		"CLASS", "SENT", "OK", "ERR", "SHED", "TMOUT", "CANCEL", "P50", "P95", "P99", "MAX")
	row := func(cr loadgen.ClassReport) {
		fmt.Fprintf(w, "%-8s %8d %8d %6d %6d %6d %6d %8.1fms %8.1fms %8.1fms %8.1fms\n",
			cr.Class, cr.Sent, cr.OK, cr.Errors, cr.Shed, cr.Timeouts, cr.Canceled,
			cr.Latency.P50Ms, cr.Latency.P95Ms, cr.Latency.P99Ms, cr.Latency.MaxMs)
	}
	for _, cr := range rep.Classes {
		row(cr)
	}
	row(rep.Total)
	if rep.Total.Service != nil {
		fmt.Fprintf(w, "service time (naive, excludes schedule queueing): p50=%.1fms p99=%.1fms max=%.1fms\n",
			rep.Total.Service.P50Ms, rep.Total.Service.P99Ms, rep.Total.Service.MaxMs)
	}
	if len(rep.Slowest) > 0 {
		fmt.Fprintln(w, "slowest requests:")
		for _, s := range rep.Slowest {
			line := fmt.Sprintf("  %8.1fms  %-8s %-24s seq=%d", s.LatencyMs, s.Class, s.Request, s.Seq)
			if s.TraceID != "" {
				line += "  trace=" + s.TraceID
			}
			fmt.Fprintln(w, line)
		}
	}
}
