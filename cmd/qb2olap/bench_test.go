package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/loadgen"
)

// TestCmdBenchClosedLoop runs a small in-process closed-loop workload
// end to end through the subcommand and checks the written report.
func TestCmdBenchClosedLoop(t *testing.T) {
	reportPath := filepath.Join(t.TempDir(), "report.json")
	err := cmdBench([]string{
		"-demo", "300", "-demo-enrich",
		"-mix", "ql=2,sparql=2,update=1",
		"-mode", "closed", "-clients", "2", "-requests", "40",
		"-queries", filepath.Join("..", "..", "queries"),
		"-snapshot-interval", "0",
		"-report", reportPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" || rep.Total.Sent != 40 || rep.Total.OK != 40 {
		t.Fatalf("report = mode=%s sent=%d ok=%d, want closed/40/40", rep.Mode, rep.Total.Sent, rep.Total.OK)
	}
	if len(rep.Classes) != 3 {
		t.Fatalf("report has %d classes, want 3", len(rep.Classes))
	}
	if rep.Total.Latency.Count != 40 || rep.Total.Latency.MaxMs <= 0 {
		t.Fatalf("latency snapshot = %+v, want 40 samples with a positive max", rep.Total.Latency)
	}
}

// TestCmdBenchOpenLoop checks the open-loop path reports both the
// intended-based latency and the naive service time.
func TestCmdBenchOpenLoop(t *testing.T) {
	reportPath := filepath.Join(t.TempDir(), "report.json")
	err := cmdBench([]string{
		"-demo", "300", "-demo-enrich",
		"-mix", "sparql=1",
		"-mode", "open", "-rate", "400", "-requests", "30",
		"-queries", filepath.Join("..", "..", "queries"),
		"-snapshot-interval", "0",
		"-report", reportPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.Rate != 400 || rep.Total.Sent != 30 {
		t.Fatalf("report = mode=%s rate=%.0f sent=%d, want open/400/30", rep.Mode, rep.Rate, rep.Total.Sent)
	}
	if rep.Total.Service == nil || rep.Total.Service.Count != 30 {
		t.Fatalf("open-loop report service recorder = %+v, want 30 samples", rep.Total.Service)
	}
}

// TestCmdBenchReportStdout pins -report -: stdout must be pure JSON
// (pipeable into benchjson -slo), with the human table on stderr.
func TestCmdBenchReportStdout(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	benchErr := cmdBench([]string{
		"-demo", "300", "-demo-enrich",
		"-mix", "update=1",
		"-mode", "closed", "-clients", "1", "-requests", "5",
		"-queries", filepath.Join("..", "..", "queries"),
		"-snapshot-interval", "0",
		"-report", "-",
	})
	w.Close()
	os.Stdout = old
	out, readErr := io.ReadAll(r)
	if benchErr != nil {
		t.Fatal(benchErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\n%s", err, out)
	}
	if rep.Total.Sent != 5 {
		t.Fatalf("report sent = %d, want 5", rep.Total.Sent)
	}
	if _, err := os.Stat("-"); err == nil {
		os.Remove("-")
		t.Fatal(`-report - created a literal file named "-"`)
	}
}

// TestCmdBenchRejectsBadFlags pins flag validation.
func TestCmdBenchRejectsBadFlags(t *testing.T) {
	base := []string{"-demo", "100", "-queries", filepath.Join("..", "..", "queries"), "-snapshot-interval", "0"}
	for _, tc := range [][]string{
		{"-mix", "nosuch=1"},
		{"-mix", "ql=0"},
		{"-mode", "sideways", "-requests", "5"},
		{"-mode", "open", "-rate", "0", "-requests", "5"},
		{"-requests", "0"},
		{"-mix", "ql=1", "-variant", "bogus", "-requests", "5", "-demo-enrich"},
	} {
		if err := cmdBench(append(append([]string{}, base...), tc...)); err == nil {
			t.Errorf("cmdBench(%v) accepted invalid flags", tc)
		}
	}
}
