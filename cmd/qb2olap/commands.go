package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/endpoint"
	"repro/internal/enrich"
	"repro/internal/eurostat"
	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/olap"
	"repro/internal/qb4olap"
	"repro/internal/ql"
	"repro/internal/rdf"
	"repro/internal/turtle"
	"repro/internal/vocab"
)

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	out := fs.String("out", "cube.ttl", "output Turtle file for the cube and dimension data")
	external := fs.String("external", "", "optional output Turtle file for the simulated external graph")
	quadsOut := fs.String("quads", "", "optional output N-Quads file holding cube, dimensions, and the external named graph together")
	obs := fs.Int("obs", 80000, "approximate observation count")
	seed := fs.Int64("seed", 42, "generator seed")
	noise := fs.Float64("noise", 0, "quasi-FD noise rate")
	fs.Parse(args)

	cfg := eurostat.DefaultConfig()
	cfg.TargetObservations = *obs
	cfg.Seed = *seed
	cfg.QuasiFDNoise = *noise
	cfg.IncludeExternal = *external != "" || *quadsOut != ""
	d := eurostat.Generate(cfg)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	tw := turtle.NewWriter(w, vocab.Prefixes())
	if err := tw.WriteTriples(append(append([]rdf.Triple{}, d.CubeTriples...), d.DimensionTriples...)); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d observations (%d triples) to %s\n", len(d.Observations), len(d.CubeTriples)+len(d.DimensionTriples), *out)

	if *quadsOut != "" {
		qf, err := os.Create(*quadsOut)
		if err != nil {
			return err
		}
		defer qf.Close()
		qw := bufio.NewWriter(qf)
		var quads []rdf.Quad
		for _, tr := range append(append([]rdf.Triple{}, d.CubeTriples...), d.DimensionTriples...) {
			quads = append(quads, rdf.NewQuad(tr.S, tr.P, tr.O, rdf.Term{}))
		}
		for _, tr := range d.ExternalTriples {
			quads = append(quads, rdf.NewQuad(tr.S, tr.P, tr.O, eurostat.ExternalGraph))
		}
		if err := turtle.WriteNQuads(qw, quads); err != nil {
			return err
		}
		if err := qw.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %d quads to %s\n", len(quads), *quadsOut)
	}
	if *external != "" {
		ef, err := os.Create(*external)
		if err != nil {
			return err
		}
		defer ef.Close()
		ew := bufio.NewWriter(ef)
		if err := turtle.NewWriter(ew, vocab.Prefixes()).WriteTriples(d.ExternalTriples); err != nil {
			return err
		}
		if err := ew.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %d external triples to %s\n", len(d.ExternalTriples), *external)
	}
	return nil
}

func cmdSuggest(args []string) error {
	fs := flag.NewFlagSet("suggest", flag.ExitOnError)
	var src sourceFlags
	src.register(fs)
	dsd := fs.String("dsd", eurostat.DSDIRI.Value, "QB data structure definition IRI")
	level := fs.String("level", "", "level IRI to discover candidates for")
	threshold := fs.Float64("threshold", 0, "quasi-FD error threshold")
	useExternal := fs.Bool("external", false, "also search the simulated external graph")
	fs.Parse(args)
	if *level == "" {
		return fmt.Errorf("suggest: -level is required")
	}

	tool, err := src.open()
	if err != nil {
		return err
	}
	opts := enrich.DefaultOptions()
	opts.QuasiFDThreshold = *threshold
	if *useExternal {
		opts.SearchGraphs = []rdf.Term{eurostat.ExternalGraph}
	}
	sess, err := tool.Enrich(parseIRI(*dsd), opts)
	if err != nil {
		return err
	}
	cands, err := sess.Suggest(parseIRI(*level))
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-55s %8s %8s %8s %9s\n", "KIND", "PROPERTY", "MEMBERS", "VALUES", "ERRORS", "SUPPORT")
	for _, c := range cands {
		fmt.Printf("%-10s %-55s %8d %8d %8.2f%% %8.0f%%\n",
			c.Kind, c.Property.Value, c.Members, c.DistinctValues, c.ErrorRate*100, c.Support*100)
	}
	return nil
}

// applyScript runs a line-based enrichment script against a session.
// The implementation lives in the enrich package (enrich.ApplyScript)
// so tests and other frontends can drive scripted enrichments too.
func applyScript(sess *enrich.Session, script string) error {
	return enrich.ApplyScript(sess, script)
}

func cmdEnrich(args []string) error {
	fs := flag.NewFlagSet("enrich", flag.ExitOnError)
	var src sourceFlags
	src.register(fs)
	dsd := fs.String("dsd", eurostat.DSDIRI.Value, "QB data structure definition IRI")
	script := fs.String("script", "", "enrichment script file")
	demoScript := fs.Bool("demo-script", false, "run the built-in demonstration enrichment")
	threshold := fs.Float64("threshold", 0, "quasi-FD error threshold")
	outSchema := fs.String("out-schema", "", "also write the schema triples to this Turtle file")
	outInstances := fs.String("out-instances", "", "also write the instance triples to this Turtle file")
	progress := fs.Bool("progress", false, "print live per-phase progress to stderr")
	report := fs.String("report", "", "write a JSON run report to this file (- for stdout)")
	fs.Parse(args)

	tool, err := src.open()
	if err != nil {
		return err
	}
	var prog *obs.Progress
	if *progress || *report != "" {
		prog = obs.NewProgress("enrich")
		if *progress {
			prog.OnEvent = obs.TermSink(os.Stderr)
		}
	}
	var sess *enrich.Session
	if *demoScript {
		opts := enrich.DefaultOptions()
		opts.Progress = prog
		sess, err = demo.EnrichDatasetWithOptions(tool.Client(), opts)
		if err != nil {
			return err
		}
	} else {
		if *script == "" {
			return fmt.Errorf("enrich: pass -script file or -demo-script")
		}
		data, err := os.ReadFile(*script)
		if err != nil {
			return err
		}
		opts := enrich.DefaultOptions()
		opts.QuasiFDThreshold = *threshold
		opts.Progress = prog
		sess, err = tool.Enrich(parseIRI(*dsd), opts)
		if err != nil {
			return err
		}
		if err := applyScript(sess, string(data)); err != nil {
			return err
		}
		if err := sess.Commit(); err != nil {
			return err
		}
	}
	if *report != "" {
		if err := prog.Report().WriteFile(*report); err != nil {
			return fmt.Errorf("enrich: writing run report: %w", err)
		}
	}

	stats, err := sess.Summary()
	if err != nil {
		return err
	}
	fmt.Printf("enriched cube %s\n", sess.Schema().DSD.Value)
	fmt.Printf("  dimensions:       %d\n", stats.Dimensions)
	fmt.Printf("  hierarchies:      %d\n", stats.Hierarchies)
	fmt.Printf("  levels:           %d\n", stats.Levels)
	fmt.Printf("  steps:            %d\n", stats.Steps)
	fmt.Printf("  schema triples:   %d\n", stats.SchemaTriples)
	fmt.Printf("  instance triples: %d\n", stats.InstanceTriples)

	if *outSchema != "" || *outInstances != "" {
		schema, instances, err := sess.GenerateTriples()
		if err != nil {
			return err
		}
		if *outSchema != "" {
			if err := writeTurtle(*outSchema, schema); err != nil {
				return err
			}
		}
		if *outInstances != "" {
			if err := writeTurtle(*outInstances, instances); err != nil {
				return err
			}
		}
	}
	fmt.Println(explore.RenderSchemaTree(sess.Schema()))
	return nil
}

func writeTurtle(path string, triples []rdf.Triple) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := turtle.NewWriter(w, vocab.Prefixes()).WriteTriples(triples); err != nil {
		return err
	}
	return w.Flush()
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	var src sourceFlags
	src.register(fs)
	cube := fs.String("cube", "", "QB4OLAP cube IRI (default: the only cube on the endpoint)")
	members := fs.String("members", "", "list the members of this level IRI")
	cluster := fs.String("cluster", "", "cluster child members by parent: childLevelIRI:parentLevelIRI")
	find := fs.String("find", "", "search members by label or notation substring")
	summary := fs.Bool("summary", false, "print member counts per level of every dimension")
	fs.Parse(args)

	tool, err := src.open()
	if err != nil {
		return err
	}
	ex := tool.Explorer()
	cubes, err := ex.Cubes()
	if err != nil {
		return err
	}
	var dsd rdf.Term
	if *cube != "" {
		dsd = parseIRI(*cube)
	} else {
		if len(cubes) == 0 {
			return fmt.Errorf("no QB4OLAP cubes on the endpoint — run 'qb2olap enrich' first")
		}
		dsd = cubes[0]
	}
	schema, err := ex.Schema(dsd)
	if err != nil {
		return err
	}

	switch {
	case *find != "":
		ms, err := ex.FindMembers(*find)
		if err != nil {
			return err
		}
		if len(ms) == 0 {
			fmt.Println("no members match")
			return nil
		}
		for _, m := range ms {
			fmt.Printf("%-24s %s\n", m.Label, m.IRI.Value)
		}
	case *summary:
		for _, d := range schema.Dimensions {
			sums, err := ex.DimensionSummary(d)
			if err != nil {
				return err
			}
			fmt.Printf("%s\n", d.IRI.Value)
			for _, ls := range sums {
				fmt.Printf("  %-60s %6d members\n", ls.Level.Value, ls.Members)
			}
		}
	case *members != "":
		ms, err := ex.Members(parseIRI(*members))
		if err != nil {
			return err
		}
		for _, m := range ms {
			label := m.Label
			if label == "" {
				label = m.IRI.Value
			}
			fmt.Printf("%-20s %s\n", label, m.IRI.Value)
		}
	case *cluster != "":
		parts := strings.SplitN(*cluster, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("explore: -cluster wants childLevelIRI:parentLevelIRI")
		}
		child, parent := parseIRI(parts[0]), parseIRI(parts[1])
		step, ok := findStep(schema, child, parent)
		if !ok {
			return fmt.Errorf("no hierarchy step from %s to %s", child.Value, parent.Value)
		}
		clusters, err := ex.ClusterByParent(step)
		if err != nil {
			return err
		}
		fmt.Print(explore.RenderClusters(clusters))
	default:
		fmt.Print(explore.RenderSchemaTree(schema))
	}
	return nil
}

func findStep(schema *qb4olap.CubeSchema, child, parent rdf.Term) (qb4olap.HierarchyStep, bool) {
	for _, d := range schema.Dimensions {
		for _, h := range d.Hierarchies {
			for _, st := range h.Steps {
				if st.Child == child && st.Parent == parent {
					return st, true
				}
			}
		}
	}
	return qb4olap.HierarchyStep{}, false
}

func loadSchemaForQuery(tool toolLike, cube string) (*qb4olap.CubeSchema, error) {
	cubes, err := tool.Cubes()
	if err != nil {
		return nil, err
	}
	if cube != "" {
		return tool.Schema(parseIRI(cube))
	}
	if len(cubes) == 0 {
		return nil, fmt.Errorf("no QB4OLAP cubes on the endpoint — run 'qb2olap enrich' first")
	}
	return tool.Schema(cubes[0])
}

// toolLike is the slice of core.Tool the query commands need.
type toolLike interface {
	Cubes() ([]rdf.Term, error)
	Schema(rdf.Term) (*qb4olap.CubeSchema, error)
}

func cmdTranslate(args []string) error {
	fs := flag.NewFlagSet("translate", flag.ExitOnError)
	var src sourceFlags
	src.register(fs)
	queryFile := fs.String("query", "", "QL program file")
	cube := fs.String("cube", "", "QB4OLAP cube IRI")
	variant := fs.String("variant", "auto", "auto (planner picks one), direct, alternative, or both")
	demoEnrich := fs.Bool("demo-enrich", false, "run the demonstration enrichment first (for -demo/-data sources)")
	fs.Parse(args)
	if *queryFile == "" {
		return fmt.Errorf("translate: -query is required")
	}
	tool, err := src.open()
	if err != nil {
		return err
	}
	if *demoEnrich {
		if _, err := demo.EnrichDataset(tool.Client()); err != nil {
			return err
		}
	}
	schema, err := loadSchemaForQuery(tool, *cube)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*queryFile)
	if err != nil {
		return err
	}
	p, err := tool.Prepare(string(data), schema)
	if err != nil {
		return err
	}
	fmt.Println("# Simplified QL program:")
	fmt.Println(p.Simplified)
	want := *variant
	if want == "auto" {
		if !src.plannerOn() {
			// Planner off: no cost model to choose with — show both, the
			// pre-planner behavior.
			want = "both"
		} else {
			sel := ql.Choose(tool.Client(), p.Translation)
			fmt.Printf("# plan: %s\n", sel)
			want = sel.Variant.String()
		}
	}
	if want == "direct" || want == "both" {
		fmt.Println("# Direct translation:")
		fmt.Println(p.Translation.Direct)
	}
	if want == "alternative" || want == "both" {
		fmt.Println("# Alternative translation:")
		fmt.Println(p.Translation.Alternative)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var src sourceFlags
	src.register(fs)
	queryFile := fs.String("query", "", "QL program file")
	predefined := fs.String("predefined", "", "run a predefined demo query by name (see -list-predefined)")
	listPredefined := fs.Bool("list-predefined", false, "list the predefined demo queries and exit")
	cube := fs.String("cube", "", "QB4OLAP cube IRI")
	variant := fs.String("variant", "auto", "auto (planner picks the cheaper translation), direct, or alternative")
	pivot := fs.Bool("pivot", false, "render a two-axis result as a pivot table")
	demoEnrich := fs.Bool("demo-enrich", false, "run the demonstration enrichment first (for -demo/-data sources)")
	traceRun := fs.Bool("trace", false, "print QL pipeline phase timings and the end-to-end EXPLAIN ANALYZE trace (stitched over HTTP for remote sources; to stderr)")
	traceExport := fs.String("trace-export", "", "also append the collected trace as JSONL to this file (implies -trace)")
	fs.Parse(args)
	if *listPredefined {
		for _, pq := range demo.PredefinedQueries {
			fmt.Printf("%-22s %s\n", pq.Name, pq.Description)
		}
		return nil
	}
	var qlSource string
	switch {
	case *predefined != "":
		pq, ok := demo.FindPredefinedQuery(*predefined)
		if !ok {
			return fmt.Errorf("query: unknown predefined query %q (try -list-predefined)", *predefined)
		}
		qlSource = pq.QL
	case *queryFile != "":
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		qlSource = string(data)
	default:
		return fmt.Errorf("query: pass -query file or -predefined name")
	}
	tool, err := src.open()
	if err != nil {
		return err
	}
	if *demoEnrich {
		if _, err := demo.EnrichDataset(tool.Client()); err != nil {
			return err
		}
	}
	schema, err := loadSchemaForQuery(tool, *cube)
	if err != nil {
		return err
	}
	var v ql.Variant
	switch *variant {
	case "auto":
		v = ql.Auto
		if !src.plannerOn() {
			// Planner off: no cost model to choose with; run the direct
			// translation, the pre-planner default.
			v = ql.Direct
		}
	case "direct":
		v = ql.Direct
	case "alternative":
		v = ql.Alternative
	default:
		return fmt.Errorf("query: invalid -variant %q (want auto, direct, or alternative)", *variant)
	}
	var cubeRes *olap.Cube
	if *traceRun || *traceExport != "" {
		cubeRes, err = runTraced(tool, qlSource, schema, v, *traceExport)
	} else {
		cubeRes, err = tool.Query(qlSource, schema, v)
	}
	if err != nil {
		return err
	}
	if *pivot {
		fmt.Print(cubeRes.Pivot())
	} else {
		fmt.Print(cubeRes.Table())
	}
	fmt.Printf("\n%d cells\n", len(cubeRes.Cells))
	return nil
}

// runTraced is the -trace path of cmdQuery: it runs the pipeline with
// per-phase timings and evaluates the translated SPARQL with tracing
// forced, printing one end-to-end EXPLAIN ANALYZE tree. In-process
// sources trace the engine directly; remote sources propagate the
// trace over HTTP and render the stitched client+server tree (client
// HTTP span plus the server's per-operator spans, one trace ID).
// Diagnostics go to stderr; the result cube still renders on stdout.
// A non-empty exportPath additionally appends the trace as JSONL for
// later `qb2olap trace` analysis.
func runTraced(tool *core.Tool, qlSource string, schema *qb4olap.CubeSchema, v ql.Variant, exportPath string) (*olap.Cube, error) {
	p, err := tool.Prepare(qlSource, schema)
	if err != nil {
		return nil, err
	}
	if v == ql.Auto {
		planStart := time.Now()
		sel := ql.Choose(tool.Client(), p.Translation)
		p.Translation.Selection = &sel
		p.Timings = append(p.Timings, ql.PhaseTiming{Phase: "plan(" + sel.String() + ")", Wall: time.Since(planStart)})
		v = sel.Variant
	}
	queryText := p.Translation.Direct
	if v == ql.Alternative {
		queryText = p.Translation.Alternative
	}

	var cubeRes *olap.Cube
	start := time.Now()
	if tc, ok := tool.Client().(endpoint.TracedClient); ok {
		res, tr, err := tc.SelectTraced(queryText)
		if err != nil {
			return nil, err
		}
		if p.Translation.Selection != nil {
			tr.Plan = p.Translation.Selection.String()
		}
		cubeRes = ql.Materialize(p.Translation, res)
		fmt.Fprintln(os.Stderr, "# EXPLAIN ANALYZE:")
		fmt.Fprintln(os.Stderr, tr.Render())
		if exportPath != "" {
			exp, err := obs.NewExporter(exportPath, obs.DefaultExportMaxBytes, 3)
			if err != nil {
				return nil, fmt.Errorf("query: opening trace export: %w", err)
			}
			exp.Export(tr)
			if err := exp.Close(); err != nil {
				return nil, fmt.Errorf("query: writing trace export: %w", err)
			}
			fmt.Fprintf(os.Stderr, "# trace appended to %s\n", exportPath)
		}
	} else {
		// A client without forced tracing: fall back to the protocol's
		// explain surface for the server-side plan, then run the query
		// for real. The plan costs one extra evaluation but -trace is
		// explicitly a diagnostic mode.
		if ex, ok := tool.Client().(endpoint.Explainer); ok {
			plan, err := ex.Explain(queryText)
			if err != nil {
				fmt.Fprintf(os.Stderr, "# server-side EXPLAIN unavailable: %v\n", err)
			} else {
				fmt.Fprintln(os.Stderr, "# EXPLAIN ANALYZE (server-side):")
				fmt.Fprint(os.Stderr, plan)
			}
		}
		cubeRes, err = ql.Execute(tool.Client(), p.Translation, v)
		if err != nil {
			return nil, err
		}
	}
	p.Timings = append(p.Timings, ql.PhaseTiming{Phase: "execute(" + v.String() + ")", Wall: time.Since(start)})

	fmt.Fprintln(os.Stderr, "# QL pipeline timings:")
	for _, t := range p.Timings {
		fmt.Fprintf(os.Stderr, "#   %-22s %s\n", t.Phase, t.Wall)
	}
	return cubeRes, nil
}

func cmdSPARQL(args []string) error {
	fs := flag.NewFlagSet("sparql", flag.ExitOnError)
	var src sourceFlags
	src.register(fs)
	queryFile := fs.String("query", "", "SPARQL query file (- for stdin)")
	fs.Parse(args)
	if *queryFile == "" {
		return fmt.Errorf("sparql: -query is required")
	}
	tool, err := src.open()
	if err != nil {
		return err
	}
	var data []byte
	if *queryFile == "-" {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		data = []byte(b.String())
	} else {
		data, err = os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
	}
	res, err := tool.Client().Select(string(data))
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	var src sourceFlags
	src.register(fs)
	cube := fs.String("cube", "", "QB4OLAP cube IRI (default: the only cube on the endpoint)")
	fs.Parse(args)

	tool, err := src.open()
	if err != nil {
		return err
	}
	schema, err := loadSchemaForQuery(tool, *cube)
	if err != nil {
		return err
	}
	schemaProbs := schema.Validate()
	instProbs, err := qb4olap.ValidateInstances(tool.Client(), schema)
	if err != nil {
		return err
	}
	if len(schemaProbs) == 0 && len(instProbs) == 0 {
		fmt.Printf("cube %s: schema and instances are well-formed\n", schema.DSD.Value)
		return nil
	}
	for _, p := range schemaProbs {
		fmt.Printf("schema   %s\n", p)
	}
	for _, p := range instProbs {
		fmt.Printf("instance %s\n", p)
	}
	return fmt.Errorf("validate: %d schema and %d instance problems", len(schemaProbs), len(instProbs))
}
