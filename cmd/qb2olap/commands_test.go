package main

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/enrich"
	"repro/internal/eurostat"
	"repro/internal/rdf"
)

func TestParseIRI(t *testing.T) {
	if parseIRI("http://x/a") != rdf.NewIRI("http://x/a") {
		t.Error("bare IRI")
	}
	if parseIRI("<http://x/a>") != rdf.NewIRI("http://x/a") {
		t.Error("angle-bracketed IRI")
	}
}

func TestSourceFlagsDemo(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var src sourceFlags
	src.register(fs)
	if err := fs.Parse([]string{"-demo", "500", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	tool, err := src.open()
	if err != nil {
		t.Fatal(err)
	}
	dss, err := tool.DataSets()
	if err != nil || len(dss) != 1 {
		t.Fatalf("datasets: %v %v", dss, err)
	}
}

func TestSourceFlagsEmptyFails(t *testing.T) {
	var src sourceFlags
	if _, err := src.open(); err == nil {
		t.Fatal("empty source must fail")
	}
}

func TestSourceFlagsMissingFile(t *testing.T) {
	var src sourceFlags
	src.dataFiles = fileList{"/nonexistent/file.ttl"}
	if _, err := src.open(); err == nil {
		t.Fatal("missing file must fail")
	}
}

func newScriptSession(t *testing.T) *enrich.Session {
	t.Helper()
	var src sourceFlags
	src.demoObs = 800
	src.seed = 42
	tool, err := src.open()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tool.Enrich(eurostat.DSDIRI, enrich.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestApplyScript(t *testing.T) {
	sess := newScriptSession(t)
	script := `
# comment and blank lines are skipped

aggregate <http://purl.org/linked-data/sdmx/2009/measure#obsValue> avg
level <http://eurostat.linked-statistics.org/property#citizen> <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#continent>
attribute <http://eurostat.linked-statistics.org/property#citizen> <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#countryName>
all <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#citizenDim>
`
	if err := applyScript(sess, script); err != nil {
		t.Fatal(err)
	}
	dim, ok := sess.Schema().DimensionOfLevel(eurostat.PropCitizen)
	if !ok {
		t.Fatal("citizen dimension missing")
	}
	if _, ok := dim.PathToLevel(eurostat.PropContinent); !ok {
		t.Error("continent level not added")
	}
	m, _ := sess.Schema().Measure(eurostat.PropObs)
	if m.Agg.String() != "avg" {
		t.Errorf("aggregate = %v", m.Agg)
	}
}

func TestApplyScriptErrors(t *testing.T) {
	cases := []struct {
		name, script, wantErr string
	}{
		{"unknown-command", "frobnicate x", "unknown command"},
		{"bad-aggregate", "aggregate <http://purl.org/linked-data/sdmx/2009/measure#obsValue> median", "unknown aggregate"},
		{"aggregate-arity", "aggregate x", "usage: aggregate"},
		{"level-arity", "level x", "usage: level"},
		{"all-arity", "all", "usage: all"},
		{"not-suggested", "level <http://eurostat.linked-statistics.org/property#citizen> <http://nope>", "not suggested"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sess := newScriptSession(t)
			err := applyScript(sess, c.script)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestApplyScriptAllArityError(t *testing.T) {
	sess := newScriptSession(t)
	if err := applyScript(sess, "all a b"); err == nil || !strings.Contains(err.Error(), "usage: all") {
		t.Fatalf("err = %v", err)
	}
}
