// Command qb2olap is the CLI frontend to the QB2OLAP tool: it exposes
// the Enrichment, Exploration, and Querying modules of the paper as
// subcommands over either an in-process dataset or a remote SPARQL
// endpoint.
//
// Usage:
//
//	qb2olap <subcommand> [flags]
//
// Subcommands:
//
//	generate    write the synthetic Eurostat cube as Turtle
//	suggest     discover roll-up/attribute candidates for a level
//	enrich      run a scripted enrichment and commit the triples
//	explore     print the cube schema tree, members, or clusters
//	validate    run schema and instance integrity checks on a cube
//	translate   translate a QL program to SPARQL (both variants)
//	query       run a QL program and print the result cube
//	sparql      run a raw SPARQL SELECT query
//	bench       fire a mixed workload at the source and report latency
//	monitor     live terminal view of a remote sparqld's /timeseries
//	trace       analyze an exported JSONL trace archive offline
//
// Data source flags (shared): -endpoint URL for a remote SPARQL
// endpoint, -data file.ttl for a local Turtle file, or -demo N for the
// generated demonstration cube. For in-process sources, -parallel
// bounds the worker goroutines per query evaluation (0 = GOMAXPROCS,
// 1 = sequential).
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "generate":
		err = cmdGenerate(args)
	case "suggest":
		err = cmdSuggest(args)
	case "enrich":
		err = cmdEnrich(args)
	case "explore":
		err = cmdExplore(args)
	case "validate":
		err = cmdValidate(args)
	case "translate":
		err = cmdTranslate(args)
	case "query":
		err = cmdQuery(args)
	case "sparql":
		err = cmdSPARQL(args)
	case "bench":
		err = cmdBench(args)
	case "monitor":
		err = cmdMonitor(args)
	case "trace":
		err = cmdTrace(args)
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "qb2olap: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qb2olap: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `qb2olap — OLAP on statistical linked open data

Subcommands:
  generate   -out cube.ttl [-external ext.ttl] [-quads all.nq] [-obs N] [-seed S]
  suggest    <source> -level IRI [-threshold F] [-external]
  enrich     <source> [-script file | -demo-script] [-out-schema f] [-out-instances f] [-progress] [-report f]
  explore    <source> [-cube IRI] [-members IRI] [-cluster child:parent] [-find text] [-summary]
  validate   <source> [-cube IRI]
  translate  <source> -query file.ql [-variant direct|alternative|both]
  query      <source> -query file.ql [-variant direct|alternative] [-pivot] [-trace] [-trace-export f.jsonl]
  sparql     <source> -query file.rq
  bench      <source> [-mix ql=3,sparql=2,update=1] [-mode closed|open] [-clients N] [-rate R]
             [-requests N | -duration D] [-report f.json] [-trace-every N] [-trace-export f.jsonl]
             [-dash-addr :8090]
  monitor    -endpoint URL [-interval D] [-window D] [-once]
  trace      -in traces.jsonl [-top N]

<source> is one of:
  -endpoint URL   remote SPARQL endpoint (e.g. http://localhost:8080)
  -data file.ttl  local Turtle file loaded in-process (repeatable)
  -quads file.nq  local N-Quads file loaded in-process, keeping named graphs
  -demo N         generated demonstration cube with N observations

In-process sources also accept -parallel N: worker goroutines per query
evaluation (0 = GOMAXPROCS, 1 = sequential).
`)
}
