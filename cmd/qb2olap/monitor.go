package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// qb2olap monitor: a live terminal view of a remote sparqld. It polls
// the server's /timeseries (and /alerts, when mounted) JSON APIs every
// -interval and redraws one frame — stat lines plus Unicode sparklines
// for throughput, latency quantiles, shed/error rates, and runtime
// gauges — so a shell is enough to watch a server under load.

// monitorSeries are the series a frame renders, in order. Missing
// series (e.g. bench_* against a sparqld) are skipped silently.
var monitorSeries = []struct {
	name  string
	label string
	mode  string // "rate", "p50p99", "gauge"
	unit  string
	scale float64
}{
	{"queries_total", "queries", "rate", "q/s", 1},
	{"updates_total", "updates", "rate", "u/s", 1},
	{"query_latency", "latency", "p50p99", "ms", 1},
	{"queries_failed_total", "failed", "rate", "/s", 1},
	{"queries_shed_total", "shed", "rate", "/s", 1},
	{"queries_inflight", "in flight", "gauge", "", 1},
	{"go_heap_inuse_bytes", "heap", "gauge", "MiB", 1 << 20},
	{"go_goroutines", "goroutines", "gauge", "", 1},
	{"bench_sent_total", "bench sent", "rate", "q/s", 1},
	{"bench_latency", "bench latency", "p50p99", "ms", 1},
	{"bench_inflight", "bench in flight", "gauge", "", 1},
}

// sparkRunes renders values as a Unicode sparkline scaled to the
// series' own [min(0,min), max] range.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func sparkline(pts []obs.SeriesPoint, width int) string {
	if len(pts) == 0 {
		return strings.Repeat(" ", width)
	}
	// Downsample to width by taking the last sample of each cell.
	vals := make([]float64, 0, width)
	if len(pts) > width {
		pts = pts[len(pts)-width:]
	}
	lo, hi := 0.0, 0.0
	for _, p := range pts {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
		vals = append(vals, p.V)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	for i := len(vals); i < width; i++ {
		b.WriteByte(' ')
	}
	for _, v := range vals {
		idx := int((v - lo) / span * float64(len(sparkRunes)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

func lastV(pts []obs.SeriesPoint) (float64, bool) {
	if len(pts) == 0 {
		return 0, false
	}
	return pts[len(pts)-1].V, true
}

// renderMonitor writes one frame from decoded /timeseries and /alerts
// snapshots. Split from the fetch loop so tests can render a frame
// from canned data.
func renderMonitor(w io.Writer, endpoint string, snap *obs.TimeSeriesSnapshot, alerts *obs.AlertsSnapshot) {
	const width = 40
	byName := make(map[string]*obs.SeriesData, len(snap.Series))
	for i := range snap.Series {
		byName[snap.Series[i].Name] = &snap.Series[i]
	}
	fmt.Fprintf(w, "qb2olap monitor — %s  window %s  tick %dms  %s\n\n",
		endpoint, time.Duration(snap.WindowMs)*time.Millisecond,
		snap.TickMs, time.UnixMilli(snap.NowMs).UTC().Format("15:04:05Z"))
	for _, ms := range monitorSeries {
		sd, ok := byName[ms.name]
		if !ok {
			continue
		}
		switch ms.mode {
		case "rate":
			v, haveV := lastV(sd.Rate)
			val := "–"
			if haveV {
				val = fmt.Sprintf("%.1f", v/ms.scale)
			}
			fmt.Fprintf(w, "%-16s %10s %-4s %s\n", ms.label, val, ms.unit, sparkline(sd.Rate, width))
		case "p50p99":
			p50, have50 := lastV(sd.P50)
			p99, have99 := lastV(sd.P99)
			val := "–"
			if have50 && have99 {
				val = fmt.Sprintf("%.1f/%.1f", p50, p99)
			}
			fmt.Fprintf(w, "%-16s %10s %-4s %s  (p50/p99, spark=p99)\n", ms.label, val, ms.unit, sparkline(sd.P99, width))
		case "gauge":
			v, haveV := lastV(sd.Points)
			val := "–"
			if haveV {
				val = fmt.Sprintf("%.1f", v/ms.scale)
			}
			fmt.Fprintf(w, "%-16s %10s %-4s %s\n", ms.label, val, ms.unit, sparkline(sd.Points, width))
		}
	}
	if alerts != nil {
		fmt.Fprintf(w, "\nalerts (%d firing, fast %s / slow %s):\n", alerts.Firing,
			time.Duration(alerts.FastWindowMs)*time.Millisecond,
			time.Duration(alerts.SlowWindowMs)*time.Millisecond)
		rules := append([]obs.AlertStatus(nil), alerts.Rules...)
		sort.Slice(rules, func(i, j int) bool { return rules[i].Name < rules[j].Name })
		for _, r := range rules {
			state := "ok"
			switch {
			case r.Firing:
				state = "FIRING"
			case !r.FastOK:
				state = "no data"
			}
			fmt.Fprintf(w, "  %-14s %-8s fast=%-10.3f slow=%-10.3f max=%g\n",
				r.Name, state, r.FastValue, r.SlowValue, r.Max)
		}
	}
}

// fetchJSON decodes one endpoint response; a 404 returns (false, nil)
// so monitor degrades gracefully against servers without /alerts.
func fetchJSON(client *http.Client, url string, v any) (bool, error) {
	resp, err := client.Get(url)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return true, json.NewDecoder(resp.Body).Decode(v)
}

func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	endpoint := fs.String("endpoint", "", "sparqld base URL (e.g. http://localhost:8080)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	window := fs.Duration("window", 5*time.Minute, "trailing window requested from /timeseries")
	once := fs.Bool("once", false, "render a single frame and exit (no screen clearing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *endpoint == "" {
		return fmt.Errorf("monitor: -endpoint is required")
	}
	base := strings.TrimRight(*endpoint, "/")
	client := &http.Client{Timeout: 10 * time.Second}
	for {
		var snap obs.TimeSeriesSnapshot
		ok, err := fetchJSON(client, fmt.Sprintf("%s/timeseries?window=%s", base, *window), &snap)
		if err != nil {
			return fmt.Errorf("monitor: %w (is sparqld running with -tick > 0?)", err)
		}
		if !ok {
			return fmt.Errorf("monitor: %s/timeseries not found (is sparqld running with -tick > 0?)", base)
		}
		var alerts *obs.AlertsSnapshot
		var as obs.AlertsSnapshot
		if ok, err := fetchJSON(client, base+"/alerts", &as); err == nil && ok {
			alerts = &as
		}
		if !*once {
			// ANSI home + clear-to-end redraws in place without scrollback spam.
			fmt.Print("\x1b[H\x1b[2J")
		}
		renderMonitor(os.Stdout, base, &snap, alerts)
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}
