package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

func monitorSnapshot() *obs.TimeSeriesSnapshot {
	pts := func(vs ...float64) []obs.SeriesPoint {
		out := make([]obs.SeriesPoint, len(vs))
		for i, v := range vs {
			out[i] = obs.SeriesPoint{T: int64(i * 1000), V: v}
		}
		return out
	}
	return &obs.TimeSeriesSnapshot{
		NowMs: 5_000, TickMs: 1000, WindowMs: 300_000,
		Series: []obs.SeriesData{
			{Name: "queries_total", Kind: obs.KindCounter, Points: pts(10, 20, 30), Rate: pts(10, 10, 10)},
			{Name: "query_latency", Kind: obs.KindHistogram, Points: pts(3, 3, 3),
				Rate: pts(3, 3, 3), P50: pts(4, 5, 6), P99: pts(40, 50, 60)},
			{Name: "queries_inflight", Kind: obs.KindGauge, Points: pts(1, 2, 3)},
			{Name: "go_heap_inuse_bytes", Kind: obs.KindGauge, Points: pts(64 << 20)},
			{Name: "unknown_series", Kind: obs.KindCounter, Points: pts(1)},
		},
	}
}

func TestRenderMonitorFrame(t *testing.T) {
	alerts := &obs.AlertsSnapshot{
		FastWindowMs: 300_000, SlowWindowMs: 3_600_000, Firing: 1,
		Rules: []obs.AlertStatus{
			{Name: "p99_latency", Firing: true, FastValue: 250, SlowValue: 180, Max: 100, FastOK: true, SlowOK: true},
			{Name: "error_rate", Firing: false, FastOK: false},
		},
	}
	var b bytes.Buffer
	renderMonitor(&b, "http://localhost:8080", monitorSnapshot(), alerts)
	out := b.String()

	for _, want := range []string{
		"qb2olap monitor — http://localhost:8080",
		"queries",     // rate line
		"10.0",        // last q/s value
		"latency",  // quantile line
		"6.0/60.0", // last p50/p99 pair
		"in flight",
		"heap",
		"64.0", // MiB-scaled heap gauge
		"alerts (1 firing",
		"p99_latency",
		"FIRING",
		"error_rate",
		"no data",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// Unknown series are skipped, not rendered raw.
	if strings.Contains(out, "unknown_series") {
		t.Error("frame rendered a series outside the monitor table")
	}
	// Sparklines use the block-element ramp.
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Error("frame has no sparkline runes")
	}
}

func TestRenderMonitorWithoutAlerts(t *testing.T) {
	var b bytes.Buffer
	renderMonitor(&b, "http://localhost:8080", monitorSnapshot(), nil)
	if out := b.String(); strings.Contains(out, "alerts (") {
		t.Errorf("alerts section rendered without alert data:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 4); got != "    " {
		t.Errorf("empty sparkline = %q", got)
	}
	pts := []obs.SeriesPoint{{V: 0}, {V: 1}, {V: 2}, {V: 3}}
	got := sparkline(pts, 4)
	if len([]rune(got)) != 4 {
		t.Fatalf("sparkline width = %d, want 4", len([]rune(got)))
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline ramp = %q", got)
	}
	// Fewer points than width left-pads with spaces.
	padded := sparkline(pts[:2], 6)
	if !strings.HasPrefix(padded, "    ") {
		t.Errorf("short sparkline not left-padded: %q", padded)
	}
}
