package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/endpoint"
	"repro/internal/eurostat"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

// sourceFlags are the shared data-source flags.
type sourceFlags struct {
	endpointURL string
	dataFiles   fileList
	quadFiles   fileList
	demoObs     int
	seed        int64
	parallel    int
	chunkSize   int
	planner     string
	retries     int
	timeout     time.Duration
}

type fileList []string

func (f *fileList) String() string { return fmt.Sprint(*f) }

func (f *fileList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func (s *sourceFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&s.endpointURL, "endpoint", "", "remote SPARQL endpoint base URL")
	fs.Var(&s.dataFiles, "data", "Turtle file to load in-process (repeatable)")
	fs.Var(&s.quadFiles, "quads", "N-Quads file to load in-process, preserving named graphs (repeatable)")
	fs.IntVar(&s.demoObs, "demo", 0, "generate the demo cube with this many observations")
	fs.Int64Var(&s.seed, "seed", 42, "generator seed for -demo")
	fs.IntVar(&s.parallel, "parallel", 0, "worker goroutines per in-process query evaluation (0 = GOMAXPROCS, 1 = sequential)")
	fs.IntVar(&s.chunkSize, "chunk-size", 1024, "streaming chunk size in rows for in-process query evaluation (0 = materialized evaluation)")
	fs.StringVar(&s.planner, "planner", "on", "cost-based query planner: on (reorder joins, push filters, auto-select QL translation) or off (written order, runtime reorder only)")
	fs.IntVar(&s.retries, "retries", 2, "retries per idempotent remote query on transient failures (0 disables; updates are never retried)")
	fs.DurationVar(&s.timeout, "timeout", 0, "per-attempt timeout for remote endpoint requests (0 = none)")
}

// plannerOn reports the -planner flag verdict. For remote sources the
// flag only governs client-side behavior (QL translation auto-selection
// falls back to the direct default); the server's own -planner flag
// governs its evaluation.
func (s *sourceFlags) plannerOn() bool { return s.planner != "off" }

// open builds the tool around the selected source.
func (s *sourceFlags) open() (*core.Tool, error) {
	if s.planner != "on" && s.planner != "off" && s.planner != "" {
		return nil, fmt.Errorf("invalid -planner value %q (want on or off)", s.planner)
	}
	if s.endpointURL != "" {
		r := endpoint.NewRemote(s.endpointURL)
		r.Retries = s.retries
		r.Timeout = s.timeout
		if s.retries > 0 {
			r.Breaker = endpoint.NewBreaker(5, time.Second)
		}
		return core.New(r), nil
	}
	st := store.New()
	for _, path := range s.dataFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		triples, _, err := turtle.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		st.InsertTriples(rdf.Term{}, triples)
	}
	for _, path := range s.quadFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		quads, err := turtle.ParseNQuads(string(data))
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		turtle.LoadQuads(st, quads)
	}
	if s.demoObs > 0 {
		cfg := eurostat.DefaultConfig()
		cfg.TargetObservations = s.demoObs
		cfg.Seed = s.seed
		eurostat.Generate(cfg).LoadInto(st)
	}
	if st.TotalLen() == 0 {
		return nil, fmt.Errorf("no data source: pass -endpoint, -data, or -demo")
	}
	return core.New(endpoint.NewLocal(st,
		sparql.WithParallelism(s.parallel),
		sparql.WithChunkSize(s.chunkSize),
		sparql.WithPlanner(s.plannerOn()))), nil
}

// parseIRI reads an IRI flag value, accepting <...> or bare form.
func parseIRI(v string) rdf.Term {
	if len(v) >= 2 && v[0] == '<' && v[len(v)-1] == '>' {
		v = v[1 : len(v)-1]
	}
	return rdf.NewIRI(v)
}
