package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// cmdTrace is the offline trace analyzer: it reads a JSONL trace
// archive written by `sparqld -trace-export` or `qb2olap query
// -trace-export` and prints the slowest traces, per-operator latency
// and cardinality breakdowns, and estimate-vs-actual accuracy.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	in := fs.String("in", "", "exported trace JSONL file (- for stdin); rotated segments can be analyzed separately")
	top := fs.Int("top", 10, "number of slowest traces to list")
	workload := fs.Bool("workload", false, "aggregate the archive into per-shape workload statistics instead of the trace analysis (requires traces exported with query text)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("trace: -in is required")
	}
	var r io.Reader
	if *in == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	if *workload {
		return workloadFromTraces(r, os.Stdout)
	}
	return analyzeTraces(r, *top, os.Stdout)
}

// workloadFromTraces replays a JSONL trace archive through the workload
// registry and renders the per-shape table — the same view a live
// server serves at /workload, computed offline.
func workloadFromTraces(r io.Reader, w io.Writer) error {
	traces, err := obs.ReadTraces(r)
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("trace: no traces in input")
	}
	_, err = io.WriteString(w, obs.WorkloadFromTraces(traces).Snapshot().RenderText())
	return err
}

// analyzeTraces reads a JSONL trace stream and writes the rendered
// analysis. Split from cmdTrace so tests can drive it over fixture
// files without touching os.Stdin/os.Stdout.
func analyzeTraces(r io.Reader, top int, w io.Writer) error {
	traces, err := obs.ReadTraces(r)
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("trace: no traces in input")
	}
	_, err = io.WriteString(w, obs.Analyze(traces).Render(top))
	return err
}
