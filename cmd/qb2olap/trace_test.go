package main

import (
	"os"
	"strings"
	"testing"
)

// TestAnalyzeTracesFixture drives the offline analyzer over a
// committed JSONL archive and checks the report surfaces the slowest
// trace, the per-operator breakdown, and the estimate-accuracy table.
func TestAnalyzeTracesFixture(t *testing.T) {
	f, err := os.Open("testdata/traces_fixture.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out strings.Builder
	if err := analyzeTraces(f, 2, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	// Slowest trace (250ms, ID bbbb...) must head the top-N list; with
	// top=2 the fastest trace (cccc...) must be cut.
	for _, want := range []string{
		"traces: 3",
		"bbbbbbbbbbbbbbbb0000000000000002",
		"aaaaaaaaaaaaaaaa0000000000000001",
		"SELECT ?v WHERE { ?o obsValue ?v }", // query line, PREFIX skipped for the other
		"BGP",
		"PROJECT",
		"HTTP",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "cccccccccccccccc0000000000000003") {
		t.Errorf("top-2 list should cut the fastest trace:\n%s", got)
	}
	if idxB, idxA := strings.Index(got, "bbbbbbbbbbbbbbbb"), strings.Index(got, "aaaaaaaaaaaaaaaa"); idxB > idxA {
		t.Errorf("slowest trace not listed first:\n%s", got)
	}
	// The 5000-actual/400-estimate BGP span gives q-error 12.5, which
	// must show up in the accuracy table's MAX-QERR column.
	if !strings.Contains(got, "12.5") {
		t.Errorf("report missing the 12.5 max q-error:\n%s", got)
	}
}

func TestAnalyzeTracesEmptyAndMalformed(t *testing.T) {
	if err := analyzeTraces(strings.NewReader(""), 5, &strings.Builder{}); err == nil {
		t.Error("empty input should error")
	}
	if err := analyzeTraces(strings.NewReader("{not json\n"), 5, &strings.Builder{}); err == nil {
		t.Error("malformed input should error")
	}
}
