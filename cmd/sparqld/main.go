// Command sparqld serves an in-memory RDF store over the SPARQL 1.1
// protocol (query at /sparql, update at /update, bulk load at /load),
// playing the role of the Virtuoso endpoint in the QB2OLAP paper.
//
// Usage:
//
//	sparqld [-addr :8080] [-data file.ttl]... [-demo N] [-parallel N]
//
// -data loads a Turtle file into the default graph (repeatable);
// -demo N generates the synthetic Eurostat asylum cube with N
// observations (plus the simulated external graph) and loads it.
// -parallel bounds the worker goroutines each query evaluation may use
// (0, the default, selects GOMAXPROCS; 1 forces sequential
// evaluation).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/endpoint"
	"repro/internal/eurostat"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

type fileList []string

func (f *fileList) String() string { return fmt.Sprint(*f) }

func (f *fileList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var files fileList
	addr := flag.String("addr", ":8080", "listen address")
	demoObs := flag.Int("demo", 0, "generate the synthetic Eurostat cube with this many observations")
	seed := flag.Int64("seed", 42, "generator seed for -demo")
	readOnly := flag.Bool("readonly", false, "reject updates and loads (serve data only)")
	parallel := flag.Int("parallel", 0, "worker goroutines per query evaluation (0 = GOMAXPROCS, 1 = sequential)")
	var quadFiles fileList
	flag.Var(&files, "data", "Turtle file to load into the default graph (repeatable)")
	flag.Var(&quadFiles, "quads", "N-Quads file to load, preserving named graphs (repeatable)")
	flag.Parse()

	st := store.New()
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("sparqld: %v", err)
		}
		triples, _, err := turtle.Parse(string(data))
		if err != nil {
			log.Fatalf("sparqld: parsing %s: %v", path, err)
		}
		n := st.InsertTriples(rdf.Term{}, triples)
		log.Printf("loaded %d triples from %s", n, path)
	}
	for _, path := range quadFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("sparqld: %v", err)
		}
		quads, err := turtle.ParseNQuads(string(data))
		if err != nil {
			log.Fatalf("sparqld: parsing %s: %v", path, err)
		}
		n := turtle.LoadQuads(st, quads)
		log.Printf("loaded %d quads from %s", n, path)
	}
	if *demoObs > 0 {
		cfg := eurostat.DefaultConfig()
		cfg.TargetObservations = *demoObs
		cfg.Seed = *seed
		d := eurostat.Generate(cfg)
		d.LoadInto(st)
		log.Printf("generated demo cube: %d observations, %d triples total",
			len(d.Observations), st.TotalLen())
	}

	srv := endpoint.NewServer(st, sparql.WithParallelism(*parallel))
	srv.ReadOnly = *readOnly
	log.Printf("sparqld listening on %s (query: /sparql, update: /update, load: /load, stats: /stats)", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
