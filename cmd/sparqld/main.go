// Command sparqld serves an in-memory RDF store over the SPARQL 1.1
// protocol (query at /sparql, update at /update, bulk load at /load),
// playing the role of the Virtuoso endpoint in the QB2OLAP paper.
//
// Usage:
//
//	sparqld [-addr :8080] [-data file.ttl]... [-demo N] [-parallel N]
//	        [-planner on|off] [-chunk-size N]
//	        [-trace N] [-sample RATE] [-trace-export file.jsonl]
//	        [-slowlog DUR] [-debug-addr :8081]
//	        [-query-timeout DUR] [-max-inflight N]
//	        [-max-query-mem SIZE]
//	        [-profile-dir DIR] [-profile-mem SIZE] [-profile-latency DUR]
//	        [-fault-profile NAME] [-fault-seed N]
//	        [-tick DUR] [-retention DUR] [-slo file.json]
//	        [-alert-fast DUR] [-alert-slow DUR]
//	        [-ready-max-shed RATE] [-ready-shed-window DUR]
//	        [-progress] [-report file.json]
//
// -data loads a Turtle file into the default graph (repeatable);
// -demo N generates the synthetic Eurostat asylum cube with N
// observations (plus the simulated external graph) and loads it.
// -parallel bounds the worker goroutines each query evaluation may use
// (0, the default, selects GOMAXPROCS; 1 forces sequential
// evaluation). -planner=off disables the cost-based query planner
// (statistics-driven join reordering and filter pushdown before
// evaluation, plus the /sparql?cost=1 plan-cost surface), reverting to
// the runtime greedy reorder. -chunk-size N sets the streaming
// pipeline's chunk granularity: untraced SELECTs evaluate through
// bounded chunked operators and the JSON response is encoded and
// flushed chunk by chunk, so peak memory tracks pipeline depth instead
// of the largest intermediate (0 restores the fully materialized
// evaluator).
//
// Observability: -trace N keeps the last N collected traces at
// /debug/traces (individual queries can always be traced on demand
// with /sparql?...&explain=1). With tracing on, -sample RATE (default
// 0.01) decides which locally-initiated queries are traced; clients
// that send a W3C traceparent header choose for themselves, and sampled
// requests get the server's span tree back in the X-Qb2olap-Trace
// response header. -trace-export FILE additionally appends every
// collected trace as JSONL (size-bounded, rotating) for offline
// analysis with `qb2olap trace`.
// Resilience: -query-timeout DUR bounds each query evaluation — an
// expired query returns 504 Gateway Timeout, with the partial trace in
// X-Qb2olap-Trace when the query was traced. -max-inflight N sheds
// queries beyond N concurrent evaluations with 503 + Retry-After
// instead of queueing them. Shed, timed-out and client-canceled
// queries count in queries_shed_total / queries_timeout_total /
// queries_canceled_total at /metrics and are tagged in the access log.
// -fault-profile wraps the whole protocol handler in a deterministic,
// seeded fault injector (connection drops, 503 bursts, slow responses,
// truncated bodies) for chaos testing clients; -fault-seed fixes the
// decision sequence.
//
// Resource accounting is always on: every query's materialized rows and
// approximate bytes are tracked (visible per query via ?explain=1, per
// shape at /workload, and server-wide as the query_mem_inflight_bytes /
// query_mem_highwater_bytes gauges). -max-query-mem SIZE (e.g. 64M,
// 1G) additionally aborts any single query whose in-flight materialized
// bytes exceed the budget, returning 429 with the X-Qb2olap-Mem-Limit
// marker so aware clients do not retry. -profile-dir DIR enables
// threshold-triggered continuous profiling: when a query's latency
// crosses -profile-latency or its peak in-flight bytes cross
// -profile-mem, a heap and CPU profile stamped with the query's trace
// ID is captured into DIR (size-bounded, oldest deleted first,
// rate-limited to one capture per 30s).
//
// Time series & alerting: every registry metric is sampled each -tick
// (default 1s) into multi-resolution ring buffers retained for
// -retention (default 12h), served as windowed JSON at /timeseries
// (?window=5m&step=10s&name=substr) and as a self-refreshing
// zero-dependency HTML dashboard at /debug/dash; `qb2olap monitor`
// renders the same data as a live terminal view. -slo FILE reuses the
// checked-in SLO thresholds as burn-rate alert rules — a rule fires
// when both the -alert-fast and -alert-slow windows violate it and
// resolves when the fast window recovers — with state at /alerts,
// transition counters in /metrics, and transitions logged.
// -ready-max-shed RATE flips /readyz to 503 while the shed rate over
// -ready-shed-window exceeds RATE, so a load balancer drains an
// overloaded node (liveness at /healthz is unaffected). -tick 0
// disables all of it at zero cost.
//
// -slowlog DUR logs queries at Warn, with their text, when they take
// at least DUR (e.g. -slowlog 250ms). -debug-addr serves /metrics,
// /debug/vars, /debug/pprof, and /debug/traces on a second listener,
// keeping profilers off the protocol port. -progress streams live
// per-phase load progress to stderr and -report writes a JSON run
// report of the startup load. The server shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight requests and logging a final
// metrics snapshot plus one latency-quantile line per histogram.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/endpoint"
	"repro/internal/eurostat"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/ql"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

type fileList []string

func (f *fileList) String() string { return fmt.Sprint(*f) }

func (f *fileList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// parseSize parses a byte size with an optional K/M/G suffix (powers of
// 1024), e.g. "64M" or "1G". A bare number is bytes.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size")
	}
	return n * mult, nil
}

func main() {
	var files fileList
	addr := flag.String("addr", ":8080", "listen address")
	demoObs := flag.Int("demo", 0, "generate the synthetic Eurostat cube with this many observations")
	seed := flag.Int64("seed", 42, "generator seed for -demo")
	readOnly := flag.Bool("readonly", false, "reject updates and loads (serve data only)")
	parallel := flag.Int("parallel", 0, "worker goroutines per query evaluation (0 = GOMAXPROCS, 1 = sequential)")
	chunkSize := flag.Int("chunk-size", 1024, "streaming pipeline chunk size in rows; untraced SELECTs evaluate and serialize chunk by chunk (0 = materialized evaluation)")
	planner := flag.String("planner", "on", "cost-based query planner: on (reorder joins, push filters, serve ?cost=1) or off (written order, runtime reorder only)")
	traceN := flag.Int("trace", 0, "trace every query, keeping the last N traces at /debug/traces (0 disables)")
	sample := flag.Float64("sample", 0.01, "fraction of queries traced when tracing is on (propagated traceparent verdicts always win)")
	traceExport := flag.String("trace-export", "", "append every collected trace as JSONL to this file (rotated at 64MB)")
	slowlog := flag.Duration("slowlog", 0, "log queries taking at least this long, with their text (0 disables)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query evaluation deadline; expired queries return 504 (0 disables)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently evaluating queries; excess requests are shed with 503 (0 = unbounded)")
	maxQueryMem := flag.String("max-query-mem", "", "per-query in-flight materialized-bytes budget, e.g. 64M or 1G; over-budget queries return 429 (empty disables)")
	profileDir := flag.String("profile-dir", "", "capture threshold-triggered pprof profiles into this directory (empty disables)")
	profileMem := flag.String("profile-mem", "", "capture a profile when a query's peak in-flight bytes reach this size, e.g. 128M (requires -profile-dir)")
	profileLatency := flag.Duration("profile-latency", 0, "capture a profile when a query takes at least this long (requires -profile-dir)")
	faultProfile := flag.String("fault-profile", "", "inject faults around the protocol handler for chaos testing: "+strings.Join(faults.Names(), ", "))
	faultSeed := flag.Int64("fault-seed", 1, "seed for the -fault-profile decision sequence")
	tick := flag.Duration("tick", time.Second, "metrics time-series sampling interval for /timeseries and /debug/dash (0 disables the series, dashboard, and alerts)")
	retention := flag.Duration("retention", 12*time.Hour, "total time-series history retained across the downsampling ladder")
	sloFile := flag.String("slo", "", "evaluate this SLO file's thresholds as live burn-rate alert rules at /alerts (requires -tick > 0)")
	alertFast := flag.Duration("alert-fast", 5*time.Minute, "fast alert window: a rule fires when both windows violate and resolves when this one recovers")
	alertSlow := flag.Duration("alert-slow", time.Hour, "slow alert window: the sustained half of the burn-rate pair")
	readyMaxShed := flag.Float64("ready-max-shed", 0, "flip /readyz to 503 while the windowed shed rate exceeds this fraction, e.g. 0.5 (0 disables; requires -tick > 0)")
	readyShedWindow := flag.Duration("ready-shed-window", time.Minute, "window for the -ready-max-shed readiness shed rate")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug diagnostics on this second address")
	progress := flag.Bool("progress", false, "print live load progress to stderr")
	report := flag.String("report", "", "write a JSON run report of the startup load to this file (- for stdout)")
	var quadFiles fileList
	flag.Var(&files, "data", "Turtle file to load into the default graph (repeatable)")
	flag.Var(&quadFiles, "quads", "N-Quads file to load, preserving named graphs (repeatable)")
	flag.Parse()

	var prog *obs.Progress
	if *progress || *report != "" {
		prog = obs.NewProgress("load")
		if *progress {
			prog.OnEvent = obs.TermSink(os.Stderr)
		}
	}

	st := store.New()
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("sparqld: %v", err)
		}
		triples, _, err := turtle.Parse(string(data))
		if err != nil {
			log.Fatalf("sparqld: parsing %s: %v", path, err)
		}
		ph := prog.Phase("load-turtle")
		n := st.InsertTriplesP(rdf.Term{}, triples, ph)
		ph.Done()
		prog.Count("triplesLoaded", int64(n))
		log.Printf("loaded %d triples from %s", n, path)
	}
	for _, path := range quadFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("sparqld: %v", err)
		}
		quads, err := turtle.ParseNQuads(string(data))
		if err != nil {
			log.Fatalf("sparqld: parsing %s: %v", path, err)
		}
		ph := prog.Phase("load-quads")
		n := turtle.LoadQuadsP(st, quads, ph)
		ph.Done()
		prog.Count("quadsLoaded", int64(n))
		log.Printf("loaded %d quads from %s", n, path)
	}
	if *demoObs > 0 {
		cfg := eurostat.DefaultConfig()
		cfg.TargetObservations = *demoObs
		cfg.Seed = *seed
		ph := prog.Phase("generate-demo")
		d := eurostat.Generate(cfg)
		before := st.TotalLen()
		d.LoadInto(st)
		ph.Grow(int64(st.TotalLen() - before))
		ph.Add(int64(st.TotalLen() - before))
		ph.Done()
		prog.Count("triplesLoaded", int64(st.TotalLen()-before))
		log.Printf("generated demo cube: %d observations, %d triples total",
			len(d.Observations), st.TotalLen())
	}
	if *report != "" {
		if err := prog.Report().WriteFile(*report); err != nil {
			log.Fatalf("sparqld: writing run report: %v", err)
		}
	}

	if *planner != "on" && *planner != "off" {
		log.Fatalf("sparqld: invalid -planner value %q (want on or off)", *planner)
	}
	srv := endpoint.NewServer(st,
		sparql.WithParallelism(*parallel),
		sparql.WithChunkSize(*chunkSize),
		sparql.WithPlanner(*planner == "on"))
	srv.ReadOnly = *readOnly
	// Publish the ql.Choose decision counters on the same /metrics
	// surface: zero while translation choice happens client-side, live
	// the moment anything in this process (an embedded tool, a future
	// server-side translator) calls Choose.
	ql.RegisterChooseMetrics(srv.Registry())
	srv.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv.SlowQuery = *slowlog
	srv.QueryTimeout = *queryTimeout
	srv.MaxInFlight = *maxInflight
	if *maxQueryMem != "" {
		n, err := parseSize(*maxQueryMem)
		if err != nil {
			log.Fatalf("sparqld: invalid -max-query-mem: %v", err)
		}
		srv.MaxQueryMem = n
	}
	if *profileDir == "" && (*profileMem != "" || *profileLatency > 0) {
		log.Fatalf("sparqld: -profile-mem and -profile-latency require -profile-dir")
	}
	if *profileDir != "" {
		prof, err := obs.NewProfiler(*profileDir)
		if err != nil {
			log.Fatalf("sparqld: opening profile dir: %v", err)
		}
		srv.Profiler = prof
		srv.ProfileLatency = *profileLatency
		if *profileMem != "" {
			n, err := parseSize(*profileMem)
			if err != nil {
				log.Fatalf("sparqld: invalid -profile-mem: %v", err)
			}
			srv.ProfileMemBytes = n
		}
		if srv.ProfileLatency == 0 && srv.ProfileMemBytes == 0 {
			log.Fatalf("sparqld: -profile-dir needs at least one trigger (-profile-mem or -profile-latency)")
		}
		log.Printf("sparqld: continuous profiling on: dir=%s mem=%s latency=%s",
			*profileDir, *profileMem, *profileLatency)
	}
	if *traceN > 0 {
		srv.Tracer = obs.NewTracer(*traceN)
		// Without a separate debug listener, mount /debug on the
		// protocol handler so the traces are reachable.
		srv.Debug = *debugAddr == ""
	}
	var exporter *obs.Exporter
	if *traceExport != "" {
		var err error
		exporter, err = obs.NewExporter(*traceExport, obs.DefaultExportMaxBytes, 3)
		if err != nil {
			log.Fatalf("sparqld: opening trace export: %v", err)
		}
		srv.Exporter = exporter
	}
	if srv.Tracer != nil || srv.Exporter != nil {
		srv.Sampler = obs.NewSampler(*sample)
	}

	// Time-series sampling, burn-rate alerting, and the readiness shed
	// gate all hang off the -tick sampler; with -tick 0 none of it runs
	// and the server pays nothing.
	if *tick > 0 {
		srv.Series = obs.NewTimeSeries(srv.Metrics(), obs.NewLadder(*tick, *retention))
		if *sloFile != "" {
			slo, err := loadgen.LoadSLO(*sloFile)
			if err != nil {
				log.Fatalf("sparqld: %v", err)
			}
			if rules := loadgen.AlertRules(slo); len(rules) > 0 {
				srv.Alerts = obs.NewAlerts(srv.Series, srv.Metrics(), rules, *alertFast, *alertSlow, srv.Logger)
				srv.Series.OnTick = srv.Alerts.Eval
				log.Printf("sparqld: %d alert rule(s) from %s (fast=%s slow=%s) at /alerts",
					len(rules), *sloFile, *alertFast, *alertSlow)
			}
		}
		srv.ReadyMaxShedRate = *readyMaxShed
		srv.ReadyShedWindow = *readyShedWindow
		stopSeries := srv.Series.Start()
		defer stopSeries()
	} else if *sloFile != "" || *readyMaxShed > 0 {
		log.Fatalf("sparqld: -slo and -ready-max-shed require -tick > 0")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The fault injector wraps the protocol handler from the outside, so
	// injected drops and 503s look like network/infrastructure failures
	// to clients — the deterministic chaos hook behind -fault-profile.
	handler := http.Handler(srv.Handler())
	if *faultProfile != "" {
		profile, ok := faults.ByName(*faultProfile)
		if !ok {
			log.Fatalf("sparqld: unknown -fault-profile %q (have: %s)", *faultProfile, strings.Join(faults.Names(), ", "))
		}
		if profile.Enabled() {
			inj := faults.New(profile, *faultSeed)
			handler = inj.Handler(handler)
			log.Printf("sparqld: fault injection on: profile=%s seed=%d", profile.Name, *faultSeed)
		}
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	var dbg *http.Server
	if *debugAddr != "" {
		srv.Metrics().Publish("sparqld") // mirror the registry into expvar
		dbg = &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("sparqld: debug listener: %v", err)
			}
		}()
		log.Printf("sparqld debug listening on %s (/metrics, /debug/vars, /debug/pprof, /debug/traces)", *debugAddr)
	}

	routes := "query: /sparql, update: /update, load: /load, stats: /stats, metrics: /metrics, workload: /workload"
	if srv.Series != nil {
		routes += ", timeseries: /timeseries, dashboard: /debug/dash"
	}
	if srv.Alerts != nil {
		routes += ", alerts: /alerts"
	}
	log.Printf("sparqld listening on %s (%s)", *addr, routes)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop listening, drain in-flight requests for up
	// to 5s, then report what the process did with its life.
	stop()
	log.Printf("sparqld: signal received, shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("sparqld: shutdown: %v", err)
	}
	if dbg != nil {
		dbg.Shutdown(sctx)
	}
	if exporter != nil {
		log.Printf("sparqld: trace export: %d written, %d dropped (%s)",
			exporter.Written(), exporter.Dropped(), exporter.Path())
		if err := exporter.Close(); err != nil {
			log.Printf("sparqld: closing trace export: %v", err)
		}
	}
	snapshot := srv.Metrics().Snapshot()
	if snap, err := json.Marshal(snapshot); err == nil {
		log.Printf("sparqld: final metrics: %s", snap)
	}
	// One human-readable latency line per histogram, sorted by name.
	names := make([]string, 0, len(snapshot))
	for name := range snapshot {
		if _, ok := snapshot[name].(obs.HistogramSnapshot); ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		log.Printf("sparqld: %s: %s", name, snapshot[name].(obs.HistogramSnapshot).Quantiles())
	}
}
