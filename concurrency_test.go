package repro

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/endpoint"
	"repro/internal/eurostat"
	"repro/internal/ql"
	"repro/internal/sparql"
)

// concurrencyQuery is a flat aggregation touching every observation —
// the group-by shape the parallel engine targets.
const concurrencyQuery = `
PREFIX qb: <http://purl.org/linked-data/cube#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
SELECT ?c (SUM(?v) AS ?total) WHERE {
  ?o qb:dataSet <http://eurostat.linked-statistics.org/data/migr_asyappctzm> ;
     property:citizen ?c ;
     sdmx-measure:obsValue ?v .
} GROUP BY ?c`

// hammerQueriesAndUpdates runs parallel SELECTs against concurrent
// INSERT DATA updates through one SPARQL client and fails on any error
// or empty result. Run under -race (the Makefile's default check) this
// validates the engine/store/endpoint concurrency contract.
func hammerQueriesAndUpdates(t *testing.T, label string, c endpoint.SPARQLClient) {
	t.Helper()
	const (
		readers = 4
		queries = 8
		updates = 32
	)
	errc := make(chan error, readers*queries+updates)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				res, err := c.Select(concurrencyQuery)
				if err != nil {
					errc <- fmt.Errorf("%s: select: %w", label, err)
					return
				}
				if len(res.Rows) == 0 {
					errc <- fmt.Errorf("%s: select returned no rows", label)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < updates; i++ {
			u := fmt.Sprintf(
				"INSERT DATA { <http://example.org/conc/s%d> <http://example.org/conc/p> %d . }", i, i)
			if err := c.Update(u); err != nil {
				errc <- fmt.Errorf("%s: update %d: %w", label, i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentQueryUpdate exercises parallel SELECTs racing INSERT
// DATA updates through both the in-process client (core.NewLocal) and
// the HTTP SPARQL protocol endpoint.
func TestConcurrentQueryUpdate(t *testing.T) {
	cfg := eurostat.DefaultConfig()
	cfg.TargetObservations = 2000

	t.Run("local", func(t *testing.T) {
		st, _ := eurostat.NewStore(cfg)
		tool := core.NewLocal(st, sparql.WithParallelism(4))
		hammerQueriesAndUpdates(t, "local", tool.Client())
	})

	t.Run("http", func(t *testing.T) {
		st, _ := eurostat.NewStore(cfg)
		srv := httptest.NewServer(endpoint.NewServer(st, sparql.WithParallelism(4)).Handler())
		defer srv.Close()
		hammerQueriesAndUpdates(t, "http", endpoint.NewRemote(srv.URL))
	})
}

// TestParallelismEquivalenceQueries runs every QL program under
// queries/ through both SPARQL translations on a sequential
// (WithParallelism(1)) and a parallel (WithParallelism(8)) engine and
// requires byte-identical result cubes. Parallelism 1 follows the
// unmodified sequential code paths, so this pins the parallel engine to
// the seed engine's results for the whole query corpus.
func TestParallelismEquivalenceQueries(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}
	seq := endpoint.NewLocal(env.Store, sparql.WithParallelism(1))
	par := endpoint.NewLocal(env.Store, sparql.WithParallelism(8))

	files, err := filepath.Glob("queries/*.ql")
	if err != nil || len(files) == 0 {
		t.Fatalf("no QL programs found under queries/: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ql.Prepare(string(src), env.Schema)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, v := range []ql.Variant{ql.Direct, ql.Alternative} {
			want, err := ql.Execute(seq, p.Translation, v)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", file, v, err)
			}
			got, err := ql.Execute(par, p.Translation, v)
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", file, v, err)
			}
			if want.EncodeCSV() != got.EncodeCSV() {
				t.Errorf("%s/%s: parallel cube differs from sequential cube", file, v)
			}
		}
	}
}
