// Endpointdemo: the paper's deployment architecture, end to end over
// HTTP. The QB data set lives behind a SPARQL 1.1 protocol endpoint
// (the role Virtuoso 7 plays in the paper); the QB2OLAP modules drive
// it exclusively through protocol queries and updates:
//
//	client (enrich/explore/ql) ── HTTP ──> sparqld-style endpoint ──> store
//
// Run with:
//
//	go run ./examples/endpointdemo
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/endpoint"
	"repro/internal/eurostat"
	"repro/internal/ql"
)

func main() {
	// Server side: a store with the raw QB data, exposed over HTTP.
	cfg := eurostat.DefaultConfig()
	cfg.TargetObservations = 5000
	st, _ := eurostat.NewStore(cfg)
	srv := httptest.NewServer(endpoint.NewServer(st).Handler())
	defer srv.Close()
	fmt.Printf("SPARQL endpoint at %s (query: /sparql, update: /update)\n\n", srv.URL)

	// Client side: everything below talks HTTP only.
	tool := core.NewRemote(srv.URL)

	// Enrichment over the wire: the generated QB4OLAP triples are
	// INSERT DATA'd back into the remote endpoint.
	sess, err := demo.EnrichDataset(tool.Client())
	if err != nil {
		log.Fatal(err)
	}
	stats, err := sess.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Enriched over HTTP: %d schema + %d instance triples pushed via SPARQL Update\n\n",
		stats.SchemaTriples, stats.InstanceTriples)

	// Exploration over the wire.
	cubes, err := tool.Cubes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QB4OLAP cubes on the endpoint: %d\n", len(cubes))
	schema, err := tool.Schema(cubes[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cube %s: %d dimensions, %d measures\n\n", cubes[0].Value, len(schema.Dimensions), len(schema.Measures))

	// Querying over the wire: applications per continent and year.
	query := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := ROLLUP ($C4, schema:citizenDim, schema:continent);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:year);
`
	cube, err := tool.Query(query, schema, ql.Alternative)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Applications by continent of citizenship and year (alternative query, over HTTP):")
	fmt.Print(cube.Pivot())
}
