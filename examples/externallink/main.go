// Externallink: enrichment from a linked external data set.
//
// The paper demonstrates that "in the presence of linked data sets, our
// tool is able to extract dimensional information (schema and
// instances) from other data sets (e.g., DBpedia)". Here the external
// source is a named graph holding, for every country, its political
// organization (EU / EFTA / non-aligned) and a population band —
// metadata that is not part of the statistical cube itself.
//
// The Enrichment module is pointed at the external graph via the
// SearchGraphs option, discovers ex:politicalOrg as a functional
// dependency of the destination level, builds a second hierarchy from
// it, and materializes the external roll-up triples so QL queries can
// aggregate asylum applications by the kind of political organization
// of the host countries — the "wider analysis" the paper's use case
// promises.
//
// Run with:
//
//	go run ./examples/externallink
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/enrich"
	"repro/internal/eurostat"
	"repro/internal/explore"
	"repro/internal/ql"
	"repro/internal/rdf"
)

func main() {
	cfg := eurostat.DefaultConfig()
	cfg.TargetObservations = 10000
	st, _ := eurostat.NewStore(cfg)
	tool := core.NewLocal(st)

	fmt.Printf("Default graph: %d triples; external graph: %d triples\n\n",
		st.Len(rdf.Term{}), st.Len(eurostat.ExternalGraph))

	opts := enrich.DefaultOptions()
	opts.SearchGraphs = []rdf.Term{eurostat.ExternalGraph}

	sess, err := tool.Enrich(eurostat.DSDIRI, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Discovery on the destination level now spans both graphs.
	cands, err := sess.Suggest(eurostat.PropGeo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Candidates for the destination (geo) level:")
	for _, c := range cands {
		origin := "cube data"
		if !c.Graph.IsZero() {
			origin = "external graph"
		}
		fmt.Printf("  [%-9s] %-60s from %s\n", c.Kind, c.Property.Value, origin)
	}

	polOrg, ok := enrich.FindCandidate(cands, eurostat.PropPolOrg)
	if !ok {
		log.Fatal("politicalOrg not discovered — was the external graph searched?")
	}
	if err := sess.AddLevel(polOrg); err != nil {
		log.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEnriched schema (destination rolls up to political organization):")
	fmt.Println(explore.RenderSchemaTree(sess.Schema()))

	// Analyze migration by the political organization of the host
	// country — the cross-data-set analysis from the paper's intro.
	schema, err := tool.Schema(sess.Schema().DSD)
	if err != nil {
		log.Fatal(err)
	}
	query := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX ex: <http://example.org/external/>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:citizenDim);
$C5 := SLICE ($C4, schema:refPeriodDim);
$C6 := ROLLUP ($C5, schema:geoDim, ex:politicalOrg);
`
	cube, err := tool.Query(query, schema, ql.Direct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Asylum applications by political organization of the destination:")
	fmt.Print(cube.Table())
}
