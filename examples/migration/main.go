// Migration: the full demonstration scenario from the QB2OLAP paper
// (Section IV). Mary, a journalist covering the European migration
// crisis, analyzes the Eurostat asylum-applications cube:
//
//  1. the ≈80,000-observation 2013–2014 subset is generated and loaded,
//  2. the Enrichment module builds the citizenship/destination
//     geography hierarchies and the month→quarter→year time hierarchy,
//  3. the Exploration module shows the dimension instances clustered by
//     continent (the paper's Figure 5 view), and
//  4. the paper's demo QL query runs: the number of applications
//     submitted by year by citizens from African countries whose
//     destination is France — in both generated SPARQL variants.
//
// Run with:
//
//	go run ./examples/migration [-obs 80000]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/demo"
	"repro/internal/eurostat"
	"repro/internal/explore"
	"repro/internal/ql"
)

const maryQuery = `
PREFIX data: <http://eurostat.linked-statistics.org/data/>
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asyl_appDim);
$C2 := SLICE ($C1, schema:sexDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := ROLLUP ($C3, schema:citizenDim, schema:continent);
$C5 := ROLLUP ($C4, schema:refPeriodDim, schema:year);
$C6 := DICE ($C5, (schema:citizenDim|schema:continent|schema:continentName = "Africa"));
$C7 := DICE ($C6, schema:geoDim|property:geo|schema:countryName = "France");
`

func main() {
	obs := flag.Int("obs", 80000, "approximate observation count")
	flag.Parse()

	cfg := eurostat.DefaultConfig()
	cfg.TargetObservations = *obs

	fmt.Printf("Generating the 2013–2014 asylum-applications subset (≈%d observations)...\n", *obs)
	start := time.Now()
	env, err := demo.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d observations, %d triples, enriched in %v\n\n",
		len(env.Data.Observations), env.Store.TotalLen(), time.Since(start).Round(time.Millisecond))

	// Exploration: continent clusters of the citizenship dimension.
	ex := explore.New(env.Client)
	dim, _ := env.Schema.DimensionOfLevel(eurostat.PropCitizen)
	path, _ := dim.PathToLevel(eurostat.PropContinent)
	clusters, err := ex.ClusterByParent(path[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Citizenship members clustered by continent:")
	for _, c := range clusters {
		var names []string
		for i, m := range c.Members {
			if i >= 5 {
				names = append(names, "...")
				break
			}
			names = append(names, m.Label)
		}
		fmt.Printf("  %-8s (%2d): %s\n", c.Parent.Label, len(c.Members), strings.Join(names, ", "))
	}

	// Querying: Mary's question.
	fmt.Println("\nQL program:")
	fmt.Println(strings.TrimSpace(maryQuery))

	p, err := ql.Prepare(maryQuery, env.Schema)
	if err != nil {
		log.Fatal(err)
	}
	directLines := strings.Count(strings.TrimSpace(p.Translation.Direct), "\n") + 1
	altLines := strings.Count(strings.TrimSpace(p.Translation.Alternative), "\n") + 1
	fmt.Printf("\nTranslated to SPARQL: direct %d lines, alternative %d lines.\n", directLines, altLines)

	for _, variant := range []ql.Variant{ql.Direct, ql.Alternative} {
		start = time.Now()
		cube, err := ql.Execute(env.Client, p.Translation, variant)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s query (%v):\n", variant, time.Since(start).Round(time.Millisecond))
		fmt.Print(cube.Pivot())
	}
}
