// Quickstart: the smallest end-to-end QB2OLAP workflow.
//
// It generates a small synthetic QB cube, enriches it into QB4OLAP
// (discovering the citizenship→continent hierarchy from the data),
// prints the enriched schema, and runs a first QL query — all in a few
// dozen lines against an in-process SPARQL endpoint.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/enrich"
	"repro/internal/eurostat"
	"repro/internal/explore"
	"repro/internal/ql"
)

func main() {
	// 1. A QB data set: the synthetic Eurostat asylum-applications cube
	//    (5,000 observations) loaded into an in-process SPARQL store.
	cfg := eurostat.DefaultConfig()
	cfg.TargetObservations = 5000
	st, _ := eurostat.NewStore(cfg)
	tool := core.NewLocal(st)

	// 2. Enrichment: redefine the QB schema as QB4OLAP, then discover
	//    and accept the citizenship→continent roll-up suggested by the
	//    functional-dependency analysis.
	sess, err := tool.Enrich(eurostat.DSDIRI, enrich.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cands, err := sess.Suggest(eurostat.PropCitizen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Candidates discovered for the citizenship level:")
	for _, c := range cands {
		fmt.Printf("  [%s] %s (%d members -> %d values, %.0f%% support)\n",
			c.Kind, c.Property.Value, c.Members, c.DistinctValues, c.Support*100)
	}
	continent, ok := enrich.FindCandidate(cands, eurostat.PropContinent)
	if !ok {
		log.Fatal("continent candidate not found")
	}
	if err := sess.AddLevel(continent); err != nil {
		log.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		log.Fatal(err)
	}

	// 3. Exploration: print the enriched cube structure.
	fmt.Println("\nEnriched schema:")
	fmt.Println(explore.RenderSchemaTree(sess.Schema()))

	// 4. Querying: applications per continent, everything else rolled
	//    away, written in QL — no SPARQL required.
	schema, err := tool.Schema(sess.Schema().DSD)
	if err != nil {
		log.Fatal(err)
	}
	query := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := SLICE ($C4, schema:refPeriodDim);
$C6 := ROLLUP ($C5, schema:citizenDim, schema:continent);
`
	cube, err := tool.Query(query, schema, ql.Direct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Asylum applications per continent of citizenship:")
	fmt.Print(cube.Table())
}
