package repro

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/enrich"
	"repro/internal/eurostat"
	"repro/internal/qb"
	"repro/internal/qb4olap"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

// salesTTL is a hand-authored retail cube in a vocabulary unrelated to
// the Eurostat demo: it proves the Enrichment and Querying modules are
// generic over any QB data set, not specialized to the generator.
// Note the abbreviated form (no observation types) — normalization must
// repair it first.
const salesTTL = `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix s: <http://shop.example/ns#> .
@prefix d: <http://shop.example/data/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

d:salesDSD a qb:DataStructureDefinition ;
  qb:component [ qb:dimension s:store ] ;
  qb:component [ qb:dimension s:product ] ;
  qb:component [ qb:measure s:revenue ] .
d:sales qb:structure d:salesDSD .

# Store geography: store -> city -> region (two FD hops).
d:st1 s:inCity d:lyon ;  s:storeName "Lyon Centre" .
d:st2 s:inCity d:lyon ;  s:storeName "Lyon Gare" .
d:st3 s:inCity d:paris ; s:storeName "Paris Nord" .
d:st4 s:inCity d:marseille ; s:storeName "Marseille Port" .
d:lyon      s:inRegion d:southeast ; s:cityName "Lyon" .
d:marseille s:inRegion d:southeast ; s:cityName "Marseille" .
d:paris     s:inRegion d:north     ; s:cityName "Paris" .
d:southeast s:regionName "Southeast" .
d:north     s:regionName "North" .

# Product taxonomy: product -> category.
d:p1 s:category d:food ; s:productName "Bread" .
d:p2 s:category d:food ; s:productName "Milk" .
d:p3 s:category d:tech ; s:productName "Phone" .
d:food s:categoryName "Food" .
d:tech s:categoryName "Tech" .

d:o1 qb:dataSet d:sales ; s:store d:st1 ; s:product d:p1 ; s:revenue 100 .
d:o2 qb:dataSet d:sales ; s:store d:st1 ; s:product d:p3 ; s:revenue 500 .
d:o3 qb:dataSet d:sales ; s:store d:st2 ; s:product d:p2 ; s:revenue 150 .
d:o4 qb:dataSet d:sales ; s:store d:st3 ; s:product d:p1 ; s:revenue 120 .
d:o5 qb:dataSet d:sales ; s:store d:st3 ; s:product d:p3 ; s:revenue 700 .
d:o6 qb:dataSet d:sales ; s:store d:st2 ; s:product d:p2 ; s:revenue 80 .
d:o7 qb:dataSet d:sales ; s:store d:st4 ; s:product d:p1 ; s:revenue 60 .
`

func salesTool(t *testing.T) *core.Tool {
	t.Helper()
	triples, _, err := turtle.Parse(salesTTL)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.InsertTriples(rdf.Term{}, triples)
	tool := core.NewLocal(st)
	if _, err := qb.Normalize(tool.Client()); err != nil {
		t.Fatal(err)
	}
	return tool
}

// TestSalesCubeEndToEnd enriches and queries a completely different
// cube: store→city→region, product→category, SUM(revenue).
func TestSalesCubeEndToEnd(t *testing.T) {
	tool := salesTool(t)
	ns := "http://shop.example/ns#"
	opts := enrich.DefaultOptions()
	opts.Namespace = ns

	sess, err := tool.Enrich(rdf.NewIRI("http://shop.example/data/salesDSD"), opts)
	if err != nil {
		t.Fatal(err)
	}

	// Iteratively build store -> city -> region.
	pick := func(level, prop string) {
		t.Helper()
		cands, err := sess.Suggest(rdf.NewIRI(level))
		if err != nil {
			t.Fatal(err)
		}
		c, ok := enrich.FindCandidate(cands, rdf.NewIRI(prop))
		if !ok {
			t.Fatalf("property %s not suggested for %s (got %+v)", prop, level, cands)
		}
		if c.Kind == enrich.AttributeCandidate {
			if err := sess.AddAttribute(c); err != nil {
				t.Fatal(err)
			}
			return
		}
		if err := sess.AddLevel(c); err != nil {
			t.Fatal(err)
		}
	}
	pick(ns+"store", ns+"inCity")
	pick(ns+"inCity", ns+"inRegion")
	pick(ns+"inRegion", ns+"regionName")
	pick(ns+"product", ns+"category")
	pick(ns+"category", ns+"categoryName")

	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if probs := sess.Schema().Validate(); len(probs) != 0 {
		t.Fatalf("schema problems: %v", probs)
	}

	schema, err := tool.Schema(sess.Schema().DSD)
	if err != nil {
		t.Fatal(err)
	}

	// Revenue by region and category, dicing on the Southeast region.
	query := `
PREFIX s: <http://shop.example/ns#>
PREFIX d: <http://shop.example/data/>
QUERY
$C1 := ROLLUP (d:sales, s:storeDim, s:inRegion);
$C2 := ROLLUP ($C1, s:productDim, s:category);
$C3 := DICE ($C2, s:storeDim|s:inRegion|s:regionName = "Southeast");
`
	cube, err := tool.QueryBoth(query, schema)
	if err != nil {
		t.Fatal(err)
	}
	// Southeast = st1 + st2 + st4: food 100+150+80+60 = 390, tech 500.
	if len(cube.Cells) != 2 {
		t.Fatalf("cells = %d: %s", len(cube.Cells), cube.Table())
	}
	got := map[string]string{}
	for _, cell := range cube.Cells {
		var cat string
		for _, coord := range cell.Coords {
			if strings.Contains(coord.Value, "food") || strings.Contains(coord.Value, "tech") {
				cat = coord.Value
			}
		}
		got[cat] = cell.Values[0].Value
	}
	if got["http://shop.example/data/food"] != "390" {
		t.Errorf("food revenue = %q, want 390", got["http://shop.example/data/food"])
	}
	if got["http://shop.example/data/tech"] != "500" {
		t.Errorf("tech revenue = %q, want 500", got["http://shop.example/data/tech"])
	}
}

// TestSalesDrilldownAfterRollup checks DRILLDOWN semantics on the sales
// cube: rolling up to region then drilling back to city yields the
// city-level cube.
func TestSalesDrilldownAfterRollup(t *testing.T) {
	tool := salesTool(t)
	ns := "http://shop.example/ns#"
	opts := enrich.DefaultOptions()
	opts.Namespace = ns
	sess, err := tool.Enrich(rdf.NewIRI("http://shop.example/data/salesDSD"), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range [][2]string{{ns + "store", ns + "inCity"}, {ns + "inCity", ns + "inRegion"}} {
		cands, err := sess.Suggest(rdf.NewIRI(lp[0]))
		if err != nil {
			t.Fatal(err)
		}
		c, ok := enrich.FindCandidate(cands, rdf.NewIRI(lp[1]))
		if !ok {
			t.Fatalf("missing candidate %v", lp)
		}
		if err := sess.AddLevel(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	schema, err := tool.Schema(sess.Schema().DSD)
	if err != nil {
		t.Fatal(err)
	}
	query := `
PREFIX s: <http://shop.example/ns#>
PREFIX d: <http://shop.example/data/>
QUERY
$C1 := SLICE (d:sales, s:productDim);
$C2 := ROLLUP ($C1, s:storeDim, s:inRegion);
$C3 := DRILLDOWN ($C2, s:storeDim, s:inCity);
`
	cube, err := tool.QueryBoth(query, schema)
	if err != nil {
		t.Fatal(err)
	}
	// Three cities: lyon 100+500+150+80 = 830, paris 120+700 = 820,
	// marseille 60.
	if len(cube.Cells) != 3 {
		t.Fatalf("cells = %d:\n%s", len(cube.Cells), cube.Table())
	}
	vals := map[string]string{}
	for _, cell := range cube.Cells {
		vals[cell.Coords[0].Value] = cell.Values[0].Value
	}
	if vals["http://shop.example/data/lyon"] != "830" || vals["http://shop.example/data/paris"] != "820" || vals["http://shop.example/data/marseille"] != "60" {
		t.Fatalf("city revenues = %v", vals)
	}
}

// TestMultiMeasureCube checks a cube with two measures carrying
// different aggregate functions: SUM(revenue) and MAX(quantity).
func TestMultiMeasureCube(t *testing.T) {
	ttl := `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix s: <http://shop.example/ns#> .
@prefix d: <http://shop.example/data/> .
d:mmDSD a qb:DataStructureDefinition ;
  qb:component [ qb:dimension s:store ] ;
  qb:component [ qb:measure s:revenue ] ;
  qb:component [ qb:measure s:quantity ] .
d:mm qb:structure d:mmDSD .
d:st1 s:inCity d:lyon . d:st2 s:inCity d:lyon .
d:lyon s:cityName "Lyon" .
d:m1 qb:dataSet d:mm ; s:store d:st1 ; s:revenue 100 ; s:quantity 3 .
d:m2 qb:dataSet d:mm ; s:store d:st1 ; s:revenue 50  ; s:quantity 9 .
d:m3 qb:dataSet d:mm ; s:store d:st2 ; s:revenue 10  ; s:quantity 5 .
`
	triples, _, err := turtle.Parse(ttl)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.InsertTriples(rdf.Term{}, triples)
	tool := core.NewLocal(st)
	if _, err := qb.Normalize(tool.Client()); err != nil {
		t.Fatal(err)
	}

	ns := "http://shop.example/ns#"
	opts := enrich.DefaultOptions()
	opts.Namespace = ns
	sess, err := tool.Enrich(rdf.NewIRI("http://shop.example/data/mmDSD"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Schema().Measures) != 2 {
		t.Fatalf("measures = %d", len(sess.Schema().Measures))
	}
	if err := sess.SetAggregate(rdf.NewIRI(ns+"quantity"), qb4olap.Max); err != nil {
		t.Fatal(err)
	}
	cands, err := sess.Suggest(rdf.NewIRI(ns + "store"))
	if err != nil {
		t.Fatal(err)
	}
	c, ok := enrich.FindCandidate(cands, rdf.NewIRI(ns+"inCity"))
	if !ok {
		t.Fatal("inCity not suggested")
	}
	if err := sess.AddLevel(c); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}

	schema, err := tool.Schema(sess.Schema().DSD)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded schema must preserve both aggregate functions.
	if m, _ := schema.Measure(rdf.NewIRI(ns + "quantity")); m.Agg != qb4olap.Max {
		t.Fatalf("quantity aggregate lost: %v", m.Agg)
	}

	cube, err := tool.QueryBoth(`
PREFIX s: <http://shop.example/ns#>
PREFIX d: <http://shop.example/data/>
QUERY
$C1 := ROLLUP (d:mm, s:storeDim, s:inCity);
`, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) != 1 || len(cube.Cells[0].Values) != 2 {
		t.Fatalf("cells/values: %+v", cube.Cells)
	}
	// Measures are ordered by IRI: quantity before revenue.
	vals := map[string]string{}
	for i, m := range cube.Measures {
		vals[m] = cube.Cells[0].Values[i].Value
	}
	if vals["max(quantity)"] != "9" {
		t.Errorf("max(quantity) = %v", vals)
	}
	if vals["sum(revenue)"] != "160" {
		t.Errorf("sum(revenue) = %v", vals)
	}
}

// TestNoisyQuasiFDLeavesDetectableAmbiguity enriches a noisy dataset
// with a lax threshold and shows the committed cube carries the
// double-counting risk the integrity checker reports — the data-quality
// loop the paper's fine-tuning parameters address.
func TestNoisyQuasiFDLeavesDetectableAmbiguity(t *testing.T) {
	cfg := eurostat.TestConfig()
	cfg.QuasiFDNoise = 0.3
	st, _ := eurostat.NewStore(cfg)
	tool := core.NewLocal(st)

	opts := enrich.DefaultOptions()
	opts.QuasiFDThreshold = 0.5
	sess, err := tool.Enrich(eurostat.DSDIRI, opts)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := sess.Suggest(eurostat.PropCitizen)
	if err != nil {
		t.Fatal(err)
	}
	cont, ok := enrich.FindCandidate(cands, eurostat.PropContinent)
	if !ok || cont.Kind != enrich.LevelCandidate {
		t.Fatalf("quasi-FD not accepted under lax threshold: %+v", cont)
	}
	if err := sess.AddLevel(cont); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}

	schema, err := tool.Schema(sess.Schema().DSD)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := qb4olap.ValidateInstances(tool.Client(), schema)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range probs {
		if p.Code == "rollup-ambiguous" && p.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ambiguous rollups not detected after noisy enrichment: %v", probs)
	}

	// Clean enrichment reports no ambiguity.
	clean, err := demo.Build(eurostat.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleanProbs, err := qb4olap.ValidateInstances(clean.Client, clean.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cleanProbs {
		if p.Code == "rollup-ambiguous" {
			t.Fatalf("clean cube reported ambiguity: %v", p)
		}
	}
}
