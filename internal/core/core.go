// Package core is the top-level QB2OLAP facade: one type wiring the
// three modules of the paper's architecture (Figure 1) — Enrichment,
// Exploration, and Querying — around a SPARQL endpoint. Library users
// who want finer control can use the underlying packages directly
// (enrich, explore, ql); this facade covers the common tool workflow.
package core

import (
	"context"
	"fmt"

	"repro/internal/endpoint"
	"repro/internal/enrich"
	"repro/internal/explore"
	"repro/internal/olap"
	"repro/internal/qb"
	"repro/internal/qb4olap"
	"repro/internal/ql"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Tool is a QB2OLAP instance bound to a SPARQL endpoint.
type Tool struct {
	client endpoint.SPARQLClient
}

// New returns a tool speaking to the given endpoint client.
func New(client endpoint.SPARQLClient) *Tool {
	return &Tool{client: client}
}

// NewLocal returns a tool over an in-process store (convenient for
// embedding and tests). Engine options (e.g. sparql.WithParallelism)
// configure the embedded SPARQL engine.
func NewLocal(st *store.Store, opts ...sparql.Option) *Tool {
	return New(endpoint.NewLocal(st, opts...))
}

// NewRemote returns a tool speaking the SPARQL protocol to a remote
// endpoint rooted at base URL.
func NewRemote(base string) *Tool {
	return New(endpoint.NewRemote(base))
}

// Client exposes the underlying SPARQL client.
func (t *Tool) Client() endpoint.SPARQLClient { return t.client }

// --- Input data -----------------------------------------------------

// DataSets lists the QB data sets on the endpoint.
func (t *Tool) DataSets() ([]qb.DataSet, error) {
	return qb.ListDataSets(t.client)
}

// LoadDSD reads a QB data structure definition.
func (t *Tool) LoadDSD(dsd rdf.Term) (*qb.DSD, error) {
	return qb.LoadDSD(t.client, dsd)
}

// --- Enrichment module ----------------------------------------------

// Enrich starts an enrichment session for the given QB DSD (the
// Redefinition phase runs immediately).
func (t *Tool) Enrich(dsd rdf.Term, opts enrich.Options) (*enrich.Session, error) {
	return enrich.NewSession(t.client, dsd, opts)
}

// --- Exploration module ----------------------------------------------

// Explorer returns the exploration module.
func (t *Tool) Explorer() *explore.Explorer {
	return explore.New(t.client)
}

// Cubes lists the QB4OLAP cubes available for exploration and querying.
func (t *Tool) Cubes() ([]rdf.Term, error) {
	return qb4olap.ListCubes(t.client)
}

// Schema loads a QB4OLAP cube schema from the endpoint.
func (t *Tool) Schema(dsd rdf.Term) (*qb4olap.CubeSchema, error) {
	return qb4olap.LoadCubeSchema(t.client, dsd)
}

// --- Querying module -------------------------------------------------

// Prepare parses, analyzes, simplifies, and translates a QL program
// against a cube schema, returning both generated SPARQL queries.
func (t *Tool) Prepare(src string, schema *qb4olap.CubeSchema) (*ql.Pipeline, error) {
	return ql.Prepare(src, schema)
}

// Query runs a QL program end to end and returns the result cube.
// Pass ql.Auto to let the endpoint's cost-based planner pick the
// cheaper of the two generated SPARQL translations (see ql.Choose);
// ql.Direct and ql.Alternative pin a translation explicitly.
func (t *Tool) Query(src string, schema *qb4olap.CubeSchema, v ql.Variant) (*olap.Cube, error) {
	cube, _, err := ql.Run(t.client, schema, src, v)
	return cube, err
}

// QueryAuto runs a QL program letting the planner auto-select the
// translation — Query with ql.Auto.
func (t *Tool) QueryAuto(src string, schema *qb4olap.CubeSchema) (*olap.Cube, error) {
	return t.Query(src, schema, ql.Auto)
}

// QueryContext is Query under a context: ctx cancels or bounds the
// SPARQL execution phase (evaluation in-process, the HTTP exchange for
// remote endpoints).
func (t *Tool) QueryContext(ctx context.Context, src string, schema *qb4olap.CubeSchema, v ql.Variant) (*olap.Cube, error) {
	cube, _, err := ql.RunContext(ctx, t.client, schema, src, v)
	return cube, err
}

// Run is Query with the pipeline exposed: the returned ql.Pipeline
// carries the intermediate artifacts and the per-phase wall times
// (parse / analyze / simplify / translate / execute), the
// Querying-module observability surface.
func (t *Tool) Run(src string, schema *qb4olap.CubeSchema, v ql.Variant) (*olap.Cube, *ql.Pipeline, error) {
	return ql.Run(t.client, schema, src, v)
}

// RunContext is Run under a context (see QueryContext).
func (t *Tool) RunContext(ctx context.Context, src string, schema *qb4olap.CubeSchema, v ql.Variant) (*olap.Cube, *ql.Pipeline, error) {
	return ql.RunContext(ctx, t.client, schema, src, v)
}

// SPARQL runs a raw SPARQL SELECT, mirroring the Querying module's
// option to formulate SPARQL queries manually.
func (t *Tool) SPARQL(query string) (*olap.Cube, error) {
	return t.SPARQLContext(context.Background(), query)
}

// SPARQLContext is SPARQL under a context.
func (t *Tool) SPARQLContext(ctx context.Context, query string) (*olap.Cube, error) {
	res, err := endpoint.SelectContext(ctx, t.client, query)
	if err != nil {
		return nil, err
	}
	cube := &olap.Cube{Measures: res.Vars}
	for _, row := range res.Rows {
		cell := olap.Cell{Values: make([]rdf.Term, len(row))}
		copy(cell.Values, row)
		cube.Cells = append(cube.Cells, cell)
	}
	return cube, nil
}

// QueryBoth runs both translations and verifies they agree, returning
// the direct result. It is the programmatic analogue of the demo's
// "run either one or both queries".
func (t *Tool) QueryBoth(src string, schema *qb4olap.CubeSchema) (*olap.Cube, error) {
	direct, err := t.Query(src, schema, ql.Direct)
	if err != nil {
		return nil, err
	}
	alt, err := t.Query(src, schema, ql.Alternative)
	if err != nil {
		return nil, err
	}
	if len(direct.Cells) != len(alt.Cells) {
		return nil, fmt.Errorf("core: translations disagree: %d vs %d cells", len(direct.Cells), len(alt.Cells))
	}
	return direct, nil
}
