package core

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/demo"
	"repro/internal/endpoint"
	"repro/internal/enrich"
	"repro/internal/eurostat"
	"repro/internal/ql"
	"repro/internal/rdf"
)

var (
	envOnce sync.Once
	env     *demo.Enriched
	envErr  error
)

func enrichedEnv(t *testing.T) *demo.Enriched {
	t.Helper()
	envOnce.Do(func() {
		env, envErr = demo.Build(eurostat.TestConfig())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return env
}

func TestFacadeDataSetsAndDSD(t *testing.T) {
	e := enrichedEnv(t)
	tool := New(e.Client)
	// After enrichment the dataset carries two qb:structure links: the
	// original QB DSD and the generated QB4OLAP one.
	dss, err := tool.DataSets()
	if err != nil || len(dss) != 2 {
		t.Fatalf("DataSets: %v %v", dss, err)
	}
	structures := map[rdf.Term]bool{}
	for _, ds := range dss {
		structures[ds.Structure] = true
	}
	if !structures[eurostat.DSDIRI] || !structures[e.Schema.DSD] {
		t.Fatalf("structures = %v", structures)
	}
	dsd, err := tool.LoadDSD(eurostat.DSDIRI)
	if err != nil || len(dsd.Dimensions()) != 6 {
		t.Fatalf("LoadDSD: %v %v", dsd, err)
	}
}

func TestFacadeCubesAndSchema(t *testing.T) {
	e := enrichedEnv(t)
	tool := New(e.Client)
	cubes, err := tool.Cubes()
	if err != nil || len(cubes) != 1 {
		t.Fatalf("Cubes: %v %v", cubes, err)
	}
	schema, err := tool.Schema(cubes[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(schema.Dimensions) != 6 {
		t.Fatalf("schema dims = %d", len(schema.Dimensions))
	}
	if tool.Explorer() == nil {
		t.Fatal("explorer nil")
	}
}

func TestFacadeQuery(t *testing.T) {
	e := enrichedEnv(t)
	tool := New(e.Client)
	schema, err := tool.Schema(e.Schema.DSD)
	if err != nil {
		t.Fatal(err)
	}
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := ROLLUP ($C4, schema:citizenDim, schema:continent);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:year);
`
	p, err := tool.Prepare(src, schema)
	if err != nil {
		t.Fatal(err)
	}
	if p.Translation.Direct == "" || p.Translation.Alternative == "" {
		t.Fatal("translations missing")
	}
	cube, err := tool.QueryBoth(src, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) == 0 {
		t.Fatal("empty cube")
	}
	if !strings.Contains(cube.Table(), "Africa") {
		t.Errorf("cube table:\n%s", cube.Table())
	}
}

func TestFacadeSPARQLPassThrough(t *testing.T) {
	e := enrichedEnv(t)
	tool := New(e.Client)
	cube, err := tool.SPARQL(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT (COUNT(?o) AS ?n) WHERE { ?o a qb:Observation }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) != 1 || cube.Cells[0].Values[0].Value == "0" {
		t.Fatalf("SPARQL result: %+v", cube.Cells)
	}
}

// TestArchitectureEndToEnd (E1) drives the full paper architecture over
// HTTP: a QB store behind a SPARQL protocol endpoint, enrichment and
// querying through the protocol only.
func TestArchitectureEndToEnd(t *testing.T) {
	st, _ := eurostat.NewStore(eurostat.TestConfig())
	srv := httptest.NewServer(endpoint.NewServer(st).Handler())
	defer srv.Close()

	tool := NewRemote(srv.URL)

	// Enrichment over HTTP.
	sess, err := tool.Enrich(eurostat.DSDIRI, enrich.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cands, err := sess.Suggest(eurostat.PropCitizen)
	if err != nil {
		t.Fatal(err)
	}
	cont, ok := enrich.FindCandidate(cands, eurostat.PropContinent)
	if !ok {
		t.Fatal("continent not suggested over HTTP")
	}
	if err := sess.AddLevel(cont); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}

	// Exploration over HTTP.
	cubes, err := tool.Cubes()
	if err != nil || len(cubes) != 1 {
		t.Fatalf("cubes over HTTP: %v %v", cubes, err)
	}
	schema, err := tool.Schema(cubes[0])
	if err != nil {
		t.Fatal(err)
	}

	// Querying over HTTP.
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := SLICE ($C4, schema:refPeriodDim);
$C6 := ROLLUP ($C5, schema:citizenDim, schema:continent);
`
	cube, err := tool.Query(src, schema, ql.Direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) != len(eurostat.Continents) {
		t.Fatalf("cells = %d, want %d continents", len(cube.Cells), len(eurostat.Continents))
	}
}

func TestNewLocalConstructor(t *testing.T) {
	e := enrichedEnv(t)
	tool := NewLocal(e.Store)
	if _, err := tool.DataSets(); err != nil {
		t.Fatal(err)
	}
	if tool.Client() == nil {
		t.Fatal("client nil")
	}
	_ = rdf.Term{}
}
