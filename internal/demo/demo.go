// Package demo wires the full QB2OLAP demonstration scenario from the
// paper: generate (or accept) the Eurostat asylum-applications cube,
// run the scripted enrichment Mary performs interactively — citizenship
// and destination roll up to continents, time rolls up through quarters
// to years, ages roll up to age classes — and commit the QB4OLAP
// triples to the endpoint.
package demo

import (
	"fmt"

	"repro/internal/endpoint"
	"repro/internal/enrich"
	"repro/internal/eurostat"
	"repro/internal/qb4olap"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Enriched bundles the artifacts of the demo enrichment.
type Enriched struct {
	Store   *store.Store
	Client  endpoint.SPARQLClient
	Session *enrich.Session
	Schema  *qb4olap.CubeSchema
	Data    *eurostat.Dataset
}

// Build generates the synthetic Eurostat cube at the given
// configuration, loads it into a fresh store, and performs the demo
// enrichment.
func Build(cfg eurostat.Config) (*Enriched, error) {
	st, data := eurostat.NewStore(cfg)
	client := endpoint.NewLocal(st)
	sess, err := EnrichDataset(client)
	if err != nil {
		return nil, err
	}
	return &Enriched{
		Store:   st,
		Client:  client,
		Session: sess,
		Schema:  sess.Schema(),
		Data:    data,
	}, nil
}

// EnrichDataset runs the scripted demo enrichment against any endpoint
// already holding the generated cube, and commits the triples.
func EnrichDataset(client endpoint.SPARQLClient) (*enrich.Session, error) {
	return EnrichDatasetWithOptions(client, enrich.DefaultOptions())
}

// EnrichDatasetWithOptions is EnrichDataset with caller-supplied
// options, e.g. an obs.Progress reporter observing the run.
func EnrichDatasetWithOptions(client endpoint.SPARQLClient, opts enrich.Options) (*enrich.Session, error) {
	sess, err := enrich.NewSession(client, eurostat.DSDIRI, opts)
	if err != nil {
		return nil, err
	}

	// Citizenship: country -> continent (+ name attributes + all level).
	if err := pickLevel(sess, eurostat.PropCitizen, eurostat.PropContinent); err != nil {
		return nil, err
	}
	if err := pickAttribute(sess, eurostat.PropCitizen, rdf.NewIRI(schemaIRI("countryName"))); err != nil {
		return nil, err
	}
	if err := pickAttribute(sess, eurostat.PropContinent, rdf.NewIRI(schemaIRI("continentName"))); err != nil {
		return nil, err
	}
	citDim, ok := sess.Schema().DimensionOfLevel(eurostat.PropCitizen)
	if !ok {
		return nil, fmt.Errorf("demo: citizenship dimension missing")
	}
	if _, err := sess.AddAllLevel(citDim.IRI); err != nil {
		return nil, err
	}

	// Destination: country -> continent, plus the name attribute used
	// by the demo query's DICE on "France".
	if err := pickLevel(sess, eurostat.PropGeo, eurostat.PropContinent); err != nil {
		return nil, err
	}
	if err := pickAttribute(sess, eurostat.PropGeo, rdf.NewIRI(schemaIRI("countryName"))); err != nil {
		return nil, err
	}

	// Time: month -> quarter -> year.
	if err := pickLevel(sess, eurostat.PropTime, eurostat.PropQuarter); err != nil {
		return nil, err
	}
	if err := pickLevel(sess, eurostat.PropQuarter, eurostat.PropYear); err != nil {
		return nil, err
	}

	// Age: band -> class, with the SKOS notation as a dice-able
	// attribute.
	if err := pickLevel(sess, eurostat.PropAge, eurostat.PropAgeClass); err != nil {
		return nil, err
	}
	if err := pickAttribute(sess, eurostat.PropAgeClass, rdf.NewIRI("http://www.w3.org/2004/02/skos/core#notation")); err != nil {
		return nil, err
	}

	if err := sess.Commit(); err != nil {
		return nil, err
	}
	return sess, nil
}

// pickLevel suggests candidates for the level and applies the one for
// the given property, as the user would in the GUI.
func pickLevel(sess *enrich.Session, level, property rdf.Term) error {
	cands, err := sess.Suggest(level)
	if err != nil {
		return err
	}
	c, ok := enrich.FindCandidate(cands, property)
	if !ok {
		return fmt.Errorf("demo: property %s not suggested for level %s", property.Value, level.Value)
	}
	return sess.AddLevel(c)
}

func pickAttribute(sess *enrich.Session, level, property rdf.Term) error {
	cands, err := sess.Suggest(level)
	if err != nil {
		return err
	}
	c, ok := enrich.FindCandidate(cands, property)
	if !ok {
		return fmt.Errorf("demo: attribute %s not suggested for level %s", property.Value, level.Value)
	}
	return sess.AddAttribute(c)
}

func schemaIRI(local string) string {
	return "http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#" + local
}
