package demo

import (
	"testing"

	"repro/internal/eurostat"
	"repro/internal/qb4olap"
	"repro/internal/ql"
	"repro/internal/rdf"
)

func TestBuildProducesValidSchema(t *testing.T) {
	env, err := Build(eurostat.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if probs := env.Schema.Validate(); len(probs) != 0 {
		t.Fatalf("schema problems: %v", probs)
	}
	// The demonstration hierarchy shapes from the paper.
	cit, ok := env.Schema.DimensionOfLevel(eurostat.PropCitizen)
	if !ok {
		t.Fatal("citizenship dimension missing")
	}
	if _, ok := cit.PathToLevel(eurostat.PropContinent); !ok {
		t.Error("citizenship lacks continent level")
	}
	all, ok := cit.PathToLevel(rdf.NewIRI("http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#citizenAll"))
	if !ok || len(all) != 2 {
		t.Errorf("citizenship all level path: %v %v", all, ok)
	}
	timeDim, _ := env.Schema.DimensionOfLevel(eurostat.PropTime)
	if p, ok := timeDim.PathToLevel(eurostat.PropYear); !ok || len(p) != 2 {
		t.Errorf("time hierarchy path: %v %v", p, ok)
	}
	age, _ := env.Schema.DimensionOfLevel(eurostat.PropAge)
	if _, ok := age.PathToLevel(eurostat.PropAgeClass); !ok {
		t.Error("age class level missing")
	}
	// Attributes used by the demo query's dices.
	geoLvl := env.Schema.Level(eurostat.PropGeo)
	if len(geoLvl.Attributes) == 0 {
		t.Error("geo countryName attribute missing")
	}
	contLvl := env.Schema.Level(eurostat.PropContinent)
	if len(contLvl.Attributes) == 0 {
		t.Error("continent continentName attribute missing")
	}
	// Measure default.
	if m, ok := env.Schema.Measure(eurostat.PropObs); !ok || m.Agg != qb4olap.Sum {
		t.Errorf("measure: %+v %v", m, ok)
	}
}

func TestBuildCommitsTriples(t *testing.T) {
	env, err := Build(eurostat.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Client.Select(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT (COUNT(?s) AS ?n) WHERE { ?s a qb4o:HierarchyStep }`)
	if err != nil {
		t.Fatal(err)
	}
	// citizen->continent, continent->all, geo->continent,
	// month->quarter, quarter->year, age->class = 6 steps.
	if got := res.Binding(0, "n").Value; got != "6" {
		t.Fatalf("committed steps = %s, want 6", got)
	}
}

// TestPredefinedQueriesAllRun executes every canned query in both
// translation variants and checks the variants agree.
func TestPredefinedQueriesAllRun(t *testing.T) {
	env, err := Build(eurostat.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, pq := range PredefinedQueries {
		t.Run(pq.Name, func(t *testing.T) {
			direct, _, err := ql.Run(env.Client, env.Schema, pq.QL, ql.Direct)
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			alt, _, err := ql.Run(env.Client, env.Schema, pq.QL, ql.Alternative)
			if err != nil {
				t.Fatalf("alternative: %v", err)
			}
			if len(direct.Cells) != len(alt.Cells) {
				t.Fatalf("variants disagree: %d vs %d cells", len(direct.Cells), len(alt.Cells))
			}
			if pq.Name != "busy-cells" && len(direct.Cells) == 0 {
				t.Fatalf("query %s returned no cells", pq.Name)
			}
		})
	}
	if _, ok := FindPredefinedQuery("mary"); !ok {
		t.Error("FindPredefinedQuery(mary) failed")
	}
	if _, ok := FindPredefinedQuery("nope"); ok {
		t.Error("FindPredefinedQuery(nope) should fail")
	}
}
