package demo

// PredefinedQuery is one of the canned QL programs the on-site
// demonstration offers ("in the demo we include some predefined
// queries, which the audience can modify").
type PredefinedQuery struct {
	Name        string
	Description string
	QL          string
}

const qlPrologue = `
PREFIX data: <http://eurostat.linked-statistics.org/data/>
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
QUERY
`

// PredefinedQueries are runnable against the demo-enriched cube.
var PredefinedQueries = []PredefinedQuery{
	{
		Name:        "mary",
		Description: "Applications per year by African citizens with destination France (the paper's Section IV query)",
		QL: qlPrologue + `
$C1 := SLICE (data:migr_asyappctzm, schema:asyl_appDim);
$C2 := SLICE ($C1, schema:sexDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := ROLLUP ($C3, schema:citizenDim, schema:continent);
$C5 := ROLLUP ($C4, schema:refPeriodDim, schema:year);
$C6 := DICE ($C5, (schema:citizenDim|schema:continent|schema:continentName = "Africa"));
$C7 := DICE ($C6, schema:geoDim|property:geo|schema:countryName = "France");
`,
	},
	{
		Name:        "continent-year",
		Description: "Applications by continent of citizenship and year",
		QL: qlPrologue + `
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := ROLLUP ($C4, schema:citizenDim, schema:continent);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:year);
`,
	},
	{
		Name:        "quarterly-trend",
		Description: "Total applications per quarter (time series at quarter granularity)",
		QL: qlPrologue + `
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := SLICE ($C4, schema:citizenDim);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:quarter);
`,
	},
	{
		Name:        "minors-by-destination",
		Description: "Applications by destination country for minor applicants",
		QL: qlPrologue + `
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:asyl_appDim);
$C3 := SLICE ($C2, schema:citizenDim);
$C4 := SLICE ($C3, schema:refPeriodDim);
$C5 := ROLLUP ($C4, schema:ageDim, schema:ageClass);
$C6 := DICE ($C5, schema:ageDim|schema:ageClass|<http://www.w3.org/2004/02/skos/core#notation> = "MINOR");
`,
	},
	{
		Name:        "busy-cells",
		Description: "Continent-year cells with more than 10,000 applications (measure dice)",
		QL: qlPrologue + `
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := ROLLUP ($C4, schema:citizenDim, schema:continent);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:year);
$C7 := DICE ($C6, sdmx-measure:obsValue > 10000);
`,
	},
	{
		Name:        "grand-total",
		Description: "Grand total of all applications (roll everything up / slice everything out)",
		QL: qlPrologue + `
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := SLICE ($C4, schema:refPeriodDim);
$C6 := ROLLUP ($C5, schema:citizenDim, schema:citizenAll);
`,
	},
}

// PredefinedQuery returns the named canned query.
func FindPredefinedQuery(name string) (PredefinedQuery, bool) {
	for _, q := range PredefinedQueries {
		if q.Name == name {
			return q, true
		}
	}
	return PredefinedQuery{}, false
}
