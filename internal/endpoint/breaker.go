package endpoint

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped in *Error) when the circuit
// breaker rejects a request without attempting it.
var ErrCircuitOpen = errors.New("endpoint: circuit breaker open")

// Breaker is a circuit breaker shared by one or more Remote clients.
// It trips open after a run of consecutive failures, fails requests
// fast for a cooldown period, then admits a single probe (half-open):
// a successful probe closes the circuit, a failed one reopens it for
// another cooldown. All methods are safe for concurrent use and
// nil-safe, so a nil *Breaker disables breaking entirely.
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	consecutive int
	openUntil   time.Time
	probing     bool // a half-open probe is in flight
	trips       int64
	rejected    int64
	now         func() time.Time // injectable clock for tests
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures and stays open for cooldown before probing. Non-positive
// arguments fall back to 5 failures / 1s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. While open it returns
// false until the cooldown elapses, then true exactly once (the probe);
// further requests are rejected until that probe is recorded.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if b.probing || b.now().Before(b.openUntil) {
		b.rejected++
		return false
	}
	b.probing = true
	return true
}

// Record reports the outcome of an allowed request. A success resets
// the failure run and closes the circuit; a failure extends the run
// and opens (or reopens) the circuit once the threshold is reached.
func (b *Breaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if success {
		b.consecutive = 0
		b.openUntil = time.Time{}
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold {
		if b.openUntil.IsZero() {
			b.trips++
		}
		b.openUntil = b.now().Add(b.cooldown)
	}
}

// State names the current breaker state: "closed", "open", or
// "half-open" (cooldown elapsed or probe in flight).
func (b *Breaker) State() string {
	if b == nil {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openUntil.IsZero():
		return "closed"
	case b.probing || !b.now().Before(b.openUntil):
		return "half-open"
	default:
		return "open"
	}
}

// Trips returns how many times the breaker has transitioned from
// closed to open.
func (b *Breaker) Trips() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Rejected returns how many requests were failed fast while open.
func (b *Breaker) Rejected() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}
