package endpoint

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// SPARQLClient is the interface the QB2OLAP modules use to talk to an
// endpoint: either in-process (Local) or over HTTP (Remote). This
// mirrors the paper's architecture, where all modules operate through
// the SPARQL endpoint.
type SPARQLClient interface {
	// Select runs a SELECT (or ASK) query and returns the result table.
	Select(query string) (*sparql.Results, error)
	// Update runs a SPARQL update request.
	Update(update string) error
}

// ContextClient is the context-aware extension of SPARQLClient: the
// context bounds the call (cancellation and deadline), propagating into
// engine evaluation for Local and into the HTTP exchange for Remote.
// Both built-in clients implement it; third-party SPARQLClients need
// not. Use the package-level SelectContext/UpdateContext helpers to
// call through the extension when present.
type ContextClient interface {
	SPARQLClient
	SelectContext(ctx context.Context, query string) (*sparql.Results, error)
	UpdateContext(ctx context.Context, update string) error
}

// SelectContext runs a SELECT through c under ctx when the client
// supports cancellation, falling back to the plain call otherwise.
func SelectContext(ctx context.Context, c SPARQLClient, query string) (*sparql.Results, error) {
	if cc, ok := c.(ContextClient); ok {
		return cc.SelectContext(ctx, query)
	}
	return c.Select(query)
}

// UpdateContext runs an update through c under ctx when the client
// supports cancellation, falling back to the plain call otherwise.
func UpdateContext(ctx context.Context, c SPARQLClient, update string) error {
	if cc, ok := c.(ContextClient); ok {
		return cc.UpdateContext(ctx, update)
	}
	return c.Update(update)
}

// Explainer is implemented by clients that can produce an EXPLAIN
// ANALYZE plan for a query: Local renders an in-process trace, Remote
// uses the server's ?explain=1 surface, so `qb2olap query -trace`
// prints the server-side plan either way instead of silently degrading
// on remote endpoints.
type Explainer interface {
	// Explain runs the query with operator tracing and returns the
	// rendered plan. Note this evaluates the query.
	Explain(query string) (string, error)
}

// TracedClient is implemented by clients that can evaluate one SELECT
// with full tracing forced, bypassing any sampler: Local traces the
// in-process engine, Remote propagates the trace over HTTP and returns
// the stitched client+server tree. `qb2olap query -trace` uses this to
// render one end-to-end trace for either source kind.
type TracedClient interface {
	// SelectTraced runs the query with tracing forced and returns the
	// trace alongside the results.
	SelectTraced(query string) (*sparql.Results, *obs.Trace, error)
}

// CostEstimator is implemented by clients that can price a query with
// the cost-based planner without evaluating it: Local plans in process,
// Remote uses the server's ?cost=1 surface. internal/ql uses this to
// pick the cheaper of its two QL-to-SPARQL translations per query; a
// client that does not implement it (or whose planner is off) makes the
// caller fall back to a static heuristic.
type CostEstimator interface {
	// EstimateCost parses and plans the query and returns the planner's
	// estimated C_out cost (the sum of estimated operator output
	// cardinalities). It never evaluates the query. It errors when the
	// planner is unavailable, e.g. disabled with sparql.WithPlanner(false)
	// or -planner=off.
	EstimateCost(query string) (float64, error)
}

// Local is an in-process client evaluating directly against a store.
// It is safe for concurrent use; see the package comment for the
// read/write interaction.
type Local struct {
	Engine *sparql.Engine
}

// NewLocal returns an in-process client over st. Engine options (e.g.
// sparql.WithParallelism) configure the embedded engine.
func NewLocal(st *store.Store, opts ...sparql.Option) *Local {
	return &Local{Engine: sparql.NewEngine(st, opts...)}
}

// Select implements SPARQLClient.
func (l *Local) Select(query string) (*sparql.Results, error) {
	return l.Engine.QueryString(query)
}

// SelectContext implements ContextClient; ctx cancels evaluation.
func (l *Local) SelectContext(ctx context.Context, query string) (*sparql.Results, error) {
	return l.Engine.QueryStringContext(ctx, query)
}

// Update implements SPARQLClient.
func (l *Local) Update(update string) error {
	return l.Engine.ExecuteString(update)
}

// UpdateContext implements ContextClient; ctx is checked between
// operations and during WHERE evaluation, never mid-write.
func (l *Local) UpdateContext(ctx context.Context, update string) error {
	return l.Engine.ExecuteStringContext(ctx, update)
}

// Explain implements Explainer with an in-process traced evaluation.
func (l *Local) Explain(query string) (string, error) {
	res, tr, err := l.Engine.QueryTracedString(query)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s\n%d result row(s)\n", tr.Render(), len(res.Rows)), nil
}

// SelectTraced implements TracedClient with an in-process traced
// evaluation.
func (l *Local) SelectTraced(query string) (*sparql.Results, *obs.Trace, error) {
	return l.Engine.QueryTracedString(query)
}

// EstimateCost implements CostEstimator in process: the query is parsed
// and planned, never evaluated. It errors when the engine's planner is
// disabled, so callers fall back to their own heuristic instead of
// trusting a cost the evaluator would not follow.
func (l *Local) EstimateCost(query string) (float64, error) {
	if !l.Engine.PlannerEnabled() {
		return 0, fmt.Errorf("endpoint: cost estimate unavailable: planner disabled")
	}
	q, err := sparql.ParseQuery(query)
	if err != nil {
		return 0, err
	}
	return l.Engine.EstimateCost(q), nil
}

// Remote is an HTTP client for a SPARQL protocol endpoint.
//
// With a Tracer installed, every Select draws a trace ID, asks the
// Sampler for a verdict (nil samples everything), and — when sampled —
// sends a W3C traceparent header so a qb2olap-aware server evaluates
// the query traced and returns its span tree in the X-Qb2olap-Trace
// response header. The client stitches that tree under its own HTTP
// span and collects the result: one end-to-end trace per sampled query,
// exported as JSONL when an Exporter is set. Unsampled queries send an
// unsampled traceparent, which pins the server to its untraced fast
// path too.
//
// The zero resilience configuration is the plain single-attempt client.
// With Retries > 0 the idempotent exchanges (Select, Explain) are
// retried on transient failures — connection errors, attempt timeouts,
// 429/502/503/504 responses, truncated or undecodable result bodies —
// with exponential backoff and jitter; updates are never retried (see
// UpdateContext). Failures come back as *Error; test with IsRetryable.
type Remote struct {
	// QueryURL is the query endpoint, e.g. http://host:port/sparql.
	QueryURL string
	// UpdateURL is the update endpoint, e.g. http://host:port/update.
	UpdateURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	// Timeout bounds each HTTP attempt; the retry loop runs fresh
	// attempts under the caller's context. 0 means no attempt timeout.
	Timeout time.Duration
	// Retries is how many times an idempotent exchange is retried after
	// a transient failure (so Retries+1 attempts total). 0 disables
	// retrying. Updates are never retried regardless.
	Retries int
	// Backoff is the base delay before the first retry, doubling per
	// subsequent retry with jitter and capped at 5s. 0 means 100ms.
	Backoff time.Duration
	// Breaker, when set, fails requests fast after a run of consecutive
	// failures instead of hammering a down endpoint. It may be shared
	// across clients.
	Breaker *Breaker

	// Tracer, when set, collects a stitched client+server trace of
	// every sampled Select. Set it before the client is shared.
	Tracer *obs.Tracer
	// Sampler gates which Selects are traced (nil = all, when tracing
	// is on). Set it before the client is shared.
	Sampler *obs.Sampler
	// Exporter, when set, appends every collected trace as JSONL.
	Exporter *obs.Exporter

	retried atomic.Int64 // retry attempts performed (not first tries)

	// sleep and jitterFn are test seams for the backoff schedule.
	sleep    func(context.Context, time.Duration) error
	jitterFn func() float64
}

// NewRemote returns a client for a server rooted at base (without
// trailing slash), using the /sparql and /update routes.
func NewRemote(base string) *Remote {
	base = strings.TrimSuffix(base, "/")
	return &Remote{
		QueryURL:  base + "/sparql",
		UpdateURL: base + "/update",
	}
}

func (r *Remote) client() *http.Client {
	if r.HTTPClient != nil {
		return r.HTTPClient
	}
	return http.DefaultClient
}

// RetryCount returns how many retry attempts (beyond first tries) this
// client has performed.
func (r *Remote) RetryCount() int64 { return r.retried.Load() }

// tracing reports whether this client records traces at all.
func (r *Remote) tracing() bool { return r.Tracer != nil || r.Exporter != nil }

// Select implements SPARQLClient over HTTP. When tracing is enabled the
// query is sampled; see the type comment.
func (r *Remote) Select(query string) (*sparql.Results, error) {
	return r.SelectContext(context.Background(), query)
}

// SelectContext implements ContextClient: ctx bounds the whole exchange
// including retries and backoff waits.
func (r *Remote) SelectContext(ctx context.Context, query string) (*sparql.Results, error) {
	if r.tracing() {
		id := obs.NewTraceID()
		if r.Sampler.Sample(id) {
			res, _, err := r.selectTraced(ctx, query, id)
			return res, err
		}
		// Unsampled: tell the server so it skips tracing too.
		return r.retrySelect(ctx, query, obs.FormatTraceparent(id, obs.NewSpanID(), false))
	}
	return r.retrySelect(ctx, query, "")
}

// SelectTraced implements TracedClient: tracing is forced for this one
// query regardless of the sampler, and the stitched client+server trace
// is returned (and still collected/exported when sinks are set).
func (r *Remote) SelectTraced(query string) (*sparql.Results, *obs.Trace, error) {
	return r.selectTraced(context.Background(), query, obs.NewTraceID())
}

// retrySelect runs one (possibly retried) query exchange.
func (r *Remote) retrySelect(ctx context.Context, query, traceparent string) (*sparql.Results, error) {
	var res *sparql.Results
	err := r.retryIdempotent(ctx, "query", func(actx context.Context) *Error {
		var aerr *Error
		res, _, aerr = r.doSelect(actx, query, traceparent)
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// selectTraced runs one sampled query: it wraps the (possibly retried)
// HTTP exchange in a client span, propagates id with the sampled flag
// set, and attaches the span tree the server returns.
func (r *Remote) selectTraced(ctx context.Context, query string, id obs.TraceID) (*sparql.Results, *obs.Trace, error) {
	start := time.Now()
	root := obs.StartSpan("HTTP", "POST "+urlPath(r.QueryURL), 1)
	var res *sparql.Results
	var wire string
	err := r.retryIdempotent(ctx, "query", func(actx context.Context) *Error {
		var aerr *Error
		res, wire, aerr = r.doSelect(actx, query, obs.FormatTraceparent(id, obs.NewSpanID(), true))
		return aerr
	})
	if srv, derr := obs.DecodeSpanWire(wire); derr == nil {
		root.Attach(srv) // nil-safe: absent header leaves a client-only span
	}
	out := 0
	if res != nil {
		out = res.Len()
	}
	root.Finish(out, 1)
	tr := &obs.Trace{ID: id, Start: start, Query: query, Root: root}
	r.Tracer.Collect(tr)  // nil-safe
	r.Exporter.Export(tr) // nil-safe
	return res, tr, err
}

// urlPath reduces an endpoint URL to its path for span details, so
// traces are stable across hosts and ports.
func urlPath(raw string) string {
	if u, err := url.Parse(raw); err == nil && u.Path != "" {
		return u.Path
	}
	return raw
}

// retryIdempotent runs attempt under the client's resilience policy:
// breaker gate, per-attempt timeout, retry on transient failures with
// exponential backoff + jitter. It must only be used for idempotent
// exchanges. The returned error is nil or a *Error with Op and
// Attempts filled in.
func (r *Remote) retryIdempotent(ctx context.Context, op string, attempt func(context.Context) *Error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for n := 1; ; n++ {
		if !r.Breaker.Allow() {
			return &Error{Op: op, Retryable: true, Attempts: n - 1, Err: ErrCircuitOpen}
		}
		aerr := r.attemptOnce(ctx, attempt)
		r.Breaker.Record(aerr == nil)
		if aerr == nil {
			return nil
		}
		aerr.Op, aerr.Attempts = op, n
		if ctx.Err() != nil {
			// The caller's context ended; what looks like a transport
			// failure is really a cancel, and retrying can't help.
			aerr.Retryable = false
			return aerr
		}
		if !aerr.Retryable || n > r.Retries {
			return aerr
		}
		if err := r.backoffWait(ctx, n, aerr.RetryAfter); err != nil {
			aerr.Retryable = false
			return aerr
		}
		r.retried.Add(1)
	}
}

// attemptOnce applies the per-attempt timeout around one exchange.
func (r *Remote) attemptOnce(ctx context.Context, attempt func(context.Context) *Error) *Error {
	if r.Timeout > 0 {
		actx, cancel := context.WithTimeout(ctx, r.Timeout)
		defer cancel()
		return attempt(actx)
	}
	return attempt(ctx)
}

// backoffWait sleeps before retry n (1-based): exponential growth from
// Backoff, capped at 5s, with equal jitter (a uniform draw over the
// upper half) so synchronized clients spread out. A positive hint is a
// server-requested delay (Retry-After on a 503 shed) and replaces the
// exponential schedule: the client waits at least what the server asked
// for, plus up to 25% additive jitter, under the same 5s cap. Returns
// early with an error when ctx ends.
func (r *Remote) backoffWait(ctx context.Context, n int, hint time.Duration) error {
	jitter := r.jitterFn
	if jitter == nil {
		jitter = rand.Float64
	}
	var d time.Duration
	if hint > 0 {
		if hint > 5*time.Second {
			hint = 5 * time.Second
		}
		d = hint + time.Duration(jitter()*float64(hint/4))
	} else {
		base := r.Backoff
		if base <= 0 {
			base = 100 * time.Millisecond
		}
		d = base << uint(n-1)
		if d > 5*time.Second || d <= 0 {
			d = 5 * time.Second
		}
		d = d/2 + time.Duration(jitter()*float64(d/2))
	}
	if r.sleep != nil {
		return r.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-t.C:
		return nil
	}
}

// maxDrainBytes bounds how much of a response body is drained before
// closing, so connections can be reused without reading an unbounded
// tail.
const maxDrainBytes = 256 << 10

// drainBody discards what remains of body and closes it, letting the
// transport reuse the connection no matter how the exchange ended.
func drainBody(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, maxDrainBytes)) //nolint:errcheck
	body.Close()
}

// doSelect performs one protocol exchange. A non-empty traceparent is
// propagated on the request; the raw X-Qb2olap-Trace response header
// (the server's serialized span tree, possibly empty) is returned
// alongside the results. The returned *Error (nil on success)
// classifies the failure for the retry loop.
func (r *Remote) doSelect(ctx context.Context, query, traceparent string) (*sparql.Results, string, *Error) {
	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.QueryURL, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, "", &Error{Err: err}
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/sparql-results+json")
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return nil, "", &Error{Retryable: true, Err: fmt.Errorf("endpoint: query request: %w", err)}
	}
	defer drainBody(resp.Body)
	wire := resp.Header.Get(obs.ServerTraceHeader)
	if len(wire) > obs.MaxWireSpanBytes {
		// An oversized (or hostile) trace header is dropped rather than
		// buffered or allowed to fail the query.
		wire = ""
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
		return nil, wire, &Error{
			Status:     resp.StatusCode,
			Retryable:  retryableResponse(resp),
			RetryAfter: parseRetryAfter(resp),
			Err:        fmt.Errorf("endpoint: query failed (%d): %s", resp.StatusCode, strings.TrimSpace(string(body))),
		}
	}
	// The body is decoded incrementally — bindings are parsed as bytes
	// arrive instead of buffering the document whole, the client half of
	// the server's chunk-flushed streaming encoder.
	res, derr := sparql.DecodeResults(resp.Body)
	// A streamed response commits its 200 before evaluation finishes;
	// a mid-stream failure truncates the JSON and names itself in the
	// trailer (readable only once the body is consumed). The trailer
	// verdict outranks the decode error: a truncated document it
	// explains is a server-side abort, not a transport fault.
	if derr != nil {
		drainBody(io.NopCloser(resp.Body)) // reach EOF so trailers arrive
	}
	if code := resp.Trailer.Get(StreamErrorTrailer); code != "" {
		return nil, wire, streamTrailerError(code)
	}
	if derr != nil {
		// A 200 whose body doesn't decode is a truncated or corrupted
		// payload; a fresh exchange may deliver it intact.
		return nil, wire, &Error{Retryable: true, Err: derr}
	}
	return res, wire, nil
}

// streamTrailerError maps a stream-error trailer to the *Error the
// equivalent pre-body failure would have produced: a mem-limit abort is
// permanent (the same query against the same limit fails the same way),
// a timeout is worth a fresh exchange, a cancel or internal failure is
// terminal for this attempt.
func streamTrailerError(code string) *Error {
	switch code {
	case streamErrMemLimit:
		return &Error{Status: http.StatusTooManyRequests, Retryable: false,
			Err: fmt.Errorf("endpoint: query aborted mid-stream: memory budget exceeded")}
	case streamErrTimeout:
		return &Error{Status: http.StatusGatewayTimeout, Retryable: true,
			Err: fmt.Errorf("endpoint: query aborted mid-stream: timed out")}
	case streamErrCanceled:
		return &Error{Status: statusClientClosedRequest, Retryable: false,
			Err: fmt.Errorf("endpoint: query aborted mid-stream: canceled")}
	default:
		return &Error{Status: http.StatusInternalServerError, Retryable: false,
			Err: fmt.Errorf("endpoint: query aborted mid-stream: %s", code)}
	}
}

// Explain implements Explainer against the server's ?explain=1
// surface: the query is evaluated remotely with operator tracing and
// the rendered EXPLAIN ANALYZE tree is returned as plain text.
func (r *Remote) Explain(query string) (string, error) {
	return r.ExplainContext(context.Background(), query)
}

// ExplainContext is Explain under a context; like Select it is
// idempotent and retried.
func (r *Remote) ExplainContext(ctx context.Context, query string) (string, error) {
	var out string
	err := r.retryIdempotent(ctx, "explain", func(actx context.Context) *Error {
		form := url.Values{"query": {query}, "explain": {"1"}}
		req, err := http.NewRequestWithContext(actx, http.MethodPost, r.QueryURL, strings.NewReader(form.Encode()))
		if err != nil {
			return &Error{Err: err}
		}
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Header.Set("Accept", "text/plain")
		resp, err := r.client().Do(req)
		if err != nil {
			return &Error{Retryable: true, Err: fmt.Errorf("endpoint: explain request: %w", err)}
		}
		defer drainBody(resp.Body)
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return &Error{Retryable: true, Err: fmt.Errorf("endpoint: reading explain response: %w", err)}
		}
		if resp.StatusCode != http.StatusOK {
			return &Error{
				Status:     resp.StatusCode,
				Retryable:  retryableResponse(resp),
				RetryAfter: parseRetryAfter(resp),
				Err:        fmt.Errorf("endpoint: explain failed (%d): %s", resp.StatusCode, strings.TrimSpace(string(body))),
			}
		}
		out = string(body)
		return nil
	})
	if err != nil {
		return "", err
	}
	return out, nil
}

// costResponse is the JSON body of the server's ?cost=1 surface. The
// Planner field doubles as a marker: a foreign SPARQL endpoint that
// evaluated the query instead of planning it returns a result document
// without it, which the client rejects rather than misreading a result
// table as a cost.
type costResponse struct {
	Planner       string  `json:"planner"`
	Cost          float64 `json:"cost"`
	Reordered     bool    `json:"reordered"`
	PushedFilters int     `json:"pushedFilters"`
}

// EstimateCost implements CostEstimator against the server's ?cost=1
// surface: the query is parsed and planned remotely, never evaluated.
func (r *Remote) EstimateCost(query string) (float64, error) {
	return r.EstimateCostContext(context.Background(), query)
}

// EstimateCostContext is EstimateCost under a context; like Select it
// is idempotent and retried.
func (r *Remote) EstimateCostContext(ctx context.Context, query string) (float64, error) {
	var cost float64
	err := r.retryIdempotent(ctx, "cost", func(actx context.Context) *Error {
		form := url.Values{"query": {query}, "cost": {"1"}}
		req, err := http.NewRequestWithContext(actx, http.MethodPost, r.QueryURL, strings.NewReader(form.Encode()))
		if err != nil {
			return &Error{Err: err}
		}
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Header.Set("Accept", "application/json")
		resp, err := r.client().Do(req)
		if err != nil {
			return &Error{Retryable: true, Err: fmt.Errorf("endpoint: cost request: %w", err)}
		}
		defer drainBody(resp.Body)
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if err != nil {
			return &Error{Retryable: true, Err: fmt.Errorf("endpoint: reading cost response: %w", err)}
		}
		if resp.StatusCode != http.StatusOK {
			return &Error{
				Status:     resp.StatusCode,
				Retryable:  retryableStatus(resp.StatusCode),
				RetryAfter: parseRetryAfter(resp),
				Err:        fmt.Errorf("endpoint: cost failed (%d): %s", resp.StatusCode, strings.TrimSpace(string(body))),
			}
		}
		var cr costResponse
		if err := json.Unmarshal(body, &cr); err != nil || cr.Planner == "" {
			// Not the planner surface — likely a foreign endpoint that
			// evaluated the query. Retrying will not produce a plan.
			return &Error{Err: fmt.Errorf("endpoint: cost response is not a plan (server without ?cost support?)")}
		}
		cost = cr.Cost
		return nil
	})
	if err != nil {
		return 0, err
	}
	return cost, nil
}

// Update implements SPARQLClient over HTTP.
func (r *Remote) Update(update string) error {
	return r.UpdateContext(context.Background(), update)
}

// UpdateContext implements ContextClient. Updates are never retried:
// they are not idempotent, and after an ambiguous failure (say, a
// connection dropped after the server applied the write) a retry could
// apply the update twice. The per-attempt Timeout still applies, and
// the returned *Error still classifies the failure so the caller can
// decide what a safe recovery looks like.
func (r *Remote) UpdateContext(ctx context.Context, update string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	form := url.Values{"update": {update}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.UpdateURL, strings.NewReader(form.Encode()))
	if err != nil {
		return &Error{Op: "update", Attempts: 1, Err: err}
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := r.client().Do(req)
	if err != nil {
		return &Error{Op: "update", Attempts: 1, Retryable: true, Err: fmt.Errorf("endpoint: update request: %w", err)}
	}
	defer drainBody(resp.Body)
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
		return &Error{
			Op:         "update",
			Status:     resp.StatusCode,
			Attempts:   1,
			Retryable:  retryableStatus(resp.StatusCode),
			RetryAfter: parseRetryAfter(resp),
			Err:        fmt.Errorf("endpoint: update failed (%d): %s", resp.StatusCode, strings.TrimSpace(string(body))),
		}
	}
	return nil
}

// InsertTriples sends triples to a client as INSERT DATA batches. It is
// the loading path the Enrichment module uses for generated triples.
func InsertTriples(c SPARQLClient, graph rdf.Term, triples []rdf.Triple, batch int) error {
	return InsertTriplesP(c, graph, triples, batch, nil)
}

// InsertTriplesP is InsertTriples with per-batch progress reporting:
// the phase's total grows by len(triples) up front and advances one
// batch at a time, so bulk commits render a live rate and ETA. A nil
// phase reports nothing.
func InsertTriplesP(c SPARQLClient, graph rdf.Term, triples []rdf.Triple, batch int, ph *obs.Phase) error {
	if batch <= 0 {
		batch = 5000
	}
	ph.Grow(int64(len(triples)))
	for from := 0; from < len(triples); from += batch {
		to := from + batch
		if to > len(triples) {
			to = len(triples)
		}
		var b strings.Builder
		b.WriteString("INSERT DATA {\n")
		if !graph.IsZero() {
			fmt.Fprintf(&b, "GRAPH <%s> {\n", graph.Value)
		}
		for _, t := range triples[from:to] {
			b.WriteString(t.String())
			b.WriteString(" .\n")
		}
		if !graph.IsZero() {
			b.WriteString("}\n")
		}
		b.WriteString("}")
		if err := c.Update(b.String()); err != nil {
			return fmt.Errorf("endpoint: inserting batch %d..%d: %w", from, to, err)
		}
		ph.Add(int64(to - from))
	}
	return nil
}
