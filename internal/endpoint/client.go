package endpoint

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// SPARQLClient is the interface the QB2OLAP modules use to talk to an
// endpoint: either in-process (Local) or over HTTP (Remote). This
// mirrors the paper's architecture, where all modules operate through
// the SPARQL endpoint.
type SPARQLClient interface {
	// Select runs a SELECT (or ASK) query and returns the result table.
	Select(query string) (*sparql.Results, error)
	// Update runs a SPARQL update request.
	Update(update string) error
}

// Explainer is implemented by clients that can produce an EXPLAIN
// ANALYZE plan for a query: Local renders an in-process trace, Remote
// uses the server's ?explain=1 surface, so `qb2olap query -trace`
// prints the server-side plan either way instead of silently degrading
// on remote endpoints.
type Explainer interface {
	// Explain runs the query with operator tracing and returns the
	// rendered plan. Note this evaluates the query.
	Explain(query string) (string, error)
}

// TracedClient is implemented by clients that can evaluate one SELECT
// with full tracing forced, bypassing any sampler: Local traces the
// in-process engine, Remote propagates the trace over HTTP and returns
// the stitched client+server tree. `qb2olap query -trace` uses this to
// render one end-to-end trace for either source kind.
type TracedClient interface {
	// SelectTraced runs the query with tracing forced and returns the
	// trace alongside the results.
	SelectTraced(query string) (*sparql.Results, *obs.Trace, error)
}

// Local is an in-process client evaluating directly against a store.
// It is safe for concurrent use; see the package comment for the
// read/write interaction.
type Local struct {
	Engine *sparql.Engine
}

// NewLocal returns an in-process client over st. Engine options (e.g.
// sparql.WithParallelism) configure the embedded engine.
func NewLocal(st *store.Store, opts ...sparql.Option) *Local {
	return &Local{Engine: sparql.NewEngine(st, opts...)}
}

// Select implements SPARQLClient.
func (l *Local) Select(query string) (*sparql.Results, error) {
	return l.Engine.QueryString(query)
}

// Update implements SPARQLClient.
func (l *Local) Update(update string) error {
	return l.Engine.ExecuteString(update)
}

// Explain implements Explainer with an in-process traced evaluation.
func (l *Local) Explain(query string) (string, error) {
	res, tr, err := l.Engine.QueryTracedString(query)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s\n%d result row(s)\n", tr.Render(), len(res.Rows)), nil
}

// SelectTraced implements TracedClient with an in-process traced
// evaluation.
func (l *Local) SelectTraced(query string) (*sparql.Results, *obs.Trace, error) {
	return l.Engine.QueryTracedString(query)
}

// Remote is an HTTP client for a SPARQL protocol endpoint.
//
// With a Tracer installed, every Select draws a trace ID, asks the
// Sampler for a verdict (nil samples everything), and — when sampled —
// sends a W3C traceparent header so a qb2olap-aware server evaluates
// the query traced and returns its span tree in the X-Qb2olap-Trace
// response header. The client stitches that tree under its own HTTP
// span and collects the result: one end-to-end trace per sampled query,
// exported as JSONL when an Exporter is set. Unsampled queries send an
// unsampled traceparent, which pins the server to its untraced fast
// path too.
type Remote struct {
	// QueryURL is the query endpoint, e.g. http://host:port/sparql.
	QueryURL string
	// UpdateURL is the update endpoint, e.g. http://host:port/update.
	UpdateURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	// Tracer, when set, collects a stitched client+server trace of
	// every sampled Select. Set it before the client is shared.
	Tracer *obs.Tracer
	// Sampler gates which Selects are traced (nil = all, when tracing
	// is on). Set it before the client is shared.
	Sampler *obs.Sampler
	// Exporter, when set, appends every collected trace as JSONL.
	Exporter *obs.Exporter
}

// NewRemote returns a client for a server rooted at base (without
// trailing slash), using the /sparql and /update routes.
func NewRemote(base string) *Remote {
	base = strings.TrimSuffix(base, "/")
	return &Remote{
		QueryURL:  base + "/sparql",
		UpdateURL: base + "/update",
	}
}

func (r *Remote) client() *http.Client {
	if r.HTTPClient != nil {
		return r.HTTPClient
	}
	return http.DefaultClient
}

// tracing reports whether this client records traces at all.
func (r *Remote) tracing() bool { return r.Tracer != nil || r.Exporter != nil }

// Select implements SPARQLClient over HTTP. When tracing is enabled the
// query is sampled; see the type comment.
func (r *Remote) Select(query string) (*sparql.Results, error) {
	if r.tracing() {
		id := obs.NewTraceID()
		if r.Sampler.Sample(id) {
			res, _, err := r.selectTraced(query, id)
			return res, err
		}
		// Unsampled: tell the server so it skips tracing too.
		res, _, err := r.doSelect(query, obs.FormatTraceparent(id, obs.NewSpanID(), false))
		return res, err
	}
	res, _, err := r.doSelect(query, "")
	return res, err
}

// SelectTraced implements TracedClient: tracing is forced for this one
// query regardless of the sampler, and the stitched client+server trace
// is returned (and still collected/exported when sinks are set).
func (r *Remote) SelectTraced(query string) (*sparql.Results, *obs.Trace, error) {
	return r.selectTraced(query, obs.NewTraceID())
}

// selectTraced runs one sampled query: it wraps the HTTP exchange in a
// client span, propagates id with the sampled flag set, and attaches
// the span tree the server returns.
func (r *Remote) selectTraced(query string, id obs.TraceID) (*sparql.Results, *obs.Trace, error) {
	start := time.Now()
	root := obs.StartSpan("HTTP", "POST "+urlPath(r.QueryURL), 1)
	res, wire, err := r.doSelect(query, obs.FormatTraceparent(id, obs.NewSpanID(), true))
	if srv, derr := obs.DecodeSpanWire(wire); derr == nil {
		root.Attach(srv) // nil-safe: absent header leaves a client-only span
	}
	out := 0
	if res != nil {
		out = res.Len()
	}
	root.Finish(out, 1)
	tr := &obs.Trace{ID: id, Start: start, Query: query, Root: root}
	r.Tracer.Collect(tr)  // nil-safe
	r.Exporter.Export(tr) // nil-safe
	return res, tr, err
}

// urlPath reduces an endpoint URL to its path for span details, so
// traces are stable across hosts and ports.
func urlPath(raw string) string {
	if u, err := url.Parse(raw); err == nil && u.Path != "" {
		return u.Path
	}
	return raw
}

// doSelect performs the protocol exchange. A non-empty traceparent is
// propagated on the request; the raw X-Qb2olap-Trace response header
// (the server's serialized span tree, possibly empty) is returned
// alongside the results.
func (r *Remote) doSelect(query, traceparent string) (*sparql.Results, string, error) {
	form := url.Values{"query": {query}}
	req, err := http.NewRequest(http.MethodPost, r.QueryURL, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/sparql-results+json")
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("endpoint: query request: %w", err)
	}
	defer resp.Body.Close()
	wire := resp.Header.Get(obs.ServerTraceHeader)
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, wire, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, wire, fmt.Errorf("endpoint: query failed (%d): %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	res, err := sparql.ResultsFromJSON(body)
	return res, wire, err
}

// Explain implements Explainer against the server's ?explain=1
// surface: the query is evaluated remotely with operator tracing and
// the rendered EXPLAIN ANALYZE tree is returned as plain text.
func (r *Remote) Explain(query string) (string, error) {
	form := url.Values{"query": {query}, "explain": {"1"}}
	req, err := http.NewRequest(http.MethodPost, r.QueryURL, strings.NewReader(form.Encode()))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "text/plain")
	resp, err := r.client().Do(req)
	if err != nil {
		return "", fmt.Errorf("endpoint: explain request: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("endpoint: explain failed (%d): %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// Update implements SPARQLClient over HTTP.
func (r *Remote) Update(update string) error {
	form := url.Values{"update": {update}}
	req, err := http.NewRequest(http.MethodPost, r.UpdateURL, strings.NewReader(form.Encode()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := r.client().Do(req)
	if err != nil {
		return fmt.Errorf("endpoint: update request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("endpoint: update failed (%d): %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// InsertTriples sends triples to a client as INSERT DATA batches. It is
// the loading path the Enrichment module uses for generated triples.
func InsertTriples(c SPARQLClient, graph rdf.Term, triples []rdf.Triple, batch int) error {
	return InsertTriplesP(c, graph, triples, batch, nil)
}

// InsertTriplesP is InsertTriples with per-batch progress reporting:
// the phase's total grows by len(triples) up front and advances one
// batch at a time, so bulk commits render a live rate and ETA. A nil
// phase reports nothing.
func InsertTriplesP(c SPARQLClient, graph rdf.Term, triples []rdf.Triple, batch int, ph *obs.Phase) error {
	if batch <= 0 {
		batch = 5000
	}
	ph.Grow(int64(len(triples)))
	for from := 0; from < len(triples); from += batch {
		to := from + batch
		if to > len(triples) {
			to = len(triples)
		}
		var b strings.Builder
		b.WriteString("INSERT DATA {\n")
		if !graph.IsZero() {
			fmt.Fprintf(&b, "GRAPH <%s> {\n", graph.Value)
		}
		for _, t := range triples[from:to] {
			b.WriteString(t.String())
			b.WriteString(" .\n")
		}
		if !graph.IsZero() {
			b.WriteString("}\n")
		}
		b.WriteString("}")
		if err := c.Update(b.String()); err != nil {
			return fmt.Errorf("endpoint: inserting batch %d..%d: %w", from, to, err)
		}
		ph.Add(int64(to - from))
	}
	return nil
}
