package endpoint

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// SPARQLClient is the interface the QB2OLAP modules use to talk to an
// endpoint: either in-process (Local) or over HTTP (Remote). This
// mirrors the paper's architecture, where all modules operate through
// the SPARQL endpoint.
type SPARQLClient interface {
	// Select runs a SELECT (or ASK) query and returns the result table.
	Select(query string) (*sparql.Results, error)
	// Update runs a SPARQL update request.
	Update(update string) error
}

// Explainer is implemented by clients that can produce an EXPLAIN
// ANALYZE plan for a query: Local renders an in-process trace, Remote
// uses the server's ?explain=1 surface, so `qb2olap query -trace`
// prints the server-side plan either way instead of silently degrading
// on remote endpoints.
type Explainer interface {
	// Explain runs the query with operator tracing and returns the
	// rendered plan. Note this evaluates the query.
	Explain(query string) (string, error)
}

// Local is an in-process client evaluating directly against a store.
// It is safe for concurrent use; see the package comment for the
// read/write interaction.
type Local struct {
	Engine *sparql.Engine
}

// NewLocal returns an in-process client over st. Engine options (e.g.
// sparql.WithParallelism) configure the embedded engine.
func NewLocal(st *store.Store, opts ...sparql.Option) *Local {
	return &Local{Engine: sparql.NewEngine(st, opts...)}
}

// Select implements SPARQLClient.
func (l *Local) Select(query string) (*sparql.Results, error) {
	return l.Engine.QueryString(query)
}

// Update implements SPARQLClient.
func (l *Local) Update(update string) error {
	return l.Engine.ExecuteString(update)
}

// Explain implements Explainer with an in-process traced evaluation.
func (l *Local) Explain(query string) (string, error) {
	res, tr, err := l.Engine.QueryTracedString(query)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s\n%d result row(s)\n", tr.Render(), len(res.Rows)), nil
}

// Remote is an HTTP client for a SPARQL protocol endpoint.
type Remote struct {
	// QueryURL is the query endpoint, e.g. http://host:port/sparql.
	QueryURL string
	// UpdateURL is the update endpoint, e.g. http://host:port/update.
	UpdateURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewRemote returns a client for a server rooted at base (without
// trailing slash), using the /sparql and /update routes.
func NewRemote(base string) *Remote {
	base = strings.TrimSuffix(base, "/")
	return &Remote{
		QueryURL:  base + "/sparql",
		UpdateURL: base + "/update",
	}
}

func (r *Remote) client() *http.Client {
	if r.HTTPClient != nil {
		return r.HTTPClient
	}
	return http.DefaultClient
}

// Select implements SPARQLClient over HTTP.
func (r *Remote) Select(query string) (*sparql.Results, error) {
	form := url.Values{"query": {query}}
	req, err := http.NewRequest(http.MethodPost, r.QueryURL, strings.NewReader(form.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/sparql-results+json")
	resp, err := r.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("endpoint: query request: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("endpoint: query failed (%d): %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return sparql.ResultsFromJSON(body)
}

// Explain implements Explainer against the server's ?explain=1
// surface: the query is evaluated remotely with operator tracing and
// the rendered EXPLAIN ANALYZE tree is returned as plain text.
func (r *Remote) Explain(query string) (string, error) {
	form := url.Values{"query": {query}, "explain": {"1"}}
	req, err := http.NewRequest(http.MethodPost, r.QueryURL, strings.NewReader(form.Encode()))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "text/plain")
	resp, err := r.client().Do(req)
	if err != nil {
		return "", fmt.Errorf("endpoint: explain request: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("endpoint: explain failed (%d): %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// Update implements SPARQLClient over HTTP.
func (r *Remote) Update(update string) error {
	form := url.Values{"update": {update}}
	req, err := http.NewRequest(http.MethodPost, r.UpdateURL, strings.NewReader(form.Encode()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := r.client().Do(req)
	if err != nil {
		return fmt.Errorf("endpoint: update request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("endpoint: update failed (%d): %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// InsertTriples sends triples to a client as INSERT DATA batches. It is
// the loading path the Enrichment module uses for generated triples.
func InsertTriples(c SPARQLClient, graph rdf.Term, triples []rdf.Triple, batch int) error {
	return InsertTriplesP(c, graph, triples, batch, nil)
}

// InsertTriplesP is InsertTriples with per-batch progress reporting:
// the phase's total grows by len(triples) up front and advances one
// batch at a time, so bulk commits render a live rate and ETA. A nil
// phase reports nothing.
func InsertTriplesP(c SPARQLClient, graph rdf.Term, triples []rdf.Triple, batch int, ph *obs.Phase) error {
	if batch <= 0 {
		batch = 5000
	}
	ph.Grow(int64(len(triples)))
	for from := 0; from < len(triples); from += batch {
		to := from + batch
		if to > len(triples) {
			to = len(triples)
		}
		var b strings.Builder
		b.WriteString("INSERT DATA {\n")
		if !graph.IsZero() {
			fmt.Fprintf(&b, "GRAPH <%s> {\n", graph.Value)
		}
		for _, t := range triples[from:to] {
			b.WriteString(t.String())
			b.WriteString(" .\n")
		}
		if !graph.IsZero() {
			b.WriteString("}\n")
		}
		b.WriteString("}")
		if err := c.Update(b.String()); err != nil {
			return fmt.Errorf("endpoint: inserting batch %d..%d: %w", from, to, err)
		}
		ph.Add(int64(to - from))
	}
	return nil
}
