package endpoint

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

const costQuery = `PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ?o }`

// TestLocalEstimateCost exercises the in-process CostEstimator: a
// planner-on Local returns a finite cost, a planner-off Local refuses.
func TestLocalEstimateCost(t *testing.T) {
	st := store.New()
	triples, _, err := turtle.Parse(testTTL)
	if err != nil {
		t.Fatal(err)
	}
	st.InsertTriples(rdf.Term{}, triples)

	var est CostEstimator = NewLocal(st)
	cost, err := est.EstimateCost(costQuery)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("cost = %v, want > 0", cost)
	}

	off := NewLocal(st, sparql.WithPlanner(false))
	if _, err := off.EstimateCost(costQuery); err == nil {
		t.Fatal("planner-off Local returned a cost estimate")
	}
}

// TestRemoteEstimateCost drives the ?cost=1 surface over real HTTP:
// the Remote estimate must match the server engine's own estimate, a
// parse error must surface, and a planner-off server must refuse.
func TestRemoteEstimateCost(t *testing.T) {
	srv, st := newTestServer(t, testTTL)
	c := NewRemote(srv.URL)

	got, err := c.EstimateCost(costQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewLocal(st).EstimateCost(costQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("remote cost %v != local cost %v", got, want)
	}

	if _, err := c.EstimateCost("SELECT WHERE {"); err == nil {
		t.Fatal("malformed query did not error")
	}

	offSrv := httptest.NewServer(NewServer(st, sparql.WithPlanner(false)).Handler())
	t.Cleanup(offSrv.Close)
	_, err = NewRemote(offSrv.URL).EstimateCost(costQuery)
	if err == nil || !strings.Contains(err.Error(), "planner disabled") {
		t.Fatalf("planner-off server: err = %v, want planner disabled", err)
	}
}

// TestRemoteEstimateCostRejectsForeignEndpoint: a server that answers
// ?cost=1 with an ordinary SPARQL results body (any endpoint that
// ignores unknown parameters) must be detected, not silently parsed as
// cost zero.
func TestRemoteEstimateCostRejectsForeignEndpoint(t *testing.T) {
	foreign := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		w.Write([]byte(`{"head":{"vars":["s"]},"results":{"bindings":[]}}`))
	}))
	t.Cleanup(foreign.Close)
	_, err := NewRemote(foreign.URL).EstimateCost(costQuery)
	if err == nil || !strings.Contains(err.Error(), "not a plan") {
		t.Fatalf("foreign endpoint: err = %v, want 'not a plan'", err)
	}
}
