package endpoint

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

func newTestServer(t *testing.T, ttl string) (*httptest.Server, *store.Store) {
	t.Helper()
	st := store.New()
	if ttl != "" {
		triples, _, err := turtle.Parse(ttl)
		if err != nil {
			t.Fatal(err)
		}
		st.InsertTriples(rdf.Term{}, triples)
	}
	srv := httptest.NewServer(NewServer(st).Handler())
	t.Cleanup(srv.Close)
	return srv, st
}

const testTTL = `
@prefix ex: <http://example.org/> .
ex:a ex:p "1" . ex:b ex:p "2" . ex:c ex:q "3" .`

func TestHTTPQueryJSON(t *testing.T) {
	srv, _ := newTestServer(t, testTTL)
	c := NewRemote(srv.URL)
	res, err := c.Select(`PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ?o } ORDER BY ?s`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if got := res.Binding(0, "s").Value; got != "http://example.org/a" {
		t.Fatalf("first row = %s", got)
	}
}

func TestHTTPQueryGet(t *testing.T) {
	srv, _ := newTestServer(t, testTTL)
	q := url.QueryEscape(`SELECT ?s WHERE { ?s <http://example.org/q> ?o }`)
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "sparql-results+json") {
		t.Fatalf("content type = %s", ct)
	}
}

func TestHTTPQueryCSVAndTSV(t *testing.T) {
	srv, _ := newTestServer(t, testTTL)
	for _, accept := range []string{"text/csv", "text/tab-separated-values"} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/sparql?query="+url.QueryEscape(`SELECT ?o WHERE { <http://example.org/a> <http://example.org/p> ?o }`), nil)
		req.Header.Set("Accept", accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if !strings.Contains(resp.Header.Get("Content-Type"), accept) {
			t.Errorf("accept %s: got content type %s", accept, resp.Header.Get("Content-Type"))
		}
	}
}

func TestHTTPUpdateAndRoundTrip(t *testing.T) {
	srv, st := newTestServer(t, "")
	c := NewRemote(srv.URL)
	err := c.Update(`INSERT DATA { <http://example.org/x> <http://example.org/p> "v" }`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len(rdf.Term{}) != 1 {
		t.Fatalf("store has %d triples", st.Len(rdf.Term{}))
	}
	res, err := c.Select(`SELECT ?o WHERE { <http://example.org/x> <http://example.org/p> ?o }`)
	if err != nil || res.Len() != 1 || res.Binding(0, "o").Value != "v" {
		t.Fatalf("round trip failed: %v %v", res, err)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t, "")
	// missing query
	resp, err := http.Get(srv.URL + "/sparql")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query: status %d", resp.StatusCode)
	}
	// bad syntax
	resp, err = http.Get(srv.URL + "/sparql?query=" + url.QueryEscape("NOT A QUERY"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status %d", resp.StatusCode)
	}
	// wrong method on /update
	resp, err = http.Get(srv.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /update: status %d", resp.StatusCode)
	}
	// client surfaces server errors
	c := NewRemote(srv.URL)
	if _, err := c.Select("BROKEN"); err == nil {
		t.Error("client must surface query errors")
	}
	if err := c.Update("BROKEN"); err == nil {
		t.Error("client must surface update errors")
	}
}

func TestHTTPLoadTurtle(t *testing.T) {
	srv, st := newTestServer(t, "")
	resp, err := http.Post(srv.URL+"/load", "text/turtle", strings.NewReader(testTTL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load status = %d", resp.StatusCode)
	}
	if st.Len(rdf.Term{}) != 3 {
		t.Fatalf("loaded %d triples", st.Len(rdf.Term{}))
	}
	// load into named graph
	resp, err = http.Post(srv.URL+"/load?graph=http://example.org/g", "text/turtle", strings.NewReader(testTTL))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Len(rdf.NewIRI("http://example.org/g")) != 3 {
		t.Fatal("named graph load failed")
	}
}

func TestHTTPStats(t *testing.T) {
	srv, _ := newTestServer(t, testTTL)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
}

func TestHTTPConstruct(t *testing.T) {
	srv, _ := newTestServer(t, testTTL)
	q := url.QueryEscape(`CONSTRUCT { ?s <http://example.org/copied> ?o } WHERE { ?s <http://example.org/p> ?o }`)
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if !strings.Contains(resp.Header.Get("Content-Type"), "n-triples") {
		t.Fatalf("content type = %s", resp.Header.Get("Content-Type"))
	}
}

func TestLocalClientMatchesRemote(t *testing.T) {
	srv, st := newTestServer(t, testTTL)
	local := NewLocal(st)
	remote := NewRemote(srv.URL)
	q := `SELECT ?s ?o WHERE { ?s <http://example.org/p> ?o } ORDER BY ?s`
	lr, err := local.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := remote.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Len() != rr.Len() {
		t.Fatalf("local %d rows vs remote %d rows", lr.Len(), rr.Len())
	}
	for i := range lr.Rows {
		for j := range lr.Vars {
			if lr.Rows[i][j] != rr.Rows[i][j] {
				t.Errorf("cell (%d,%d) differs: %v vs %v", i, j, lr.Rows[i][j], rr.Rows[i][j])
			}
		}
	}
}

func TestInsertTriplesBatching(t *testing.T) {
	srv, st := newTestServer(t, "")
	c := NewRemote(srv.URL)
	var triples []rdf.Triple
	for i := 0; i < 25; i++ {
		triples = append(triples, rdf.NewTriple(
			rdf.NewIRI("http://example.org/s"),
			rdf.NewIRI("http://example.org/p"),
			rdf.NewInteger(int64(i)),
		))
	}
	if err := InsertTriples(c, rdf.Term{}, triples, 10); err != nil {
		t.Fatal(err)
	}
	if st.Len(rdf.Term{}) != 25 {
		t.Fatalf("inserted %d", st.Len(rdf.Term{}))
	}
	// Into a named graph too.
	if err := InsertTriples(c, rdf.NewIRI("http://example.org/g"), triples[:5], 2); err != nil {
		t.Fatal(err)
	}
	if st.Len(rdf.NewIRI("http://example.org/g")) != 5 {
		t.Fatal("named graph insert failed")
	}
}

func TestReadOnlyServer(t *testing.T) {
	st := store.New()
	srv := NewServer(st)
	srv.ReadOnly = true
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	c := NewRemote(hs.URL)
	if err := c.Update(`INSERT DATA { <http://s> <http://p> "v" }`); err == nil {
		t.Fatal("read-only endpoint accepted an update")
	}
	resp, err := http.Post(hs.URL+"/load", "text/turtle", strings.NewReader(testTTL))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("load status = %d, want 403", resp.StatusCode)
	}
	// Queries still work.
	if _, err := c.Select(`SELECT ?s WHERE { ?s ?p ?o }`); err != nil {
		t.Fatalf("read-only query failed: %v", err)
	}
	if st.TotalLen() != 0 {
		t.Fatal("store mutated through read-only endpoint")
	}
}

func TestHTTPDescribe(t *testing.T) {
	srv, _ := newTestServer(t, testTTL)
	q := url.QueryEscape(`DESCRIBE <http://example.org/a>`)
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("describe status = %d", resp.StatusCode)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "n-triples") {
		t.Fatalf("content type = %s", resp.Header.Get("Content-Type"))
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "http://example.org/a") {
		t.Fatalf("describe body:\n%s", body)
	}
}
