package endpoint

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Error is the typed error the Remote client returns for a failed
// protocol exchange. It classifies the failure so callers (and the
// client's own retry loop) can tell transient faults — connection
// drops, 5xx overload responses, timeouts, truncated bodies — from
// permanent ones like parse errors, and records how many attempts were
// made before giving up.
type Error struct {
	// Op is the protocol operation: "query", "update", or "explain".
	Op string
	// Status is the HTTP status of the failing response, or 0 when the
	// exchange failed below HTTP (connection drop, timeout, truncation).
	Status int
	// Retryable reports whether the failure is transient: a retry of
	// the same idempotent request may succeed. Updates are reported
	// with their classification but are never retried by the client.
	Retryable bool
	// RetryAfter is the server's requested backoff, parsed from the
	// Retry-After header of a shed/overload response (the server sends
	// it on 503). Zero when the server did not say; when set, the
	// client's retry loop waits this long (jittered, capped) instead of
	// its own exponential schedule.
	RetryAfter time.Duration
	// Attempts is how many times the exchange was tried (1 = no retry).
	Attempts int
	// Err is the underlying cause.
	Err error
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("endpoint: %s failed", e.Op)
	if e.Status != 0 {
		msg = fmt.Sprintf("%s (HTTP %d)", msg, e.Status)
	}
	if e.Attempts > 1 {
		msg = fmt.Sprintf("%s after %d attempts", msg, e.Attempts)
	}
	return fmt.Sprintf("%s: %v", msg, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// IsRetryable reports whether err represents a transient endpoint
// failure: a typed *Error classified retryable, or a circuit-breaker
// rejection (the breaker reopens by itself, so the caller may try again
// later). Anything else — parse errors, evaluation errors, permanent
// HTTP failures — is not retryable.
func IsRetryable(err error) bool {
	var ee *Error
	if errors.As(err, &ee) {
		return ee.Retryable
	}
	return errors.Is(err, ErrCircuitOpen)
}

// retryableStatus classifies HTTP statuses worth retrying: overload
// and gateway failures (429/502/503/504). 500 is deliberately excluded
// — the server reports deterministic query-evaluation errors as 500,
// and retrying those only multiplies the load that caused them.
func retryableStatus(status int) bool {
	switch status {
	case 429, 502, 503, 504:
		return true
	}
	return false
}

// parseRetryAfter reads a response's Retry-After header as a delay.
// Only the integer-seconds form is recognised (what the shedding
// server emits); HTTP-date values and garbage parse to zero, meaning
// "no server guidance".
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryableResponse is retryableStatus with one header-level override:
// a 429 carrying the server's MemLimitHeader is a per-query memory
// budget rejection, deterministic for the same query against the same
// limit, so retrying only re-spends the evaluation that was aborted.
func retryableResponse(resp *http.Response) bool {
	if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get(MemLimitHeader) != "" {
		return false
	}
	return retryableStatus(resp.StatusCode)
}
