package endpoint

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

const obsQuery = `PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ?o } ORDER BY ?s`

// newStoreFromTTL builds a store for direct-handler tests that need the
// Server value itself rather than an httptest.Server.
func newStoreFromTTL(t *testing.T, ttl string) *store.Store {
	t.Helper()
	st := store.New()
	triples, _, err := turtle.Parse(ttl)
	if err != nil {
		t.Fatal(err)
	}
	st.InsertTriples(rdf.Term{}, triples)
	return st
}

// TestStatsHandler exercises /stats directly: status code, content
// type, and the JSON shape with the store's quad and graph counts.
func TestStatsHandler(t *testing.T) {
	st := newStoreFromTTL(t, testTTL)
	srv := NewServer(st)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var out struct {
		DefaultGraph int      `json:"defaultGraph"`
		Total        int      `json:"total"`
		NamedGraphs  []string `json:"namedGraphs"`
		Terms        int      `json:"terms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, rec.Body.String())
	}
	if out.Total != 3 || out.DefaultGraph != 3 {
		t.Errorf("stats counts = %+v, want total=3 defaultGraph=3", out)
	}
	if out.Terms == 0 {
		t.Errorf("stats terms = 0, want > 0")
	}
	if len(out.NamedGraphs) != 0 {
		t.Errorf("namedGraphs = %v, want none", out.NamedGraphs)
	}
}

// metricsSnapshot fetches and decodes /metrics from a running server.
func metricsSnapshot(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	return m
}

func TestMetricsMiddleware(t *testing.T) {
	srv, _ := newTestServer(t, testTTL)

	// Two queries, one update, one parse error.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(obsQuery))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.PostForm(srv.URL+"/update", url.Values{"update": {
		`PREFIX ex: <http://example.org/> INSERT DATA { ex:d ex:p "4" }`}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/sparql?query=" + url.QueryEscape("SELECT WHERE garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	m := metricsSnapshot(t, srv.URL)
	wantCounts := map[string]float64{
		"queries_total": 3, // two good, one bad
		"updates_total": 1,
		"errors_total":  1,
		"store_quads":   4, // after the INSERT DATA
	}
	for name, want := range wantCounts {
		if got, _ := m[name].(float64); got != want {
			t.Errorf("%s = %v, want %v", name, m[name], want)
		}
	}
	hist, _ := m["query_latency"].(map[string]any)
	if hist == nil {
		t.Fatalf("query_latency missing from snapshot: %v", m)
	}
	if got, _ := hist["count"].(float64); got != 3 {
		t.Errorf("query_latency count = %v, want 3", hist["count"])
	}
}

func TestSlowQueryLog(t *testing.T) {
	st := newStoreFromTTL(t, testTTL)
	srv := NewServer(st)
	var buf bytes.Buffer
	srv.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	srv.SlowQuery = time.Nanosecond // everything is slow

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/sparql?query=" + url.QueryEscape(obsQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	logged := buf.String()
	if !strings.Contains(logged, "slow query") {
		t.Errorf("no slow-query warning in log:\n%s", logged)
	}
	if !strings.Contains(logged, "ORDER BY ?s") {
		t.Errorf("slow-query log missing query text:\n%s", logged)
	}
	if !strings.Contains(logged, "msg=request") {
		t.Errorf("no access-log line in log:\n%s", logged)
	}
	m := metricsSnapshot(t, hs.URL)
	if got, _ := m["slow_queries_total"].(float64); got != 1 {
		t.Errorf("slow_queries_total = %v, want 1", m["slow_queries_total"])
	}
}

func TestExplainMode(t *testing.T) {
	srv, _ := newTestServer(t, testTTL)
	resp, err := http.Get(srv.URL + "/sparql?explain=1&query=" + url.QueryEscape(obsQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"SELECT", "BGP", "result row(s)", "time="} {
		if !strings.Contains(string(body), want) {
			t.Errorf("explain output missing %q:\n%s", want, body)
		}
	}
}

func TestServerTracerAndDebugRoutes(t *testing.T) {
	st := newStoreFromTTL(t, testTTL)
	srv := NewServer(st)
	srv.Tracer = obs.NewTracer(4)
	srv.Debug = true

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/sparql?query=" + url.QueryEscape(obsQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	recent := srv.Tracer.Recent()
	if len(recent) != 1 {
		t.Fatalf("tracer holds %d traces, want 1", len(recent))
	}
	if !strings.Contains(recent[0].Query, "ORDER BY ?s") {
		t.Errorf("trace missing query text: %q", recent[0].Query)
	}

	// Tracing fed the per-operator totals.
	m := metricsSnapshot(t, hs.URL)
	if got, _ := m["op.BGP.count"].(float64); got != 1 {
		t.Errorf("op.BGP.count = %v, want 1", m["op.BGP.count"])
	}

	// Debug routes on the protocol handler and the standalone mux.
	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/debug/traces"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
	rec := httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "SELECT") {
		t.Errorf("standalone /debug/traces: status=%d body=%q", rec.Code, rec.Body.String())
	}
}
