package endpoint

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

// newResilientServer builds a Server over testTTL, applies cfg, and
// serves it on an httptest listener.
func newResilientServer(t *testing.T, cfg func(*Server)) (*Server, *httptest.Server) {
	t.Helper()
	st := store.New()
	triples, _, err := turtle.Parse(testTTL)
	if err != nil {
		t.Fatal(err)
	}
	st.InsertTriples(rdf.Term{}, triples)
	srv := NewServer(st)
	if cfg != nil {
		cfg(srv)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func counterValue(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	switch v := s.Metrics().Snapshot()[name].(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	default:
		t.Fatalf("counter %s has unexpected snapshot type %T", name, v)
		return 0
	}
}

const anyQuery = `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`

// validResults is a minimal SPARQL results JSON document for scripted
// fake servers.
const validResults = `{"head":{"vars":["s"]},"results":{"bindings":[{"s":{"type":"uri","value":"http://x/a"}}]}}`

func TestQueryTimeoutReturns504(t *testing.T) {
	srv, hs := newResilientServer(t, func(s *Server) { s.QueryTimeout = time.Nanosecond })
	resp, err := http.Get(hs.URL + "/sparql?query=" + url.QueryEscape(anyQuery))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	if got := counterValue(t, srv, "queries_timeout_total"); got != 1 {
		t.Fatalf("queries_timeout_total = %d, want 1", got)
	}
}

func TestQueryTimeoutCarriesPartialTrace(t *testing.T) {
	_, hs := newResilientServer(t, func(s *Server) { s.QueryTimeout = time.Nanosecond })
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/sparql?query="+url.QueryEscape(anyQuery), nil)
	req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(obs.NewTraceID(), obs.NewSpanID(), true))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	wire := resp.Header.Get(obs.ServerTraceHeader)
	if wire == "" {
		t.Fatal("504 response carries no partial trace header")
	}
	sp, err := obs.DecodeSpanWire(wire)
	if err != nil || sp == nil {
		t.Fatalf("partial trace did not decode: %v", err)
	}
}

func TestLoadSheddingReturns503(t *testing.T) {
	srv, hs := newResilientServer(t, func(s *Server) { s.MaxInFlight = 1 })

	// Occupy the only slot directly, then observe the shed path.
	release, ok := srv.acquire()
	if !ok {
		t.Fatal("could not take the in-flight slot")
	}
	resp, err := http.Get(hs.URL + "/sparql?query=" + url.QueryEscape(anyQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response has no Retry-After header")
	}
	if got := counterValue(t, srv, "queries_shed_total"); got != 1 {
		t.Fatalf("queries_shed_total = %d, want 1", got)
	}

	release()
	resp, err = http.Get(hs.URL + "/sparql?query=" + url.QueryEscape(anyQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", resp.StatusCode)
	}
}

func TestClientDisconnectCounted(t *testing.T) {
	srv, _ := newResilientServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(anyQuery), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if got := counterValue(t, srv, "queries_canceled_total"); got != 1 {
		t.Fatalf("queries_canceled_total = %d, want 1", got)
	}
}

// scriptedServer serves canned responses in order, repeating the last
// one, and counts requests.
func scriptedServer(t *testing.T, responses ...func(w http.ResponseWriter)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(n.Add(1)) - 1
		if i >= len(responses) {
			i = len(responses) - 1
		}
		responses[i](w)
	}))
	t.Cleanup(hs.Close)
	return hs, &n
}

func respond503(w http.ResponseWriter) { http.Error(w, "overloaded", http.StatusServiceUnavailable) }
func respondOK(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/sparql-results+json")
	io.WriteString(w, validResults)
}

// noSleep replaces the retry backoff with a recorder, keeping tests
// fast and the schedule observable.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestRetryRecoversFromTransient5xx(t *testing.T) {
	hs, n := scriptedServer(t, respond503, respond503, respondOK)
	var delays []time.Duration
	r := NewRemote(hs.URL)
	r.Retries = 3
	r.sleep = noSleep(&delays)
	res, err := r.Select(anyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
	if n.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", n.Load())
	}
	if r.RetryCount() != 2 {
		t.Fatalf("RetryCount = %d, want 2", r.RetryCount())
	}
}

func TestRetryRecoversFromTruncatedBody(t *testing.T) {
	hs, n := scriptedServer(t,
		func(w http.ResponseWriter) { io.WriteString(w, validResults[:20]) }, // cut JSON
		respondOK)
	var delays []time.Duration
	r := NewRemote(hs.URL)
	r.Retries = 2
	r.sleep = noSleep(&delays)
	res, err := r.Select(anyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || n.Load() != 2 {
		t.Fatalf("rows = %d, requests = %d; want 1 row after 2 requests", res.Len(), n.Load())
	}
}

func TestNoRetryOnPermanentFailure(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusInternalServerError} {
		hs, n := scriptedServer(t, func(w http.ResponseWriter) {
			http.Error(w, "no", status)
		})
		r := NewRemote(hs.URL)
		r.Retries = 3
		r.sleep = noSleep(&[]time.Duration{})
		_, err := r.Select(anyQuery)
		if err == nil {
			t.Fatalf("status %d: expected error", status)
		}
		if IsRetryable(err) {
			t.Fatalf("status %d classified retryable: %v", status, err)
		}
		var ee *Error
		if !errors.As(err, &ee) || ee.Status != status || ee.Attempts != 1 {
			t.Fatalf("status %d: error = %+v", status, err)
		}
		if n.Load() != 1 {
			t.Fatalf("status %d: server saw %d requests, want 1", status, n.Load())
		}
	}
}

func TestRetriesExhaustedReportsAttempts(t *testing.T) {
	hs, n := scriptedServer(t, respond503)
	r := NewRemote(hs.URL)
	r.Retries = 2
	r.sleep = noSleep(&[]time.Duration{})
	_, err := r.Select(anyQuery)
	var ee *Error
	if !errors.As(err, &ee) {
		t.Fatalf("error = %v, want *Error", err)
	}
	if !ee.Retryable || ee.Attempts != 3 || ee.Status != http.StatusServiceUnavailable {
		t.Fatalf("error = %+v, want retryable 503 after 3 attempts", ee)
	}
	if n.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", n.Load())
	}
}

func TestUpdateNeverRetried(t *testing.T) {
	hs, n := scriptedServer(t, respond503)
	r := NewRemote(hs.URL)
	r.Retries = 5
	r.sleep = noSleep(&[]time.Duration{})
	err := r.Update(`INSERT DATA { <http://s> <http://p> "v" }`)
	if err == nil {
		t.Fatal("expected error")
	}
	var ee *Error
	if !errors.As(err, &ee) || ee.Op != "update" || ee.Attempts != 1 {
		t.Fatalf("error = %+v, want single-attempt update error", err)
	}
	if n.Load() != 1 {
		t.Fatalf("server saw %d requests, want exactly 1 (updates must not retry)", n.Load())
	}
}

func TestBackoffScheduleGrows(t *testing.T) {
	hs, _ := scriptedServer(t, respond503)
	var delays []time.Duration
	r := NewRemote(hs.URL)
	r.Retries = 3
	r.Backoff = 100 * time.Millisecond
	r.jitterFn = func() float64 { return 0 }
	r.sleep = noSleep(&delays)
	r.Select(anyQuery)
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay %d = %v, want %v", i, delays[i], want[i])
		}
	}
}

// TestRetryAfterHonored checks that a 503 carrying Retry-After makes
// the retry loop wait the server-requested delay instead of its own
// exponential schedule, that over-long requests are capped at 5s, and
// that malformed values fall back to the exponential path.
func TestRetryAfterHonored(t *testing.T) {
	respondShed := func(after string) func(w http.ResponseWriter) {
		return func(w http.ResponseWriter) {
			w.Header().Set("Retry-After", after)
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
		}
	}
	cases := []struct {
		name  string
		after string
		want  time.Duration // expected slept delay before the retry
	}{
		{"honored", "2", 2 * time.Second},
		{"capped", "30", 5 * time.Second},
		{"malformed", "soon", 50 * time.Millisecond}, // exponential fallback: base/2 at n=1
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hs, n := scriptedServer(t, respondShed(tc.after), respondOK)
			var delays []time.Duration
			r := NewRemote(hs.URL)
			r.Retries = 1
			r.Backoff = 100 * time.Millisecond
			r.jitterFn = func() float64 { return 0 }
			r.sleep = noSleep(&delays)
			if _, err := r.Select(anyQuery); err != nil {
				t.Fatal(err)
			}
			if n.Load() != 2 {
				t.Fatalf("server saw %d requests, want 2", n.Load())
			}
			if len(delays) != 1 || delays[0] != tc.want {
				t.Fatalf("delays = %v, want [%v]", delays, tc.want)
			}
		})
	}
}

// TestRetryAfterOnError checks the typed error surfaces the parsed
// Retry-After so callers that do their own scheduling (the load
// driver, the QL runner) can see the server's request.
func TestRetryAfterOnError(t *testing.T) {
	hs, _ := scriptedServer(t, func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "3")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	})
	r := NewRemote(hs.URL) // Retries = 0: the error escapes directly
	r.sleep = noSleep(&[]time.Duration{})
	_, err := r.Select(anyQuery)
	var ee *Error
	if !errors.As(err, &ee) {
		t.Fatalf("error = %v, want *Error", err)
	}
	if ee.Status != http.StatusServiceUnavailable || ee.RetryAfter != 3*time.Second {
		t.Fatalf("error = %+v, want 503 with RetryAfter=3s", ee)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	cur := time.Unix(1000, 0)
	b.now = func() time.Time { return cur }

	if !b.Allow() || b.State() != "closed" {
		t.Fatal("new breaker should be closed and allowing")
	}
	b.Record(false)
	b.Allow()
	b.Record(false) // second consecutive failure: trips
	if b.State() != "open" || b.Trips() != 1 {
		t.Fatalf("state = %s, trips = %d; want open after threshold", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	if b.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", b.Rejected())
	}

	cur = cur.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: probe should be admitted")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open during probe", b.State())
	}
	if b.Allow() {
		t.Fatal("second request admitted while a probe is in flight")
	}
	b.Record(false) // failed probe reopens
	if b.Allow() {
		t.Fatal("failed probe should reopen the circuit")
	}

	cur = cur.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe should be admitted")
	}
	b.Record(true)
	if b.State() != "closed" || !b.Allow() {
		t.Fatal("successful probe should close the circuit")
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d; a reopen is not a new trip", b.Trips())
	}

	var nilB *Breaker
	if !nilB.Allow() || nilB.State() != "closed" {
		t.Fatal("nil breaker must be a no-op that always allows")
	}
	nilB.Record(false)
}

func TestRemoteFailsFastWhenBreakerOpen(t *testing.T) {
	hs, n := scriptedServer(t, respond503)
	r := NewRemote(hs.URL)
	r.Breaker = NewBreaker(1, time.Hour)
	if _, err := r.Select(anyQuery); err == nil {
		t.Fatal("first query should fail")
	}
	_, err := r.Select(anyQuery)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("error = %v, want ErrCircuitOpen", err)
	}
	if !IsRetryable(err) {
		t.Fatal("circuit-open failures should read as retryable-later")
	}
	if n.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (second fails fast)", n.Load())
	}
}

func TestHostileTraceHeaderNeverFailsQuery(t *testing.T) {
	cases := map[string]string{
		"oversized": strings.Repeat("A", obs.MaxWireSpanBytes+1),
		"malformed": "!!!not-base64!!!",
		"bad-json":  "aGVsbG8gd29ybGQ=", // base64("hello world")
	}
	for name, header := range cases {
		t.Run(name, func(t *testing.T) {
			hs, _ := scriptedServer(t, func(w http.ResponseWriter) {
				w.Header().Set(obs.ServerTraceHeader, header)
				respondOK(w)
			})
			r := NewRemote(hs.URL)
			r.Tracer = obs.NewTracer(4)
			res, tr, err := r.SelectTraced(anyQuery)
			if err != nil {
				t.Fatalf("query failed on hostile trace header: %v", err)
			}
			if res.Len() != 1 {
				t.Fatalf("rows = %d, want 1", res.Len())
			}
			if len(tr.Root.Children) != 0 {
				t.Fatalf("hostile header was attached to the client trace: %d children", len(tr.Root.Children))
			}
		})
	}
}

func TestSelectContextCancelsRemote(t *testing.T) {
	started := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Consume the body: the server only watches for client
		// disconnects (canceling r.Context()) once the request body has
		// been read. The time bound keeps a failed propagation from
		// wedging hs.Close in cleanup.
		io.Copy(io.Discard, r.Body)
		close(started)
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	t.Cleanup(hs.Close)
	r := NewRemote(hs.URL)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.SelectContext(ctx, anyQuery)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled exchange succeeded")
		}
		if IsRetryable(err) {
			t.Fatalf("caller cancellation classified retryable: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled SelectContext did not return")
	}
}

func TestPerAttemptTimeout(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	t.Cleanup(hs.Close)
	r := NewRemote(hs.URL)
	r.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, err := r.Select(anyQuery)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("attempt timeout took %v", d)
	}
	// An attempt timeout (not a caller cancel) is transient.
	if !IsRetryable(err) {
		t.Fatalf("attempt timeout classified permanent: %v", err)
	}
}
