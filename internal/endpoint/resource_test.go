package endpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// resourceFixture builds a store with n items carrying a type, a value,
// and a label — enough rows for a join to materialize real intermediate
// bytes.
func resourceFixture(n int) *store.Store {
	st := store.New()
	typ := rdf.NewIRI("http://ex/type")
	item := rdf.NewIRI("http://ex/Item")
	val := rdf.NewIRI("http://ex/value")
	lbl := rdf.NewIRI("http://ex/label")
	var ts []rdf.Triple
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/item/%05d", i))
		ts = append(ts,
			rdf.NewTriple(s, typ, item),
			rdf.NewTriple(s, val, rdf.NewInteger(int64(i))),
			rdf.NewTriple(s, lbl, rdf.NewLiteral(fmt.Sprintf("item number %d with some label text", i))),
		)
	}
	st.InsertTriples(rdf.Term{}, ts)
	return st
}

const wideQuery = `SELECT ?s ?v ?l WHERE {
	?s <http://ex/type> <http://ex/Item> ;
	   <http://ex/value> ?v ;
	   <http://ex/label> ?l }`

// TestMemLimitHTTP checks the admission limit end to end: an
// over-budget query gets 429 with the marker header, the counter moves,
// and the in-flight gauge returns to zero afterwards.
func TestMemLimitHTTP(t *testing.T) {
	srv := NewServer(resourceFixture(2000))
	srv.MaxQueryMem = 4 << 10
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := http.PostForm(hs.URL+"/sparql", url.Values{"query": {wideQuery}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(MemLimitHeader) == "" {
		t.Error("429 missing the mem-limit marker header")
	}
	if !strings.Contains(string(body), "memory budget") {
		t.Errorf("body = %q", body)
	}
	m := metricsSnapshot(t, hs.URL)
	if got, _ := m["queries_over_mem_total"].(float64); got != 1 {
		t.Errorf("queries_over_mem_total = %v, want 1", got)
	}
	if got, _ := m["query_mem_inflight_bytes"].(float64); got != 0 {
		t.Errorf("query_mem_inflight_bytes = %v after abort, want 0", got)
	}
	if got, _ := m["query_mem_highwater_bytes"].(float64); got <= 0 {
		t.Errorf("query_mem_highwater_bytes = %v, want > 0", got)
	}

	// An affordable query on the same server still works.
	resp, err = http.PostForm(hs.URL+"/sparql", url.Values{
		"query": {`SELECT ?s WHERE { <http://ex/item/00000> <http://ex/value> ?s }`}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small query status = %d, want 200", resp.StatusCode)
	}
}

// TestMemLimitNotRetried checks the client treats the 429 mem-limit
// rejection as permanent: the same query against the same budget fails
// the same way, so the retry loop must not spin.
func TestMemLimitNotRetried(t *testing.T) {
	srv := NewServer(resourceFixture(2000))
	srv.MaxQueryMem = 4 << 10
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	c := NewRemote(hs.URL)
	c.Retries = 3
	_, err := c.Select(wideQuery)
	if err == nil {
		t.Fatal("over-budget query succeeded")
	}
	if IsRetryable(err) {
		t.Errorf("mem-limit rejection classified retryable: %v", err)
	}
	if n := c.RetryCount(); n != 0 {
		t.Errorf("client retried %d times on a deterministic rejection", n)
	}
	var ee *Error
	if !errors.As(err, &ee) || ee.Status != http.StatusTooManyRequests || ee.Attempts != 1 {
		t.Errorf("error = %+v, want status 429 after 1 attempt", err)
	}
	m := metricsSnapshot(t, hs.URL)
	if got, _ := m["queries_over_mem_total"].(float64); got != 1 {
		t.Errorf("queries_over_mem_total = %v, want 1 (exactly one attempt)", got)
	}
}

// TestWorkloadEndpoint drives queries of two shapes through the
// protocol and checks /workload aggregates them: literal changes fold
// into one shape, both views render, and rows/bytes are recorded.
func TestWorkloadEndpoint(t *testing.T) {
	srv := NewServer(resourceFixture(50))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	c := NewRemote(hs.URL)
	for i := 0; i < 3; i++ {
		q := fmt.Sprintf(`SELECT ?s WHERE { ?s <http://ex/value> %d }`, i)
		if _, err := c.Select(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Select(`SELECT ?s ?v WHERE { ?s <http://ex/value> ?v }`); err != nil {
		t.Fatal(err)
	}
	// A ?cost=1 request must stay out of the workload registry.
	if _, err := c.EstimateCost(`SELECT ?s ?v WHERE { ?s <http://ex/value> ?v }`); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/workload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.WorkloadSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Shapes != 2 || snap.Queries != 4 {
		t.Fatalf("snapshot = %+v, want 2 shapes / 4 queries", snap)
	}
	if snap.Top[0].Count != 3 {
		t.Fatalf("top shape count = %d, want 3 (literal variants fold)", snap.Top[0].Count)
	}
	if snap.Top[0].Rows == 0 && snap.Top[1].Rows == 0 {
		t.Error("no shape recorded any rows")
	}

	tresp, err := http.Get(hs.URL + "/workload?text=1")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if !strings.Contains(string(text), "workload: 2 shapes, 4 queries") {
		t.Fatalf("text view: %s", text)
	}
}

// TestCostMetrics checks the ?cost=1 surface is counted in request
// metrics, including the 409 planner-off path.
func TestCostMetrics(t *testing.T) {
	st := resourceFixture(10)
	on := httptest.NewServer(NewServer(st).Handler())
	defer on.Close()
	resp, err := http.PostForm(on.URL+"/sparql", url.Values{
		"query": {`SELECT ?s WHERE { ?s <http://ex/value> ?v }`}, "cost": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cost status = %d", resp.StatusCode)
	}
	m := metricsSnapshot(t, on.URL)
	if got, _ := m["cost_estimates_total"].(float64); got != 1 {
		t.Errorf("cost_estimates_total = %v, want 1", got)
	}

	off := httptest.NewServer(NewServer(st, sparql.WithPlanner(false)).Handler())
	defer off.Close()
	resp, err = http.PostForm(off.URL+"/sparql", url.Values{
		"query": {`SELECT ?s WHERE { ?s <http://ex/value> ?v }`}, "cost": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("planner-off cost status = %d, want 409", resp.StatusCode)
	}
	m = metricsSnapshot(t, off.URL)
	if got, _ := m["cost_unavailable_total"].(float64); got != 1 {
		t.Errorf("cost_unavailable_total = %v, want 1", got)
	}
}

// TestConcurrentMixedWorkload hammers one server with concurrent
// queries and updates (run under -race in CI) and then checks the
// shared surfaces stayed coherent: the workload registry saw every
// query, the in-flight gauge drained to zero, and the high-water mark
// moved.
func TestConcurrentMixedWorkload(t *testing.T) {
	srv := NewServer(resourceFixture(500))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	const (
		readers = 6
		writers = 2
		rounds  = 15
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewRemote(hs.URL)
			for i := 0; i < rounds; i++ {
				q := wideQuery
				if i%2 == 0 {
					q = fmt.Sprintf(`SELECT ?s WHERE { ?s <http://ex/value> %d }`, g*rounds+i)
				}
				if _, err := c.Select(q); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewRemote(hs.URL)
			for i := 0; i < rounds; i++ {
				u := fmt.Sprintf(`INSERT DATA { <http://ex/new/%d-%d> <http://ex/value> %d }`, g, i, i)
				if err := c.Update(u); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := srv.Resources.Inflight(); got != 0 {
		t.Errorf("inflight bytes = %d after all queries drained, want 0", got)
	}
	if srv.Resources.HighWater() == 0 {
		t.Error("high-water mark never moved")
	}
	if got, want := srv.Resources.Queries(), int64(readers*rounds); got != want {
		t.Errorf("accounted queries = %d, want %d", got, want)
	}
	snap := srv.Workload.Snapshot()
	if snap.Queries != int64(readers*rounds) {
		t.Errorf("workload queries = %d, want %d", snap.Queries, readers*rounds)
	}
	// Two shapes: the wide join and the by-value point lookup (whose
	// literal varies per request but whose shape does not).
	if snap.Shapes != 2 {
		t.Errorf("workload shapes = %d, want 2", snap.Shapes)
	}
}
