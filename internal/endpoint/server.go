// Package endpoint implements the SPARQL 1.1 Protocol over HTTP: a
// server exposing a store.Store at /sparql (query) and /update, and a
// client for driving remote endpoints. Together they substitute for the
// Virtuoso 7 endpoint used in the QB2OLAP paper.
//
// Concurrency contract: Server, Local, and Remote are all safe for
// concurrent use. Query requests run lock-free on the shared engine
// and rely on the store's per-scan snapshots; only mutating requests
// (updates and loads) are serialized, by Server.updateMu, so that the
// read and write phases of DELETE/INSERT WHERE form one atomic
// transition. Queries racing an update therefore see the store either
// before or mid-update per scan — read-committed-style visibility,
// matching the default behaviour of the Virtuoso endpoint the paper
// ran against.
package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
	"repro/internal/vocab"
)

// Server serves the SPARQL protocol over a store. It is safe for
// concurrent use: net/http serves every request on its own goroutine,
// and queries run lock-free against the engine at full concurrency.
//
// Read/write interaction (audited): query traffic deliberately bypasses
// updateMu. The store's own RWMutex makes each individual pattern scan
// atomic with respect to writers, so a query that overlaps an update
// observes some prefix of the update's individual quad insertions —
// per-scan snapshot isolation, not transactional isolation, which
// matches the SPARQL protocol's lack of cross-request transaction
// semantics (and Virtuoso's default read-committed behaviour in the
// paper's setup). updateMu exists only to serialize engine-visible
// state *transitions*: two concurrent DELETE/INSERT WHERE updates could
// otherwise interleave their read and write phases and lose writes.
type Server struct {
	engine *sparql.Engine

	// updateMu serializes mutating requests (/update and /load) with
	// each other only; queries never take it.
	updateMu sync.Mutex

	// ReadOnly rejects /update and /load requests with 403, for
	// endpoints that publish data without accepting writes.
	ReadOnly bool

	// Logger receives structured access logs (one Info line per
	// request) and the slow-query log (Warn lines carrying the query
	// text). Nil disables request logging; metrics still record.
	Logger *slog.Logger

	// SlowQuery is the slow-query log threshold: /sparql requests
	// taking at least this long are counted in slow_queries_total and,
	// when Logger is set, logged at Warn with the offending query text.
	// Zero disables the slow-query log.
	SlowQuery time.Duration

	// QueryTimeout bounds each /sparql evaluation. An expired query
	// returns 504 Gateway Timeout (with the partial trace collected so
	// far when the query was traced) and counts in
	// queries_timeout_total. Zero disables the per-query deadline; the
	// request context still cancels evaluation when the caller
	// disconnects. Set before the first request.
	QueryTimeout time.Duration

	// MaxInFlight bounds concurrently evaluating /sparql requests.
	// Excess queries are shed immediately — 503 + Retry-After, counted
	// in queries_shed_total — rather than queued, so an overloaded
	// server stays responsive instead of accumulating work it cannot
	// finish. Zero means unbounded. Set before the first request.
	MaxInFlight int

	inflightOnce sync.Once
	inflight     chan struct{}

	// Tracer, when set, records a per-operator trace of sampled /sparql
	// SELECT/ASK evaluations (served at /debug/traces) and folds the
	// spans into the registry's op.* totals. Nil — the default — keeps
	// query evaluation on the engine's untraced fast path; individual
	// queries can still be traced on demand with /sparql?explain=1.
	Tracer *obs.Tracer

	// Sampler decides which queries the Tracer/Exporter record, so
	// tracing can stay always-on under production load. Nil samples
	// everything (the pre-sampling behaviour). Requests arriving with a
	// W3C traceparent header bypass the sampler entirely: the caller's
	// sampled flag is honored, the propagated trace ID is adopted, and
	// a sampled request additionally returns the server's serialized
	// span tree in the X-Qb2olap-Trace response header so the caller
	// can stitch one end-to-end trace.
	Sampler *obs.Sampler

	// Exporter, when set, appends every recorded trace as JSONL (the
	// durable archive `qb2olap trace` analyzes). Export failures are
	// counted on the exporter but never fail the request.
	Exporter *obs.Exporter

	// Debug mounts the diagnostics routes (/debug/vars, /debug/pprof,
	// /debug/traces, /debug/slow) on the protocol handler itself. Leave
	// false when a separate DebugHandler listener serves them (sparqld
	// -debug-addr).
	Debug bool

	// Slow retains the most recent slow queries for /debug/slow,
	// bounded in entries and query-text bytes. Created by NewServer;
	// entries are only recorded when SlowQuery is set.
	Slow *obs.SlowLog

	// Workload aggregates per-shape query statistics (normalized query
	// hash → count, latency quantiles, rows, bytes) for /workload.
	// Created by NewServer with the default shape bound; ?cost=1
	// requests are excluded since they plan without evaluating.
	Workload *obs.Workload

	// Resources is the server-wide resource tracker behind the
	// query_mem_inflight_bytes / query_mem_highwater_bytes gauges.
	// Created by NewServer and installed on the engine, so every query
	// — HTTP or in-process via Engine() — accounts against it.
	Resources *obs.ResourceTracker

	// MaxQueryMem, when > 0, bounds the approximate bytes one query may
	// hold materialized at once. An over-budget query is aborted with
	// 429 Too Many Requests (plus the X-Qb2olap-Mem-Limit marker header
	// so clients know not to retry) and counted in
	// queries_over_mem_total. Zero disables the limit; accounting still
	// runs for the gauges. Set before the first request.
	MaxQueryMem int64

	// Profiler, when set, captures trace-ID-stamped heap (and CPU)
	// profiles into a size-bounded directory whenever a /sparql request
	// crosses ProfileLatency or its account's peak crosses
	// ProfileMemBytes. Captures count in profiles_captured_total. Set
	// all three before the first request (sparqld -profile-dir,
	// -profile-latency, -profile-mem).
	Profiler        *obs.Profiler
	ProfileLatency  time.Duration
	ProfileMemBytes int64

	// Series, when set, is the registry's time-series history: it adds
	// /timeseries (windowed JSON API) and /debug/dash (self-refreshing
	// HTML dashboard) to the handler, and powers the windowed shed-rate
	// readiness check. The caller owns the sampling loop (Series.Start).
	Series *obs.TimeSeries

	// Alerts, when set, is the burn-rate alert evaluator over Series;
	// it adds /alerts to the handler. Hook Alerts.Eval into
	// Series.OnTick so rules re-evaluate once per sampling tick.
	Alerts *obs.Alerts

	// ReadyMaxShedRate, when > 0 with Series set, flips /readyz to 503
	// while the shed rate (queries_shed_total / queries_total) over
	// ReadyShedWindow (default 1m) exceeds it — a drowning node asks
	// its load balancer to drain, while /healthz (liveness) stays 200
	// so the process is not restarted for being popular.
	ReadyMaxShedRate float64
	ReadyShedWindow  time.Duration

	// inflightN tracks /sparql requests currently in the handler, for
	// the queries_inflight gauge (the shedding limiter in acquire()
	// bounds evaluation; this gauge reports it).
	inflightN atomic.Int64

	// Request metrics, all served at /metrics.
	reg                        *obs.Registry
	mQueries, mUpdates, mLoads *obs.Counter
	mErrors, mFailed, mSlow    *obs.Counter
	mShed, mTimeout, mCanceled *obs.Counter
	mOverMem, mProfiles        *obs.Counter
	mCost, mCostUnavail        *obs.Counter
	hQuery, hUpdate, hLoad     *obs.Histogram
}

// NewServer returns a protocol server over st. Engine options (e.g.
// sparql.WithParallelism) configure the embedded engine.
func NewServer(st *store.Store, opts ...sparql.Option) *Server {
	s := &Server{reg: obs.NewRegistry(), Resources: obs.NewResourceTracker()}
	// The tracker option precedes the caller's so an explicit
	// WithResources still wins; the engine-level tracker makes direct
	// Engine() use account against the same gauges as HTTP traffic.
	s.engine = sparql.NewEngine(st, append([]sparql.Option{sparql.WithResources(s.Resources)}, opts...)...)
	s.Workload = obs.NewWorkload(0)
	s.mQueries = s.reg.Counter("queries_total")
	s.mUpdates = s.reg.Counter("updates_total")
	s.mLoads = s.reg.Counter("loads_total")
	s.mErrors = s.reg.Counter("errors_total")
	s.mFailed = s.reg.Counter("queries_failed_total")
	s.mSlow = s.reg.Counter("slow_queries_total")
	s.mShed = s.reg.Counter("queries_shed_total")
	s.mTimeout = s.reg.Counter("queries_timeout_total")
	s.mCanceled = s.reg.Counter("queries_canceled_total")
	s.mOverMem = s.reg.Counter("queries_over_mem_total")
	s.mProfiles = s.reg.Counter("profiles_captured_total")
	s.mCost = s.reg.Counter("cost_estimates_total")
	s.mCostUnavail = s.reg.Counter("cost_unavailable_total")
	s.hQuery = s.reg.Histogram("query_latency")
	s.hUpdate = s.reg.Histogram("update_latency")
	s.hLoad = s.reg.Histogram("load_latency")
	s.reg.Gauge("store_quads", func() int64 { return int64(st.TotalLen()) })
	s.reg.Gauge("store_terms", func() int64 { return int64(st.Dict().Len()) })
	s.reg.Gauge("store_graphs", func() int64 { return int64(len(st.GraphNames())) })
	// Statistics gauges sample the lazy per-graph statistics cache;
	// after a write burst the first snapshot repays the recompute, every
	// later one is a map lookup.
	s.reg.Gauge("store_distinct_subjects", func() int64 {
		return int64(st.GraphStat(store.NoID).DistinctSubjects)
	})
	s.reg.Gauge("store_distinct_predicates", func() int64 {
		return int64(st.GraphStat(store.NoID).DistinctPredicates)
	})
	s.reg.Gauge("store_distinct_objects", func() int64 {
		return int64(st.GraphStat(store.NoID).DistinctObjects)
	})
	// Resource gauges: bytes currently held by in-flight queries, and
	// the server-lifetime high-water mark of that figure — the pair an
	// operator compares when sizing -max-query-mem.
	s.reg.Gauge("query_mem_inflight_bytes", s.Resources.Inflight)
	s.reg.Gauge("query_mem_highwater_bytes", s.Resources.HighWater)
	s.reg.Gauge("queries_inflight", s.inflightN.Load)
	// Go runtime telemetry (goroutines, heap, GC pause p99): the
	// server-side half of a load investigation — driver-observed latency
	// spikes line up against these or they don't, which localizes the
	// problem to the server or the path to it.
	obs.RegisterRuntimeGauges(s.reg)
	s.Slow = obs.NewSlowLog(64)
	return s
}

// Engine exposes the underlying engine (used by tests and tools running
// in-process).
func (s *Server) Engine() *sparql.Engine { return s.engine }

// Metrics exposes the server's metrics registry (served at /metrics),
// so embedders can add their own gauges or publish it via expvar.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the HTTP handler implementing the protocol routes:
//
//	GET/POST /sparql  — query (query=..., Accept: json/csv/tsv;
//	                    &explain=1 returns an EXPLAIN ANALYZE trace;
//	                    &cost=1 returns the planner's estimated cost
//	                    as JSON without evaluating)
//	POST     /update  — update (update=... or raw body)
//	POST     /load    — load Turtle into a graph (?graph=IRI optional)
//	GET      /stats   — store statistics
//	GET      /metrics — metrics registry snapshot (JSON by default;
//	                    Prometheus text for Accept: text/plain)
//	GET      /workload— per-shape workload statistics (JSON by default;
//	                    text for Accept: text/plain or ?text=1)
//	GET      /healthz — liveness probe (200 once serving)
//	GET      /readyz  — readiness probe (store snapshot + statistics)
//
// plus, when Debug is set, the /debug/ diagnostics of DebugHandler.
// Every route is wrapped in the instrumentation middleware (metrics,
// access log, slow-query log).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", s.handleQuery)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/load", s.handleLoad)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/metrics", s.reg)
	if s.Workload != nil {
		mux.HandleFunc("/workload", obs.WorkloadHandler(s.Workload))
	}
	s.mountSeries(mux)
	if s.Debug {
		obs.RegisterDebug(mux, nil, s.Tracer, s.Slow, nil) // /metrics, /workload already mounted
	}
	return s.instrument(mux)
}

// mountSeries adds the time-series surfaces to a mux when enabled:
// /timeseries and /debug/dash over Series, /alerts over Alerts.
func (s *Server) mountSeries(mux *http.ServeMux) {
	if s.Series != nil {
		mux.HandleFunc("/timeseries", obs.TimeSeriesHandler(s.Series))
		mux.HandleFunc("/debug/dash", obs.DashHandler(s.Series, s.Alerts, obs.DefaultDashConfig()))
	}
	if s.Alerts != nil {
		mux.HandleFunc("/alerts", obs.AlertsHandler(s.Alerts))
	}
}

// Registry exposes the server's metrics registry so embedders can
// publish additional gauges on the same /metrics surface (sparqld
// registers the ql.Choose decision counters this way).
func (s *Server) Registry() *obs.Registry { return s.reg }

// DebugHandler returns the standalone diagnostics mux (/metrics,
// /debug/vars, /debug/pprof, /debug/traces, /debug/slow, and — when
// Series/Alerts are set — /timeseries, /debug/dash, /alerts) for
// serving on a separate address, keeping profilers off the protocol
// listener.
func (s *Server) DebugHandler() http.Handler {
	mux := obs.DebugMux(s.reg, s.Tracer, s.Slow, s.Workload)
	s.mountSeries(mux)
	return mux
}

// obsResponseWriter captures the response status and size for the
// middleware, and carries the query text from the /sparql handler to
// the slow-query log.
type obsResponseWriter struct {
	http.ResponseWriter
	status  int
	bytes   int
	query   string
	traceID obs.TraceID
	// acct is the request's resource account, read by the middleware
	// after the handler (and the account's Finish) have returned — the
	// cumulative totals survive Finish, only the in-flight figure is
	// released.
	acct *obs.QueryAcct
	// costOnly marks ?cost=1 requests, which plan without evaluating:
	// they get their own access-log outcome and stay out of the
	// workload registry.
	costOnly bool
}

func (w *obsResponseWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *obsResponseWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrument wraps the protocol mux with request-level observability:
// per-route counters and latency histograms, structured access logs,
// and the slow-query log.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ow := &obsResponseWriter{ResponseWriter: w, status: http.StatusOK}
		route := r.URL.Path
		if route == "/sparql" {
			s.inflightN.Add(1)
		}
		next.ServeHTTP(ow, r)
		if route == "/sparql" {
			s.inflightN.Add(-1)
		}
		d := time.Since(start)
		switch route {
		case "/sparql":
			s.mQueries.Inc()
			s.hQuery.Observe(d)
		case "/update":
			s.mUpdates.Inc()
			s.hUpdate.Observe(d)
		case "/load":
			s.mLoads.Inc()
			s.hLoad.Observe(d)
		}
		if ow.status >= 400 {
			s.mErrors.Inc()
		}
		// queries_failed_total counts user-visible /sparql failures —
		// the numerator of the alerting error rate. Sheds (503) and
		// client disconnects (499) are excluded: shedding has its own
		// rate, and a caller hanging up is not a server failure.
		if route == "/sparql" && !ow.costOnly && ow.status >= 400 &&
			ow.status != http.StatusServiceUnavailable && ow.status != statusClientClosedRequest {
			s.mFailed.Inc()
		}
		// Resilience outcome for the access log: shed, timeout, and
		// canceled lines are what an operator greps for when tuning
		// -max-inflight and -query-timeout. The same classification
		// (minus the cost-only cases) feeds the per-shape outcome
		// counters of the workload registry.
		outcome := "ok"
		wlOutcome := obs.OutcomeOK
		switch {
		case ow.costOnly && ow.status == http.StatusConflict:
			outcome = "cost-unavailable"
		case ow.costOnly && ow.status < 400:
			outcome = "cost"
		case route == "/sparql" && ow.status == http.StatusServiceUnavailable:
			outcome, wlOutcome = "shed", obs.OutcomeShed
		case route == "/sparql" && ow.status == http.StatusTooManyRequests:
			outcome, wlOutcome = "over-mem", obs.OutcomeError
		case ow.status == http.StatusGatewayTimeout:
			outcome, wlOutcome = "timeout", obs.OutcomeTimeout
		case ow.status == statusClientClosedRequest:
			outcome, wlOutcome = "canceled", obs.OutcomeCanceled
		case ow.status >= 400:
			outcome, wlOutcome = "error", obs.OutcomeError
		}
		var rows, mem, peak int64
		if ow.acct != nil {
			rows, mem, peak = ow.acct.Rows(), ow.acct.Bytes(), ow.acct.Peak()
		}
		// Workload fingerprinting: every /sparql query joins its shape
		// bucket, classified by outcome — shed and timed-out shapes show
		// up as such, not as generic errors. ?cost=1 requests plan
		// without evaluating and stay out.
		if route == "/sparql" && ow.query != "" && !ow.costOnly && s.Workload != nil {
			s.Workload.Record(ow.query, d, rows, mem, wlOutcome)
		}
		slow := route == "/sparql" && !ow.costOnly && s.SlowQuery > 0 && d >= s.SlowQuery
		if slow {
			s.mSlow.Inc()
			entry := obs.SlowEntry{
				When: start, Duration: d, Query: ow.query, Status: ow.status,
				TraceID: ow.traceID, Shape: obs.ShapeHash(ow.query),
				Rows: rows, MemBytes: mem, MemPeak: peak,
			}
			// Price the query after the fact so the slow-query log pairs
			// estimated cost with measured latency; the planning pass is
			// only paid for queries already past the slow threshold.
			if s.engine.PlannerEnabled() {
				if q, perr := sparql.ParseQuery(ow.query); perr == nil {
					entry.EstCost = s.engine.Plan(q).Cost
				}
			}
			s.Slow.Record(entry)
		}
		// Threshold-triggered profiling: a request that blows past the
		// latency or peak-memory threshold captures a trace-ID-stamped
		// heap (and CPU) profile, rate-limited and size-capped by the
		// profiler itself.
		if s.Profiler != nil && route == "/sparql" {
			switch {
			case s.ProfileLatency > 0 && d >= s.ProfileLatency:
				if _, ok := s.Profiler.MaybeCapture("slow", ow.traceID); ok {
					s.mProfiles.Inc()
				}
			case s.ProfileMemBytes > 0 && peak >= s.ProfileMemBytes:
				if _, ok := s.Profiler.MaybeCapture("mem", ow.traceID); ok {
					s.mProfiles.Inc()
				}
			}
		}
		if s.Logger == nil {
			return
		}
		// The trace ID joins access-log lines against /debug/slow and the
		// exported trace archive.
		s.Logger.Info("request",
			"method", r.Method, "path", route, "status", ow.status,
			"outcome", outcome, "bytes", ow.bytes, "dur", d,
			"trace", string(ow.traceID))
		if slow {
			s.Logger.Warn("slow query",
				"dur", d, "threshold", s.SlowQuery, "status", ow.status,
				"rows", rows, "mem", mem, "peak", peak,
				"trace", string(ow.traceID), "query", ow.query)
		}
	})
}

// statusClientClosedRequest is the nginx-convention status recorded
// when the caller disconnected before the query finished. The response
// itself is unsendable; the code exists for the access log and metrics.
const statusClientClosedRequest = 499

// acquire takes an in-flight query slot, reporting false when the
// server is saturated and the query should be shed. The returned
// release must be called once evaluation finishes.
func (s *Server) acquire() (release func(), ok bool) {
	if s.MaxInFlight <= 0 {
		return func() {}, true
	}
	s.inflightOnce.Do(func() { s.inflight = make(chan struct{}, s.MaxInFlight) })
	select {
	case s.inflight <- struct{}{}:
		return func() { <-s.inflight }, true
	default:
		return nil, false
	}
}

// queryContext derives the evaluation context for one /sparql request:
// the request context (so a disconnecting caller cancels evaluation),
// bounded by QueryTimeout when set.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.QueryTimeout)
	}
	return r.Context(), func() {}
}

// MemLimitHeader marks a 429 as a per-query memory-limit rejection
// rather than rate limiting. Remote treats a 429 carrying it as
// non-retryable: the same query against the same limit will fail the
// same way, so retrying only re-spends the work.
const MemLimitHeader = "X-Qb2olap-Mem-Limit"

// writeEvalError maps a query-evaluation error to a protocol status:
// memory-limit abort → 429 Too Many Requests (with MemLimitHeader),
// deadline expiry → 504 Gateway Timeout, caller disconnect → 499
// (client closed request), anything else → 500.
func (s *Server) writeEvalError(w http.ResponseWriter, err error) {
	var mle *sparql.MemLimitError
	switch {
	case errors.As(err, &mle):
		s.mOverMem.Inc()
		w.Header().Set(MemLimitHeader, "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded):
		s.mTimeout.Inc()
		http.Error(w, "query timed out: "+err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		s.mCanceled.Inc()
		http.Error(w, err.Error(), statusClientClosedRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// StreamErrorTrailer is the HTTP trailer carrying the outcome of a
// streamed query that failed after the 200 status line was already
// sent. A streaming response commits its status before evaluation
// finishes; when evaluation then fails mid-stream, the server truncates
// the JSON body and names the failure here — "mem-limit", "timeout",
// "canceled", or "internal" — so Remote can surface a typed error
// instead of mistaking the truncated document for a transport fault.
const StreamErrorTrailer = "X-Qb2olap-Stream-Error"

// Stream-error trailer values.
const (
	streamErrMemLimit = "mem-limit"
	streamErrTimeout  = "timeout"
	streamErrCanceled = "canceled"
	streamErrInternal = "internal"
)

// streamErrorCode classifies an evaluation error for the stream trailer
// (the trailer-phase counterpart of writeEvalError), counting it in the
// same outcome metrics.
func (s *Server) streamErrorCode(err error) string {
	var mle *sparql.MemLimitError
	switch {
	case errors.As(err, &mle):
		s.mOverMem.Inc()
		return streamErrMemLimit
	case errors.Is(err, context.DeadlineExceeded):
		s.mTimeout.Inc()
		return streamErrTimeout
	case errors.Is(err, context.Canceled):
		s.mCanceled.Inc()
		return streamErrCanceled
	default:
		return streamErrInternal
	}
}

// streamQuery evaluates a SELECT through the engine's streaming surface
// and encodes the response incrementally, flushing per chunk. The
// status line is deferred until the first chunk (or a clean EOF)
// arrives, so errors at the first chunk boundary — notably a tiny
// -max-query-mem tripping immediately — still get their proper 429/504
// status; only an error after bytes have flowed falls back to the
// trailer.
func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, q *sparql.Query) {
	flusher, _ := w.(http.Flusher)
	enc := sparql.NewResultsEncoder(w)
	var vars []string
	started := false
	begin := func() error {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		w.Header().Set("Trailer", StreamErrorTrailer)
		started = true
		return enc.Head(vars)
	}
	err := s.engine.StreamSelect(ctx, q,
		func(hd []string) error { vars = hd; return nil },
		func(rows [][]rdf.Term) error {
			if !started {
				if err := begin(); err != nil {
					return err
				}
			}
			if err := enc.Rows(rows); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
	switch {
	case err != nil && !started:
		s.writeEvalError(w, err)
	case err != nil:
		// Mid-stream failure: the 200 is committed, so truncate the JSON
		// document and name the failure in the trailer.
		w.Header().Set(StreamErrorTrailer, s.streamErrorCode(err))
	default:
		if !started {
			if err := begin(); err != nil {
				return
			}
		}
		enc.Close() //nolint:errcheck // a failed final write has no recovery
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var queryText string
	switch r.Method {
	case http.MethodGet:
		queryText = r.URL.Query().Get("query")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			queryText = string(body)
		} else {
			if err := r.ParseForm(); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			queryText = r.PostForm.Get("query")
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if queryText == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	// Hand the query text to the middleware for the slow-query log.
	if ow, ok := w.(*obsResponseWriter); ok {
		ow.query = queryText
	}

	// Load shedding happens before parsing: when the server is
	// saturated the cheapest possible rejection is the point.
	release, ok := s.acquire()
	if !ok {
		s.mShed.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("server is at its in-flight query limit (%d)", s.MaxInFlight),
			http.StatusServiceUnavailable)
		return
	}
	defer release()

	q, err := sparql.ParseQuery(queryText)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// ?cost=1 (any non-empty value) returns the planner's estimated
	// C_out cost as JSON without evaluating the query — the plan-cost
	// surface Remote.EstimateCost consumes and internal/ql's translation
	// selection builds on. 409 when the server's planner is off, so
	// remote callers fall back to their heuristic instead of trusting a
	// cost the evaluator would not follow.
	if r.FormValue("cost") != "" {
		if ow, ok := w.(*obsResponseWriter); ok {
			ow.costOnly = true
		}
		if !s.engine.PlannerEnabled() {
			s.mCostUnavail.Inc()
			http.Error(w, "cost estimate unavailable: planner disabled (-planner=off)", http.StatusConflict)
			return
		}
		s.mCost.Inc()
		p := s.engine.Plan(q)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct { //nolint:errcheck
			Planner       string  `json:"planner"`
			Cost          float64 `json:"cost"`
			Reordered     bool    `json:"reordered"`
			PushedFilters int     `json:"pushedFilters"`
		}{"on", p.Cost, p.Reordered, p.PushedFilters})
		return
	}

	ctx, cancel := s.queryContext(r)
	defer cancel()

	// Per-request resource account: the engine adopts it (a
	// context-injected account always wins), so the middleware can read
	// rows/bytes/peak after the handler returns. Finish is deferred —
	// the final result set stays charged against the in-flight gauge
	// until the response has been encoded, which is when the memory is
	// actually released.
	acct := obs.NewQueryAcct(s.Resources, s.MaxQueryMem)
	defer acct.Finish()
	ctx = sparql.WithQueryAcct(ctx, acct)
	if ow, ok := w.(*obsResponseWriter); ok {
		ow.acct = acct
	}

	if q.Form == sparql.FormConstruct || q.Form == sparql.FormDescribe {
		var triples []rdf.Triple
		var err error
		if q.Form == sparql.FormConstruct {
			triples, err = s.engine.ConstructContext(ctx, q)
		} else {
			triples, err = s.engine.DescribeContext(ctx, q)
		}
		if err != nil {
			s.writeEvalError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/n-triples")
		if err := turtle.WriteNTriples(w, triples); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}

	// Tracing decision. ?explain=1 (any non-empty value) always traces
	// and returns the EXPLAIN ANALYZE tree instead of the results. A
	// request carrying a W3C traceparent header adopts the caller's
	// trace ID and sampling verdict — honored in both directions, so a
	// 1%-sampling client costs the server nothing on the other 99% —
	// and a sampled request gets the server's span tree back in the
	// X-Qb2olap-Trace response header for stitching. Otherwise a server
	// with trace sinks applies its own Sampler (nil samples all).
	explain := r.FormValue("explain") != ""
	tp, hasTP := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	var id obs.TraceID
	traced := explain
	switch {
	case hasTP:
		id = tp.TraceID
		traced = traced || tp.Sampled
	case s.Tracer != nil || s.Exporter != nil:
		id = obs.NewTraceID()
		traced = traced || s.Sampler.Sample(id)
	}
	if traced && id == "" {
		id = obs.NewTraceID()
	}
	if ow, ok := w.(*obsResponseWriter); ok {
		ow.traceID = id
	}

	// Untraced SELECTs with the default JSON content type stream: the
	// response is encoded and flushed chunk by chunk as the pipeline
	// produces rows, so the server never holds the full result table
	// alongside its serialization. Traced queries, CSV/TSV, and ASK keep
	// the materialized path (tracing needs whole-operator counts, the
	// text encoders need the full table API, ASK is one row).
	accept := r.Header.Get("Accept")
	wantText := strings.Contains(accept, "text/csv") || strings.Contains(accept, "text/tab-separated-values")
	if !traced && !wantText && q.Form == sparql.FormSelect && s.engine.ChunkSize() > 0 {
		s.streamQuery(ctx, w, q)
		return
	}

	var res *sparql.Results
	if traced {
		var tr *obs.Trace
		res, tr, err = s.engine.QueryTracedID(ctx, q, id)
		if tr != nil {
			tr.ID, tr.Query = id, queryText
			// The span wire header is set even when evaluation failed
			// or timed out: a 504 carries the partial trace collected
			// so far, which is exactly what the caller needs to see
			// where the deadline went.
			if hasTP && tp.Sampled {
				if wire, ok := obs.EncodeSpanWire(tr.Root); ok {
					w.Header().Set(obs.ServerTraceHeader, wire)
				}
			}
			s.Tracer.Collect(tr) // nil-safe
			s.reg.ObserveTrace(tr)
			s.Exporter.Export(tr) // nil-safe; failures count on the exporter
		}
		if err == nil && explain {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "%s\n%d result row(s)\n", tr.Render(), len(res.Rows))
			return
		}
	} else {
		res, err = s.engine.QueryContext(ctx, q)
	}
	if err != nil {
		s.writeEvalError(w, err)
		return
	}

	switch {
	case strings.Contains(accept, "text/csv"):
		w.Header().Set("Content-Type", "text/csv")
		io.WriteString(w, res.EncodeCSV())
	case strings.Contains(accept, "text/tab-separated-values"):
		w.Header().Set("Content-Type", "text/tab-separated-values")
		io.WriteString(w, res.EncodeTSV())
	default:
		w.Header().Set("Content-Type", "application/sparql-results+json")
		data, err := json.Marshal(res)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
	}
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.ReadOnly {
		http.Error(w, "endpoint is read-only", http.StatusForbidden)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var updateText string
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/sparql-update") {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		updateText = string(body)
	} else {
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		updateText = r.PostForm.Get("update")
	}
	if updateText == "" {
		http.Error(w, "missing update parameter", http.StatusBadRequest)
		return
	}
	u, err := sparql.ParseUpdate(updateText)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.updateMu.Lock()
	err = s.engine.UpdateContext(r.Context(), u)
	s.updateMu.Unlock()
	if err != nil {
		s.writeEvalError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.ReadOnly {
		http.Error(w, "endpoint is read-only", http.StatusForbidden)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	triples, _, err := turtle.Parse(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var graph rdf.Term
	if g := r.URL.Query().Get("graph"); g != "" {
		graph = rdf.NewIRI(g)
	}
	s.updateMu.Lock()
	added := s.engine.Store().InsertTriples(graph, triples)
	s.updateMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"loaded":%d}`, added)
}

// handleHealthz is the liveness probe: the process is up and the
// handler chain is serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz is the readiness probe: it exercises the read path a
// query depends on — a store snapshot and the statistics cache — and
// reports 503 if either fails, so load balancers stop routing before
// queries start erroring. With Series and ReadyMaxShedRate set it also
// reports 503 while the windowed shed rate exceeds the threshold —
// sustained overload drains the node without restarting it (liveness
// at /healthz is unaffected).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := struct {
		Ready    bool    `json:"ready"`
		Quads    int     `json:"quads"`
		Graphs   int     `json:"graphs"`
		ShedRate float64 `json:"shedRate,omitempty"`
		Error    string  `json:"error,omitempty"`
	}{Ready: true}
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("readiness probe panicked: %v", p)
			}
		}()
		st := s.engine.Store()
		ready.Quads = st.TotalLen()
		stats := st.Stats()
		ready.Graphs = len(stats.Graphs)
		return nil
	}()
	if err == nil && s.Series != nil && s.ReadyMaxShedRate > 0 {
		window := s.ReadyShedWindow
		if window <= 0 {
			window = time.Minute
		}
		if rate, ok := s.Series.Ratio("queries_shed_total", "queries_total", window); ok {
			ready.ShedRate = rate
			if rate > s.ReadyMaxShedRate {
				err = fmt.Errorf("shedding %.1f%% of queries over the last %s (limit %.1f%%)",
					rate*100, window, s.ReadyMaxShedRate*100)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		ready.Ready = false
		ready.Error = err.Error()
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(ready)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Store()
	type levelCount struct {
		Level   string `json:"level"`
		Members int    `json:"members"`
	}
	type stats struct {
		DefaultGraph int                `json:"defaultGraph"`
		Total        int                `json:"total"`
		NamedGraphs  []string           `json:"namedGraphs"`
		Terms        int                `json:"terms"`
		Graphs       []store.GraphStats `json:"graphs,omitempty"`
		LevelMembers []levelCount       `json:"levelMembers,omitempty"`
	}
	out := stats{
		DefaultGraph: st.Len(rdf.Term{}),
		Total:        st.TotalLen(),
		Terms:        st.Dict().Len(),
	}
	for _, g := range st.GraphNames() {
		out.NamedGraphs = append(out.NamedGraphs, g.Value)
	}
	out.Graphs = st.Stats().Graphs
	// Per-level member counts of the enriched cube, derived from the
	// contiguous (qb4o:memberOf, level) groups of the POS index.
	for _, oc := range st.ObjectCounts(rdf.Term{}, vocab.QB4OMemberOf) {
		out.LevelMembers = append(out.LevelMembers, levelCount{Level: oc.Object.Value, Members: oc.Count})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
