// Package endpoint implements the SPARQL 1.1 Protocol over HTTP: a
// server exposing a store.Store at /sparql (query) and /update, and a
// client for driving remote endpoints. Together they substitute for the
// Virtuoso 7 endpoint used in the QB2OLAP paper.
//
// Concurrency contract: Server, Local, and Remote are all safe for
// concurrent use. Query requests run lock-free on the shared engine
// and rely on the store's per-scan snapshots; only mutating requests
// (updates and loads) are serialized, by Server.updateMu, so that the
// read and write phases of DELETE/INSERT WHERE form one atomic
// transition. Queries racing an update therefore see the store either
// before or mid-update per scan — read-committed-style visibility,
// matching the default behaviour of the Virtuoso endpoint the paper
// ran against.
package endpoint

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

// Server serves the SPARQL protocol over a store. It is safe for
// concurrent use: net/http serves every request on its own goroutine,
// and queries run lock-free against the engine at full concurrency.
//
// Read/write interaction (audited): query traffic deliberately bypasses
// updateMu. The store's own RWMutex makes each individual pattern scan
// atomic with respect to writers, so a query that overlaps an update
// observes some prefix of the update's individual quad insertions —
// per-scan snapshot isolation, not transactional isolation, which
// matches the SPARQL protocol's lack of cross-request transaction
// semantics (and Virtuoso's default read-committed behaviour in the
// paper's setup). updateMu exists only to serialize engine-visible
// state *transitions*: two concurrent DELETE/INSERT WHERE updates could
// otherwise interleave their read and write phases and lose writes.
type Server struct {
	engine *sparql.Engine

	// updateMu serializes mutating requests (/update and /load) with
	// each other only; queries never take it.
	updateMu sync.Mutex

	// ReadOnly rejects /update and /load requests with 403, for
	// endpoints that publish data without accepting writes.
	ReadOnly bool
}

// NewServer returns a protocol server over st. Engine options (e.g.
// sparql.WithParallelism) configure the embedded engine.
func NewServer(st *store.Store, opts ...sparql.Option) *Server {
	return &Server{engine: sparql.NewEngine(st, opts...)}
}

// Engine exposes the underlying engine (used by tests and tools running
// in-process).
func (s *Server) Engine() *sparql.Engine { return s.engine }

// Handler returns the HTTP handler implementing the protocol routes:
//
//	GET/POST /sparql  — query (query=..., Accept: json/csv/tsv)
//	POST     /update  — update (update=... or raw body)
//	POST     /load    — load Turtle into a graph (?graph=IRI optional)
//	GET      /stats   — store statistics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", s.handleQuery)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/load", s.handleLoad)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var queryText string
	switch r.Method {
	case http.MethodGet:
		queryText = r.URL.Query().Get("query")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			queryText = string(body)
		} else {
			if err := r.ParseForm(); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			queryText = r.PostForm.Get("query")
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if queryText == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}

	q, err := sparql.ParseQuery(queryText)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	if q.Form == sparql.FormConstruct || q.Form == sparql.FormDescribe {
		var triples []rdf.Triple
		var err error
		if q.Form == sparql.FormConstruct {
			triples, err = s.engine.Construct(q)
		} else {
			triples, err = s.engine.Describe(q)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/n-triples")
		if err := turtle.WriteNTriples(w, triples); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}

	res, err := s.engine.Query(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "text/csv"):
		w.Header().Set("Content-Type", "text/csv")
		io.WriteString(w, res.EncodeCSV())
	case strings.Contains(accept, "text/tab-separated-values"):
		w.Header().Set("Content-Type", "text/tab-separated-values")
		io.WriteString(w, res.EncodeTSV())
	default:
		w.Header().Set("Content-Type", "application/sparql-results+json")
		data, err := json.Marshal(res)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
	}
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.ReadOnly {
		http.Error(w, "endpoint is read-only", http.StatusForbidden)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var updateText string
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/sparql-update") {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		updateText = string(body)
	} else {
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		updateText = r.PostForm.Get("update")
	}
	if updateText == "" {
		http.Error(w, "missing update parameter", http.StatusBadRequest)
		return
	}
	u, err := sparql.ParseUpdate(updateText)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.updateMu.Lock()
	err = s.engine.Execute(u)
	s.updateMu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.ReadOnly {
		http.Error(w, "endpoint is read-only", http.StatusForbidden)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	triples, _, err := turtle.Parse(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var graph rdf.Term
	if g := r.URL.Query().Get("graph"); g != "" {
		graph = rdf.NewIRI(g)
	}
	s.updateMu.Lock()
	added := s.engine.Store().InsertTriples(graph, triples)
	s.updateMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"loaded":%d}`, added)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Store()
	type stats struct {
		DefaultGraph int      `json:"defaultGraph"`
		Total        int      `json:"total"`
		NamedGraphs  []string `json:"namedGraphs"`
		Terms        int      `json:"terms"`
	}
	out := stats{
		DefaultGraph: st.Len(rdf.Term{}),
		Total:        st.TotalLen(),
		Terms:        st.Dict().Len(),
	}
	for _, g := range st.GraphNames() {
		out.NamedGraphs = append(out.NamedGraphs, g.Value)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
