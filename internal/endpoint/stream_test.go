package endpoint

import (
	"errors"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

// TestStreamedResponseByteIdentical checks the chunk-flushed streaming
// response carries exactly the bytes the materialized encoder would
// produce: clients cannot tell (and must not need to know) which path
// served them.
func TestStreamedResponseByteIdentical(t *testing.T) {
	st := store.New()
	triples, _, err := turtle.Parse(testTTL)
	if err != nil {
		t.Fatal(err)
	}
	st.InsertTriples(rdf.Term{}, triples)

	query := `PREFIX ex: <http://example.org/> SELECT ?s ?o WHERE { ?s ex:p ?o } ORDER BY ?s`
	want, err := sparql.NewEngine(st, sparql.WithChunkSize(0)).QueryString(query)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := want.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 2, 1024} {
		srv, hs := newResilientServer(t, nil)
		srv.engine.SetChunkSize(chunk)
		resp, err := http.Get(hs.URL + "/sparql?query=" + url.QueryEscape(query))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("chunk=%d: status = %d (%s)", chunk, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
			t.Errorf("chunk=%d: Content-Type = %q", chunk, ct)
		}
		if string(body) != string(wj) {
			t.Errorf("chunk=%d: streamed body differs from materialized\nwant %s\ngot  %s",
				chunk, wj, body)
		}
		if code := resp.Trailer.Get(StreamErrorTrailer); code != "" {
			t.Errorf("chunk=%d: clean stream carries error trailer %q", chunk, code)
		}
	}
}

// TestStreamedAcceptFallbacks checks the non-streamable encodings
// (CSV/TSV) still serve correctly with streaming enabled.
func TestStreamedAcceptFallbacks(t *testing.T) {
	_, hs := newResilientServer(t, nil)
	req, _ := http.NewRequest(http.MethodGet,
		hs.URL+"/sparql?query="+url.QueryEscape(`PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ?o } ORDER BY ?s`), nil)
	req.Header.Set("Accept", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "s\r\n") {
		t.Fatalf("CSV under streaming: status %d body %q", resp.StatusCode, body)
	}
}

// TestStreamMemLimitKeepsCleanStatus checks a budget that trips at the
// first chunk boundary — before any response bytes — still yields the
// clean 429 + MemLimitHeader contract rather than a committed 200.
func TestStreamMemLimitKeepsCleanStatus(t *testing.T) {
	srv, hs := newResilientServer(t, func(s *Server) { s.MaxQueryMem = 64 })
	resp, err := http.Get(hs.URL + "/sparql?query=" + url.QueryEscape(anyQuery))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get(MemLimitHeader) == "" {
		t.Fatal("429 missing MemLimitHeader")
	}
	if got := counterValue(t, srv, "queries_over_mem_total"); got != 1 {
		t.Fatalf("queries_over_mem_total = %d, want 1", got)
	}
}

// streamAbortResponse scripts a mid-stream server abort: a committed
// 200 with the trailer announced, a truncated JSON body, and the given
// stream-error code in the trailer — exactly what Server.streamQuery
// produces when evaluation fails after bytes have flowed.
func streamAbortResponse(code string) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		w.Header().Set("Trailer", StreamErrorTrailer)
		io.WriteString(w, `{"head":{"vars":["s"]},"results":{"bindings":[{"s":{"type":"uri","value":"http://x/a"}}`)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		w.Header().Set(StreamErrorTrailer, code)
	}
}

// TestRemoteStreamTrailerErrors checks the client maps a mid-stream
// abort trailer to the same typed error the equivalent pre-body
// failure would produce — and honors its retry classification, so a
// mem-limit abort is not hammered while a timeout gets its retry.
func TestRemoteStreamTrailerErrors(t *testing.T) {
	cases := []struct {
		code      string
		status    int
		retryable bool
	}{
		{"mem-limit", http.StatusTooManyRequests, false},
		{"timeout", http.StatusGatewayTimeout, true},
		{"canceled", statusClientClosedRequest, false},
		{"internal", http.StatusInternalServerError, false},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			hs, n := scriptedServer(t, streamAbortResponse(tc.code))
			r := NewRemote(hs.URL)
			_, err := r.Select(anyQuery)
			var ee *Error
			if !errors.As(err, &ee) {
				t.Fatalf("err = %v, want *Error", err)
			}
			if ee.Status != tc.status {
				t.Errorf("status = %d, want %d", ee.Status, tc.status)
			}
			if IsRetryable(err) != tc.retryable {
				t.Errorf("retryable = %v, want %v", IsRetryable(err), tc.retryable)
			}
			if n.Load() != 1 {
				t.Errorf("server saw %d requests before retry policy, want 1", n.Load())
			}
		})
	}
}

// TestRemoteStreamTrailerRetryPolicy checks the retry loop acts on the
// trailer classification: a timeout abort retries to success, a
// mem-limit abort fails fast on the first attempt.
func TestRemoteStreamTrailerRetryPolicy(t *testing.T) {
	hs, n := scriptedServer(t, streamAbortResponse("timeout"), respondOK)
	r := NewRemote(hs.URL)
	r.Retries = 2
	r.sleep = noSleep(&[]time.Duration{})
	res, err := r.Select(anyQuery)
	if err != nil {
		t.Fatalf("timeout abort should retry to success: %v", err)
	}
	if res.Len() != 1 || n.Load() != 2 {
		t.Fatalf("rows = %d, requests = %d; want 1 row after 2 requests", res.Len(), n.Load())
	}

	hs2, n2 := scriptedServer(t, streamAbortResponse("mem-limit"), respondOK)
	r2 := NewRemote(hs2.URL)
	r2.Retries = 2
	r2.sleep = noSleep(&[]time.Duration{})
	if _, err := r2.Select(anyQuery); err == nil {
		t.Fatal("mem-limit abort must not retry to success")
	}
	if n2.Load() != 1 {
		t.Fatalf("mem-limit abort retried: %d requests, want 1", n2.Load())
	}
}

// TestRemoteDecodesStreamedServer round-trips a real streamed server
// through the real incremental client decoder.
func TestRemoteDecodesStreamedServer(t *testing.T) {
	srv, hs := newResilientServer(t, nil)
	srv.engine.SetChunkSize(1)
	r := NewRemote(hs.URL)
	res, err := r.Select(`PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ?o } ORDER BY ?s`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Binding(0, "s").Value != "http://example.org/a" {
		t.Fatalf("rows = %d, first = %v", res.Len(), res.Rows)
	}
}
