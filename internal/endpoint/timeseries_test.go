package endpoint

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// tsClock is a deterministic clock for the sampler in endpoint tests.
type tsClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTSClock() *tsClock { return &tsClock{now: time.Unix(1_700_000_000, 0)} }

func (c *tsClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *tsClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestSeriesEndpointsMounted covers the three HTTP surfaces the
// time-series layer adds to the protocol handler: /timeseries JSON,
// /alerts JSON, and the /debug/dash HTML page.
func TestSeriesEndpointsMounted(t *testing.T) {
	st := newStoreFromTTL(t, testTTL)
	srv := NewServer(st)
	srv.Series = obs.NewTimeSeries(srv.Metrics(), obs.NewLadder(time.Second, 10*time.Minute))
	clock := newTSClock()
	srv.Series.SetNow(clock.Now)
	rules := []obs.AlertRule{{Name: "shed_rate", Kind: obs.RuleRatio,
		Num: "queries_shed_total", Den: "queries_total", Max: 0.25}}
	srv.Alerts = obs.NewAlerts(srv.Series, srv.Metrics(), rules, 5*time.Second, 30*time.Second, nil)
	srv.Series.OnTick = srv.Alerts.Eval

	h := srv.Handler()
	// Serve a few queries between ticks so the series carry real data.
	q := url.QueryEscape(obsQuery)
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/sparql?query="+q, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("query status = %d: %s", rec.Code, rec.Body.String())
		}
		srv.Series.Sample()
		clock.Advance(time.Second)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/timeseries?window=1m", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/timeseries status = %d", rec.Code)
	}
	var snap obs.TimeSeriesSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/timeseries not JSON: %v", err)
	}
	var sawQueries bool
	for _, sd := range snap.Series {
		if sd.Name == "queries_total" {
			sawQueries = true
			if len(sd.Points) != 5 || sd.Points[len(sd.Points)-1].V != 5 {
				t.Errorf("queries_total series = %+v", sd.Points)
			}
		}
	}
	if !sawQueries {
		t.Error("/timeseries has no queries_total series")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/alerts status = %d", rec.Code)
	}
	var as obs.AlertsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &as); err != nil {
		t.Fatalf("/alerts not JSON: %v", err)
	}
	if len(as.Rules) != 1 || as.Rules[0].Name != "shed_rate" {
		t.Errorf("/alerts rules = %+v", as.Rules)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/dash", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/dash status = %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "<svg") {
		t.Error("/debug/dash has no inline SVG")
	}
}

// TestSeriesEndpointsAbsentWithoutSampler: a server without Series
// keeps its surface unchanged — no /timeseries, /alerts, /debug/dash.
func TestSeriesEndpointsAbsentWithoutSampler(t *testing.T) {
	srv := NewServer(newStoreFromTTL(t, testTTL))
	h := srv.Handler()
	for _, path := range []string{"/timeseries", "/alerts", "/debug/dash"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404 when Series is nil", path, rec.Code)
		}
	}
}

// TestReadyzShedDrain: with a sampler and ReadyMaxShedRate set, a
// sustained windowed shed rate flips /readyz to 503 (draining the node
// at the load balancer) while /healthz stays 200, and recovery flips
// it back.
func TestReadyzShedDrain(t *testing.T) {
	srv := NewServer(newStoreFromTTL(t, testTTL))
	srv.Series = obs.NewTimeSeries(srv.Metrics(), []obs.Resolution{{Step: time.Second, Size: 120}})
	clock := newTSClock()
	srv.Series.SetNow(clock.Now)
	srv.ReadyMaxShedRate = 0.25
	srv.ReadyShedWindow = 10 * time.Second
	h := srv.Handler()

	total := srv.Metrics().Counter("queries_total")
	shed := srv.Metrics().Counter("queries_shed_total")
	tick := func(totalN, shedN int64) {
		total.Add(totalN)
		shed.Add(shedN)
		srv.Series.Sample()
		clock.Advance(time.Second)
	}
	readyz := func() (int, float64) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		var body struct {
			Ready    bool    `json:"ready"`
			ShedRate float64 `json:"shedRate"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("/readyz not JSON: %v", err)
		}
		return rec.Code, body.ShedRate
	}

	// Healthy traffic: ready.
	for i := 0; i < 12; i++ {
		tick(10, 0)
	}
	if code, rate := readyz(); code != http.StatusOK || rate != 0 {
		t.Fatalf("healthy readyz = %d shedRate=%v, want 200, 0", code, rate)
	}

	// 80% shed, sustained past the window: drain.
	for i := 0; i < 12; i++ {
		tick(10, 8)
	}
	code, rate := readyz()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded readyz = %d, want 503", code)
	}
	if rate <= 0.25 {
		t.Errorf("reported shedRate = %v, want > 0.25", rate)
	}
	// Liveness is unaffected: the process is healthy, just overloaded.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/healthz = %d during drain, want 200", rec.Code)
	}

	// Shedding stops; once the window no longer contains shed ticks the
	// node readmits itself.
	for i := 0; i < 15; i++ {
		tick(10, 0)
	}
	if code, rate := readyz(); code != http.StatusOK || rate != 0 {
		t.Errorf("recovered readyz = %d shedRate=%v, want 200, 0", code, rate)
	}
}

// TestSlowLogShapeCrossLink: slow-log entries carry the workload shape
// hash of their query, and /debug/slow renders it, so a slow query can
// be cross-referenced against /workload aggregates.
func TestSlowLogShapeCrossLink(t *testing.T) {
	srv := NewServer(newStoreFromTTL(t, testTTL))
	srv.SlowQuery = time.Nanosecond // everything is slow
	h := srv.Handler()

	rawQuery := `PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ?o }`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/sparql?query="+url.QueryEscape(rawQuery), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("query status = %d: %s", rec.Code, rec.Body.String())
	}

	recent := srv.Slow.Recent()
	if len(recent) == 0 {
		t.Fatal("no slow-log entries recorded")
	}
	want := obs.ShapeHash(rawQuery)
	if recent[0].Shape != want {
		t.Errorf("slow entry shape = %q, want %q", recent[0].Shape, want)
	}

	rec = httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slow", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/slow status = %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "shape="+want) {
		t.Errorf("/debug/slow missing shape=%s:\n%s", want, body)
	}
}
