package endpoint

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTracedTestServer builds a protocol server over testTTL with the
// given trace sinks and returns it plus its httptest listener.
func newTracedTestServer(t *testing.T, cfg func(*Server)) (*Server, *httptest.Server) {
	t.Helper()
	st := newStoreFromTTL(t, testTTL)
	srv := NewServer(st)
	if cfg != nil {
		cfg(srv)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestStitchedTraceOverHTTP: a tracing client propagates its trace ID
// over real HTTP and stitches the server's span tree under its client
// HTTP span — one trace, one ID, visible on both sides.
func TestStitchedTraceOverHTTP(t *testing.T) {
	srv, ts := newTracedTestServer(t, func(s *Server) { s.Tracer = obs.NewTracer(8) })

	c := NewRemote(ts.URL)
	c.Tracer = obs.NewTracer(8)
	res, err := c.Select(obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}

	client := c.Tracer.Recent()
	if len(client) != 1 {
		t.Fatalf("client collected %d traces, want 1", len(client))
	}
	tr := client[0]
	if tr.ID == "" {
		t.Fatal("client trace has no ID")
	}
	if tr.Root.Op != "HTTP" || !strings.Contains(tr.Root.Detail, "/sparql") {
		t.Errorf("client root span = %s %q, want HTTP .../sparql", tr.Root.Op, tr.Root.Detail)
	}
	if tr.Root.Out != 2 {
		t.Errorf("client root out = %d, want 2 result rows", tr.Root.Out)
	}
	if len(tr.Root.Children) != 1 || tr.Root.Children[0].Op != "SELECT" {
		t.Fatalf("client span has no stitched server tree:\n%s", tr.Render())
	}
	srvRoot := tr.Root.Children[0]
	if len(srvRoot.Children) == 0 {
		t.Errorf("stitched server tree has no operator spans:\n%s", tr.Render())
	}
	if tr.Root.Wall < srvRoot.Wall {
		t.Errorf("client span (%s) shorter than nested server span (%s)", tr.Root.Wall, srvRoot.Wall)
	}

	// The server collected the same trace under the same propagated ID.
	server := srv.Tracer.Recent()
	if len(server) != 1 {
		t.Fatalf("server collected %d traces, want 1", len(server))
	}
	if server[0].ID != tr.ID {
		t.Errorf("trace IDs differ across processes: client %s, server %s", tr.ID, server[0].ID)
	}
	if server[0].Query == "" {
		t.Error("server trace lost the query text")
	}
}

// TestUnsampledPropagation: the caller's negative verdict is honored —
// an unsampled traceparent keeps the server on the untraced path even
// though the server has a tracer of its own, and no span tree comes
// back.
func TestUnsampledPropagation(t *testing.T) {
	srv, ts := newTracedTestServer(t, func(s *Server) { s.Tracer = obs.NewTracer(8) })

	c := NewRemote(ts.URL)
	c.Tracer = obs.NewTracer(8)
	c.Sampler = obs.NewSampler(0)
	res, err := c.Select(obsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
	if n := len(c.Tracer.Recent()); n != 0 {
		t.Errorf("client collected %d traces at rate 0", n)
	}
	if n := len(srv.Tracer.Recent()); n != 0 {
		t.Errorf("server traced %d unsampled queries", n)
	}

	// The raw response carries no server span tree either.
	form := url.Values{"query": {obsQuery}}
	req, _ := http.NewRequest("POST", ts.URL+"/sparql", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(obs.NewTraceID(), obs.NewSpanID(), false))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h := resp.Header.Get(obs.ServerTraceHeader); h != "" {
		t.Errorf("unsampled request returned a server trace header (%d bytes)", len(h))
	}
}

// TestServerOwnSampling: without a traceparent the server applies its
// own sampler — rate 0 records nothing, nil records everything.
func TestServerOwnSampling(t *testing.T) {
	for _, tc := range []struct {
		name string
		rate *float64
		want int
	}{
		{"nil-sampler", nil, 5},
		{"rate-0", new(float64), 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts := newTracedTestServer(t, func(s *Server) {
				s.Tracer = obs.NewTracer(16)
				if tc.rate != nil {
					s.Sampler = obs.NewSampler(*tc.rate)
				}
			})
			c := NewRemote(ts.URL) // no client tracing, no traceparent
			for i := 0; i < 5; i++ {
				if _, err := c.Select(obsQuery); err != nil {
					t.Fatal(err)
				}
			}
			if got := len(srv.Tracer.Recent()); got != tc.want {
				t.Errorf("server collected %d traces, want %d", got, tc.want)
			}
			// Sampled-or-not, every /sparql request was assigned a trace
			// ID for log joining — visible on the next slow entry, tested
			// in TestSlowLogCarriesTraceID.
		})
	}
}

// TestServerExportsTraces: a server-side exporter persists sampled
// traces as JSONL that ReadTraces parses back, IDs intact.
func TestServerExportsTraces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	exp, err := obs.NewExporter(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTracedTestServer(t, func(s *Server) { s.Exporter = exp })

	c := NewRemote(ts.URL)
	c.Tracer = obs.NewTracer(4)
	if _, err := c.Select(obsQuery); err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traces, err := obs.ReadTraces(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("exported %d traces, want 1", len(traces))
	}
	if traces[0].ID != c.Tracer.Recent()[0].ID {
		t.Error("exported trace ID differs from the client's")
	}
	if traces[0].Root.Op != "SELECT" {
		t.Errorf("exported root op = %s", traces[0].Root.Op)
	}
}

// TestSlowLogCarriesTraceID: slow-log entries record the request's
// trace ID so they join against exported traces.
func TestSlowLogCarriesTraceID(t *testing.T) {
	srv, ts := newTracedTestServer(t, func(s *Server) {
		s.Tracer = obs.NewTracer(4)
		s.SlowQuery = time.Nanosecond // everything is slow
	})
	c := NewRemote(ts.URL)
	c.Tracer = obs.NewTracer(4)
	if _, err := c.Select(obsQuery); err != nil {
		t.Fatal(err)
	}
	entries := srv.Slow.Recent()
	if len(entries) != 1 {
		t.Fatalf("slow log has %d entries, want 1", len(entries))
	}
	if entries[0].TraceID == "" {
		t.Fatal("slow entry has no trace ID")
	}
	if entries[0].TraceID != c.Tracer.Recent()[0].ID {
		t.Errorf("slow entry trace %s != client trace %s", entries[0].TraceID, c.Tracer.Recent()[0].ID)
	}
}

// TestHealthEndpoints drives /healthz and /readyz through the full
// handler chain.
func TestHealthEndpoints(t *testing.T) {
	_, ts := newTracedTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", resp.StatusCode)
	}

	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", resp2.StatusCode)
	}
	var ready struct {
		Ready bool `json:"ready"`
		Quads int  `json:"quads"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || ready.Quads != 3 {
		t.Errorf("readyz = %+v, want ready with 3 quads", ready)
	}
}

// TestMetricsContentNegotiation: the server's /metrics route serves
// Prometheus text to text/plain and JSON otherwise.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTracedTestServer(t, nil)

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Accept: text/plain Content-Type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "# TYPE queries_total counter") {
		t.Errorf("prometheus body missing counter:\n%s", buf[:n])
	}

	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q", ct)
	}
}

// TestConcurrentSampledQueries hammers a tracing server+client pair
// from many goroutines at 50% sampling with a shared exporter — the
// -race run of this test is the concurrency audit of the sampler,
// tracer ring, and exporter file lock together.
func TestConcurrentSampledQueries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	exp, err := obs.NewExporter(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTracedTestServer(t, func(s *Server) {
		s.Tracer = obs.NewTracer(32)
		s.Exporter = exp
	})

	c := NewRemote(ts.URL)
	c.Tracer = obs.NewTracer(32)
	c.Sampler = obs.NewSampler(0.5)

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := c.Select(obsQuery)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Len() != 2 {
					t.Errorf("rows = %d", res.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	// Client and server sampled identical subsets (the verdict rides the
	// traceparent header), and the exported archive parses cleanly.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traces, err := obs.ReadTraces(f)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Written() != int64(len(traces)) {
		t.Errorf("exporter wrote %d, archive holds %d", exp.Written(), len(traces))
	}
	total := workers * perWorker
	if len(traces) == 0 || len(traces) == total {
		t.Errorf("exported %d/%d traces; 50%% sampling should land strictly between", len(traces), total)
	}
	for _, tr := range traces {
		if tr.ID == "" || tr.Root == nil {
			t.Fatalf("malformed exported trace: %+v", tr)
		}
	}
	if got := len(srv.Tracer.Recent()); got == 0 {
		t.Error("server tracer empty after sampled run")
	}
}
