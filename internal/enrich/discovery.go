package enrich

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/vocab"
)

// Suggest implements the discovery step of the Enrichment phase: it
// collects the properties of the level's instances, measures which of
// them are (quasi-)functional dependencies, and returns the candidates,
// level candidates first. Rejected properties are included (flagged
// RejectedNotFunctional) so a user interface can explain why they are
// not offered.
func (s *Session) Suggest(level rdf.Term) ([]Candidate, error) {
	ph := s.prog.Phase("discovery")
	defer ph.Done()
	members, err := s.Members(level)
	if err != nil {
		return nil, err
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("enrich: level %s has no members", level.Value)
	}

	var out []Candidate
	graphs := append([]rdf.Term{{}}, s.opts.SearchGraphs...)
	for _, g := range graphs {
		cands, err := s.suggestInGraph(level, members, g, ph)
		if err != nil {
			return nil, err
		}
		out = append(out, cands...)
	}
	s.prog.Count("candidatesScored", int64(len(out)))

	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.ErrorRate != b.ErrorRate {
			return a.ErrorRate < b.ErrorRate
		}
		if a.DistinctValues != b.DistinctValues {
			return a.DistinctValues < b.DistinctValues
		}
		return a.Property.Compare(b.Property) < 0
	})
	return out, nil
}

// discoveryChunkSize bounds the VALUES clause of the discovery queries
// so levels with thousands of members produce several moderate queries
// instead of one enormous one (endpoints commonly limit query size).
const discoveryChunkSize = 500

// suggestInGraph analyses one graph for candidate properties. Member
// sets larger than discoveryChunkSize are scanned in chunks and the
// per-property statistics merged; the per-property distinct-value count
// is computed by one whole-set query per scan (values are aggregated
// globally, so chunked counts cannot simply be added).
func (s *Session) suggestInGraph(level rdf.Term, members []rdf.Term, graph rdf.Term, ph *obs.Phase) ([]Candidate, error) {
	type stats struct {
		withProp   int
		violations int
		sampleIRI  bool
	}
	byProp := make(map[rdf.Term]*stats)
	var order []rdf.Term
	distinctByProp := make(map[rdf.Term]int)
	distinctValues := make(map[rdf.Term]map[rdf.Term]bool)

	ph.Grow(int64((len(members) + discoveryChunkSize - 1) / discoveryChunkSize))
	for from := 0; from < len(members); from += discoveryChunkSize {
		to := from + discoveryChunkSize
		if to > len(members) {
			to = len(members)
		}
		ph.Add(1)
		values := memberValues(members[from:to])
		inner := fmt.Sprintf("VALUES ?m { %s } ?m ?p ?v .", values)
		if !graph.IsZero() {
			inner = fmt.Sprintf("VALUES ?m { %s } GRAPH <%s> { ?m ?p ?v } .", values, graph.Value)
		}

		// Per-member distinct value counts per property, plus a sample
		// value to classify the property's range.
		perMember, err := s.client.Select(fmt.Sprintf(`
SELECT ?p ?m (COUNT(DISTINCT ?v) AS ?nv) (SAMPLE(?v) AS ?sample)
WHERE { %s } GROUP BY ?p ?m`, inner))
		if err != nil {
			return nil, fmt.Errorf("enrich: property scan: %w", err)
		}
		for i := range perMember.Rows {
			p := perMember.Binding(i, "p")
			if s.skipProperty(level, p) {
				continue
			}
			st, ok := byProp[p]
			if !ok {
				st = &stats{}
				byProp[p] = st
				order = append(order, p)
			}
			st.withProp++
			if n, _ := strconv.Atoi(perMember.Binding(i, "nv").Value); n > 1 {
				st.violations++
			}
			if perMember.Binding(i, "sample").IsIRI() {
				st.sampleIRI = true
			}
		}

		// Global distinct-value counts: one whole-set query when the
		// member set fits a single chunk, otherwise exact merging of
		// per-chunk value sets.
		if len(members) <= discoveryChunkSize {
			globals, err := s.client.Select(fmt.Sprintf(`
SELECT ?p (COUNT(DISTINCT ?v) AS ?dv)
WHERE { %s } GROUP BY ?p`, inner))
			if err != nil {
				return nil, fmt.Errorf("enrich: value scan: %w", err)
			}
			for i := range globals.Rows {
				n, _ := strconv.Atoi(globals.Binding(i, "dv").Value)
				distinctByProp[globals.Binding(i, "p")] = n
			}
		} else {
			chunkVals, err := s.client.Select(fmt.Sprintf(`
SELECT DISTINCT ?p ?v WHERE { %s }`, inner))
			if err != nil {
				return nil, fmt.Errorf("enrich: value scan: %w", err)
			}
			for i := range chunkVals.Rows {
				p := chunkVals.Binding(i, "p")
				set, ok := distinctValues[p]
				if !ok {
					set = make(map[rdf.Term]bool)
					distinctValues[p] = set
				}
				set[chunkVals.Binding(i, "v")] = true
			}
		}
	}
	for p, set := range distinctValues {
		distinctByProp[p] = len(set)
	}

	var out []Candidate
	for _, p := range order {
		st := byProp[p]
		support := float64(st.withProp) / float64(len(members))
		if support < s.opts.MinSupport {
			continue
		}
		errorRate := 0.0
		if st.withProp > 0 {
			errorRate = float64(st.violations) / float64(st.withProp)
		}
		c := Candidate{
			Property:       p,
			Level:          level,
			Graph:          graph,
			Members:        len(members),
			WithProperty:   st.withProp,
			Violations:     st.violations,
			DistinctValues: distinctByProp[p],
			ExactFD:        st.violations == 0,
			ErrorRate:      errorRate,
			Support:        support,
		}
		switch {
		case errorRate > s.opts.QuasiFDThreshold:
			c.Kind = RejectedNotFunctional
		case st.sampleIRI && float64(c.DistinctValues) <= s.opts.MaxLevelValueRatio*float64(st.withProp):
			c.Kind = LevelCandidate
		default:
			c.Kind = AttributeCandidate
		}
		out = append(out, c)
	}
	return out, nil
}

// skipProperty filters structural properties that must not be offered
// as enrichment candidates: typing, the vocabulary machinery, and the
// roll-up properties already consumed by steps from this level.
func (s *Session) skipProperty(level, p rdf.Term) bool {
	if p == vocab.RDFType {
		return true
	}
	for _, ns := range []string{vocab.QB, vocab.QB4O} {
		if strings.HasPrefix(p.Value, ns) {
			return true
		}
	}
	if dim, ok := s.schema.DimensionOfLevel(level); ok {
		for _, h := range dim.Hierarchies {
			for _, st := range h.Steps {
				if st.Child == level && st.Rollup == p {
					return true
				}
			}
		}
	}
	return false
}

func memberValues(members []rdf.Term) string {
	var b strings.Builder
	for i, m := range members {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('<')
		b.WriteString(m.Value)
		b.WriteByte('>')
	}
	return b.String()
}

// FindCandidate locates a candidate for a given property in a
// suggestion list.
func FindCandidate(cands []Candidate, property rdf.Term) (Candidate, bool) {
	for _, c := range cands {
		if c.Property == property {
			return c, true
		}
	}
	return Candidate{}, false
}
