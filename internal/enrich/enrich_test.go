package enrich

import (
	"strings"
	"testing"

	"repro/internal/endpoint"
	"repro/internal/eurostat"
	"repro/internal/qb4olap"
	"repro/internal/rdf"
	"repro/internal/vocab"
)

func newTestSession(t *testing.T, cfg eurostat.Config, opts Options) (*Session, endpoint.SPARQLClient) {
	t.Helper()
	st, _ := eurostat.NewStore(cfg)
	c := endpoint.NewLocal(st)
	sess, err := NewSession(c, eurostat.DSDIRI, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sess, c
}

func TestRedefinitionPhase(t *testing.T) {
	sess, _ := newTestSession(t, eurostat.TestConfig(), DefaultOptions())
	schema := sess.Schema()

	if len(schema.Dimensions) != 6 {
		t.Fatalf("dimensions = %d, want 6", len(schema.Dimensions))
	}
	if len(schema.Measures) != 1 {
		t.Fatalf("measures = %d, want 1", len(schema.Measures))
	}
	if schema.Measures[0].Agg != qb4olap.Sum {
		t.Fatalf("default aggregate = %v, want sum", schema.Measures[0].Agg)
	}
	// Each dimension starts as a single-level hierarchy rooted at the
	// original dimension property with ManyToOne cardinality.
	for _, d := range schema.Dimensions {
		if d.BaseLevel.IsZero() {
			t.Errorf("dimension %s has no base level", d.IRI.Value)
		}
		if len(d.Hierarchies) != 1 || len(d.Hierarchies[0].Levels) != 1 {
			t.Errorf("dimension %s should start with one single-level hierarchy", d.IRI.Value)
		}
		if schema.Cardinalities[d.BaseLevel] != qb4olap.ManyToOne {
			t.Errorf("base level %s cardinality not ManyToOne", d.BaseLevel.Value)
		}
	}
	if schema.SourceDSD != eurostat.DSDIRI {
		t.Error("source DSD not recorded")
	}
	if !strings.HasSuffix(schema.DSD.Value, "QB4O") {
		t.Errorf("QB4O DSD IRI = %s", schema.DSD.Value)
	}
}

func TestSetAggregate(t *testing.T) {
	sess, _ := newTestSession(t, eurostat.TestConfig(), DefaultOptions())
	if err := sess.SetAggregate(eurostat.PropObs, qb4olap.Avg); err != nil {
		t.Fatal(err)
	}
	m, _ := sess.Schema().Measure(eurostat.PropObs)
	if m.Agg != qb4olap.Avg {
		t.Fatalf("aggregate = %v", m.Agg)
	}
	if err := sess.SetAggregate(rdf.NewIRI("http://nope"), qb4olap.Avg); err == nil {
		t.Fatal("unknown measure must error")
	}
}

func TestCandidateSuggestions(t *testing.T) {
	// E4: candidate discovery on the citizenship level.
	sess, _ := newTestSession(t, eurostat.TestConfig(), DefaultOptions())
	cands, err := sess.Suggest(eurostat.PropCitizen)
	if err != nil {
		t.Fatal(err)
	}

	cont, ok := FindCandidate(cands, eurostat.PropContinent)
	if !ok {
		t.Fatal("continent not suggested")
	}
	if cont.Kind != LevelCandidate {
		t.Errorf("continent kind = %v, want level", cont.Kind)
	}
	if !cont.ExactFD || cont.ErrorRate != 0 {
		t.Errorf("continent should be an exact FD: %+v", cont)
	}
	if cont.DistinctValues >= cont.Members {
		t.Errorf("continent values (%d) should be fewer than members (%d)", cont.DistinctValues, cont.Members)
	}

	name, ok := FindCandidate(cands, rdf.NewIRI(vocab.Schema+"countryName"))
	if !ok {
		t.Fatal("countryName not suggested")
	}
	if name.Kind != AttributeCandidate {
		t.Errorf("countryName kind = %v, want attribute", name.Kind)
	}

	// The multi-valued neighbour property must be rejected.
	nb, ok := FindCandidate(cands, eurostat.PropNeighbours)
	if !ok {
		t.Fatal("neighbourOf should appear in the report")
	}
	if nb.Kind != RejectedNotFunctional {
		t.Errorf("neighbourOf kind = %v, want rejected", nb.Kind)
	}

	// rdf:type must never be suggested.
	if _, ok := FindCandidate(cands, vocab.RDFType); ok {
		t.Error("rdf:type suggested")
	}

	// Level candidates sort before attribute candidates.
	firstAttr := -1
	lastLevel := -1
	for i, c := range cands {
		switch c.Kind {
		case LevelCandidate:
			lastLevel = i
		case AttributeCandidate:
			if firstAttr < 0 {
				firstAttr = i
			}
		}
	}
	if firstAttr >= 0 && lastLevel > firstAttr {
		t.Error("level candidates must sort before attribute candidates")
	}
}

func TestQuasiFDThreshold(t *testing.T) {
	// C5: with noise above the threshold the property is rejected; with
	// a generous threshold it is accepted as a quasi-FD.
	cfg := eurostat.TestConfig()
	cfg.QuasiFDNoise = 0.25

	strict := DefaultOptions() // threshold 0
	sess, _ := newTestSession(t, cfg, strict)
	cands, err := sess.Suggest(eurostat.PropCitizen)
	if err != nil {
		t.Fatal(err)
	}
	cont, ok := FindCandidate(cands, eurostat.PropContinent)
	if !ok {
		t.Fatal("continent missing from report")
	}
	if cont.Kind != RejectedNotFunctional {
		t.Fatalf("strict threshold should reject noisy continent, got %v (error rate %.2f)", cont.Kind, cont.ErrorRate)
	}

	lax := DefaultOptions()
	lax.QuasiFDThreshold = 0.5
	sess2, _ := newTestSession(t, cfg, lax)
	cands2, err := sess2.Suggest(eurostat.PropCitizen)
	if err != nil {
		t.Fatal(err)
	}
	cont2, _ := FindCandidate(cands2, eurostat.PropContinent)
	if cont2.Kind != LevelCandidate {
		t.Fatalf("lax threshold should accept quasi-FD, got %v", cont2.Kind)
	}
	if cont2.ExactFD {
		t.Error("noisy FD misreported as exact")
	}
	if cont2.ErrorRate <= 0 || cont2.ErrorRate > 0.5 {
		t.Errorf("error rate = %.3f", cont2.ErrorRate)
	}
}

func TestMinSupportFilter(t *testing.T) {
	cfg := eurostat.TestConfig()
	cfg.DropLabelRate = 0.5
	opts := DefaultOptions()
	opts.MinSupport = 0.95
	sess, _ := newTestSession(t, cfg, opts)
	cands, err := sess.Suggest(eurostat.PropCitizen)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := FindCandidate(cands, vocab.RDFSLabel); ok {
		t.Error("label with 50% support must be filtered at MinSupport=0.95")
	}
	// Continent support is 100%, must survive.
	if _, ok := FindCandidate(cands, eurostat.PropContinent); !ok {
		t.Error("continent filtered despite full support")
	}
}

func TestAddLevelBuildsHierarchy(t *testing.T) {
	sess, _ := newTestSession(t, eurostat.TestConfig(), DefaultOptions())
	cands, err := sess.Suggest(eurostat.PropCitizen)
	if err != nil {
		t.Fatal(err)
	}
	cont, _ := FindCandidate(cands, eurostat.PropContinent)
	if err := sess.AddLevel(cont); err != nil {
		t.Fatal(err)
	}
	dim, _ := sess.Schema().DimensionOfLevel(eurostat.PropCitizen)
	h := dim.Hierarchies[0]
	if len(h.Levels) != 2 || len(h.Steps) != 1 {
		t.Fatalf("hierarchy: %d levels, %d steps", len(h.Levels), len(h.Steps))
	}
	st := h.Steps[0]
	if st.Child != eurostat.PropCitizen || st.Parent != eurostat.PropContinent {
		t.Fatalf("step %v -> %v", st.Child, st.Parent)
	}
	if st.Rollup != eurostat.PropContinent {
		t.Fatalf("rollup property = %v", st.Rollup)
	}
	if st.Cardinality != qb4olap.ManyToOne {
		t.Fatalf("step cardinality = %v", st.Cardinality)
	}
	// Path resolution from base to the new level.
	path, ok := dim.PathToLevel(eurostat.PropContinent)
	if !ok || len(path) != 1 {
		t.Fatalf("PathToLevel: %v %v", path, ok)
	}
	// Re-adding must fail.
	if err := sess.AddLevel(cont); err == nil {
		t.Fatal("duplicate level add must fail")
	}
}

func TestIterativeEnrichmentTimeChain(t *testing.T) {
	sess, _ := newTestSession(t, eurostat.TestConfig(), DefaultOptions())

	cands, err := sess.Suggest(eurostat.PropTime)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := FindCandidate(cands, eurostat.PropQuarter)
	if !ok || q.Kind != LevelCandidate {
		t.Fatalf("quarter not a level candidate: %+v", q)
	}
	if err := sess.AddLevel(q); err != nil {
		t.Fatal(err)
	}

	// Iterate: now suggest for the new quarter level.
	cands, err = sess.Suggest(eurostat.PropQuarter)
	if err != nil {
		t.Fatal(err)
	}
	y, ok := FindCandidate(cands, eurostat.PropYear)
	if !ok || y.Kind != LevelCandidate {
		t.Fatalf("year not a level candidate from quarter: %+v", y)
	}
	if err := sess.AddLevel(y); err != nil {
		t.Fatal(err)
	}

	dim, _ := sess.Schema().DimensionOfLevel(eurostat.PropTime)
	path, ok := dim.PathToLevel(eurostat.PropYear)
	if !ok || len(path) != 2 {
		t.Fatalf("month->year path: %v, %v", path, ok)
	}
	members, err := sess.Members(eurostat.PropYear)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 { // 2013, 2014
		t.Fatalf("year members = %d, want 2", len(members))
	}
}

func TestAddAttribute(t *testing.T) {
	sess, _ := newTestSession(t, eurostat.TestConfig(), DefaultOptions())
	cands, _ := sess.Suggest(eurostat.PropCitizen)
	name, _ := FindCandidate(cands, rdf.NewIRI(vocab.Schema+"countryName"))
	if err := sess.AddAttribute(name); err != nil {
		t.Fatal(err)
	}
	lvl := sess.Schema().Level(eurostat.PropCitizen)
	if len(lvl.Attributes) != 1 {
		t.Fatalf("attributes = %d", len(lvl.Attributes))
	}
	if err := sess.AddAttribute(name); err == nil {
		t.Fatal("duplicate attribute must fail")
	}
	cont, _ := FindCandidate(cands, eurostat.PropContinent)
	if err := sess.AddAttribute(cont); err == nil {
		t.Fatal("adding a level candidate as attribute must fail")
	}
}

func TestAddAllLevel(t *testing.T) {
	sess, _ := newTestSession(t, eurostat.TestConfig(), DefaultOptions())
	cands, _ := sess.Suggest(eurostat.PropCitizen)
	cont, _ := FindCandidate(cands, eurostat.PropContinent)
	if err := sess.AddLevel(cont); err != nil {
		t.Fatal(err)
	}
	dim, _ := sess.Schema().DimensionOfLevel(eurostat.PropCitizen)
	all, err := sess.AddAllLevel(dim.IRI)
	if err != nil {
		t.Fatal(err)
	}
	members, err := sess.Members(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 {
		t.Fatalf("all level members = %d, want 1", len(members))
	}
	path, ok := dim.PathToLevel(all)
	if !ok || len(path) != 2 {
		t.Fatalf("path to all: %v %v", path, ok)
	}
}

func TestExternalGraphDiscovery(t *testing.T) {
	cfg := eurostat.TestConfig()
	opts := DefaultOptions()
	opts.SearchGraphs = []rdf.Term{eurostat.ExternalGraph}
	sess, _ := newTestSession(t, cfg, opts)

	cands, err := sess.Suggest(eurostat.PropCitizen)
	if err != nil {
		t.Fatal(err)
	}
	org, ok := FindCandidate(cands, eurostat.PropPolOrg)
	if !ok {
		t.Fatal("external politicalOrg not discovered")
	}
	if org.Kind != LevelCandidate {
		t.Fatalf("politicalOrg kind = %v", org.Kind)
	}
	if org.Graph != eurostat.ExternalGraph {
		t.Fatalf("politicalOrg graph = %v", org.Graph)
	}
	// Without SearchGraphs it must not appear.
	sess2, _ := newTestSession(t, cfg, DefaultOptions())
	cands2, _ := sess2.Suggest(eurostat.PropCitizen)
	if _, ok := FindCandidate(cands2, eurostat.PropPolOrg); ok {
		t.Error("external property leaked without SearchGraphs")
	}
}

func TestGenerateTriplesAndCommit(t *testing.T) {
	sess, client := newTestSession(t, eurostat.TestConfig(), DefaultOptions())
	cands, _ := sess.Suggest(eurostat.PropCitizen)
	cont, _ := FindCandidate(cands, eurostat.PropContinent)
	if err := sess.AddLevel(cont); err != nil {
		t.Fatal(err)
	}

	schema, instances, err := sess.GenerateTriples()
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) == 0 || len(instances) == 0 {
		t.Fatalf("schema=%d instances=%d", len(schema), len(instances))
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}

	// The committed schema must be loadable back as a QB4OLAP cube.
	res, err := client.Select(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT ?s WHERE { ?s a qb4o:HierarchyStep }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no hierarchy steps committed")
	}
	res, err = client.Select(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
SELECT (COUNT(?m) AS ?n) WHERE { ?m qb4o:memberOf property:citizen }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Binding(0, "n").Value == "0" {
		t.Fatal("no base level members committed")
	}

	summary, err := sess.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if summary.Dimensions != 6 || summary.Steps != 1 {
		t.Fatalf("summary = %+v", summary)
	}
}

func TestValidateAfterEnrichment(t *testing.T) {
	sess, _ := newTestSession(t, eurostat.TestConfig(), DefaultOptions())
	cands, _ := sess.Suggest(eurostat.PropCitizen)
	cont, _ := FindCandidate(cands, eurostat.PropContinent)
	if err := sess.AddLevel(cont); err != nil {
		t.Fatal(err)
	}
	if probs := sess.Schema().Validate(); len(probs) != 0 {
		t.Fatalf("validation problems after enrichment: %v", probs)
	}
}

func TestRemoveLevel(t *testing.T) {
	sess, _ := newTestSession(t, eurostat.TestConfig(), DefaultOptions())
	cands, _ := sess.Suggest(eurostat.PropTime)
	q, _ := FindCandidate(cands, eurostat.PropQuarter)
	if err := sess.AddLevel(q); err != nil {
		t.Fatal(err)
	}
	cands, _ = sess.Suggest(eurostat.PropQuarter)
	y, _ := FindCandidate(cands, eurostat.PropYear)
	if err := sess.AddLevel(y); err != nil {
		t.Fatal(err)
	}

	// Inner levels cannot be removed while a step builds on them.
	if err := sess.RemoveLevel(eurostat.PropQuarter); err == nil {
		t.Fatal("removing an inner level must fail")
	}
	// Base levels can never be removed.
	if err := sess.RemoveLevel(eurostat.PropTime); err == nil {
		t.Fatal("removing the base level must fail")
	}
	// The top can, and afterwards the level below becomes removable.
	if err := sess.RemoveLevel(eurostat.PropYear); err != nil {
		t.Fatal(err)
	}
	dim, _ := sess.Schema().DimensionOfLevel(eurostat.PropTime)
	if _, ok := dim.PathToLevel(eurostat.PropYear); ok {
		t.Fatal("year still reachable after removal")
	}
	if _, ok := dim.PathToLevel(eurostat.PropQuarter); !ok {
		t.Fatal("quarter lost by removing year")
	}
	if err := sess.RemoveLevel(eurostat.PropQuarter); err != nil {
		t.Fatal(err)
	}
	if probs := sess.Schema().Validate(); len(probs) != 0 {
		t.Fatalf("schema invalid after removals: %v", probs)
	}
	// Unknown level errors.
	if err := sess.RemoveLevel(rdf.NewIRI("http://nope")); err == nil {
		t.Fatal("unknown level must fail")
	}
}

func TestRemoveSharedLevelKeepsOtherDimension(t *testing.T) {
	sess, _ := newTestSession(t, eurostat.TestConfig(), DefaultOptions())
	for _, base := range []rdf.Term{eurostat.PropCitizen, eurostat.PropGeo} {
		cands, _ := sess.Suggest(base)
		c, ok := FindCandidate(cands, eurostat.PropContinent)
		if !ok {
			t.Fatalf("continent not suggested for %v", base)
		}
		if err := sess.AddLevel(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.RemoveLevel(eurostat.PropContinent); err != nil {
		t.Fatal(err)
	}
	// One of the two dimensions must still reach the shared level.
	if _, ok := sess.Schema().DimensionOfLevel(eurostat.PropContinent); !ok {
		t.Fatal("shared level metadata dropped while still in use")
	}
}

// TestBranchingHierarchies adds two alternative parent levels to the
// same child, which must create a second hierarchy on the dimension
// (the paper's citizenshipGeoHier is one of possibly many).
func TestBranchingHierarchies(t *testing.T) {
	cfg := eurostat.TestConfig()
	opts := DefaultOptions()
	opts.SearchGraphs = []rdf.Term{eurostat.ExternalGraph}
	sess, _ := newTestSession(t, cfg, opts)

	cands, err := sess.Suggest(eurostat.PropCitizen)
	if err != nil {
		t.Fatal(err)
	}
	cont, ok := FindCandidate(cands, eurostat.PropContinent)
	if !ok {
		t.Fatal("continent missing")
	}
	org, ok := FindCandidate(cands, eurostat.PropPolOrg)
	if !ok {
		t.Fatal("politicalOrg missing")
	}
	if err := sess.AddLevel(cont); err != nil {
		t.Fatal(err)
	}
	if err := sess.AddLevel(org); err != nil {
		t.Fatal(err)
	}

	dim, _ := sess.Schema().DimensionOfLevel(eurostat.PropCitizen)
	if len(dim.Hierarchies) != 2 {
		t.Fatalf("hierarchies = %d, want 2", len(dim.Hierarchies))
	}
	if _, ok := dim.PathToLevel(eurostat.PropContinent); !ok {
		t.Error("continent unreachable")
	}
	if _, ok := dim.PathToLevel(eurostat.PropPolOrg); !ok {
		t.Error("politicalOrg unreachable")
	}
	if probs := sess.Schema().Validate(); len(probs) != 0 {
		t.Fatalf("schema problems: %v", probs)
	}

	// Extending the branch further: continent gains a level in the
	// first hierarchy while the second stays two levels deep.
	dimIRI := dim.IRI
	if _, err := sess.AddAllLevel(dimIRI); err != nil {
		t.Fatal(err)
	}
	if len(dim.Hierarchies[0].Levels) != 3 {
		t.Fatalf("first hierarchy levels = %d", len(dim.Hierarchies[0].Levels))
	}
	if len(dim.Hierarchies[1].Levels) != 2 {
		t.Fatalf("second hierarchy levels = %d", len(dim.Hierarchies[1].Levels))
	}
}

// TestBranchingHierarchyQueryable commits a branched schema and rolls
// up along the second (externally-sourced) hierarchy.
func TestBranchingHierarchyQueryable(t *testing.T) {
	cfg := eurostat.TestConfig()
	opts := DefaultOptions()
	opts.SearchGraphs = []rdf.Term{eurostat.ExternalGraph}
	sess, client := newTestSession(t, cfg, opts)

	cands, _ := sess.Suggest(eurostat.PropCitizen)
	cont, _ := FindCandidate(cands, eurostat.PropContinent)
	org, _ := FindCandidate(cands, eurostat.PropPolOrg)
	if err := sess.AddLevel(cont); err != nil {
		t.Fatal(err)
	}
	if err := sess.AddLevel(org); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}

	// The externally-found rollup triples must have been materialized
	// into the default graph so queries can navigate them.
	res, err := client.Select(`
PREFIX ex: <http://example.org/external/>
SELECT (COUNT(?m) AS ?n) WHERE { ?m ex:politicalOrg ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Binding(0, "n").Value == "0" {
		t.Fatal("external rollup triples not materialized")
	}
}

// TestChunkedDiscovery makes the member set exceed the discovery chunk
// size by suggesting on the time level of a long period, exercising the
// chunked statistics merging.
func TestChunkedDiscovery(t *testing.T) {
	cfg := eurostat.TestConfig()
	cfg.StartYear = 1960
	cfg.EndYear = 2014 // 55 years * 12 months = 660 members > 500 chunk
	cfg.TargetObservations = 4000
	sess, _ := newTestSession(t, cfg, DefaultOptions())

	members, err := sess.Members(eurostat.PropTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) <= 500 {
		t.Fatalf("fixture too small: %d members", len(members))
	}
	cands, err := sess.Suggest(eurostat.PropTime)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := FindCandidate(cands, eurostat.PropQuarter)
	if !ok || q.Kind != LevelCandidate {
		t.Fatalf("quarter candidate: %+v (ok=%v)", q, ok)
	}
	if q.WithProperty != len(members) {
		t.Fatalf("withProperty = %d, members = %d", q.WithProperty, len(members))
	}
	// Distinct values must be exact across chunks: 4 quarters per year.
	wantQuarters := (cfg.EndYear - cfg.StartYear + 1) * 4
	if q.DistinctValues != wantQuarters {
		t.Fatalf("distinct quarters = %d, want %d", q.DistinctValues, wantQuarters)
	}
	y, ok := FindCandidate(cands, eurostat.PropYear)
	if !ok || y.Kind != LevelCandidate {
		t.Fatalf("year candidate: %+v", y)
	}
	if y.DistinctValues != cfg.EndYear-cfg.StartYear+1 {
		t.Fatalf("distinct years = %d", y.DistinctValues)
	}
}
