// Package enrich implements the QB2OLAP Enrichment module: the
// semi-automatic transformation of a QB data set into a QB4OLAP one.
//
// The workflow follows Figure 2 of the paper:
//
//  1. Redefinition phase — the QB schema is adjusted to QB4OLAP
//     semantics: dimensions become levels with cardinalities, measures
//     receive aggregate functions.
//  2. Enrichment phase — for each level, the module collects the level
//     instances and their properties, discovers which properties are
//     functional dependencies (exact or quasi, within a configurable
//     error threshold), and suggests them as parent-level or attribute
//     candidates. The user (or a script) picks candidates; hierarchies
//     are built and updated iteratively.
//  3. Triple generation phase — the QB4OLAP schema and level-instance
//     triples are generated and loaded into the endpoint.
package enrich

import (
	"repro/internal/obs"
	"repro/internal/qb4olap"
	"repro/internal/rdf"
	"repro/internal/vocab"
)

// Options are the fine-tuning parameters of the Enrichment module
// (Section III-A: aggregate function, level detection, and triple
// generation parameters).
type Options struct {
	// QuasiFDThreshold is the allowed fraction of level members that
	// may violate the functional dependency (an FD with an allowed
	// error threshold, for Linked Data quality issues). 0 accepts only
	// exact FDs.
	QuasiFDThreshold float64

	// MinSupport is the minimum fraction of members that must carry the
	// property at all for it to be suggested.
	MinSupport float64

	// MaxLevelValueRatio splits level candidates from attribute
	// candidates: an IRI-valued FD whose distinct-value count exceeds
	// this fraction of the member count looks like a 1:1 identifier,
	// not a roll-up target. The default of 0.8 accepts any property
	// that actually merges members while still rejecting near-keys.
	MaxLevelValueRatio float64

	// DefaultAggregate is assigned to measures during redefinition.
	DefaultAggregate qb4olap.AggFunc

	// SearchGraphs lists additional named graphs to search for
	// candidate properties (e.g. an external linked data set). The
	// default graph is always searched.
	SearchGraphs []rdf.Term

	// Namespace prefixes generated schema IRIs (hierarchies, steps, the
	// QB4OLAP DSD).
	Namespace string

	// MaterializeExternal copies roll-up triples found in external
	// graphs into the generated instance triples so that queries over
	// the default graph can navigate them.
	MaterializeExternal bool

	// Progress, when non-nil, receives phase-structured progress from
	// the whole enrichment run (redefinition, discovery, generation,
	// commit) plus run-level counters such as the SPARQL queries
	// issued. Leave nil to run unobserved; the instrumentation is
	// nil-safe throughout.
	Progress *obs.Progress
}

// DefaultOptions returns the module defaults used by the demo.
func DefaultOptions() Options {
	return Options{
		QuasiFDThreshold:    0,
		MinSupport:          0.9,
		MaxLevelValueRatio:  0.8,
		DefaultAggregate:    qb4olap.Sum,
		Namespace:           vocab.Schema,
		MaterializeExternal: true,
	}
}

// CandidateKind classifies a discovered candidate.
type CandidateKind int

// Candidate kinds.
const (
	// LevelCandidate is an IRI-valued (quasi-)FD suitable as a coarser
	// dimension level.
	LevelCandidate CandidateKind = iota
	// AttributeCandidate is a literal-valued or identifier-like FD
	// suitable as a descriptive level attribute.
	AttributeCandidate
	// RejectedNotFunctional marks properties that failed the FD test;
	// they are reported for transparency but cannot be chosen.
	RejectedNotFunctional
)

func (k CandidateKind) String() string {
	switch k {
	case LevelCandidate:
		return "level"
	case AttributeCandidate:
		return "attribute"
	default:
		return "rejected"
	}
}

// Candidate is one discovered roll-up or attribute suggestion for a
// level.
type Candidate struct {
	// Property is the instance property representing the dependency.
	Property rdf.Term
	// Level is the level the candidate was discovered for (the child).
	Level rdf.Term
	// Kind classifies the suggestion.
	Kind CandidateKind
	// Graph is the graph the property was found in (zero = default).
	Graph rdf.Term

	// Members is the number of level members analysed.
	Members int
	// WithProperty is how many members carry the property.
	WithProperty int
	// Violations is how many members map to more than one value.
	Violations int
	// DistinctValues is the number of distinct values across members.
	DistinctValues int

	// ExactFD reports whether the property is a strict FD.
	ExactFD bool
	// ErrorRate is Violations / WithProperty.
	ErrorRate float64
	// Support is WithProperty / Members.
	Support float64
}
