package enrich

import (
	"bufio"
	"fmt"
	"strings"

	"repro/internal/qb4olap"
	"repro/internal/rdf"
)

// ApplyScript runs a line-based enrichment script against a session,
// the non-interactive counterpart of the paper's GUI-driven workflow.
// Commands: aggregate <measure> <fn>; level <child> <property>;
// attribute <level> <property>; all <dimension>. Blank lines and
// #-comments are skipped; IRIs may be bare or angle-bracketed.
func ApplyScript(sess *Session, script string) error {
	sc := bufio.NewScanner(strings.NewReader(script))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(err error) error {
			return fmt.Errorf("enrich script line %d: %w", lineNo, err)
		}
		switch fields[0] {
		case "aggregate":
			if len(fields) != 3 {
				return fail(fmt.Errorf("usage: aggregate <measure> <sum|avg|count|min|max>"))
			}
			var f qb4olap.AggFunc
			switch fields[2] {
			case "sum":
				f = qb4olap.Sum
			case "avg":
				f = qb4olap.Avg
			case "count":
				f = qb4olap.Count
			case "min":
				f = qb4olap.Min
			case "max":
				f = qb4olap.Max
			default:
				return fail(fmt.Errorf("unknown aggregate %q", fields[2]))
			}
			if err := sess.SetAggregate(scriptIRI(fields[1]), f); err != nil {
				return fail(err)
			}
		case "level", "attribute":
			if len(fields) != 3 {
				return fail(fmt.Errorf("usage: %s <level> <property>", fields[0]))
			}
			cands, err := sess.Suggest(scriptIRI(fields[1]))
			if err != nil {
				return fail(err)
			}
			c, ok := FindCandidate(cands, scriptIRI(fields[2]))
			if !ok {
				return fail(fmt.Errorf("property %s not suggested for level %s", fields[2], fields[1]))
			}
			if fields[0] == "level" {
				err = sess.AddLevel(c)
			} else {
				err = sess.AddAttribute(c)
			}
			if err != nil {
				return fail(err)
			}
		case "all":
			if len(fields) != 2 {
				return fail(fmt.Errorf("usage: all <dimension>"))
			}
			if _, err := sess.AddAllLevel(scriptIRI(fields[1])); err != nil {
				return fail(err)
			}
		default:
			return fail(fmt.Errorf("unknown command %q", fields[0]))
		}
	}
	return sc.Err()
}

// scriptIRI reads a script IRI operand, accepting <...> or bare form.
func scriptIRI(v string) rdf.Term {
	if len(v) >= 2 && v[0] == '<' && v[len(v)-1] == '>' {
		v = v[1 : len(v)-1]
	}
	return rdf.NewIRI(v)
}
