package enrich

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/endpoint"
	"repro/internal/obs"
	"repro/internal/qb"
	"repro/internal/qb4olap"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/vocab"
)

// Session is one interactive enrichment of a QB data set. It tracks the
// evolving QB4OLAP schema; Suggest/AddLevel/AddAttribute implement the
// iterative Enrichment phase; GenerateTriples and Commit implement the
// Triple Generation phase.
type Session struct {
	client endpoint.SPARQLClient
	opts   Options
	prog   *obs.Progress

	source  *qb.DSD
	dataset rdf.Term
	schema  *qb4olap.CubeSchema

	// members caches the member IRIs per level.
	members map[rdf.Term][]rdf.Term
	// rollups caches discovered child→parent member pairs per step IRI.
	rollups map[rdf.Term][][2]rdf.Term
	// allLevels tracks synthetic "all" top levels (one member each).
	allLevels map[rdf.Term]bool

	stepSeq int
}

// countingClient wraps the session's endpoint client so every query and
// update issued anywhere in the enrichment run lands in the run
// report's counters. Progress counters are nil-safe, so the wrapper is
// installed unconditionally.
type countingClient struct {
	inner endpoint.SPARQLClient
	prog  *obs.Progress
}

func (c countingClient) Select(query string) (*sparql.Results, error) {
	c.prog.Count("sparqlQueries", 1)
	return c.inner.Select(query)
}

func (c countingClient) Update(update string) error {
	c.prog.Count("sparqlUpdates", 1)
	return c.inner.Update(update)
}

// NewSession performs the Redefinition phase: it loads the QB DSD from
// the endpoint and produces the QB4OLAP schema skeleton in which every
// dimension is redefined as a base level with a ManyToOne cardinality
// and every measure receives the default aggregate function.
func NewSession(c endpoint.SPARQLClient, dsdIRI rdf.Term, opts Options) (*Session, error) {
	if opts.Namespace == "" {
		opts.Namespace = vocab.Schema
	}
	if opts.DefaultAggregate < qb4olap.Sum || opts.DefaultAggregate > qb4olap.Max {
		opts.DefaultAggregate = qb4olap.Sum
	}
	prog := opts.Progress
	c = countingClient{inner: c, prog: prog}
	ph := prog.Phase("redefinition")
	defer ph.Done()
	src, err := qb.LoadDSD(c, dsdIRI)
	if err != nil {
		return nil, fmt.Errorf("enrich: redefinition: %w", err)
	}
	if probs := qb.Validate(src); len(probs) > 0 {
		return nil, fmt.Errorf("enrich: source DSD is not well-formed: %v", probs)
	}

	// Find the dataset bound to the DSD.
	var dataset rdf.Term
	res, err := c.Select(fmt.Sprintf(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT ?ds WHERE { ?ds qb:structure <%s> } LIMIT 1`, dsdIRI.Value))
	if err != nil {
		return nil, fmt.Errorf("enrich: finding dataset: %w", err)
	}
	if res.Len() > 0 {
		dataset = res.Binding(0, "ds")
	}

	newDSD := rdf.NewIRI(opts.Namespace + localName(dsdIRI) + "QB4O")
	schema := qb4olap.NewCubeSchema(newDSD, dataset, opts.Namespace)
	schema.SourceDSD = dsdIRI

	ph.Grow(int64(len(src.Dimensions()) + len(src.Measures())))
	for _, dimProp := range src.Dimensions() {
		ph.Add(1)
		local := localName(dimProp)
		dim := &qb4olap.Dimension{
			IRI:       rdf.NewIRI(opts.Namespace + local + "Dim"),
			BaseLevel: dimProp,
		}
		hier := &qb4olap.Hierarchy{
			IRI:    rdf.NewIRI(opts.Namespace + local + "Hier"),
			Levels: []rdf.Term{dimProp},
		}
		dim.Hierarchies = []*qb4olap.Hierarchy{hier}
		schema.Dimensions = append(schema.Dimensions, dim)
		schema.Cardinalities[dimProp] = qb4olap.ManyToOne
		schema.Level(dimProp)
	}
	for _, m := range src.Measures() {
		ph.Add(1)
		schema.Measures = append(schema.Measures, qb4olap.MeasureSpec{Property: m, Agg: opts.DefaultAggregate})
	}

	return &Session{
		client:    c,
		opts:      opts,
		prog:      prog,
		source:    src,
		dataset:   dataset,
		schema:    schema,
		members:   make(map[rdf.Term][]rdf.Term),
		rollups:   make(map[rdf.Term][][2]rdf.Term),
		allLevels: make(map[rdf.Term]bool),
	}, nil
}

// Schema returns the evolving QB4OLAP schema.
func (s *Session) Schema() *qb4olap.CubeSchema { return s.schema }

// SourceDSD returns the original QB structure.
func (s *Session) SourceDSD() *qb.DSD { return s.source }

// Options returns the session options.
func (s *Session) Options() Options { return s.opts }

// SetAggregate overrides the aggregate function of a measure (one of
// the fine-tuning parameters the paper calls out).
func (s *Session) SetAggregate(measure rdf.Term, f qb4olap.AggFunc) error {
	for i := range s.schema.Measures {
		if s.schema.Measures[i].Property == measure {
			s.schema.Measures[i].Agg = f
			return nil
		}
	}
	return fmt.Errorf("enrich: unknown measure %s", measure.Value)
}

// Members returns (and caches) the member IRIs of a level. Base level
// members are the distinct dimension values over the observations;
// derived level members are the roll-up targets of their child level.
func (s *Session) Members(level rdf.Term) ([]rdf.Term, error) {
	if m, ok := s.members[level]; ok {
		return m, nil
	}
	dim, ok := s.schema.DimensionOfLevel(level)
	if !ok {
		return nil, fmt.Errorf("enrich: level %s not in schema", level.Value)
	}
	if level == dim.BaseLevel {
		query := fmt.Sprintf(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT DISTINCT ?m WHERE { ?o qb:dataSet <%s> ; <%s> ?m }`, s.dataset.Value, level.Value)
		res, err := s.client.Select(query)
		if err != nil {
			return nil, fmt.Errorf("enrich: collecting members of %s: %w", level.Value, err)
		}
		members := make([]rdf.Term, 0, res.Len())
		for i := range res.Rows {
			if m := res.Binding(i, "m"); m.IsIRI() {
				members = append(members, m)
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i].Compare(members[j]) < 0 })
		s.members[level] = members
		return members, nil
	}
	// Derived level: find the step whose parent is this level and map
	// child members through the rollup property.
	for _, h := range dim.Hierarchies {
		for _, st := range h.Steps {
			if st.Parent != level {
				continue
			}
			pairs, err := s.rollupPairs(st)
			if err != nil {
				return nil, err
			}
			seen := make(map[rdf.Term]bool)
			var members []rdf.Term
			for _, p := range pairs {
				if !seen[p[1]] {
					seen[p[1]] = true
					members = append(members, p[1])
				}
			}
			sort.Slice(members, func(i, j int) bool { return members[i].Compare(members[j]) < 0 })
			s.members[level] = members
			return members, nil
		}
	}
	return nil, fmt.Errorf("enrich: no step leads to level %s", level.Value)
}

// rollupPairs returns the (child member, parent member) pairs for a
// hierarchy step, searching the default graph and the configured
// external graphs.
func (s *Session) rollupPairs(st qb4olap.HierarchyStep) ([][2]rdf.Term, error) {
	if pairs, ok := s.rollups[st.IRI]; ok {
		return pairs, nil
	}
	childMembers, err := s.Members(st.Child)
	if err != nil {
		return nil, err
	}
	memberSet := make(map[rdf.Term]bool, len(childMembers))
	for _, m := range childMembers {
		memberSet[m] = true
	}
	var pairs [][2]rdf.Term
	collect := func(graph rdf.Term) error {
		query := buildPairQuery(st.Rollup, graph)
		res, err := s.client.Select(query)
		if err != nil {
			return fmt.Errorf("enrich: collecting rollups via %s: %w", st.Rollup.Value, err)
		}
		for i := range res.Rows {
			child := res.Binding(i, "child")
			parent := res.Binding(i, "parent")
			if memberSet[child] && parent.IsIRI() {
				pairs = append(pairs, [2]rdf.Term{child, parent})
			}
		}
		return nil
	}
	if err := collect(rdf.Term{}); err != nil {
		return nil, err
	}
	for _, g := range s.opts.SearchGraphs {
		if err := collect(g); err != nil {
			return nil, err
		}
	}
	pairs = dedupePairList(pairs)
	s.rollups[st.IRI] = pairs
	return pairs, nil
}

func buildPairQuery(prop, graph rdf.Term) string {
	inner := fmt.Sprintf("?child <%s> ?parent .", prop.Value)
	if !graph.IsZero() {
		inner = fmt.Sprintf("GRAPH <%s> { %s }", graph.Value, inner)
	}
	return "SELECT ?child ?parent WHERE { " + inner + " }"
}

func dedupePairList(pairs [][2]rdf.Term) [][2]rdf.Term {
	seen := make(map[[2]rdf.Term]bool, len(pairs))
	out := pairs[:0]
	for _, p := range pairs {
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// AddLevel applies a level candidate: the property's value set becomes
// a new (coarser) level on top of the child level, connected by a
// hierarchy step whose roll-up property is the candidate property. The
// dimension's hierarchy is created or extended, mirroring the paper's
// iterative hierarchy construction.
func (s *Session) AddLevel(cand Candidate) error {
	if cand.Kind != LevelCandidate {
		return fmt.Errorf("enrich: candidate %s is %s, not a level candidate", cand.Property.Value, cand.Kind)
	}
	dim, ok := s.schema.DimensionOfLevel(cand.Level)
	if !ok {
		return fmt.Errorf("enrich: level %s not in schema", cand.Level.Value)
	}
	newLevel := cand.Property // the paper names the level after the discovered property
	// The same level may be shared by several dimensions (e.g. both
	// citizenship and destination roll up to continents), but must not
	// repeat within one dimension.
	for _, l := range dim.LevelIRIs() {
		if l == newLevel {
			return fmt.Errorf("enrich: level %s already present in dimension %s", newLevel.Value, dim.IRI.Value)
		}
	}

	// Extend the hierarchy that currently ends at the child level;
	// otherwise start a new hierarchy from the base.
	var hier *qb4olap.Hierarchy
	for _, h := range dim.Hierarchies {
		if h.HasLevel(cand.Level) {
			if _, taken := h.StepFromChild(cand.Level); !taken {
				hier = h
				break
			}
		}
	}
	if hier == nil {
		hier = &qb4olap.Hierarchy{
			IRI:    rdf.NewIRI(fmt.Sprintf("%s%sHier%d", s.opts.Namespace, localName(dim.IRI), len(dim.Hierarchies)+1)),
			Levels: []rdf.Term{dim.BaseLevel},
		}
		// A new hierarchy must reach the child level: replay existing
		// steps from another hierarchy up to it.
		if cand.Level != dim.BaseLevel {
			path, ok := dim.PathToLevel(cand.Level)
			if !ok {
				return fmt.Errorf("enrich: no path from base level to %s", cand.Level.Value)
			}
			for _, st := range path {
				hier.Levels = append(hier.Levels, st.Parent)
				hier.Steps = append(hier.Steps, st)
			}
		}
		dim.Hierarchies = append(dim.Hierarchies, hier)
	}

	s.stepSeq++
	card := qb4olap.ManyToOne
	if cand.DistinctValues == cand.WithProperty {
		card = qb4olap.OneToOne
	}
	step := qb4olap.HierarchyStep{
		IRI:         rdf.NewIRI(fmt.Sprintf("%sih%d", s.opts.Namespace, s.stepSeq)),
		Child:       cand.Level,
		Parent:      newLevel,
		Cardinality: card,
		Rollup:      cand.Property,
	}
	hier.Levels = append(hier.Levels, newLevel)
	hier.Steps = append(hier.Steps, step)
	s.schema.Level(newLevel)
	s.prog.Count("levelsAdded", 1)
	// Invalidate caches that depend on the new structure.
	delete(s.members, newLevel)
	return nil
}

// RemoveLevel undoes an AddLevel: it removes the topmost level of the
// hierarchy currently ending at the given level, supporting the
// interactive explore-and-retract workflow of the GUI. Only a hierarchy
// top can be removed (inner levels carry later steps).
func (s *Session) RemoveLevel(level rdf.Term) error {
	dim, ok := s.schema.DimensionOfLevel(level)
	if !ok {
		return fmt.Errorf("enrich: level %s not in schema", level.Value)
	}
	if level == dim.BaseLevel {
		return fmt.Errorf("enrich: cannot remove the base level %s", level.Value)
	}
	for _, h := range dim.Hierarchies {
		if len(h.Levels) == 0 || h.Levels[len(h.Levels)-1] != level {
			continue
		}
		var removedStep qb4olap.HierarchyStep
		for i, st := range h.Steps {
			if st.Parent == level {
				removedStep = st
				h.Steps = append(h.Steps[:i], h.Steps[i+1:]...)
				break
			}
		}
		h.Levels = h.Levels[:len(h.Levels)-1]
		delete(s.members, level)
		delete(s.rollups, removedStep.IRI)
		delete(s.allLevels, level)
		// Drop the level metadata unless another dimension still uses it.
		if _, stillUsed := s.schema.DimensionOfLevel(level); !stillUsed {
			delete(s.schema.Levels, level)
		}
		return nil
	}
	return fmt.Errorf("enrich: level %s is not the top of a hierarchy in %s", level.Value, dim.IRI.Value)
}

// AddAttribute applies an attribute candidate to its level.
func (s *Session) AddAttribute(cand Candidate) error {
	if cand.Kind != AttributeCandidate {
		return fmt.Errorf("enrich: candidate %s is %s, not an attribute candidate", cand.Property.Value, cand.Kind)
	}
	lvl := s.schema.Level(cand.Level)
	for _, a := range lvl.Attributes {
		if a.IRI == cand.Property {
			return fmt.Errorf("enrich: attribute %s already on level %s", cand.Property.Value, cand.Level.Value)
		}
	}
	lvl.Attributes = append(lvl.Attributes, qb4olap.LevelAttribute{IRI: cand.Property, Property: cand.Property})
	s.prog.Count("attributesAdded", 1)
	return nil
}

// AddAllLevel caps a dimension with a synthetic "all" top level holding
// a single member, as in the paper's schema:citAll.
func (s *Session) AddAllLevel(dimIRI rdf.Term) (rdf.Term, error) {
	dim, ok := s.schema.Dimension(dimIRI)
	if !ok {
		return rdf.Term{}, fmt.Errorf("enrich: unknown dimension %s", dimIRI.Value)
	}
	local := strings.TrimSuffix(localName(dimIRI), "Dim")
	allLevel := rdf.NewIRI(s.opts.Namespace + local + "All")
	if _, exists := s.schema.DimensionOfLevel(allLevel); exists {
		return rdf.Term{}, fmt.Errorf("enrich: all level already present on %s", dimIRI.Value)
	}
	allProp := rdf.NewIRI(s.opts.Namespace + local + "AllRollup")

	// Attach to the first hierarchy's current top level.
	hier := dim.Hierarchies[0]
	top := hier.Levels[len(hier.Levels)-1]
	s.stepSeq++
	step := qb4olap.HierarchyStep{
		IRI:         rdf.NewIRI(fmt.Sprintf("%sih%d", s.opts.Namespace, s.stepSeq)),
		Child:       top,
		Parent:      allLevel,
		Cardinality: qb4olap.ManyToOne,
		Rollup:      allProp,
	}
	hier.Levels = append(hier.Levels, allLevel)
	hier.Steps = append(hier.Steps, step)
	s.schema.Level(allLevel)
	s.allLevels[allLevel] = true

	// The all level has exactly one member.
	allMember := rdf.NewIRI(s.opts.Namespace + "member/" + local + "All")
	s.members[allLevel] = []rdf.Term{allMember}
	topMembers, err := s.Members(top)
	if err != nil {
		return rdf.Term{}, err
	}
	pairs := make([][2]rdf.Term, 0, len(topMembers))
	for _, m := range topMembers {
		pairs = append(pairs, [2]rdf.Term{m, allMember})
	}
	s.rollups[step.IRI] = pairs
	s.prog.Count("levelsAdded", 1)
	return allLevel, nil
}

// localName extracts the local part of an IRI for naming generated
// schema elements.
func localName(t rdf.Term) string {
	v := t.Value
	if i := strings.LastIndexAny(v, "#/"); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}
