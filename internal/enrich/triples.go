package enrich

import (
	"fmt"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/vocab"
)

// GenerateTriples implements the Triple Generation phase: it produces
// the QB4OLAP schema triples and the level-instance triples (member
// typing, level membership, member-to-member roll-up links). Roll-up
// triples that only exist in external graphs — or that are synthetic,
// like the links to an "all" member — are materialized so queries over
// the default graph can navigate every hierarchy step.
func (s *Session) GenerateTriples() (schema, instances []rdf.Triple, err error) {
	ph := s.prog.Phase("generation")
	defer ph.Done()
	schema = s.schema.SchemaTriples()

	g := rdf.NewGraph()
	ph.Grow(int64(len(s.schema.Dimensions)))
	for _, dim := range s.schema.Dimensions {
		ph.Add(1)
		// Base level membership.
		baseMembers, err := s.Members(dim.BaseLevel)
		if err != nil {
			return nil, nil, err
		}
		for _, m := range baseMembers {
			g.Add(rdf.NewTriple(m, vocab.RDFType, vocab.QB4OLevelMemberClass))
			g.Add(rdf.NewTriple(m, vocab.QB4OMemberOf, dim.BaseLevel))
		}
		for _, h := range dim.Hierarchies {
			for _, st := range h.Steps {
				pairs, err := s.rollupPairs(st)
				if err != nil {
					return nil, nil, err
				}
				for _, pr := range pairs {
					child, parent := pr[0], pr[1]
					g.Add(rdf.NewTriple(parent, vocab.RDFType, vocab.QB4OLevelMemberClass))
					g.Add(rdf.NewTriple(parent, vocab.QB4OMemberOf, st.Parent))
					g.Add(rdf.NewTriple(child, vocab.SKOSBroader, parent))
					if s.opts.MaterializeExternal || s.allLevels[st.Parent] {
						g.Add(rdf.NewTriple(child, st.Rollup, parent))
					}
				}
			}
		}
	}
	return schema, g.Triples(), nil
}

// Commit generates the triples and loads them into the endpoint with
// INSERT DATA batches, completing the enrichment workflow.
func (s *Session) Commit() error {
	schema, instances, err := s.GenerateTriples()
	if err != nil {
		return err
	}
	s.prog.Count("schemaTriples", int64(len(schema)))
	s.prog.Count("instanceTriples", int64(len(instances)))
	ph := s.prog.Phase("commit")
	defer ph.Done()
	if err := endpoint.InsertTriplesP(s.client, rdf.Term{}, schema, 0, ph); err != nil {
		return fmt.Errorf("enrich: loading schema triples: %w", err)
	}
	if err := endpoint.InsertTriplesP(s.client, rdf.Term{}, instances, 0, ph); err != nil {
		return fmt.Errorf("enrich: loading instance triples: %w", err)
	}
	s.prog.Count("triplesLoaded", int64(len(schema)+len(instances)))
	return nil
}

// Stats summarizes the generated enrichment for reporting.
type Stats struct {
	Dimensions      int
	Hierarchies     int
	Levels          int
	Steps           int
	SchemaTriples   int
	InstanceTriples int
}

// Summary computes enrichment statistics without committing.
func (s *Session) Summary() (Stats, error) {
	schema, instances, err := s.GenerateTriples()
	if err != nil {
		return Stats{}, err
	}
	st := Stats{
		Dimensions:      len(s.schema.Dimensions),
		Levels:          len(s.schema.Levels),
		SchemaTriples:   len(schema),
		InstanceTriples: len(instances),
	}
	for _, d := range s.schema.Dimensions {
		st.Hierarchies += len(d.Hierarchies)
		for _, h := range d.Hierarchies {
			st.Steps += len(h.Steps)
		}
	}
	return st, nil
}
