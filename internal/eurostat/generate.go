package eurostat

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/vocab"
)

// Config controls dataset generation. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// TargetObservations is the approximate number of observations to
	// emit (the paper's demo subset has ≈80,000).
	TargetObservations int
	// StartYear and EndYear bound the monthly reference periods
	// (inclusive). The paper uses 2013–2014.
	StartYear, EndYear int
	// QuasiFDNoise is the fraction of citizenship members given a
	// second continent link, turning the continent property from an
	// exact FD into a quasi-FD with that violation rate.
	QuasiFDNoise float64
	// DropLabelRate is the fraction of members without an rdfs:label,
	// reproducing the paper's footnote that labels are not guaranteed.
	DropLabelRate float64
	// IncludeExternal adds the simulated external linked data set
	// (political organization and population band per country),
	// standing in for DBpedia.
	IncludeExternal bool
}

// DefaultConfig mirrors the paper's demo subset.
func DefaultConfig() Config {
	return Config{
		Seed:               42,
		TargetObservations: 80000,
		StartYear:          2013,
		EndYear:            2014,
		IncludeExternal:    true,
	}
}

// TestConfig is a small configuration for fast tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.TargetObservations = 1500
	return c
}

// Observation is the generated fact row, kept for oracle computations
// in tests and benchmarks.
type Observation struct {
	Citizen string // country code
	Geo     string // destination country code
	Sex     string
	Age     string
	AppType string
	Year    int
	Month   int
	Value   int64
}

// Dataset is a generated cube: the QB triples plus the raw observation
// rows for oracle computation.
type Dataset struct {
	Config Config

	// CubeTriples contains the DSD, dataset, and observation triples.
	CubeTriples []rdf.Triple
	// DimensionTriples contains the level member instance data (codes,
	// labels, and the FD properties pointing at coarser members).
	DimensionTriples []rdf.Triple
	// ExternalTriples is the simulated external (DBpedia-like) data,
	// meant for a separate named graph.
	ExternalTriples []rdf.Triple

	// Observations are the raw generated facts.
	Observations []Observation
}

// Well-known IRIs of the generated cube.
var (
	DSDIRI     = rdf.NewIRI(vocab.EurostatDSD + "migr_asyappctzm")
	DataSetIRI = rdf.NewIRI(vocab.EurostatData + "migr_asyappctzm")

	PropCitizen = rdf.NewIRI(vocab.EurostatProperty + "citizen")
	PropGeo     = rdf.NewIRI(vocab.EurostatProperty + "geo")
	PropSex     = rdf.NewIRI(vocab.EurostatProperty + "sex")
	PropAge     = rdf.NewIRI(vocab.EurostatProperty + "age")
	PropAsylApp = rdf.NewIRI(vocab.EurostatProperty + "asyl_app")
	PropTime    = vocab.SDMXRefPeriod
	PropObs     = vocab.SDMXObsValue

	// Instance properties carrying the discoverable FDs.
	PropContinent  = rdf.NewIRI(vocab.Schema + "continent")
	PropAgeClass   = rdf.NewIRI(vocab.Schema + "ageClass")
	PropQuarter    = rdf.NewIRI(vocab.Schema + "quarter")
	PropYear       = rdf.NewIRI(vocab.Schema + "year")
	PropPolOrg     = rdf.NewIRI(vocab.External + "politicalOrg")
	PropPopBand    = rdf.NewIRI(vocab.External + "populationBand")
	ExternalGraph  = rdf.NewIRI(vocab.External + "graph")
	PropNeighbours = rdf.NewIRI(vocab.Schema + "neighbourOf")
)

// Member IRI constructors for the dictionary (dic) namespaces.
func CitizenIRI(code string) rdf.Term {
	return rdf.NewIRI(vocab.EurostatDic + "citizen#" + code)
}

func GeoIRI(code string) rdf.Term {
	return rdf.NewIRI(vocab.EurostatDic + "geo#" + code)
}

func SexIRI(code string) rdf.Term { return rdf.NewIRI(vocab.EurostatDic + "sex#" + code) }

func AgeIRI(code string) rdf.Term { return rdf.NewIRI(vocab.EurostatDic + "age#" + code) }

func AgeClassIRI(code string) rdf.Term {
	return rdf.NewIRI(vocab.EurostatDic + "ageclass#" + code)
}

func AppTypeIRI(code string) rdf.Term {
	return rdf.NewIRI(vocab.EurostatDic + "asyl_app#" + code)
}

func ContinentIRI(code string) rdf.Term {
	return rdf.NewIRI(vocab.EurostatDic + "continent#" + code)
}

func MonthIRI(year, month int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%stime#%04dM%02d", vocab.EurostatDic, year, month))
}

func QuarterIRI(year, q int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%stime#%04dQ%d", vocab.EurostatDic, year, q))
}

func YearIRI(year int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%stime#%04d", vocab.EurostatDic, year))
}

func PolOrgIRI(code string) rdf.Term {
	return rdf.NewIRI(vocab.External + "org#" + code)
}

func PopBandIRI(code string) rdf.Term {
	return rdf.NewIRI(vocab.External + "popband#" + code)
}

// Generate produces a deterministic synthetic dataset for the
// configuration.
func Generate(cfg Config) *Dataset {
	if cfg.StartYear == 0 {
		cfg.StartYear = 2013
	}
	if cfg.EndYear == 0 {
		cfg.EndYear = cfg.StartYear + 1
	}
	if cfg.TargetObservations <= 0 {
		cfg.TargetObservations = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Config: cfg}

	d.generateDSD()
	d.generateDimensionInstances(rng)
	d.generateObservations(rng)
	if cfg.IncludeExternal {
		d.generateExternal()
	}
	return d
}

// generateDSD emits the QB data structure definition shown in the
// paper's Section II.
func (d *Dataset) generateDSD() {
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(DSDIRI, vocab.RDFType, vocab.QBDataStructureDefinition))
	comp := 0
	addComponent := func(role, prop rdf.Term) {
		comp++
		c := rdf.NewBlank(fmt.Sprintf("dsdcomp%d", comp))
		g.Add(rdf.NewTriple(DSDIRI, vocab.QBComponent, c))
		g.Add(rdf.NewTriple(c, role, prop))
	}
	addComponent(vocab.QBDimension, PropTime)
	addComponent(vocab.QBDimension, PropCitizen)
	addComponent(vocab.QBDimension, PropGeo)
	addComponent(vocab.QBDimension, PropSex)
	addComponent(vocab.QBDimension, PropAge)
	addComponent(vocab.QBDimension, PropAsylApp)
	addComponent(vocab.QBMeasure, PropObs)

	g.Add(rdf.NewTriple(DataSetIRI, vocab.RDFType, vocab.QBDataSet))
	g.Add(rdf.NewTriple(DataSetIRI, vocab.QBStructure, DSDIRI))
	d.CubeTriples = append(d.CubeTriples, g.Triples()...)
}

// generateDimensionInstances emits the level member data whose
// structure the Enrichment module analyses.
func (d *Dataset) generateDimensionInstances(rng *rand.Rand) {
	g := rdf.NewGraph()
	label := func(s rdf.Term, text string) {
		if d.Config.DropLabelRate > 0 && rng.Float64() < d.Config.DropLabelRate {
			return
		}
		g.Add(rdf.NewTriple(s, vocab.RDFSLabel, rdf.NewLangLiteral(text, "en")))
	}

	// Continents.
	for _, c := range Continents {
		m := ContinentIRI(c.Code)
		label(m, c.Name)
		g.Add(rdf.NewTriple(m, vocab.SKOSNotation, rdf.NewLiteral(c.Code)))
		g.Add(rdf.NewTriple(m, rdf.NewIRI(vocab.Schema+"continentName"), rdf.NewLiteral(c.Name)))
	}

	// Countries play two member roles: citizenship and destination.
	euCount := 0
	for _, c := range Countries {
		cit := CitizenIRI(c.Code)
		label(cit, c.Name)
		g.Add(rdf.NewTriple(cit, vocab.SKOSNotation, rdf.NewLiteral(c.Code)))
		g.Add(rdf.NewTriple(cit, rdf.NewIRI(vocab.Schema+"countryName"), rdf.NewLiteral(c.Name)))
		g.Add(rdf.NewTriple(cit, PropContinent, ContinentIRI(c.Continent)))
		// Quasi-FD noise: a second continent link on some members.
		if d.Config.QuasiFDNoise > 0 && rng.Float64() < d.Config.QuasiFDNoise {
			other := Continents[rng.Intn(len(Continents))]
			if other.Code == c.Continent {
				other = Continents[(rng.Intn(len(Continents)-1)+1+continentIndex(c.Continent))%len(Continents)]
			}
			g.Add(rdf.NewTriple(cit, PropContinent, ContinentIRI(other.Code)))
		}
		// A deliberately non-functional property: neighbours.
		for i := 0; i < 2; i++ {
			n := Countries[rng.Intn(len(Countries))]
			if n.Code != c.Code {
				g.Add(rdf.NewTriple(cit, PropNeighbours, CitizenIRI(n.Code)))
			}
		}
		if c.EUMember {
			euCount++
			geo := GeoIRI(c.Code)
			label(geo, c.Name)
			g.Add(rdf.NewTriple(geo, vocab.SKOSNotation, rdf.NewLiteral(c.Code)))
			g.Add(rdf.NewTriple(geo, rdf.NewIRI(vocab.Schema+"countryName"), rdf.NewLiteral(c.Name)))
			g.Add(rdf.NewTriple(geo, PropContinent, ContinentIRI(c.Continent)))
		}
	}

	// Sex, age (with age-class FD), applicant types.
	for _, s := range SexCodes {
		m := SexIRI(s.Code)
		label(m, s.Label)
		g.Add(rdf.NewTriple(m, vocab.SKOSNotation, rdf.NewLiteral(s.Code)))
	}
	for _, a := range AgeGroups {
		m := AgeIRI(a.Code)
		label(m, a.Label)
		g.Add(rdf.NewTriple(m, vocab.SKOSNotation, rdf.NewLiteral(a.Code)))
		g.Add(rdf.NewTriple(m, PropAgeClass, AgeClassIRI(a.Class)))
	}
	for _, a := range AgeClasses {
		m := AgeClassIRI(a.Code)
		label(m, a.Label)
		g.Add(rdf.NewTriple(m, vocab.SKOSNotation, rdf.NewLiteral(a.Code)))
	}
	for _, a := range AppTypes {
		m := AppTypeIRI(a.Code)
		label(m, a.Label)
		g.Add(rdf.NewTriple(m, vocab.SKOSNotation, rdf.NewLiteral(a.Code)))
	}

	// Time members: month → quarter → year FD chain.
	for y := d.Config.StartYear; y <= d.Config.EndYear; y++ {
		yi := YearIRI(y)
		label(yi, fmt.Sprintf("%d", y))
		g.Add(rdf.NewTriple(yi, vocab.SKOSNotation, rdf.NewLiteral(fmt.Sprintf("%d", y))))
		for q := 1; q <= 4; q++ {
			qi := QuarterIRI(y, q)
			label(qi, fmt.Sprintf("%d-Q%d", y, q))
			g.Add(rdf.NewTriple(qi, vocab.SKOSNotation, rdf.NewLiteral(fmt.Sprintf("%dQ%d", y, q))))
			g.Add(rdf.NewTriple(qi, PropYear, yi))
		}
		for m := 1; m <= 12; m++ {
			mi := MonthIRI(y, m)
			label(mi, fmt.Sprintf("%d-%02d", y, m))
			g.Add(rdf.NewTriple(mi, vocab.SKOSNotation, rdf.NewLiteral(fmt.Sprintf("%04dM%02d", y, m))))
			g.Add(rdf.NewTriple(mi, PropQuarter, QuarterIRI(y, (m-1)/3+1)))
			g.Add(rdf.NewTriple(mi, PropYear, yi))
		}
	}

	d.DimensionTriples = append(d.DimensionTriples, g.Triples()...)
}

func continentIndex(code string) int {
	for i, c := range Continents {
		if c.Code == code {
			return i
		}
	}
	return 0
}

// generateObservations samples the dimension cross product down to the
// target count and emits the fact triples.
func (d *Dataset) generateObservations(rng *rand.Rand) {
	months := 0
	for y := d.Config.StartYear; y <= d.Config.EndYear; y++ {
		months += 12
	}
	dests := DestinationCountries()
	total := len(Countries) * len(dests) * len(SexCodes) * len(AgeGroups) * len(AppTypes) * months
	p := float64(d.Config.TargetObservations) / float64(total)
	if p > 1 {
		p = 1
	}

	g := rdf.NewGraph()
	seq := 0
	for _, cit := range Countries {
		for _, dest := range dests {
			for _, sex := range SexCodes {
				for _, age := range AgeGroups {
					for _, app := range AppTypes {
						for y := d.Config.StartYear; y <= d.Config.EndYear; y++ {
							for m := 1; m <= 12; m++ {
								if rng.Float64() >= p {
									continue
								}
								seq++
								value := int64(rng.Intn(120) + 1)
								if cit.Continent == "AS" || cit.Continent == "AF" {
									// Reflect the real skew of 2013–14.
									value *= 3
								}
								obs := rdf.NewIRI(fmt.Sprintf("%smigr_asyappctzm/o%06d", vocab.EurostatData, seq))
								g.Add(rdf.NewTriple(obs, vocab.RDFType, vocab.QBObservation))
								g.Add(rdf.NewTriple(obs, vocab.QBDataSetP, DataSetIRI))
								g.Add(rdf.NewTriple(obs, PropCitizen, CitizenIRI(cit.Code)))
								g.Add(rdf.NewTriple(obs, PropGeo, GeoIRI(dest.Code)))
								g.Add(rdf.NewTriple(obs, PropSex, SexIRI(sex.Code)))
								g.Add(rdf.NewTriple(obs, PropAge, AgeIRI(age.Code)))
								g.Add(rdf.NewTriple(obs, PropAsylApp, AppTypeIRI(app.Code)))
								g.Add(rdf.NewTriple(obs, PropTime, MonthIRI(y, m)))
								g.Add(rdf.NewTriple(obs, PropObs, rdf.NewInteger(value)))
								d.Observations = append(d.Observations, Observation{
									Citizen: cit.Code, Geo: dest.Code, Sex: sex.Code,
									Age: age.Code, AppType: app.Code,
									Year: y, Month: m, Value: value,
								})
							}
						}
					}
				}
			}
		}
	}
	d.CubeTriples = append(d.CubeTriples, g.Triples()...)
}

// generateExternal emits the simulated external linked data set: for
// each country, its political organization and population band. The
// paper demonstrates extracting dimensional information from external
// sources such as DBpedia; this graph plays that role.
func (d *Dataset) generateExternal() {
	g := rdf.NewGraph()
	orgs := map[string]string{"EU": "European Union", "EFTA": "EFTA", "OTHER": "Non-aligned"}
	for code, name := range orgs {
		m := PolOrgIRI(code)
		g.Add(rdf.NewTriple(m, vocab.RDFSLabel, rdf.NewLangLiteral(name, "en")))
		g.Add(rdf.NewTriple(m, vocab.SKOSNotation, rdf.NewLiteral(code)))
	}
	for _, band := range []string{"SMALL", "MEDIUM", "LARGE"} {
		m := PopBandIRI(band)
		g.Add(rdf.NewTriple(m, vocab.RDFSLabel, rdf.NewLangLiteral(band, "en")))
		g.Add(rdf.NewTriple(m, vocab.SKOSNotation, rdf.NewLiteral(band)))
	}
	for i, c := range Countries {
		band := []string{"SMALL", "MEDIUM", "LARGE"}[i%3]
		for _, member := range []rdf.Term{CitizenIRI(c.Code), GeoIRI(c.Code)} {
			if member == GeoIRI(c.Code) && !c.EUMember {
				continue
			}
			g.Add(rdf.NewTriple(member, PropPolOrg, PolOrgIRI(c.PoliticalOrg)))
			g.Add(rdf.NewTriple(member, PropPopBand, PopBandIRI(band)))
		}
	}
	d.ExternalTriples = append(d.ExternalTriples, g.Triples()...)
}

// LoadInto inserts the dataset into a store: cube and dimension triples
// in the default graph, external triples in the external named graph.
func (d *Dataset) LoadInto(st *store.Store) {
	st.InsertTriples(rdf.Term{}, d.CubeTriples)
	st.InsertTriples(rdf.Term{}, d.DimensionTriples)
	if len(d.ExternalTriples) > 0 {
		st.InsertTriples(ExternalGraph, d.ExternalTriples)
	}
}

// NewStore generates a dataset and loads it into a fresh store.
func NewStore(cfg Config) (*store.Store, *Dataset) {
	d := Generate(cfg)
	st := store.New()
	d.LoadInto(st)
	return st, d
}
