package eurostat

import (
	"testing"

	"repro/internal/endpoint"
	"repro/internal/qb"
	"repro/internal/rdf"
	"repro/internal/vocab"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TestConfig())
	b := Generate(TestConfig())
	if len(a.Observations) != len(b.Observations) {
		t.Fatalf("non-deterministic observation count: %d vs %d", len(a.Observations), len(b.Observations))
	}
	if len(a.CubeTriples) != len(b.CubeTriples) {
		t.Fatalf("non-deterministic cube triples")
	}
	for i := range a.Observations {
		if a.Observations[i] != b.Observations[i] {
			t.Fatalf("observation %d differs", i)
		}
	}
}

func TestGenerateTargetScale(t *testing.T) {
	cfg := TestConfig()
	cfg.TargetObservations = 2000
	d := Generate(cfg)
	n := len(d.Observations)
	if n < 1600 || n > 2400 {
		t.Fatalf("observation count %d not within 20%% of target 2000", n)
	}
}

func TestDemoDatasetScale(t *testing.T) {
	// C1: the paper's demo subset has approximately 80,000 observations
	// over 2013–2014.
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	d := Generate(DefaultConfig())
	n := len(d.Observations)
	if n < 72000 || n > 88000 {
		t.Fatalf("demo dataset has %d observations, want ≈80000", n)
	}
	for _, o := range d.Observations {
		if o.Year < 2013 || o.Year > 2014 {
			t.Fatalf("observation outside 2013–2014: %+v", o)
		}
	}
}

func TestGeneratedQBStructure(t *testing.T) {
	st, _ := NewStore(TestConfig())
	c := endpoint.NewLocal(st)

	dss, err := qb.ListDataSets(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 1 || dss[0].IRI != DataSetIRI || dss[0].Structure != DSDIRI {
		t.Fatalf("datasets = %+v", dss)
	}
	dsd, err := qb.LoadDSD(c, DSDIRI)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dsd.Dimensions()); got != 6 {
		t.Fatalf("dimensions = %d, want 6", got)
	}
	if got := len(dsd.Measures()); got != 1 {
		t.Fatalf("measures = %d, want 1", got)
	}
	if probs := qb.Validate(dsd); len(probs) != 0 {
		t.Fatalf("validation problems: %v", probs)
	}
}

func TestObservationCountMatches(t *testing.T) {
	st, d := NewStore(TestConfig())
	c := endpoint.NewLocal(st)
	n, err := qb.ObservationCount(c, DataSetIRI)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(d.Observations) {
		t.Fatalf("endpoint count %d != generated %d", n, len(d.Observations))
	}
}

func TestContinentFDHolds(t *testing.T) {
	st, _ := NewStore(TestConfig())
	// Without noise, every citizenship member has exactly one continent.
	c := endpoint.NewLocal(st)
	res, err := c.Select(`
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
SELECT ?m (COUNT(?cont) AS ?n) WHERE { ?m schema:continent ?cont } GROUP BY ?m HAVING (COUNT(?cont) > 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("%d members violate the continent FD without noise", res.Len())
	}
}

func TestQuasiFDNoiseInjection(t *testing.T) {
	cfg := TestConfig()
	cfg.QuasiFDNoise = 0.3
	st, _ := NewStore(cfg)
	c := endpoint.NewLocal(st)
	res, err := c.Select(`
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
SELECT ?m (COUNT(?cont) AS ?n) WHERE { ?m schema:continent ?cont } GROUP BY ?m HAVING (COUNT(?cont) > 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("noise rate 0.3 produced no FD violations")
	}
	if res.Len() > len(Countries) {
		t.Fatalf("more violating members (%d) than countries", res.Len())
	}
}

func TestExternalGraphSeparation(t *testing.T) {
	st, d := NewStore(TestConfig())
	if len(d.ExternalTriples) == 0 {
		t.Fatal("external triples missing")
	}
	if st.Len(ExternalGraph) != len(d.ExternalTriples) {
		t.Fatalf("external graph has %d triples, want %d", st.Len(ExternalGraph), len(d.ExternalTriples))
	}
	// politicalOrg must not leak into the default graph.
	if got := len(st.MatchAll(rdf.Term{}, rdf.Term{}, PropPolOrg, rdf.Term{})); got != 0 {
		t.Fatalf("politicalOrg leaked into default graph: %d triples", got)
	}
}

func TestTimeHierarchyInstances(t *testing.T) {
	st, _ := NewStore(TestConfig())
	c := endpoint.NewLocal(st)
	res, err := c.Select(`
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
SELECT ?m ?q ?y WHERE { ?m schema:quarter ?q . ?q schema:year ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 24 { // 24 months over two years
		t.Fatalf("month members with quarter+year = %d, want 24", res.Len())
	}
}

func TestTripleInventoryRatio(t *testing.T) {
	// C6: observations dominate; dimension data is orders of magnitude
	// smaller.
	cfg := TestConfig()
	cfg.TargetObservations = 5000
	d := Generate(cfg)
	obsTriples := len(d.CubeTriples)
	dimTriples := len(d.DimensionTriples)
	if obsTriples < 10*dimTriples {
		t.Fatalf("observation triples (%d) should dominate dimension triples (%d)", obsTriples, dimTriples)
	}
}

func TestDropLabelRate(t *testing.T) {
	cfg := TestConfig()
	cfg.DropLabelRate = 1.0
	d := Generate(cfg)
	for _, tr := range d.DimensionTriples {
		if tr.P == vocab.RDFSLabel {
			t.Fatalf("label emitted despite DropLabelRate=1: %v", tr)
		}
	}
}

func TestGeographyTables(t *testing.T) {
	if len(DestinationCountries()) != 28 {
		t.Fatalf("EU destinations = %d, want 28", len(DestinationCountries()))
	}
	if ContinentName("AF") != "Africa" {
		t.Fatal("continent lookup broken")
	}
	if _, ok := CountryByCode("SY"); !ok {
		t.Fatal("Syria missing")
	}
	if _, ok := CountryByCode("??"); ok {
		t.Fatal("bogus code resolved")
	}
	// Every country must reference a declared continent.
	for _, c := range Countries {
		if ContinentName(c.Continent) == c.Continent {
			t.Errorf("country %s has unknown continent %s", c.Code, c.Continent)
		}
	}
}
