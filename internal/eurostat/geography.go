// Package eurostat generates a deterministic synthetic replica of the
// Eurostat migr_asyappctzm linked-data cube (monthly asylum applications
// by citizenship) used in the QB2OLAP paper's demonstration. The real
// cube is Linked Open Data behind a public endpoint; this generator
// reproduces its schema shape — the same dimension components, the same
// instance-property structure (the functional dependencies the
// Enrichment module must discover), and the same 2013–2014 monthly
// subset of roughly 80,000 observations — without network access.
package eurostat

// Country describes one country of the synthetic geography, carrying
// the instance properties that drive hierarchy discovery.
type Country struct {
	Code         string // Eurostat-style code, e.g. "SY"
	Name         string
	Continent    string // continent code, e.g. "AF"
	PoliticalOrg string // "EU", "EFTA", "OTHER" — external-graph property
	EUMember     bool   // destination countries are EU members
}

// Continent describes one continent member.
type Continent struct {
	Code string
	Name string
}

// Continents is the synthetic continent table.
var Continents = []Continent{
	{"AF", "Africa"},
	{"AS", "Asia"},
	{"EU_C", "Europe"},
	{"AM", "America"},
	{"OC", "Oceania"},
}

// Countries is the synthetic country table: EU destinations plus the
// main citizenship origins of the 2013–2014 asylum statistics.
var Countries = []Country{
	// EU destination countries (also possible citizenships).
	{"AT", "Austria", "EU_C", "EU", true},
	{"BE", "Belgium", "EU_C", "EU", true},
	{"BG", "Bulgaria", "EU_C", "EU", true},
	{"CY", "Cyprus", "EU_C", "EU", true},
	{"CZ", "Czechia", "EU_C", "EU", true},
	{"DE", "Germany", "EU_C", "EU", true},
	{"DK", "Denmark", "EU_C", "EU", true},
	{"EE", "Estonia", "EU_C", "EU", true},
	{"EL", "Greece", "EU_C", "EU", true},
	{"ES", "Spain", "EU_C", "EU", true},
	{"FI", "Finland", "EU_C", "EU", true},
	{"FR", "France", "EU_C", "EU", true},
	{"HR", "Croatia", "EU_C", "EU", true},
	{"HU", "Hungary", "EU_C", "EU", true},
	{"IE", "Ireland", "EU_C", "EU", true},
	{"IT", "Italy", "EU_C", "EU", true},
	{"LT", "Lithuania", "EU_C", "EU", true},
	{"LU", "Luxembourg", "EU_C", "EU", true},
	{"LV", "Latvia", "EU_C", "EU", true},
	{"MT", "Malta", "EU_C", "EU", true},
	{"NL", "Netherlands", "EU_C", "EU", true},
	{"PL", "Poland", "EU_C", "EU", true},
	{"PT", "Portugal", "EU_C", "EU", true},
	{"RO", "Romania", "EU_C", "EU", true},
	{"SE", "Sweden", "EU_C", "EU", true},
	{"SI", "Slovenia", "EU_C", "EU", true},
	{"SK", "Slovakia", "EU_C", "EU", true},
	{"UK", "United Kingdom", "EU_C", "EU", true},

	// Non-EU European citizenships.
	{"CH", "Switzerland", "EU_C", "EFTA", false},
	{"NO", "Norway", "EU_C", "EFTA", false},
	{"RS", "Serbia", "EU_C", "OTHER", false},
	{"AL", "Albania", "EU_C", "OTHER", false},
	{"XK", "Kosovo", "EU_C", "OTHER", false},
	{"BA", "Bosnia and Herzegovina", "EU_C", "OTHER", false},
	{"MK", "North Macedonia", "EU_C", "OTHER", false},
	{"RU", "Russia", "EU_C", "OTHER", false},
	{"UA", "Ukraine", "EU_C", "OTHER", false},

	// African citizenships.
	{"NG", "Nigeria", "AF", "OTHER", false},
	{"ER", "Eritrea", "AF", "OTHER", false},
	{"SO", "Somalia", "AF", "OTHER", false},
	{"GM", "Gambia", "AF", "OTHER", false},
	{"ML", "Mali", "AF", "OTHER", false},
	{"SN", "Senegal", "AF", "OTHER", false},
	{"DZ", "Algeria", "AF", "OTHER", false},
	{"MA", "Morocco", "AF", "OTHER", false},
	{"EG", "Egypt", "AF", "OTHER", false},
	{"SD", "Sudan", "AF", "OTHER", false},
	{"CD", "DR Congo", "AF", "OTHER", false},
	{"GN", "Guinea", "AF", "OTHER", false},
	{"CI", "Ivory Coast", "AF", "OTHER", false},
	{"ET", "Ethiopia", "AF", "OTHER", false},
	{"LY", "Libya", "AF", "OTHER", false},

	// Asian citizenships.
	{"SY", "Syria", "AS", "OTHER", false},
	{"AF_C", "Afghanistan", "AS", "OTHER", false},
	{"IQ", "Iraq", "AS", "OTHER", false},
	{"IR", "Iran", "AS", "OTHER", false},
	{"PK", "Pakistan", "AS", "OTHER", false},
	{"BD", "Bangladesh", "AS", "OTHER", false},
	{"LK", "Sri Lanka", "AS", "OTHER", false},
	{"CN", "China", "AS", "OTHER", false},
	{"GE", "Georgia", "AS", "OTHER", false},
	{"AM_C", "Armenia", "AS", "OTHER", false},
	{"TR", "Turkey", "AS", "OTHER", false},
	{"VN", "Vietnam", "AS", "OTHER", false},
	{"IN", "India", "AS", "OTHER", false},

	// American citizenships.
	{"US", "United States", "AM", "OTHER", false},
	{"CO", "Colombia", "AM", "OTHER", false},
	{"VE", "Venezuela", "AM", "OTHER", false},
	{"HT", "Haiti", "AM", "OTHER", false},

	// Oceanian citizenship (keeps every continent populated).
	{"AU", "Australia", "OC", "OTHER", false},
}

// SexCodes are the sex dimension members.
var SexCodes = []struct{ Code, Label string }{
	{"M", "Males"},
	{"F", "Females"},
	{"T", "Total"},
}

// AgeGroup pairs an age band with its coarser class (an extra FD used
// to discover a second time-invariant hierarchy).
type AgeGroup struct {
	Code  string
	Label string
	Class string // "MINOR" or "ADULT"
}

// AgeGroups are the age dimension members.
var AgeGroups = []AgeGroup{
	{"Y_LT14", "Less than 14 years", "MINOR"},
	{"Y14-17", "From 14 to 17 years", "MINOR"},
	{"Y18-34", "From 18 to 34 years", "ADULT"},
	{"Y35-64", "From 35 to 64 years", "ADULT"},
	{"Y_GE65", "65 years or over", "ADULT"},
}

// AgeClasses are the coarser age classification members.
var AgeClasses = []struct{ Code, Label string }{
	{"MINOR", "Minors"},
	{"ADULT", "Adults"},
}

// AppTypes are the asylum applicant type members.
var AppTypes = []struct{ Code, Label string }{
	{"ASY_APP", "Asylum applicant"},
	{"ASY_APP_FT", "First-time asylum applicant"},
}

// DestinationCountries returns the EU member states that act as
// destination (geo) members.
func DestinationCountries() []Country {
	var out []Country
	for _, c := range Countries {
		if c.EUMember {
			out = append(out, c)
		}
	}
	return out
}

// ContinentName resolves a continent code to its name.
func ContinentName(code string) string {
	for _, c := range Continents {
		if c.Code == code {
			return c.Name
		}
	}
	return code
}

// CountryByCode resolves a country code.
func CountryByCode(code string) (Country, bool) {
	for _, c := range Countries {
		if c.Code == code {
			return c, true
		}
	}
	return Country{}, false
}
