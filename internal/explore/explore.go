// Package explore implements the QB2OLAP Exploration module: choosing a
// QB4OLAP cube on an endpoint and navigating its dimension structures
// and instances — dimension/hierarchy/level trees, level members, and
// the member roll-up graph the paper's GUI visualizes (Figure 5). The
// GUI is replaced by text renderings suitable for a CLI.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/endpoint"
	"repro/internal/qb4olap"
	"repro/internal/rdf"
)

// Explorer navigates QB4OLAP cubes on an endpoint.
type Explorer struct {
	client endpoint.SPARQLClient
}

// New returns an explorer over the endpoint.
func New(c endpoint.SPARQLClient) *Explorer {
	return &Explorer{client: c}
}

// Cubes lists the QB4OLAP cube structures available on the endpoint.
func (e *Explorer) Cubes() ([]rdf.Term, error) {
	return qb4olap.ListCubes(e.client)
}

// Schema loads the full schema of one cube.
func (e *Explorer) Schema(dsd rdf.Term) (*qb4olap.CubeSchema, error) {
	return qb4olap.LoadCubeSchema(e.client, dsd)
}

// Member is a level member with its display label.
type Member struct {
	IRI   rdf.Term
	Label string
}

// Members lists the members of a level (via qb4o:memberOf), with labels
// when present.
func (e *Explorer) Members(level rdf.Term) ([]Member, error) {
	res, err := e.client.Select(fmt.Sprintf(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?m ?label WHERE {
  ?m qb4o:memberOf <%s> .
  OPTIONAL { ?m rdfs:label ?label }
} ORDER BY ?m`, level.Value))
	if err != nil {
		return nil, fmt.Errorf("explore: members of %s: %w", level.Value, err)
	}
	var out []Member
	seen := make(map[rdf.Term]bool)
	for i := range res.Rows {
		m := res.Binding(i, "m")
		if seen[m] {
			continue
		}
		seen[m] = true
		out = append(out, Member{IRI: m, Label: res.Binding(i, "label").Value})
	}
	return out, nil
}

// RollupEdge is one member-to-member roll-up link.
type RollupEdge struct {
	Child  rdf.Term
	Parent rdf.Term
}

// RollupEdges lists the instance roll-up pairs of a hierarchy step.
func (e *Explorer) RollupEdges(step qb4olap.HierarchyStep) ([]RollupEdge, error) {
	res, err := e.client.Select(fmt.Sprintf(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT ?c ?p WHERE {
  ?c qb4o:memberOf <%s> ; <%s> ?p .
  ?p qb4o:memberOf <%s> .
} ORDER BY ?c ?p`, step.Child.Value, step.Rollup.Value, step.Parent.Value))
	if err != nil {
		return nil, fmt.Errorf("explore: rollup edges of %s: %w", step.IRI.Value, err)
	}
	out := make([]RollupEdge, 0, res.Len())
	for i := range res.Rows {
		out = append(out, RollupEdge{Child: res.Binding(i, "c"), Parent: res.Binding(i, "p")})
	}
	return out, nil
}

// Cluster groups the members of a child level under their parent
// members, reproducing the "cluster instances by level value" view of
// the paper's Figure 5.
type Cluster struct {
	Parent  Member
	Members []Member
}

// ClusterByParent clusters child-level members by their roll-up target.
func (e *Explorer) ClusterByParent(step qb4olap.HierarchyStep) ([]Cluster, error) {
	edges, err := e.RollupEdges(step)
	if err != nil {
		return nil, err
	}
	labels, err := e.labelMap()
	if err != nil {
		return nil, err
	}
	byParent := make(map[rdf.Term][]Member)
	var order []rdf.Term
	for _, edge := range edges {
		if _, ok := byParent[edge.Parent]; !ok {
			order = append(order, edge.Parent)
		}
		byParent[edge.Parent] = append(byParent[edge.Parent], Member{IRI: edge.Child, Label: labels[edge.Child]})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Compare(order[j]) < 0 })
	out := make([]Cluster, 0, len(order))
	for _, p := range order {
		out = append(out, Cluster{
			Parent:  Member{IRI: p, Label: labels[p]},
			Members: byParent[p],
		})
	}
	return out, nil
}

func (e *Explorer) labelMap() (map[rdf.Term]string, error) {
	res, err := e.client.Select(`
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT ?m ?label WHERE { ?m qb4o:memberOf ?l ; rdfs:label ?label }`)
	if err != nil {
		return nil, err
	}
	out := make(map[rdf.Term]string, res.Len())
	for i := range res.Rows {
		out[res.Binding(i, "m")] = res.Binding(i, "label").Value
	}
	return out, nil
}

// LevelSummary pairs a level with its member count.
type LevelSummary struct {
	Level   rdf.Term
	Members int
}

// DimensionSummary reports the member counts of every level of a
// dimension (base level first), giving the at-a-glance cardinality view
// of the exploration GUI.
func (e *Explorer) DimensionSummary(d *qb4olap.Dimension) ([]LevelSummary, error) {
	var out []LevelSummary
	for _, lvl := range d.LevelIRIs() {
		res, err := e.client.Select(fmt.Sprintf(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE { ?m qb4o:memberOf <%s> }`, lvl.Value))
		if err != nil {
			return nil, fmt.Errorf("explore: summarizing %s: %w", lvl.Value, err)
		}
		n := 0
		if res.Len() > 0 {
			fmt.Sscanf(res.Binding(0, "n").Value, "%d", &n)
		}
		out = append(out, LevelSummary{Level: lvl, Members: n})
	}
	return out, nil
}

// RenderSchemaTree renders the cube structure as the tree the
// Enrichment GUI shows (Figure 4): dimensions, hierarchies, levels with
// attributes, and measures.
func RenderSchemaTree(s *qb4olap.CubeSchema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cube %s\n", shorten(s.DSD))
	for _, d := range s.Dimensions {
		fmt.Fprintf(&b, "├─ Dimension %s (base level %s)\n", shorten(d.IRI), shorten(d.BaseLevel))
		for _, h := range d.Hierarchies {
			fmt.Fprintf(&b, "│  ├─ Hierarchy %s\n", shorten(h.IRI))
			for _, l := range h.Levels {
				fmt.Fprintf(&b, "│  │  ├─ Level %s", shorten(l))
				if lv, ok := s.Levels[l]; ok && len(lv.Attributes) > 0 {
					var names []string
					for _, a := range lv.Attributes {
						names = append(names, shorten(a.IRI))
					}
					fmt.Fprintf(&b, " [attributes: %s]", strings.Join(names, ", "))
				}
				b.WriteByte('\n')
			}
			for _, st := range h.Steps {
				fmt.Fprintf(&b, "│  │  ├─ Step %s → %s (%s, rollup %s)\n",
					shorten(st.Child), shorten(st.Parent), st.Cardinality, shorten(st.Rollup))
			}
		}
	}
	for _, m := range s.Measures {
		fmt.Fprintf(&b, "├─ Measure %s (%s)\n", shorten(m.Property), m.Agg)
	}
	return b.String()
}

// RenderClusters renders the clustered instance view as text.
func RenderClusters(clusters []Cluster) string {
	var b strings.Builder
	for _, c := range clusters {
		name := c.Parent.Label
		if name == "" {
			name = shorten(c.Parent.IRI)
		}
		fmt.Fprintf(&b, "%s (%d members)\n", name, len(c.Members))
		for _, m := range c.Members {
			label := m.Label
			if label == "" {
				label = shorten(m.IRI)
			}
			fmt.Fprintf(&b, "  - %s\n", label)
		}
	}
	return b.String()
}

func shorten(t rdf.Term) string {
	v := t.Value
	if i := strings.LastIndexAny(v, "#/"); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

// FindMembers searches level members whose label or notation contains
// the given text (case-insensitive). This addresses the usability gap
// the paper motivates in Section II(c): without descriptive attributes,
// a user would need to know the IRI representing Nigeria; with them,
// she can search by name.
func (e *Explorer) FindMembers(text string) ([]Member, error) {
	res, err := e.client.Select(fmt.Sprintf(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
SELECT DISTINCT ?m ?label WHERE {
  ?m qb4o:memberOf ?level .
  { ?m rdfs:label ?label } UNION { ?m skos:notation ?label }
  FILTER(CONTAINS(LCASE(STR(?label)), LCASE(%q)))
} ORDER BY ?m`, text))
	if err != nil {
		return nil, fmt.Errorf("explore: searching members: %w", err)
	}
	var out []Member
	seen := make(map[rdf.Term]bool)
	for i := range res.Rows {
		m := res.Binding(i, "m")
		if seen[m] {
			continue
		}
		seen[m] = true
		out = append(out, Member{IRI: m, Label: res.Binding(i, "label").Value})
	}
	return out, nil
}
