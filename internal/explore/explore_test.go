package explore

import (
	"strings"
	"testing"

	"repro/internal/demo"
	"repro/internal/eurostat"
	"repro/internal/qb4olap"
	"repro/internal/rdf"
)

func buildDemo(t *testing.T) *demo.Enriched {
	t.Helper()
	d, err := demo.Build(eurostat.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestListCubes(t *testing.T) {
	d := buildDemo(t)
	ex := New(d.Client)
	cubes, err := ex.Cubes()
	if err != nil {
		t.Fatal(err)
	}
	if len(cubes) != 1 {
		t.Fatalf("cubes = %v", cubes)
	}
	if cubes[0] != d.Schema.DSD {
		t.Fatalf("cube = %v, want %v", cubes[0], d.Schema.DSD)
	}
}

func TestLoadSchemaRoundTrip(t *testing.T) {
	d := buildDemo(t)
	ex := New(d.Client)
	loaded, err := ex.Schema(d.Schema.DSD)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Dimensions) != len(d.Schema.Dimensions) {
		t.Fatalf("dimensions: loaded %d, committed %d", len(loaded.Dimensions), len(d.Schema.Dimensions))
	}
	if len(loaded.Measures) != 1 || loaded.Measures[0].Agg != qb4olap.Sum {
		t.Fatalf("measures = %+v", loaded.Measures)
	}
	// The citizenship dimension must round-trip with its full hierarchy.
	dim, ok := loaded.DimensionOfLevel(eurostat.PropCitizen)
	if !ok {
		t.Fatal("citizenship dimension lost")
	}
	if dim.BaseLevel != eurostat.PropCitizen {
		t.Fatalf("base level = %v", dim.BaseLevel)
	}
	path, ok := dim.PathToLevel(eurostat.PropContinent)
	if !ok || len(path) != 1 {
		t.Fatalf("path to continent: %v %v", path, ok)
	}
	if path[0].Rollup != eurostat.PropContinent {
		t.Fatalf("rollup property lost: %v", path[0].Rollup)
	}
	// Time hierarchy: month -> quarter -> year.
	tdim, ok := loaded.DimensionOfLevel(eurostat.PropTime)
	if !ok {
		t.Fatal("time dimension lost")
	}
	if p, ok := tdim.PathToLevel(eurostat.PropYear); !ok || len(p) != 2 {
		t.Fatalf("time path: %v %v", p, ok)
	}
	if probs := loaded.Validate(); len(probs) != 0 {
		t.Fatalf("loaded schema invalid: %v", probs)
	}
}

func TestMembers(t *testing.T) {
	d := buildDemo(t)
	ex := New(d.Client)
	ms, err := ex.Members(eurostat.PropContinent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(eurostat.Continents) {
		t.Fatalf("continent members = %d, want %d", len(ms), len(eurostat.Continents))
	}
	found := false
	for _, m := range ms {
		if m.Label == "Africa" {
			found = true
		}
	}
	if !found {
		t.Error("Africa label missing")
	}
}

func TestRollupEdgesAndClusters(t *testing.T) {
	d := buildDemo(t)
	ex := New(d.Client)
	loaded, err := ex.Schema(d.Schema.DSD)
	if err != nil {
		t.Fatal(err)
	}
	dim, _ := loaded.DimensionOfLevel(eurostat.PropCitizen)
	path, _ := dim.PathToLevel(eurostat.PropContinent)
	step := path[0]

	edges, err := ex.RollupEdges(step)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != len(eurostat.Countries) {
		t.Fatalf("edges = %d, want %d", len(edges), len(eurostat.Countries))
	}

	clusters, err := ex.ClusterByParent(step)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != len(eurostat.Continents) {
		t.Fatalf("clusters = %d, want %d", len(clusters), len(eurostat.Continents))
	}
	total := 0
	byName := map[string]int{}
	for _, c := range clusters {
		total += len(c.Members)
		byName[c.Parent.Label] = len(c.Members)
	}
	if total != len(eurostat.Countries) {
		t.Fatalf("clustered members = %d, want %d", total, len(eurostat.Countries))
	}
	wantAfrica := 0
	for _, c := range eurostat.Countries {
		if c.Continent == "AF" {
			wantAfrica++
		}
	}
	if byName["Africa"] != wantAfrica {
		t.Fatalf("Africa cluster = %d, want %d", byName["Africa"], wantAfrica)
	}
}

func TestRenderSchemaTree(t *testing.T) {
	d := buildDemo(t)
	out := RenderSchemaTree(d.Schema)
	for _, want := range []string{"citizenDim", "continent", "Hierarchy", "Measure obsValue (sum)", "Step citizen → continent"} {
		if !strings.Contains(out, want) {
			t.Errorf("schema tree missing %q:\n%s", want, out)
		}
	}
}

func TestRenderClusters(t *testing.T) {
	d := buildDemo(t)
	ex := New(d.Client)
	dim, _ := d.Schema.DimensionOfLevel(eurostat.PropCitizen)
	path, _ := dim.PathToLevel(eurostat.PropContinent)
	clusters, err := ex.ClusterByParent(path[0])
	if err != nil {
		t.Fatal(err)
	}
	out := RenderClusters(clusters)
	if !strings.Contains(out, "Africa") || !strings.Contains(out, "Nigeria") {
		t.Errorf("cluster rendering missing expected names:\n%s", out)
	}
}

func TestShorten(t *testing.T) {
	if shorten(rdf.NewIRI("http://x/a#b")) != "b" {
		t.Error("fragment shortening broken")
	}
	if shorten(rdf.NewIRI("http://x/a/c")) != "c" {
		t.Error("path shortening broken")
	}
	if shorten(rdf.NewIRI("plain")) != "plain" {
		t.Error("plain shortening broken")
	}
}

func TestDimensionSummary(t *testing.T) {
	d := buildDemo(t)
	ex := New(d.Client)
	dim, _ := d.Schema.DimensionOfLevel(eurostat.PropCitizen)
	sums, err := ex.DimensionSummary(dim)
	if err != nil {
		t.Fatal(err)
	}
	// citizen (all countries observed), continent (5), all (1).
	if len(sums) != 3 {
		t.Fatalf("levels = %d: %v", len(sums), sums)
	}
	if sums[0].Level != eurostat.PropCitizen || sums[0].Members == 0 {
		t.Fatalf("base summary: %+v", sums[0])
	}
	if sums[1].Members != len(eurostat.Continents) {
		t.Fatalf("continent members = %d", sums[1].Members)
	}
	if sums[2].Members != 1 {
		t.Fatalf("all members = %d", sums[2].Members)
	}
}

func TestFindMembers(t *testing.T) {
	d := buildDemo(t)
	ex := New(d.Client)
	ms, err := ex.FindMembers("nigeria")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || !strings.HasSuffix(ms[0].IRI.Value, "citizen#NG") {
		t.Fatalf("FindMembers(nigeria) = %v", ms)
	}
	// Notation search too (codes are notations).
	ms, err = ex.FindMembers("2013Q")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("FindMembers(2013Q) = %d members", len(ms))
	}
	// No match.
	ms, err = ex.FindMembers("atlantis")
	if err != nil || len(ms) != 0 {
		t.Fatalf("FindMembers(atlantis) = %v, %v", ms, err)
	}
}
