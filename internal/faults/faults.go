// Package faults provides deterministic, seedable fault injection for
// the SPARQL protocol path. An Injector draws fault decisions from a
// seeded PRNG — the same seed and request sequence always produce the
// same faults, which is what makes the chaos suite reproducible — and
// applies them either on the client side (RoundTripper) or the server
// side (Handler, wired to `sparqld -fault-profile`).
//
// Injected failure modes model what a flaky network and an overloaded
// endpoint actually do: connections dropped without a response, 5xx
// bursts, slow responses, and response bodies truncated mid-stream.
package faults

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"
)

// Kind enumerates the injected failure modes.
type Kind int

const (
	// None passes the request through untouched.
	None Kind = iota
	// Drop fails the exchange with a connection-level error (client
	// side) or an aborted response (server side); no HTTP status is
	// ever observed.
	Drop
	// Err5xx answers 503 Service Unavailable without doing the work.
	Err5xx
	// Slow delays the exchange by the profile's Delay before letting
	// it proceed, honoring the request context during the wait.
	Slow
	// Truncate lets the exchange run but cuts the response body short,
	// so the caller sees a partial payload.
	Truncate

	numKinds
)

// String names the kind for counters and logs.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Err5xx:
		return "5xx"
	case Slow:
		return "slow"
	case Truncate:
		return "truncate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrDropped is the connection-level error a client-side Drop fault
// surfaces (wrapped in the transport error the HTTP client returns).
var ErrDropped = errors.New("faults: connection dropped")

// truncateAfterBytes is how much of a truncated response body gets
// through. It is deliberately tiny so a Truncate fault lands mid-JSON
// for any non-trivial result set.
const truncateAfterBytes = 32

// Profile configures an Injector: one probability per fault kind and
// the slow-response delay.
type Profile struct {
	// Name identifies the profile in flags and logs.
	Name string
	// DropRate, ErrRate, SlowRate and TruncateRate are per-request
	// probabilities in [0, 1], resolved in that order from a single
	// uniform draw; their sum must not exceed 1.
	DropRate, ErrRate, SlowRate, TruncateRate float64
	// Delay is the latency a Slow fault injects.
	Delay time.Duration
	// MaxFaults, when positive, bounds the total number of injected
	// faults; once spent, every request passes through. Chaos tests
	// use it to guarantee eventual progress under aggressive rates.
	MaxFaults int64
}

// Enabled reports whether the profile can inject anything.
func (p Profile) Enabled() bool {
	return p.DropRate > 0 || p.ErrRate > 0 || p.SlowRate > 0 || p.TruncateRate > 0
}

// ByName resolves a named profile from the catalog wired to
// `sparqld -fault-profile`: off, drops, flaky5xx, slow, truncate,
// chaos.
func ByName(name string) (Profile, bool) {
	switch name {
	case "", "off":
		return Profile{Name: "off"}, true
	case "drops":
		return Profile{Name: "drops", DropRate: 0.3}, true
	case "flaky5xx":
		return Profile{Name: "flaky5xx", ErrRate: 0.3}, true
	case "slow":
		return Profile{Name: "slow", SlowRate: 0.5, Delay: 50 * time.Millisecond}, true
	case "truncate":
		return Profile{Name: "truncate", TruncateRate: 0.3}, true
	case "chaos":
		return Profile{
			Name: "chaos", DropRate: 0.1, ErrRate: 0.1, SlowRate: 0.1,
			TruncateRate: 0.1, Delay: 30 * time.Millisecond,
		}, true
	default:
		return Profile{}, false
	}
}

// Names lists the catalog for flag usage strings.
func Names() []string {
	names := []string{"off", "drops", "flaky5xx", "slow", "truncate", "chaos"}
	sort.Strings(names)
	return names
}

// Injector draws seeded fault decisions and applies them. Safe for
// concurrent use; nil-safe (a nil *Injector never injects).
type Injector struct {
	profile Profile

	mu  sync.Mutex
	rng *rand.Rand

	injected atomic.Int64
	byKind   [numKinds]atomic.Int64
}

// New returns an injector for p whose decision sequence is fully
// determined by seed.
func New(p Profile, seed int64) *Injector {
	return &Injector{profile: p, rng: rand.New(rand.NewSource(seed))}
}

// Profile returns the injector's configuration.
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{Name: "off"}
	}
	return in.profile
}

// Next draws the fault decision for the next request and records it.
func (in *Injector) Next() Kind {
	if in == nil || !in.profile.Enabled() {
		return None
	}
	if max := in.profile.MaxFaults; max > 0 && in.injected.Load() >= max {
		return None
	}
	in.mu.Lock()
	draw := in.rng.Float64()
	in.mu.Unlock()
	k := None
	p := in.profile
	switch {
	case draw < p.DropRate:
		k = Drop
	case draw < p.DropRate+p.ErrRate:
		k = Err5xx
	case draw < p.DropRate+p.ErrRate+p.SlowRate:
		k = Slow
	case draw < p.DropRate+p.ErrRate+p.SlowRate+p.TruncateRate:
		k = Truncate
	}
	if k != None {
		in.injected.Add(1)
	}
	in.byKind[k].Add(1)
	return k
}

// Injected returns how many faults have been injected in total.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

// Counts returns the per-kind decision counts (including "none").
func (in *Injector) Counts() map[string]int64 {
	out := make(map[string]int64)
	if in == nil {
		return out
	}
	for k := Kind(0); k < numKinds; k++ {
		if n := in.byKind[k].Load(); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}

// RoundTripper wraps next (nil = http.DefaultTransport) with
// client-observed faults: Drop returns a connection error, Err5xx
// synthesizes a 503 without reaching the server, Slow sleeps before
// forwarding, Truncate forwards but cuts the response body short with
// io.ErrUnexpectedEOF.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &faultTransport{in: in, next: next}
}

type faultTransport struct {
	in   *Injector
	next http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.in.Next() {
	case Drop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w (%s %s)", ErrDropped, req.Method, req.URL.Path)
	case Err5xx:
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader("faults: injected 503")),
			Request: req,
		}, nil
	case Slow:
		timer := time.NewTimer(t.in.profile.Delay)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		case <-timer.C:
		}
	case Truncate:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, left: truncateAfterBytes}
		// The advertised length no longer matches what the body will
		// deliver, which is the point.
		resp.ContentLength = -1
		return resp, nil
	}
	return t.next.RoundTrip(req)
}

// truncatedBody delivers at most left bytes, then fails with
// io.ErrUnexpectedEOF — what a connection torn down mid-body looks
// like to the reader.
type truncatedBody struct {
	rc   io.ReadCloser
	left int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= n
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// Handler wraps next with server-observed faults, the hook behind
// `sparqld -fault-profile`: Drop aborts the response without a status
// (http.ErrAbortHandler), Err5xx answers 503 before the handler runs,
// Slow delays handling, Truncate serves the response but discards all
// body bytes past a small prefix, so the client receives a complete
// HTTP exchange carrying a cut payload.
func (in *Injector) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch in.Next() {
		case Drop:
			panic(http.ErrAbortHandler)
		case Err5xx:
			http.Error(w, "faults: injected 503", http.StatusServiceUnavailable)
			return
		case Slow:
			timer := time.NewTimer(in.profile.Delay)
			defer timer.Stop()
			select {
			case <-r.Context().Done():
				return
			case <-timer.C:
			}
		case Truncate:
			next.ServeHTTP(&truncatingWriter{ResponseWriter: w, left: truncateAfterBytes}, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// truncatingWriter forwards at most left body bytes and silently
// swallows the rest, so the handler completes normally while the
// client sees a short payload.
type truncatingWriter struct {
	http.ResponseWriter
	left int
}

func (w *truncatingWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return len(p), nil
	}
	send := p
	if len(send) > w.left {
		send = send[:w.left]
	}
	n, err := w.ResponseWriter.Write(send)
	w.left -= n
	if err != nil {
		return n, err
	}
	return len(p), nil
}
