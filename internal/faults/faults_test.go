package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func kindSequence(in *Injector, n int) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i] = in.Next()
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	p, ok := ByName("chaos")
	if !ok {
		t.Fatal("chaos profile missing")
	}
	a := kindSequence(New(p, 42), 200)
	b := kindSequence(New(p, 42), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	c := kindSequence(New(p, 43), 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-decision sequences")
	}
}

func TestInjectorRates(t *testing.T) {
	in := New(Profile{Name: "t", DropRate: 0.5}, 7)
	drops := 0
	for i := 0; i < 1000; i++ {
		if in.Next() == Drop {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("drop rate 0.5 produced %d/1000 drops", drops)
	}
	if got := in.Injected(); got != int64(drops) {
		t.Fatalf("Injected() = %d, want %d", got, drops)
	}
	if got := in.Counts()["drop"]; got != int64(drops) {
		t.Fatalf(`Counts()["drop"] = %d, want %d`, got, drops)
	}
}

func TestInjectorMaxFaults(t *testing.T) {
	in := New(Profile{Name: "t", DropRate: 1, MaxFaults: 3}, 1)
	faults := 0
	for i := 0; i < 100; i++ {
		if in.Next() != None {
			faults++
		}
	}
	if faults != 3 {
		t.Fatalf("MaxFaults=3 injected %d faults", faults)
	}
}

func TestByNameCatalog(t *testing.T) {
	for _, name := range Names() {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) not found", name)
		}
		if name != "off" && !p.Enabled() {
			t.Fatalf("profile %q injects nothing", name)
		}
	}
	if _, ok := ByName("no-such-profile"); ok {
		t.Fatal("unknown profile resolved")
	}
	if p, _ := ByName(""); p.Enabled() {
		t.Fatal("empty profile name should disable injection")
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if k := in.Next(); k != None {
		t.Fatalf("nil injector injected %v", k)
	}
	if in.Injected() != 0 || len(in.Counts()) != 0 {
		t.Fatal("nil injector reported activity")
	}
}

const okBody = `{"hello":"world","padding":"0123456789012345678901234567890123456789"}`

func backend() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, okBody)
	})
}

func TestRoundTripperDrop(t *testing.T) {
	srv := httptest.NewServer(backend())
	defer srv.Close()
	in := New(Profile{Name: "t", DropRate: 1}, 1)
	c := &http.Client{Transport: in.RoundTripper(nil)}
	_, err := c.Get(srv.URL)
	if err == nil {
		t.Fatal("drop fault returned a response")
	}
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("drop fault error = %v, want ErrDropped", err)
	}
}

func TestRoundTripper5xx(t *testing.T) {
	srv := httptest.NewServer(backend())
	defer srv.Close()
	in := New(Profile{Name: "t", ErrRate: 1}, 1)
	c := &http.Client{Transport: in.RoundTripper(nil)}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestRoundTripperTruncate(t *testing.T) {
	srv := httptest.NewServer(backend())
	defer srv.Close()
	in := New(Profile{Name: "t", TruncateRate: 1}, 1)
	c := &http.Client{Transport: in.RoundTripper(nil)}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read error = %v, want io.ErrUnexpectedEOF", err)
	}
	if len(body) > truncateAfterBytes {
		t.Fatalf("truncated body delivered %d bytes", len(body))
	}
}

func TestRoundTripperSlow(t *testing.T) {
	srv := httptest.NewServer(backend())
	defer srv.Close()
	delay := 30 * time.Millisecond
	in := New(Profile{Name: "t", SlowRate: 1, Delay: delay}, 1)
	c := &http.Client{Transport: in.RoundTripper(nil)}
	start := time.Now()
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < delay {
		t.Fatalf("slow fault took %v, want >= %v", d, delay)
	}
}

func TestHandler5xxAndTruncate(t *testing.T) {
	in := New(Profile{Name: "t", ErrRate: 1, MaxFaults: 1}, 1)
	srv := httptest.NewServer(in.Handler(backend()))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// MaxFaults spent: the next request passes through untouched.
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != okBody {
		t.Fatalf("pass-through body = %q", body)
	}

	tr := New(Profile{Name: "t", TruncateRate: 1}, 1)
	tsrv := httptest.NewServer(tr.Handler(backend()))
	defer tsrv.Close()
	resp, err = http.Get(tsrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != truncateAfterBytes || strings.HasSuffix(string(body), "}") {
		t.Fatalf("server truncation delivered %d bytes: %q", len(body), body)
	}
}

func TestHandlerDrop(t *testing.T) {
	in := New(Profile{Name: "t", DropRate: 1}, 1)
	srv := httptest.NewServer(in.Handler(backend()))
	defer srv.Close()
	_, err := http.Get(srv.URL)
	if err == nil {
		t.Fatal("dropped response succeeded")
	}
}
