package loadgen

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Driver runs one workload against an executor. Construct with New,
// run with Run; a Driver is single-use.
type Driver struct {
	classes []Class
	exec    Executor
	opts    Options

	states   []*classState
	inflight atomic.Int64
	slow     slowList
	bm       *benchMetrics
}

// benchMetrics mirrors the per-request accounting into a metrics
// registry (Options.Metrics), one counter per outcome plus the latency
// histogram, so a time-series sampler can watch the run live.
type benchMetrics struct {
	sent, ok, errs, shed, timeouts, canceled *obs.Counter
	lat                                      *obs.Histogram
}

// classState is the per-class accumulator shared by all workers.
type classState struct {
	sent, ok, errs, shed, timeouts, canceled atomic.Int64
	lat                                      obs.Recorder // intended-based in open loop, service time in closed
	svc                                      obs.Recorder // service time (open loop only)
}

// New validates the workload and returns a driver. Every class must
// have a positive weight and a non-empty corpus (drop empty classes
// before calling); ModeOpen requires a positive Rate; at least one of
// Requests and Duration must bound the run.
func New(classes []Class, exec Executor, opts Options) (*Driver, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("loadgen: no traffic classes")
	}
	for _, c := range classes {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: class %q has non-positive weight", c.Name)
		}
		if len(c.Requests) == 0 {
			return nil, fmt.Errorf("loadgen: class %q has an empty corpus", c.Name)
		}
	}
	switch opts.Mode {
	case ModeClosed:
	case ModeOpen:
		if opts.Rate <= 0 {
			return nil, fmt.Errorf("loadgen: open-loop mode requires a positive rate")
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %q", opts.Mode)
	}
	if opts.Requests <= 0 && opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: bound the run with a request budget or a duration")
	}
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	if opts.SlowestK <= 0 {
		opts.SlowestK = 5
	}
	d := &Driver{classes: classes, exec: exec, opts: opts}
	d.states = make([]*classState, len(classes))
	for i := range d.states {
		d.states[i] = &classState{}
	}
	d.slow.k = opts.SlowestK
	if reg := opts.Metrics; reg != nil {
		d.bm = &benchMetrics{
			sent:     reg.Counter("bench_sent_total"),
			ok:       reg.Counter("bench_ok_total"),
			errs:     reg.Counter("bench_errors_total"),
			shed:     reg.Counter("bench_shed_total"),
			timeouts: reg.Counter("bench_timeouts_total"),
			canceled: reg.Counter("bench_canceled_total"),
			lat:      reg.Histogram("bench_latency"),
		}
		reg.Gauge("bench_inflight", d.inflight.Load)
	}
	return d, nil
}

// Run executes the workload and returns its report. It blocks until
// the request budget is spent, the duration elapses, or ctx ends —
// whichever comes first; in-flight requests are drained before the
// report is built. An early ctx cancel is not an error: the report
// covers what ran.
func (d *Driver) Run(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx := ctx
	var cancel context.CancelFunc
	if d.opts.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, d.opts.Duration)
		defer cancel()
	}
	sched := newSchedule(d.classes, d.opts.Seed, d.opts.Requests, d.openRate())

	ph := d.opts.Progress.Phase("bench")
	if d.opts.Requests > 0 {
		ph.Grow(int64(d.opts.Requests))
	}

	start := time.Now()
	stopSnap := d.startSnapshots(start)

	var wg sync.WaitGroup
	if d.opts.Mode == ModeClosed {
		for w := 0; w < d.opts.Clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					o, ok := sched.take()
					if !ok {
						return
					}
					d.execute(runCtx, o, time.Time{}, ph)
				}
			}()
		}
	} else {
		// Open loop: one dispatcher walks the arrival schedule and
		// fires each request in its own goroutine at (or as soon as
		// possible after) its intended instant. Concurrency is
		// unbounded by design — capping it would reintroduce the
		// coordinated omission the intended-time measurement exists
		// to expose.
		wg.Add(1)
		go func() {
			defer wg.Done()
			timer := time.NewTimer(0)
			defer timer.Stop()
			if !timer.Stop() {
				<-timer.C
			}
			for runCtx.Err() == nil {
				o, ok := sched.take()
				if !ok {
					return
				}
				intended := start.Add(o.arrival)
				if wait := time.Until(intended); wait > 0 {
					timer.Reset(wait)
					select {
					case <-runCtx.Done():
						return
					case <-timer.C:
					}
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					d.execute(runCtx, o, intended, ph)
				}()
			}
		}()
	}
	wg.Wait()
	stopSnap()
	elapsed := time.Since(start)
	ph.Done()
	return d.buildReport(elapsed), nil
}

func (d *Driver) openRate() float64 {
	if d.opts.Mode == ModeOpen {
		return d.opts.Rate
	}
	return 0
}

// execute runs one scheduled request and accounts for it. In open
// loop, intended is the scheduled send instant and latency is measured
// from it; in closed loop intended is zero and latency is service
// time.
func (d *Driver) execute(ctx context.Context, o op, intended time.Time, ph *obs.Phase) {
	cs := d.states[o.class]
	req := d.classes[o.class].Requests[o.req]
	cs.sent.Add(1)
	d.inflight.Add(1)

	if d.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.opts.Timeout)
		defer cancel()
	}

	traced := false
	var traceID string
	var err error
	sendStart := time.Now()
	if te, ok := d.exec.(TracedExecutor); ok && d.opts.TraceEvery > 0 && o.seq%d.opts.TraceEvery == 0 {
		traced = true
		traceID, err = te.DoTraced(ctx, req)
	} else {
		err = d.exec.Do(ctx, req)
	}
	end := time.Now()
	d.inflight.Add(-1)

	service := end.Sub(sendStart)
	latency := service
	if !intended.IsZero() {
		latency = end.Sub(intended)
		cs.svc.Observe(service)
	}
	cs.lat.Observe(latency)

	outcome := Classify(err)
	switch outcome {
	case obs.OutcomeOK:
		cs.ok.Add(1)
	case obs.OutcomeShed:
		cs.shed.Add(1)
	case obs.OutcomeTimeout:
		cs.timeouts.Add(1)
	case obs.OutcomeCanceled:
		cs.canceled.Add(1)
	default:
		cs.errs.Add(1)
	}
	if bm := d.bm; bm != nil {
		bm.sent.Inc()
		bm.lat.Observe(latency)
		switch outcome {
		case obs.OutcomeOK:
			bm.ok.Inc()
		case obs.OutcomeShed:
			bm.shed.Inc()
		case obs.OutcomeTimeout:
			bm.timeouts.Inc()
		case obs.OutcomeCanceled:
			bm.canceled.Inc()
		default:
			bm.errs.Inc()
		}
	}
	ph.Add(1)

	// Only traced requests enter the slowest list when tracing is on:
	// those are the ones `qb2olap trace` can drill into. With tracing
	// off every request is a candidate (with an empty trace ID).
	if traced || d.opts.TraceEvery <= 0 {
		d.slow.add(SlowRequest{
			Class:     d.classes[o.class].Name,
			Request:   req.Name,
			Seq:       o.seq,
			LatencyMs: float64(latency) / float64(time.Millisecond),
			TraceID:   traceID,
		})
	}
}

// startSnapshots launches the live snapshot ticker; the returned stop
// function emits one final snapshot so short runs still report.
func (d *Driver) startSnapshots(start time.Time) (stop func()) {
	if d.opts.OnSnapshot == nil || d.opts.SnapshotInterval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(d.opts.SnapshotInterval)
		defer t.Stop()
		var prev Snapshot
		for {
			select {
			case <-done:
				return
			case <-t.C:
				cur := d.snapshot(start, prev)
				d.opts.OnSnapshot(cur)
				prev = cur
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			d.opts.OnSnapshot(d.snapshot(start, Snapshot{}))
		})
	}
}

// Snapshot is one live observation of the run, streamed to OnSnapshot.
// Interval rates are computed against the previous snapshot; the final
// snapshot (prev zeroed) carries whole-run rates.
type Snapshot struct {
	ElapsedMs float64 `json:"elapsedMs"`
	Sent      int64   `json:"sent"`
	OK        int64   `json:"ok"`
	Errors    int64   `json:"errors"`
	Shed      int64   `json:"shed"`
	Timeouts  int64   `json:"timeouts"`
	Canceled  int64   `json:"canceled"`
	Retries   int64   `json:"retries"`
	InFlight  int64   `json:"inFlight"`
	// ThroughputPerSec is completions per second since the previous
	// snapshot.
	ThroughputPerSec float64 `json:"throughputPerSec"`
	// P50Ms/P99Ms are cumulative latency quantiles across all classes
	// (intended-based in open loop).
	P50Ms float64 `json:"p50Ms"`
	P99Ms float64 `json:"p99Ms"`
}

func (d *Driver) snapshot(start time.Time, prev Snapshot) Snapshot {
	var s Snapshot
	s.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	merged := &obs.Recorder{}
	for _, cs := range d.states {
		s.Sent += cs.sent.Load()
		s.OK += cs.ok.Load()
		s.Errors += cs.errs.Load()
		s.Shed += cs.shed.Load()
		s.Timeouts += cs.timeouts.Load()
		s.Canceled += cs.canceled.Load()
		merged.Merge(&cs.lat)
	}
	if rc, ok := d.exec.(RetryCounter); ok {
		s.Retries = rc.RetryCount()
	}
	s.InFlight = d.inflight.Load()
	done := s.OK + s.Errors + s.Shed + s.Timeouts + s.Canceled
	prevDone := prev.OK + prev.Errors + prev.Shed + prev.Timeouts + prev.Canceled
	if dt := s.ElapsedMs - prev.ElapsedMs; dt > 0 {
		s.ThroughputPerSec = float64(done-prevDone) / (dt / 1000)
	}
	s.P50Ms = merged.Quantile(0.50)
	s.P99Ms = merged.Quantile(0.99)
	return s
}

// slowList keeps the K slowest candidate requests seen so far.
type slowList struct {
	mu sync.Mutex
	k  int
	v  []SlowRequest
}

func (l *slowList) add(r SlowRequest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.v = append(l.v, r)
	sort.Slice(l.v, func(i, j int) bool { return l.v[i].LatencyMs > l.v[j].LatencyMs })
	if len(l.v) > l.k {
		l.v = l.v[:l.k]
	}
}

func (l *slowList) list() []SlowRequest {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowRequest, len(l.v))
	copy(out, l.v)
	return out
}
