package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/endpoint"
)

// testClasses builds a small three-class workload over synthetic
// corpus entries.
func testClasses() []Class {
	mk := func(kind Kind, n int) []Request {
		out := make([]Request, n)
		for i := range out {
			out[i] = Request{Kind: kind, Name: fmt.Sprintf("%s-%d", kind, i), Text: string(kind)}
		}
		return out
	}
	return []Class{
		{Name: "ql", Weight: 3, Requests: mk(KindQL, 3)},
		{Name: "sparql", Weight: 2, Requests: mk(KindSPARQL, 2)},
		{Name: "update", Weight: 1, Requests: mk(KindUpdate, 2)},
	}
}

// scriptedExec classifies by request kind: updates are shed with a
// 503, sparql times out, ql succeeds. Deterministic per request, so
// outcome counts are pinned by the schedule alone.
type scriptedExec struct{ calls atomic.Int64 }

func (e *scriptedExec) Do(_ context.Context, req Request) error {
	e.calls.Add(1)
	switch req.Kind {
	case KindUpdate:
		return &endpoint.Error{Op: "update", Status: http.StatusServiceUnavailable, Err: errors.New("shed")}
	case KindSPARQL:
		return context.DeadlineExceeded
	}
	return nil
}

// TestScheduleDeterministic: two schedules with the same seed yield
// the identical (class, request, arrival) stream — the property the
// canonical run report golden rests on. Run with -race in CI.
func TestScheduleDeterministic(t *testing.T) {
	classes := testClasses()
	const n = 500
	draw := func() []op {
		s := newSchedule(classes, 99, n, 50)
		var ops []op
		for {
			o, ok := s.take()
			if !ok {
				break
			}
			ops = append(ops, o)
		}
		return ops
	}
	a, b := draw(), draw()
	if len(a) != n || len(b) != n {
		t.Fatalf("drew %d and %d ops, want %d", len(a), len(b), n)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between same-seed schedules: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Arrivals must be strictly non-decreasing Poisson offsets.
	for i := 1; i < len(a); i++ {
		if a[i].arrival < a[i-1].arrival {
			t.Fatalf("arrival %d (%v) before arrival %d (%v)", i, a[i].arrival, i-1, a[i-1].arrival)
		}
	}
	// A different seed must produce a different stream.
	s2 := newSchedule(classes, 100, n, 50)
	diff := false
	for i := 0; i < n; i++ {
		o, _ := s2.take()
		if o != a[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seed 99 and seed 100 produced identical schedules")
	}
}

// TestClosedLoopOutcomeClassification runs a closed-loop workload over
// the scripted executor and checks every request lands in exactly one
// outcome bucket, classified per class as scripted.
func TestClosedLoopOutcomeClassification(t *testing.T) {
	classes := testClasses()
	exec := &scriptedExec{}
	d, err := New(classes, exec, Options{
		Mode: ModeClosed, Clients: 4, Requests: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Sent != 200 || exec.calls.Load() != 200 {
		t.Fatalf("sent = %d, executor calls = %d, want 200", rep.Total.Sent, exec.calls.Load())
	}
	byClass := map[string]ClassReport{}
	for _, cr := range rep.Classes {
		byClass[cr.Class] = cr
	}
	if cr := byClass["ql"]; cr.OK != cr.Sent || cr.Errors+cr.Shed+cr.Timeouts != 0 {
		t.Fatalf("ql class = %+v, want all OK", cr)
	}
	if cr := byClass["update"]; cr.Shed != cr.Sent || cr.OK != 0 {
		t.Fatalf("update class = %+v, want all shed (503)", cr)
	}
	if cr := byClass["sparql"]; cr.Timeouts != cr.Sent || cr.OK != 0 {
		t.Fatalf("sparql class = %+v, want all timeout", cr)
	}
	done := rep.Total.OK + rep.Total.Errors + rep.Total.Shed + rep.Total.Timeouts + rep.Total.Canceled
	if done != rep.Total.Sent {
		t.Fatalf("outcomes sum to %d, sent %d — a request fell through classification", done, rep.Total.Sent)
	}
	if rep.Total.Latency.Count != 200 {
		t.Fatalf("latency count = %d, want 200", rep.Total.Latency.Count)
	}
	if rep.Total.Service != nil {
		t.Fatal("closed-loop report carries a service recorder; that is an open-loop concept")
	}
}

// TestOpenLoopRunDeterministicCounts: two open-loop runs with the same
// seed and budget produce identical per-class sent counts even though
// wall-clock timings differ.
func TestOpenLoopRunDeterministicCounts(t *testing.T) {
	classes := testClasses()
	run := func() *Report {
		d, err := New(classes, &scriptedExec{}, Options{
			Mode: ModeOpen, Rate: 2000, Requests: 120, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	for i := range a.Classes {
		if a.Classes[i].Sent != b.Classes[i].Sent || a.Classes[i].OK != b.Classes[i].OK {
			t.Fatalf("class %s differs across same-seed runs: %+v vs %+v",
				a.Classes[i].Class, a.Classes[i], b.Classes[i])
		}
	}
	if a.Total.Service == nil {
		t.Fatal("open-loop report is missing the service-time recorder")
	}
}

// stallExec is the injected slow-fault profile for the coordinated
// omission test: a concurrency-1 "server" whose first request stalls
// long, so an open-loop schedule backs up behind it.
type stallExec struct {
	mu    sync.Mutex
	calls atomic.Int64
	stall time.Duration
	work  time.Duration
}

func (e *stallExec) Do(_ context.Context, _ Request) error {
	n := e.calls.Add(1)
	e.mu.Lock()
	defer e.mu.Unlock()
	if n == 1 {
		time.Sleep(e.stall)
		return nil
	}
	time.Sleep(e.work)
	return nil
}

// TestCoordinatedOmissionGap demonstrates why open-loop latency is
// measured from the intended send instant. The same stalling endpoint
// is driven two ways. Closed-loop (the naive measurement): the single
// client politely waits out the stall, so only one sample is slow and
// p99 stays near the service time. Open-loop: arrivals keep coming at
// the scheduled rate during the stall, every queued request is charged
// its queueing delay, and p99 surfaces the stall. A naive reading of
// the closed-loop number would conclude the endpoint met its SLO while
// a fixed-rate workload was actually stacking up behind it.
func TestCoordinatedOmissionGap(t *testing.T) {
	const (
		n     = 400
		stall = 300 * time.Millisecond
		work  = time.Millisecond
	)
	closedRep := func() *Report {
		d, err := New(testClasses(), &stallExec{stall: stall, work: work}, Options{
			Mode: ModeClosed, Clients: 1, Requests: n, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()
	openRep := func() *Report {
		d, err := New(testClasses(), &stallExec{stall: stall, work: work}, Options{
			Mode: ModeOpen, Rate: 500, Requests: n, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := d.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()

	closedP99 := closedRep.Total.Latency.P99Ms
	openP99 := openRep.Total.Latency.P99Ms
	// Generous margins: this is wall-clock, not arithmetic. Closed
	// loop sees one slow sample in 400, so p99 sits near the ~1ms
	// service time; open loop charges ~150 queued arrivals their
	// waiting time, so p99 is within an order of the 300ms stall.
	if closedP99 > 50 {
		t.Fatalf("closed-loop p99 = %.1fms; the naive measurement should hide the stall (< 50ms)", closedP99)
	}
	if openP99 < 50 {
		t.Fatalf("open-loop intended-time p99 = %.1fms; queueing behind the stall should dominate (> 50ms)", openP99)
	}
	if openP99 < 4*closedP99 {
		t.Fatalf("coordinated-omission gap missing: open p99 %.1fms vs closed p99 %.1fms", openP99, closedP99)
	}
	if closedRep.Total.Latency.MaxMs < float64(stall/time.Millisecond) {
		t.Fatalf("closed-loop max %.1fms should still record the stall itself", closedRep.Total.Latency.MaxMs)
	}
}

// tracedExec pairs the stub with trace IDs so the slowest list links.
type tracedExec struct {
	scriptedExec
	traced atomic.Int64
}

func (e *tracedExec) DoTraced(ctx context.Context, req Request) (string, error) {
	n := e.traced.Add(1)
	return fmt.Sprintf("trace-%04d", n), e.Do(ctx, req)
}

// TestSlowestCarriesTraceIDs checks trace sampling feeds the slowest
// list with non-empty trace IDs, sorted slowest-first.
func TestSlowestCarriesTraceIDs(t *testing.T) {
	exec := &tracedExec{}
	d, err := New(testClasses(), exec, Options{
		Mode: ModeClosed, Clients: 2, Requests: 100, Seed: 5, TraceEvery: 10, SlowestK: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if exec.traced.Load() != 10 {
		t.Fatalf("traced %d requests, want 10 (every 10th of 100)", exec.traced.Load())
	}
	if len(rep.Slowest) != 3 {
		t.Fatalf("slowest list has %d entries, want 3", len(rep.Slowest))
	}
	for i, s := range rep.Slowest {
		if s.TraceID == "" {
			t.Fatalf("slowest[%d] has no trace ID: %+v", i, s)
		}
		if i > 0 && s.LatencyMs > rep.Slowest[i-1].LatencyMs {
			t.Fatalf("slowest list not sorted: %v", rep.Slowest)
		}
	}
}

// TestSnapshotsStream checks the live snapshot callback fires and the
// final snapshot accounts for every request.
func TestSnapshotsStream(t *testing.T) {
	var mu sync.Mutex
	var snaps []Snapshot
	slow := &stallExec{stall: 5 * time.Millisecond, work: time.Millisecond}
	d, err := New(testClasses(), slow, Options{
		Mode: ModeClosed, Clients: 2, Requests: 80, Seed: 2,
		SnapshotInterval: 10 * time.Millisecond,
		OnSnapshot: func(s Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no snapshots streamed")
	}
	last := snaps[len(snaps)-1]
	if last.Sent != 80 || last.OK != 80 {
		t.Fatalf("final snapshot = %+v, want 80 sent and ok", last)
	}
	if last.InFlight != 0 {
		t.Fatalf("final snapshot in-flight = %d, want 0", last.InFlight)
	}
	if last.ThroughputPerSec <= 0 {
		t.Fatalf("final snapshot throughput = %.2f, want > 0", last.ThroughputPerSec)
	}
}

// TestDriverValidation pins New's rejection of unusable workloads.
func TestDriverValidation(t *testing.T) {
	ok := testClasses()
	cases := []struct {
		name    string
		classes []Class
		opts    Options
	}{
		{"no classes", nil, Options{Mode: ModeClosed, Requests: 1}},
		{"zero weight", []Class{{Name: "x", Weight: 0, Requests: ok[0].Requests}}, Options{Mode: ModeClosed, Requests: 1}},
		{"empty corpus", []Class{{Name: "x", Weight: 1}}, Options{Mode: ModeClosed, Requests: 1}},
		{"open without rate", ok, Options{Mode: ModeOpen, Requests: 1}},
		{"unbounded", ok, Options{Mode: ModeClosed}},
		{"bad mode", ok, Options{Mode: "sideways", Requests: 1}},
	}
	for _, tc := range cases {
		if _, err := New(tc.classes, &scriptedExec{}, tc.opts); err == nil {
			t.Errorf("%s: New accepted an invalid workload", tc.name)
		}
	}
}

// TestParseMix pins the -mix spec grammar.
func TestParseMix(t *testing.T) {
	names, w, err := ParseMix("ql=3, sparql=2,update=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || w["ql"] != 3 || w["sparql"] != 2 || w["update"] != 0 {
		t.Fatalf("ParseMix = %v %v", names, w)
	}
	for _, bad := range []string{"", "ql", "ql=x", "ql=-1", "ql=0", "ql=1,ql=2"} {
		if _, _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}
