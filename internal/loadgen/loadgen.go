// Package loadgen is the workload driver behind `qb2olap bench`: it
// fires a configurable mix of QL programs, raw SPARQL SELECTs, and
// INSERT DATA updates at an endpoint and measures what the endpoint's
// own metrics cannot see — the latency a client actually experiences,
// including queueing it did not ask for.
//
// Two generation modes are supported. Closed-loop runs a fixed number
// of clients, each issuing its next request as soon as the previous
// one completes: throughput floats with the endpoint's speed, and
// latency is pure service time. Open-loop draws Poisson arrivals at a
// fixed rate from a seeded schedule and dispatches each request at its
// scheduled instant regardless of how many are still in flight. In
// open-loop mode latency is measured from the *intended* send time,
// not the actual one, so a stalled server shows up as the queueing
// delay it caused instead of being silently absorbed by a waiting
// client — the coordinated-omission correction. The naive service time
// is recorded alongside it, so a report shows both numbers and their
// gap.
//
// The schedule (class sequence, per-class request rotation, arrival
// offsets) is entirely determined by the seed, so two runs with the
// same seed, mix, and request budget issue byte-identical request
// streams — which is what pins the canonical run report in golden
// tests.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/endpoint"
	"repro/internal/obs"
)

// Kind tags what a request is, which decides how the executor runs it.
type Kind string

const (
	// KindQL is a QL program: prepared against the cube schema,
	// translated, and executed as SPARQL.
	KindQL Kind = "ql"
	// KindSPARQL is a raw SPARQL SELECT sent as-is.
	KindSPARQL Kind = "sparql"
	// KindUpdate is a SPARQL INSERT DATA update.
	KindUpdate Kind = "update"
)

// Request is one unit of work drawn from a class's corpus.
type Request struct {
	Kind Kind
	// Name identifies the corpus entry (file name) for provenance.
	Name string
	// Text is the QL program, SPARQL query, or update body.
	Text string
}

// Class is a weighted traffic class: the driver draws classes in
// proportion to Weight and rotates through the class's Requests
// round-robin, so a fixed budget covers the corpus evenly.
type Class struct {
	Name     string
	Weight   int
	Requests []Request
}

// Executor runs one request against the system under test. The driver
// never interprets request text itself, so tests drive it with stubs
// and the CLI wires in the real QL/SPARQL/update paths.
type Executor interface {
	Do(ctx context.Context, req Request) error
}

// TracedExecutor is implemented by executors that can run a request
// with tracing forced and report the trace ID, letting the run report
// cross-link its slowest requests to `qb2olap trace` drill-down.
type TracedExecutor interface {
	DoTraced(ctx context.Context, req Request) (traceID string, err error)
}

// RetryCounter is implemented by executors that can report how many
// transport-level retries their client has performed (endpoint.Remote
// does); the driver surfaces the delta in snapshots and the report.
type RetryCounter interface {
	RetryCount() int64
}

// Mode selects how load is generated.
type Mode string

const (
	// ModeClosed runs Clients workers in lock-step with the endpoint:
	// each issues its next request when the previous completes.
	ModeClosed Mode = "closed"
	// ModeOpen dispatches requests at seeded Poisson arrival instants
	// at Rate per second, independent of completions.
	ModeOpen Mode = "open"
)

// Options configures a run. Exactly one of Requests (a fixed budget,
// required for deterministic reports) or Duration must be positive;
// when both are set the run ends at whichever limit hits first.
type Options struct {
	Mode    Mode
	Clients int     // closed-loop concurrency (default 1)
	Rate    float64 // open-loop arrivals per second (required for ModeOpen)

	Requests int           // total request budget (0 = unbounded)
	Duration time.Duration // wall-clock bound (0 = unbounded)
	Seed     int64         // schedule seed

	Timeout time.Duration // per-request deadline (0 = none)

	// TraceEvery traces every Nth request (0 disables) when the
	// executor supports it; traced requests feed the Slowest list.
	TraceEvery int

	// SnapshotInterval streams a live Snapshot to OnSnapshot every
	// interval (both must be set).
	SnapshotInterval time.Duration
	OnSnapshot       func(Snapshot)

	// Progress, when non-nil, renders a live "bench" phase with rate
	// and ETA over the request budget.
	Progress *obs.Progress

	// SlowestK bounds the slowest-requests list in the report
	// (default 5).
	SlowestK int

	// Metrics, when non-nil, receives live driver-side metrics —
	// bench_sent_total / bench_ok_total / bench_errors_total /
	// bench_shed_total / bench_timeouts_total / bench_canceled_total
	// counters, the bench_latency histogram, and a bench_inflight
	// gauge — so a bench run sampled into an obs.TimeSeries is visible
	// on the same /timeseries + /debug/dash surfaces as the server it
	// drives (qb2olap bench -dash-addr).
	Metrics *obs.Registry
}

// Classify maps an executor error to the outcome taxonomy the server
// itself uses: a 503 is a load shed, a 504 or context deadline is a
// timeout, a canceled context is a cancel, everything else an error.
func Classify(err error) obs.QueryOutcome {
	if err == nil {
		return obs.OutcomeOK
	}
	var ee *endpoint.Error
	if errors.As(err, &ee) {
		switch ee.Status {
		case http.StatusServiceUnavailable:
			return obs.OutcomeShed
		case http.StatusGatewayTimeout:
			return obs.OutcomeTimeout
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return obs.OutcomeTimeout
	}
	if errors.Is(err, context.Canceled) {
		return obs.OutcomeCanceled
	}
	return obs.OutcomeError
}

// ParseMix reads a "-mix" spec like "ql=3,sparql=2,update=1" into
// class weights. Weights must be non-negative integers; at least one
// must be positive. Class names are returned in spec order.
func ParseMix(spec string) (names []string, weights map[string]int, err error) {
	weights = make(map[string]int)
	total := 0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, nil, fmt.Errorf("loadgen: bad mix entry %q (want name=weight)", part)
		}
		name = strings.TrimSpace(name)
		w, perr := strconv.Atoi(strings.TrimSpace(val))
		if perr != nil || w < 0 {
			return nil, nil, fmt.Errorf("loadgen: bad mix weight in %q", part)
		}
		if _, dup := weights[name]; dup {
			return nil, nil, fmt.Errorf("loadgen: duplicate mix class %q", name)
		}
		weights[name] = w
		names = append(names, name)
		total += w
	}
	if total <= 0 {
		return nil, nil, fmt.Errorf("loadgen: mix %q has no positive weight", spec)
	}
	return names, weights, nil
}

// sortedClassNames returns class names sorted, for stable iteration.
func sortedClassNames(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
