package loadgen

import (
	"time"

	"repro/internal/obs"
)

// Report is the machine-readable result of one run: the configuration
// that produced it, whole-run totals, per-class breakdowns, and the
// slowest requests with their trace IDs. `qb2olap bench -report` writes
// it as JSON and `benchjson -slo` gates on it.
type Report struct {
	Mode    string  `json:"mode"`
	Clients int     `json:"clients"`
	Rate    float64 `json:"rate,omitempty"` // open loop only
	Seed    int64   `json:"seed"`

	DurationMs       float64 `json:"durationMs"`
	ThroughputPerSec float64 `json:"throughputPerSec"`
	Retries          int64   `json:"retries,omitempty"`

	// Total aggregates every class; global SLO thresholds check it.
	Total   ClassReport   `json:"total"`
	Classes []ClassReport `json:"classes"`

	// Slowest lists the slowest observed requests (traced ones when
	// trace sampling was on), slowest first, for `qb2olap trace`
	// drill-down via their trace IDs.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// ClassReport is the per-class (or total) slice of a report.
type ClassReport struct {
	Class    string `json:"class"`
	Weight   int    `json:"weight,omitempty"`
	Sent     int64  `json:"sent"`
	OK       int64  `json:"ok"`
	Errors   int64  `json:"errors"`
	Shed     int64  `json:"shed"`
	Timeouts int64  `json:"timeouts"`
	Canceled int64  `json:"canceled"`

	// Latency is measured from the intended send instant in open-loop
	// mode (queueing included) and equals service time in closed-loop.
	Latency obs.RecorderSnapshot `json:"latency"`
	// Service is the naive send-to-completion time, reported in
	// open-loop mode so the coordinated-omission gap is visible.
	Service *obs.RecorderSnapshot `json:"service,omitempty"`
}

// SlowRequest cross-links one slow request to its trace.
type SlowRequest struct {
	Class     string  `json:"class"`
	Request   string  `json:"request,omitempty"`
	Seq       int     `json:"seq"`
	LatencyMs float64 `json:"latencyMs"`
	TraceID   string  `json:"traceId,omitempty"`
}

func (d *Driver) buildReport(elapsed time.Duration) *Report {
	rep := &Report{
		Mode:    string(d.opts.Mode),
		Clients: d.opts.Clients,
		Seed:    d.opts.Seed,
	}
	if d.opts.Mode == ModeOpen {
		rep.Rate = d.opts.Rate
	}
	rep.DurationMs = float64(elapsed) / float64(time.Millisecond)
	open := d.opts.Mode == ModeOpen
	totalLat, totalSvc := &obs.Recorder{}, &obs.Recorder{}
	for i, c := range d.classes {
		cs := d.states[i]
		cr := ClassReport{
			Class:    c.Name,
			Weight:   c.Weight,
			Sent:     cs.sent.Load(),
			OK:       cs.ok.Load(),
			Errors:   cs.errs.Load(),
			Shed:     cs.shed.Load(),
			Timeouts: cs.timeouts.Load(),
			Canceled: cs.canceled.Load(),
			Latency:  cs.lat.Snapshot(),
		}
		totalLat.Merge(&cs.lat)
		if open {
			svc := cs.svc.Snapshot()
			cr.Service = &svc
			totalSvc.Merge(&cs.svc)
		}
		rep.Total.Sent += cr.Sent
		rep.Total.OK += cr.OK
		rep.Total.Errors += cr.Errors
		rep.Total.Shed += cr.Shed
		rep.Total.Timeouts += cr.Timeouts
		rep.Total.Canceled += cr.Canceled
		rep.Classes = append(rep.Classes, cr)
	}
	rep.Total.Class = "all"
	rep.Total.Latency = totalLat.Snapshot()
	if open {
		svc := totalSvc.Snapshot()
		rep.Total.Service = &svc
	}
	if elapsed > 0 {
		done := rep.Total.OK + rep.Total.Errors + rep.Total.Shed + rep.Total.Timeouts + rep.Total.Canceled
		rep.ThroughputPerSec = float64(done) / elapsed.Seconds()
	}
	if rc, ok := d.exec.(RetryCounter); ok {
		rep.Retries = rc.RetryCount()
	}
	rep.Slowest = d.slow.list()
	return rep
}

// Canonical returns the deterministic view of a report for golden
// tests: timings, rates, and the slowest list vary run to run and are
// dropped; the configuration and every outcome count survive, because
// a seeded budgeted run replays the identical request stream.
func (r *Report) Canonical() *Report {
	c := *r
	c.DurationMs = 0
	c.ThroughputPerSec = 0
	c.Retries = 0
	c.Slowest = nil
	c.Total = r.Total.canonical()
	c.Classes = make([]ClassReport, len(r.Classes))
	for i, cr := range r.Classes {
		c.Classes[i] = cr.canonical()
	}
	return &c
}

func (cr ClassReport) canonical() ClassReport {
	c := cr
	c.Latency = obs.RecorderSnapshot{Count: cr.Latency.Count}
	if cr.Service != nil {
		c.Service = &obs.RecorderSnapshot{Count: cr.Service.Count}
	}
	return c
}
