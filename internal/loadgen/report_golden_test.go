package loadgen

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestReportCanonicalGolden pins the canonical run report: a seeded,
// request-bounded workload replays the identical request stream, so
// everything the canonical form keeps — mode, mix, per-class sent and
// outcome counts — is byte-stable across runs and machines. A diff
// here means the schedule, the classification, or the report shape
// changed; regenerate with -update only when that is intended.
func TestReportCanonicalGolden(t *testing.T) {
	d, err := New(testClasses(), &scriptedExec{}, Options{
		Mode: ModeClosed, Clients: 4, Requests: 120, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep.Canonical(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "report_canonical.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/loadgen -run Golden -update)", err)
	}
	if string(got) != string(want) {
		t.Errorf("canonical report drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
