package loadgen

import (
	"math/rand"
	"sync"
	"time"
)

// op is one scheduled request: its position in the run, the class and
// corpus entry it resolved to, and (open loop) the arrival offset from
// run start at which it must be dispatched.
type op struct {
	seq     int
	class   int // index into the driver's classes
	req     int // index into that class's Requests
	arrival time.Duration
}

// schedule is the seeded source of the request stream. All draws come
// from one rand.Rand guarded by a mutex, and per-class corpus rotation
// is round-robin, so the sequence of (class, request, arrival) triples
// is a pure function of the seed, the mix, and the rate — regardless
// of how many workers consume it or how fast the endpoint answers.
type schedule struct {
	mu      sync.Mutex
	rng     *rand.Rand
	classes []Class
	cum     []int // cumulative weights for the class draw
	total   int
	cursor  []int // per-class round-robin position
	next    int   // next sequence number
	budget  int   // remaining ops (<0 = unbounded)
	rate    float64
	offset  time.Duration // accumulated arrival offset (open loop)
}

func newSchedule(classes []Class, seed int64, budget int, rate float64) *schedule {
	s := &schedule{
		rng:     rand.New(rand.NewSource(seed)),
		classes: classes,
		cum:     make([]int, len(classes)),
		cursor:  make([]int, len(classes)),
		budget:  budget,
		rate:    rate,
	}
	if budget <= 0 {
		s.budget = -1
	}
	for i, c := range classes {
		s.total += c.Weight
		s.cum[i] = s.total
	}
	return s
}

// take draws the next op. ok is false once the budget is exhausted.
func (s *schedule) take() (op, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget == 0 {
		return op{}, false
	}
	if s.budget > 0 {
		s.budget--
	}
	// Weighted class draw. Classes with zero weight (or an empty
	// corpus) are never drawn; newDriver rejects a mix where nothing
	// is drawable.
	draw := s.rng.Intn(s.total)
	class := 0
	for draw >= s.cum[class] {
		class++
	}
	o := op{seq: s.next, class: class}
	s.next++
	c := s.classes[class]
	o.req = s.cursor[class] % len(c.Requests)
	s.cursor[class]++
	if s.rate > 0 {
		// Poisson arrivals: exponential inter-arrival draws at the
		// target rate, accumulated into an absolute offset.
		s.offset += time.Duration(s.rng.ExpFloat64() / s.rate * float64(time.Second))
		o.arrival = s.offset
	}
	return o, true
}
