package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
)

// Thresholds are the gateable limits of an SLO. Zero values mean "not
// checked", so a file states only what it cares about.
type Thresholds struct {
	// MaxP50Ms / MaxP99Ms bound the latency quantiles (intended-based
	// in open-loop reports, so queueing counts against the SLO).
	MaxP50Ms float64 `json:"max_p50_ms,omitempty"`
	MaxP99Ms float64 `json:"max_p99_ms,omitempty"`
	// MaxErrorRate bounds (errors + timeouts) / sent.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
	// MaxShedRate bounds shed / sent.
	MaxShedRate float64 `json:"max_shed_rate,omitempty"`
}

// SLO is the contents of an -slo file: global thresholds checked
// against the report's total, plus optional per-class overrides
// checked against that class alone.
type SLO struct {
	Thresholds
	Classes map[string]Thresholds `json:"classes,omitempty"`
}

// LoadSLO reads an SLO file. Unknown fields are rejected so a typo'd
// threshold fails loudly instead of silently not gating.
func LoadSLO(path string) (*SLO, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s SLO
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loadgen: parsing SLO %s: %w", path, err)
	}
	return &s, nil
}

// AlertRules converts an SLO's global thresholds into live burn-rate
// alert rules over the server's metrics registry, so the same checked-in
// slo.json that gates `qb2olap bench` runs also drives continuous
// monitoring on sparqld (-slo). The mapping targets the server-side
// metric names of endpoint.Server:
//
//	max_p50_ms / max_p99_ms → query_latency quantile over the window
//	max_error_rate          → Δqueries_failed_total / Δqueries_total
//	max_shed_rate           → Δqueries_shed_total  / Δqueries_total
//
// Per-class thresholds are bench-report-only (the server does not
// attribute queries to driver classes) and are not converted.
func AlertRules(s *SLO) []obs.AlertRule {
	var rules []obs.AlertRule
	if s.MaxP50Ms > 0 {
		rules = append(rules, obs.AlertRule{
			Name: "p50_latency", Kind: obs.RuleQuantile,
			Metric: "query_latency", Q: 0.50, Max: s.MaxP50Ms,
		})
	}
	if s.MaxP99Ms > 0 {
		rules = append(rules, obs.AlertRule{
			Name: "p99_latency", Kind: obs.RuleQuantile,
			Metric: "query_latency", Q: 0.99, Max: s.MaxP99Ms,
		})
	}
	if s.MaxErrorRate > 0 {
		rules = append(rules, obs.AlertRule{
			Name: "error_rate", Kind: obs.RuleRatio,
			Num: "queries_failed_total", Den: "queries_total", Max: s.MaxErrorRate,
		})
	}
	if s.MaxShedRate > 0 {
		rules = append(rules, obs.AlertRule{
			Name: "shed_rate", Kind: obs.RuleRatio,
			Num: "queries_shed_total", Den: "queries_total", Max: s.MaxShedRate,
		})
	}
	return rules
}

// Violation is one threshold a run broke.
type Violation struct {
	Scope  string  `json:"scope"` // "all" or a class name
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Limit  float64 `json:"limit"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s = %.3f exceeds limit %.3f", v.Scope, v.Metric, v.Value, v.Limit)
}

// CheckSLO evaluates a report against an SLO and returns every
// violated threshold (empty = the run passes).
func CheckSLO(rep *Report, slo *SLO) []Violation {
	var out []Violation
	out = append(out, checkThresholds(rep.Total, slo.Thresholds)...)
	for _, cr := range rep.Classes {
		if th, ok := slo.Classes[cr.Class]; ok {
			out = append(out, checkThresholds(cr, th)...)
		}
	}
	return out
}

func checkThresholds(cr ClassReport, th Thresholds) []Violation {
	var out []Violation
	add := func(metric string, value, limit float64) {
		if limit > 0 && value > limit {
			out = append(out, Violation{Scope: cr.Class, Metric: metric, Value: value, Limit: limit})
		}
	}
	add("p50_ms", cr.Latency.P50Ms, th.MaxP50Ms)
	add("p99_ms", cr.Latency.P99Ms, th.MaxP99Ms)
	if cr.Sent > 0 {
		add("error_rate", float64(cr.Errors+cr.Timeouts)/float64(cr.Sent), th.MaxErrorRate)
		add("shed_rate", float64(cr.Shed)/float64(cr.Sent), th.MaxShedRate)
	}
	return out
}
