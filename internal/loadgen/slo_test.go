package loadgen

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func testReport() *Report {
	return &Report{
		Mode: "closed", Clients: 4, Seed: 1,
		Total: ClassReport{
			Class: "all", Sent: 100, OK: 90, Errors: 4, Shed: 5, Timeouts: 1,
			Latency: obs.RecorderSnapshot{Count: 100, P50Ms: 10, P99Ms: 120},
		},
		Classes: []ClassReport{
			{Class: "ql", Sent: 60, OK: 60, Latency: obs.RecorderSnapshot{Count: 60, P99Ms: 40}},
			{Class: "update", Sent: 40, OK: 30, Errors: 4, Shed: 5, Timeouts: 1,
				Latency: obs.RecorderSnapshot{Count: 40, P99Ms: 300}},
		},
	}
}

func TestCheckSLOPasses(t *testing.T) {
	slo := &SLO{Thresholds: Thresholds{MaxP99Ms: 500, MaxErrorRate: 0.10, MaxShedRate: 0.10}}
	if v := CheckSLO(testReport(), slo); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

// TestCheckSLOViolations is the negative test: every threshold kind
// must fire when deliberately set below the run's observed values.
func TestCheckSLOViolations(t *testing.T) {
	slo := &SLO{
		Thresholds: Thresholds{MaxP99Ms: 100, MaxErrorRate: 0.01, MaxShedRate: 0.01},
		Classes:    map[string]Thresholds{"update": {MaxP99Ms: 200}},
	}
	got := CheckSLO(testReport(), slo)
	want := map[string]bool{
		"all/p99_ms":      true, // 120 > 100
		"all/error_rate":  true, // 5/100 > 0.01
		"all/shed_rate":   true, // 5/100 > 0.01
		"update/p99_ms":   true, // 300 > 200 (per-class override)
		"update/sentinel": false,
	}
	seen := map[string]bool{}
	for _, v := range got {
		seen[v.Scope+"/"+v.Metric] = true
		if v.String() == "" {
			t.Errorf("violation renders empty: %+v", v)
		}
	}
	for key, expect := range want {
		if expect && !seen[key] {
			t.Errorf("missing violation %s (got %v)", key, got)
		}
	}
	if len(got) != 4 {
		t.Errorf("got %d violations, want 4: %v", len(got), got)
	}
}

func TestLoadSLO(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "slo.json")
	os.WriteFile(good, []byte(`{"max_p99_ms": 250, "classes": {"ql": {"max_error_rate": 0.05}}}`), 0o644)
	slo, err := LoadSLO(good)
	if err != nil {
		t.Fatal(err)
	}
	if slo.MaxP99Ms != 250 || slo.Classes["ql"].MaxErrorRate != 0.05 {
		t.Fatalf("LoadSLO = %+v", slo)
	}
	// A typo'd field must fail loudly, not silently skip gating.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"max_p99ms": 250}`), 0o644)
	if _, err := LoadSLO(bad); err == nil {
		t.Fatal("LoadSLO accepted an unknown field")
	}
}

// TestAlertRules pins the SLO→burn-rate-rule conversion: each set
// global threshold becomes one rule wired to the sparqld metric names,
// and unset thresholds produce no rule.
func TestAlertRules(t *testing.T) {
	full := &SLO{
		Thresholds: Thresholds{MaxP50Ms: 50, MaxP99Ms: 2000, MaxErrorRate: 0.01, MaxShedRate: 0.25},
		Classes:    map[string]Thresholds{"ql": {MaxP99Ms: 100}},
	}
	rules := AlertRules(full)
	want := []obs.AlertRule{
		{Name: "p50_latency", Kind: obs.RuleQuantile, Metric: "query_latency", Q: 0.50, Max: 50},
		{Name: "p99_latency", Kind: obs.RuleQuantile, Metric: "query_latency", Q: 0.99, Max: 2000},
		{Name: "error_rate", Kind: obs.RuleRatio, Num: "queries_failed_total", Den: "queries_total", Max: 0.01},
		{Name: "shed_rate", Kind: obs.RuleRatio, Num: "queries_shed_total", Den: "queries_total", Max: 0.25},
	}
	if len(rules) != len(want) {
		t.Fatalf("AlertRules produced %d rules, want %d: %+v", len(rules), len(want), rules)
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	// Per-class thresholds do not become rules (the live registry has
	// no per-class latency split), and an empty SLO yields none.
	if got := AlertRules(&SLO{Classes: map[string]Thresholds{"ql": {MaxP99Ms: 1}}}); len(got) != 0 {
		t.Errorf("empty global SLO produced rules: %+v", got)
	}
}
