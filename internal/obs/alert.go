package obs

import (
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Burn-rate alerting over the time-series rings. A rule is a threshold
// on a windowed value — a latency quantile or a counter ratio — checked
// over a fast window and a slow window each evaluation (one per tick,
// via TimeSeries.OnTick). The rule FIRES only when both windows violate
// the threshold: the slow window proves the violation is sustained, the
// fast window proves it is still happening. It RESOLVES as soon as the
// fast window recovers, so a drained incident clears quickly even while
// the slow window still remembers it. A window with too little data
// (fewer than two samples, or a zero denominator / zero observations)
// is not evaluable and causes no state change in either direction.
//
// Rule state is held in atomics so the registry's labeled gauges and
// the /alerts handler read it without taking the evaluation lock —
// the sampling pass holds TimeSeries.mu while reading gauges, and the
// evaluator calls back into TimeSeries, so sharing a mutex between
// those two paths would deadlock.

// RuleKind selects how an AlertRule derives its windowed value.
type RuleKind string

const (
	// RuleQuantile checks a histogram quantile (ms) over the window.
	RuleQuantile RuleKind = "quantile"
	// RuleRatio checks Δnum/Δden of two counters over the window.
	RuleRatio RuleKind = "ratio"
)

// AlertRule is one threshold evaluated continuously.
type AlertRule struct {
	Name   string   `json:"name"`
	Kind   RuleKind `json:"kind"`
	Metric string   `json:"metric,omitempty"` // quantile: histogram name
	Q      float64  `json:"q,omitempty"`      // quantile: e.g. 0.99
	Num    string   `json:"num,omitempty"`    // ratio: numerator counter
	Den    string   `json:"den,omitempty"`    // ratio: denominator counter
	Max    float64  `json:"max"`              // firing threshold (exclusive)
}

// alertState is one rule's live state, atomically readable.
type alertState struct {
	firing      atomic.Bool
	sinceMs     atomic.Int64 // transition time of the current state
	transitions atomic.Int64
	fastBits    atomic.Uint64 // last fast-window value (Float64bits)
	slowBits    atomic.Uint64
	fastOK      atomic.Bool // was the fast window evaluable last eval
	slowOK      atomic.Bool
}

// Alerts evaluates a rule set against a TimeSeries.
type Alerts struct {
	ts     *TimeSeries
	rules  []AlertRule
	fast   time.Duration
	slow   time.Duration
	logger *slog.Logger

	fired    *Counter
	resolved *Counter

	evalMu sync.Mutex
	state  []*alertState
}

// NewAlerts builds an evaluator over ts with the given fast/slow
// windows (zero values default to 5m/1h) and registers its exposition
// in reg: alert_firing{rule="…"} per rule, the alerts_firing count, and
// alerts_fired_total / alerts_resolved_total transition counters.
// Transitions are logged to logger when non-nil. Hook Eval into
// ts.OnTick to evaluate once per sampling tick.
func NewAlerts(ts *TimeSeries, reg *Registry, rules []AlertRule, fast, slow time.Duration, logger *slog.Logger) *Alerts {
	if fast <= 0 {
		fast = 5 * time.Minute
	}
	if slow <= 0 {
		slow = time.Hour
	}
	if slow < fast {
		slow = fast
	}
	a := &Alerts{
		ts:       ts,
		rules:    rules,
		fast:     fast,
		slow:     slow,
		logger:   logger,
		fired:    reg.Counter("alerts_fired_total"),
		resolved: reg.Counter("alerts_resolved_total"),
		state:    make([]*alertState, len(rules)),
	}
	for i := range rules {
		st := &alertState{}
		a.state[i] = st
		reg.GaugeWith("alert_firing", []Label{{Key: "rule", Value: rules[i].Name}}, func() int64 {
			if st.firing.Load() {
				return 1
			}
			return 0
		})
	}
	reg.Gauge("alerts_firing", func() int64 {
		n := int64(0)
		for _, st := range a.state {
			if st.firing.Load() {
				n++
			}
		}
		return n
	})
	return a
}

// evalRule computes one rule's value over a window.
func (a *Alerts) evalRule(r *AlertRule, window time.Duration) (v float64, ok bool) {
	switch r.Kind {
	case RuleQuantile:
		ms, _, ok := a.ts.HistQuantileOver(r.Metric, r.Q, window)
		return ms, ok
	case RuleRatio:
		return a.ts.Ratio(r.Num, r.Den, window)
	}
	return 0, false
}

// Eval re-evaluates every rule as of now, applying fire/resolve
// transitions. Safe for concurrent use with the handlers and the
// registry's gauges; evaluations themselves are serialized.
func (a *Alerts) Eval(now time.Time) {
	a.evalMu.Lock()
	defer a.evalMu.Unlock()
	for i := range a.rules {
		r := &a.rules[i]
		st := a.state[i]
		fastV, fastOK := a.evalRule(r, a.fast)
		slowV, slowOK := a.evalRule(r, a.slow)
		st.fastBits.Store(math.Float64bits(fastV))
		st.slowBits.Store(math.Float64bits(slowV))
		st.fastOK.Store(fastOK)
		st.slowOK.Store(slowOK)
		if !st.firing.Load() {
			if fastOK && slowOK && fastV > r.Max && slowV > r.Max {
				st.firing.Store(true)
				st.sinceMs.Store(now.UnixMilli())
				st.transitions.Add(1)
				a.fired.Inc()
				if a.logger != nil {
					a.logger.Warn("alert firing", "rule", r.Name,
						"fast", fastV, "slow", slowV, "max", r.Max)
				}
			}
		} else if fastOK && fastV <= r.Max {
			st.firing.Store(false)
			st.sinceMs.Store(now.UnixMilli())
			st.transitions.Add(1)
			a.resolved.Inc()
			if a.logger != nil {
				a.logger.Info("alert resolved", "rule", r.Name,
					"fast", fastV, "max", r.Max)
			}
		}
	}
}

// AlertStatus is one rule's state in the /alerts response.
type AlertStatus struct {
	Name        string   `json:"name"`
	Kind        RuleKind `json:"kind"`
	Max         float64  `json:"max"`
	Firing      bool     `json:"firing"`
	SinceMs     int64    `json:"sinceMs,omitempty"`
	FastValue   float64  `json:"fastValue"`
	SlowValue   float64  `json:"slowValue"`
	FastOK      bool     `json:"fastOk"`
	SlowOK      bool     `json:"slowOk"`
	Transitions int64    `json:"transitions"`
}

// AlertsSnapshot is the /alerts response shape.
type AlertsSnapshot struct {
	FastWindowMs int64         `json:"fastWindowMs"`
	SlowWindowMs int64         `json:"slowWindowMs"`
	Firing       int           `json:"firing"`
	Rules        []AlertStatus `json:"rules"`
}

// Snapshot returns the current state of every rule.
func (a *Alerts) Snapshot() AlertsSnapshot {
	snap := AlertsSnapshot{
		FastWindowMs: a.fast.Milliseconds(),
		SlowWindowMs: a.slow.Milliseconds(),
		Rules:        make([]AlertStatus, 0, len(a.rules)),
	}
	for i := range a.rules {
		r := &a.rules[i]
		st := a.state[i]
		firing := st.firing.Load()
		if firing {
			snap.Firing++
		}
		snap.Rules = append(snap.Rules, AlertStatus{
			Name:        r.Name,
			Kind:        r.Kind,
			Max:         r.Max,
			Firing:      firing,
			SinceMs:     st.sinceMs.Load(),
			FastValue:   math.Float64frombits(st.fastBits.Load()),
			SlowValue:   math.Float64frombits(st.slowBits.Load()),
			FastOK:      st.fastOK.Load(),
			SlowOK:      st.slowOK.Load(),
			Transitions: st.transitions.Load(),
		})
	}
	return snap
}

// AlertsHandler serves the /alerts JSON API.
func AlertsHandler(a *Alerts) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(a.Snapshot())
	}
}
