package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// alertHarness wires a registry, sampler with fake clock, and an
// evaluator over one quantile rule and one ratio rule.
type alertHarness struct {
	reg    *Registry
	ts     *TimeSeries
	clock  *fakeClock
	alerts *Alerts
	lat    *Histogram
	total  *Counter
	failed *Counter
	logBuf *bytes.Buffer
}

func newAlertHarness(t *testing.T) *alertHarness {
	t.Helper()
	h := &alertHarness{reg: NewRegistry(), clock: newFakeClock(), logBuf: &bytes.Buffer{}}
	h.lat = h.reg.Histogram("query_latency")
	h.total = h.reg.Counter("queries_total")
	h.failed = h.reg.Counter("queries_failed_total")
	h.ts = NewTimeSeries(h.reg, []Resolution{{Step: time.Second, Size: 600}})
	h.ts.SetNow(h.clock.Now)
	rules := []AlertRule{
		{Name: "p99_latency", Kind: RuleQuantile, Metric: "query_latency", Q: 0.99, Max: 100},
		{Name: "error_rate", Kind: RuleRatio, Num: "queries_failed_total", Den: "queries_total", Max: 0.05},
	}
	logger := slog.New(slog.NewTextHandler(h.logBuf, nil))
	h.alerts = NewAlerts(h.ts, h.reg, rules, 10*time.Second, 60*time.Second, logger)
	h.ts.OnTick = h.alerts.Eval
	return h
}

func (h *alertHarness) tick() {
	h.ts.Sample()
	h.clock.Advance(time.Second)
}

func (h *alertHarness) status(t *testing.T, name string) AlertStatus {
	t.Helper()
	for _, r := range h.alerts.Snapshot().Rules {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no rule %q in snapshot", name)
	return AlertStatus{}
}

func TestAlertFireAndResolve(t *testing.T) {
	h := newAlertHarness(t)

	// Healthy traffic: 10ms latencies, no errors. No rule may fire.
	for i := 0; i < 70; i++ {
		h.lat.Observe(10 * time.Millisecond)
		h.total.Inc()
		h.tick()
	}
	if s := h.status(t, "p99_latency"); s.Firing || !s.FastOK || !s.SlowOK {
		t.Fatalf("healthy p99 rule = %+v", s)
	}
	if fired := h.reg.Counter("alerts_fired_total").Value(); fired != 0 {
		t.Fatalf("alerts_fired_total = %d during healthy traffic", fired)
	}

	// Latency regression: 500ms observations. (With p99 both windows
	// violate almost immediately — a single outlier past the 1% rank
	// moves the quantile — so this covers fire mechanics; the
	// fast-vs-slow gating delay is pinned in TestAlertBurnRateGating.)
	firedAt := -1
	for i := 0; i < 90; i++ {
		h.lat.Observe(500 * time.Millisecond)
		h.total.Inc()
		h.tick()
		if firedAt < 0 && h.status(t, "p99_latency").Firing {
			firedAt = i
		}
	}
	if firedAt < 0 {
		t.Fatal("p99 rule never fired under sustained violation")
	}
	st := h.status(t, "p99_latency")
	if st.Transitions != 1 || st.SinceMs == 0 {
		t.Errorf("firing state = %+v", st)
	}
	if got := h.reg.Counter("alerts_fired_total").Value(); got != 1 {
		t.Errorf("alerts_fired_total = %d, want 1", got)
	}
	if !strings.Contains(h.logBuf.String(), "alert firing") {
		t.Error("fire transition was not logged")
	}

	// The labeled gauge surfaces per-rule state in the registry.
	snap := h.reg.Snapshot()
	if v, ok := snap[`alert_firing{rule="p99_latency"}`]; !ok || v.(int64) != 1 {
		t.Errorf(`alert_firing{rule="p99_latency"} = %v, %v`, v, ok)
	}
	if v := snap["alerts_firing"]; v.(int64) != 1 {
		t.Errorf("alerts_firing = %v, want 1", v)
	}

	// Recovery: fast observations again. The rule resolves once the
	// fast window's p99 drops under the threshold, even though the
	// slow window still remembers the incident.
	for i := 0; i < 15; i++ {
		h.lat.Observe(5 * time.Millisecond)
		h.total.Inc()
		h.tick()
	}
	st = h.status(t, "p99_latency")
	if st.Firing {
		t.Fatalf("rule still firing after fast-window recovery: %+v", st)
	}
	if st.Transitions != 2 {
		t.Errorf("transitions = %d, want 2", st.Transitions)
	}
	if got := h.reg.Counter("alerts_resolved_total").Value(); got != 1 {
		t.Errorf("alerts_resolved_total = %d, want 1", got)
	}
	if !strings.Contains(h.logBuf.String(), "alert resolved") {
		t.Error("resolve transition was not logged")
	}
}

func TestAlertRatioRuleAndInsufficientData(t *testing.T) {
	h := newAlertHarness(t)

	// No traffic at all: rules are not evaluable and must not fire.
	for i := 0; i < 70; i++ {
		h.tick()
	}
	st := h.status(t, "error_rate")
	if st.Firing || st.FastOK || st.SlowOK {
		t.Fatalf("idle ratio rule = %+v", st)
	}

	// 50% failures, sustained past the slow window.
	for i := 0; i < 70; i++ {
		h.total.Add(2)
		h.failed.Inc()
		h.tick()
	}
	if st := h.status(t, "error_rate"); !st.Firing {
		t.Fatalf("error_rate rule did not fire: %+v", st)
	}

	// Traffic stops entirely: the fast window becomes non-evaluable,
	// which must hold state (no spurious resolve), not flap.
	for i := 0; i < 30; i++ {
		h.tick()
	}
	if st := h.status(t, "error_rate"); !st.Firing {
		t.Fatalf("error_rate resolved on missing data: %+v", st)
	}

	// Healthy traffic resumes → resolve.
	for i := 0; i < 15; i++ {
		h.total.Add(10)
		h.tick()
	}
	if st := h.status(t, "error_rate"); st.Firing {
		t.Fatalf("error_rate still firing after recovery: %+v", st)
	}
}

// TestAlertBurnRateGating pins the fast/slow pairing: a violation that
// saturates the fast window must not fire until the slow window also
// crosses the threshold — the gate that keeps a brief spike from
// paging — and the exact gating delay is deterministic with a ratio
// rule (slow-window ratio after k bad ticks of 60 is k/60).
func TestAlertBurnRateGating(t *testing.T) {
	reg := NewRegistry()
	total := reg.Counter("queries_total")
	failed := reg.Counter("queries_failed_total")
	ts := NewTimeSeries(reg, []Resolution{{Step: time.Second, Size: 600}})
	clock := newFakeClock()
	ts.SetNow(clock.Now)
	rules := []AlertRule{{Name: "error_rate", Kind: RuleRatio,
		Num: "queries_failed_total", Den: "queries_total", Max: 0.5}}
	alerts := NewAlerts(ts, reg, rules, 5*time.Second, 60*time.Second, nil)
	ts.OnTick = alerts.Eval

	// 60 healthy ticks fill the slow window with error-free traffic.
	for i := 0; i < 60; i++ {
		total.Add(10)
		ts.Sample()
		clock.Advance(time.Second)
	}
	// Total failure from here on. The fast window saturates at 1.0
	// within ~6 ticks; the slow window reaches 0.5 only once bad ticks
	// outnumber half its span (k/60 > 0.5 → k ≥ 31).
	firedAt := -1
	for k := 1; k <= 60; k++ {
		total.Add(10)
		failed.Add(10)
		ts.Sample()
		clock.Advance(time.Second)
		st := alerts.Snapshot().Rules[0]
		if firedAt < 0 && st.Firing {
			firedAt = k
		}
		if k >= 10 && k <= 25 {
			if !st.FastOK || st.FastValue <= 0.5 {
				t.Fatalf("tick %d: fast window should violate (got %v ok=%v)", k, st.FastValue, st.FastOK)
			}
			if st.Firing {
				t.Fatalf("tick %d: fired while the slow window (%v) was still under threshold", k, st.SlowValue)
			}
		}
	}
	if firedAt < 30 || firedAt > 35 {
		t.Errorf("fired at bad-tick %d, want ≈31 (slow-window crossing)", firedAt)
	}
}

func TestAlertsHandler(t *testing.T) {
	h := newAlertHarness(t)
	for i := 0; i < 3; i++ {
		h.total.Inc()
		h.tick()
	}
	rr := httptest.NewRecorder()
	AlertsHandler(h.alerts)(rr, httptest.NewRequest("GET", "/alerts", nil))
	var snap AlertsSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding /alerts: %v", err)
	}
	if len(snap.Rules) != 2 || snap.FastWindowMs != 10_000 || snap.SlowWindowMs != 60_000 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Firing != 0 {
		t.Errorf("firing = %d, want 0", snap.Firing)
	}
}
