package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Offline trace analysis over exported JSONL (the Exporter's format):
// ReadTraces decodes an archive, Analyze folds it into top-N slowest
// traces, per-operator latency/cardinality breakdowns, and
// estimate-vs-actual accuracy, and Render prints the report the
// `qb2olap trace` subcommand shows.

// ReadTraces decodes JSONL traces from r, skipping blank lines. A
// malformed line aborts with its line number, so a truncated tail
// (e.g. a crash mid-append) is reported rather than silently dropped.
func ReadTraces(r io.Reader) ([]*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	var out []*Trace
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var tr Trace
		if err := json.Unmarshal([]byte(text), &tr); err != nil {
			return out, fmt.Errorf("obs: trace archive line %d: %w", line, err)
		}
		if tr.Root == nil {
			return out, fmt.Errorf("obs: trace archive line %d: missing root span", line)
		}
		out = append(out, &tr)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: reading trace archive: %w", err)
	}
	return out, nil
}

// OpBreakdown aggregates every span of one operator kind across an
// archive.
type OpBreakdown struct {
	Op      string        `json:"op"`
	Count   int           `json:"count"`
	Wall    time.Duration `json:"wallNs"`
	MaxWall time.Duration `json:"maxWallNs"`
	In      int64         `json:"in"`
	Out     int64         `json:"out"`
	Mem     int64         `json:"memBytes,omitempty"`

	// Estimate accuracy over the spans that carried a planner estimate:
	// q-error is max(est,act)/min(est,act) with zero cardinalities
	// floored to 1 (so est=0/act=0 is a perfect 1.0).
	Estimated int     `json:"estimated,omitempty"`
	Within2x  int     `json:"within2x,omitempty"`
	MaxQErr   float64 `json:"maxQErr,omitempty"`
	GeoQErr   float64 `json:"geoQErr,omitempty"`

	sumLogQ float64
}

// Analysis is the digest of one trace archive.
type Analysis struct {
	Traces  int
	Spans   int
	Wall    time.Duration // sum of root wall times
	Slowest []*Trace      // all traces, slowest first
	Ops     []OpBreakdown // by cumulative wall time, descending
}

// qerr is the q-error of one estimated span.
func qerr(est, act int64) float64 {
	e, a := float64(est), float64(act)
	if e < 1 {
		e = 1
	}
	if a < 1 {
		a = 1
	}
	if e > a {
		return e / a
	}
	return a / e
}

// Analyze folds an archive into its digest.
func Analyze(traces []*Trace) *Analysis {
	a := &Analysis{Traces: len(traces)}
	ops := make(map[string]*OpBreakdown)
	for _, tr := range traces {
		a.Slowest = append(a.Slowest, tr)
		a.Wall += tr.Root.Wall
		tr.Root.Visit(func(s *Span) {
			a.Spans++
			b := ops[s.Op]
			if b == nil {
				b = &OpBreakdown{Op: s.Op}
				ops[s.Op] = b
			}
			b.Count++
			b.Wall += s.Wall
			if s.Wall > b.MaxWall {
				b.MaxWall = s.Wall
			}
			b.In += int64(s.In)
			b.Out += int64(s.Out)
			b.Mem += s.Mem
			if s.EstSet {
				b.Estimated++
				q := qerr(s.Est, int64(s.Out))
				b.sumLogQ += math.Log(q)
				if q > b.MaxQErr {
					b.MaxQErr = q
				}
				if q <= 2 {
					b.Within2x++
				}
			}
		})
	}
	sort.SliceStable(a.Slowest, func(i, j int) bool {
		return a.Slowest[i].Root.Wall > a.Slowest[j].Root.Wall
	})
	for _, b := range ops {
		if b.Estimated > 0 {
			b.GeoQErr = math.Exp(b.sumLogQ / float64(b.Estimated))
		}
		a.Ops = append(a.Ops, *b)
	}
	sort.Slice(a.Ops, func(i, j int) bool {
		if a.Ops[i].Wall != a.Ops[j].Wall {
			return a.Ops[i].Wall > a.Ops[j].Wall
		}
		return a.Ops[i].Op < a.Ops[j].Op
	})
	return a
}

// queryLine compresses a query text to its first non-empty,
// non-PREFIX line, capped for tabular display.
func queryLine(q string) string {
	for _, line := range strings.Split(q, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(strings.ToUpper(line), "PREFIX") {
			continue
		}
		if len(line) > 60 {
			line = line[:57] + "..."
		}
		return line
	}
	return ""
}

// Render prints the analysis: headline totals, the topN slowest traces,
// the per-operator breakdown, and estimate accuracy.
func (a *Analysis) Render(topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "traces: %d   spans: %d   total wall: %s\n",
		a.Traces, a.Spans, a.Wall.Round(time.Microsecond))
	if a.Traces == 0 {
		return b.String()
	}
	if topN <= 0 || topN > len(a.Slowest) {
		topN = len(a.Slowest)
	}

	fmt.Fprintf(&b, "\nTop %d slowest traces:\n", topN)
	fmt.Fprintf(&b, "  %-4s %-12s %-32s %-9s %s\n", "#", "WALL", "TRACE ID", "ROOT", "QUERY")
	for i, tr := range a.Slowest[:topN] {
		id := string(tr.ID)
		if id == "" {
			id = "-"
		}
		fmt.Fprintf(&b, "  %-4d %-12s %-32s %-9s %s\n",
			i+1, tr.Root.Wall.Round(time.Microsecond), id, tr.Root.Op, queryLine(tr.Query))
	}

	fmt.Fprintf(&b, "\nPer-operator breakdown:\n")
	fmt.Fprintf(&b, "  %-12s %7s %12s %12s %12s %12s %12s %10s\n",
		"OP", "COUNT", "TOTAL", "AVG", "MAX", "ROWS IN", "ROWS OUT", "MEM")
	for _, op := range a.Ops {
		avg := time.Duration(0)
		if op.Count > 0 {
			avg = op.Wall / time.Duration(op.Count)
		}
		mem := "-"
		if op.Mem > 0 {
			mem = FormatBytes(op.Mem)
		}
		fmt.Fprintf(&b, "  %-12s %7d %12s %12s %12s %12d %12d %10s\n",
			op.Op, op.Count,
			op.Wall.Round(time.Microsecond), avg.Round(time.Microsecond),
			op.MaxWall.Round(time.Microsecond), op.In, op.Out, mem)
	}

	estimated := false
	for _, op := range a.Ops {
		if op.Estimated > 0 {
			estimated = true
			break
		}
	}
	if estimated {
		fmt.Fprintf(&b, "\nEstimate accuracy (spans carrying planner estimates):\n")
		fmt.Fprintf(&b, "  %-12s %7s %10s %10s %10s\n", "OP", "SPANS", "GEO-QERR", "MAX-QERR", "WITHIN-2x")
		for _, op := range a.Ops {
			if op.Estimated == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-12s %7d %10.2f %10.2f %9.0f%%\n",
				op.Op, op.Estimated, op.GeoQErr, op.MaxQErr,
				100*float64(op.Within2x)/float64(op.Estimated))
		}
	}
	return b.String()
}
