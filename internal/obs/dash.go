package obs

import (
	"fmt"
	"html"
	"math"
	"net/http"
	"strings"
	"time"
)

// /debug/dash: a zero-dependency single-file HTML dashboard over the
// time-series rings. No external JS or CSS — the page is fully
// server-rendered with inline SVG sparklines and stat tiles, and
// refreshes itself with a <meta http-equiv=refresh> tag, so it works
// from nothing but a browser pointed at the endpoint. Colors follow
// the repo's chart conventions: series hues are reserved for marks,
// text wears ink tokens, status colors only ever mean status, and the
// dark theme is its own stepped palette (selected via
// prefers-color-scheme), not an automatic inversion.

// DashConfig names the registry metrics the dashboard's tiles read.
// Separating this from the handler lets sparqld and qb2olap bench share
// one dashboard over differently-named metric sets.
type DashConfig struct {
	Title          string
	QueriesCounter string   // q/s tile + throughput chart
	LatencyHist    string   // p50/p99 tiles + latency chart
	FailedCounter  string   // error-rate tile (ratio vs QueriesCounter)
	ShedCounter    string   // shed-rate tile (ratio vs QueriesCounter)
	InflightGauge  string   // in-flight tile
	Extra          []string // extra gauges tiled as-is (heap, goroutines)
}

// DefaultDashConfig is the sparqld metric set.
func DefaultDashConfig() DashConfig {
	return DashConfig{
		Title:          "sparqld",
		QueriesCounter: "queries_total",
		LatencyHist:    "query_latency",
		FailedCounter:  "queries_failed_total",
		ShedCounter:    "queries_shed_total",
		InflightGauge:  "queries_inflight",
		Extra:          []string{"go_heap_inuse_bytes", "go_goroutines"},
	}
}

// BenchDashConfig is the qb2olap bench metric set.
func BenchDashConfig() DashConfig {
	return DashConfig{
		Title:          "qb2olap bench",
		QueriesCounter: "bench_sent_total",
		LatencyHist:    "bench_latency",
		FailedCounter:  "bench_errors_total",
		ShedCounter:    "bench_shed_total",
		InflightGauge:  "bench_inflight",
		Extra:          []string{"go_heap_inuse_bytes", "go_goroutines"},
	}
}

// dashCSS holds the palette tokens: light values on .viz-root, dark
// values under both the OS media query and an explicit data-theme
// scope. Series colors are reserved for marks; status colors for the
// alert banner only.
const dashCSS = `
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
  --status-good: #0ca30c; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
  --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926;
}
body.viz-root {
  margin: 0; padding: 16px; background: var(--page); color: var(--text-primary);
  font: 14px/1.4 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; margin: 0 0 2px; }
.sub { color: var(--text-muted); font-size: 12px; margin-bottom: 12px; }
.sub a { color: var(--text-secondary); text-decoration: none; margin-right: 8px; }
.sub a.on { color: var(--text-primary); font-weight: 600; }
.banner { border-radius: 6px; padding: 8px 12px; margin-bottom: 12px;
  border: 1px solid var(--border); background: var(--surface-1); }
.banner .dot { display: inline-block; width: 10px; height: 10px; border-radius: 5px;
  margin-right: 8px; vertical-align: baseline; }
.banner.ok .dot { background: var(--status-good); }
.banner.bad .dot { background: var(--status-critical); }
.banner.bad { border-color: var(--status-critical); }
.banner small { color: var(--text-secondary); }
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(240px, 1fr)); gap: 12px; }
.tile { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 10px 12px; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
.tile .v { font-size: 26px; font-weight: 600; margin: 2px 0 6px; }
.tile .v small { font-size: 13px; font-weight: 400; color: var(--text-muted); }
.tile .mm { color: var(--text-muted); font-size: 11px;
  font-variant-numeric: tabular-nums; display: flex; justify-content: space-between; }
.tile.wide { grid-column: span 2; }
.nodata { color: var(--text-muted); font-size: 12px; padding: 12px 0; }
.lbl { font-size: 11px; fill: var(--text-secondary); }
svg polyline { fill: none; stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
svg .s1 { stroke: var(--series-1); }
svg .s2 { stroke: var(--series-2); }
svg .base { stroke: var(--grid); stroke-width: 1; }
`

// sparkSVG renders one or two series as an inline sparkline. Two series
// share one y-scale anchored at a zero baseline; labels name them
// directly in secondary ink (text never wears the series color).
func sparkSVG(s1, s2 []SeriesPoint, l1, l2 string) string {
	const w, h = 220.0, 42.0
	if len(s1) < 2 && len(s2) < 2 {
		return `<div class="nodata">no data yet</div>`
	}
	all := append(append([]SeriesPoint{}, s1...), s2...)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range all {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	if lo > 0 {
		lo = 0
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	scale := func(pts []SeriesPoint) string {
		if len(pts) < 2 {
			return ""
		}
		t0, t1 := pts[0].T, pts[len(pts)-1].T
		dt := float64(t1 - t0)
		if dt <= 0 {
			dt = 1
		}
		var b strings.Builder
		for i, p := range pts {
			x := float64(p.T-t0) / dt * w
			y := h - (p.V-lo)/span*h
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.1f,%.1f", x, y)
		}
		return b.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="100%%" height="%g" role="img">`, w, h+14, h+14)
	fmt.Fprintf(&b, `<line class="base" x1="0" y1="%g" x2="%g" y2="%g"/>`, h, w, h)
	if p := scale(s1); p != "" {
		fmt.Fprintf(&b, `<polyline class="s1" points="%s"/>`, p)
	}
	if p := scale(s2); p != "" {
		fmt.Fprintf(&b, `<polyline class="s2" points="%s"/>`, p)
	}
	if l1 != "" && len(s2) >= 2 {
		// Direct labels only when two series share the plot; a single
		// series is named by its tile heading.
		fmt.Fprintf(&b, `<text class="lbl" x="2" y="%g">%s</text>`, h+12, html.EscapeString(l1))
		fmt.Fprintf(&b, `<text class="lbl" x="%g" y="%g" text-anchor="end">%s</text>`, w-2, h+12, html.EscapeString(l2))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// fmtVal renders a tile value with a magnitude suffix.
func fmtVal(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av >= 100 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// DashHandler serves /debug/dash. alerts may be nil (no banner rules).
func DashHandler(ts *TimeSeries, alerts *Alerts, cfg DashConfig) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		window := parseWindowParam(r, "window", 5*time.Minute)
		snap := ts.Query("", window, 0)
		byName := make(map[string]*SeriesData, len(snap.Series))
		for i := range snap.Series {
			byName[snap.Series[i].Name] = &snap.Series[i]
		}
		series := func(name string) *SeriesData {
			if sd, ok := byName[name]; ok {
				return sd
			}
			return &SeriesData{}
		}

		var b strings.Builder
		b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">`)
		b.WriteString(`<meta http-equiv="refresh" content="2">`)
		fmt.Fprintf(&b, `<title>%s dashboard</title><style>%s</style></head><body class="viz-root">`,
			html.EscapeString(cfg.Title), dashCSS)
		fmt.Fprintf(&b, `<h1>%s</h1>`, html.EscapeString(cfg.Title))
		b.WriteString(`<div class="sub">window `)
		for _, opt := range []struct {
			d time.Duration
			l string
		}{{5 * time.Minute, "5m"}, {time.Hour, "1h"}, {12 * time.Hour, "12h"}} {
			cls := ""
			if opt.d == window {
				cls = ` class="on"`
			}
			fmt.Fprintf(&b, `<a href="?window=%s"%s>%s</a>`, opt.l, cls, opt.l)
		}
		fmt.Fprintf(&b, `· tick %dms · refreshed %s</div>`,
			snap.TickMs, time.UnixMilli(snap.NowMs).UTC().Format("15:04:05Z"))

		if alerts != nil {
			as := alerts.Snapshot()
			if as.Firing > 0 {
				var names []string
				for _, ru := range as.Rules {
					if ru.Firing {
						names = append(names, fmt.Sprintf("%s (%.3g > %.3g)", ru.Name, ru.FastValue, ru.Max))
					}
				}
				fmt.Fprintf(&b, `<div class="banner bad"><span class="dot"></span><b>%d alert(s) firing:</b> %s <small><a href="/alerts">details</a></small></div>`,
					as.Firing, html.EscapeString(strings.Join(names, ", ")))
			} else {
				fmt.Fprintf(&b, `<div class="banner ok"><span class="dot"></span>all %d alert rules quiet <small><a href="/alerts">details</a></small></div>`,
					len(as.Rules))
			}
		}

		b.WriteString(`<div class="grid">`)
		tile := func(wide bool, label, value, unit, svg string) {
			cls := "tile"
			if wide {
				cls = "tile wide"
			}
			fmt.Fprintf(&b, `<div class="%s"><div class="k">%s</div><div class="v">%s`,
				cls, html.EscapeString(label), value)
			if unit != "" {
				fmt.Fprintf(&b, ` <small>%s</small>`, html.EscapeString(unit))
			}
			fmt.Fprintf(&b, `</div>%s</div>`, svg)
		}

		// Throughput: windowed rate headline + per-interval rate spark.
		qsd := series(cfg.QueriesCounter)
		if rate, ok := ts.CounterRate(cfg.QueriesCounter, window); ok {
			tile(false, "throughput", fmtVal(rate), "q/s", sparkSVG(qsd.Rate, nil, "", ""))
		} else {
			tile(false, "throughput", "–", "q/s", sparkSVG(qsd.Rate, nil, "", ""))
		}

		// Latency: windowed p50/p99 headline + two-series chart.
		lsd := series(cfg.LatencyHist)
		p50, _, ok50 := ts.HistQuantileOver(cfg.LatencyHist, 0.50, window)
		p99, _, ok99 := ts.HistQuantileOver(cfg.LatencyHist, 0.99, window)
		lv := "–"
		if ok50 && ok99 {
			lv = fmt.Sprintf(`%s <small>p50</small> / %s`, html.EscapeString(fmtVal(p50)), html.EscapeString(fmtVal(p99)))
		}
		tile(true, "latency p50 / p99", lv, "ms p99", sparkSVG(lsd.P50, lsd.P99, "p50", "p99"))

		rateTile := func(label, num string) {
			nsd := series(num)
			if ratio, ok := ts.Ratio(num, cfg.QueriesCounter, window); ok {
				tile(false, label, fmt.Sprintf("%.2f", ratio*100), "%", sparkSVG(nsd.Rate, nil, "", ""))
			} else {
				tile(false, label, "–", "%", sparkSVG(nsd.Rate, nil, "", ""))
			}
		}
		rateTile("error rate", cfg.FailedCounter)
		rateTile("shed rate", cfg.ShedCounter)

		gaugeTile := func(label, name, unit string, scale float64) {
			sd := series(name)
			if v, ok := ts.Last(name); ok {
				tile(false, label, fmtVal(v/scale), unit, sparkSVG(sd.Points, nil, "", ""))
			} else {
				tile(false, label, "–", unit, sparkSVG(sd.Points, nil, "", ""))
			}
		}
		gaugeTile("in flight", cfg.InflightGauge, "", 1)
		for _, name := range cfg.Extra {
			unit, scale := "", 1.0
			label := name
			if strings.Contains(name, "bytes") {
				unit, scale = "MiB", 1 << 20
			}
			gaugeTile(label, name, unit, scale)
		}

		b.WriteString(`</div></body></html>`)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(b.String()))
	}
}
