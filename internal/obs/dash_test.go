package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// dashFixture builds a ticked TimeSeries with the sparqld metric names
// the default dashboard config reads.
func dashFixture(t *testing.T) (*TimeSeries, *Registry, *fakeClock) {
	t.Helper()
	reg := NewRegistry()
	q := reg.Counter("queries_total")
	lat := reg.Histogram("query_latency")
	reg.Counter("queries_failed_total")
	reg.Counter("queries_shed_total")
	reg.Gauge("queries_inflight", func() int64 { return 2 })
	ts := NewTimeSeries(reg, []Resolution{{Step: time.Second, Size: 300}})
	clock := newFakeClock()
	ts.SetNow(clock.Now)
	for i := 0; i < 30; i++ {
		q.Add(5)
		lat.Observe(8 * time.Millisecond)
		ts.Sample()
		clock.Advance(time.Second)
	}
	return ts, reg, clock
}

func TestDashHandlerRendersTilesAndSVG(t *testing.T) {
	ts, _, _ := dashFixture(t)
	h := DashHandler(ts, nil, DefaultDashConfig())
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/debug/dash", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	body := rr.Body.String()
	if ctype := rr.Header().Get("Content-Type"); !strings.Contains(ctype, "text/html") {
		t.Errorf("content type = %q", ctype)
	}
	for _, want := range []string{
		"<svg",        // sparklines rendered inline
		"<polyline",   // actual series geometry, not an empty frame
		"throughput",  // stat tiles
		"latency",
		"error rate",
		"in flight",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// No external assets: a single self-contained page.
	for _, banned := range []string{"<script src", "href=\"http", "src=\"http"} {
		if strings.Contains(body, banned) {
			t.Errorf("dashboard references external asset: found %q", banned)
		}
	}
}

func TestDashHandlerAlertBanner(t *testing.T) {
	ts, reg, clock := dashFixture(t)
	rules := []AlertRule{{Name: "error_rate", Kind: RuleRatio,
		Num: "queries_failed_total", Den: "queries_total", Max: 0.01}}
	alerts := NewAlerts(ts, reg, rules, 5*time.Second, 20*time.Second, nil)
	ts.OnTick = alerts.Eval
	h := DashHandler(ts, alerts, DefaultDashConfig())

	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/debug/dash", nil))
	if body := rr.Body.String(); !strings.Contains(body, "alert rules quiet") {
		t.Error("healthy banner missing")
	}

	// Drive the error ratio over the threshold in both windows.
	failed := reg.Counter("queries_failed_total")
	total := reg.Counter("queries_total")
	for i := 0; i < 30; i++ {
		total.Add(2)
		failed.Add(2)
		ts.Sample()
		clock.Advance(time.Second)
	}
	rr = httptest.NewRecorder()
	h(rr, httptest.NewRequest("GET", "/debug/dash", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "alert(s) firing") || !strings.Contains(body, "error_rate") {
		t.Errorf("firing banner missing rule name; body alerts section: %v",
			strings.Contains(body, "error_rate"))
	}
}

func TestSparkSVGEmptyAndShared(t *testing.T) {
	if out := sparkSVG(nil, nil, "", ""); !strings.Contains(out, "no data yet") {
		t.Errorf("empty spark = %q", out)
	}
	one := []SeriesPoint{{T: 0, V: 1}}
	if out := sparkSVG(one, nil, "", ""); !strings.Contains(out, "no data yet") {
		t.Errorf("single-point spark should render placeholder, got %q", out)
	}
	s1 := []SeriesPoint{{T: 0, V: 1}, {T: 1, V: 2}, {T: 2, V: 3}}
	s2 := []SeriesPoint{{T: 0, V: 10}, {T: 1, V: 20}, {T: 2, V: 30}}
	out := sparkSVG(s1, s2, "p50", "p99")
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("two-series spark missing polylines: %q", out)
	}
	// Two-series sparks carry direct labels so identity is not
	// color-alone.
	if !strings.Contains(out, ">p50<") || !strings.Contains(out, ">p99<") {
		t.Errorf("two-series spark missing direct labels: %q", out)
	}
}

func TestFmtVal(t *testing.T) {
	cases := map[float64]string{
		0:             "0",
		12.34:         "12.34",
		1500:          "1500",
		25_000:        "25.0k",
		2_500_000:     "2.50M",
		3_000_000_000: "3.00G",
	}
	for in, want := range cases {
		if got := fmtVal(in); got != want {
			t.Errorf("fmtVal(%v) = %q, want %q", in, got, want)
		}
	}
}
