package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// RegisterDebug mounts the diagnostic routes on mux:
//
//	/metrics            metrics registry snapshot as JSON
//	/debug/vars         expvar (cmdline, memstats, published registries)
//	/debug/pprof/...    runtime profiles (net/http/pprof)
//	/debug/traces       recent query traces, rendered as text
//	/debug/slow         retained slow queries, rendered as text
//	/workload           per-shape workload statistics (JSON/text)
//
// reg, tracer, slow, and workload may be nil, which skips their routes.
func RegisterDebug(mux *http.ServeMux, reg *Registry, tracer *Tracer, slow *SlowLog, workload *Workload) {
	if reg != nil {
		mux.Handle("/metrics", reg)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if tracer != nil {
		mux.HandleFunc("/debug/traces", TracesHandler(tracer))
	}
	if slow != nil {
		mux.HandleFunc("/debug/slow", SlowHandler(slow))
	}
	if workload != nil {
		mux.HandleFunc("/workload", WorkloadHandler(workload))
	}
}

// DebugMux returns a standalone diagnostics mux (the -debug-addr
// listener of sparqld).
func DebugMux(reg *Registry, tracer *Tracer, slow *SlowLog, workload *Workload) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux, reg, tracer, slow, workload)
	return mux
}

// TracesHandler serves the tracer's recent query traces (newest first)
// as plain text EXPLAIN ANALYZE trees.
func TracesHandler(tracer *Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		recent := tracer.Recent()
		if len(recent) == 0 {
			fmt.Fprintln(w, "no traces collected (is tracing enabled?)")
			return
		}
		for i, tr := range recent {
			if i > 0 {
				fmt.Fprintln(w, "----------------------------------------")
			}
			fmt.Fprintln(w, tr.Render())
		}
	}
}
