package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Exporter appends finished traces to a JSONL file — one
// json.Marshal(*Trace) per line — so traces survive process restarts
// and can be analyzed offline (`qb2olap trace`). The file is
// size-bounded: when an append would push it past MaxBytes the current
// file rotates to path.1 (shifting path.1 → path.2 … up to Keep
// generations, dropping the oldest), so a long-running server's trace
// archive occupies at most (Keep+1)·MaxBytes on disk.
//
// Safe for concurrent use; nil-safe like the rest of the package, so
// callers export unconditionally through an optional exporter.
type Exporter struct {
	mu      sync.Mutex
	path    string
	max     int64
	keep    int
	f       *os.File
	size    int64
	written int64
	dropped int64
}

// DefaultExportMaxBytes is the per-file rotation threshold used when
// NewExporter is given maxBytes <= 0.
const DefaultExportMaxBytes = 64 << 20

// NewExporter opens (appending) or creates the JSONL file at path.
// maxBytes <= 0 selects DefaultExportMaxBytes; keep is the number of
// rotated generations retained beside the live file (negative selects
// 2).
func NewExporter(path string, maxBytes int64, keep int) (*Exporter, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultExportMaxBytes
	}
	if keep < 0 {
		keep = 2
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening trace export: %w", err)
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	return &Exporter{path: path, max: maxBytes, keep: keep, f: f, size: size}, nil
}

// Export appends one trace. Nil-safe on both the exporter and the
// trace. Failed writes are counted (Dropped) and returned, but leave
// the exporter usable — an export problem must never take down the
// serving path.
func (e *Exporter) Export(tr *Trace) error {
	if e == nil || tr == nil {
		return nil
	}
	line, err := json.Marshal(tr)
	if err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	line = append(line, '\n')
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		e.dropped++
		return fmt.Errorf("obs: trace exporter is closed")
	}
	if e.size > 0 && e.size+int64(len(line)) > e.max {
		if err := e.rotate(); err != nil {
			e.dropped++
			return err
		}
	}
	n, err := e.f.Write(line)
	e.size += int64(n)
	if err != nil {
		e.dropped++
		return fmt.Errorf("obs: writing trace export: %w", err)
	}
	e.written++
	return nil
}

// rotate shifts path → path.1 → … → path.keep (dropping the oldest) and
// reopens a fresh live file. Caller holds e.mu.
func (e *Exporter) rotate() error {
	e.f.Close()
	e.f = nil
	if e.keep == 0 {
		// No generations retained: truncate in place.
		f, err := os.OpenFile(e.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("obs: rotating trace export: %w", err)
		}
		e.f, e.size = f, 0
		return nil
	}
	os.Remove(fmt.Sprintf("%s.%d", e.path, e.keep))
	for i := e.keep - 1; i >= 1; i-- {
		os.Rename(fmt.Sprintf("%s.%d", e.path, i), fmt.Sprintf("%s.%d", e.path, i+1))
	}
	os.Rename(e.path, e.path+".1")
	f, err := os.OpenFile(e.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("obs: rotating trace export: %w", err)
	}
	e.f, e.size = f, 0
	return nil
}

// Written reports traces successfully appended over the exporter's
// lifetime; Dropped reports traces lost to write errors.
func (e *Exporter) Written() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.written
}

// Dropped reports traces lost to write errors.
func (e *Exporter) Dropped() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Path returns the live file's path.
func (e *Exporter) Path() string {
	if e == nil {
		return ""
	}
	return e.path
}

// Close flushes and closes the live file. Nil-safe; Export after Close
// reports an error.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return nil
	}
	err := e.f.Close()
	e.f = nil
	return err
}
