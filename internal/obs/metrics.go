package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math/bits"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// histBuckets is the number of log2 latency buckets; bucket i counts
// observations d with bits.Len64(d in µs) == i, i.e. d < 2^i µs, so the
// top bucket covers everything from ~9 minutes up.
const histBuckets = 30

// Histogram is a lock-free log2-bucketed latency histogram. Observe is
// two atomic adds plus one atomic add into a bucket, cheap enough for
// per-request use on hot paths.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	b := bits.Len64(uint64(d.Microseconds()))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// HistogramSnapshot is a point-in-time JSON-friendly view: totals,
// estimated quantiles (linearly interpolated within the landing log2
// bucket, in milliseconds), and the non-empty buckets.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumMs   float64           `json:"sumMs"`
	AvgMs   float64           `json:"avgMs"`
	P50Ms   float64           `json:"p50Ms"`
	P90Ms   float64           `json:"p90Ms"`
	P95Ms   float64           `json:"p95Ms"`
	P99Ms   float64           `json:"p99Ms"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Quantiles renders the headline quantiles as one human-readable line
// (used by the sparqld shutdown summary).
func (s HistogramSnapshot) Quantiles() string {
	return fmt.Sprintf("count=%d avg=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms",
		s.Count, s.AvgMs, s.P50Ms, s.P95Ms, s.P99Ms)
}

// HistogramBucket is one non-empty bucket: the count of observations
// below the upper bound LeMs.
type HistogramBucket struct {
	LeMs  float64 `json:"leMs"`
	Count int64   `json:"count"`
}

// bucketUpperMs returns bucket i's upper bound in milliseconds (2^i µs).
func bucketUpperMs(i int) float64 {
	return float64(uint64(1)<<uint(i)) / 1000
}

// Snapshot returns a consistent-enough view for reporting (buckets are
// read without a global lock; concurrent Observe calls may skew totals
// by a few in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	sum := time.Duration(h.sumNs.Load())
	s.SumMs = float64(sum) / float64(time.Millisecond)
	if s.Count > 0 {
		s.AvgMs = s.SumMs / float64(s.Count)
	}
	var counts [histBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{LeMs: bucketUpperMs(i), Count: counts[i]})
		}
	}
	s.P50Ms = quantileFromBuckets(&counts, total, 0.50)
	s.P90Ms = quantileFromBuckets(&counts, total, 0.90)
	s.P95Ms = quantileFromBuckets(&counts, total, 0.95)
	s.P99Ms = quantileFromBuckets(&counts, total, 0.99)
	return s
}

// quantileFromBuckets interpolates the q-quantile (in milliseconds)
// from a log2 bucket-count array totaling total observations. Each
// quantile lands in one log2 bucket; interpolating linearly by rank
// inside that bucket turns the coarse upper bound into an
// approximation whose error is bounded by the bucket width. It is
// shared by live Histogram snapshots and the time-series windowed
// quantiles (which diff two cumulative bucket samples first).
func quantileFromBuckets(counts *[histBuckets]int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= target {
			lo := 0.0
			if i > 0 {
				lo = bucketUpperMs(i - 1)
			}
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(bucketUpperMs(i)-lo)
		}
		cum += c
	}
	return bucketUpperMs(histBuckets - 1)
}

// Label is one constant name/value pair attached to a labeled gauge.
// Values are escaped for the Prometheus exposition at registration.
type Label struct {
	Key   string
	Value string
}

// labeledGauge is one registered gauge instance of a labeled family:
// the labels, their pre-rendered `{k="v",...}` suffix (Prometheus
// escaping applied once), and the sampling function.
type labeledGauge struct {
	labels []Label
	suffix string
	fn     func() int64
}

// Registry is a named collection of counters, gauges, and histograms.
// Registration is get-or-create and mutex-protected; the metrics
// themselves are atomic, so updates never contend on the registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() int64
	labeled  map[string][]labeledGauge
	hists    map[string]*Histogram
	// gen counts registrations, so samplers holding a cached view of
	// the metric set (the time-series collector) can detect new metrics
	// with one comparison instead of re-walking the maps every tick.
	gen int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() int64),
		labeled:  make(map[string][]labeledGauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.gen++
	}
	return c
}

// Gauge registers a function sampled at snapshot time (e.g. store
// size). Registering a name again replaces the previous function.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	r.gauges[name] = fn
}

// GaugeWith registers a gauge carrying constant labels, e.g.
// alert_firing{rule="p99_latency"}. All instances of one name form a
// family sharing a single # TYPE line in the Prometheus exposition; in
// the JSON snapshot each instance appears under the rendered
// name{k="v",...} key. Re-registering the same name and label set
// replaces the sampling function.
func (r *Registry) GaugeWith(name string, labels []Label, fn func() int64) {
	suffix := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, lg := range r.labeled[name] {
		if lg.suffix == suffix {
			r.labeled[name][i].fn = fn
			r.gen++
			return
		}
	}
	r.labeled[name] = append(r.labeled[name], labeledGauge{labels: labels, suffix: suffix, fn: fn})
	r.gen++
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
		r.gen++
	}
	return h
}

// Snapshot returns every metric's current value keyed by name
// (counters and gauges as integers, histograms as HistogramSnapshot).
// json.Marshal of the result emits keys in sorted order.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	labeled := make(map[string][]labeledGauge, len(r.labeled))
	for k, v := range r.labeled {
		labeled[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out := make(map[string]any, len(counters)+len(gauges)+len(hists))
	for k, c := range counters {
		out[k] = c.Value()
	}
	for k, fn := range gauges {
		out[k] = fn()
	}
	for k, lgs := range labeled {
		for _, lg := range lgs {
			out[k+lg.suffix] = lg.fn()
		}
	}
	for k, h := range hists {
		out[k] = h.Snapshot()
	}
	return out
}

// ObserveTrace folds a finished query trace into per-operator totals:
// op.<OP>.count executions and op.<OP>.wallNs cumulative wall time for
// every span of the tree.
func (r *Registry) ObserveTrace(tr *Trace) {
	if tr == nil || tr.Root == nil {
		return
	}
	tr.Root.Visit(func(s *Span) {
		r.Counter("op." + s.Op + ".count").Inc()
		r.Counter("op." + s.Op + ".wallNs").Add(int64(s.Wall))
	})
}

// ServeHTTP is the /metrics handler. The default response is the JSON
// snapshot; a request whose Accept header names text/plain (and not
// JSON first) — a Prometheus scraper — gets the text exposition format
// of WritePrometheus instead.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req != nil {
		accept := req.Header.Get("Accept")
		if strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			r.WritePrometheus(w)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Snapshot())
}

// publishMu serializes expvar publication; expvar.Publish panics on
// duplicate names, so Publish registers each name at most once per
// process.
var (
	publishMu   sync.Mutex
	publishSeen = make(map[string]bool)
)

// Publish exposes the registry's snapshot as one expvar variable, so it
// appears under /debug/vars next to cmdline and memstats. Publishing
// the same name twice (e.g. from tests) keeps the first registration.
func (r *Registry) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if publishSeen[name] {
		return
	}
	publishSeen[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
