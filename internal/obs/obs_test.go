package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeRender(t *testing.T) {
	root := StartSpan("SELECT", "", 1)
	bgp := root.StartChild("BGP", "2 patterns", 1)
	j1 := bgp.StartChild("JOIN", "?s <p> ?o", 1)
	j1.Finish(10, 1)
	j2 := bgp.StartChild("JOIN", "?o <q> ?v", 10)
	j2.Finish(5, 2)
	bgp.Finish(5, 2)
	f := root.StartChild("FILTER", "", 5)
	f.Finish(3, 1)
	root.Finish(3, 1)

	outline := root.Outline()
	want := strings.Join([]string{
		"SELECT  [in=1 out=3]",
		"├─ BGP 2 patterns  [in=1 out=5 workers=2]",
		"│  ├─ JOIN ?s <p> ?o  [in=1 out=10]",
		"│  └─ JOIN ?o <q> ?v  [in=10 out=5 workers=2]",
		"└─ FILTER  [in=5 out=3]",
		"",
	}, "\n")
	if outline != want {
		t.Errorf("outline mismatch:\ngot:\n%s\nwant:\n%s", outline, want)
	}
	if !strings.Contains(root.Render(), "time=") {
		t.Error("Render should include wall times")
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	c := s.StartChild("X", "", 0)
	if c != nil {
		t.Fatal("child of nil span should be nil")
	}
	c.Finish(0, 0) // must not panic
	c.Visit(func(*Span) { t.Fatal("visit of nil span must not call fn") })
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := StartSpan("UNION", "", 0)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root.StartChild("BRANCH", "", 0).Finish(1, 1)
		}()
	}
	wg.Wait()
	if len(root.Children) != 32 {
		t.Fatalf("got %d children, want 32", len(root.Children))
	}
}

func TestTracerRing(t *testing.T) {
	var finished int
	tr := NewTracer(2)
	tr.OnFinish = func(*Trace) { finished++ }
	for i := 0; i < 5; i++ {
		sp := StartSpan("SELECT", "", 0)
		sp.Finish(i, 1)
		tr.Collect(&Trace{Root: sp})
	}
	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("got %d recent traces, want 2", len(recent))
	}
	if recent[0].Root.Out != 4 || recent[1].Root.Out != 3 {
		t.Errorf("recent not newest-first: out=%d,%d", recent[0].Root.Out, recent[1].Root.Out)
	}
	if finished != 5 {
		t.Errorf("OnFinish called %d times, want 5", finished)
	}
	var nilTracer *Tracer
	nilTracer.Collect(&Trace{}) // must not panic
	if nilTracer.Recent() != nil {
		t.Error("nil tracer should have no traces")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations (~0.5ms), 10 slow ones (~100ms).
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := 90*0.5 + 10*100
	if s.SumMs < wantSum-1 || s.SumMs > wantSum+1 {
		t.Errorf("sumMs = %v, want ~%v", s.SumMs, wantSum)
	}
	// p50 lands in the fast bucket (< ~1ms), p99 in the slow one.
	if s.P50Ms > 2 {
		t.Errorf("p50Ms = %v, want <= ~1ms upper bound", s.P50Ms)
	}
	if s.P99Ms < 64 {
		t.Errorf("p99Ms = %v, want >= slow bucket bound", s.P99Ms)
	}
	if len(s.Buckets) != 2 {
		t.Errorf("got %d non-empty buckets, want 2", len(s.Buckets))
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := &Histogram{}
	h.Observe(-time.Second) // clamped to 0
	h.Observe(0)
	h.Observe(24 * time.Hour) // clamped to top bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("queries_total").Add(3)
	reg.Counter("queries_total").Inc() // same counter
	reg.Gauge("store_quads", func() int64 { return 42 })
	reg.Histogram("query_latency").Observe(time.Millisecond)

	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if string(got["queries_total"]) != "4" {
		t.Errorf("queries_total = %s, want 4", got["queries_total"])
	}
	if string(got["store_quads"]) != "42" {
		t.Errorf("store_quads = %s, want 42", got["store_quads"])
	}
	var hist HistogramSnapshot
	if err := json.Unmarshal(got["query_latency"], &hist); err != nil || hist.Count != 1 {
		t.Errorf("query_latency snapshot = %s (err %v)", got["query_latency"], err)
	}
}

func TestObserveTrace(t *testing.T) {
	reg := NewRegistry()
	root := StartSpan("SELECT", "", 1)
	root.StartChild("BGP", "", 1).Finish(5, 1)
	root.StartChild("BGP", "", 5).Finish(2, 1)
	root.Finish(2, 1)
	reg.ObserveTrace(&Trace{Root: root})
	reg.ObserveTrace(nil) // no-op

	if n := reg.Counter("op.SELECT.count").Value(); n != 1 {
		t.Errorf("op.SELECT.count = %d, want 1", n)
	}
	if n := reg.Counter("op.BGP.count").Value(); n != 2 {
		t.Errorf("op.BGP.count = %d, want 2", n)
	}
}

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	tracer := NewTracer(4)
	mux := DebugMux(reg, tracer, NewSlowLog(4), NewWorkload(0))
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/", "/debug/traces", "/debug/slow", "/workload"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
	sp := StartSpan("SELECT", "", 0)
	sp.Finish(1, 1)
	tracer.Collect(&Trace{Query: "SELECT * WHERE { ?s ?p ?o }", Root: sp})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if !strings.Contains(rec.Body.String(), "SELECT * WHERE") {
		t.Errorf("/debug/traces missing query text:\n%s", rec.Body.String())
	}
}
