package obs

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// --- sampler ---------------------------------------------------------

// TestSamplerDeterminism: the verdict is a pure function of (rate,
// trace ID), so two samplers at the same rate — e.g. a client and a
// server — always agree, and repeated calls never flip.
func TestSamplerDeterminism(t *testing.T) {
	a, b := NewSampler(0.3), NewSampler(0.3)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		va, vb := a.Sample(id), b.Sample(id)
		if va != vb {
			t.Fatalf("samplers disagree on %s: %v vs %v", id, va, vb)
		}
		if again := a.Sample(id); again != va {
			t.Fatalf("verdict for %s flipped: %v then %v", id, va, again)
		}
	}
}

// TestSamplerRate checks the sampled fraction tracks the configured
// rate over random IDs, and the 0/1 endpoints are exact.
func TestSamplerRate(t *testing.T) {
	const n = 20000
	for _, rate := range []float64{0, 0.01, 0.25, 1} {
		s := NewSampler(rate)
		hits := 0
		for i := 0; i < n; i++ {
			if s.Sample(NewTraceID()) {
				hits++
			}
		}
		got := float64(hits) / n
		switch rate {
		case 0:
			if hits != 0 {
				t.Errorf("rate 0 sampled %d traces", hits)
			}
		case 1:
			if hits != n {
				t.Errorf("rate 1 sampled %d/%d traces", hits, n)
			}
		default:
			// 5σ-ish tolerance on a binomial with n=20000.
			tol := 5 * (0.5 / 141.4)
			if got < rate-tol || got > rate+tol {
				t.Errorf("rate %g sampled fraction %g", rate, got)
			}
		}
	}
}

// TestSamplerNilAndRateLimit: a nil sampler samples everything; the
// per-second cap bounds sampled volume inside one wall-clock second and
// resets with the next.
func TestSamplerNilAndRateLimit(t *testing.T) {
	var nilSampler *Sampler
	if !nilSampler.Sample(NewTraceID()) {
		t.Error("nil sampler must sample everything")
	}
	if nilSampler.Rate() != 1 {
		t.Errorf("nil sampler rate = %g, want 1", nilSampler.Rate())
	}

	s := NewSampler(1)
	s.SetMaxPerSec(3)
	now := time.Unix(100, 0)
	s.now = func() time.Time { return now }
	hits := 0
	for i := 0; i < 10; i++ {
		if s.Sample(NewTraceID()) {
			hits++
		}
	}
	if hits != 3 {
		t.Errorf("capped sampler took %d traces in one second, want 3", hits)
	}
	now = now.Add(time.Second)
	if !s.Sample(NewTraceID()) {
		t.Error("cap did not reset with the next second")
	}
}

// --- traceparent + span wire -----------------------------------------

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	parent := NewSpanID()
	for _, sampled := range []bool{true, false} {
		v := FormatTraceparent(id, parent, sampled)
		tc, ok := ParseTraceparent(v)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) not ok", v)
		}
		if tc.TraceID != id || tc.Parent != parent || tc.Sampled != sampled {
			t.Errorf("round trip of %q = %+v", v, tc)
		}
	}
	for _, bad := range []string{
		"",
		"00-short-span-01",
		"00-" + strings.Repeat("0", 32) + "-" + string(NewSpanID()) + "-01", // all-zero trace ID
		"00-" + string(NewTraceID()) + "-" + strings.Repeat("0", 16) + "-01",
		"zz-" + string(NewTraceID()) + "-" + NewSpanID() + "-01",
		"00_" + string(NewTraceID()) + "_" + NewSpanID() + "_01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed value", bad)
		}
	}
}

func TestSpanWireRoundTrip(t *testing.T) {
	root := StartSpan("SELECT", "", 1)
	child := root.StartChild("BGP", "?s p ?o", 10)
	child.SetEst(7)
	child.Finish(5, 2)
	root.Finish(5, 1)

	wire, ok := EncodeSpanWire(root)
	if !ok {
		t.Fatal("EncodeSpanWire failed")
	}
	back, err := DecodeSpanWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Outline() != root.Outline() {
		t.Errorf("wire round trip changed outline:\n%s\nvs\n%s", back.Outline(), root.Outline())
	}
	if !back.Children[0].Estimated() {
		t.Error("estimate flag lost on the wire")
	}

	if s, err := DecodeSpanWire(""); err != nil || s != nil {
		t.Errorf("empty wire = (%v, %v), want (nil, nil)", s, err)
	}
	if _, err := DecodeSpanWire("!!!not-base64!!!"); err == nil {
		t.Error("malformed wire decoded without error")
	}

	// A tree larger than the wire cap is dropped, not truncated.
	big := StartSpan("SELECT", strings.Repeat("x", MaxWireSpanBytes), 1)
	big.Finish(0, 1)
	if _, ok := EncodeSpanWire(big); ok {
		t.Error("oversized span tree encoded past the cap")
	}
}

// --- exporter --------------------------------------------------------

func exportTrace(id TraceID, query string, wall time.Duration) *Trace {
	root := StartSpan("SELECT", "", 1)
	sp := root.StartChild("BGP", "?s p ?o", 4)
	sp.SetEst(3)
	sp.Finish(2, 1)
	root.Finish(2, 1)
	root.Wall = wall
	return &Trace{ID: id, Start: time.Unix(1000, 0), Query: query, Root: root}
}

// TestExporterRotation drives an exporter past its size bound and
// checks the live file plus every rotated generation stays within it,
// the oldest generation is dropped, and the surviving lines decode.
func TestExporterRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "traces.jsonl")
	const maxBytes = 2048
	e, err := NewExporter(path, maxBytes, 2)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("q", 256)
	for i := 0; i < 64; i++ {
		if err := e.Export(exportTrace(NewTraceID(), pad, time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Written() != 64 || e.Dropped() != 0 {
		t.Errorf("written=%d dropped=%d, want 64/0", e.Written(), e.Dropped())
	}

	total := 0
	for _, p := range []string{path, path + ".1", path + ".2"} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("expected %s to exist after rotation: %v", p, err)
		}
		// One oversized-line grace: each file holds at most one line that
		// crossed the bound.
		if st.Size() > maxBytes+1024 {
			t.Errorf("%s is %d bytes, over the bound", p, st.Size())
		}
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		traces, err := ReadTraces(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		total += len(traces)
	}
	if total >= 64 {
		t.Errorf("retained %d traces; rotation should have dropped the oldest generation", total)
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Error("more rotated generations than keep=2")
	}

	// Export after Close fails but does not panic.
	if err := e.Export(exportTrace(NewTraceID(), "late", time.Millisecond)); err == nil {
		t.Error("export after Close succeeded")
	}
	var nilExp *Exporter
	if err := nilExp.Export(exportTrace(NewTraceID(), "x", 0)); err != nil {
		t.Errorf("nil exporter errored: %v", err)
	}
}

// TestExporterAppendsAcrossReopen: reopening an existing archive
// appends (traces survive restarts) and counts the existing bytes
// toward the rotation bound.
func TestExporterAppendsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	for i := 0; i < 2; i++ {
		e, err := NewExporter(path, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Export(exportTrace(NewTraceID(), "q", time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		e.Close()
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traces, err := ReadTraces(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Errorf("archive holds %d traces after two sessions, want 2", len(traces))
	}
}

// --- analyzer --------------------------------------------------------

func TestAnalyzeAndRender(t *testing.T) {
	fast := exportTrace("aaaa0000aaaa0000aaaa0000aaaa0000", "PREFIX ex: <http://e/>\nSELECT ?fast WHERE { ?s ?p ?o }", 2*time.Millisecond)
	slow := exportTrace("bbbb0000bbbb0000bbbb0000bbbb0000", "SELECT ?slow WHERE { ?s ?p ?o }", 50*time.Millisecond)
	a := Analyze([]*Trace{fast, slow})

	if a.Traces != 2 || a.Spans != 4 {
		t.Fatalf("traces=%d spans=%d, want 2/4", a.Traces, a.Spans)
	}
	if a.Slowest[0] != slow {
		t.Error("slowest-first ordering wrong")
	}
	var bgp *OpBreakdown
	for i := range a.Ops {
		if a.Ops[i].Op == "BGP" {
			bgp = &a.Ops[i]
		}
	}
	if bgp == nil {
		t.Fatal("no BGP breakdown")
	}
	if bgp.Count != 2 || bgp.Estimated != 2 || bgp.In != 8 || bgp.Out != 4 {
		t.Errorf("BGP breakdown = %+v", bgp)
	}
	// est=3 act=2 → q-error 1.5 on both spans.
	if bgp.MaxQErr < 1.49 || bgp.MaxQErr > 1.51 || bgp.Within2x != 2 {
		t.Errorf("BGP q-error = %+v", bgp)
	}

	out := a.Render(1)
	for _, want := range []string{
		"traces: 2", "Top 1 slowest", "bbbb0000", "SELECT ?slow",
		"Per-operator breakdown", "BGP", "Estimate accuracy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "PREFIX") {
		t.Error("query line should skip PREFIX lines")
	}
	if strings.Contains(out, "aaaa0000") {
		t.Error("top-1 listing leaked the second trace")
	}
}

func TestReadTracesMalformed(t *testing.T) {
	_, err := ReadTraces(strings.NewReader("{\"root\":{\"op\":\"SELECT\"}}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed line error = %v, want line 2", err)
	}
	_, err = ReadTraces(strings.NewReader("{\"query\":\"no root\"}\n"))
	if err == nil || !strings.Contains(err.Error(), "root") {
		t.Errorf("missing-root error = %v", err)
	}
}

// --- prometheus exposition -------------------------------------------

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("queries_total").Add(7)
	reg.Gauge("store.quads", func() int64 { return 42 })
	reg.Histogram("query_latency").Observe(10 * time.Millisecond)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE queries_total counter\nqueries_total 7\n",
		"# TYPE store_quads gauge\nstore_quads 42\n",
		"# TYPE query_latency_seconds summary\n",
		`query_latency_seconds{quantile="0.99"}`,
		"query_latency_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}

	// Content negotiation: text/plain gets the exposition format, the
	// default stays JSON.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	reg.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Accept: text/plain got Content-Type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE queries_total counter") {
		t.Error("negotiated response is not the exposition format")
	}

	rec = httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q, want application/json", ct)
	}
	var nilReq *http.Request
	_ = nilReq // reg.ServeHTTP with a nil request stays on the JSON path
	rec = httptest.NewRecorder()
	reg.ServeHTTP(rec, nil)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("nil-request Content-Type = %q, want application/json", ct)
	}
}
