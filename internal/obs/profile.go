package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync/atomic"
	"time"
)

// Profiler captures pprof profiles into a size-bounded rotating
// directory when a trigger fires — the continuous-profiling half of the
// resource-accounting layer. Filenames carry the trigger, a
// millisecond timestamp, and the trace ID of the query that tripped
// the threshold, so a profile joins back to its trace in the JSONL
// archive:
//
//	heap_slow_1699999999123_4bf92f3577b34da6a3ce929d0e0e4736.pprof
//
// Captures are rate-limited (MinInterval) so a sustained overload
// yields a sampled timeline instead of a capture per request, and the
// directory is pruned oldest-first past MaxBytes — the same bounded
// retention idiom as the trace exporter's file rotation. All methods
// are nil-safe.
type Profiler struct {
	dir string

	// MaxBytes bounds the directory; oldest profiles are removed first
	// (<= 0 selects DefaultProfileMaxBytes).
	MaxBytes int64

	// MinInterval is the minimum spacing between captures
	// (<= 0 selects DefaultProfileInterval).
	MinInterval time.Duration

	// CPUSeconds, when > 0, additionally records a CPU profile of that
	// many seconds in the background after each heap capture. At most
	// one CPU profile runs at a time (a Go runtime restriction).
	CPUSeconds int

	lastCapture atomic.Int64 // unix nanos of the last capture
	cpuBusy     atomic.Bool
	captured    atomic.Int64
	skipped     atomic.Int64
}

// DefaultProfileMaxBytes bounds the profile directory (64 MB, matching
// the trace exporter's default rotation budget).
const DefaultProfileMaxBytes int64 = 64 << 20

// DefaultProfileInterval spaces threshold-triggered captures.
const DefaultProfileInterval = 30 * time.Second

// NewProfiler creates dir if needed and returns a profiler writing into
// it.
func NewProfiler(dir string) (*Profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile dir: %w", err)
	}
	return &Profiler{dir: dir}, nil
}

// Dir returns the profile directory. Nil-safe.
func (p *Profiler) Dir() string {
	if p == nil {
		return ""
	}
	return p.dir
}

// Captured returns how many profiles were written. Nil-safe.
func (p *Profiler) Captured() int64 {
	if p == nil {
		return 0
	}
	return p.captured.Load()
}

// Skipped returns how many triggers were dropped by rate limiting.
// Nil-safe.
func (p *Profiler) Skipped() int64 {
	if p == nil {
		return 0
	}
	return p.skipped.Load()
}

// MaybeCapture records a heap profile (and, when CPUSeconds > 0, kicks
// off a background CPU profile) if the rate limit allows, returning the
// heap profile path when one was written. trigger names the threshold
// that fired ("slow", "mem"); id is the trace of the offending query
// (may be empty). Nil-safe.
func (p *Profiler) MaybeCapture(trigger string, id TraceID) (string, bool) {
	if p == nil {
		return "", false
	}
	min := p.MinInterval
	if min <= 0 {
		min = DefaultProfileInterval
	}
	now := time.Now()
	last := p.lastCapture.Load()
	if last != 0 && now.Sub(time.Unix(0, last)) < min {
		p.skipped.Add(1)
		return "", false
	}
	if !p.lastCapture.CompareAndSwap(last, now.UnixNano()) {
		p.skipped.Add(1) // another trigger won the race
		return "", false
	}
	stamp := now.UnixMilli()
	tid := string(id)
	if tid == "" {
		tid = "untraced"
	}
	heapPath := filepath.Join(p.dir, fmt.Sprintf("heap_%s_%d_%s.pprof", trigger, stamp, tid))
	if err := p.writeHeap(heapPath); err != nil {
		return "", false
	}
	p.captured.Add(1)
	if p.CPUSeconds > 0 && p.cpuBusy.CompareAndSwap(false, true) {
		cpuPath := filepath.Join(p.dir, fmt.Sprintf("cpu_%s_%d_%s.pprof", trigger, stamp, tid))
		go func() {
			defer p.cpuBusy.Store(false)
			if err := p.writeCPU(cpuPath, time.Duration(p.CPUSeconds)*time.Second); err == nil {
				p.captured.Add(1)
				p.enforceCap()
			}
		}()
	}
	p.enforceCap()
	return heapPath, true
}

func (p *Profiler) writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.Lookup("heap").WriteTo(f, 0)
}

func (p *Profiler) writeCPU(path string, d time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return nil
}

// enforceCap prunes the oldest profiles until the directory fits
// MaxBytes.
func (p *Profiler) enforceCap() {
	max := p.MaxBytes
	if max <= 0 {
		max = DefaultProfileMaxBytes
	}
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return
	}
	type finfo struct {
		path string
		mod  time.Time
		size int64
	}
	var files []finfo
	var total int64
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".pprof" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, finfo{filepath.Join(p.dir, e.Name()), info.ModTime(), info.Size()})
		total += info.Size()
	}
	if total <= max {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for _, f := range files {
		if total <= max {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
		}
	}
}
