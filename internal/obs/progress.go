package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"sync"
	"time"
)

// Progress is the write-side (ETL) counterpart of the query tracer: a
// phase-structured progress reporter for enrichment and bulk-load runs.
// A run is divided into named phases (redefinition, discovery,
// generation, commit, load, …); each phase accumulates a step count, an
// optional step total (enabling rate and ETA), named counters, and the
// wall time of its activation windows. A phase may be re-entered — the
// demo enrichment script runs "discovery" once per suggested dimension
// — and keeps accumulating, so the final report is stable no matter how
// the phases interleave.
//
// Events are pushed to OnEvent (throttled to MinInterval) for live
// rendering; Report() returns the machine-readable run report written
// at the end of every enrich/load run. All methods are nil-safe on both
// *Progress and *Phase, mirroring the Span idiom, so instrumented code
// needs no "is progress enabled?" branches.
type Progress struct {
	// OnEvent, when non-nil, receives throttled progress events. Set
	// it before the reporter is shared.
	OnEvent func(ProgressEvent)

	// MinInterval throttles non-final events (<= 0 selects 200ms).
	MinInterval time.Duration

	mu       sync.Mutex
	run      string
	started  time.Time
	phases   []*Phase
	byName   map[string]*Phase
	counters map[string]int64
	lastEmit time.Time
}

// ProgressEvent is one live progress update.
type ProgressEvent struct {
	Run   string
	Phase string
	Done  int64
	Total int64         // 0 when unknown
	Rate  float64       // steps per second over the phase's active time
	ETA   time.Duration // 0 when unknowable
	Final bool          // the phase's activation window just closed
}

// NewProgress returns a reporter for one named run.
func NewProgress(run string) *Progress {
	return &Progress{
		run:      run,
		started:  time.Now(),
		byName:   make(map[string]*Phase),
		counters: make(map[string]int64),
	}
}

// Phase is one named accumulator within a run.
type Phase struct {
	p           *Progress
	name        string
	done, total int64
	wall        time.Duration
	counters    map[string]int64
	active      bool
	activeSince time.Time
}

// Phase returns the named phase, creating it on first use, and opens an
// activation window (a no-op if the phase is already active). Nil-safe.
func (p *Progress) Phase(name string) *Phase {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ph, ok := p.byName[name]
	if !ok {
		ph = &Phase{p: p, name: name, counters: make(map[string]int64)}
		p.byName[name] = ph
		p.phases = append(p.phases, ph)
	}
	if !ph.active {
		ph.active = true
		ph.activeSince = time.Now()
	}
	return ph
}

// Count adds n to a run-level counter (e.g. the SPARQL queries issued
// across all phases). Nil-safe.
func (p *Progress) Count(name string, n int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.counters[name] += n
	p.mu.Unlock()
}

// Grow raises the phase's step total by n (totals accumulate across
// activation windows, so re-entrant phases keep a meaningful ETA).
// Nil-safe.
func (ph *Phase) Grow(n int64) {
	if ph == nil {
		return
	}
	ph.p.mu.Lock()
	ph.total += n
	ph.p.mu.Unlock()
}

// Add records n completed steps and emits a throttled event. Nil-safe.
func (ph *Phase) Add(n int64) {
	if ph == nil {
		return
	}
	ph.p.mu.Lock()
	ph.done += n
	ph.emitLocked(false)
	ph.p.mu.Unlock()
}

// Count adds n to a phase-level counter. Nil-safe.
func (ph *Phase) Count(name string, n int64) {
	if ph == nil {
		return
	}
	ph.p.mu.Lock()
	ph.counters[name] += n
	ph.p.mu.Unlock()
}

// Done closes the phase's current activation window, folding its
// elapsed time into the phase wall total, and emits a final event.
// Nil-safe.
func (ph *Phase) Done() {
	if ph == nil {
		return
	}
	ph.p.mu.Lock()
	if ph.active {
		ph.wall += time.Since(ph.activeSince)
		ph.active = false
	}
	ph.emitLocked(true)
	ph.p.mu.Unlock()
}

// wallLocked returns the phase's accumulated active time including an
// open window. Callers hold p.mu.
func (ph *Phase) wallLocked() time.Duration {
	w := ph.wall
	if ph.active {
		w += time.Since(ph.activeSince)
	}
	return w
}

// emitLocked pushes an event to OnEvent, throttled unless final.
// Callers hold p.mu.
func (ph *Phase) emitLocked(final bool) {
	p := ph.p
	if p.OnEvent == nil {
		return
	}
	min := p.MinInterval
	if min <= 0 {
		min = 200 * time.Millisecond
	}
	now := time.Now()
	if !final && now.Sub(p.lastEmit) < min {
		return
	}
	p.lastEmit = now
	ev := ProgressEvent{Run: p.run, Phase: ph.name, Done: ph.done, Total: ph.total, Final: final}
	if w := ph.wallLocked(); w > 0 && ph.done > 0 {
		ev.Rate = float64(ph.done) / w.Seconds()
		if ev.Total > ph.done && ev.Rate > 0 {
			ev.ETA = time.Duration(float64(ev.Total-ph.done) / ev.Rate * float64(time.Second))
		}
	}
	p.OnEvent(ev)
}

// RunReport is the machine-readable summary of one enrich/load run:
// per-phase wall time and step counts plus run-level counters (SPARQL
// queries issued, candidates scored, triples emitted, …).
type RunReport struct {
	Run       string           `json:"run"`
	StartedAt time.Time        `json:"startedAt,omitempty"`
	WallNs    time.Duration    `json:"wallNs"`
	Counters  map[string]int64 `json:"counters,omitempty"`
	Phases    []PhaseReport    `json:"phases"`
}

// PhaseReport is one phase's contribution to the run report.
type PhaseReport struct {
	Name     string           `json:"name"`
	WallNs   time.Duration    `json:"wallNs"`
	Done     int64            `json:"done"`
	Total    int64            `json:"total,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Report snapshots the run. Open phases contribute their elapsed time
// without being closed, so Report may be called mid-run. Returns nil on
// a nil reporter, and every RunReport method is nil-safe, so CLI code
// can thread an optional reporter straight through.
func (p *Progress) Report() *RunReport {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	r := &RunReport{
		Run:       p.run,
		StartedAt: p.started,
		WallNs:    time.Since(p.started),
		Counters:  copyCounters(p.counters),
	}
	for _, ph := range p.phases {
		r.Phases = append(r.Phases, PhaseReport{
			Name:     ph.name,
			WallNs:   ph.wallLocked(),
			Done:     ph.done,
			Total:    ph.total,
			Counters: copyCounters(ph.counters),
		})
	}
	return r
}

func copyCounters(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Canonical returns a copy with every timing zeroed, leaving only the
// fields that are deterministic for a fixed input (phase names, step
// counts, counters). Golden-file tests compare canonical reports.
func (r *RunReport) Canonical() *RunReport {
	if r == nil {
		return nil
	}
	out := *r
	out.StartedAt = time.Time{}
	out.WallNs = 0
	out.Counters = copyCounters(r.Counters)
	out.Phases = make([]PhaseReport, len(r.Phases))
	for i, ph := range r.Phases {
		ph.WallNs = 0
		ph.Counters = copyCounters(ph.Counters)
		out.Phases[i] = ph
	}
	return &out
}

// JSON returns the indented JSON encoding of the report (empty on nil).
func (r *RunReport) JSON() []byte {
	if r == nil {
		return nil
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil
	}
	return append(b, '\n')
}

// WriteFile writes the report as JSON to path ("-" means stdout).
// A nil report writes nothing.
func (r *RunReport) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	if path == "-" {
		_, err := os.Stdout.Write(r.JSON())
		return err
	}
	return os.WriteFile(path, r.JSON(), 0o644)
}

// Summary renders the report as a short human-readable table: one line
// per phase plus sorted run counters.
func (r *RunReport) Summary() string {
	if r == nil {
		return ""
	}
	var b []byte
	b = fmt.Appendf(b, "run %s: %s total\n", r.Run, r.WallNs.Round(time.Millisecond))
	for _, ph := range r.Phases {
		b = fmt.Appendf(b, "  %-14s %8s  %d steps", ph.Name, ph.WallNs.Round(time.Millisecond), ph.Done)
		if ph.Total > 0 {
			b = fmt.Appendf(b, "/%d", ph.Total)
		}
		for _, k := range sortedKeys(ph.Counters) {
			b = fmt.Appendf(b, "  %s=%d", k, ph.Counters[k])
		}
		b = append(b, '\n')
	}
	for _, k := range sortedKeys(r.Counters) {
		b = fmt.Appendf(b, "  %s=%d\n", k, r.Counters[k])
	}
	return string(b)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TermSink returns an OnEvent sink writing one-line progress updates to
// w (live `qb2olap enrich -progress` output).
func TermSink(w io.Writer) func(ProgressEvent) {
	return func(ev ProgressEvent) {
		line := fmt.Sprintf("%s/%s: %d", ev.Run, ev.Phase, ev.Done)
		if ev.Total > 0 {
			line += fmt.Sprintf("/%d (%.0f%%)", ev.Total, 100*float64(ev.Done)/float64(ev.Total))
		}
		if ev.Rate > 0 {
			line += fmt.Sprintf(" %.0f/s", ev.Rate)
		}
		if ev.ETA > 0 {
			line += fmt.Sprintf(" eta %s", ev.ETA.Round(100*time.Millisecond))
		}
		if ev.Final {
			line += " done"
		}
		fmt.Fprintln(w, line)
	}
}

// LogSink returns an OnEvent sink emitting slog events.
func LogSink(l *slog.Logger) func(ProgressEvent) {
	return func(ev ProgressEvent) {
		l.Info("progress", "run", ev.Run, "phase", ev.Phase,
			"done", ev.Done, "total", ev.Total,
			"rate", ev.Rate, "eta", ev.ETA, "final", ev.Final)
	}
}

// MultiSink fans one event out to several sinks.
func MultiSink(sinks ...func(ProgressEvent)) func(ProgressEvent) {
	return func(ev ProgressEvent) {
		for _, s := range sinks {
			if s != nil {
				s(ev)
			}
		}
	}
}
