package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProgressPhasesAndReport(t *testing.T) {
	var events []ProgressEvent
	p := NewProgress("enrich")
	p.MinInterval = 1 // effectively unthrottled
	p.OnEvent = func(ev ProgressEvent) { events = append(events, ev) }

	ph := p.Phase("discovery")
	ph.Grow(10)
	ph.Add(4)
	time.Sleep(2 * time.Millisecond)
	ph.Add(6)
	ph.Count("candidatesScored", 3)
	ph.Done()
	p.Count("sparqlQueries", 7)

	// Re-entering a phase accumulates rather than resetting.
	ph2 := p.Phase("discovery")
	if ph2 != ph {
		t.Fatal("re-entered phase should be the same accumulator")
	}
	ph2.Add(1)
	ph2.Done()

	r := p.Report()
	if len(r.Phases) != 1 {
		t.Fatalf("got %d phases, want 1", len(r.Phases))
	}
	d := r.Phases[0]
	if d.Name != "discovery" || d.Done != 11 || d.Total != 10 {
		t.Errorf("phase = %+v, want discovery done=11 total=10", d)
	}
	if d.Counters["candidatesScored"] != 3 {
		t.Errorf("phase counters = %v", d.Counters)
	}
	if r.Counters["sparqlQueries"] != 7 {
		t.Errorf("run counters = %v", r.Counters)
	}
	if d.WallNs <= 0 || r.WallNs <= 0 {
		t.Errorf("wall times not recorded: phase=%v run=%v", d.WallNs, r.WallNs)
	}

	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	last := events[len(events)-1]
	if !last.Final || last.Phase != "discovery" {
		t.Errorf("last event = %+v, want final discovery", last)
	}
	sawRate := false
	for _, ev := range events {
		if ev.Rate > 0 {
			sawRate = true
		}
	}
	if !sawRate {
		t.Error("no event carried a rate")
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	ph := p.Phase("x")
	if ph != nil {
		t.Fatal("phase of nil progress should be nil")
	}
	ph.Grow(1)
	ph.Add(1)
	ph.Count("c", 1)
	ph.Done()
	p.Count("c", 1)
	if r := p.Report(); r != nil {
		t.Fatal("report of nil progress should be nil")
	}
	var r *RunReport
	if r.Canonical() != nil || r.JSON() != nil || r.Summary() != "" {
		t.Error("nil report methods should be no-ops")
	}
	if err := r.WriteFile("/nonexistent/should/not/be/written"); err != nil {
		t.Errorf("nil report WriteFile = %v", err)
	}
}

func TestProgressConcurrent(t *testing.T) {
	p := NewProgress("load")
	ph := p.Phase("insert")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ph.Add(1)
				p.Count("triples", 2)
			}
		}()
	}
	wg.Wait()
	ph.Done()
	r := p.Report()
	if r.Phases[0].Done != 800 || r.Counters["triples"] != 1600 {
		t.Errorf("report = %+v", r)
	}
}

func TestRunReportCanonicalAndJSON(t *testing.T) {
	p := NewProgress("enrich")
	ph := p.Phase("generation")
	ph.Add(5)
	ph.Count("schemaTriples", 12)
	ph.Done()
	r := p.Report().Canonical()
	if r.WallNs != 0 || !r.StartedAt.IsZero() || r.Phases[0].WallNs != 0 {
		t.Errorf("canonical report kept timings: %+v", r)
	}
	if r.Phases[0].Done != 5 || r.Phases[0].Counters["schemaTriples"] != 12 {
		t.Errorf("canonical report lost data: %+v", r)
	}
	var back RunReport
	if err := json.Unmarshal(r.JSON(), &back); err != nil {
		t.Fatalf("report JSON round-trip: %v", err)
	}
	if back.Run != "enrich" || len(back.Phases) != 1 {
		t.Errorf("round-tripped report = %+v", back)
	}
}

func TestTermSink(t *testing.T) {
	var b strings.Builder
	sink := TermSink(&b)
	sink(ProgressEvent{Run: "enrich", Phase: "discovery", Done: 5, Total: 10, Rate: 50, ETA: time.Second})
	sink(ProgressEvent{Run: "enrich", Phase: "discovery", Done: 10, Total: 10, Final: true})
	out := b.String()
	for _, want := range []string{"enrich/discovery", "5/10", "50%", "50/s", "eta 1s", "done"} {
		if !strings.Contains(out, want) {
			t.Errorf("term output missing %q:\n%s", want, out)
		}
	}
}

func TestSpanEstRender(t *testing.T) {
	root := StartSpan("SELECT", "", 1)
	j := root.StartChild("JOIN", "?s <p> ?o", 1)
	j.SetEst(8)
	j.Finish(10, 1)
	root.Finish(10, 1)
	out := root.Outline()
	if !strings.Contains(out, "JOIN ?s <p> ?o  [in=1 est=8 act=10]") {
		t.Errorf("est span render:\n%s", out)
	}
	// A span without an estimate keeps the in/out form.
	if !strings.Contains(out, "SELECT  [in=1 out=10]") {
		t.Errorf("plain span render changed:\n%s", out)
	}
	var nilSpan *Span
	nilSpan.SetEst(3) // must not panic
	if nilSpan.Estimated() {
		t.Error("nil span cannot be estimated")
	}
}

func TestHistogramP95Interpolated(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	// p95 lands in the slow bucket (65.536, 131.072]ms; interpolation
	// keeps it inside the bucket instead of pinning the upper bound.
	if s.P95Ms < 64 || s.P95Ms > 131.072 {
		t.Errorf("p95Ms = %v, want within slow bucket", s.P95Ms)
	}
	if s.P50Ms <= 0 || s.P50Ms > 0.512 {
		t.Errorf("p50Ms = %v, want within fast bucket", s.P50Ms)
	}
	if s.P95Ms > s.P99Ms {
		t.Errorf("p95 (%v) > p99 (%v)", s.P95Ms, s.P99Ms)
	}
	if !strings.Contains(s.Quantiles(), "p95=") {
		t.Errorf("Quantiles() = %q", s.Quantiles())
	}
}

func TestTracerQueryBytesCap(t *testing.T) {
	tr := NewTracer(4)
	tr.MaxQueryBytes = 32
	long := strings.Repeat("x", 1000)
	sp := StartSpan("SELECT", "", 0)
	sp.Finish(0, 1)
	tr.Collect(&Trace{Query: long, Root: sp})
	got := tr.Recent()[0].Query
	if len(got) > 32+len("… [truncated]") {
		t.Errorf("query retained %d bytes, cap is 32", len(got))
	}
	if !strings.HasSuffix(got, "[truncated]") {
		t.Errorf("truncated query missing marker: %q", got)
	}
}

// TestSlowLogOverflow overflows both caps — entry count and per-entry
// query bytes — and checks the log stays bounded.
func TestSlowLogOverflow(t *testing.T) {
	l := NewSlowLog(4)
	l.MaxQueryBytes = 64
	long := strings.Repeat("q", 10_000)
	for i := 0; i < 100; i++ {
		l.Record(SlowEntry{When: time.Now(), Duration: time.Second, Query: long, Status: 200})
	}
	recent := l.Recent()
	if len(recent) != 4 {
		t.Fatalf("retained %d entries, want 4", len(recent))
	}
	total := 0
	for _, e := range recent {
		if len(e.Query) > 64+len("… [truncated]") {
			t.Errorf("entry query holds %d bytes, cap is 64", len(e.Query))
		}
		total += len(e.Query)
	}
	if total > 4*(64+len("… [truncated]")) {
		t.Errorf("slow log retains %d query bytes total", total)
	}
	var nilLog *SlowLog
	nilLog.Record(SlowEntry{}) // must not panic
	if nilLog.Recent() != nil {
		t.Error("nil slow log should have no entries")
	}
}

func TestSlowHandler(t *testing.T) {
	l := NewSlowLog(4)
	l.Record(SlowEntry{When: time.Now(), Duration: 250 * time.Millisecond,
		Query: "SELECT * WHERE { ?s ?p ?o }", Status: 200})
	rec := httptest.NewRecorder()
	SlowHandler(l)(rec, httptest.NewRequest("GET", "/debug/slow", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "SELECT * WHERE") {
		t.Errorf("/debug/slow: status=%d body=%q", rec.Code, rec.Body.String())
	}
}
