package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the metrics
// registry. /metrics keeps serving the JSON snapshot by default;
// a scraper sending Accept: text/plain (as Prometheus does) gets this
// format instead. Metric names are sanitized to the Prometheus charset
// (dots and other separators become underscores); histograms render as
// summaries — interpolated quantiles in seconds plus _sum and _count —
// matching how the JSON snapshot reports them.

// promLabelValue escapes a label value for the text exposition:
// backslash, double quote, and newline are the three characters the
// 0.0.4 format requires escaping inside a quoted label value.
func promLabelValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// renderLabels renders a label set as the `{k="v",...}` suffix used in
// both the Prometheus exposition and the JSON snapshot key. Keys are
// sanitized to the metric-name charset, values escaped per the 0.0.4
// format. An empty set renders as the empty string.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(l.Key))
		b.WriteString(`="`)
		b.WriteString(promLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promName sanitizes a registry name to [a-zA-Z0-9_:], the Prometheus
// metric-name charset.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case '0' <= c && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry's current state in the
// Prometheus text exposition format, metrics sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	labeled := make(map[string][]labeledGauge, len(r.labeled))
	for k, v := range r.labeled {
		labeled[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, counters[k].Value())
	}

	// Plain and labeled gauges of the same base name form one family:
	// a single # TYPE line, then the unlabeled instance (if any) and
	// every labeled instance in registration order.
	names = names[:0]
	for k := range gauges {
		names = append(names, k)
	}
	for k := range labeled {
		if _, dup := gauges[k]; !dup {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n", n)
		if fn, ok := gauges[k]; ok {
			fmt.Fprintf(w, "%s %d\n", n, fn())
		}
		for _, lg := range labeled[k] {
			fmt.Fprintf(w, "%s%s %d\n", n, lg.suffix, lg.fn())
		}
	}

	names = names[:0]
	for k := range hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		s := hists[k].Snapshot()
		n := promName(k) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s summary\n", n)
		for _, q := range []struct {
			q  string
			ms float64
		}{{"0.5", s.P50Ms}, {"0.9", s.P90Ms}, {"0.95", s.P95Ms}, {"0.99", s.P99Ms}} {
			fmt.Fprintf(w, "%s{quantile=\"%s\"} %g\n", n, promLabelValue(q.q), q.ms/1000)
		}
		fmt.Fprintf(w, "%s_sum %g\n", n, s.SumMs/1000)
		fmt.Fprintf(w, "%s_count %d\n", n, s.Count)
	}
}
