package obs

import (
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"queries_total":   "queries_total",
		"go.heap.bytes":   "go_heap_bytes",
		"9lives":          "_9lives",
		"a-b c":           "a_b_c",
		"ns:sub_total":    "ns:sub_total",
		"héllo":           "h__llo", // two UTF-8 bytes, each sanitized
		"_already_fine_1": "_already_fine_1",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromLabelValueEscaping(t *testing.T) {
	cases := map[string]string{
		`plain`:        `plain`,
		`a"b`:          `a\"b`,
		`a\b`:          `a\\b`,
		"a\nb":         `a\nb`,
		"\\\"\n":       `\\\"\n`,
		`rule="p99\x"`: `rule=\"p99\\x\"`,
	}
	for in, want := range cases {
		if got := promLabelValue(in); got != want {
			t.Errorf("promLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderLabels(t *testing.T) {
	if got := renderLabels(nil); got != "" {
		t.Errorf("renderLabels(nil) = %q, want empty", got)
	}
	labels := []Label{{Key: "rule", Value: `p99"ms\x`}, {Key: "bad key", Value: "v"}}
	want := `{rule="p99\"ms\\x",bad_key="v"}`
	if got := renderLabels(labels); got != want {
		t.Errorf("renderLabels = %q, want %q", got, want)
	}
}

// TestWritePrometheusExposition pins the 0.0.4 text format edge cases:
// sanitized names, escaped label values, one # TYPE line per merged
// gauge family (plain + labeled instances), and summary quantiles in
// seconds.
func TestWritePrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs.total").Add(7)
	reg.Gauge("depth", func() int64 { return 3 })
	reg.GaugeWith("depth", []Label{{Key: "queue", Value: `q"1`}}, func() int64 { return 5 })
	reg.GaugeWith("alert_firing", []Label{{Key: "rule", Value: "p99\nlatency\\"}}, func() int64 { return 1 })
	reg.Histogram("lat").Observe(2 * time.Millisecond)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE reqs_total counter\nreqs_total 7\n",
		// Plain and labeled instances share one family header.
		"# TYPE depth gauge\ndepth 3\ndepth{queue=\"q\\\"1\"} 5\n",
		"# TYPE alert_firing gauge\nalert_firing{rule=\"p99\\nlatency\\\\\"} 1\n",
		"# TYPE lat_seconds summary\n",
		"lat_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# TYPE depth gauge"); got != 1 {
		t.Errorf("depth family has %d # TYPE lines, want 1", got)
	}
	// Quantiles are seconds: a 2ms observation must render well under 1.
	for _, q := range []string{"0.5", "0.9", "0.95", "0.99"} {
		if !strings.Contains(out, "lat_seconds{quantile=\""+q+"\"} 0.00") {
			t.Errorf("missing seconds-scaled quantile %s; got:\n%s", q, out)
		}
	}
}

// TestLabeledGaugeSnapshotKeys pins the JSON snapshot key format for
// labeled gauges — the full name{k="v"} string is the map key.
func TestLabeledGaugeSnapshotKeys(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeWith("alert_firing", []Label{{Key: "rule", Value: "error_rate"}}, func() int64 { return 1 })
	snap := reg.Snapshot()
	v, ok := snap[`alert_firing{rule="error_rate"}`]
	if !ok || v.(int64) != 1 {
		t.Fatalf(`snapshot["alert_firing{rule=\"error_rate\"}"] = %v, %v`, v, ok)
	}
	// Re-registering the same name+labels replaces the function rather
	// than duplicating the instance.
	reg.GaugeWith("alert_firing", []Label{{Key: "rule", Value: "error_rate"}}, func() int64 { return 0 })
	snap = reg.Snapshot()
	if v := snap[`alert_firing{rule="error_rate"}`]; v.(int64) != 0 {
		t.Errorf("replaced labeled gauge = %v, want 0", v)
	}
}
