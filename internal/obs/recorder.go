package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Recorder is an HDR-style latency recorder: a log-bucketed histogram
// with linear sub-buckets, so quantile estimates carry a bounded
// *relative* error instead of the one-power-of-two error of the coarse
// Histogram. It is the load driver's per-class latency accumulator —
// under a sustained workload the interesting signal is exactly the
// p99/max tail, where a factor-of-two bucket would swallow the story.
//
// Scheme: values are recorded in microseconds. Values below
// recSubCount land in an exact unit bucket; larger values land in one
// of recSubCount linear sub-buckets of their power-of-two range, so
// every bucket spans at most 1/recSubCount (~3.1%) of its value.
// Observe is three atomic adds plus one atomic max — safe for
// concurrent use from every driver worker, cheap enough for
// per-request recording.
//
// The zero Recorder is ready to use. Merge folds another recorder in,
// and is associative and commutative, so per-worker recorders can be
// combined in any order (see TestRecorderMergeAssociative).
type Recorder struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [recBucketCount]atomic.Int64
}

const (
	// recSubBits fixes the sub-bucket resolution: 2^recSubBits linear
	// sub-buckets per power-of-two range.
	recSubBits  = 5
	recSubCount = 1 << recSubBits // 32

	// recMaxExp is the highest power-of-two range tracked; values at or
	// beyond 2^(recMaxExp+1) µs (~2.4 hours) saturate the top bucket.
	recMaxExp = 32

	// recBucketCount: recSubCount exact unit buckets for 0..31µs, then
	// recSubCount sub-buckets per exponent recSubBits..recMaxExp.
	recBucketCount = recSubCount + (recMaxExp-recSubBits+1)*recSubCount
)

// recBucketIndex maps a microsecond value to its bucket.
func recBucketIndex(us int64) int {
	if us < recSubCount {
		return int(us)
	}
	exp := bits.Len64(uint64(us)) - 1 // us in [2^exp, 2^(exp+1))
	if exp > recMaxExp {
		return recBucketCount - 1
	}
	sub := (us >> uint(exp-recSubBits)) - recSubCount // 0..recSubCount-1
	return recSubCount + (exp-recSubBits)*recSubCount + int(sub)
}

// recBucketLow returns the lowest microsecond value mapping to bucket i.
func recBucketLow(i int) int64 {
	if i < recSubCount {
		return int64(i)
	}
	exp := recSubBits + (i-recSubCount)/recSubCount
	sub := int64((i - recSubCount) % recSubCount)
	return (recSubCount + sub) << uint(exp-recSubBits)
}

// recBucketHigh returns the exclusive upper microsecond bound of bucket i.
func recBucketHigh(i int) int64 {
	if i >= recBucketCount-1 {
		return recBucketLow(i) * 2 // open-ended top bucket; nominal width
	}
	return recBucketLow(i + 1)
}

// Observe records one duration. Negative durations clamp to zero.
func (r *Recorder) Observe(d time.Duration) {
	if r == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	r.count.Add(1)
	r.sumNs.Add(int64(d))
	for {
		cur := r.maxNs.Load()
		if int64(d) <= cur || r.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	r.buckets[recBucketIndex(d.Microseconds())].Add(1)
}

// Count returns how many observations have been recorded.
func (r *Recorder) Count() int64 {
	if r == nil {
		return 0
	}
	return r.count.Load()
}

// Merge folds other into r bucket by bucket. Concurrent Observes on
// either side may skew totals by the in-flight observations, as with
// Histogram.Snapshot; merging quiescent recorders is exact.
func (r *Recorder) Merge(other *Recorder) {
	if r == nil || other == nil {
		return
	}
	r.count.Add(other.count.Load())
	r.sumNs.Add(other.sumNs.Load())
	om := other.maxNs.Load()
	for {
		cur := r.maxNs.Load()
		if om <= cur || r.maxNs.CompareAndSwap(cur, om) {
			break
		}
	}
	for i := range r.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			r.buckets[i].Add(n)
		}
	}
}

// RecorderSnapshot is the JSON-friendly point-in-time view of a
// Recorder: totals plus interpolated quantiles in milliseconds. The
// quantile error is bounded by the sub-bucket width (~3.1% relative)
// except in the saturated top bucket; Max is exact.
type RecorderSnapshot struct {
	Count int64   `json:"count"`
	AvgMs float64 `json:"avgMs"`
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

// Quantile returns the estimated q-quantile (0 < q <= 1) in
// milliseconds: the landing bucket is found by cumulative rank and the
// value interpolated linearly inside it, clamped to the recorded max.
func (r *Recorder) Quantile(q float64) float64 {
	if r == nil {
		return 0
	}
	total := r.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := int64(0)
	maxMs := float64(r.maxNs.Load()) / float64(time.Millisecond)
	for i := range r.buckets {
		c := r.buckets[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= target {
			lo, hi := float64(recBucketLow(i))/1000, float64(recBucketHigh(i))/1000
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			v := lo + frac*(hi-lo)
			if v > maxMs {
				// Max is tracked exactly, so it caps every estimate —
				// including the all-zeros case where maxMs is 0.
				v = maxMs
			}
			return v
		}
		cum += c
	}
	return maxMs
}

// Snapshot returns the current totals and headline quantiles.
func (r *Recorder) Snapshot() RecorderSnapshot {
	var s RecorderSnapshot
	if r == nil {
		return s
	}
	s.Count = r.count.Load()
	if s.Count > 0 {
		s.AvgMs = float64(r.sumNs.Load()) / float64(s.Count) / float64(time.Millisecond)
	}
	s.P50Ms = r.Quantile(0.50)
	s.P90Ms = r.Quantile(0.90)
	s.P95Ms = r.Quantile(0.95)
	s.P99Ms = r.Quantile(0.99)
	s.MaxMs = float64(r.maxNs.Load()) / float64(time.Millisecond)
	return s
}
