package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile is the oracle: the nearest-rank quantile of a sorted
// sample, the definition the recorder approximates.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// TestRecorderQuantileAccuracy draws seeded samples from three latency
// shapes (uniform, log-normal, bimodal-with-tail) and asserts every
// headline quantile is within the recorder's design bound — the
// sub-bucket relative error (~3.1%) plus interpolation slack — of the
// exact sorted-sample oracle.
func TestRecorderQuantileAccuracy(t *testing.T) {
	const relBound = 0.05 // 1/32 bucket width + interpolation slack
	shapes := map[string]func(r *rand.Rand) time.Duration{
		"uniform": func(r *rand.Rand) time.Duration {
			return time.Duration(r.Int63n(int64(200 * time.Millisecond)))
		},
		"lognormal": func(r *rand.Rand) time.Duration {
			return time.Duration(math.Exp(r.NormFloat64()*1.2+10)) * time.Microsecond
		},
		"bimodal": func(r *rand.Rand) time.Duration {
			if r.Float64() < 0.05 {
				return time.Duration(1+r.Int63n(4)) * time.Second // slow tail
			}
			return time.Duration(1+r.Int63n(10)) * time.Millisecond
		},
	}
	for name, draw := range shapes {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var rec Recorder
			samples := make([]time.Duration, 0, 20000)
			for i := 0; i < 20000; i++ {
				d := draw(rng)
				samples = append(samples, d)
				rec.Observe(d)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.50, 0.90, 0.95, 0.99} {
				want := float64(exactQuantile(samples, q)) / float64(time.Millisecond)
				got := rec.Quantile(q)
				if want == 0 {
					continue
				}
				if rel := math.Abs(got-want) / want; rel > relBound {
					t.Errorf("q%.2f: recorder %.4fms vs oracle %.4fms (relative error %.1f%% > %.0f%%)",
						q, got, want, rel*100, relBound*100)
				}
			}
			// Max is exact, not bucketed.
			wantMax := float64(samples[len(samples)-1]) / float64(time.Millisecond)
			if got := rec.Snapshot().MaxMs; math.Abs(got-wantMax) > 1e-9 {
				t.Errorf("max: got %.6fms want %.6fms", got, wantMax)
			}
		})
	}
}

// TestRecorderMergeAssociative checks (A ∪ B) ∪ C == A ∪ (B ∪ C) and
// that the merged view equals recording every sample into one recorder
// directly — the property that makes per-worker recorders combinable.
func TestRecorderMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := make([]*Recorder, 3)
	var all Recorder
	for i := range parts {
		parts[i] = &Recorder{}
		for j := 0; j < 5000; j++ {
			d := time.Duration(rng.Int63n(int64(3 * time.Second)))
			parts[i].Observe(d)
			all.Observe(d)
		}
	}
	// left: ((A+B)+C), right: (A+(B+C)); merge into fresh recorders so
	// the parts stay intact.
	var left, right, bc Recorder
	left.Merge(parts[0])
	left.Merge(parts[1])
	left.Merge(parts[2])
	bc.Merge(parts[1])
	bc.Merge(parts[2])
	right.Merge(parts[0])
	right.Merge(&bc)

	ls, rs, as := left.Snapshot(), right.Snapshot(), all.Snapshot()
	if ls != rs {
		t.Errorf("merge not associative:\nleft  %+v\nright %+v", ls, rs)
	}
	if ls != as {
		t.Errorf("merged differs from direct recording:\nmerged %+v\ndirect %+v", ls, as)
	}
}

// TestRecorderConcurrentObserve hammers one recorder from several
// goroutines (the driver's worker shape) and checks totals; -race
// guards the memory model.
func TestRecorderConcurrentObserve(t *testing.T) {
	var rec Recorder
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				rec.Observe(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	wg.Wait()
	if got := rec.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	s := rec.Snapshot()
	if s.P50Ms <= 0 || s.P99Ms < s.P50Ms || s.MaxMs < s.P99Ms {
		t.Fatalf("implausible snapshot: %+v", s)
	}
}

// TestRecorderZeroAndNil covers the nil-safe and empty paths.
func TestRecorderZeroAndNil(t *testing.T) {
	var nilRec *Recorder
	nilRec.Observe(time.Second) // must not panic
	nilRec.Merge(&Recorder{})
	if s := nilRec.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot: %+v", s)
	}
	var empty Recorder
	if s := empty.Snapshot(); s != (RecorderSnapshot{}) {
		t.Fatalf("empty snapshot: %+v", s)
	}
	empty.Observe(-time.Second) // clamps, not panics
	if empty.Count() != 1 || empty.Quantile(0.5) != 0 {
		t.Fatalf("negative observation mishandled: %+v", empty.Snapshot())
	}
}
