package obs

import (
	"fmt"
	"sync/atomic"
)

// ResourceTracker aggregates per-query memory accounting across a whole
// process: the bytes of materialized intermediate solutions currently
// in flight over all running queries, the high-water mark of that
// gauge, and how many queries were accounted or aborted over budget.
// One tracker is shared by every QueryAcct the server hands out; all
// fields are atomics, so Materialize/Release on the query hot path are
// wait-free.
type ResourceTracker struct {
	inflight  atomic.Int64
	highWater atomic.Int64
	queries   atomic.Int64
	overMem   atomic.Int64
}

// NewResourceTracker returns an empty process-wide tracker.
func NewResourceTracker() *ResourceTracker { return &ResourceTracker{} }

// Inflight returns the bytes of materialized intermediates currently
// live across all accounted queries. Nil-safe.
func (t *ResourceTracker) Inflight() int64 {
	if t == nil {
		return 0
	}
	return t.inflight.Load()
}

// HighWater returns the largest value Inflight has reached. Nil-safe.
func (t *ResourceTracker) HighWater() int64 {
	if t == nil {
		return 0
	}
	return t.highWater.Load()
}

// Queries returns how many accounted queries have finished. Nil-safe.
func (t *ResourceTracker) Queries() int64 {
	if t == nil {
		return 0
	}
	return t.queries.Load()
}

// OverMem returns how many queries were aborted over their memory
// budget. Nil-safe.
func (t *ResourceTracker) OverMem() int64 {
	if t == nil {
		return 0
	}
	return t.overMem.Load()
}

func (t *ResourceTracker) grow(b int64) {
	if t == nil || b == 0 {
		return
	}
	now := t.inflight.Add(b)
	// Racy-but-monotonic high-water update: a concurrent larger value
	// simply wins the CAS loop.
	for {
		hw := t.highWater.Load()
		if now <= hw || t.highWater.CompareAndSwap(hw, now) {
			return
		}
	}
}

func (t *ResourceTracker) shrink(b int64) {
	if t == nil || b == 0 {
		return
	}
	t.inflight.Add(-b)
}

// QueryAcct is the per-query resource account: cumulative rows and
// approximate bytes materialized, the current and peak in-flight bytes,
// and an optional hard byte budget. A nil *QueryAcct is a valid
// disabled account — every method is a nil check, mirroring the span
// fast path — so the engine threads one pointer unconditionally.
//
// The byte numbers are approximations (solution rows estimated from
// term counts and lexical lengths, sampled once per chunk), not
// allocator truth: they exist to rank queries and operators against
// each other and to bound runaway intermediates, not to balance books
// against runtime.MemStats.
type QueryAcct struct {
	tracker *ResourceTracker
	limit   int64 // 0 = unlimited

	rows     atomic.Int64
	bytes    atomic.Int64
	inflight atomic.Int64
	peak     atomic.Int64
	exceeded atomic.Bool
	finished atomic.Bool
}

// NewQueryAcct opens an account against tracker (which may be nil for a
// standalone account) with a hard in-flight byte budget of limit
// (0 = unlimited).
func NewQueryAcct(tracker *ResourceTracker, limit int64) *QueryAcct {
	return &QueryAcct{tracker: tracker, limit: limit}
}

// Materialize records rows new solutions totaling approximately b bytes
// of retained memory. Called at the same chunk boundaries as the
// cancellation checks. Nil-safe.
func (a *QueryAcct) Materialize(rows int, b int64) {
	if a == nil || (rows == 0 && b == 0) {
		return
	}
	a.rows.Add(int64(rows))
	a.bytes.Add(b)
	now := a.inflight.Add(b)
	for {
		pk := a.peak.Load()
		if now <= pk || a.peak.CompareAndSwap(pk, now) {
			break
		}
	}
	if a.limit > 0 && now > a.limit {
		a.exceeded.Store(true)
	}
	a.tracker.grow(b)
}

// Release returns b bytes to the account: an intermediate result was
// replaced by its successor operator's output and is no longer live.
// Cumulative rows/bytes are unaffected; only the in-flight gauge moves.
// Nil-safe.
func (a *QueryAcct) Release(b int64) {
	if a == nil || b <= 0 {
		return
	}
	a.inflight.Add(-b)
	a.tracker.shrink(b)
}

// Over reports whether the account has exceeded its byte budget. The
// flag is sticky: once over, always over, so racing workers all agree
// to stop. Nil-safe.
func (a *QueryAcct) Over() bool { return a != nil && a.exceeded.Load() }

// Rows returns the cumulative solutions materialized. Nil-safe.
func (a *QueryAcct) Rows() int64 {
	if a == nil {
		return 0
	}
	return a.rows.Load()
}

// Bytes returns the cumulative approximate bytes materialized. Nil-safe.
func (a *QueryAcct) Bytes() int64 {
	if a == nil {
		return 0
	}
	return a.bytes.Load()
}

// Inflight returns the query's current in-flight bytes (materialized
// minus released). Nil-safe.
func (a *QueryAcct) Inflight() int64 {
	if a == nil {
		return 0
	}
	return a.inflight.Load()
}

// Peak returns the largest in-flight byte total the query reached.
// Nil-safe.
func (a *QueryAcct) Peak() int64 {
	if a == nil {
		return 0
	}
	return a.peak.Load()
}

// Limit returns the account's byte budget (0 = unlimited). Nil-safe.
func (a *QueryAcct) Limit() int64 {
	if a == nil {
		return 0
	}
	return a.limit
}

// Finish closes the account, returning any still-live bytes to the
// process tracker. Idempotent and nil-safe, so both the engine (via
// defer) and the server (after encoding) may call it.
func (a *QueryAcct) Finish() {
	if a == nil || !a.finished.CompareAndSwap(false, true) {
		return
	}
	if live := a.inflight.Swap(0); live > 0 {
		a.tracker.shrink(live)
	}
	if a.tracker != nil {
		a.tracker.queries.Add(1)
		if a.exceeded.Load() {
			a.tracker.overMem.Add(1)
		}
	}
}

// FormatBytes renders b as a compact human byte count (e.g. "482B",
// "12.3KB", "4.0MB"), the form used by mem= annotations in traces and
// the slow log.
func FormatBytes(b int64) string {
	switch {
	case b < 0:
		return "-" + FormatBytes(-b)
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	}
}
