package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQueryAcctMath checks the account's arithmetic: cumulative
// rows/bytes only grow, the in-flight gauge moves with releases, and
// peak tracks the in-flight maximum.
func TestQueryAcctMath(t *testing.T) {
	tr := NewResourceTracker()
	a := NewQueryAcct(tr, 0)
	a.Materialize(10, 1000)
	a.Materialize(5, 500)
	if a.Rows() != 15 || a.Bytes() != 1500 || a.Inflight() != 1500 || a.Peak() != 1500 {
		t.Fatalf("after materialize: rows=%d bytes=%d inflight=%d peak=%d",
			a.Rows(), a.Bytes(), a.Inflight(), a.Peak())
	}
	a.Release(1000)
	if a.Inflight() != 500 || a.Peak() != 1500 || a.Bytes() != 1500 {
		t.Fatalf("after release: inflight=%d peak=%d bytes=%d", a.Inflight(), a.Peak(), a.Bytes())
	}
	a.Materialize(1, 200)
	if a.Inflight() != 700 || a.Peak() != 1500 {
		t.Fatalf("peak must not move below the old maximum: inflight=%d peak=%d", a.Inflight(), a.Peak())
	}
	if tr.Inflight() != 700 || tr.HighWater() != 1500 {
		t.Fatalf("tracker: inflight=%d highwater=%d", tr.Inflight(), tr.HighWater())
	}
	a.Finish()
	a.Finish() // idempotent
	if tr.Inflight() != 0 || tr.Queries() != 1 || tr.OverMem() != 0 {
		t.Fatalf("after finish: inflight=%d queries=%d overMem=%d",
			tr.Inflight(), tr.Queries(), tr.OverMem())
	}
	if tr.HighWater() != 1500 {
		t.Fatalf("high water must survive finish: %d", tr.HighWater())
	}
}

// TestQueryAcctLimit checks the sticky over-budget flag and the
// tracker's over-mem count.
func TestQueryAcctLimit(t *testing.T) {
	tr := NewResourceTracker()
	a := NewQueryAcct(tr, 100)
	a.Materialize(1, 50)
	if a.Over() {
		t.Fatal("under budget reported over")
	}
	a.Materialize(1, 100)
	if !a.Over() {
		t.Fatal("150 in-flight against a 100 limit not reported over")
	}
	a.Release(150)
	if !a.Over() {
		t.Fatal("over flag must be sticky across releases")
	}
	a.Finish()
	if tr.OverMem() != 1 {
		t.Fatalf("overMem = %d, want 1", tr.OverMem())
	}
}

// TestQueryAcctNil checks the disabled account: every method on a nil
// *QueryAcct is a safe no-op, mirroring the nil span fast path.
func TestQueryAcctNil(t *testing.T) {
	var a *QueryAcct
	a.Materialize(10, 1000)
	a.Release(5)
	a.Finish()
	if a.Over() || a.Rows() != 0 || a.Bytes() != 0 || a.Inflight() != 0 || a.Peak() != 0 || a.Limit() != 0 {
		t.Fatal("nil account reported nonzero state")
	}
	var tr *ResourceTracker
	tr.grow(10)
	tr.shrink(10)
	if tr.Inflight() != 0 || tr.HighWater() != 0 || tr.Queries() != 0 || tr.OverMem() != 0 {
		t.Fatal("nil tracker reported nonzero state")
	}
}

// TestResourceTrackerConcurrent hammers one tracker from many accounts
// under the race detector and checks the books balance.
func TestResourceTrackerConcurrent(t *testing.T) {
	tr := NewResourceTracker()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := NewQueryAcct(tr, 0)
				a.Materialize(3, 300)
				a.Release(100)
				a.Finish()
			}
		}()
	}
	wg.Wait()
	if tr.Inflight() != 0 {
		t.Fatalf("inflight = %d after all queries finished, want 0", tr.Inflight())
	}
	if tr.Queries() != 1600 {
		t.Fatalf("queries = %d, want 1600", tr.Queries())
	}
	if hw := tr.HighWater(); hw < 300 {
		t.Fatalf("high water = %d, want >= 300", hw)
	}
}

// TestFormatBytes pins the rendering used by mem= annotations.
func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"}, {482, "482B"}, {12595, "12.3KB"},
		{4 << 20, "4.0MB"}, {3 << 30, "3.00GB"}, {-482, "-482B"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestProfilerCapture checks a trigger writes a trace-ID-stamped heap
// profile and that the rate limit drops a back-to-back second trigger.
func TestProfilerCapture(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(dir)
	if err != nil {
		t.Fatal(err)
	}
	path, ok := p.MaybeCapture("mem", TraceID("4bf92f3577b34da6a3ce929d0e0e4736"))
	if !ok {
		t.Fatal("first trigger did not capture")
	}
	name := filepath.Base(path)
	if !strings.HasPrefix(name, "heap_mem_") || !strings.Contains(name, "4bf92f3577b34da6a3ce929d0e0e4736") {
		t.Fatalf("unexpected profile name %q", name)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("profile not written: %v", err)
	}
	if _, ok := p.MaybeCapture("slow", ""); ok {
		t.Fatal("second trigger inside MinInterval captured")
	}
	if p.Captured() != 1 || p.Skipped() != 1 {
		t.Fatalf("captured=%d skipped=%d, want 1/1", p.Captured(), p.Skipped())
	}
}

// TestProfilerCap checks oldest-first pruning keeps the directory under
// MaxBytes.
func TestProfilerCap(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.MinInterval = time.Nanosecond
	// Find one real capture's size, then set the cap to roughly two of
	// them so the third capture must evict the first.
	first, ok := p.MaybeCapture("mem", "a")
	if !ok {
		t.Fatal("capture failed")
	}
	fi, err := os.Stat(first)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxBytes = fi.Size()*2 + 16
	time.Sleep(5 * time.Millisecond) // distinct mod times for eviction order
	p.MaybeCapture("mem", "b")
	time.Sleep(5 * time.Millisecond)
	p.MaybeCapture("mem", "c")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		info, _ := e.Info()
		total += info.Size()
		if strings.Contains(e.Name(), "_a.pprof") {
			t.Errorf("oldest profile %s survived eviction", e.Name())
		}
	}
	if total > p.MaxBytes {
		t.Fatalf("directory %d bytes exceeds cap %d", total, p.MaxBytes)
	}
}

// TestProfilerNil checks the disabled profiler.
func TestProfilerNil(t *testing.T) {
	var p *Profiler
	if _, ok := p.MaybeCapture("mem", ""); ok {
		t.Fatal("nil profiler captured")
	}
	if p.Dir() != "" || p.Captured() != 0 || p.Skipped() != 0 {
		t.Fatal("nil profiler reported state")
	}
}
