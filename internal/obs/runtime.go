package obs

import (
	"runtime"
	rtm "runtime/metrics"
	"sync"
	"time"
)

// runtimeSampler caches one runtime/metrics batch so the gauge
// closures registered by RegisterRuntimeGauges share a single Read per
// snapshot burst instead of re-sampling the runtime once per gauge.
type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []rtm.Sample
}

// runtimeMetricNames are the runtime/metrics keys the gauges read,
// indexed by position in runtimeSampler.samples.
var runtimeMetricNames = []string{
	"/memory/classes/heap/objects:bytes", // heap in-use by live+dead objects
	"/gc/heap/allocs:bytes",              // cumulative allocated bytes
	"/gc/pauses:seconds",                 // stop-the-world pause distribution
	"/sched/goroutines:goroutines",
}

const runtimeSampleTTL = 250 * time.Millisecond

// refresh re-reads the runtime metrics if the cache is stale.
func (s *runtimeSampler) refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.last) < runtimeSampleTTL && s.samples != nil {
		return
	}
	if s.samples == nil {
		s.samples = make([]rtm.Sample, len(runtimeMetricNames))
		for i, n := range runtimeMetricNames {
			s.samples[i].Name = n
		}
	}
	rtm.Read(s.samples)
	s.last = time.Now()
}

// uint64At returns sample i as int64 (0 when the runtime does not
// export the metric).
func (s *runtimeSampler) uint64At(i int) int64 {
	s.refresh()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.samples[i].Value.Kind() != rtm.KindUint64 {
		return 0
	}
	return int64(s.samples[i].Value.Uint64())
}

// pauseP99Ns estimates the p99 GC stop-the-world pause from the
// cumulative /gc/pauses histogram, in nanoseconds.
func (s *runtimeSampler) pauseP99Ns(i int) int64 {
	s.refresh()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.samples[i].Value.Kind() != rtm.KindFloat64Histogram {
		return 0
	}
	h := s.samples[i].Value.Float64Histogram()
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(0.99 * float64(total))
	var cum uint64
	for j, c := range h.Counts {
		cum += c
		if cum >= target && c > 0 {
			// Buckets[j+1] is the bucket's upper bound in seconds; the
			// last bucket's bound can be +Inf, fall back to its lower
			// edge then.
			hi := h.Buckets[j+1]
			if hi > 1e9 || hi != hi { // +Inf or NaN guard
				hi = h.Buckets[j]
			}
			return int64(hi * float64(time.Second))
		}
	}
	return 0
}

// RegisterRuntimeGauges adds Go runtime telemetry to a registry, so
// /metrics correlates server-side scheduler and GC pressure with the
// latency a load driver observes from the outside:
//
//	go_goroutines        current goroutine count
//	go_gomaxprocs        scheduler width
//	go_heap_inuse_bytes  bytes in live+dead heap objects
//	go_heap_alloc_bytes  cumulative allocated bytes (rate = alloc churn)
//	go_gc_pause_p99_ns   p99 stop-the-world pause since process start
//
// Values are sampled through one shared runtime/metrics batch cached
// for 250ms, so a snapshot costs one runtime read no matter how many
// gauges render it.
func RegisterRuntimeGauges(r *Registry) {
	s := &runtimeSampler{}
	r.Gauge("go_goroutines", func() int64 { return s.uint64At(3) })
	r.Gauge("go_gomaxprocs", func() int64 { return int64(runtime.GOMAXPROCS(0)) })
	r.Gauge("go_heap_inuse_bytes", func() int64 { return s.uint64At(0) })
	r.Gauge("go_heap_alloc_bytes", func() int64 { return s.uint64At(1) })
	r.Gauge("go_gc_pause_p99_ns", func() int64 { return s.pauseP99Ns(2) })
}
