package obs

import (
	"runtime"
	"testing"
)

// TestRuntimeGauges registers the runtime telemetry gauges and checks
// every one of them renders a plausible live value in a snapshot.
func TestRuntimeGauges(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeGauges(reg)
	runtime.GC() // ensure at least one pause sample exists
	snap := reg.Snapshot()

	asInt := func(name string) int64 {
		v, ok := snap[name].(int64)
		if !ok {
			t.Fatalf("%s missing from snapshot (have %T)", name, snap[name])
		}
		return v
	}
	if g := asInt("go_goroutines"); g < 1 {
		t.Errorf("go_goroutines = %d, want >= 1", g)
	}
	if p := asInt("go_gomaxprocs"); p < 1 {
		t.Errorf("go_gomaxprocs = %d, want >= 1", p)
	}
	if b := asInt("go_heap_inuse_bytes"); b <= 0 {
		t.Errorf("go_heap_inuse_bytes = %d, want > 0", b)
	}
	if b := asInt("go_heap_alloc_bytes"); b <= 0 {
		t.Errorf("go_heap_alloc_bytes = %d, want > 0", b)
	}
	if p := asInt("go_gc_pause_p99_ns"); p < 0 {
		t.Errorf("go_gc_pause_p99_ns = %d, want >= 0", p)
	}
}
