package obs

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID identifies one end-to-end query trace: 16 random bytes in
// lower-case hex (32 characters), the format of the trace-id field of a
// W3C traceparent header. The same ID names the trace in every process
// that contributes spans to it, in exported JSONL, in the slow-query
// log, and in the access log, so records from all of those surfaces can
// be joined.
type TraceID string

// NewTraceID returns a fresh random trace ID.
func NewTraceID() TraceID {
	return TraceID(fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64()))
}

// NewSpanID returns a fresh random 8-byte span ID in hex (the parent-id
// field of a traceparent header).
func NewSpanID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// Sampler decides which traces are recorded, so tracing can stay
// enabled in production: unsampled queries skip span allocation
// entirely and cost one hash of the trace ID.
//
// The decision is a deterministic function of the trace ID (sample iff
// hash(id) falls below rate·2^64), so every process seeing the same
// trace ID independently reaches the same verdict — though in the
// cross-process protocol the caller's verdict additionally travels in
// the traceparent sampled flag and wins. An optional traces-per-second
// cap bounds the absolute trace volume under load regardless of rate.
//
// A nil *Sampler samples everything, which preserves the pre-sampling
// behaviour of a Tracer-equipped engine or endpoint. Safe for
// concurrent use after construction.
type Sampler struct {
	rate      float64
	threshold uint64 // sample iff fnv64a(id) < threshold

	// maxPerSec caps sampled traces per wall-clock second (0 = no cap).
	maxPerSec int

	mu     sync.Mutex
	window int64 // unix second of the current counting window
	taken  int   // traces sampled in the current window

	// now stubs time for rate-cap tests.
	now func() time.Time
}

// NewSampler returns a sampler recording the given fraction of traces
// (clamped to [0, 1]). Rate 1 samples everything, rate 0 nothing.
func NewSampler(rate float64) *Sampler {
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	s := &Sampler{rate: rate, now: time.Now}
	if rate >= 1 {
		s.threshold = math.MaxUint64
	} else {
		s.threshold = uint64(rate * float64(1<<63) * 2)
	}
	return s
}

// Rate reports the configured sampling fraction (1 for a nil sampler).
func (s *Sampler) Rate() float64 {
	if s == nil {
		return 1
	}
	return s.rate
}

// SetMaxPerSec caps the number of sampled traces per second (0 removes
// the cap). Set it before the sampler is shared.
func (s *Sampler) SetMaxPerSec(n int) { s.maxPerSec = n }

// fnv64a is FNV-1a over the trace ID bytes: cheap, allocation-free, and
// uniform enough over random IDs for threshold sampling.
func fnv64a(id TraceID) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// Sample reports whether the trace identified by id should be recorded.
// Nil-safe: a nil sampler samples everything.
func (s *Sampler) Sample(id TraceID) bool {
	if s == nil {
		return true
	}
	if s.rate >= 1 {
		return s.allowNow()
	}
	if s.rate <= 0 || fnv64a(id) >= s.threshold {
		return false
	}
	return s.allowNow()
}

// allowNow applies the traces-per-second cap.
func (s *Sampler) allowNow() bool {
	if s.maxPerSec <= 0 {
		return true
	}
	sec := s.now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	if sec != s.window {
		s.window, s.taken = sec, 0
	}
	if s.taken >= s.maxPerSec {
		return false
	}
	s.taken++
	return true
}
