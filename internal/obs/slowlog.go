package obs

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SlowEntry is one retained slow-query record. TraceID, when the
// server assigned one, joins the entry against the access log and the
// exported trace archive (`qb2olap trace`).
type SlowEntry struct {
	When     time.Time     `json:"when"`
	Duration time.Duration `json:"durationNs"`
	Query    string        `json:"query"`
	Status   int           `json:"status,omitempty"`
	TraceID  TraceID       `json:"traceId,omitempty"`

	// Shape is the ShapeHash of the query, joining the entry against
	// the per-shape workload statistics at /workload (same cross-link
	// pattern as TraceID → trace archive).
	Shape string `json:"shape,omitempty"`

	// Resource account, when the query ran with accounting on:
	// solutions materialized, approximate cumulative bytes, and peak
	// in-flight bytes.
	Rows     int64 `json:"rows,omitempty"`
	MemBytes int64 `json:"memBytes,omitempty"`
	MemPeak  int64 `json:"memPeak,omitempty"`

	// EstCost is the planner's estimated cost for the query (0 when the
	// planner is off), recorded so cost-model q-error is auditable
	// against Duration straight from the slow log.
	EstCost float64 `json:"estCost,omitempty"`
}

// SlowLog retains the most recent slow queries for the debug surface.
// Like Tracer it is hard-bounded in two dimensions — entry count and
// stored query-text bytes — so a long-running server's slow log cannot
// grow without limit. Safe for concurrent use; nil-safe like the rest
// of the package.
type SlowLog struct {
	// MaxQueryBytes caps the query text retained per entry (<= 0
	// selects DefaultMaxQueryBytes). Set it before the log is shared.
	MaxQueryBytes int

	mu      sync.Mutex
	keep    int
	entries []SlowEntry // ring, oldest first
}

// NewSlowLog returns a slow log retaining the last keep entries
// (keep <= 0 selects 64).
func NewSlowLog(keep int) *SlowLog {
	if keep <= 0 {
		keep = 64
	}
	return &SlowLog{keep: keep}
}

// Record retains one slow query, truncating its text to the byte cap.
// Nil-safe.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil {
		return
	}
	e.Query = truncateQuery(e.Query, l.MaxQueryBytes)
	l.mu.Lock()
	l.entries = append(l.entries, e)
	if len(l.entries) > l.keep {
		l.entries = l.entries[len(l.entries)-l.keep:]
	}
	l.mu.Unlock()
}

// Recent returns a copy of the retained entries, newest first.
func (l *SlowLog) Recent() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, len(l.entries))
	for i, e := range l.entries {
		out[len(l.entries)-1-i] = e
	}
	return out
}

// SlowHandler serves the slow log (newest first) as plain text.
func SlowHandler(l *SlowLog) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		recent := l.Recent()
		if len(recent) == 0 {
			fmt.Fprintln(w, "no slow queries recorded (is -slowlog enabled?)")
			return
		}
		for _, e := range recent {
			id := string(e.TraceID)
			if id == "" {
				id = "-"
			}
			shape := e.Shape
			if shape == "" {
				shape = "-"
			}
			fmt.Fprintf(w, "%s  %s  status=%d  trace=%s  shape=%s",
				e.When.Format(time.RFC3339), e.Duration.Round(time.Microsecond), e.Status, id, shape)
			if e.Rows > 0 || e.MemBytes > 0 {
				fmt.Fprintf(w, "  rows=%d  mem=%s  peak=%s",
					e.Rows, FormatBytes(e.MemBytes), FormatBytes(e.MemPeak))
			}
			if e.EstCost > 0 {
				fmt.Fprintf(w, "  est-cost=%.0f", e.EstCost)
			}
			fmt.Fprintf(w, "\n%s\n\n", e.Query)
		}
	}
}
