package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Time-series collection over the metrics registry: every counter,
// gauge, and histogram is sampled on a fixed tick into fixed-size ring
// buffers at multiple resolutions (e.g. 1s×5m → 10s×1h → 1m×12h), so
// rates, deltas, and windowed histogram quantiles are queryable over
// any recent window at near-zero steady-state cost.
//
// Samples are cumulative: a counter ring stores the counter's running
// total at each tick, and a histogram ring stores the full cumulative
// bucket array. That makes downsampling trivially correct — a coarse
// level is just every Nth tick of the fine level (stride sampling), so
// a windowed rate or quantile computed at any level diffs two cumulative
// samples and is exact for the window those samples span. Nothing is
// averaged, so no level can disagree with a full-resolution recompute
// over the same endpoints.
//
// The tick path is allocation-free at steady state: the set of metrics
// to sample is cached in a sorted slice and rebuilt only when the
// registry's generation counter changes (a new metric was registered),
// and ring slots are preallocated. Lock order is TimeSeries.mu →
// Registry.mu; the registry never calls into the time series.

// Resolution is one level of the downsampling ladder: samples Step
// apart retained in a ring of Size slots.
type Resolution struct {
	Step time.Duration `json:"stepNs"`
	Size int           `json:"size"`
}

// Retention is how far back this level reaches (Step × Size).
func (r Resolution) Retention() time.Duration {
	return r.Step * time.Duration(r.Size)
}

// NewLadder builds the default downsampling ladder for a base tick and
// total retention: tick×300 (5 minutes at 1s), 10·tick×360 (1 hour),
// and 60·tick×(retention/60·tick) clamped to [60, 1440] slots. Levels
// whose predecessor already covers the retention are dropped, so a
// short retention yields a short ladder.
func NewLadder(tick, retention time.Duration) []Resolution {
	if tick <= 0 {
		tick = time.Second
	}
	if retention <= 0 {
		retention = 12 * time.Hour
	}
	ladder := []Resolution{{Step: tick, Size: 300}}
	if ladder[0].Retention() < retention {
		ladder = append(ladder, Resolution{Step: 10 * tick, Size: 360})
	}
	if ladder[len(ladder)-1].Retention() < retention {
		step := 60 * tick
		size := int(retention / step)
		if size < 60 {
			size = 60
		}
		if size > 1440 {
			size = 1440
		}
		ladder = append(ladder, Resolution{Step: step, Size: size})
	}
	return ladder
}

// MetricKind tags what a series was sampled from.
type MetricKind string

const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// sampledMetric is one cached entry of the per-tick sampling pass.
type sampledMetric struct {
	name string
	kind MetricKind
	c    *Counter
	g    func() int64
	h    *Histogram
}

// histSample is one cumulative histogram observation: total count, sum,
// and the full bucket array as of the sample instant.
type histSample struct {
	count   int64
	sumNs   int64
	buckets [histBuckets]int64
}

// tsRing is one fixed-size ring of samples at a single resolution.
// stride is the level's step expressed in base ticks; a sample is
// pushed only on ticks divisible by it.
type tsRing struct {
	step   time.Duration
	stride uint64
	t      []int64      // unix ms per slot
	v      []float64    // scalar samples (counters cumulative, gauges raw)
	h      []histSample // histogram samples (nil for scalar series)
	head   int          // slot of the most recent sample
	n      int          // samples currently held (≤ len(t))
}

// idx maps k ∈ [0, n) with 0 = oldest retained sample to a slot index.
func (rg *tsRing) idx(k int) int {
	return (rg.head - rg.n + 1 + k + 2*len(rg.t)) % len(rg.t)
}

func (rg *tsRing) push(tMs int64, v float64) {
	rg.head = (rg.head + 1) % len(rg.t)
	rg.t[rg.head] = tMs
	rg.v[rg.head] = v
	if rg.n < len(rg.t) {
		rg.n++
	}
}

func (rg *tsRing) pushHist(tMs int64, hs histSample) {
	rg.head = (rg.head + 1) % len(rg.t)
	rg.t[rg.head] = tMs
	rg.h[rg.head] = hs
	if rg.n < len(rg.t) {
		rg.n++
	}
}

// tsSeries is one metric's rings, one per ladder level.
type tsSeries struct {
	kind  MetricKind
	rings []*tsRing
}

func newSeries(kind MetricKind, ladder []Resolution) *tsSeries {
	s := &tsSeries{kind: kind}
	base := ladder[0].Step
	for _, res := range ladder {
		rg := &tsRing{step: res.Step, stride: uint64(res.Step / base), t: make([]int64, res.Size)}
		if kind == KindHistogram {
			rg.h = make([]histSample, res.Size)
		} else {
			rg.v = make([]float64, res.Size)
		}
		s.rings = append(s.rings, rg)
	}
	return s
}

// TimeSeries samples a Registry on a fixed tick into multi-resolution
// ring buffers and answers windowed queries over the history.
type TimeSeries struct {
	reg    *Registry
	ladder []Resolution

	// OnTick, when set before Start, runs after every sampling pass
	// (outside the series lock) — the alert evaluator hooks in here so
	// rules are re-evaluated exactly once per fresh sample.
	OnTick func(now time.Time)

	mu      sync.Mutex
	now     func() time.Time
	tickN   uint64
	series  map[string]*tsSeries
	sampled []sampledMetric
	gen     int64
}

// NewTimeSeries builds a collector over reg. A nil ladder gets the
// default NewLadder(1s, 12h). Sampling starts when Start is called (or
// per explicit Tick in tests).
func NewTimeSeries(reg *Registry, ladder []Resolution) *TimeSeries {
	if len(ladder) == 0 {
		ladder = NewLadder(time.Second, 12*time.Hour)
	}
	return &TimeSeries{
		reg:    reg,
		ladder: ladder,
		now:    time.Now,
		series: make(map[string]*tsSeries),
		gen:    -1,
	}
}

// Ladder returns the resolution ladder.
func (ts *TimeSeries) Ladder() []Resolution { return ts.ladder }

// Tick returns the base sampling interval (the finest ladder step).
func (ts *TimeSeries) Tick() time.Duration { return ts.ladder[0].Step }

// SetNow installs a clock for deterministic tests.
func (ts *TimeSeries) SetNow(fn func() time.Time) {
	ts.mu.Lock()
	ts.now = fn
	ts.mu.Unlock()
}

// Start launches the sampling goroutine at the base tick and returns a
// stop function (idempotent).
func (ts *TimeSeries) Start() (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(ts.ladder[0].Step)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				ts.Sample()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Sample runs one sampling pass over the registry — every ring whose
// stride divides the current tick number gets one cumulative sample —
// then invokes OnTick outside the lock.
func (ts *TimeSeries) Sample() {
	ts.mu.Lock()
	now := ts.now()
	ts.sampleLocked(now)
	cb := ts.OnTick
	ts.mu.Unlock()
	if cb != nil {
		cb(now)
	}
}

func (ts *TimeSeries) sampleLocked(now time.Time) {
	ts.refreshSampledLocked()
	tMs := now.UnixMilli()
	tick := ts.tickN
	ts.tickN++
	for i := range ts.sampled {
		m := &ts.sampled[i]
		s := ts.series[m.name]
		switch m.kind {
		case KindCounter:
			v := float64(m.c.Value())
			for _, rg := range s.rings {
				if tick%rg.stride == 0 {
					rg.push(tMs, v)
				}
			}
		case KindGauge:
			v := float64(m.g())
			for _, rg := range s.rings {
				if tick%rg.stride == 0 {
					rg.push(tMs, v)
				}
			}
		case KindHistogram:
			var hs histSample
			hs.count = m.h.count.Load()
			hs.sumNs = m.h.sumNs.Load()
			for b := range hs.buckets {
				hs.buckets[b] = m.h.buckets[b].Load()
			}
			for _, rg := range s.rings {
				if tick%rg.stride == 0 {
					rg.pushHist(tMs, hs)
				}
			}
		}
	}
}

// refreshSampledLocked rebuilds the cached metric list iff the registry
// generation moved — one int comparison per tick at steady state.
func (ts *TimeSeries) refreshSampledLocked() {
	r := ts.reg
	r.mu.Lock()
	if r.gen == ts.gen {
		r.mu.Unlock()
		return
	}
	ts.gen = r.gen
	sampled := make([]sampledMetric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k, c := range r.counters {
		sampled = append(sampled, sampledMetric{name: k, kind: KindCounter, c: c})
	}
	for k, fn := range r.gauges {
		sampled = append(sampled, sampledMetric{name: k, kind: KindGauge, g: fn})
	}
	for k, lgs := range r.labeled {
		for _, lg := range lgs {
			sampled = append(sampled, sampledMetric{name: k + lg.suffix, kind: KindGauge, g: lg.fn})
		}
	}
	for k, h := range r.hists {
		sampled = append(sampled, sampledMetric{name: k, kind: KindHistogram, h: h})
	}
	r.mu.Unlock()
	sort.Slice(sampled, func(i, j int) bool { return sampled[i].name < sampled[j].name })
	ts.sampled = sampled
	for i := range sampled {
		if _, ok := ts.series[sampled[i].name]; !ok {
			ts.series[sampled[i].name] = newSeries(sampled[i].kind, ts.ladder)
		}
	}
}

// pickRing returns the finest ring whose retention covers window,
// falling back to the coarsest. Early in a process's life a coarse
// ring may not have accumulated two samples yet (its stride only
// lands every Nth tick) while a finer ring already has a usable
// history; prefer the finer ring then — partial data beats none.
func (s *tsSeries) pickRing(window time.Duration) *tsRing {
	var best *tsRing
	for _, rg := range s.rings {
		if best == nil && rg.n >= 2 {
			best = rg
		}
		if rg.step*time.Duration(len(rg.t)) >= window {
			if rg.n >= 2 || best == nil {
				return rg
			}
			return best
		}
	}
	if last := s.rings[len(s.rings)-1]; last.n >= 2 || best == nil {
		return last
	}
	return best
}

// firstAtOrAfter returns the k-index of the oldest retained sample with
// timestamp ≥ cutoff, clamped to the available data (0 when everything
// predates cutoff has been evicted, n-2 at most so an interval exists).
func (rg *tsRing) firstAtOrAfter(cutoffMs int64) int {
	k0 := 0
	for k := 0; k < rg.n; k++ {
		if rg.t[rg.idx(k)] >= cutoffMs {
			k0 = k
			break
		}
	}
	if k0 > rg.n-2 {
		k0 = rg.n - 2
	}
	return k0
}

// SeriesPoint is one (unix-ms, value) sample.
type SeriesPoint struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// SeriesData is one metric's windowed view: raw samples (cumulative for
// counters and histogram counts, instantaneous for gauges) plus derived
// per-interval rates and quantiles.
type SeriesData struct {
	Name   string        `json:"name"`
	Kind   MetricKind    `json:"kind"`
	StepMs int64         `json:"stepMs"`
	Points []SeriesPoint `json:"points,omitempty"`
	Rate   []SeriesPoint `json:"rate,omitempty"` // counters & histograms: events/sec per interval
	P50    []SeriesPoint `json:"p50,omitempty"`  // histograms: per-interval quantile, ms
	P99    []SeriesPoint `json:"p99,omitempty"`
}

// TimeSeriesSnapshot is the /timeseries response shape.
type TimeSeriesSnapshot struct {
	NowMs    int64        `json:"nowMs"`
	TickMs   int64        `json:"tickMs"`
	WindowMs int64        `json:"windowMs"`
	Ladder   []Resolution `json:"ladder"`
	Series   []SeriesData `json:"series"`
}

// Query returns every series whose name contains nameFilter (all when
// empty) over the trailing window, read from the finest ladder level
// covering it and coarsened to at most one point per step (step ≤ 0
// keeps the level's native resolution).
func (ts *TimeSeries) Query(nameFilter string, window, step time.Duration) TimeSeriesSnapshot {
	if window <= 0 {
		window = 5 * time.Minute
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	now := ts.now()
	snap := TimeSeriesSnapshot{
		NowMs:    now.UnixMilli(),
		TickMs:   ts.ladder[0].Step.Milliseconds(),
		WindowMs: window.Milliseconds(),
		Ladder:   ts.ladder,
	}
	names := make([]string, 0, len(ts.series))
	for name := range ts.series {
		if nameFilter != "" && !strings.Contains(name, nameFilter) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	cutoff := now.UnixMilli() - window.Milliseconds()
	for _, name := range names {
		s := ts.series[name]
		rg := s.pickRing(window)
		if rg.n == 0 {
			continue
		}
		stride := 1
		if step > rg.step {
			stride = int(step / rg.step)
		}
		sd := SeriesData{Name: name, Kind: s.kind, StepMs: (rg.step * time.Duration(stride)).Milliseconds()}
		// Oldest in-window sample, then every stride-th sample after it.
		k0 := 0
		for k := 0; k < rg.n; k++ {
			if rg.t[rg.idx(k)] >= cutoff {
				k0 = k
				break
			}
		}
		var prevT int64
		var prevV float64
		var prevH *histSample
		for k := k0; k < rg.n; k += stride {
			i := rg.idx(k)
			tMs := rg.t[i]
			switch s.kind {
			case KindHistogram:
				hs := &rg.h[i]
				sd.Points = append(sd.Points, SeriesPoint{T: tMs, V: float64(hs.count)})
				if prevH != nil && tMs > prevT {
					dtSec := float64(tMs-prevT) / 1000
					d := diffHist(prevH, hs)
					sd.Rate = append(sd.Rate, SeriesPoint{T: tMs, V: float64(d.count) / dtSec})
					sd.P50 = append(sd.P50, SeriesPoint{T: tMs, V: quantileFromBuckets(&d.buckets, d.count, 0.50)})
					sd.P99 = append(sd.P99, SeriesPoint{T: tMs, V: quantileFromBuckets(&d.buckets, d.count, 0.99)})
				}
				prevH = hs
			default:
				v := rg.v[i]
				sd.Points = append(sd.Points, SeriesPoint{T: tMs, V: v})
				if s.kind == KindCounter && k > k0 && tMs > prevT {
					dv := v - prevV
					if dv < 0 {
						dv = 0
					}
					sd.Rate = append(sd.Rate, SeriesPoint{T: tMs, V: dv / (float64(tMs-prevT) / 1000)})
				}
				prevV = v
			}
			prevT = tMs
		}
		snap.Series = append(snap.Series, sd)
	}
	return snap
}

// diffHist subtracts two cumulative samples, clamping at zero.
func diffHist(a, b *histSample) histSample {
	var d histSample
	d.count = b.count - a.count
	d.sumNs = b.sumNs - a.sumNs
	if d.count < 0 {
		d.count = 0
	}
	if d.sumNs < 0 {
		d.sumNs = 0
	}
	for i := range d.buckets {
		d.buckets[i] = b.buckets[i] - a.buckets[i]
		if d.buckets[i] < 0 {
			d.buckets[i] = 0
		}
	}
	return d
}

// scalarWindowLocked returns the first/last in-window samples of a
// scalar (counter or gauge) series, clamping the window to retained
// data. ok is false with fewer than two samples.
func (ts *TimeSeries) scalarWindowLocked(name string, window time.Duration) (v0, v1 float64, t0, t1 int64, ok bool) {
	s := ts.series[name]
	if s == nil || s.kind == KindHistogram {
		return
	}
	rg := s.pickRing(window)
	if rg.n < 2 {
		return
	}
	cutoff := ts.now().UnixMilli() - window.Milliseconds()
	k0 := rg.firstAtOrAfter(cutoff)
	i0, i1 := rg.idx(k0), rg.idx(rg.n-1)
	return rg.v[i0], rg.v[i1], rg.t[i0], rg.t[i1], true
}

// CounterDelta returns the named counter's increase over the trailing
// window (clamped to retained data; ok is false with <2 samples).
func (ts *TimeSeries) CounterDelta(name string, window time.Duration) (delta float64, dt time.Duration, ok bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	v0, v1, t0, t1, ok := ts.scalarWindowLocked(name, window)
	if !ok || t1 <= t0 {
		return 0, 0, false
	}
	delta = v1 - v0
	if delta < 0 {
		delta = 0
	}
	return delta, time.Duration(t1-t0) * time.Millisecond, true
}

// CounterRate returns the named counter's per-second rate over the
// trailing window.
func (ts *TimeSeries) CounterRate(name string, window time.Duration) (perSec float64, ok bool) {
	delta, dt, ok := ts.CounterDelta(name, window)
	if !ok || dt <= 0 {
		return 0, false
	}
	return delta / dt.Seconds(), true
}

// Ratio returns Δnum/Δden over the trailing window — e.g. shed rate as
// Ratio("queries_shed_total", "queries_total", 1m). ok is false when
// either series lacks samples or the denominator didn't move.
func (ts *TimeSeries) Ratio(num, den string, window time.Duration) (float64, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	n0, n1, _, _, ok := ts.scalarWindowLocked(num, window)
	if !ok {
		return 0, false
	}
	d0, d1, _, _, ok := ts.scalarWindowLocked(den, window)
	if !ok || d1-d0 <= 0 {
		return 0, false
	}
	dn := n1 - n0
	if dn < 0 {
		dn = 0
	}
	return dn / (d1 - d0), true
}

// HistQuantileOver returns the q-quantile in milliseconds of the named
// histogram's observations within the trailing window, by diffing the
// cumulative bucket arrays at the window edges. ok is false with <2
// samples or zero observations in the window.
func (ts *TimeSeries) HistQuantileOver(name string, q float64, window time.Duration) (ms float64, count int64, ok bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	s := ts.series[name]
	if s == nil || s.kind != KindHistogram {
		return 0, 0, false
	}
	rg := s.pickRing(window)
	if rg.n < 2 {
		return 0, 0, false
	}
	cutoff := ts.now().UnixMilli() - window.Milliseconds()
	k0 := rg.firstAtOrAfter(cutoff)
	d := diffHist(&rg.h[rg.idx(k0)], &rg.h[rg.idx(rg.n-1)])
	if d.count <= 0 {
		return 0, 0, false
	}
	return quantileFromBuckets(&d.buckets, d.count, q), d.count, true
}

// Last returns the most recent sample of a scalar series.
func (ts *TimeSeries) Last(name string) (float64, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	s := ts.series[name]
	if s == nil || s.kind == KindHistogram {
		return 0, false
	}
	rg := s.rings[0]
	if rg.n == 0 {
		return 0, false
	}
	return rg.v[rg.head], true
}

// parseWindowParam reads a duration query parameter, accepting Go
// duration syntax ("5m", "90s") or a bare integer second count.
func parseWindowParam(r *http.Request, key string, def time.Duration) time.Duration {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def
	}
	if d, err := time.ParseDuration(raw); err == nil && d > 0 {
		return d
	}
	if secs, err := strconv.Atoi(raw); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return def
}

// TimeSeriesHandler serves the /timeseries JSON API. Parameters:
// window (default 5m), step (coarsening interval), name (substring
// filter).
func TimeSeriesHandler(ts *TimeSeries) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		window := parseWindowParam(r, "window", 5*time.Minute)
		step := parseWindowParam(r, "step", 0)
		snap := ts.Query(r.URL.Query().Get("name"), window, step)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	}
}
