package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is the deterministic time seam: each Advance moves the
// sampler's notion of now.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestNewLadder(t *testing.T) {
	full := NewLadder(time.Second, 12*time.Hour)
	if len(full) != 3 {
		t.Fatalf("ladder levels = %d, want 3", len(full))
	}
	wantSteps := []time.Duration{time.Second, 10 * time.Second, time.Minute}
	for i, res := range full {
		if res.Step != wantSteps[i] {
			t.Errorf("level %d step = %s, want %s", i, res.Step, wantSteps[i])
		}
	}
	if got := full[2].Retention(); got != 12*time.Hour {
		t.Errorf("coarsest retention = %s, want 12h", got)
	}
	// A retention the finest level already covers keeps one level.
	if short := NewLadder(time.Second, 2*time.Minute); len(short) != 1 {
		t.Errorf("short ladder levels = %d, want 1", len(short))
	}
	// Defaults kick in for non-positive arguments.
	if def := NewLadder(0, 0); def[0].Step != time.Second || len(def) != 3 {
		t.Errorf("default ladder = %+v", def)
	}
}

// TestDownsamplingOracle checks the stride-sampling invariant: because
// samples are cumulative, every coarse-level point must equal the
// fine-level point taken at the same tick, and a windowed rate
// computed at the coarse level must match a full-resolution recompute
// over the same endpoints.
func TestDownsamplingOracle(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs")
	h := reg.Histogram("lat")
	ladder := []Resolution{{Step: time.Second, Size: 600}, {Step: 10 * time.Second, Size: 60}}
	ts := NewTimeSeries(reg, ladder)
	clock := newFakeClock()
	ts.SetNow(clock.Now)

	// 120 ticks of deterministic traffic: tick i adds i+1 requests and
	// observes one latency of (i%20+1) ms.
	for i := 0; i < 120; i++ {
		c.Add(int64(i + 1))
		h.Observe(time.Duration(i%20+1) * time.Millisecond)
		ts.Sample()
		clock.Advance(time.Second)
	}

	fine := ts.Query("reqs", 10*time.Minute, 0).Series[0]
	coarse := ts.Query("reqs", 10*time.Minute, 10*time.Second).Series[0]
	if len(coarse.Points) == 0 {
		t.Fatal("no coarse points")
	}
	fineByT := map[int64]float64{}
	for _, p := range fine.Points {
		fineByT[p.T] = p.V
	}
	for _, p := range coarse.Points {
		fv, ok := fineByT[p.T]
		if !ok {
			t.Fatalf("coarse point at t=%d has no fine-level counterpart", p.T)
		}
		if fv != p.V {
			t.Errorf("coarse point at t=%d = %v, fine = %v", p.T, p.V, fv)
		}
	}

	// Windowed counter delta vs oracle: cumulative diff over the window
	// endpoints recomputed from the fine series.
	window := 60 * time.Second
	delta, _, ok := ts.CounterDelta("reqs", window)
	if !ok {
		t.Fatal("CounterDelta not ok")
	}
	cutoff := clock.Now().UnixMilli() - window.Milliseconds()
	var first, last float64
	found := false
	for _, p := range fine.Points {
		if p.T >= cutoff && !found {
			first, found = p.V, true
		}
		last = p.V
	}
	if want := last - first; delta != want {
		t.Errorf("CounterDelta = %v, oracle = %v", delta, want)
	}

	// Windowed histogram quantile vs direct recompute over the same
	// observations: ticks in the window observed (i%20+1)ms each.
	ms, count, ok := ts.HistQuantileOver("lat", 0.99, window)
	if !ok {
		t.Fatal("HistQuantileOver not ok")
	}
	var oracle Histogram
	// The window [cutoff, now] clamps to samples: first in-window
	// sample is tick 60 (its pre-observation state), so observations
	// 61..119 land between the endpoints.
	for i := 61; i < 120; i++ {
		oracle.Observe(time.Duration(i%20+1) * time.Millisecond)
	}
	snap := oracle.Snapshot()
	if count != snap.Count {
		t.Fatalf("windowed count = %d, oracle = %d", count, snap.Count)
	}
	if ms != snap.P99Ms {
		t.Errorf("windowed p99 = %v, oracle = %v", ms, snap.P99Ms)
	}
}

func TestTimeSeriesGaugeAndRingWrap(t *testing.T) {
	reg := NewRegistry()
	v := int64(0)
	reg.Gauge("depth", func() int64 { return v })
	ts := NewTimeSeries(reg, []Resolution{{Step: time.Second, Size: 8}})
	clock := newFakeClock()
	ts.SetNow(clock.Now)
	for i := 0; i < 20; i++ {
		v = int64(i)
		ts.Sample()
		clock.Advance(time.Second)
	}
	sd := ts.Query("depth", time.Minute, 0).Series[0]
	if len(sd.Points) != 8 {
		t.Fatalf("ring held %d points, want 8", len(sd.Points))
	}
	if sd.Points[0].V != 12 || sd.Points[7].V != 19 {
		t.Errorf("ring window = [%v..%v], want [12..19]", sd.Points[0].V, sd.Points[7].V)
	}
	if last, ok := ts.Last("depth"); !ok || last != 19 {
		t.Errorf("Last = %v,%v want 19,true", last, ok)
	}
}

func TestRatioAndInsufficientData(t *testing.T) {
	reg := NewRegistry()
	shed := reg.Counter("shed")
	total := reg.Counter("total")
	ts := NewTimeSeries(reg, []Resolution{{Step: time.Second, Size: 60}})
	clock := newFakeClock()
	ts.SetNow(clock.Now)

	if _, ok := ts.Ratio("shed", "total", time.Minute); ok {
		t.Error("Ratio with no samples should not be ok")
	}
	ts.Sample()
	clock.Advance(time.Second)
	if _, ok := ts.Ratio("shed", "total", time.Minute); ok {
		t.Error("Ratio with one sample should not be ok")
	}
	// Denominator unmoved → not evaluable.
	ts.Sample()
	clock.Advance(time.Second)
	if _, ok := ts.Ratio("shed", "total", time.Minute); ok {
		t.Error("Ratio with zero denominator delta should not be ok")
	}
	total.Add(10)
	shed.Add(4)
	ts.Sample()
	clock.Advance(time.Second)
	r, ok := ts.Ratio("shed", "total", time.Minute)
	if !ok || r != 0.4 {
		t.Errorf("Ratio = %v,%v want 0.4,true", r, ok)
	}
}

// TestTimeSeriesHandler exercises the JSON API parameters.
func TestTimeSeriesHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(5)
	reg.Counter("b_total").Add(7)
	ts := NewTimeSeries(reg, []Resolution{{Step: time.Second, Size: 60}})
	clock := newFakeClock()
	ts.SetNow(clock.Now)
	for i := 0; i < 5; i++ {
		ts.Sample()
		clock.Advance(time.Second)
	}
	h := TimeSeriesHandler(ts)

	req := httptest.NewRequest("GET", "/timeseries?window=30s&name=a_", nil)
	rr := httptest.NewRecorder()
	h(rr, req)
	var snap TimeSeriesSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if snap.WindowMs != 30_000 {
		t.Errorf("windowMs = %d, want 30000", snap.WindowMs)
	}
	if len(snap.Series) != 1 || snap.Series[0].Name != "a_total" {
		t.Fatalf("name filter returned %+v", snap.Series)
	}
	if snap.Series[0].Kind != KindCounter || len(snap.Series[0].Points) != 5 {
		t.Errorf("series = kind %s with %d points", snap.Series[0].Kind, len(snap.Series[0].Points))
	}
}

// TestTimeSeriesConcurrency races ticks, observations, registrations,
// and queries; run under -race this is the data-race check the tick
// path's locking discipline is accountable to.
func TestTimeSeriesConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	h := reg.Histogram("h")
	ts := NewTimeSeries(reg, []Resolution{{Step: time.Millisecond, Size: 128}, {Step: 10 * time.Millisecond, Size: 32}})
	var wg sync.WaitGroup
	stopObs := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopObs:
					return
				default:
				}
				c.Inc()
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				if i%100 == 0 {
					// Late registration forces sampler-cache rebuilds
					// concurrent with ticks.
					reg.Counter(fmt.Sprintf("late_%d_%d", w, i))
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		ts.Sample()
		if i%10 == 0 {
			ts.Query("", time.Minute, 0)
			ts.CounterRate("c", time.Second)
			ts.HistQuantileOver("h", 0.99, time.Second)
		}
	}
	close(stopObs)
	wg.Wait()
}

// TestStartStop covers the real ticker path (wall clock).
func TestStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	ts := NewTimeSeries(reg, []Resolution{{Step: 5 * time.Millisecond, Size: 64}})
	ticked := make(chan struct{}, 1)
	ts.OnTick = func(time.Time) {
		select {
		case ticked <- struct{}{}:
		default:
		}
	}
	stop := ts.Start()
	select {
	case <-ticked:
	case <-time.After(2 * time.Second):
		t.Fatal("sampler never ticked")
	}
	stop()
	stop() // idempotent
}
