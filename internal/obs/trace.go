// Package obs is the stdlib-only observability layer shared by the
// SPARQL engine, the protocol endpoint, and the CLI tools: query traces
// (per-operator spans rendered as an EXPLAIN ANALYZE-style tree),
// an atomic metrics registry (counters, gauges, log-bucketed latency
// histograms) with a JSON snapshot, and an HTTP diagnostics mux
// (/metrics, /debug/vars, /debug/pprof, /debug/traces).
//
// The package has no dependency on the rest of the repository, so every
// layer can import it without cycles. All types are safe for concurrent
// use; the tracing fast path when no tracer is installed is a single
// nil check per operator (verified by BenchmarkTracerOverhead).
package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one operator node in a query trace tree: what ran, how long
// it took, how many solutions flowed in and out, and how many worker
// goroutines the operator actually used. Spans form a tree mirroring
// the algebra of the evaluated query.
//
// A span's scalar fields are written once, by the goroutine that
// created it; Children appends are mutex-protected so sibling operators
// evaluated concurrently may attach spans to a shared parent.
type Span struct {
	Op       string        `json:"op"`
	Detail   string        `json:"detail,omitempty"`
	Wall     time.Duration `json:"wallNs"`
	In       int           `json:"in"`
	Out      int           `json:"out"`
	Est      int64         `json:"est,omitempty"`
	EstSet   bool          `json:"estSet,omitempty"`
	Workers  int           `json:"workers,omitempty"`
	Mem      int64         `json:"memBytes,omitempty"`
	Children []*Span       `json:"children,omitempty"`

	start time.Time
	mu    sync.Mutex
}

// StartSpan opens a root span.
func StartSpan(op, detail string, in int) *Span {
	return &Span{Op: op, Detail: detail, In: in, start: time.Now()}
}

// StartChild opens a child span under s. It is nil-safe: a nil receiver
// returns nil, so callers may chain through a disabled trace cursor
// without branching.
func (s *Span) StartChild(op, detail string, in int) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(op, detail, in)
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// Finish records the output cardinality, the worker count, and the wall
// time since the span started. Nil-safe.
func (s *Span) Finish(out, workers int) {
	if s == nil {
		return
	}
	s.Out = out
	s.Workers = workers
	s.Wall = time.Since(s.start)
}

// SetEst records the planner's estimated output cardinality. A span
// with an estimate renders as "est=… act=…" instead of "out=…", putting
// estimator error next to ground truth in the EXPLAIN ANALYZE tree.
// Nil-safe.
func (s *Span) SetEst(n int64) {
	if s == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	s.Est = n
	s.EstSet = true
}

// SetMem records the approximate bytes the operator materialized (its
// contribution to the query's resource account). Rendered as mem=… in
// the timed EXPLAIN ANALYZE view; excluded from Outline so golden
// trees stay byte-identical whether or not accounting ran. Nil-safe.
func (s *Span) SetMem(b int64) {
	if s == nil || b <= 0 {
		return
	}
	s.Mem = b
}

// Estimated reports whether SetEst was called on the span.
func (s *Span) Estimated() bool { return s != nil && s.EstSet }

// Attach appends a pre-built span (e.g. a server-side span tree decoded
// from a response header) as a child of s. Nil-safe on both ends.
func (s *Span) Attach(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
}

// LastChild returns the most recently attached child span, or nil.
// Nil-safe; used by the evaluator to annotate the span an operator just
// finished without threading it through every case.
func (s *Span) LastChild() *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.Children) == 0 {
		return nil
	}
	return s.Children[len(s.Children)-1]
}

// Visit walks the span tree depth-first, parents before children.
func (s *Span) Visit(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Visit(fn)
	}
}

// Render returns the EXPLAIN ANALYZE-style tree with wall times.
func (s *Span) Render() string {
	var b strings.Builder
	s.render(&b, "", true)
	return b.String()
}

// Outline returns the same tree without timings, which is stable across
// runs for a deterministic query plan (used by golden-file tests).
func (s *Span) Outline() string {
	var b strings.Builder
	s.render(&b, "", false)
	return b.String()
}

func (s *Span) render(b *strings.Builder, prefix string, withTimes bool) {
	if s == nil {
		return
	}
	b.WriteString(s.Op)
	if s.Detail != "" {
		b.WriteString(" ")
		b.WriteString(s.Detail)
	}
	if s.EstSet {
		fmt.Fprintf(b, "  [in=%d est=%d act=%d", s.In, s.Est, s.Out)
	} else {
		fmt.Fprintf(b, "  [in=%d out=%d", s.In, s.Out)
	}
	if s.Workers > 1 {
		fmt.Fprintf(b, " workers=%d", s.Workers)
	}
	if withTimes {
		if s.Mem > 0 {
			fmt.Fprintf(b, " mem=%s", FormatBytes(s.Mem))
		}
		fmt.Fprintf(b, " time=%s", s.Wall.Round(time.Microsecond))
	}
	b.WriteString("]\n")
	for i, c := range s.Children {
		connector, childPrefix := "├─ ", "│  "
		if i == len(s.Children)-1 {
			connector, childPrefix = "└─ ", "   "
		}
		b.WriteString(prefix)
		b.WriteString(connector)
		c.render(b, prefix+childPrefix, withTimes)
	}
}

// Trace is one finished query trace: its identity (the trace ID shared
// by every process that contributed spans), when it started, the query
// text (when the caller knows it), the planner's summary line (when the
// caller planned), and the root operator span.
type Trace struct {
	ID    TraceID   `json:"id,omitempty"`
	Start time.Time `json:"start"`
	Query string    `json:"query,omitempty"`
	// Plan is the planner's one-line summary — for a QL query, the
	// chosen translation with its estimated cost, e.g.
	// "alternative (est cost 10458)". Rendered as a "plan:" line above
	// the operator tree by Render and Outline.
	Plan string `json:"plan,omitempty"`
	Root *Span  `json:"root"`

	// Resource account totals, set when the query ran with accounting:
	// cumulative solutions and approximate bytes materialized, and the
	// peak in-flight bytes. Rendered as a "mem:" line by Render (not
	// Outline — goldens stay stable) and exported in the JSONL archive
	// for `qb2olap trace -workload`.
	Rows      int64 `json:"rows,omitempty"`
	Bytes     int64 `json:"bytes,omitempty"`
	PeakBytes int64 `json:"peakBytes,omitempty"`
}

// Render returns the trace identity, the query text (if any), the plan
// line (if any), and the operator tree with wall times.
func (t *Trace) Render() string {
	var b strings.Builder
	if t.ID != "" {
		b.WriteString("# trace ")
		b.WriteString(string(t.ID))
		b.WriteString("\n")
	}
	if t.Query != "" {
		b.WriteString(strings.TrimSpace(t.Query))
		b.WriteString("\n\n")
	}
	if t.Plan != "" {
		b.WriteString("plan: ")
		b.WriteString(t.Plan)
		b.WriteString("\n")
	}
	if t.Rows > 0 || t.Bytes > 0 {
		fmt.Fprintf(&b, "mem: rows=%d bytes=%s peak=%s\n",
			t.Rows, FormatBytes(t.Bytes), FormatBytes(t.PeakBytes))
	}
	b.WriteString(t.Root.Render())
	return b.String()
}

// Outline returns the plan line (if any) and the operator tree without
// timings, which is stable across runs for a deterministic query plan
// (used by golden-file tests).
func (t *Trace) Outline() string {
	if t.Plan == "" {
		return t.Root.Outline()
	}
	return "plan: " + t.Plan + "\n" + t.Root.Outline()
}

// Tracer is a sink for finished query traces: it keeps a bounded ring
// of the most recent traces and optionally forwards every trace to an
// OnFinish hook (slow-query logging, per-operator metrics). Safe for
// concurrent use.
//
// Both the entry count and the retained query-text bytes are hard
// capped, so a long-running server cannot grow without limit no matter
// how large the queries it receives are.
type Tracer struct {
	// OnFinish, when non-nil, is called synchronously with every
	// collected trace. Set it before the tracer is shared.
	OnFinish func(*Trace)

	// MaxQueryBytes caps the query text retained per trace; longer
	// texts are truncated with a marker (<= 0 selects
	// DefaultMaxQueryBytes). Set it before the tracer is shared.
	MaxQueryBytes int

	mu     sync.Mutex
	keep   int
	recent []*Trace // ring, oldest first
}

// DefaultMaxQueryBytes is the per-trace query-text retention cap used
// when Tracer.MaxQueryBytes (or SlowLog.MaxQueryBytes) is unset.
const DefaultMaxQueryBytes = 16 << 10

// truncateQuery caps q at limit bytes, appending a marker when cut.
func truncateQuery(q string, limit int) string {
	if limit <= 0 {
		limit = DefaultMaxQueryBytes
	}
	if len(q) <= limit {
		return q
	}
	return q[:limit] + "… [truncated]"
}

// NewTracer returns a tracer retaining the last keep traces (keep <= 0
// selects 16).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = 16
	}
	return &Tracer{keep: keep}
}

// Collect records a finished trace. Nil-safe, so callers can
// unconditionally collect through an optional tracer.
func (t *Tracer) Collect(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.Query = truncateQuery(tr.Query, t.MaxQueryBytes)
	t.mu.Lock()
	t.recent = append(t.recent, tr)
	if len(t.recent) > t.keep {
		t.recent = t.recent[len(t.recent)-t.keep:]
	}
	t.mu.Unlock()
	if t.OnFinish != nil {
		t.OnFinish(tr)
	}
}

// Recent returns a copy of the retained traces, newest first.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, len(t.recent))
	for i, tr := range t.recent {
		out[len(t.recent)-1-i] = tr
	}
	return out
}
