package obs

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strings"
)

// Cross-process trace propagation wire format.
//
// Requests carry a W3C Trace Context "traceparent" header
// (https://www.w3.org/TR/trace-context/):
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// with flag bit 0 = sampled. The server honors the caller's sampling
// verdict: a sampled request is evaluated with operator tracing and the
// finished server span tree travels back base64(JSON)-encoded in the
// X-Qb2olap-Trace response header, which the client attaches under its
// own HTTP client span — one stitched end-to-end trace under one trace
// ID. An unsampled traceparent pins the query to the untraced fast
// path, so a 1%-sampling client imposes near-zero tracing cost on the
// server for the other 99%.

const (
	// TraceparentHeader is the request header carrying trace identity
	// and the sampling verdict (canonical W3C lower-case name is
	// "traceparent"; Go canonicalizes either form).
	TraceparentHeader = "Traceparent"

	// ServerTraceHeader is the response header carrying the serialized
	// server-side span tree of a sampled query.
	ServerTraceHeader = "X-Qb2olap-Trace"

	// MaxWireSpanBytes caps the encoded span tree a server will put on
	// the wire; larger trees are dropped (the client trace then simply
	// lacks server detail) so response headers stay within the default
	// client/server header limits.
	MaxWireSpanBytes = 256 << 10
)

// TraceContext is a parsed traceparent header.
type TraceContext struct {
	TraceID TraceID
	Parent  string // 16-hex span ID of the caller's span
	Sampled bool
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(id TraceID, parent string, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%s-%s", id, parent, flags)
}

// ParseTraceparent parses a traceparent header value. It accepts any
// version, requires the version-00 field shape, and reports ok=false
// for empty or malformed values.
func ParseTraceparent(v string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return TraceContext{}, false
	}
	for _, p := range parts {
		if !isHex(p) {
			return TraceContext{}, false
		}
	}
	// An all-zero trace or parent ID is invalid per the spec.
	if strings.Trim(parts[1], "0") == "" || strings.Trim(parts[2], "0") == "" {
		return TraceContext{}, false
	}
	var flags int
	fmt.Sscanf(parts[3], "%02x", &flags)
	return TraceContext{
		TraceID: TraceID(strings.ToLower(parts[1])),
		Parent:  strings.ToLower(parts[2]),
		Sampled: flags&1 != 0,
	}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// EncodeSpanWire serializes a finished span tree for the
// ServerTraceHeader response header. ok is false when the encoded tree
// exceeds MaxWireSpanBytes (callers then omit the header).
func EncodeSpanWire(s *Span) (string, bool) {
	if s == nil {
		return "", false
	}
	data, err := json.Marshal(s)
	if err != nil {
		return "", false
	}
	enc := base64.StdEncoding.EncodeToString(data)
	if len(enc) > MaxWireSpanBytes {
		return "", false
	}
	return enc, true
}

// DecodeSpanWire parses a ServerTraceHeader value back into a span
// tree. An empty value decodes to (nil, nil) so callers can pass the
// header through unconditionally. Values beyond MaxWireSpanBytes are
// rejected without being decoded: a compliant server never emits them,
// so an oversized header is hostile or corrupt and must not make the
// client buffer or parse an unbounded payload.
func DecodeSpanWire(v string) (*Span, error) {
	if v == "" {
		return nil, nil
	}
	if len(v) > MaxWireSpanBytes {
		return nil, fmt.Errorf("obs: span wire value exceeds %d bytes", MaxWireSpanBytes)
	}
	data, err := base64.StdEncoding.DecodeString(v)
	if err != nil {
		return nil, fmt.Errorf("obs: decoding span wire: %w", err)
	}
	var s Span
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: decoding span wire: %w", err)
	}
	return &s, nil
}
