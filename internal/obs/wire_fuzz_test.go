package obs

import (
	"encoding/base64"
	"strings"
	"testing"
)

// FuzzParseTraceparent checks the traceparent parser never panics and
// that every accepted value round-trips through FormatTraceparent.
func FuzzParseTraceparent(f *testing.F) {
	seeds := []string{
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00",
		"ff-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-03",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"  00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01  ",
		"00-short-b7ad6b7169203331-01",
		"traceparent",
		"",
		"----",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, v string) {
		tc, ok := ParseTraceparent(v)
		if !ok {
			return
		}
		if len(tc.TraceID) != 32 || !isHex(string(tc.TraceID)) {
			t.Fatalf("accepted trace ID %q is not 32 hex chars", tc.TraceID)
		}
		if len(tc.Parent) != 16 || !isHex(tc.Parent) {
			t.Fatalf("accepted parent %q is not 16 hex chars", tc.Parent)
		}
		if strings.ToLower(string(tc.TraceID)) != string(tc.TraceID) {
			t.Fatalf("trace ID %q not normalized to lower case", tc.TraceID)
		}
		// A formatted round-trip must parse back to the same identity.
		rt, ok := ParseTraceparent(FormatTraceparent(tc.TraceID, tc.Parent, tc.Sampled))
		if !ok || rt != tc {
			t.Fatalf("round-trip mismatch: %+v vs %+v", tc, rt)
		}
	})
}

// FuzzDecodeSpanWire checks the base64(JSON) span-tree decoder never
// panics, rejects oversized values without decoding them, and returns
// either an error or a usable span for every input.
func FuzzDecodeSpanWire(f *testing.F) {
	// A genuine encoded tree as produced by the server.
	root := StartSpan("SELECT", "", 1)
	child := root.StartChild("BGP", "?s ?p ?o", 1)
	child.SetEst(42)
	child.Finish(10, 4)
	root.Finish(10, 1)
	if wire, ok := EncodeSpanWire(root); ok {
		f.Add(wire)
	}
	f.Add("")
	f.Add("not base64!")
	f.Add(base64.StdEncoding.EncodeToString([]byte(`{"op":"SELECT"`)))
	f.Add(base64.StdEncoding.EncodeToString([]byte(`[1,2,3]`)))
	f.Add(base64.StdEncoding.EncodeToString([]byte(`{"op":"X","children":[{"op":"Y"}]}`)))
	f.Fuzz(func(t *testing.T, v string) {
		s, err := DecodeSpanWire(v)
		if err != nil {
			return
		}
		if v == "" {
			if s != nil {
				t.Fatal("empty wire value decoded to a span")
			}
			return
		}
		if len(v) > MaxWireSpanBytes {
			t.Fatalf("oversized value (%d bytes) was accepted", len(v))
		}
		// Whatever decoded must be traversable and renderable without
		// panicking — this is what the client does with it.
		n := 0
		s.Visit(func(*Span) { n++ })
		_ = s.Outline()
	})
}
