package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// NormalizeShape reduces a query text to its shape: the structure that
// survives when literals and limits change. The reduction is purely
// lexical so the same definition works online (no parse needed on the
// error path) and offline over archived trace JSONL:
//
//   - string literals ('…', "…", with \-escapes) become "?"
//   - bare numbers outside IRIs become "N" (so LIMIT 10 ≡ LIMIT 500)
//   - comments (# to end of line, outside strings/IRIs) are dropped
//   - whitespace runs collapse to one space
//   - keywords outside strings/IRIs are uppercased
//
// IRIs (<…>) and prefixed names are preserved: a query over a different
// predicate is a different shape, but the same query with a different
// year literal or LIMIT is the same shape.
func NormalizeShape(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	i, n := 0, len(q)
	space := func() {
		if b.Len() > 0 && !strings.HasSuffix(b.String(), " ") {
			b.WriteByte(' ')
		}
	}
	for i < n {
		c := q[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			space()
			i++
		case c == '#':
			for i < n && q[i] != '\n' {
				i++
			}
		case c == '<':
			j := i + 1
			for j < n && q[j] != '>' && q[j] != ' ' && q[j] != '\n' {
				j++
			}
			if j < n && q[j] == '>' {
				j++
			}
			b.WriteString(q[i:j])
			i = j
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < n && q[j] != quote {
				if q[j] == '\\' && j+1 < n {
					j++
				}
				j++
			}
			if j < n {
				j++
			}
			b.WriteString(string(quote))
			b.WriteByte('?')
			b.WriteString(string(quote))
			// Keep a datatype/lang tag attached to the literal: typed
			// literals with different types are different shapes.
			i = j
		case c >= '0' && c <= '9':
			// A number token (digits, optional decimal part). A digit
			// glued to a letter (e.g. inside a prefixed name like
			// ex:obs12) is part of an identifier, not a literal — only
			// abstract it when the previous emitted byte is not a
			// name character.
			prev := byte(0)
			if s := b.String(); len(s) > 0 {
				prev = s[len(s)-1]
			}
			isName := func(x byte) bool {
				return x == '_' || x == ':' || (x >= 'a' && x <= 'z') || (x >= 'A' && x <= 'Z') || (x >= '0' && x <= '9')
			}
			j := i
			for j < n && ((q[j] >= '0' && q[j] <= '9') || q[j] == '.') {
				j++
			}
			// Trailing dot is a triple terminator, not a decimal point.
			for j > i && q[j-1] == '.' {
				j--
			}
			if isName(prev) {
				b.WriteString(q[i:j])
			} else {
				b.WriteByte('N')
			}
			i = j
		case c >= 'a' && c <= 'z':
			j := i
			for j < n && ((q[j] >= 'a' && q[j] <= 'z') || (q[j] >= 'A' && q[j] <= 'Z') || (q[j] >= '0' && q[j] <= '9') || q[j] == '_') {
				j++
			}
			word := q[i:j]
			// Uppercase bare lowercase words only when they are SPARQL
			// keywords; prefixed-name parts (followed by ':') and
			// variables are preserved by the surrounding cases.
			if j < n && q[j] == ':' {
				b.WriteString(word)
			} else if sparqlKeywords[strings.ToUpper(word)] {
				b.WriteString(strings.ToUpper(word))
			} else {
				b.WriteString(word)
			}
			i = j
		default:
			b.WriteByte(c)
			i++
		}
	}
	return strings.TrimSpace(b.String())
}

// sparqlKeywords is the keyword set uppercased by NormalizeShape so
// casing differences do not split shapes.
var sparqlKeywords = map[string]bool{
	"SELECT": true, "ASK": true, "CONSTRUCT": true, "DESCRIBE": true,
	"WHERE": true, "FILTER": true, "OPTIONAL": true, "UNION": true,
	"MINUS": true, "GRAPH": true, "BIND": true, "VALUES": true,
	"GROUP": true, "BY": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "DISTINCT": true, "REDUCED": true,
	"PREFIX": true, "BASE": true, "AS": true, "HAVING": true,
	"INSERT": true, "DELETE": true, "DATA": true, "FROM": true, "NAMED": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"A": false, // 'a' is rdf:type shorthand; keep lowercase
}

// ShapeHash returns the workload fingerprint of a query: an FNV-64a
// hash of its normalized shape, rendered as 16 hex digits. Two queries
// differing only in literals, numbers, or whitespace hash identically.
func ShapeHash(q string) string {
	h := fnv.New64a()
	h.Write([]byte(NormalizeShape(q)))
	return fmt.Sprintf("%016x", h.Sum64())
}

// QueryOutcome classifies how one query ended for the per-shape
// outcome counters: the same taxonomy the access log and the load
// driver use, so a shape's /workload row and a bench run report
// disagree only when the traffic differs.
type QueryOutcome string

const (
	OutcomeOK       QueryOutcome = "ok"
	OutcomeError    QueryOutcome = "error"    // evaluation/protocol failure (4xx/5xx incl. over-mem)
	OutcomeShed     QueryOutcome = "shed"     // rejected at the in-flight limit (503)
	OutcomeTimeout  QueryOutcome = "timeout"  // deadline expired (504)
	OutcomeCanceled QueryOutcome = "canceled" // caller disconnected (499)
)

// shapeEntry accumulates one query shape's statistics.
type shapeEntry struct {
	hash     string
	example  string // normalized shape text, truncated
	count    int64
	errors   int64
	timeouts int64
	sheds    int64
	canceled int64
	rows     int64
	bytes    int64
	lat      Histogram
}

// Workload is a bounded registry of query shapes: for each distinct
// normalized shape it keeps counts, a latency histogram (p50/p95/p99),
// and cumulative rows/bytes. When the shape table is full, new shapes
// fold into a catch-all bucket instead of growing the map, so an
// adversarial workload cannot exhaust server memory. Safe for
// concurrent use; nil-safe.
type Workload struct {
	mu        sync.Mutex
	shapes    map[string]*shapeEntry
	maxShapes int
	overflow  shapeEntry // shapes beyond maxShapes
}

// DefaultMaxShapes bounds the per-shape table of a Workload registry.
const DefaultMaxShapes = 256

// maxShapeExampleBytes caps the retained example text per shape.
const maxShapeExampleBytes = 2 << 10

// NewWorkload returns a workload registry keeping at most maxShapes
// distinct shapes (<= 0 selects DefaultMaxShapes).
func NewWorkload(maxShapes int) *Workload {
	if maxShapes <= 0 {
		maxShapes = DefaultMaxShapes
	}
	return &Workload{shapes: make(map[string]*shapeEntry), maxShapes: maxShapes}
}

// Record folds one finished query into the registry, classified by its
// outcome (shed and timed-out queries count separately from plain
// errors, so a shape's row shows *how* it fails, not just that it
// does). Nil-safe.
func (w *Workload) Record(query string, d time.Duration, rows, bytes int64, outcome QueryOutcome) {
	if w == nil {
		return
	}
	shape := NormalizeShape(query)
	h := fnv.New64a()
	h.Write([]byte(shape))
	hash := fmt.Sprintf("%016x", h.Sum64())

	w.mu.Lock()
	e, ok := w.shapes[hash]
	if !ok {
		if len(w.shapes) >= w.maxShapes {
			e = &w.overflow
			if e.hash == "" {
				e.hash = "overflow"
				e.example = "(shapes beyond the registry bound)"
			}
		} else {
			e = &shapeEntry{hash: hash, example: truncateQuery(shape, maxShapeExampleBytes)}
			w.shapes[hash] = e
		}
	}
	e.count++
	switch outcome {
	case OutcomeError:
		e.errors++
	case OutcomeShed:
		e.sheds++
	case OutcomeTimeout:
		e.timeouts++
	case OutcomeCanceled:
		e.canceled++
	}
	e.rows += rows
	e.bytes += bytes
	w.mu.Unlock()
	// Histogram is internally atomic; observe outside the lock.
	e.lat.Observe(d)
}

// ShapeStat is one shape's aggregated statistics in a snapshot.
type ShapeStat struct {
	Hash     string  `json:"hash"`
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors,omitempty"`
	Timeouts int64   `json:"timeouts,omitempty"`
	Sheds    int64   `json:"sheds,omitempty"`
	Canceled int64   `json:"canceled,omitempty"`
	P50Ms    float64 `json:"p50Ms"`
	P95Ms   float64 `json:"p95Ms"`
	P99Ms   float64 `json:"p99Ms"`
	AvgMs   float64 `json:"avgMs"`
	Rows    int64   `json:"rows"`
	Bytes   int64   `json:"bytes"`
	AvgRows float64 `json:"avgRows"`
	Example string  `json:"example"`
}

// WorkloadSnapshot is a point-in-time view of the registry, shapes
// sorted by count (desc) then hash, the ordering `qb2olap trace
// -workload` and /workload render.
type WorkloadSnapshot struct {
	Shapes  int         `json:"shapes"`
	Queries int64       `json:"queries"`
	Top     []ShapeStat `json:"top"`
}

// Snapshot returns the current per-shape statistics.
func (w *Workload) Snapshot() WorkloadSnapshot {
	var snap WorkloadSnapshot
	if w == nil {
		return snap
	}
	w.mu.Lock()
	entries := make([]*shapeEntry, 0, len(w.shapes)+1)
	for _, e := range w.shapes {
		entries = append(entries, e)
	}
	if w.overflow.count > 0 {
		entries = append(entries, &w.overflow)
	}
	w.mu.Unlock()

	for _, e := range entries {
		hs := e.lat.Snapshot()
		st := ShapeStat{
			Hash: e.hash, Count: e.count, Errors: e.errors,
			Timeouts: e.timeouts, Sheds: e.sheds, Canceled: e.canceled,
			P50Ms: hs.P50Ms, P95Ms: hs.P95Ms, P99Ms: hs.P99Ms, AvgMs: hs.AvgMs,
			Rows: e.rows, Bytes: e.bytes, Example: e.example,
		}
		if e.count > 0 {
			st.AvgRows = float64(e.rows) / float64(e.count)
		}
		snap.Queries += e.count
		snap.Top = append(snap.Top, st)
	}
	snap.Shapes = len(snap.Top)
	sort.Slice(snap.Top, func(i, j int) bool {
		if snap.Top[i].Count != snap.Top[j].Count {
			return snap.Top[i].Count > snap.Top[j].Count
		}
		return snap.Top[i].Hash < snap.Top[j].Hash
	})
	return snap
}

// Canonical zeroes the timing-dependent fields of the snapshot
// (latency quantiles), leaving hash/count/rows/bytes — the part that is
// deterministic for a fixed corpus — so golden-file tests can compare
// the rendered text across runs.
func (s WorkloadSnapshot) Canonical() WorkloadSnapshot {
	out := s
	out.Top = make([]ShapeStat, len(s.Top))
	for i, t := range s.Top {
		t.P50Ms, t.P95Ms, t.P99Ms, t.AvgMs = 0, 0, 0, 0
		out.Top[i] = t
	}
	return out
}

// RenderText renders the snapshot as an aligned table followed by one
// example shape per line, the /workload text view.
func (s WorkloadSnapshot) RenderText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload: %d shapes, %d queries\n\n", s.Shapes, s.Queries)
	if len(s.Top) == 0 {
		b.WriteString("no queries recorded\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-16s %8s %6s %6s %6s %6s %9s %9s %9s %10s %10s\n",
		"SHAPE", "COUNT", "ERR", "TMOUT", "SHED", "CANCEL", "P50", "P95", "P99", "ROWS", "BYTES")
	for _, t := range s.Top {
		fmt.Fprintf(&b, "%-16s %8d %6d %6d %6d %6d %8.1fms %8.1fms %8.1fms %10d %10s\n",
			t.Hash, t.Count, t.Errors, t.Timeouts, t.Sheds, t.Canceled,
			t.P50Ms, t.P95Ms, t.P99Ms, t.Rows, FormatBytes(t.Bytes))
	}
	b.WriteString("\n")
	for _, t := range s.Top {
		fmt.Fprintf(&b, "%s  %s\n", t.Hash, t.Example)
	}
	return b.String()
}

// WorkloadFromTraces folds an exported trace archive into a workload
// registry — the `qb2olap trace -workload` offline mode. Rows fall
// back to the root span's output cardinality when the trace predates
// resource accounting.
func WorkloadFromTraces(traces []*Trace) *Workload {
	w := NewWorkload(0)
	for _, tr := range traces {
		if tr == nil || tr.Root == nil {
			continue
		}
		rows := tr.Rows
		if rows == 0 {
			rows = int64(tr.Root.Out)
		}
		w.Record(tr.Query, tr.Root.Wall, rows, tr.Bytes, OutcomeOK)
	}
	return w
}

// WorkloadHandler serves the registry at /workload: JSON by default,
// the text table when the Accept header prefers text/plain (mirroring
// /metrics content negotiation) or ?text=1 is set.
func WorkloadHandler(w *Workload) http.HandlerFunc {
	return func(rw http.ResponseWriter, req *http.Request) {
		snap := w.Snapshot()
		wantText := false
		if req != nil {
			accept := req.Header.Get("Accept")
			if strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json") {
				wantText = true
			}
			if req.URL.Query().Get("text") == "1" {
				wantText = true
			}
		}
		if wantText {
			rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(rw, snap.RenderText())
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	}
}
