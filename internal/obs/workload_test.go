package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestNormalizeShapeInvariants pins the core fingerprinting property:
// queries differing only in literals, numbers, whitespace, comments, or
// keyword casing normalize to the same shape; queries differing in
// structure (different predicate IRIs, different operators) do not.
func TestNormalizeShapeInvariants(t *testing.T) {
	same := [][2]string{
		{
			`SELECT ?s WHERE { ?s <http://ex/p> "alpha" } LIMIT 10`,
			`SELECT ?s WHERE { ?s <http://ex/p> "omega" } LIMIT 500`,
		},
		{
			`select ?s where { ?s <http://ex/p> ?o filter(?o > 100) }`,
			`SELECT ?s WHERE { ?s <http://ex/p> ?o FILTER(?o > 7) }`,
		},
		{
			"SELECT ?s WHERE {\n  # find them all\n  ?s <http://ex/p> 'x'\n}",
			`SELECT ?s WHERE { ?s <http://ex/p> 'y' }`,
		},
		{
			`SELECT ?s WHERE { ?s <http://ex/p> "1999"^^<http://www.w3.org/2001/XMLSchema#gYear> }`,
			`SELECT ?s WHERE { ?s <http://ex/p> "2013"^^<http://www.w3.org/2001/XMLSchema#gYear> }`,
		},
		{
			`SELECT ?s   WHERE	{ ?s <http://ex/p> ?o }`,
			`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
		},
	}
	for i, pair := range same {
		if a, b := ShapeHash(pair[0]), ShapeHash(pair[1]); a != b {
			t.Errorf("pair %d: want same hash, got %s vs %s\n  %s\n  %s\n  norm a: %s\n  norm b: %s",
				i, a, b, pair[0], pair[1], NormalizeShape(pair[0]), NormalizeShape(pair[1]))
		}
	}
	diff := [][2]string{
		{
			`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
			`SELECT ?s WHERE { ?s <http://ex/q> ?o }`,
		},
		{
			`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
			`SELECT ?s WHERE { ?s <http://ex/p> ?o } LIMIT 10`,
		},
		{
			`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
			`SELECT (COUNT(?s) AS ?n) WHERE { ?s <http://ex/p> ?o }`,
		},
	}
	for i, pair := range diff {
		if a, b := ShapeHash(pair[0]), ShapeHash(pair[1]); a == b {
			t.Errorf("pair %d: want different hashes, both %s\n  %s\n  %s", i, a, pair[0], pair[1])
		}
	}
}

// TestNormalizeShapePreservesIRIs checks that numbers inside IRIs and
// prefixed names are not abstracted: ex:obs12 and year-bearing IRIs
// are structure, not literals.
func TestNormalizeShapePreservesIRIs(t *testing.T) {
	q := `SELECT ?s WHERE { ?s <http://ex/year/1999> ex:obs12 }`
	norm := NormalizeShape(q)
	if !strings.Contains(norm, "<http://ex/year/1999>") {
		t.Errorf("IRI digits were abstracted: %s", norm)
	}
	if !strings.Contains(norm, "ex:obs12") {
		t.Errorf("prefixed-name digits were abstracted: %s", norm)
	}
	if ShapeHash(`SELECT ?s WHERE { ?s <http://ex/year/1999> ?o }`) ==
		ShapeHash(`SELECT ?s WHERE { ?s <http://ex/year/2013> ?o }`) {
		t.Error("different IRIs hashed to the same shape")
	}
}

// TestWorkloadBounds verifies the registry folds shapes beyond its
// bound into the overflow bucket instead of growing.
func TestWorkloadBounds(t *testing.T) {
	w := NewWorkload(4)
	for i := 0; i < 10; i++ {
		// Distinct predicates give distinct shapes.
		q := `SELECT ?s WHERE { ?s <http://ex/p` + strings.Repeat("x", i) + `> ?o }`
		w.Record(q, time.Millisecond, 1, 100, OutcomeOK)
	}
	snap := w.Snapshot()
	if snap.Shapes != 5 { // 4 distinct + overflow
		t.Fatalf("shapes = %d, want 5 (4 + overflow)", snap.Shapes)
	}
	if snap.Queries != 10 {
		t.Fatalf("queries = %d, want 10", snap.Queries)
	}
	var over *ShapeStat
	for i := range snap.Top {
		if snap.Top[i].Hash == "overflow" {
			over = &snap.Top[i]
		}
	}
	if over == nil || over.Count != 6 {
		t.Fatalf("overflow bucket = %+v, want count 6", over)
	}
}

// TestWorkloadRecordAggregates checks per-shape accumulation: repeated
// queries of the same shape fold into one entry with summed rows/bytes
// and the error flag counted.
func TestWorkloadRecordAggregates(t *testing.T) {
	w := NewWorkload(0)
	w.Record(`SELECT ?s WHERE { ?s <http://ex/p> "a" }`, time.Millisecond, 5, 500, OutcomeOK)
	w.Record(`SELECT ?s WHERE { ?s <http://ex/p> "b" }`, 2*time.Millisecond, 3, 300, OutcomeError)
	snap := w.Snapshot()
	if snap.Shapes != 1 {
		t.Fatalf("shapes = %d, want 1", snap.Shapes)
	}
	top := snap.Top[0]
	if top.Count != 2 || top.Errors != 1 || top.Rows != 8 || top.Bytes != 800 {
		t.Fatalf("aggregation wrong: %+v", top)
	}
	if top.AvgRows != 4 {
		t.Fatalf("avgRows = %v, want 4", top.AvgRows)
	}
}

// TestWorkloadHandler exercises the /workload content negotiation: JSON
// by default, the text table for Accept: text/plain or ?text=1.
func TestWorkloadHandler(t *testing.T) {
	w := NewWorkload(0)
	w.Record(`SELECT ?s WHERE { ?s ?p ?o }`, time.Millisecond, 2, 64, OutcomeOK)
	h := WorkloadHandler(w)

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/workload", nil))
	var snap WorkloadSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON view: %v", err)
	}
	if snap.Queries != 1 || snap.Shapes != 1 {
		t.Fatalf("JSON snapshot = %+v", snap)
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/workload", nil)
	req.Header.Set("Accept", "text/plain")
	h(rec, req)
	if !strings.HasPrefix(rec.Body.String(), "workload: 1 shapes, 1 queries") {
		t.Fatalf("text view: %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/workload?text=1", nil))
	if !strings.Contains(rec.Body.String(), "SHAPE") {
		t.Fatalf("?text=1 view missing table header: %q", rec.Body.String())
	}
}

// TestWorkloadFromTraces checks the offline mode folds a trace archive
// by query shape, falling back to root-span cardinality for rows.
func TestWorkloadFromTraces(t *testing.T) {
	mk := func(q string, rows int64, out int) *Trace {
		return &Trace{Query: q, Rows: rows, Root: &Span{Op: "SELECT", Out: out, Wall: time.Millisecond}}
	}
	traces := []*Trace{
		mk(`SELECT ?s WHERE { ?s <http://ex/p> "a" }`, 4, 4),
		mk(`SELECT ?s WHERE { ?s <http://ex/p> "b" }`, 0, 7), // pre-accounting trace: rows from root span
		mk(`SELECT ?s WHERE { ?s <http://ex/q> ?o }`, 1, 1),
		nil,
	}
	snap := WorkloadFromTraces(traces).Snapshot()
	if snap.Shapes != 2 || snap.Queries != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Top[0].Count != 2 || snap.Top[0].Rows != 11 {
		t.Fatalf("top shape = %+v, want count 2 rows 11", snap.Top[0])
	}
}

// TestWorkloadCanonical checks that Canonical zeroes only the
// timing-dependent fields.
func TestWorkloadCanonical(t *testing.T) {
	w := NewWorkload(0)
	w.Record(`SELECT ?s WHERE { ?s ?p ?o }`, 5*time.Millisecond, 2, 64, OutcomeOK)
	c := w.Snapshot().Canonical()
	top := c.Top[0]
	if top.P50Ms != 0 || top.P95Ms != 0 || top.P99Ms != 0 || top.AvgMs != 0 {
		t.Fatalf("quantiles not zeroed: %+v", top)
	}
	if top.Count != 1 || top.Rows != 2 || top.Bytes != 64 {
		t.Fatalf("deterministic fields lost: %+v", top)
	}
}

// TestWorkloadOutcomeCounters checks shed/timeout/canceled outcomes
// count separately from plain errors on the same shape.
func TestWorkloadOutcomeCounters(t *testing.T) {
	w := NewWorkload(0)
	q := `SELECT ?s WHERE { ?s <http://ex/p> ?o }`
	for _, oc := range []QueryOutcome{OutcomeOK, OutcomeError, OutcomeShed, OutcomeShed, OutcomeTimeout, OutcomeCanceled} {
		w.Record(q, time.Millisecond, 0, 0, oc)
	}
	top := w.Snapshot().Top[0]
	if top.Count != 6 || top.Errors != 1 || top.Sheds != 2 || top.Timeouts != 1 || top.Canceled != 1 {
		t.Fatalf("outcome counters wrong: %+v", top)
	}
	text := w.Snapshot().RenderText()
	if !strings.Contains(text, "TMOUT") || !strings.Contains(text, "SHED") {
		t.Fatalf("text view missing outcome columns:\n%s", text)
	}
}
