// Package olap models the result of an OLAP query: a cube with one
// axis per (dimension, level) pair and one or more measure values per
// cell, plus text renderings for CLI display.
package olap

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Axis identifies one result axis: a dimension at a given granularity.
type Axis struct {
	Dimension rdf.Term
	Level     rdf.Term
}

// Cell is one cube cell: a coordinate per axis and a value per measure.
type Cell struct {
	Coords []rdf.Term
	Labels []string // display labels parallel to Coords (may be empty strings)
	Values []rdf.Term
}

// Cube is a materialized result cube.
type Cube struct {
	Axes     []Axis
	Measures []string // display names of the measures
	Cells    []Cell
}

// Sort orders cells lexicographically by coordinates for deterministic
// output.
func (c *Cube) Sort() {
	sort.SliceStable(c.Cells, func(i, j int) bool {
		a, b := c.Cells[i], c.Cells[j]
		for k := range a.Coords {
			if cmp := a.Coords[k].Compare(b.Coords[k]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// Table renders the cube as an aligned text table: one row per cell.
func (c *Cube) Table() string {
	headers := make([]string, 0, len(c.Axes)+len(c.Measures))
	for _, a := range c.Axes {
		headers = append(headers, shorten(a.Level))
	}
	headers = append(headers, c.Measures...)

	rows := make([][]string, 0, len(c.Cells))
	for _, cell := range c.Cells {
		row := make([]string, 0, len(headers))
		for i := range cell.Coords {
			label := ""
			if i < len(cell.Labels) {
				label = cell.Labels[i]
			}
			if label == "" {
				label = shorten(cell.Coords[i])
			}
			row = append(row, label)
		}
		for _, v := range cell.Values {
			row = append(row, v.Value)
		}
		rows = append(rows, row)
	}
	return renderTable(headers, rows)
}

// Pivot renders a two-axis cube as a pivot table with the first axis on
// rows and the second on columns, using the first measure. Cubes with
// any other axis count fall back to Table.
func (c *Cube) Pivot() string {
	if len(c.Axes) != 2 || len(c.Measures) == 0 {
		return c.Table()
	}
	rowKeys, colKeys := []string{}, []string{}
	rowSeen, colSeen := map[string]bool{}, map[string]bool{}
	values := map[[2]string]string{}
	for _, cell := range c.Cells {
		r := cellLabel(cell, 0)
		cl := cellLabel(cell, 1)
		if !rowSeen[r] {
			rowSeen[r] = true
			rowKeys = append(rowKeys, r)
		}
		if !colSeen[cl] {
			colSeen[cl] = true
			colKeys = append(colKeys, cl)
		}
		if len(cell.Values) > 0 {
			values[[2]string{r, cl}] = cell.Values[0].Value
		}
	}
	sort.Strings(rowKeys)
	sort.Strings(colKeys)

	headers := append([]string{shorten(c.Axes[0].Level)}, colKeys...)
	rows := make([][]string, 0, len(rowKeys))
	for _, r := range rowKeys {
		row := []string{r}
		for _, cl := range colKeys {
			row = append(row, values[[2]string{r, cl}])
		}
		rows = append(rows, row)
	}
	return renderTable(headers, rows)
}

func cellLabel(c Cell, i int) string {
	if i < len(c.Labels) && c.Labels[i] != "" {
		return c.Labels[i]
	}
	return shorten(c.Coords[i])
}

func renderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func shorten(t rdf.Term) string {
	v := t.Value
	if i := strings.LastIndexAny(v, "#/"); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

// EncodeCSV renders the cube as CSV: one row per cell, coordinate
// labels first, then measure values.
func (c *Cube) EncodeCSV() string {
	var b strings.Builder
	for i, a := range c.Axes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(shorten(a.Level)))
	}
	for j, m := range c.Measures {
		if len(c.Axes) > 0 || j > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(m))
	}
	b.WriteString("\r\n")
	for _, cell := range c.Cells {
		for i := range cell.Coords {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cellLabel(cell, i)))
		}
		for j, v := range cell.Values {
			if len(cell.Coords) > 0 || j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(v.Value))
		}
		b.WriteString("\r\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
