package olap

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func sampleCube() *Cube {
	return &Cube{
		Axes: []Axis{
			{Dimension: iri("geoDim"), Level: iri("continent")},
			{Dimension: iri("timeDim"), Level: iri("year")},
		},
		Measures: []string{"sum(obsValue)"},
		Cells: []Cell{
			{Coords: []rdf.Term{iri("Europe"), iri("2014")}, Labels: []string{"Europe", "2014"}, Values: []rdf.Term{rdf.NewInteger(20)}},
			{Coords: []rdf.Term{iri("Africa"), iri("2013")}, Labels: []string{"Africa", "2013"}, Values: []rdf.Term{rdf.NewInteger(5)}},
			{Coords: []rdf.Term{iri("Africa"), iri("2014")}, Labels: []string{"Africa", "2014"}, Values: []rdf.Term{rdf.NewInteger(8)}},
		},
	}
}

func TestSortDeterministic(t *testing.T) {
	c := sampleCube()
	c.Sort()
	if c.Cells[0].Labels[0] != "Africa" || c.Cells[0].Labels[1] != "2013" {
		t.Fatalf("first cell after sort: %v", c.Cells[0].Labels)
	}
	if c.Cells[2].Labels[0] != "Europe" {
		t.Fatalf("last cell after sort: %v", c.Cells[2].Labels)
	}
}

func TestTableRendering(t *testing.T) {
	c := sampleCube()
	c.Sort()
	out := c.Table()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + separator + 3 cells
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "continent") || !strings.Contains(lines[0], "sum(obsValue)") {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.Contains(out, "Africa") || !strings.Contains(out, "20") {
		t.Errorf("table content:\n%s", out)
	}
}

func TestPivotRendering(t *testing.T) {
	c := sampleCube()
	out := c.Pivot()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + separator + two row keys
	if len(lines) != 4 {
		t.Fatalf("pivot lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "2013") || !strings.Contains(lines[0], "2014") {
		t.Errorf("pivot header: %s", lines[0])
	}
	// Africa row has both values; Europe row has an empty 2013 cell.
	if !strings.Contains(out, "Africa") || !strings.Contains(out, "Europe") {
		t.Errorf("pivot rows:\n%s", out)
	}
}

func TestPivotFallsBackForNon2D(t *testing.T) {
	c := &Cube{
		Axes:     []Axis{{Dimension: iri("d"), Level: iri("l")}},
		Measures: []string{"n"},
		Cells:    []Cell{{Coords: []rdf.Term{iri("a")}, Values: []rdf.Term{rdf.NewInteger(1)}}},
	}
	if c.Pivot() != c.Table() {
		t.Error("1-axis pivot must fall back to Table")
	}
}

func TestLabelsFallBackToIRILocalName(t *testing.T) {
	c := &Cube{
		Axes:     []Axis{{Dimension: iri("d"), Level: iri("l")}},
		Measures: []string{"n"},
		Cells: []Cell{{
			Coords: []rdf.Term{rdf.NewIRI("http://x/dic#FR")},
			Labels: []string{""},
			Values: []rdf.Term{rdf.NewInteger(1)},
		}},
	}
	if !strings.Contains(c.Table(), "FR") {
		t.Errorf("missing IRI fallback:\n%s", c.Table())
	}
}

func TestEncodeCSV(t *testing.T) {
	c := sampleCube()
	c.Sort()
	out := c.EncodeCSV()
	lines := strings.Split(strings.TrimSpace(out), "\r\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "continent,year,sum(obsValue)" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "Africa,2013,5" {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	c := &Cube{
		Axes:     []Axis{{Dimension: iri("d"), Level: iri("l")}},
		Measures: []string{"n"},
		Cells: []Cell{{
			Coords: []rdf.Term{iri("m")},
			Labels: []string{`has "quotes", and comma`},
			Values: []rdf.Term{rdf.NewInteger(1)},
		}},
	}
	out := c.EncodeCSV()
	if !strings.Contains(out, `"has ""quotes"", and comma"`) {
		t.Errorf("escaping wrong:\n%s", out)
	}
}
