package qb

import (
	"fmt"

	"repro/internal/endpoint"
	"repro/internal/rdf"
)

// Normalize applies the relevant parts of the RDF Data Cube
// normalization algorithm (W3C QB specification §11) to the data behind
// a client, so downstream tooling can rely on the full form:
//
//   - every resource with a qb:dataSet link is typed qb:Observation;
//   - every resource referenced by qb:dataSet is typed qb:DataSet;
//   - dimension/measure/attribute component properties are given their
//     qb:DimensionProperty / qb:MeasureProperty / qb:AttributeProperty
//     types.
//
// Published statistical linked data frequently omits these types (the
// Eurostat dumps do); QB2OLAP's discovery queries then silently miss
// data. Normalize repairs the graph in place via SPARQL updates and
// returns the number of update operations issued.
func Normalize(c endpoint.SPARQLClient) (int, error) {
	updates := []string{
		// Type observations.
		`PREFIX qb: <http://purl.org/linked-data/cube#>
INSERT { ?o a qb:Observation } WHERE { ?o qb:dataSet ?ds FILTER NOT EXISTS { ?o a qb:Observation } }`,
		// Type datasets.
		`PREFIX qb: <http://purl.org/linked-data/cube#>
INSERT { ?ds a qb:DataSet } WHERE { ?o qb:dataSet ?ds FILTER NOT EXISTS { ?ds a qb:DataSet } }`,
		// Type component properties by role.
		`PREFIX qb: <http://purl.org/linked-data/cube#>
INSERT { ?p a qb:DimensionProperty } WHERE { ?c qb:dimension ?p FILTER NOT EXISTS { ?p a qb:DimensionProperty } }`,
		`PREFIX qb: <http://purl.org/linked-data/cube#>
INSERT { ?p a qb:MeasureProperty } WHERE { ?c qb:measure ?p FILTER NOT EXISTS { ?p a qb:MeasureProperty } }`,
		`PREFIX qb: <http://purl.org/linked-data/cube#>
INSERT { ?p a qb:AttributeProperty } WHERE { ?c qb:attribute ?p FILTER NOT EXISTS { ?p a qb:AttributeProperty } }`,
	}
	for i, u := range updates {
		if err := c.Update(u); err != nil {
			return i, fmt.Errorf("qb: normalization step %d: %w", i+1, err)
		}
	}
	return len(updates), nil
}

// InferStructure guesses a DSD for a dataset that has none, by scanning
// the properties used on its observations: numeric-object properties
// become measures, everything else dimensions (qb:dataSet and rdf:type
// excluded). It returns the components without writing anything; the
// caller may build and insert a DSD from them. This supports the "no
// schema information at all" corner of Linked Open Data.
func InferStructure(c endpoint.SPARQLClient, dataset rdf.Term) ([]Component, error) {
	res, err := c.Select(fmt.Sprintf(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT ?p (SAMPLE(?v) AS ?sample) WHERE {
  ?o qb:dataSet <%s> ; ?p ?v .
} GROUP BY ?p ORDER BY ?p`, dataset.Value))
	if err != nil {
		return nil, fmt.Errorf("qb: inferring structure: %w", err)
	}
	var out []Component
	for i := range res.Rows {
		p := res.Binding(i, "p")
		switch p.Value {
		case "http://purl.org/linked-data/cube#dataSet",
			"http://www.w3.org/1999/02/22-rdf-syntax-ns#type":
			continue
		}
		sample := res.Binding(i, "sample")
		kind := KindDimension
		if sample.IsLiteral() && isNumericDatatype(sample.Datatype) {
			kind = KindMeasure
		}
		out = append(out, Component{Kind: kind, Property: p})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("qb: dataset %s has no observations to infer from", dataset.Value)
	}
	return out, nil
}

func isNumericDatatype(dt string) bool {
	switch dt {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble, rdf.XSDFloat,
		"http://www.w3.org/2001/XMLSchema#int",
		"http://www.w3.org/2001/XMLSchema#long":
		return true
	}
	return false
}
