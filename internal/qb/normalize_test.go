package qb

import (
	"testing"

	"repro/internal/rdf"
)

// abbreviatedTTL mimics real-world dumps: no rdf:type on observations,
// datasets, or component properties.
const abbreviatedTTL = `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix ex: <http://example.org/> .
ex:dsd qb:component [ qb:dimension ex:region ] ;
       qb:component [ qb:measure ex:amount ] ;
       qb:component [ qb:attribute ex:unit ] .
ex:ds qb:structure ex:dsd .
ex:o1 qb:dataSet ex:ds ; ex:region ex:north ; ex:amount 10 .
ex:o2 qb:dataSet ex:ds ; ex:region ex:south ; ex:amount 20 .
`

func TestNormalizeAddsTypes(t *testing.T) {
	c := clientFor(t, abbreviatedTTL)

	// Before: the typed queries see nothing.
	dss, err := ListDataSets(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 0 {
		t.Fatalf("abbreviated data should list no typed datasets, got %v", dss)
	}

	steps, err := Normalize(c)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 5 {
		t.Fatalf("steps = %d", steps)
	}

	dss, err = ListDataSets(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 1 || dss[0].IRI.Value != "http://example.org/ds" {
		t.Fatalf("after normalization: %v", dss)
	}
	n, err := ObservationCount(c, rdf.NewIRI("http://example.org/ds"))
	if err != nil || n != 2 {
		t.Fatalf("count = %d, %v", n, err)
	}

	res, err := c.Select(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT ?p WHERE { ?p a qb:DimensionProperty }`)
	if err != nil || res.Len() != 1 {
		t.Fatalf("dimension property typing: %v %v", res, err)
	}
	res, err = c.Select(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT ?p WHERE { ?p a qb:MeasureProperty }`)
	if err != nil || res.Len() != 1 {
		t.Fatalf("measure property typing: %v %v", res, err)
	}

	// Idempotent: a second run adds nothing.
	before, err := c.Select(`SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(c); err != nil {
		t.Fatal(err)
	}
	after, err := c.Select(`SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if before.Binding(0, "n") != after.Binding(0, "n") {
		t.Fatal("Normalize is not idempotent")
	}
}

func TestInferStructure(t *testing.T) {
	c := clientFor(t, `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix ex: <http://example.org/> .
ex:o1 qb:dataSet ex:ds ; ex:region ex:north ; ex:year "2013" ; ex:amount 10 ; ex:rate 2.5 .
ex:o2 qb:dataSet ex:ds ; ex:region ex:south ; ex:year "2014" ; ex:amount 20 ; ex:rate 1.5 .
`)
	comps, err := InferStructure(c, rdf.NewIRI("http://example.org/ds"))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]ComponentKind{}
	for _, comp := range comps {
		kinds[comp.Property.Value] = comp.Kind
	}
	if len(comps) != 4 {
		t.Fatalf("components = %d: %v", len(comps), kinds)
	}
	if kinds["http://example.org/region"] != KindDimension {
		t.Error("region should be a dimension")
	}
	if kinds["http://example.org/year"] != KindDimension {
		t.Error("year (string) should be a dimension")
	}
	if kinds["http://example.org/amount"] != KindMeasure {
		t.Error("amount should be a measure")
	}
	if kinds["http://example.org/rate"] != KindMeasure {
		t.Error("rate (decimal) should be a measure")
	}

	if _, err := InferStructure(c, rdf.NewIRI("http://example.org/empty")); err == nil {
		t.Error("empty dataset must error")
	}
}
