// Package qb models the W3C RDF Data Cube vocabulary as needed by
// QB2OLAP: data structure definitions (DSDs), their dimension, measure
// and attribute components, datasets, and observations. It reads the
// model from a SPARQL endpoint, mirroring how the paper's tool
// retrieves the cube structure from Virtuoso.
package qb

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/endpoint"
	"repro/internal/rdf"
)

// ComponentKind discriminates the role of a component property.
type ComponentKind int

// Component kinds.
const (
	KindDimension ComponentKind = iota
	KindMeasure
	KindAttribute
)

func (k ComponentKind) String() string {
	switch k {
	case KindDimension:
		return "dimension"
	case KindMeasure:
		return "measure"
	default:
		return "attribute"
	}
}

// Component is one component property of a DSD.
type Component struct {
	Kind     ComponentKind
	Property rdf.Term
	Order    int // qb:order when present, else 0
}

// DSD is a data structure definition.
type DSD struct {
	IRI        rdf.Term
	Components []Component
}

// Dimensions returns the dimension component properties in order.
func (d *DSD) Dimensions() []rdf.Term {
	var out []rdf.Term
	for _, c := range d.Components {
		if c.Kind == KindDimension {
			out = append(out, c.Property)
		}
	}
	return out
}

// Measures returns the measure component properties in order.
func (d *DSD) Measures() []rdf.Term {
	var out []rdf.Term
	for _, c := range d.Components {
		if c.Kind == KindMeasure {
			out = append(out, c.Property)
		}
	}
	return out
}

// Attributes returns the attribute component properties in order.
func (d *DSD) Attributes() []rdf.Term {
	var out []rdf.Term
	for _, c := range d.Components {
		if c.Kind == KindAttribute {
			out = append(out, c.Property)
		}
	}
	return out
}

// DataSet pairs a qb:DataSet with its structure.
type DataSet struct {
	IRI       rdf.Term
	Structure rdf.Term // DSD IRI
}

// ListDataSets enumerates the qb:DataSet instances on the endpoint with
// their qb:structure links.
func ListDataSets(c endpoint.SPARQLClient) ([]DataSet, error) {
	res, err := c.Select(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT ?ds ?dsd WHERE {
  ?ds a qb:DataSet .
  OPTIONAL { ?ds qb:structure ?dsd }
} ORDER BY ?ds`)
	if err != nil {
		return nil, fmt.Errorf("qb: listing datasets: %w", err)
	}
	out := make([]DataSet, 0, res.Len())
	for i := range res.Rows {
		out = append(out, DataSet{
			IRI:       res.Binding(i, "ds"),
			Structure: res.Binding(i, "dsd"),
		})
	}
	return out, nil
}

// LoadDSD reads a DSD and its components from the endpoint.
func LoadDSD(c endpoint.SPARQLClient, dsd rdf.Term) (*DSD, error) {
	if !dsd.IsIRI() {
		return nil, fmt.Errorf("qb: DSD must be an IRI, got %v", dsd)
	}
	res, err := c.Select(fmt.Sprintf(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT ?dim ?measure ?attr ?order WHERE {
  <%s> qb:component ?c .
  OPTIONAL { ?c qb:dimension ?dim }
  OPTIONAL { ?c qb:measure ?measure }
  OPTIONAL { ?c qb:attribute ?attr }
  OPTIONAL { ?c qb:order ?order }
}`, dsd.Value))
	if err != nil {
		return nil, fmt.Errorf("qb: loading DSD %s: %w", dsd.Value, err)
	}
	out := &DSD{IRI: dsd}
	for i := range res.Rows {
		order := 0
		if o := res.Binding(i, "order"); !o.IsZero() {
			if n, err := strconv.Atoi(o.Value); err == nil {
				order = n
			}
		}
		switch {
		case !res.Binding(i, "dim").IsZero():
			out.Components = append(out.Components, Component{Kind: KindDimension, Property: res.Binding(i, "dim"), Order: order})
		case !res.Binding(i, "measure").IsZero():
			out.Components = append(out.Components, Component{Kind: KindMeasure, Property: res.Binding(i, "measure"), Order: order})
		case !res.Binding(i, "attr").IsZero():
			out.Components = append(out.Components, Component{Kind: KindAttribute, Property: res.Binding(i, "attr"), Order: order})
		}
	}
	if len(out.Components) == 0 {
		return nil, fmt.Errorf("qb: DSD %s has no components", dsd.Value)
	}
	sort.SliceStable(out.Components, func(i, j int) bool {
		a, b := out.Components[i], out.Components[j]
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Property.Compare(b.Property) < 0
	})
	return out, nil
}

// ObservationCount counts the observations of a dataset.
func ObservationCount(c endpoint.SPARQLClient, dataset rdf.Term) (int, error) {
	res, err := c.Select(fmt.Sprintf(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT (COUNT(?o) AS ?n) WHERE { ?o qb:dataSet <%s> }`, dataset.Value))
	if err != nil {
		return 0, fmt.Errorf("qb: counting observations: %w", err)
	}
	if res.Len() == 0 {
		return 0, nil
	}
	n, err := strconv.Atoi(res.Binding(0, "n").Value)
	if err != nil {
		return 0, fmt.Errorf("qb: bad count %q", res.Binding(0, "n").Value)
	}
	return n, nil
}

// Problem is a well-formedness violation found by Validate.
type Problem struct {
	Code    string
	Message string
}

func (p Problem) String() string { return p.Code + ": " + p.Message }

// Validate applies the QB integrity checks that matter for enrichment:
// the DSD must declare at least one dimension and one measure, and no
// property may play two roles.
func Validate(d *DSD) []Problem {
	var out []Problem
	if len(d.Dimensions()) == 0 {
		out = append(out, Problem{Code: "qb-no-dimension", Message: fmt.Sprintf("DSD %s declares no dimension component", d.IRI.Value)})
	}
	if len(d.Measures()) == 0 {
		out = append(out, Problem{Code: "qb-no-measure", Message: fmt.Sprintf("DSD %s declares no measure component", d.IRI.Value)})
	}
	seen := make(map[rdf.Term]ComponentKind)
	for _, c := range d.Components {
		if prev, ok := seen[c.Property]; ok && prev != c.Kind {
			out = append(out, Problem{
				Code:    "qb-role-conflict",
				Message: fmt.Sprintf("property %s declared as both %s and %s", c.Property.Value, prev, c.Kind),
			})
		}
		seen[c.Property] = c.Kind
	}
	return out
}
