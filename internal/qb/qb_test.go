package qb

import (
	"testing"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

func clientFor(t *testing.T, ttl string) endpoint.SPARQLClient {
	t.Helper()
	g, err := turtle.ParseGraph(ttl)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.InsertTriples(rdf.Term{}, g.Triples())
	return endpoint.NewLocal(st)
}

const cubeTTL = `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix ex: <http://example.org/> .
ex:dsd a qb:DataStructureDefinition ;
  qb:component [ qb:dimension ex:time ; qb:order 1 ] ;
  qb:component [ qb:dimension ex:place ; qb:order 2 ] ;
  qb:component [ qb:measure ex:value ; qb:order 3 ] ;
  qb:component [ qb:attribute ex:unit ; qb:order 4 ] .
ex:ds a qb:DataSet ; qb:structure ex:dsd .
ex:o1 a qb:Observation ; qb:dataSet ex:ds ; ex:time ex:t1 ; ex:place ex:p1 ; ex:value 5 .
ex:o2 a qb:Observation ; qb:dataSet ex:ds ; ex:time ex:t1 ; ex:place ex:p2 ; ex:value 7 .
`

func TestListDataSets(t *testing.T) {
	c := clientFor(t, cubeTTL)
	dss, err := ListDataSets(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 1 {
		t.Fatalf("datasets = %d", len(dss))
	}
	if dss[0].IRI.Value != "http://example.org/ds" || dss[0].Structure.Value != "http://example.org/dsd" {
		t.Fatalf("dataset = %+v", dss[0])
	}
}

func TestLoadDSDOrderingAndRoles(t *testing.T) {
	c := clientFor(t, cubeTTL)
	dsd, err := LoadDSD(c, rdf.NewIRI("http://example.org/dsd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dsd.Components) != 4 {
		t.Fatalf("components = %d", len(dsd.Components))
	}
	// qb:order must drive the ordering.
	if dsd.Components[0].Property.Value != "http://example.org/time" {
		t.Fatalf("first component = %v", dsd.Components[0])
	}
	dims := dsd.Dimensions()
	if len(dims) != 2 || dims[0].Value != "http://example.org/time" {
		t.Fatalf("dimensions = %v", dims)
	}
	if len(dsd.Measures()) != 1 || len(dsd.Attributes()) != 1 {
		t.Fatalf("measures/attributes = %v/%v", dsd.Measures(), dsd.Attributes())
	}
}

func TestLoadDSDErrors(t *testing.T) {
	c := clientFor(t, cubeTTL)
	if _, err := LoadDSD(c, rdf.NewLiteral("not-an-iri")); err == nil {
		t.Error("literal DSD must fail")
	}
	if _, err := LoadDSD(c, rdf.NewIRI("http://example.org/missing")); err == nil {
		t.Error("empty DSD must fail")
	}
}

func TestObservationCount(t *testing.T) {
	c := clientFor(t, cubeTTL)
	n, err := ObservationCount(c, rdf.NewIRI("http://example.org/ds"))
	if err != nil || n != 2 {
		t.Fatalf("count = %d, %v", n, err)
	}
	n, err = ObservationCount(c, rdf.NewIRI("http://example.org/empty"))
	if err != nil || n != 0 {
		t.Fatalf("empty count = %d, %v", n, err)
	}
}

func TestValidate(t *testing.T) {
	c := clientFor(t, cubeTTL)
	dsd, _ := LoadDSD(c, rdf.NewIRI("http://example.org/dsd"))
	if probs := Validate(dsd); len(probs) != 0 {
		t.Fatalf("problems: %v", probs)
	}

	noMeasure := &DSD{IRI: rdf.NewIRI("http://x/d"), Components: []Component{
		{Kind: KindDimension, Property: rdf.NewIRI("http://x/p")},
	}}
	found := false
	for _, p := range Validate(noMeasure) {
		if p.Code == "qb-no-measure" {
			found = true
		}
	}
	if !found {
		t.Error("missing measure not reported")
	}

	conflict := &DSD{IRI: rdf.NewIRI("http://x/d"), Components: []Component{
		{Kind: KindDimension, Property: rdf.NewIRI("http://x/p")},
		{Kind: KindMeasure, Property: rdf.NewIRI("http://x/p")},
	}}
	found = false
	for _, p := range Validate(conflict) {
		if p.Code == "qb-role-conflict" {
			found = true
		}
	}
	if !found {
		t.Error("role conflict not reported")
	}
	if (Problem{Code: "x", Message: "y"}).String() != "x: y" {
		t.Error("Problem.String format")
	}
	if KindDimension.String() != "dimension" || KindMeasure.String() != "measure" || KindAttribute.String() != "attribute" {
		t.Error("ComponentKind names")
	}
}
