package qb4olap

import (
	"fmt"
	"strconv"

	"repro/internal/endpoint"
)

// InstanceProblem is a data-level integrity violation found by
// ValidateInstances.
type InstanceProblem struct {
	Code    string
	Message string
	// Count is the number of offending resources.
	Count int
}

func (p InstanceProblem) String() string {
	return fmt.Sprintf("%s: %s (%d)", p.Code, p.Message, p.Count)
}

// ValidateInstances checks the observation and member data behind a
// schema against the integrity conditions OLAP aggregation relies on:
//
//   - obs-missing-level: observations lacking a value for a base level
//     declared in the structure (their measures would silently drop out
//     of every cube that groups by that dimension);
//   - obs-missing-measure: observations lacking a declared measure;
//   - rollup-incomplete: child-level members with no roll-up target in
//     a hierarchy step (they vanish when rolling up);
//   - rollup-ambiguous: child-level members with more than one parent
//     in a ManyToOne step (they would be double-counted).
//
// These are exactly the Linked Data quality issues the paper's
// fine-tuning parameters exist for; running the checks after enrichment
// quantifies the residual risk.
func ValidateInstances(c endpoint.SPARQLClient, s *CubeSchema) ([]InstanceProblem, error) {
	var out []InstanceProblem
	count := func(query string) (int, error) {
		res, err := c.Select(query)
		if err != nil {
			return 0, err
		}
		if res.Len() == 0 {
			return 0, nil
		}
		n, _ := strconv.Atoi(res.Binding(0, "n").Value)
		return n, nil
	}

	if !s.DataSet.IsZero() {
		for _, d := range s.Dimensions {
			n, err := count(fmt.Sprintf(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT (COUNT(?o) AS ?n) WHERE {
  ?o qb:dataSet <%s>
  FILTER NOT EXISTS { ?o <%s> ?v }
}`, s.DataSet.Value, d.BaseLevel.Value))
			if err != nil {
				return nil, fmt.Errorf("qb4olap: checking level completeness: %w", err)
			}
			if n > 0 {
				out = append(out, InstanceProblem{
					Code:    "obs-missing-level",
					Message: fmt.Sprintf("observations without a %s value", d.BaseLevel.Value),
					Count:   n,
				})
			}
		}
		for _, m := range s.Measures {
			n, err := count(fmt.Sprintf(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT (COUNT(?o) AS ?n) WHERE {
  ?o qb:dataSet <%s>
  FILTER NOT EXISTS { ?o <%s> ?v }
}`, s.DataSet.Value, m.Property.Value))
			if err != nil {
				return nil, fmt.Errorf("qb4olap: checking measure completeness: %w", err)
			}
			if n > 0 {
				out = append(out, InstanceProblem{
					Code:    "obs-missing-measure",
					Message: fmt.Sprintf("observations without a %s value", m.Property.Value),
					Count:   n,
				})
			}
		}
	}

	for _, d := range s.Dimensions {
		for _, h := range d.Hierarchies {
			for _, st := range h.Steps {
				n, err := count(fmt.Sprintf(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT (COUNT(?m) AS ?n) WHERE {
  ?m qb4o:memberOf <%s>
  FILTER NOT EXISTS { ?m <%s> ?p }
}`, st.Child.Value, st.Rollup.Value))
				if err != nil {
					return nil, fmt.Errorf("qb4olap: checking rollup completeness: %w", err)
				}
				if n > 0 {
					out = append(out, InstanceProblem{
						Code:    "rollup-incomplete",
						Message: fmt.Sprintf("members of %s without a %s roll-up", st.Child.Value, st.Rollup.Value),
						Count:   n,
					})
				}
				if st.Cardinality == ManyToOne || st.Cardinality == OneToOne {
					n, err := count(fmt.Sprintf(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT (COUNT(?m) AS ?n) WHERE {
  {
    SELECT ?m (COUNT(?p) AS ?parents) WHERE {
      ?m qb4o:memberOf <%s> ; <%s> ?p .
    } GROUP BY ?m
  }
  FILTER(?parents > 1)
}`, st.Child.Value, st.Rollup.Value))
					if err != nil {
						return nil, fmt.Errorf("qb4olap: checking rollup functionality: %w", err)
					}
					if n > 0 {
						out = append(out, InstanceProblem{
							Code:    "rollup-ambiguous",
							Message: fmt.Sprintf("members of %s with multiple %s parents (double counting)", st.Child.Value, st.Rollup.Value),
							Count:   n,
						})
					}
				}
			}
		}
	}
	return out, nil
}
