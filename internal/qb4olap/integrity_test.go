package qb4olap

import (
	"testing"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

// integrityFixture builds a tiny committed QB4OLAP cube with injectable
// defects.
func integrityFixture(t *testing.T, extra string) (endpoint.SPARQLClient, *CubeSchema) {
	t.Helper()
	base := `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix qb4o: <http://purl.org/qb4olap/cubes#> .
@prefix x: <http://x/> .

x:ds qb:structure x:dsd .
x:m1 qb4o:memberOf x:store ; x:inCity x:lyon .
x:m2 qb4o:memberOf x:store ; x:inCity x:paris .
x:lyon qb4o:memberOf x:city . x:paris qb4o:memberOf x:city .

x:o1 qb:dataSet x:ds ; x:store x:m1 ; x:v 1 .
x:o2 qb:dataSet x:ds ; x:store x:m2 ; x:v 2 .
`
	g, err := turtle.ParseGraph(base + extra)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.InsertTriples(rdf.Term{}, g.Triples())
	c := endpoint.NewLocal(st)

	s := NewCubeSchema(rdf.NewIRI("http://x/dsd"), rdf.NewIRI("http://x/ds"), "http://x/")
	dim := &Dimension{
		IRI:       rdf.NewIRI("http://x/storeDim"),
		BaseLevel: rdf.NewIRI("http://x/store"),
		Hierarchies: []*Hierarchy{{
			IRI:    rdf.NewIRI("http://x/hier"),
			Levels: []rdf.Term{rdf.NewIRI("http://x/store"), rdf.NewIRI("http://x/city")},
			Steps: []HierarchyStep{{
				IRI: rdf.NewIRI("http://x/step"), Child: rdf.NewIRI("http://x/store"),
				Parent: rdf.NewIRI("http://x/city"), Cardinality: ManyToOne,
				Rollup: rdf.NewIRI("http://x/inCity"),
			}},
		}},
	}
	s.Dimensions = []*Dimension{dim}
	s.Measures = []MeasureSpec{{Property: rdf.NewIRI("http://x/v"), Agg: Sum}}
	return c, s
}

func TestValidateInstancesClean(t *testing.T) {
	c, s := integrityFixture(t, "")
	probs, err := ValidateInstances(c, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("clean fixture reported: %v", probs)
	}
}

func TestValidateInstancesDetectsDefects(t *testing.T) {
	cases := []struct {
		name, extra, code string
	}{
		{"missing-level", `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix x: <http://x/> .
x:o3 qb:dataSet x:ds ; x:v 3 .`, "obs-missing-level"},
		{"missing-measure", `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix x: <http://x/> .
x:o3 qb:dataSet x:ds ; x:store x:m1 .`, "obs-missing-measure"},
		{"rollup-incomplete", `
@prefix qb4o: <http://purl.org/qb4olap/cubes#> .
@prefix x: <http://x/> .
x:m3 qb4o:memberOf x:store .`, "rollup-incomplete"},
		{"rollup-ambiguous", `
@prefix x: <http://x/> .
x:m1 x:inCity x:paris .`, "rollup-ambiguous"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, s := integrityFixture(t, tc.extra)
			probs, err := ValidateInstances(c, s)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range probs {
				if p.Code == tc.code {
					if p.Count < 1 {
						t.Fatalf("count = %d", p.Count)
					}
					if p.String() == "" {
						t.Fatal("empty rendering")
					}
					return
				}
			}
			t.Fatalf("defect %s not reported: %v", tc.code, probs)
		})
	}
}
