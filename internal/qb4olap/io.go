package qb4olap

import (
	"fmt"
	"sort"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/vocab"
)

// ListCubes enumerates the QB4OLAP cubes on an endpoint: DSDs that have
// at least one qb4o:level component, together with the datasets bound
// to them.
func ListCubes(c endpoint.SPARQLClient) ([]rdf.Term, error) {
	res, err := c.Select(`
PREFIX qb: <http://purl.org/linked-data/cube#>
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT DISTINCT ?dsd WHERE {
  ?dsd a qb:DataStructureDefinition ;
       qb:component ?c .
  ?c qb4o:level ?l .
} ORDER BY ?dsd`)
	if err != nil {
		return nil, fmt.Errorf("qb4olap: listing cubes: %w", err)
	}
	out := make([]rdf.Term, 0, res.Len())
	for i := range res.Rows {
		out = append(out, res.Binding(i, "dsd"))
	}
	return out, nil
}

// LoadCubeSchema reads a complete QB4OLAP schema from an endpoint.
func LoadCubeSchema(c endpoint.SPARQLClient, dsd rdf.Term) (*CubeSchema, error) {
	s := NewCubeSchema(dsd, rdf.Term{}, "")

	// Dataset bound to this structure.
	res, err := c.Select(fmt.Sprintf(`
PREFIX qb: <http://purl.org/linked-data/cube#>
SELECT ?ds WHERE { ?ds qb:structure <%s> } LIMIT 1`, dsd.Value))
	if err != nil {
		return nil, fmt.Errorf("qb4olap: finding dataset: %w", err)
	}
	if res.Len() > 0 {
		s.DataSet = res.Binding(0, "ds")
	}

	// Level components with cardinalities, and measures.
	res, err = c.Select(fmt.Sprintf(`
PREFIX qb: <http://purl.org/linked-data/cube#>
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT ?level ?card ?measure ?agg WHERE {
  <%s> qb:component ?c .
  OPTIONAL { ?c qb4o:level ?level . OPTIONAL { ?c qb4o:cardinality ?card } }
  OPTIONAL { ?c qb:measure ?measure . OPTIONAL { ?c qb4o:aggregateFunction ?agg } }
}`, dsd.Value))
	if err != nil {
		return nil, fmt.Errorf("qb4olap: loading components: %w", err)
	}
	var baseLevels []rdf.Term
	for i := range res.Rows {
		if lvl := res.Binding(i, "level"); !lvl.IsZero() {
			baseLevels = append(baseLevels, lvl)
			s.Cardinalities[lvl] = CardinalityFromTerm(res.Binding(i, "card"))
			s.Level(lvl)
		}
		if m := res.Binding(i, "measure"); !m.IsZero() {
			s.Measures = append(s.Measures, MeasureSpec{Property: m, Agg: AggFuncFromTerm(res.Binding(i, "agg"))})
		}
	}
	sort.Slice(s.Measures, func(i, j int) bool { return s.Measures[i].Property.Compare(s.Measures[j].Property) < 0 })
	sort.Slice(baseLevels, func(i, j int) bool { return baseLevels[i].Compare(baseLevels[j]) < 0 })

	// Dimensions: hierarchies that contain a base level identify the
	// dimension it belongs to.
	res, err = c.Select(`
PREFIX qb: <http://purl.org/linked-data/cube#>
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT ?dim ?h ?level WHERE {
  ?dim a qb:DimensionProperty ; qb4o:hasHierarchy ?h .
  ?h qb4o:hasLevel ?level .
} ORDER BY ?dim ?h ?level`)
	if err != nil {
		return nil, fmt.Errorf("qb4olap: loading hierarchies: %w", err)
	}
	type hkey struct{ dim, h rdf.Term }
	hierLevels := make(map[hkey][]rdf.Term)
	var hkeys []hkey
	for i := range res.Rows {
		k := hkey{res.Binding(i, "dim"), res.Binding(i, "h")}
		if _, ok := hierLevels[k]; !ok {
			hkeys = append(hkeys, k)
		}
		hierLevels[k] = append(hierLevels[k], res.Binding(i, "level"))
	}

	// Steps.
	res, err = c.Select(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT ?step ?h ?child ?parent ?card ?rollup WHERE {
  ?step a qb4o:HierarchyStep ;
        qb4o:inHierarchy ?h ;
        qb4o:childLevel ?child ;
        qb4o:parentLevel ?parent .
  OPTIONAL { ?step qb4o:pcCardinality ?card }
  OPTIONAL { ?step qb4o:rollup ?rollup }
} ORDER BY ?step`)
	if err != nil {
		return nil, fmt.Errorf("qb4olap: loading steps: %w", err)
	}
	stepsByHier := make(map[rdf.Term][]HierarchyStep)
	for i := range res.Rows {
		h := res.Binding(i, "h")
		stepsByHier[h] = append(stepsByHier[h], HierarchyStep{
			IRI:         res.Binding(i, "step"),
			Child:       res.Binding(i, "child"),
			Parent:      res.Binding(i, "parent"),
			Cardinality: CardinalityFromTerm(res.Binding(i, "card")),
			Rollup:      res.Binding(i, "rollup"),
		})
	}

	// Level attributes.
	res, err = c.Select(`
PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
SELECT ?level ?attr WHERE { ?level qb4o:hasAttribute ?attr } ORDER BY ?level ?attr`)
	if err != nil {
		return nil, fmt.Errorf("qb4olap: loading attributes: %w", err)
	}
	for i := range res.Rows {
		lvl := s.Level(res.Binding(i, "level"))
		attr := res.Binding(i, "attr")
		lvl.Attributes = append(lvl.Attributes, LevelAttribute{IRI: attr, Property: attr})
	}

	// Assemble dimensions: group hierarchies by dimension IRI and pick
	// the base level as the hierarchy level that is a DSD component.
	isBase := make(map[rdf.Term]bool, len(baseLevels))
	for _, l := range baseLevels {
		isBase[l] = true
	}
	dims := make(map[rdf.Term]*Dimension)
	var dimOrder []rdf.Term
	for _, k := range hkeys {
		d, ok := dims[k.dim]
		if !ok {
			d = &Dimension{IRI: k.dim}
			dims[k.dim] = d
			dimOrder = append(dimOrder, k.dim)
		}
		h := &Hierarchy{IRI: k.h, Levels: hierLevels[k], Steps: stepsByHier[k.h]}
		d.Hierarchies = append(d.Hierarchies, h)
		for _, l := range h.Levels {
			s.Level(l)
			if isBase[l] && d.BaseLevel.IsZero() {
				d.BaseLevel = l
			}
		}
	}
	sort.Slice(dimOrder, func(i, j int) bool { return dimOrder[i].Compare(dimOrder[j]) < 0 })
	for _, iri := range dimOrder {
		s.Dimensions = append(s.Dimensions, dims[iri])
	}
	if len(s.Dimensions) == 0 {
		return nil, fmt.Errorf("qb4olap: no dimensions found for cube %s", dsd.Value)
	}
	return s, nil
}

// SchemaTriples serializes the schema to RDF triples following the
// structure shown in the paper's Section II examples.
func (s *CubeSchema) SchemaTriples() []rdf.Triple {
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(s.DSD, vocab.RDFType, vocab.QBDataStructureDefinition))
	if !s.DataSet.IsZero() {
		g.Add(rdf.NewTriple(s.DataSet, vocab.RDFType, vocab.QBDataSet))
		g.Add(rdf.NewTriple(s.DataSet, vocab.QBStructure, s.DSD))
	}

	compSeq := 0
	component := func() rdf.Term {
		compSeq++
		return rdf.NewBlank(fmt.Sprintf("comp%d", compSeq))
	}

	// Level components with fact cardinalities.
	for _, d := range s.Dimensions {
		c := component()
		g.Add(rdf.NewTriple(s.DSD, vocab.QBComponent, c))
		g.Add(rdf.NewTriple(c, vocab.QB4OLevel, d.BaseLevel))
		card, ok := s.Cardinalities[d.BaseLevel]
		if !ok {
			card = ManyToOne
		}
		g.Add(rdf.NewTriple(c, vocab.QB4OCardinality, card.Term()))
	}
	// Measure components with aggregate functions.
	for _, m := range s.Measures {
		c := component()
		g.Add(rdf.NewTriple(s.DSD, vocab.QBComponent, c))
		g.Add(rdf.NewTriple(c, vocab.QBMeasure, m.Property))
		g.Add(rdf.NewTriple(c, vocab.QB4OAggregateFunctionP, m.Agg.Term()))
	}

	// Dimensions, hierarchies, levels, steps.
	for _, d := range s.Dimensions {
		g.Add(rdf.NewTriple(d.IRI, vocab.RDFType, vocab.QBDimensionProperty))
		for _, h := range d.Hierarchies {
			g.Add(rdf.NewTriple(d.IRI, vocab.QB4OHasHierarchy, h.IRI))
			g.Add(rdf.NewTriple(h.IRI, vocab.RDFType, vocab.QB4OHierarchyClass))
			g.Add(rdf.NewTriple(h.IRI, vocab.QB4OInDimension, d.IRI))
			for _, l := range h.Levels {
				g.Add(rdf.NewTriple(h.IRI, vocab.QB4OHasLevel, l))
			}
			for _, st := range h.Steps {
				g.Add(rdf.NewTriple(st.IRI, vocab.RDFType, vocab.QB4OHierarchyStep))
				g.Add(rdf.NewTriple(st.IRI, vocab.QB4OInHierarchy, h.IRI))
				g.Add(rdf.NewTriple(st.IRI, vocab.QB4OChildLevel, st.Child))
				g.Add(rdf.NewTriple(st.IRI, vocab.QB4OParentLevel, st.Parent))
				g.Add(rdf.NewTriple(st.IRI, vocab.QB4OPCCardinality, st.Cardinality.Term()))
				if !st.Rollup.IsZero() {
					g.Add(rdf.NewTriple(st.IRI, vocab.QB4ORollup, st.Rollup))
				}
			}
		}
	}
	// Levels and attributes.
	levelIRIs := make([]rdf.Term, 0, len(s.Levels))
	for iri := range s.Levels {
		levelIRIs = append(levelIRIs, iri)
	}
	sort.Slice(levelIRIs, func(i, j int) bool { return levelIRIs[i].Compare(levelIRIs[j]) < 0 })
	for _, iri := range levelIRIs {
		l := s.Levels[iri]
		g.Add(rdf.NewTriple(l.IRI, vocab.RDFType, vocab.QB4OLevelProperty))
		for _, a := range l.Attributes {
			g.Add(rdf.NewTriple(l.IRI, vocab.QB4OHasAttribute, a.IRI))
			g.Add(rdf.NewTriple(a.IRI, vocab.RDFType, vocab.QB4OLevelAttribute))
		}
	}
	return g.Triples()
}
