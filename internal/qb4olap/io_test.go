package qb4olap

import (
	"testing"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/store"
)

// TestSchemaTriplesLoadRoundTrip serializes the hand-built schema,
// loads the triples into a store, and reads the schema back through
// LoadCubeSchema.
func TestSchemaTriplesLoadRoundTrip(t *testing.T) {
	s := buildSchema()
	st := store.New()
	st.InsertTriples(rdf.Term{}, s.SchemaTriples())
	c := endpoint.NewLocal(st)

	cubes, err := ListCubes(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(cubes) != 1 || cubes[0] != s.DSD {
		t.Fatalf("cubes = %v", cubes)
	}

	loaded, err := LoadCubeSchema(c, s.DSD)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DataSet != s.DataSet {
		t.Errorf("dataset = %v", loaded.DataSet)
	}
	if len(loaded.Dimensions) != len(s.Dimensions) {
		t.Fatalf("dimensions = %d, want %d", len(loaded.Dimensions), len(s.Dimensions))
	}
	geo, ok := loaded.Dimension(iri("geoDim"))
	if !ok {
		t.Fatal("geoDim lost")
	}
	if geo.BaseLevel != iri("city") {
		t.Errorf("base level = %v", geo.BaseLevel)
	}
	path, ok := geo.PathToLevel(iri("continent"))
	if !ok || len(path) != 2 {
		t.Fatalf("path = %v %v", path, ok)
	}
	if path[0].Cardinality != ManyToOne {
		t.Errorf("cardinality lost: %v", path[0].Cardinality)
	}
	if path[0].Rollup != iri("inCountry") {
		t.Errorf("rollup lost: %v", path[0].Rollup)
	}
	// Attributes round-trip.
	country := loaded.Level(iri("country"))
	if len(country.Attributes) != 1 || country.Attributes[0].IRI != iri("countryName") {
		t.Errorf("attributes = %v", country.Attributes)
	}
	// Measures round-trip.
	if m, ok := loaded.Measure(iri("amount")); !ok || m.Agg != Sum {
		t.Errorf("measure = %v %v", m, ok)
	}
	// Fact cardinalities round-trip.
	if loaded.Cardinalities[iri("city")] != ManyToOne {
		t.Errorf("fact cardinality = %v", loaded.Cardinalities[iri("city")])
	}
	if probs := loaded.Validate(); len(probs) != 0 {
		t.Errorf("round-tripped schema invalid: %v", probs)
	}
}

func TestLoadCubeSchemaMissingCube(t *testing.T) {
	c := endpoint.NewLocal(store.New())
	if _, err := LoadCubeSchema(c, iri("nothere")); err == nil {
		t.Fatal("loading a missing cube must fail")
	}
}

func TestListCubesIgnoresPlainQB(t *testing.T) {
	// A plain QB DSD (qb:dimension components, no qb4o:level) is not a
	// QB4OLAP cube.
	st := store.New()
	dsd := iri("plainDSD")
	comp := rdf.NewBlank("c1")
	st.InsertTriples(rdf.Term{}, []rdf.Triple{
		rdf.NewTriple(dsd, rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), rdf.NewIRI("http://purl.org/linked-data/cube#DataStructureDefinition")),
		rdf.NewTriple(dsd, rdf.NewIRI("http://purl.org/linked-data/cube#component"), comp),
		rdf.NewTriple(comp, rdf.NewIRI("http://purl.org/linked-data/cube#dimension"), iri("d")),
	})
	cubes, err := ListCubes(endpoint.NewLocal(st))
	if err != nil {
		t.Fatal(err)
	}
	if len(cubes) != 0 {
		t.Fatalf("plain QB DSD listed as QB4OLAP cube: %v", cubes)
	}
}
