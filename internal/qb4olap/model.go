// Package qb4olap models the QB4OLAP vocabulary: multidimensional cube
// schemas with dimensions, hierarchies, levels, hierarchy steps, level
// attributes, and aggregate functions, plus level members and their
// roll-up relations. It can read a schema from a SPARQL endpoint and
// serialize a schema back to RDF triples.
package qb4olap

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/vocab"
)

// Cardinality of a fact-level or child-parent relationship.
type Cardinality int

// Cardinalities.
const (
	ManyToOne Cardinality = iota
	OneToOne
	OneToMany
	ManyToMany
)

// Term returns the vocabulary IRI for the cardinality.
func (c Cardinality) Term() rdf.Term {
	switch c {
	case OneToOne:
		return vocab.QB4OOneToOne
	case OneToMany:
		return vocab.QB4OOneToMany
	case ManyToMany:
		return vocab.QB4OManyToMany
	default:
		return vocab.QB4OManyToOne
	}
}

// CardinalityFromTerm parses a cardinality IRI; unknown terms default
// to ManyToOne, the usual roll-up cardinality.
func CardinalityFromTerm(t rdf.Term) Cardinality {
	switch t {
	case vocab.QB4OOneToOne:
		return OneToOne
	case vocab.QB4OOneToMany:
		return OneToMany
	case vocab.QB4OManyToMany:
		return ManyToMany
	default:
		return ManyToOne
	}
}

func (c Cardinality) String() string {
	switch c {
	case OneToOne:
		return "OneToOne"
	case OneToMany:
		return "OneToMany"
	case ManyToMany:
		return "ManyToMany"
	default:
		return "ManyToOne"
	}
}

// AggFunc is an aggregate function attached to a measure.
type AggFunc int

// Aggregate functions.
const (
	Sum AggFunc = iota
	Avg
	Count
	Min
	Max
)

// Term returns the vocabulary IRI for the aggregate function.
func (f AggFunc) Term() rdf.Term {
	switch f {
	case Avg:
		return vocab.QB4OAvg
	case Count:
		return vocab.QB4OCount
	case Min:
		return vocab.QB4OMin
	case Max:
		return vocab.QB4OMax
	default:
		return vocab.QB4OSum
	}
}

// SPARQL returns the SPARQL aggregate name for the function.
func (f AggFunc) SPARQL() string {
	switch f {
	case Avg:
		return "AVG"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return "SUM"
	}
}

// AggFuncFromTerm parses an aggregate function IRI (default Sum).
func AggFuncFromTerm(t rdf.Term) AggFunc {
	switch t {
	case vocab.QB4OAvg:
		return Avg
	case vocab.QB4OCount:
		return Count
	case vocab.QB4OMin:
		return Min
	case vocab.QB4OMax:
		return Max
	default:
		return Sum
	}
}

func (f AggFunc) String() string {
	switch f {
	case Avg:
		return "avg"
	case Count:
		return "count"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "sum"
	}
}

// LevelAttribute is a descriptive attribute of a level (e.g. a country
// name on the country level).
type LevelAttribute struct {
	// IRI identifies the attribute.
	IRI rdf.Term
	// Property is the data property holding the attribute value on the
	// level members (often the same as IRI).
	Property rdf.Term
}

// Level is a dimension level.
type Level struct {
	IRI        rdf.Term
	Attributes []LevelAttribute
}

// HierarchyStep is a roll-up relationship between two levels.
type HierarchyStep struct {
	IRI         rdf.Term
	Child       rdf.Term // child (finer) level IRI
	Parent      rdf.Term // parent (coarser) level IRI
	Cardinality Cardinality
	// Rollup is the instance property that links a child member to its
	// parent member (the functional dependency discovered during
	// enrichment).
	Rollup rdf.Term
}

// Hierarchy groups levels of a dimension.
type Hierarchy struct {
	IRI    rdf.Term
	Levels []rdf.Term
	Steps  []HierarchyStep
}

// StepFromChild returns the step whose child is the given level.
func (h *Hierarchy) StepFromChild(level rdf.Term) (HierarchyStep, bool) {
	for _, s := range h.Steps {
		if s.Child == level {
			return s, true
		}
	}
	return HierarchyStep{}, false
}

// HasLevel reports whether the hierarchy contains the level.
func (h *Hierarchy) HasLevel(level rdf.Term) bool {
	for _, l := range h.Levels {
		if l == level {
			return true
		}
	}
	return false
}

// Dimension is a cube dimension with its hierarchies.
type Dimension struct {
	IRI rdf.Term
	// BaseLevel is the finest level, the one linked to the DSD.
	BaseLevel   rdf.Term
	Hierarchies []*Hierarchy
}

// PathToLevel returns the chain of hierarchy steps leading from the
// base level up to target, searching all hierarchies of the dimension.
func (d *Dimension) PathToLevel(target rdf.Term) ([]HierarchyStep, bool) {
	if target == d.BaseLevel {
		return nil, true
	}
	for _, h := range d.Hierarchies {
		if !h.HasLevel(target) {
			continue
		}
		var path []HierarchyStep
		cur := d.BaseLevel
		for cur != target {
			step, ok := h.StepFromChild(cur)
			if !ok {
				path = nil
				break
			}
			path = append(path, step)
			cur = step.Parent
			if len(path) > len(h.Levels)+1 {
				path = nil
				break // cycle guard
			}
		}
		if path != nil && cur == target {
			return path, true
		}
	}
	return nil, false
}

// Levels returns the distinct level IRIs of the dimension, base level
// first, then in hierarchy order.
func (d *Dimension) LevelIRIs() []rdf.Term {
	seen := map[rdf.Term]bool{d.BaseLevel: true}
	out := []rdf.Term{d.BaseLevel}
	for _, h := range d.Hierarchies {
		for _, l := range h.Levels {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// MeasureSpec attaches an aggregate function to a measure property.
type MeasureSpec struct {
	Property rdf.Term
	Agg      AggFunc
}

// CubeSchema is a full QB4OLAP cube schema.
type CubeSchema struct {
	// DSD is the QB4OLAP data structure definition IRI.
	DSD rdf.Term
	// DataSet is the qb:DataSet holding the observations.
	DataSet rdf.Term
	// SourceDSD is the original QB DSD this schema was derived from
	// (zero when authored directly).
	SourceDSD rdf.Term
	// Namespace is the IRI prefix for generated schema elements.
	Namespace string

	Dimensions []*Dimension
	Measures   []MeasureSpec
	// Levels holds per-level metadata (attributes).
	Levels map[rdf.Term]*Level
	// Cardinalities maps each base level to its fact cardinality.
	Cardinalities map[rdf.Term]Cardinality
}

// NewCubeSchema returns an empty schema for the given DSD/dataset.
func NewCubeSchema(dsd, dataset rdf.Term, namespace string) *CubeSchema {
	return &CubeSchema{
		DSD:           dsd,
		DataSet:       dataset,
		Namespace:     namespace,
		Levels:        make(map[rdf.Term]*Level),
		Cardinalities: make(map[rdf.Term]Cardinality),
	}
}

// Dimension returns the dimension with the given IRI.
func (s *CubeSchema) Dimension(iri rdf.Term) (*Dimension, bool) {
	for _, d := range s.Dimensions {
		if d.IRI == iri {
			return d, true
		}
	}
	return nil, false
}

// DimensionOfLevel returns the dimension containing the level.
func (s *CubeSchema) DimensionOfLevel(level rdf.Term) (*Dimension, bool) {
	for _, d := range s.Dimensions {
		for _, l := range d.LevelIRIs() {
			if l == level {
				return d, true
			}
		}
	}
	return nil, false
}

// Level returns the level metadata, creating an entry if absent.
func (s *CubeSchema) Level(iri rdf.Term) *Level {
	if l, ok := s.Levels[iri]; ok {
		return l
	}
	l := &Level{IRI: iri}
	s.Levels[iri] = l
	return l
}

// Measure returns the measure spec for a property.
func (s *CubeSchema) Measure(prop rdf.Term) (MeasureSpec, bool) {
	for _, m := range s.Measures {
		if m.Property == prop {
			return m, true
		}
	}
	return MeasureSpec{}, false
}

// Problem is a schema well-formedness violation.
type Problem struct {
	Code    string
	Message string
}

func (p Problem) String() string { return p.Code + ": " + p.Message }

// Validate checks QB4OLAP well-formedness: every dimension has a base
// level and at least one hierarchy containing it; every hierarchy step
// connects levels of its hierarchy; measures carry aggregate functions
// (always true by construction, kept for symmetry); level paths are
// acyclic.
func (s *CubeSchema) Validate() []Problem {
	var out []Problem
	if len(s.Dimensions) == 0 {
		out = append(out, Problem{"qb4o-no-dimensions", fmt.Sprintf("cube %s has no dimensions", s.DSD.Value)})
	}
	if len(s.Measures) == 0 {
		out = append(out, Problem{"qb4o-no-measures", fmt.Sprintf("cube %s has no measures", s.DSD.Value)})
	}
	for _, d := range s.Dimensions {
		if d.BaseLevel.IsZero() {
			out = append(out, Problem{"qb4o-no-base-level", fmt.Sprintf("dimension %s has no base level", d.IRI.Value)})
			continue
		}
		if len(d.Hierarchies) == 0 {
			out = append(out, Problem{"qb4o-no-hierarchy", fmt.Sprintf("dimension %s has no hierarchy", d.IRI.Value)})
		}
		for _, h := range d.Hierarchies {
			if !h.HasLevel(d.BaseLevel) {
				out = append(out, Problem{"qb4o-base-not-in-hierarchy", fmt.Sprintf("hierarchy %s misses base level %s", h.IRI.Value, d.BaseLevel.Value)})
			}
			for _, st := range h.Steps {
				if !h.HasLevel(st.Child) || !h.HasLevel(st.Parent) {
					out = append(out, Problem{"qb4o-step-level-missing", fmt.Sprintf("step %s links levels outside hierarchy %s", st.IRI.Value, h.IRI.Value)})
				}
				if st.Child == st.Parent {
					out = append(out, Problem{"qb4o-step-self-loop", fmt.Sprintf("step %s rolls a level up to itself", st.IRI.Value)})
				}
				if st.Rollup.IsZero() {
					out = append(out, Problem{"qb4o-step-no-rollup", fmt.Sprintf("step %s has no rollup property", st.IRI.Value)})
				}
			}
			if cycled(h) {
				out = append(out, Problem{"qb4o-hierarchy-cycle", fmt.Sprintf("hierarchy %s contains a roll-up cycle", h.IRI.Value)})
			}
		}
	}
	return out
}

// cycled detects cycles in the child→parent step graph.
func cycled(h *Hierarchy) bool {
	next := make(map[rdf.Term]rdf.Term, len(h.Steps))
	for _, s := range h.Steps {
		next[s.Child] = s.Parent
	}
	for start := range next {
		cur := start
		for i := 0; i <= len(next); i++ {
			p, ok := next[cur]
			if !ok {
				break
			}
			if p == start {
				return true
			}
			cur = p
		}
	}
	return false
}
