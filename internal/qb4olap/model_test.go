package qb4olap

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/vocab"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func TestCardinalityRoundTrip(t *testing.T) {
	for _, c := range []Cardinality{OneToOne, OneToMany, ManyToOne, ManyToMany} {
		if got := CardinalityFromTerm(c.Term()); got != c {
			t.Errorf("cardinality %v round-tripped to %v", c, got)
		}
		if c.String() == "" {
			t.Errorf("cardinality %d has no name", c)
		}
	}
	if CardinalityFromTerm(iri("junk")) != ManyToOne {
		t.Error("unknown cardinality must default to ManyToOne")
	}
}

func TestAggFuncRoundTrip(t *testing.T) {
	names := map[AggFunc]string{Sum: "SUM", Avg: "AVG", Count: "COUNT", Min: "MIN", Max: "MAX"}
	for f, sparqlName := range names {
		if got := AggFuncFromTerm(f.Term()); got != f {
			t.Errorf("agg %v round-tripped to %v", f, got)
		}
		if f.SPARQL() != sparqlName {
			t.Errorf("agg %v SPARQL = %s, want %s", f, f.SPARQL(), sparqlName)
		}
	}
	if AggFuncFromTerm(iri("junk")) != Sum {
		t.Error("unknown aggregate must default to Sum")
	}
}

// buildSchema constructs a two-dimension schema by hand.
func buildSchema() *CubeSchema {
	s := NewCubeSchema(iri("dsd"), iri("ds"), "http://x/")
	geo := &Dimension{
		IRI:       iri("geoDim"),
		BaseLevel: iri("city"),
		Hierarchies: []*Hierarchy{{
			IRI:    iri("geoHier"),
			Levels: []rdf.Term{iri("city"), iri("country"), iri("continent")},
			Steps: []HierarchyStep{
				{IRI: iri("s1"), Child: iri("city"), Parent: iri("country"), Cardinality: ManyToOne, Rollup: iri("inCountry")},
				{IRI: iri("s2"), Child: iri("country"), Parent: iri("continent"), Cardinality: ManyToOne, Rollup: iri("inContinent")},
			},
		}},
	}
	time := &Dimension{
		IRI:       iri("timeDim"),
		BaseLevel: iri("month"),
		Hierarchies: []*Hierarchy{{
			IRI:    iri("timeHier"),
			Levels: []rdf.Term{iri("month")},
		}},
	}
	s.Dimensions = []*Dimension{geo, time}
	s.Measures = []MeasureSpec{{Property: iri("amount"), Agg: Sum}}
	s.Cardinalities[iri("city")] = ManyToOne
	s.Cardinalities[iri("month")] = ManyToOne
	for _, l := range []string{"city", "country", "continent", "month"} {
		s.Level(iri(l))
	}
	s.Level(iri("country")).Attributes = []LevelAttribute{{IRI: iri("countryName"), Property: iri("countryName")}}
	return s
}

func TestPathToLevel(t *testing.T) {
	s := buildSchema()
	d, _ := s.Dimension(iri("geoDim"))

	path, ok := d.PathToLevel(iri("continent"))
	if !ok || len(path) != 2 {
		t.Fatalf("path to continent: %v %v", path, ok)
	}
	if path[0].Rollup != iri("inCountry") || path[1].Rollup != iri("inContinent") {
		t.Fatalf("wrong rollups: %v", path)
	}
	path, ok = d.PathToLevel(iri("city"))
	if !ok || len(path) != 0 {
		t.Fatalf("path to base: %v %v", path, ok)
	}
	if _, ok := d.PathToLevel(iri("galaxy")); ok {
		t.Fatal("path to unknown level must fail")
	}
}

func TestLevelIRIsAndLookups(t *testing.T) {
	s := buildSchema()
	d, _ := s.Dimension(iri("geoDim"))
	levels := d.LevelIRIs()
	if len(levels) != 3 || levels[0] != iri("city") {
		t.Fatalf("LevelIRIs = %v", levels)
	}
	if _, ok := s.Dimension(iri("nope")); ok {
		t.Fatal("unknown dimension resolved")
	}
	dim, ok := s.DimensionOfLevel(iri("continent"))
	if !ok || dim.IRI != iri("geoDim") {
		t.Fatalf("DimensionOfLevel = %v %v", dim, ok)
	}
	if _, ok := s.DimensionOfLevel(iri("galaxy")); ok {
		t.Fatal("unknown level resolved")
	}
	if m, ok := s.Measure(iri("amount")); !ok || m.Agg != Sum {
		t.Fatal("measure lookup failed")
	}
	if _, ok := s.Measure(iri("nope")); ok {
		t.Fatal("unknown measure resolved")
	}
}

func TestValidateWellFormed(t *testing.T) {
	s := buildSchema()
	if probs := s.Validate(); len(probs) != 0 {
		t.Fatalf("well-formed schema reported: %v", probs)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	check := func(name string, mutate func(*CubeSchema), wantCode string) {
		t.Run(name, func(t *testing.T) {
			s := buildSchema()
			mutate(s)
			probs := s.Validate()
			for _, p := range probs {
				if p.Code == wantCode {
					return
				}
			}
			t.Errorf("missing problem %s in %v", wantCode, probs)
		})
	}
	check("no-dimensions", func(s *CubeSchema) { s.Dimensions = nil }, "qb4o-no-dimensions")
	check("no-measures", func(s *CubeSchema) { s.Measures = nil }, "qb4o-no-measures")
	check("no-base", func(s *CubeSchema) { s.Dimensions[0].BaseLevel = rdf.Term{} }, "qb4o-no-base-level")
	check("no-hierarchy", func(s *CubeSchema) { s.Dimensions[0].Hierarchies = nil }, "qb4o-no-hierarchy")
	check("base-missing", func(s *CubeSchema) {
		s.Dimensions[0].Hierarchies[0].Levels = s.Dimensions[0].Hierarchies[0].Levels[1:]
	}, "qb4o-base-not-in-hierarchy")
	check("step-outside", func(s *CubeSchema) {
		s.Dimensions[0].Hierarchies[0].Steps[0].Parent = iri("mars")
	}, "qb4o-step-level-missing")
	check("self-loop", func(s *CubeSchema) {
		s.Dimensions[0].Hierarchies[0].Steps[0].Parent = iri("city")
	}, "qb4o-step-self-loop")
	check("no-rollup", func(s *CubeSchema) {
		s.Dimensions[0].Hierarchies[0].Steps[0].Rollup = rdf.Term{}
	}, "qb4o-step-no-rollup")
	check("cycle", func(s *CubeSchema) {
		h := s.Dimensions[0].Hierarchies[0]
		h.Steps = append(h.Steps, HierarchyStep{
			IRI: iri("s3"), Child: iri("continent"), Parent: iri("city"),
			Cardinality: ManyToOne, Rollup: iri("back"),
		})
	}, "qb4o-hierarchy-cycle")
}

func TestSchemaTriplesShape(t *testing.T) {
	s := buildSchema()
	ts := s.SchemaTriples()
	g := rdf.NewGraph()
	g.AddAll(ts)

	// DSD typed, dataset linked.
	if g.Object(iri("dsd"), vocab.RDFType) != vocab.QBDataStructureDefinition {
		t.Error("DSD type missing")
	}
	if g.Object(iri("ds"), vocab.QBStructure) != iri("dsd") {
		t.Error("dataset structure link missing")
	}
	// Hierarchy steps serialized with rollup property.
	if g.Object(iri("s1"), vocab.QB4ORollup) != iri("inCountry") {
		t.Error("rollup property missing from step")
	}
	if g.Object(iri("s1"), vocab.QB4OPCCardinality) != vocab.QB4OManyToOne {
		t.Error("step cardinality missing")
	}
	// Level attribute.
	if g.Object(iri("country"), vocab.QB4OHasAttribute) != iri("countryName") {
		t.Error("level attribute missing")
	}
	// Measure with aggregate function in a component blank node.
	found := false
	for _, tr := range g.Match(rdf.Term{}, vocab.QBMeasure, iri("amount")) {
		if g.Object(tr.S, vocab.QB4OAggregateFunctionP) == vocab.QB4OSum {
			found = true
		}
	}
	if !found {
		t.Error("measure aggregate function missing")
	}
}

func TestStepFromChildAndHasLevel(t *testing.T) {
	s := buildSchema()
	h := s.Dimensions[0].Hierarchies[0]
	if st, ok := h.StepFromChild(iri("city")); !ok || st.Parent != iri("country") {
		t.Fatal("StepFromChild failed")
	}
	if _, ok := h.StepFromChild(iri("continent")); ok {
		t.Fatal("top level has no outgoing step")
	}
	if !h.HasLevel(iri("country")) || h.HasLevel(iri("mars")) {
		t.Fatal("HasLevel wrong")
	}
}
