package ql

import (
	"fmt"

	"repro/internal/qb4olap"
	"repro/internal/rdf"
)

// DimState is the final granularity of one dimension in the result
// cube.
type DimState struct {
	Dimension *qb4olap.Dimension
	// Level is the granularity the dimension ends at.
	Level rdf.Term
	// Sliced reports whether the dimension was sliced out.
	Sliced bool
}

// Analysis is the result of semantic analysis: the final cube state a
// well-formed QL program denotes, plus the dice conditions.
type Analysis struct {
	Schema  *qb4olap.CubeSchema
	Dataset rdf.Term
	// Dims lists the dimension IRIs in schema order.
	Dims []rdf.Term
	// States maps dimension IRI to its final state.
	States map[rdf.Term]*DimState
	// Dices are the DICE conditions in program order.
	Dices []Condition
	// Program is the analyzed program.
	Program *Program
}

// VisibleDims returns the non-sliced dimensions in order.
func (a *Analysis) VisibleDims() []*DimState {
	var out []*DimState
	for _, d := range a.Dims {
		if st := a.States[d]; !st.Sliced {
			out = append(out, st)
		}
	}
	return out
}

// Analyze checks a QL program against a QB4OLAP schema and computes
// the final cube state. It enforces the paper's normal form: dicing
// must come after all other operations.
func Analyze(prog *Program, schema *qb4olap.CubeSchema) (*Analysis, error) {
	a := &Analysis{
		Schema:  schema,
		States:  make(map[rdf.Term]*DimState),
		Program: prog,
	}
	for _, d := range schema.Dimensions {
		a.Dims = append(a.Dims, d.IRI)
		a.States[d.IRI] = &DimState{Dimension: d, Level: d.BaseLevel}
	}

	seenDice := false
	prevVar := ""
	for i, st := range prog.Statements {
		// Chain check: the first statement must start from the dataset;
		// later ones must consume the previous result.
		if i == 0 {
			if st.Input != "" {
				return nil, fmt.Errorf("ql: first operation must take the data set, not %s", st.Input)
			}
			if st.Dataset.IsZero() {
				return nil, fmt.Errorf("ql: first operation is missing the data set IRI")
			}
			if !schema.DataSet.IsZero() && st.Dataset != schema.DataSet {
				return nil, fmt.Errorf("ql: data set %s does not match the cube's data set %s", st.Dataset.Value, schema.DataSet.Value)
			}
			a.Dataset = st.Dataset
		} else {
			if st.Input == "" {
				return nil, fmt.Errorf("ql: %s restarts from a data set; only the first operation may", st.Target)
			}
			if st.Input != prevVar {
				return nil, fmt.Errorf("ql: %s consumes %s, but the previous result is %s", st.Target, st.Input, prevVar)
			}
		}
		prevVar = st.Target

		if st.Op == OpDice {
			seenDice = true
			if err := a.checkCondition(st.Condition); err != nil {
				return nil, err
			}
			a.Dices = append(a.Dices, st.Condition)
			continue
		}
		if seenDice {
			return nil, fmt.Errorf("ql: %s after DICE — programs must have the form (ROLLUP|SLICE|DRILLDOWN)* (DICE)*", st.Op)
		}

		ds, ok := a.States[st.Dimension]
		if !ok {
			return nil, fmt.Errorf("ql: unknown dimension %s", st.Dimension.Value)
		}
		if ds.Sliced {
			return nil, fmt.Errorf("ql: dimension %s was sliced out earlier", st.Dimension.Value)
		}
		switch st.Op {
		case OpSlice:
			ds.Sliced = true
		case OpRollup, OpDrilldown:
			dim := ds.Dimension
			targetDepth, ok := levelDepth(dim, st.Level)
			if !ok {
				return nil, fmt.Errorf("ql: level %s is not in dimension %s", st.Level.Value, st.Dimension.Value)
			}
			curDepth, _ := levelDepth(dim, ds.Level)
			if st.Op == OpRollup && targetDepth < curDepth {
				return nil, fmt.Errorf("ql: ROLLUP to %s goes below the current level %s", st.Level.Value, ds.Level.Value)
			}
			if st.Op == OpDrilldown && targetDepth > curDepth {
				return nil, fmt.Errorf("ql: DRILLDOWN to %s goes above the current level %s", st.Level.Value, ds.Level.Value)
			}
			ds.Level = st.Level
		}
	}
	return a, nil
}

// levelDepth returns how many steps above the base level a level sits.
func levelDepth(d *qb4olap.Dimension, level rdf.Term) (int, bool) {
	path, ok := d.PathToLevel(level)
	if !ok {
		return 0, false
	}
	return len(path), true
}

// checkCondition validates a DICE condition against the final states.
func (a *Analysis) checkCondition(c Condition) error {
	switch x := c.(type) {
	case AttrCondition:
		ds, ok := a.States[x.Dimension]
		if !ok {
			return fmt.Errorf("ql: DICE references unknown dimension %s", x.Dimension.Value)
		}
		if ds.Sliced {
			return fmt.Errorf("ql: DICE references sliced dimension %s", x.Dimension.Value)
		}
		if ds.Level != x.Level {
			return fmt.Errorf("ql: DICE references level %s, but dimension %s is at level %s",
				x.Level.Value, x.Dimension.Value, ds.Level.Value)
		}
		if !a.levelHasAttribute(x.Level, x.Attribute) {
			return fmt.Errorf("ql: level %s has no attribute %s", x.Level.Value, x.Attribute.Value)
		}
		return nil
	case MemberCondition:
		ds, ok := a.States[x.Dimension]
		if !ok {
			return fmt.Errorf("ql: DICE references unknown dimension %s", x.Dimension.Value)
		}
		if ds.Sliced {
			return fmt.Errorf("ql: DICE references sliced dimension %s", x.Dimension.Value)
		}
		if ds.Level != x.Level {
			return fmt.Errorf("ql: DICE references level %s, but dimension %s is at level %s",
				x.Level.Value, x.Dimension.Value, ds.Level.Value)
		}
		return nil
	case MeasureCondition:
		if _, ok := a.Schema.Measure(x.Measure); !ok {
			return fmt.Errorf("ql: DICE references unknown measure %s", x.Measure.Value)
		}
		return nil
	case BoolCondition:
		if err := a.checkCondition(x.L); err != nil {
			return err
		}
		return a.checkCondition(x.R)
	case NotCondition:
		return a.checkCondition(x.X)
	default:
		return fmt.Errorf("ql: unknown condition type %T", c)
	}
}

func (a *Analysis) levelHasAttribute(level, attr rdf.Term) bool {
	l, ok := a.Schema.Levels[level]
	if !ok {
		return false
	}
	for _, la := range l.Attributes {
		if la.IRI == attr {
			return true
		}
	}
	return false
}
