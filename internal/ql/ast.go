// Package ql implements the QB2OLAP Querying module: the high-level
// OLAP language QL, its well-formedness analysis against a QB4OLAP
// schema, the Query Simplification phase, the Query Translation phase
// that produces two semantically equivalent SPARQL queries (the direct
// translation and an alternative using optimization heuristics), and
// the SPARQL Execution phase returning a result cube. Which of the two
// translations runs is, by default, a cost-based decision: Execute
// with the Auto variant (or Choose directly) asks the client to
// estimate both — endpoint.CostEstimator, backed by the engine's
// query planner — and runs the cheaper, falling back to the
// historical heuristic (the alternative form) when no estimator is
// available.
//
// QL follows the cube algebra of Ciferri et al.: a program is a
// sequence of assignments
//
//	$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
//	$C2 := ROLLUP ($C1, schema:citizenshipDim, schema:continent);
//	$C3 := DICE ($C2, (schema:citizenshipDim|schema:continent|schema:continentName = "Africa"));
//
// with the shape (ROLLUP | SLICE | DRILLDOWN)* (DICE)*.
//
// Concurrency contract: the package itself holds no mutable state —
// Parse, Prepare, Translate, and Execute are pure functions over their
// inputs, and a *Prepared program may be executed by many goroutines
// at once. Execute is as concurrent-safe as the endpoint.SPARQLClient
// it is given (Local, Remote, and core.Tool clients all qualify).
package ql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// OpKind is the QL operation.
type OpKind int

// QL operations.
const (
	OpRollup OpKind = iota
	OpDrilldown
	OpSlice
	OpDice
)

func (k OpKind) String() string {
	switch k {
	case OpRollup:
		return "ROLLUP"
	case OpDrilldown:
		return "DRILLDOWN"
	case OpSlice:
		return "SLICE"
	default:
		return "DICE"
	}
}

// CmpOp is a comparison operator in a DICE condition.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpGt
	CmpLe
	CmpGe
)

func (o CmpOp) String() string {
	switch o {
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpGt:
		return ">"
	case CmpLe:
		return "<="
	case CmpGe:
		return ">="
	default:
		return "="
	}
}

// Condition is a DICE condition tree.
type Condition interface{ isCondition() }

// AttrCondition compares a level attribute with a constant:
// dimension|level|attribute op value.
type AttrCondition struct {
	Dimension rdf.Term
	Level     rdf.Term
	Attribute rdf.Term
	Op        CmpOp
	Value     rdf.Term
}

func (AttrCondition) isCondition() {}

// MemberCondition compares the member of a level with a constant IRI:
// dimension|level op <member>. It needs no declared attribute.
type MemberCondition struct {
	Dimension rdf.Term
	Level     rdf.Term
	Op        CmpOp // CmpEq or CmpNe
	Member    rdf.Term
}

func (MemberCondition) isCondition() {}

// MeasureCondition compares an aggregated measure with a constant:
// measure op value. It filters cube cells, so it translates to HAVING.
type MeasureCondition struct {
	Measure rdf.Term
	Op      CmpOp
	Value   rdf.Term
}

func (MeasureCondition) isCondition() {}

// BoolCondition combines conditions with AND/OR.
type BoolCondition struct {
	And  bool // true = AND, false = OR
	L, R Condition
}

func (BoolCondition) isCondition() {}

// NotCondition negates a condition.
type NotCondition struct{ X Condition }

func (NotCondition) isCondition() {}

// Statement is one QL assignment.
type Statement struct {
	// Target is the assigned cube variable (e.g. "$C1").
	Target string
	// Op is the operation.
	Op OpKind
	// Input is the source cube variable, or empty when the first
	// argument is the dataset itself.
	Input string
	// Dataset is the base cube IRI when this statement starts from the
	// stored data set.
	Dataset rdf.Term
	// Dimension is the operated dimension (ROLLUP/DRILLDOWN/SLICE).
	Dimension rdf.Term
	// Level is the target level (ROLLUP/DRILLDOWN).
	Level rdf.Term
	// Condition is the DICE condition.
	Condition Condition
}

// Program is a parsed QL program.
type Program struct {
	Prefixes   *rdf.PrefixMap
	Statements []Statement
}

// Result returns the variable holding the final cube.
func (p *Program) Result() string {
	if len(p.Statements) == 0 {
		return ""
	}
	return p.Statements[len(p.Statements)-1].Target
}

// String renders the program back to QL syntax.
func (p *Program) String() string {
	var b strings.Builder
	b.WriteString("QUERY\n")
	for _, s := range p.Statements {
		b.WriteString(s.String())
		b.WriteString(";\n")
	}
	return b.String()
}

// String renders one statement.
func (s Statement) String() string {
	src := s.Input
	if src == "" {
		src = "<" + s.Dataset.Value + ">"
	}
	switch s.Op {
	case OpSlice:
		return fmt.Sprintf("%s := SLICE (%s, <%s>)", s.Target, src, s.Dimension.Value)
	case OpRollup, OpDrilldown:
		return fmt.Sprintf("%s := %s (%s, <%s>, <%s>)", s.Target, s.Op, src, s.Dimension.Value, s.Level.Value)
	default:
		return fmt.Sprintf("%s := DICE (%s, %s)", s.Target, src, formatCondition(s.Condition))
	}
}

// formatValue renders a condition constant in QL syntax: numbers as
// bare numerals, IRIs in angle brackets, strings quoted.
func formatValue(v rdf.Term) string {
	if v.IsIRI() {
		return "<" + v.Value + ">"
	}
	switch v.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal:
		return v.Value
	}
	return rdf.NewLiteral(v.Value).String()
}

func formatCondition(c Condition) string {
	switch x := c.(type) {
	case AttrCondition:
		return fmt.Sprintf("(<%s>|<%s>|<%s> %s %s)", x.Dimension.Value, x.Level.Value, x.Attribute.Value, x.Op, formatValue(x.Value))
	case MemberCondition:
		return fmt.Sprintf("(<%s>|<%s> %s <%s>)", x.Dimension.Value, x.Level.Value, x.Op, x.Member.Value)
	case MeasureCondition:
		return fmt.Sprintf("(<%s> %s %s)", x.Measure.Value, x.Op, formatValue(x.Value))
	case BoolCondition:
		op := "OR"
		if x.And {
			op = "AND"
		}
		return fmt.Sprintf("(%s %s %s)", formatCondition(x.L), op, formatCondition(x.R))
	case NotCondition:
		return fmt.Sprintf("(NOT %s)", formatCondition(x.X))
	default:
		return "?"
	}
}
