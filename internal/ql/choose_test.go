package ql

import (
	"testing"

	"repro/internal/endpoint"
	"repro/internal/sparql"
	"repro/internal/store"
)

// plainClient implements endpoint.SPARQLClient but not
// endpoint.CostEstimator — the shape of a third-party client Choose
// must degrade gracefully for.
type plainClient struct{}

func (plainClient) Select(string) (*sparql.Results, error) { return nil, nil }
func (plainClient) Update(string) error                    { return nil }

func TestChooseFallsBackWithoutEstimator(t *testing.T) {
	tr := &Translation{Direct: "SELECT * WHERE { ?s ?p ?o }", Alternative: "SELECT * WHERE { ?s ?p ?o }"}
	sel := Choose(plainClient{}, tr)
	if !sel.Heuristic {
		t.Fatalf("Choose over a non-estimator client: %+v, want heuristic", sel)
	}
	if sel.Variant != Alternative {
		t.Fatalf("heuristic variant = %s, want alternative", sel.Variant)
	}
	if got := sel.String(); got != "alternative (heuristic)" {
		t.Fatalf("Selection.String() = %q", got)
	}
}

func TestChooseFallsBackWhenPlannerOff(t *testing.T) {
	client := endpoint.NewLocal(store.New(), sparql.WithPlanner(false))
	tr := &Translation{Direct: "SELECT * WHERE { ?s ?p ?o }", Alternative: "SELECT * WHERE { ?s ?p ?o }"}
	sel := Choose(client, tr)
	if !sel.Heuristic || sel.Variant != Alternative {
		t.Fatalf("Choose against a planner-off local: %+v, want heuristic alternative", sel)
	}
}

func TestChooseTieBreaksToDirect(t *testing.T) {
	// Identical translations estimate identical costs; the tie must go
	// to the direct variant deterministically.
	client := endpoint.NewLocal(store.New())
	const q = "SELECT * WHERE { ?s ?p ?o }"
	sel := Choose(client, &Translation{Direct: q, Alternative: q})
	if sel.Heuristic {
		t.Fatalf("planner-on local fell back to heuristic: %+v", sel)
	}
	if sel.Variant != Direct {
		t.Fatalf("tie broke to %s, want direct", sel.Variant)
	}
	if sel.Cost > sel.Other || sel.Cost < 0 {
		t.Fatalf("selection costs inconsistent: %+v", sel)
	}
}

func TestChooseDemoQueryPicksCheaperTranslation(t *testing.T) {
	env := demoCube(t)
	p, err := Prepare(demoQuery, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	client := endpoint.NewLocal(env.Store)
	sel := Choose(client, p.Translation)
	if sel.Heuristic {
		t.Fatalf("planner-on local fell back to heuristic: %+v", sel)
	}
	if sel.Cost > sel.Other {
		t.Fatalf("Choose picked the costlier arm: %+v", sel)
	}
	// Executing through the Auto variant must resolve and cache the
	// same selection, then run the chosen translation.
	cube, err := Execute(client, p.Translation, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) == 0 {
		t.Fatal("Auto execution returned an empty cube")
	}
	if p.Translation.Selection == nil {
		t.Fatal("Auto execution did not cache its selection on the translation")
	}
	if p.Translation.Selection.Variant != sel.Variant {
		t.Fatalf("cached selection %s differs from Choose result %s",
			p.Translation.Selection.Variant, sel.Variant)
	}
}
