package ql

import (
	"testing"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// plainClient implements endpoint.SPARQLClient but not
// endpoint.CostEstimator — the shape of a third-party client Choose
// must degrade gracefully for.
type plainClient struct{}

func (plainClient) Select(string) (*sparql.Results, error) { return nil, nil }
func (plainClient) Update(string) error                    { return nil }

func TestChooseFallsBackWithoutEstimator(t *testing.T) {
	tr := &Translation{Direct: "SELECT * WHERE { ?s ?p ?o }", Alternative: "SELECT * WHERE { ?s ?p ?o }"}
	sel := Choose(plainClient{}, tr)
	if !sel.Heuristic {
		t.Fatalf("Choose over a non-estimator client: %+v, want heuristic", sel)
	}
	if sel.Variant != Alternative {
		t.Fatalf("heuristic variant = %s, want alternative", sel.Variant)
	}
	if got := sel.String(); got != "alternative (heuristic)" {
		t.Fatalf("Selection.String() = %q", got)
	}
}

func TestChooseFallsBackWhenPlannerOff(t *testing.T) {
	client := endpoint.NewLocal(store.New(), sparql.WithPlanner(false))
	tr := &Translation{Direct: "SELECT * WHERE { ?s ?p ?o }", Alternative: "SELECT * WHERE { ?s ?p ?o }"}
	sel := Choose(client, tr)
	if !sel.Heuristic || sel.Variant != Alternative {
		t.Fatalf("Choose against a planner-off local: %+v, want heuristic alternative", sel)
	}
}

func TestChooseTieBreaksToDirect(t *testing.T) {
	// Identical translations estimate identical costs; the tie must go
	// to the direct variant deterministically.
	client := endpoint.NewLocal(store.New())
	const q = "SELECT * WHERE { ?s ?p ?o }"
	sel := Choose(client, &Translation{Direct: q, Alternative: q})
	if sel.Heuristic {
		t.Fatalf("planner-on local fell back to heuristic: %+v", sel)
	}
	if sel.Variant != Direct {
		t.Fatalf("tie broke to %s, want direct", sel.Variant)
	}
	if sel.Cost > sel.Other || sel.Cost < 0 {
		t.Fatalf("selection costs inconsistent: %+v", sel)
	}
}

func TestChooseDemoQueryPicksCheaperTranslation(t *testing.T) {
	env := demoCube(t)
	p, err := Prepare(demoQuery, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	client := endpoint.NewLocal(env.Store)
	sel := Choose(client, p.Translation)
	if sel.Heuristic {
		t.Fatalf("planner-on local fell back to heuristic: %+v", sel)
	}
	if sel.Cost > sel.Other {
		t.Fatalf("Choose picked the costlier arm: %+v", sel)
	}
	// Executing through the Auto variant must resolve and cache the
	// same selection, then run the chosen translation.
	cube, err := Execute(client, p.Translation, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) == 0 {
		t.Fatal("Auto execution returned an empty cube")
	}
	if p.Translation.Selection == nil {
		t.Fatal("Auto execution did not cache its selection on the translation")
	}
	if p.Translation.Selection.Variant != sel.Variant {
		t.Fatalf("cached selection %s differs from Choose result %s",
			p.Translation.Selection.Variant, sel.Variant)
	}
}

// TestChooseDecisionCounters checks every Choose return path bumps its
// process-wide decision counter: a cost-based pick moves direct or
// alternative, an estimator-less client moves heuristic.
func TestChooseDecisionCounters(t *testing.T) {
	st := store.New()
	client := endpoint.NewLocal(st)
	q := "SELECT * WHERE { ?s ?p ?o }"

	d0, a0, h0 := ChooseStats()
	Choose(client, &Translation{Direct: q, Alternative: q}) // tie → direct
	if d, _, _ := ChooseStats(); d != d0+1 {
		t.Fatalf("direct counter = %d, want %d", d, d0+1)
	}
	Choose(plainClient{}, &Translation{Direct: q, Alternative: q}) // no estimator → heuristic
	if _, _, h := ChooseStats(); h != h0+1 {
		t.Fatalf("heuristic counter = %d, want %d", h, h0+1)
	}
	// An alternative win: on a populated store a two-pattern join costs
	// more than the single-pattern alternative arm.
	st.InsertTriples(rdf.Term{}, []rdf.Triple{
		rdf.NewTriple(rdf.NewIRI("http://ex/a"), rdf.NewIRI("http://ex/p"), rdf.NewIRI("http://ex/b")),
		rdf.NewTriple(rdf.NewIRI("http://ex/b"), rdf.NewIRI("http://ex/p"), rdf.NewIRI("http://ex/c")),
	})
	sel := Choose(client, &Translation{
		Direct:      "SELECT * WHERE { ?s ?p ?o . ?o ?p2 ?x . ?x ?p3 ?y }",
		Alternative: "SELECT * WHERE { ?s <http://ex/p> ?o }",
	})
	if sel.Variant != Alternative || sel.Heuristic {
		t.Fatalf("selection = %+v, want cost-based alternative", sel)
	}
	if _, a, _ := ChooseStats(); a != a0+1 {
		t.Fatalf("alternative counter = %d, want %d", a, a0+1)
	}
}
