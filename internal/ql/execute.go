package ql

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/endpoint"
	"repro/internal/obs"
	"repro/internal/olap"
	"repro/internal/qb4olap"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Variant selects which generated SPARQL query to execute.
type Variant int

// Query variants.
const (
	// Direct runs the flat single-SELECT translation.
	Direct Variant = iota
	// Alternative runs the subquery translation.
	Alternative
	// Auto asks the endpoint's cost-based planner to price both
	// translations and runs the cheaper one (see Choose). On a client
	// without a usable cost surface it falls back to a static heuristic.
	Auto
)

func (v Variant) String() string {
	switch v {
	case Alternative:
		return "alternative"
	case Auto:
		return "auto"
	}
	return "direct"
}

// Selection records how an Auto execution resolved: which translation
// ran and why. It is stored on the Translation so callers (the CLI, the
// EXPLAIN ANALYZE plan line) can report the decision.
type Selection struct {
	// Variant is the translation chosen.
	Variant Variant
	// Cost and Other are the planner's estimated C_out costs for the
	// chosen and the rejected translation. Both are zero when the
	// decision was heuristic.
	Cost, Other float64
	// Heuristic is set when no cost estimate was available (the client
	// does not implement endpoint.CostEstimator, or its planner is off)
	// and the static default was used instead.
	Heuristic bool
}

// String renders the decision as the one-line plan summary used by
// EXPLAIN ANALYZE, e.g. "alternative (est cost 10458)".
func (s Selection) String() string {
	if s.Heuristic {
		return s.Variant.String() + " (heuristic)"
	}
	return fmt.Sprintf("%s (est cost %.0f)", s.Variant, s.Cost)
}

// Process-wide counters of how Auto executions resolved, one per
// Selection kind. PR 6 made the decision visible per query in EXPLAIN;
// these make the aggregate visible in metrics, so an operator can see
// at a glance whether the cost surface is actually being consulted or
// every client is falling back to the heuristic.
var chooseDirect, chooseAlternative, chooseHeuristic atomic.Int64

// ChooseStats returns the process-wide Choose decision counts:
// cost-based direct wins, cost-based alternative wins, and heuristic
// fallbacks (no usable cost surface).
func ChooseStats() (direct, alternative, heuristic int64) {
	return chooseDirect.Load(), chooseAlternative.Load(), chooseHeuristic.Load()
}

// RegisterChooseMetrics publishes the decision counters on reg as
// gauges (ql_choose_direct, ql_choose_alternative,
// ql_choose_heuristic), for embedders that serve a metrics registry
// next to a QL workload.
func RegisterChooseMetrics(reg *obs.Registry) {
	reg.Gauge("ql_choose_direct", chooseDirect.Load)
	reg.Gauge("ql_choose_alternative", chooseAlternative.Load)
	reg.Gauge("ql_choose_heuristic", chooseHeuristic.Load)
}

// Choose picks which translation an Auto execution runs. When the
// client can price queries with the cost-based planner (it implements
// endpoint.CostEstimator and the planner is on), both translations are
// planned — never evaluated — and the cheaper estimated C_out cost
// wins, ties going to the direct form. Otherwise the static heuristic
// picks the alternative (subquery) translation, which the EXPERIMENTS.md
// measurements show ahead of the direct form on every dataset scale.
func Choose(c endpoint.SPARQLClient, t *Translation) Selection {
	if ce, ok := c.(endpoint.CostEstimator); ok {
		dc, derr := ce.EstimateCost(t.Direct)
		ac, aerr := ce.EstimateCost(t.Alternative)
		if derr == nil && aerr == nil {
			if ac < dc {
				chooseAlternative.Add(1)
				return Selection{Variant: Alternative, Cost: ac, Other: dc}
			}
			chooseDirect.Add(1)
			return Selection{Variant: Direct, Cost: dc, Other: ac}
		}
	}
	chooseHeuristic.Add(1)
	return Selection{Variant: Alternative, Heuristic: true}
}

// Execute runs one of the translated queries on the endpoint and
// materializes the result cube on the fly (the SPARQL Execution phase).
func Execute(c endpoint.SPARQLClient, t *Translation, v Variant) (*olap.Cube, error) {
	return ExecuteContext(context.Background(), c, t, v)
}

// ExecuteContext is Execute under a context: ctx bounds the SPARQL
// execution when the client supports cancellation (both built-in
// endpoint clients do).
func ExecuteContext(ctx context.Context, c endpoint.SPARQLClient, t *Translation, v Variant) (*olap.Cube, error) {
	if v == Auto {
		if t.Selection == nil {
			sel := Choose(c, t)
			t.Selection = &sel
		}
		v = t.Selection.Variant
	}
	query := t.Direct
	if v == Alternative {
		query = t.Alternative
	}
	res, err := endpoint.SelectContext(ctx, c, query)
	if err != nil {
		return nil, fmt.Errorf("ql: executing %s query: %w", v, err)
	}
	return Materialize(t, res), nil
}

// Materialize builds the result cube from an already-evaluated SPARQL
// result table of either translated query. It is the second half of
// Execute, split out so callers that run the SPARQL themselves (e.g. a
// traced engine evaluation) can still produce a cube.
func Materialize(t *Translation, res *sparql.Results) *olap.Cube {
	cube := &olap.Cube{}
	for _, ds := range t.Analysis.VisibleDims() {
		cube.Axes = append(cube.Axes, olap.Axis{Dimension: ds.Dimension.IRI, Level: ds.Level})
	}
	for _, m := range t.Analysis.Schema.Measures {
		cube.Measures = append(cube.Measures, fmt.Sprintf("%s(%s)", m.Agg, localOf(m.Property)))
	}
	for i := range res.Rows {
		cell := olap.Cell{
			Coords: make([]rdf.Term, len(t.GroupVars)),
			Labels: make([]string, len(t.GroupVars)),
			Values: make([]rdf.Term, len(t.MeasureVars)),
		}
		for j, v := range t.GroupVars {
			cell.Coords[j] = res.Binding(i, v)
			cell.Labels[j] = res.Binding(i, t.LabelVars[j]).Value
		}
		for j, v := range t.MeasureVars {
			cell.Values[j] = res.Binding(i, v)
		}
		cube.Cells = append(cube.Cells, cell)
	}
	cube.Sort()
	return cube
}

// Pipeline bundles the full Querying-module workflow of Figure 3:
// parse → analyze → simplify → re-analyze → translate. Execute the
// result with Execute, or inspect the intermediate artifacts.
type Pipeline struct {
	// Parsed is the program as written.
	Parsed *Program
	// Simplified is the program after the Query Simplification phase.
	Simplified *Program
	// Translation holds both SPARQL queries.
	Translation *Translation
	// Timings records the wall time of each pipeline phase in execution
	// order: parse, analyze, simplify, re-analyze, translate, plus one
	// execute(<variant>) entry per Run call — preceded, for Auto runs,
	// by a plan(<selection>) entry timing the cost-based choice.
	Timings []PhaseTiming
}

// PhaseTiming is the wall time of one Querying-module phase.
type PhaseTiming struct {
	Phase string        `json:"phase"`
	Wall  time.Duration `json:"wallNs"`
}

// Prepare runs parsing, analysis, simplification, and translation for a
// QL source text against a cube schema.
func Prepare(src string, schema *qb4olap.CubeSchema) (*Pipeline, error) {
	p := &Pipeline{}
	phase := func(name string, start time.Time) {
		p.Timings = append(p.Timings, PhaseTiming{Phase: name, Wall: time.Since(start)})
	}

	start := time.Now()
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	phase("parse", start)

	start = time.Now()
	analysis, err := Analyze(prog, schema)
	if err != nil {
		return nil, err
	}
	phase("analyze", start)

	start = time.Now()
	simplified := Simplify(analysis)
	phase("simplify", start)

	start = time.Now()
	finalAnalysis, err := Analyze(simplified, schema)
	if err != nil {
		return nil, fmt.Errorf("ql: internal error — simplified program failed analysis: %w", err)
	}
	phase("re-analyze", start)

	start = time.Now()
	tr, err := Translate(finalAnalysis)
	if err != nil {
		return nil, err
	}
	phase("translate", start)

	p.Parsed, p.Simplified, p.Translation = prog, simplified, tr
	return p, nil
}

// Run is the one-call convenience: Prepare then Execute. The returned
// pipeline's Timings include the execution phase for the chosen
// variant.
func Run(c endpoint.SPARQLClient, schema *qb4olap.CubeSchema, src string, v Variant) (*olap.Cube, *Pipeline, error) {
	return RunContext(context.Background(), c, schema, src, v)
}

// RunContext is Run under a context; preparation is pure computation,
// so ctx effectively bounds the SPARQL execution phase.
func RunContext(ctx context.Context, c endpoint.SPARQLClient, schema *qb4olap.CubeSchema, src string, v Variant) (*olap.Cube, *Pipeline, error) {
	p, err := Prepare(src, schema)
	if err != nil {
		return nil, nil, err
	}
	if v == Auto {
		start := time.Now()
		sel := Choose(c, p.Translation)
		p.Translation.Selection = &sel
		p.Timings = append(p.Timings, PhaseTiming{Phase: "plan(" + sel.String() + ")", Wall: time.Since(start)})
		v = sel.Variant
	}
	start := time.Now()
	cube, err := ExecuteContext(ctx, c, p.Translation, v)
	p.Timings = append(p.Timings, PhaseTiming{Phase: "execute(" + v.String() + ")", Wall: time.Since(start)})
	if err != nil {
		return nil, p, err
	}
	return cube, p, nil
}
