package ql

import "testing"

// FuzzParse checks the QL parser never panics and that accepted
// programs render and re-parse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`QUERY $C1 := SLICE (<http://ds>, <http://dim>);`,
		`PREFIX s: <http://s#>
QUERY
$C1 := ROLLUP (s:ds, s:d, s:l);
$C2 := DICE ($C1, (s:d|s:l|s:a = "x" AND s:m > 1.5) OR NOT s:m <= -3);`,
		`QUERY $C1 := DRILLDOWN (<http://ds>, <http://d>, <http://l>)`,
		`QUERY`,
		`PREFIX broken`,
		`QUERY $C1 := DICE (<http://ds>, <http://m> != <http://iri>);`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		rendered := prog.String()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("rendered program rejected: %v\ninput: %q\nrendered:\n%s", err, src, rendered)
		}
	})
}
