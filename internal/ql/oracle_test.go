package ql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/demo"
	"repro/internal/eurostat"
	"repro/internal/qb4olap"
	"repro/internal/rdf"
)

// oracleCoordinate maps one generated observation to its member IRI at
// the requested level of a dimension, using the generator's geography
// tables — a computation entirely independent of the RDF machinery.
func oracleCoordinate(o eurostat.Observation, d *qb4olap.Dimension, level rdf.Term) (rdf.Term, bool) {
	switch d.BaseLevel {
	case eurostat.PropCitizen:
		switch {
		case level == eurostat.PropCitizen:
			return eurostat.CitizenIRI(o.Citizen), true
		case level == eurostat.PropContinent:
			c, _ := eurostat.CountryByCode(o.Citizen)
			return eurostat.ContinentIRI(c.Continent), true
		case strings.HasSuffix(level.Value, "citizenAll"):
			return rdf.NewIRI("http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#member/citizenAll"), true
		}
	case eurostat.PropGeo:
		switch {
		case level == eurostat.PropGeo:
			return eurostat.GeoIRI(o.Geo), true
		case level == eurostat.PropContinent:
			c, _ := eurostat.CountryByCode(o.Geo)
			return eurostat.ContinentIRI(c.Continent), true
		}
	case eurostat.PropSex:
		if level == eurostat.PropSex {
			return eurostat.SexIRI(o.Sex), true
		}
	case eurostat.PropAge:
		switch level {
		case eurostat.PropAge:
			return eurostat.AgeIRI(o.Age), true
		case eurostat.PropAgeClass:
			for _, g := range eurostat.AgeGroups {
				if g.Code == o.Age {
					return eurostat.AgeClassIRI(g.Class), true
				}
			}
		}
	case eurostat.PropAsylApp:
		if level == eurostat.PropAsylApp {
			return eurostat.AppTypeIRI(o.AppType), true
		}
	case eurostat.PropTime:
		switch level {
		case eurostat.PropTime:
			return eurostat.MonthIRI(o.Year, o.Month), true
		case eurostat.PropQuarter:
			return eurostat.QuarterIRI(o.Year, (o.Month-1)/3+1), true
		case eurostat.PropYear:
			return eurostat.YearIRI(o.Year), true
		}
	}
	return rdf.Term{}, false
}

// oracleCube computes the expected cube for a final analysis state by
// aggregating the raw observations in Go, honouring member-equality
// dices.
func oracleCube(env *demo.Enriched, a *Analysis) (map[string]int64, error) {
	out := make(map[string]int64)
	visible := a.VisibleDims()
	for _, o := range env.Data.Observations {
		keep := true
		for _, cond := range a.Dices {
			mc, ok := cond.(MemberCondition)
			if !ok {
				return nil, fmt.Errorf("oracle only supports member dices, got %T", cond)
			}
			dim, ok := a.Schema.Dimension(mc.Dimension)
			if !ok {
				return nil, fmt.Errorf("oracle: unknown dimension %s", mc.Dimension.Value)
			}
			coord, ok := oracleCoordinate(o, dim, mc.Level)
			if !ok {
				return nil, fmt.Errorf("oracle cannot map dice level %s", mc.Level.Value)
			}
			match := coord == mc.Member
			if mc.Op == CmpNe {
				match = !match
			}
			if !match {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		var key strings.Builder
		for _, ds := range visible {
			coord, ok := oracleCoordinate(o, ds.Dimension, ds.Level)
			if !ok {
				return nil, fmt.Errorf("oracle cannot map level %s of %s", ds.Level.Value, ds.Dimension.IRI.Value)
			}
			key.WriteString(coord.Value)
			key.WriteByte('|')
		}
		out[key.String()] += o.Value
	}
	return out, nil
}

// appendRandomMemberDice extends a random program with a member dice on
// one visible dimension, using the coordinate of a random observation
// so the dice always has a well-defined target.
func appendRandomMemberDice(rng *rand.Rand, env *demo.Enriched, prog *Program, a *Analysis) *Program {
	visible := a.VisibleDims()
	if len(visible) == 0 {
		return prog
	}
	ds := visible[rng.Intn(len(visible))]
	o := env.Data.Observations[rng.Intn(len(env.Data.Observations))]
	member, ok := oracleCoordinate(o, ds.Dimension, ds.Level)
	if !ok {
		return prog
	}
	op := CmpEq
	if rng.Intn(3) == 0 {
		op = CmpNe
	}
	seq := len(prog.Statements)
	prog.Statements = append(prog.Statements, Statement{
		Target: fmt.Sprintf("$C%d", seq+1),
		Input:  fmt.Sprintf("$C%d", seq),
		Op:     OpDice,
		Condition: MemberCondition{
			Dimension: ds.Dimension.IRI,
			Level:     ds.Level,
			Op:        op,
			Member:    member,
		},
	})
	return prog
}

// TestRandomProgramsAgainstOracle executes random valid QL programs
// end to end (simplify → translate → SPARQL engine) and compares every
// cube cell with the independent in-Go aggregation. This ties together
// enrichment, translation, and the engine: any systematic error in
// roll-up navigation, grouping, slicing, or SUM evaluation breaks it.
func TestRandomProgramsAgainstOracle(t *testing.T) {
	env := demoCube(t)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		prog := randomProgram(rng, env)
		a, err := Analyze(prog, env.Schema)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if trial%2 == 0 {
			prog = appendRandomMemberDice(rng, env, prog, a)
			a, err = Analyze(prog, env.Schema)
			if err != nil {
				t.Fatalf("trial %d (dice): %v\n%s", trial, err, prog)
			}
		}
		want, err := oracleCube(env, a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		variant := Direct
		if trial%2 == 1 {
			variant = Alternative
		}
		cube, _, err := Run(env.Client, env.Schema, prog.String(), variant)
		if err != nil {
			t.Fatalf("trial %d (%s): %v\n%s", trial, variant, err, prog)
		}
		if len(cube.Cells) != len(want) {
			t.Fatalf("trial %d (%s): %d cells, oracle %d groups\n%s",
				trial, variant, len(cube.Cells), len(want), prog)
		}
		for _, cell := range cube.Cells {
			var key strings.Builder
			for _, coord := range cell.Coords {
				key.WriteString(coord.Value)
				key.WriteByte('|')
			}
			wantVal, ok := want[key.String()]
			if !ok {
				t.Fatalf("trial %d (%s): unexpected cell %s\n%s", trial, variant, key.String(), prog)
			}
			if got := mustInt(t, cell.Values[0].Value); got != wantVal {
				t.Fatalf("trial %d (%s): cell %s = %d, oracle %d\n%s",
					trial, variant, key.String(), got, wantVal, prog)
			}
		}
	}
}
