package ql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// qlToken kinds.
type qlTokKind int

const (
	qEOF       qlTokKind = iota
	qWord                // bare word: QUERY, PREFIX, ROLLUP, AND, ...
	qVar                 // $C1
	qIRI                 // <...>
	qPName               // prefixed name
	qString              // "..."
	qNumber              // integer or decimal
	qAssign              // :=
	qLParen              // (
	qRParen              // )
	qComma               // ,
	qPipe                // |
	qSemicolon           // ;
	qEq                  // =
	qNe                  // !=
	qLt                  // <
	qGt                  // >
	qLe                  // <=
	qGe                  // >=
)

type qlToken struct {
	kind qlTokKind
	text string
	line int
}

func (t qlToken) String() string {
	if t.kind == qEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type qlLexer struct {
	src  string
	pos  int
	line int
}

func (l *qlLexer) at(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *qlLexer) next() (qlToken, error) {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\r':
			l.pos++
		case '\n':
			l.pos++
			l.line++
		case '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	start := l.line
	if l.pos >= len(l.src) {
		return qlToken{qEOF, "", start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '<':
		// IRI if a '>' appears before whitespace.
		for j := l.pos + 1; j < len(l.src); j++ {
			switch l.src[j] {
			case '>':
				text := l.src[l.pos+1 : j]
				l.pos = j + 1
				return qlToken{qIRI, text, start}, nil
			case ' ', '\t', '\n', '"':
				goto lessThan
			}
		}
	lessThan:
		if l.at(1) == '=' {
			l.pos += 2
			return qlToken{qLe, "<=", start}, nil
		}
		l.pos++
		return qlToken{qLt, "<", start}, nil
	case '>':
		if l.at(1) == '=' {
			l.pos += 2
			return qlToken{qGe, ">=", start}, nil
		}
		l.pos++
		return qlToken{qGt, ">", start}, nil
	case '=':
		l.pos++
		return qlToken{qEq, "=", start}, nil
	case '!':
		if l.at(1) == '=' {
			l.pos += 2
			return qlToken{qNe, "!=", start}, nil
		}
		return qlToken{}, fmt.Errorf("ql: line %d: unexpected '!'", start)
	case ':':
		if l.at(1) == '=' {
			l.pos += 2
			return qlToken{qAssign, ":=", start}, nil
		}
		return qlToken{}, fmt.Errorf("ql: line %d: unexpected ':'", start)
	case '(':
		l.pos++
		return qlToken{qLParen, "(", start}, nil
	case ')':
		l.pos++
		return qlToken{qRParen, ")", start}, nil
	case ',':
		l.pos++
		return qlToken{qComma, ",", start}, nil
	case '|':
		l.pos++
		return qlToken{qPipe, "|", start}, nil
	case ';':
		l.pos++
		return qlToken{qSemicolon, ";", start}, nil
	case '$':
		j := l.pos + 1
		for j < len(l.src) && isQLNameChar(l.src[j]) {
			j++
		}
		if j == l.pos+1 {
			return qlToken{}, fmt.Errorf("ql: line %d: empty cube variable", start)
		}
		text := l.src[l.pos:j]
		l.pos = j
		return qlToken{qVar, text, start}, nil
	case '"':
		j := l.pos + 1
		var b strings.Builder
		for j < len(l.src) {
			if l.src[j] == '\\' && j+1 < len(l.src) {
				b.WriteByte(l.src[j+1])
				j += 2
				continue
			}
			if l.src[j] == '"' {
				text := b.String()
				l.pos = j + 1
				return qlToken{qString, text, start}, nil
			}
			if l.src[j] == '\n' {
				return qlToken{}, fmt.Errorf("ql: line %d: newline in string", start)
			}
			b.WriteByte(l.src[j])
			j++
		}
		return qlToken{}, fmt.Errorf("ql: line %d: unterminated string", start)
	}
	if c >= '0' && c <= '9' || c == '-' {
		j := l.pos
		if c == '-' {
			j++
		}
		digits := 0
		for j < len(l.src) && (l.src[j] >= '0' && l.src[j] <= '9') {
			j++
			digits++
		}
		if j < len(l.src) && l.src[j] == '.' {
			j++
			for j < len(l.src) && (l.src[j] >= '0' && l.src[j] <= '9') {
				j++
			}
		}
		if digits == 0 {
			return qlToken{}, fmt.Errorf("ql: line %d: malformed number", start)
		}
		text := l.src[l.pos:j]
		l.pos = j
		return qlToken{qNumber, text, start}, nil
	}
	// word or prefixed name
	j := l.pos
	colon := false
	for j < len(l.src) {
		ch := l.src[j]
		if ch == ':' && j+1 < len(l.src) && l.src[j+1] == '=' {
			break
		}
		if ch == ':' {
			colon = true
			j++
			continue
		}
		if isQLNameChar(ch) || ch == '.' {
			j++
			continue
		}
		break
	}
	if j == l.pos {
		return qlToken{}, fmt.Errorf("ql: line %d: unexpected character %q", start, c)
	}
	word := l.src[l.pos:j]
	l.pos = j
	if colon {
		return qlToken{qPName, word, start}, nil
	}
	return qlToken{qWord, strings.ToUpper(word), start}, nil
}

func isQLNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

// parser state for QL.
type qlParser struct {
	lex      *qlLexer
	tok      qlToken
	prefixes *rdf.PrefixMap
}

// Parse parses a QL program.
func Parse(src string) (*Program, error) {
	p := &qlParser{lex: &qlLexer{src: src, line: 1}, prefixes: rdf.NewPrefixMap()}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{Prefixes: p.prefixes}

	// Prologue: PREFIX declarations, each optionally terminated by ';'.
	for p.tok.kind == qWord && p.tok.text == "PREFIX" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != qPName || !strings.HasSuffix(p.tok.text, ":") {
			return nil, p.errf("expected prefix name ending in ':'")
		}
		name := strings.TrimSuffix(p.tok.text, ":")
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != qIRI {
			return nil, p.errf("expected namespace IRI")
		}
		p.prefixes.Bind(name, p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == qSemicolon {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}

	// QUERY keyword.
	if p.tok.kind != qWord || p.tok.text != "QUERY" {
		return nil, p.errf("expected QUERY keyword, got %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}

	for p.tok.kind == qVar {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Statements = append(prog.Statements, st)
		if p.tok.kind == qSemicolon {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.tok.kind != qEOF {
		return nil, p.errf("unexpected %s", p.tok)
	}
	if len(prog.Statements) == 0 {
		return nil, fmt.Errorf("ql: empty program")
	}
	return prog, nil
}

func (p *qlParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ql: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *qlParser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *qlParser) expect(k qlTokKind, what string) error {
	if p.tok.kind != k {
		return p.errf("expected %s, got %s", what, p.tok)
	}
	return p.advance()
}

func (p *qlParser) statement() (Statement, error) {
	var st Statement
	st.Target = p.tok.text
	if err := p.advance(); err != nil {
		return st, err
	}
	if err := p.expect(qAssign, "':='"); err != nil {
		return st, err
	}
	if p.tok.kind != qWord {
		return st, p.errf("expected operation, got %s", p.tok)
	}
	switch p.tok.text {
	case "ROLLUP":
		st.Op = OpRollup
	case "DRILLDOWN":
		st.Op = OpDrilldown
	case "SLICE":
		st.Op = OpSlice
	case "DICE":
		st.Op = OpDice
	default:
		return st, p.errf("unknown operation %s", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return st, err
	}
	if err := p.expect(qLParen, "'('"); err != nil {
		return st, err
	}

	// First argument: cube variable or dataset IRI.
	switch p.tok.kind {
	case qVar:
		st.Input = p.tok.text
		if err := p.advance(); err != nil {
			return st, err
		}
	case qIRI, qPName:
		t, err := p.iriTerm()
		if err != nil {
			return st, err
		}
		st.Dataset = t
	default:
		return st, p.errf("expected cube variable or dataset IRI, got %s", p.tok)
	}
	if err := p.expect(qComma, "','"); err != nil {
		return st, err
	}

	switch st.Op {
	case OpSlice:
		dim, err := p.iriTerm()
		if err != nil {
			return st, err
		}
		st.Dimension = dim
	case OpRollup, OpDrilldown:
		dim, err := p.iriTerm()
		if err != nil {
			return st, err
		}
		st.Dimension = dim
		if err := p.expect(qComma, "','"); err != nil {
			return st, err
		}
		lvl, err := p.iriTerm()
		if err != nil {
			return st, err
		}
		st.Level = lvl
	case OpDice:
		cond, err := p.condition()
		if err != nil {
			return st, err
		}
		st.Condition = cond
	}
	return st, p.expect(qRParen, "')'")
}

func (p *qlParser) iriTerm() (rdf.Term, error) {
	switch p.tok.kind {
	case qIRI:
		t := rdf.NewIRI(p.tok.text)
		return t, p.advance()
	case qPName:
		iri, err := p.prefixes.Expand(p.tok.text)
		if err != nil {
			return rdf.Term{}, p.errf("%v", err)
		}
		return rdf.NewIRI(iri), p.advance()
	default:
		return rdf.Term{}, p.errf("expected IRI or prefixed name, got %s", p.tok)
	}
}

// condition parses a DICE condition with OR < AND < NOT precedence.
func (p *qlParser) condition() (Condition, error) {
	left, err := p.andCondition()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == qWord && p.tok.text == "OR" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.andCondition()
		if err != nil {
			return nil, err
		}
		left = BoolCondition{And: false, L: left, R: right}
	}
	return left, nil
}

func (p *qlParser) andCondition() (Condition, error) {
	left, err := p.primaryCondition()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == qWord && p.tok.text == "AND" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.primaryCondition()
		if err != nil {
			return nil, err
		}
		left = BoolCondition{And: true, L: left, R: right}
	}
	return left, nil
}

func (p *qlParser) primaryCondition() (Condition, error) {
	if p.tok.kind == qWord && p.tok.text == "NOT" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.primaryCondition()
		if err != nil {
			return nil, err
		}
		return NotCondition{X: x}, nil
	}
	if p.tok.kind == qLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		c, err := p.condition()
		if err != nil {
			return nil, err
		}
		return c, p.expect(qRParen, "')'")
	}
	return p.atomCondition()
}

// atomCondition parses dim|level|attr CMP value, or measure CMP value.
func (p *qlParser) atomCondition() (Condition, error) {
	first, err := p.iriTerm()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == qPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		level, err := p.iriTerm()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != qPipe {
			// Two-component path: dimension|level op member.
			op, err := p.cmpOp()
			if err != nil {
				return nil, err
			}
			if op != CmpEq && op != CmpNe {
				return nil, p.errf("member conditions support only = and !=")
			}
			val, err := p.value()
			if err != nil {
				return nil, err
			}
			if !val.IsIRI() {
				return nil, p.errf("member conditions compare against an IRI")
			}
			return MemberCondition{Dimension: first, Level: level, Op: op, Member: val}, nil
		}
		if err := p.expect(qPipe, "'|'"); err != nil {
			return nil, err
		}
		attr, err := p.iriTerm()
		if err != nil {
			return nil, err
		}
		op, err := p.cmpOp()
		if err != nil {
			return nil, err
		}
		val, err := p.value()
		if err != nil {
			return nil, err
		}
		return AttrCondition{Dimension: first, Level: level, Attribute: attr, Op: op, Value: val}, nil
	}
	op, err := p.cmpOp()
	if err != nil {
		return nil, err
	}
	val, err := p.value()
	if err != nil {
		return nil, err
	}
	return MeasureCondition{Measure: first, Op: op, Value: val}, nil
}

func (p *qlParser) cmpOp() (CmpOp, error) {
	var op CmpOp
	switch p.tok.kind {
	case qEq:
		op = CmpEq
	case qNe:
		op = CmpNe
	case qLt:
		op = CmpLt
	case qGt:
		op = CmpGt
	case qLe:
		op = CmpLe
	case qGe:
		op = CmpGe
	default:
		return 0, p.errf("expected comparison operator, got %s", p.tok)
	}
	return op, p.advance()
}

func (p *qlParser) value() (rdf.Term, error) {
	switch p.tok.kind {
	case qString:
		t := rdf.NewLiteral(p.tok.text)
		return t, p.advance()
	case qNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return rdf.Term{}, err
		}
		if strings.Contains(text, ".") {
			return rdf.NewTypedLiteral(text, rdf.XSDDecimal), nil
		}
		return rdf.NewTypedLiteral(text, rdf.XSDInteger), nil
	case qIRI, qPName:
		return p.iriTerm()
	default:
		return rdf.Term{}, p.errf("expected value, got %s", p.tok)
	}
}
