package ql

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/demo"
	"repro/internal/eurostat"
	"repro/internal/rdf"
)

// demoOnce builds the enriched demo cube once for the whole package.
var (
	demoOnce sync.Once
	demoEnv  *demo.Enriched
	demoErr  error
)

func demoCube(t *testing.T) *demo.Enriched {
	t.Helper()
	demoOnce.Do(func() {
		cfg := eurostat.TestConfig()
		cfg.TargetObservations = 4000
		demoEnv, demoErr = demo.Build(cfg)
	})
	if demoErr != nil {
		t.Fatal(demoErr)
	}
	return demoEnv
}

// demoQuery is the paper's Section IV example, adapted to the generated
// schema's dimension names.
const demoQuery = `
PREFIX data: <http://eurostat.linked-statistics.org/data/>
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asyl_appDim);
$C2 := ROLLUP ($C1, schema:citizenDim, schema:continent);
$C3 := ROLLUP ($C2, schema:refPeriodDim, schema:year);
$C4 := DICE ($C3, (schema:citizenDim|schema:continent|schema:continentName = "Africa"));
$C5 := DICE ($C4, schema:geoDim|property:geo|schema:countryName = "France");
`

func TestParseDemoQuery(t *testing.T) {
	prog, err := Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Statements) != 5 {
		t.Fatalf("statements = %d", len(prog.Statements))
	}
	if prog.Statements[0].Op != OpSlice || prog.Statements[0].Dataset.IsZero() {
		t.Fatalf("first statement: %+v", prog.Statements[0])
	}
	if prog.Statements[1].Op != OpRollup || prog.Statements[1].Input != "$C1" {
		t.Fatalf("second statement: %+v", prog.Statements[1])
	}
	d4, ok := prog.Statements[3].Condition.(AttrCondition)
	if !ok {
		t.Fatalf("statement 4 condition: %T", prog.Statements[3].Condition)
	}
	if d4.Value != rdf.NewLiteral("Africa") || d4.Op != CmpEq {
		t.Fatalf("condition: %+v", d4)
	}
	if prog.Result() != "$C5" {
		t.Fatalf("result var = %s", prog.Result())
	}
}

func TestParseConditions(t *testing.T) {
	src := `
PREFIX s: <http://s#>
QUERY
$C1 := ROLLUP (<http://ds>, s:d, s:l);
$C2 := DICE ($C1, (s:d|s:l|s:a = "x" AND s:m > 100) OR NOT (s:d|s:l|s:a != "y"));
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cond, ok := prog.Statements[1].Condition.(BoolCondition)
	if !ok || cond.And {
		t.Fatalf("top condition: %#v", prog.Statements[1].Condition)
	}
	inner, ok := cond.L.(BoolCondition)
	if !ok || !inner.And {
		t.Fatalf("left condition: %#v", cond.L)
	}
	if _, ok := inner.R.(MeasureCondition); !ok {
		t.Fatalf("measure condition: %#v", inner.R)
	}
	if _, ok := cond.R.(NotCondition); !ok {
		t.Fatalf("not condition: %#v", cond.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`QUERY`,
		`QUERY $C1 = SLICE (<http://x>, <http://d>);`,
		`QUERY $C1 := FROB (<http://x>, <http://d>);`,
		`QUERY $C1 := SLICE (<http://x> <http://d>);`,
		`QUERY $C1 := ROLLUP (<http://x>, <http://d>);`,
		`QUERY $C1 := DICE (<http://x>, <http://a> = );`,
		`QUERY $C1 := SLICE (nope:x, <http://d>);`,
		`$C1 := SLICE (<http://x>, <http://d>);`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestAnalyzeDemoQuery(t *testing.T) {
	env := demoCube(t)
	prog, err := Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(prog, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.VisibleDims()); got != 5 {
		t.Fatalf("visible dims = %d, want 5 (asyl_app sliced)", got)
	}
	cit := a.States[rdf.NewIRI("http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#citizenDim")]
	if cit.Level != eurostat.PropContinent {
		t.Fatalf("citizen level = %v", cit.Level)
	}
	tdim := a.States[rdf.NewIRI("http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#refPeriodDim")]
	if tdim.Level != eurostat.PropYear {
		t.Fatalf("time level = %v", tdim.Level)
	}
	if len(a.Dices) != 2 {
		t.Fatalf("dices = %d", len(a.Dices))
	}
}

func TestAnalyzeRejectsBadPrograms(t *testing.T) {
	env := demoCube(t)
	cases := []struct {
		name string
		src  string
	}{
		{"op-after-dice", `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := DICE (data:migr_asyappctzm, schema:citizenDim|property:citizen|schema:countryName = "France");
$C2 := SLICE ($C1, schema:sexDim);`},
		{"unknown-dimension", `
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, <http://nope/dim>);`},
		{"unknown-level", `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:citizenDim, <http://nope/level>);`},
		{"drilldown-above", `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := DRILLDOWN (data:migr_asyappctzm, schema:citizenDim, schema:continent);`},
		{"slice-then-use", `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:citizenDim);
$C2 := ROLLUP ($C1, schema:citizenDim, schema:continent);`},
		{"broken-chain", `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C9, schema:ageDim);`},
		{"dice-wrong-level", `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:citizenDim, schema:continent);
$C2 := DICE ($C1, schema:citizenDim|property:citizen|schema:countryName = "France");`},
		{"dice-unknown-attribute", `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := DICE (data:migr_asyappctzm, schema:sexDim|property:sex|<http://nope/attr> = "x");`},
		{"dice-unknown-measure", `
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := DICE (data:migr_asyappctzm, <http://nope/measure> > 5);`},
		{"wrong-dataset", `
QUERY
$C1 := SLICE (<http://other/dataset>, <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#sexDim>);`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := Parse(c.src)
			if err != nil {
				t.Fatalf("parse failed (want analyze failure): %v", err)
			}
			if _, err := Analyze(prog, env.Schema); err == nil {
				t.Error("Analyze succeeded, want error")
			}
		})
	}
}

func TestSimplifyDemoQuery(t *testing.T) {
	env := demoCube(t)
	prog, _ := Parse(demoQuery)
	a, err := Analyze(prog, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	simp := Simplify(a)

	// Slice first, then rollups, then dices.
	kinds := make([]OpKind, len(simp.Statements))
	for i, st := range simp.Statements {
		kinds[i] = st.Op
	}
	phase := 0
	for _, k := range kinds {
		switch k {
		case OpSlice:
			if phase > 0 {
				t.Fatalf("slice after phase %d: %v", phase, kinds)
			}
		case OpRollup:
			if phase > 1 {
				t.Fatalf("rollup after dice: %v", kinds)
			}
			phase = 1
		case OpDice:
			phase = 2
		case OpDrilldown:
			t.Fatalf("drilldown survived simplification: %v", kinds)
		}
	}
	// Re-analysis must give the same final state.
	b, err := Analyze(simp, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, dimIRI := range a.Dims {
		sa, sb := a.States[dimIRI], b.States[dimIRI]
		if sa.Sliced != sb.Sliced || sa.Level != sb.Level {
			t.Errorf("dimension %s: state changed by simplification", dimIRI.Value)
		}
	}
	if len(b.Dices) != len(a.Dices) {
		t.Errorf("dices: %d -> %d", len(a.Dices), len(b.Dices))
	}
}

func TestSimplifyCollapsesRollupDrilldown(t *testing.T) {
	env := demoCube(t)
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:refPeriodDim, schema:quarter);
$C2 := ROLLUP ($C1, schema:refPeriodDim, schema:year);
$C3 := DRILLDOWN ($C2, schema:refPeriodDim, schema:quarter);
$C4 := SLICE ($C3, schema:sexDim);
`
	prog, _ := Parse(src)
	a, err := Analyze(prog, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	simp := Simplify(a)
	// Expect exactly: SLICE(sex), ROLLUP(time -> quarter).
	if len(simp.Statements) != 2 {
		t.Fatalf("simplified statements = %d: %s", len(simp.Statements), simp)
	}
	if simp.Statements[0].Op != OpSlice {
		t.Fatalf("first op = %v", simp.Statements[0].Op)
	}
	if simp.Statements[1].Op != OpRollup || simp.Statements[1].Level != eurostat.PropQuarter {
		t.Fatalf("second op: %+v", simp.Statements[1])
	}
	// The single rollup starts from the data set's bottom level.
	if simp.Statements[0].Dataset.IsZero() {
		t.Fatal("first statement must anchor to the data set")
	}
}

func TestSimplifyIdentityProgram(t *testing.T) {
	env := demoCube(t)
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:refPeriodDim, schema:year);
$C2 := DRILLDOWN ($C1, schema:refPeriodDim, <http://purl.org/linked-data/sdmx/2009/dimension#refPeriod>);
`
	prog, _ := Parse(src)
	a, err := Analyze(prog, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	simp := Simplify(a)
	if len(simp.Statements) != 1 {
		t.Fatalf("identity program should simplify to one anchor statement, got %d", len(simp.Statements))
	}
	if _, err := Analyze(simp, env.Schema); err != nil {
		t.Fatal(err)
	}
}

// TestSimplifyPropertyRandomPrograms (C4) generates random valid
// operation sequences and checks that simplification preserves the
// final cube state.
func TestSimplifyPropertyRandomPrograms(t *testing.T) {
	env := demoCube(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		prog := randomProgram(rng, env)
		a, err := Analyze(prog, env.Schema)
		if err != nil {
			t.Fatalf("trial %d: generated invalid program: %v\n%s", trial, err, prog)
		}
		simp := Simplify(a)
		b, err := Analyze(simp, env.Schema)
		if err != nil {
			t.Fatalf("trial %d: simplified program invalid: %v\n%s", trial, err, simp)
		}
		for _, dimIRI := range a.Dims {
			sa, sb := a.States[dimIRI], b.States[dimIRI]
			if sa.Sliced != sb.Sliced {
				t.Fatalf("trial %d: slicing of %s diverged\noriginal:\n%s\nsimplified:\n%s",
					trial, dimIRI.Value, prog, simp)
			}
			// The granularity of a sliced dimension is irrelevant: it
			// no longer appears in the result cube.
			if !sa.Sliced && sa.Level != sb.Level {
				t.Fatalf("trial %d: level of %s diverged\noriginal:\n%s\nsimplified:\n%s",
					trial, dimIRI.Value, prog, simp)
			}
		}
		// Simplified programs never contain DRILLDOWN and never exceed
		// one rollup per dimension.
		rollups := map[rdf.Term]int{}
		for _, st := range simp.Statements {
			if st.Op == OpDrilldown {
				t.Fatalf("trial %d: drilldown survived", trial)
			}
			if st.Op == OpRollup {
				rollups[st.Dimension]++
			}
		}
		for d, n := range rollups {
			if n > 1 {
				t.Fatalf("trial %d: %d rollups for %s", trial, n, d.Value)
			}
		}
	}
}

// randomProgram builds a random valid (ROLLUP|DRILLDOWN|SLICE)* program
// over the demo schema.
func randomProgram(rng *rand.Rand, env *demo.Enriched) *Program {
	prog := &Program{Prefixes: rdf.NewPrefixMap()}
	type dimCursor struct {
		iri    rdf.Term
		levels []rdf.Term // base..top along the first hierarchy
		pos    int
		sliced bool
	}
	var dims []*dimCursor
	for _, d := range env.Schema.Dimensions {
		levels := []rdf.Term{d.BaseLevel}
		cur := d.BaseLevel
		for {
			step, ok := d.Hierarchies[0].StepFromChild(cur)
			if !ok {
				break
			}
			levels = append(levels, step.Parent)
			cur = step.Parent
		}
		dims = append(dims, &dimCursor{iri: d.IRI, levels: levels})
	}
	n := 1 + rng.Intn(7)
	seq := 0
	for i := 0; i < n; i++ {
		dc := dims[rng.Intn(len(dims))]
		if dc.sliced {
			continue
		}
		var st Statement
		switch rng.Intn(3) {
		case 0: // rollup to a level at or above current
			target := dc.pos + rng.Intn(len(dc.levels)-dc.pos)
			st = Statement{Op: OpRollup, Dimension: dc.iri, Level: dc.levels[target]}
			dc.pos = target
		case 1: // drilldown to a level at or below current
			target := rng.Intn(dc.pos + 1)
			st = Statement{Op: OpDrilldown, Dimension: dc.iri, Level: dc.levels[target]}
			dc.pos = target
		default:
			st = Statement{Op: OpSlice, Dimension: dc.iri}
			dc.sliced = true
		}
		seq++
		st.Target = "$C" + itoa(seq)
		if seq == 1 {
			st.Dataset = env.Schema.DataSet
		} else {
			st.Input = "$C" + itoa(seq-1)
		}
		prog.Statements = append(prog.Statements, st)
	}
	if len(prog.Statements) == 0 {
		prog.Statements = append(prog.Statements, Statement{
			Target: "$C1", Op: OpSlice, Dimension: dims[0].iri, Dataset: env.Schema.DataSet,
		})
	}
	return prog
}

func itoa(n int) string {
	return strings.TrimSpace(strings.Repeat("", 0) + itoaHelper(n))
}

func itoaHelper(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func TestTranslateDemoQuery(t *testing.T) {
	env := demoCube(t)
	p, err := Prepare(demoQuery, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Translation

	// Navigation via the rollup property, grouping, filters.
	for _, want := range []string{
		"qb:dataSet",
		"schemas/migr_asyapp#continent> ?m", // citizenship navigation
		"GROUP BY",
		`STR(?`,
		`"Africa"`,
		`"France"`,
		"ORDER BY",
	} {
		if !strings.Contains(tr.Direct, want) {
			t.Errorf("direct query missing %q:\n%s", want, tr.Direct)
		}
	}
	if !strings.Contains(tr.Alternative, "SELECT") || !strings.Contains(tr.Alternative, "    WHERE {") {
		t.Errorf("alternative query not nested:\n%s", tr.Alternative)
	}
	// Time navigation goes through two steps (month->quarter->year).
	if !strings.Contains(tr.Direct, "#quarter> ?") || !strings.Contains(tr.Direct, "#year> ?") {
		t.Errorf("time navigation missing:\n%s", tr.Direct)
	}
}

func TestTranslationSize(t *testing.T) {
	// C3: the paper notes the demo QL program "translates to more than
	// 30 lines of SPARQL".
	env := demoCube(t)
	p, err := Prepare(demoQuery, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	direct := strings.Count(strings.TrimSpace(p.Translation.Direct), "\n") + 1
	alt := strings.Count(strings.TrimSpace(p.Translation.Alternative), "\n") + 1
	t.Logf("direct: %d lines, alternative: %d lines", direct, alt)
	if direct <= 20 {
		t.Errorf("direct translation suspiciously small: %d lines", direct)
	}
	if alt <= 30 {
		t.Errorf("alternative translation should exceed 30 lines, got %d", alt)
	}
}

// oracleDemoQuery computes the demo query's expected cells directly
// from the generated observations.
func oracleDemoQuery(env *demo.Enriched) map[[4]string]int64 {
	out := make(map[[4]string]int64)
	for _, o := range env.Data.Observations {
		c, _ := eurostat.CountryByCode(o.Citizen)
		if c.Continent != "AF" || o.Geo != "FR" {
			continue
		}
		key := [4]string{"AF", o.Sex, o.Age, itoaHelper(o.Year)}
		out[key] += o.Value
	}
	return out
}

func TestDemoQueryResult(t *testing.T) {
	// C2: the demo query returns applications per year (by sex and age,
	// which the program leaves unsliced) from African citizens whose
	// destination is France, matching an independent in-Go aggregation.
	env := demoCube(t)
	cube, p, err := Run(env.Client, env.Schema, demoQuery, Direct)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleDemoQuery(env)
	if len(cube.Cells) != len(want) {
		t.Fatalf("cells = %d, oracle groups = %d", len(cube.Cells), len(want))
	}
	// Axis order: citizenDim@continent, geoDim@geo, sexDim, ageDim (in
	// schema order) ... find indexes dynamically.
	axisIdx := map[string]int{}
	for i, ax := range cube.Axes {
		axisIdx[localOf(ax.Dimension)] = i
	}
	for _, cell := range cube.Cells {
		year := localOf(cell.Coords[axisIdx["refPeriodDim"]])
		sex := strings.TrimPrefix(localOf(cell.Coords[axisIdx["sexDim"]]), "sex#")
		age := strings.TrimPrefix(localOf(cell.Coords[axisIdx["ageDim"]]), "age#")
		key := [4]string{"AF", sex, age, year}
		wantVal, ok := want[key]
		if !ok {
			t.Errorf("unexpected cell %v", key)
			continue
		}
		if got := cell.Values[0].Value; got != itoa64(wantVal) {
			t.Errorf("cell %v: got %s, want %d", key, got, wantVal)
		}
	}
	// The diced geo coordinate must be France in every cell.
	for _, cell := range cube.Cells {
		if !strings.HasSuffix(cell.Coords[axisIdx["geoDim"]].Value, "geo#FR") {
			t.Fatalf("non-France cell: %v", cell.Coords)
		}
	}
	_ = p
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	s := ""
	for v > 0 {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	if neg {
		s = "-" + s
	}
	return s
}

func TestDirectAndAlternativeAgree(t *testing.T) {
	env := demoCube(t)
	direct, _, err := Run(env.Client, env.Schema, demoQuery, Direct)
	if err != nil {
		t.Fatal(err)
	}
	alt, _, err := Run(env.Client, env.Schema, demoQuery, Alternative)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Cells) != len(alt.Cells) {
		t.Fatalf("direct %d cells, alternative %d cells", len(direct.Cells), len(alt.Cells))
	}
	for i := range direct.Cells {
		for j := range direct.Cells[i].Coords {
			if direct.Cells[i].Coords[j] != alt.Cells[i].Coords[j] {
				t.Fatalf("cell %d coord %d differs", i, j)
			}
		}
		for j := range direct.Cells[i].Values {
			if direct.Cells[i].Values[j] != alt.Cells[i].Values[j] {
				t.Fatalf("cell %d value %d differs: %v vs %v",
					i, j, direct.Cells[i].Values[j], alt.Cells[i].Values[j])
			}
		}
	}
}

func TestMeasureDice(t *testing.T) {
	env := demoCube(t)
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := ROLLUP ($C4, schema:citizenDim, schema:continent);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:year);
$C7 := DICE ($C6, sdmx-measure:obsValue > 1000);
`
	cube, _, err := Run(env.Client, env.Schema, src, Direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) == 0 {
		t.Fatal("measure dice removed everything")
	}
	for _, cell := range cube.Cells {
		if v := cell.Values[0].Value; len(v) < 4 { // > 1000 means at least 4 digits
			t.Fatalf("cell value %s does not satisfy measure dice", v)
		}
	}
	// Both variants must agree under measure dicing too.
	alt, _, err := Run(env.Client, env.Schema, src, Alternative)
	if err != nil {
		t.Fatal(err)
	}
	if len(alt.Cells) != len(cube.Cells) {
		t.Fatalf("variants disagree under HAVING: %d vs %d", len(cube.Cells), len(alt.Cells))
	}
}

func TestSliceAggregatesOut(t *testing.T) {
	env := demoCube(t)
	// Slicing every dimension but time and rolling time to year must
	// give exactly two cells (2013, 2014) whose sum equals the total.
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := SLICE ($C4, schema:citizenDim);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:year);
`
	cube, _, err := Run(env.Client, env.Schema, src, Direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (one per year)", len(cube.Cells))
	}
	var total, wantTotal int64
	for _, cell := range cube.Cells {
		total += mustInt(t, cell.Values[0].Value)
	}
	for _, o := range env.Data.Observations {
		wantTotal += o.Value
	}
	if total != wantTotal {
		t.Fatalf("sum over year cells = %d, want %d", total, wantTotal)
	}
}

func mustInt(t *testing.T, s string) int64 {
	t.Helper()
	var v int64
	neg := false
	for i, r := range s {
		if i == 0 && r == '-' {
			neg = true
			continue
		}
		if r < '0' || r > '9' {
			t.Fatalf("not an integer: %q", s)
		}
		v = v*10 + int64(r-'0')
	}
	if neg {
		v = -v
	}
	return v
}

func TestRollupToAllLevel(t *testing.T) {
	env := demoCube(t)
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := SLICE ($C4, schema:refPeriodDim);
$C6 := ROLLUP ($C5, schema:citizenDim, schema:citizenAll);
`
	cube, _, err := Run(env.Client, env.Schema, src, Direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) != 1 {
		t.Fatalf("all-level rollup cells = %d, want 1", len(cube.Cells))
	}
	var wantTotal int64
	for _, o := range env.Data.Observations {
		wantTotal += o.Value
	}
	if got := mustInt(t, cube.Cells[0].Values[0].Value); got != wantTotal {
		t.Fatalf("grand total = %d, want %d", got, wantTotal)
	}
}

func TestCubeRendering(t *testing.T) {
	env := demoCube(t)
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := ROLLUP ($C4, schema:citizenDim, schema:continent);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:year);
`
	cube, _, err := Run(env.Client, env.Schema, src, Direct)
	if err != nil {
		t.Fatal(err)
	}
	table := cube.Table()
	if !strings.Contains(table, "Africa") {
		t.Errorf("table missing Africa label:\n%s", table)
	}
	pivot := cube.Pivot()
	if !strings.Contains(pivot, "2013") || !strings.Contains(pivot, "2014") {
		t.Errorf("pivot missing year columns:\n%s", pivot)
	}
}

// TestProgramStringRoundTrip re-parses the rendered form of the demo
// program and checks the statements survive.
func TestProgramStringRoundTrip(t *testing.T) {
	prog, err := Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	rendered := prog.String()
	back, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, rendered)
	}
	if len(back.Statements) != len(prog.Statements) {
		t.Fatalf("statement count changed: %d -> %d", len(prog.Statements), len(back.Statements))
	}
	for i := range prog.Statements {
		a, b := prog.Statements[i], back.Statements[i]
		if a.Op != b.Op || a.Dimension != b.Dimension || a.Level != b.Level || a.Dataset != b.Dataset {
			t.Errorf("statement %d changed:\n%s\n%s", i, a, b)
		}
	}
	// Conditions too (compare rendered forms).
	for i := range prog.Statements {
		if prog.Statements[i].Op != OpDice {
			continue
		}
		if formatCondition(prog.Statements[i].Condition) != formatCondition(back.Statements[i].Condition) {
			t.Errorf("condition %d changed", i)
		}
	}
}

func TestEmptyCubeResult(t *testing.T) {
	env := demoCube(t)
	// Dicing on a continent name that does not exist yields zero cells,
	// not an error.
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := SLICE ($C4, schema:refPeriodDim);
$C6 := ROLLUP ($C5, schema:citizenDim, schema:continent);
$C7 := DICE ($C6, schema:citizenDim|schema:continent|schema:continentName = "Atlantis");
`
	cube, _, err := Run(env.Client, env.Schema, src, Direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) != 0 {
		t.Fatalf("cells = %d, want 0", len(cube.Cells))
	}
}

func TestMemberDice(t *testing.T) {
	env := demoCube(t)
	// Dice directly on the Africa member IRI — no attribute needed.
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX dic: <http://eurostat.linked-statistics.org/dic/>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := ROLLUP ($C4, schema:citizenDim, schema:continent);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:year);
$C7 := DICE ($C6, schema:citizenDim|schema:continent = <http://eurostat.linked-statistics.org/dic/continent#AF>);
`
	cube, _, err := Run(env.Client, env.Schema, src, Direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) != 2 { // one per year
		t.Fatalf("cells = %d:\n%s", len(cube.Cells), cube.Table())
	}
	for _, cell := range cube.Cells {
		if !strings.HasSuffix(cell.Coords[0].Value, "continent#AF") {
			t.Fatalf("non-Africa cell: %v", cell.Coords)
		}
	}
	// Oracle check against the string-attribute version.
	attrSrc := strings.Replace(src,
		"schema:citizenDim|schema:continent = <http://eurostat.linked-statistics.org/dic/continent#AF>",
		`schema:citizenDim|schema:continent|schema:continentName = "Africa"`, 1)
	attrCube, _, err := Run(env.Client, env.Schema, attrSrc, Direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrCube.Cells) != len(cube.Cells) {
		t.Fatalf("member dice and attribute dice disagree: %d vs %d", len(cube.Cells), len(attrCube.Cells))
	}
	for i := range cube.Cells {
		if cube.Cells[i].Values[0] != attrCube.Cells[i].Values[0] {
			t.Fatalf("cell %d values differ", i)
		}
	}
	// != member dice excludes exactly that member.
	neSrc := strings.Replace(src, " = <http://", " != <http://", 1)
	neCube, _, err := Run(env.Client, env.Schema, neSrc, Alternative)
	if err != nil {
		t.Fatal(err)
	}
	if len(neCube.Cells) != 8 { // 4 remaining continents × 2 years
		t.Fatalf("!= dice cells = %d:\n%s", len(neCube.Cells), neCube.Table())
	}
}

func TestMemberDiceValidation(t *testing.T) {
	env := demoCube(t)
	// < is not allowed on members.
	if _, err := Parse(`
QUERY
$C1 := DICE (<http://x>, <http://d>|<http://l> < <http://m>);`); err == nil {
		t.Error("member dice with < must fail to parse")
	}
	// Literal member must fail to parse.
	if _, err := Parse(`
QUERY
$C1 := DICE (<http://x>, <http://d>|<http://l> = "notiri");`); err == nil {
		t.Error("member dice against a literal must fail")
	}
	// Level mismatch caught at analysis.
	src := `
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX data: <http://eurostat.linked-statistics.org/data/>
QUERY
$C1 := DICE (data:migr_asyappctzm, schema:citizenDim|schema:continent = <http://eurostat.linked-statistics.org/dic/continent#AF>);
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, env.Schema); err == nil {
		t.Error("member dice at wrong level must fail analysis")
	}
}
