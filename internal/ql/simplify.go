package ql

import (
	"fmt"

	"repro/internal/rdf"
)

// Simplify implements the Query Simplification phase. It applies the
// two optimization rules from the paper:
//
//	(a) perform SLICE operations as soon as possible, to reduce the
//	    size of intermediate results; and
//	(b) group all the ROLLUP and DRILLDOWN operations over the same
//	    dimension and replace them with a single ROLLUP from the
//	    dimension's bottom level to the latest level reached.
//
// The input must already have passed Analyze; the simplified program is
// rebuilt from the analysis' final cube state, so redundant operations
// (e.g. a rollup later drilled all the way back down) disappear
// entirely. Cube variables are renumbered $C1, $C2, ...
func Simplify(a *Analysis) *Program {
	out := &Program{Prefixes: a.Program.Prefixes}
	seq := 0
	prev := ""
	emit := func(st Statement) {
		seq++
		st.Target = fmt.Sprintf("$C%d", seq)
		if seq == 1 {
			st.Input = ""
			st.Dataset = a.Dataset
		} else {
			st.Input = prev
			st.Dataset = rdf.Term{}
		}
		prev = st.Target
		out.Statements = append(out.Statements, st)
	}

	// Rule (a): slices first, in dimension order.
	for _, dimIRI := range a.Dims {
		if a.States[dimIRI].Sliced {
			emit(Statement{Op: OpSlice, Dimension: dimIRI})
		}
	}
	// Rule (b): one rollup per dimension that ends above its base.
	for _, dimIRI := range a.Dims {
		st := a.States[dimIRI]
		if st.Sliced || st.Level == st.Dimension.BaseLevel {
			continue
		}
		emit(Statement{Op: OpRollup, Dimension: dimIRI, Level: st.Level})
	}
	// Dices keep their original order at the end.
	for _, cond := range a.Dices {
		emit(Statement{Op: OpDice, Condition: cond})
	}

	// Degenerate case: a program whose net effect is the identity
	// still needs one statement to name the result cube; represent it
	// as a rollup of the first dimension to its own base level.
	if len(out.Statements) == 0 && len(a.Dims) > 0 {
		st := a.States[a.Dims[0]]
		emit(Statement{Op: OpRollup, Dimension: a.Dims[0], Level: st.Dimension.BaseLevel})
	}
	return out
}
