package ql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/qb4olap"
	"repro/internal/rdf"
)

// Translation holds the two semantically equivalent SPARQL queries the
// Query Translation phase produces: the direct translation and an
// alternative that nests the aggregation in a subquery — the paper's
// heuristic for endpoints that handle flat GROUP BY queries poorly.
type Translation struct {
	Direct      string
	Alternative string

	// Selection records how an Auto execution chose between the two
	// queries; nil until an Auto Execute/Run resolves (or a caller runs
	// Choose itself). Cached: a second Auto execution of the same
	// Translation reuses the decision.
	Selection *Selection

	// GroupVars are the SPARQL variable names of the member columns,
	// parallel to Analysis.VisibleDims().
	GroupVars []string
	// LabelVars are the label column names, parallel to GroupVars.
	LabelVars []string
	// MeasureVars are the aggregated measure column names, parallel to
	// Analysis.Schema.Measures.
	MeasureVars []string

	Analysis *Analysis
}

// dimPlan is the per-dimension navigation plan: the variable chain from
// the observation's base member up to the grouping member.
type dimPlan struct {
	state    *DimState
	index    int
	baseVar  string
	groupVar string
	labelVar string
	steps    []qb4olap.HierarchyStep
}

// Translate implements the Query Translation phase over an analyzed
// (and usually simplified) program.
func Translate(a *Analysis) (*Translation, error) {
	t := &Translation{Analysis: a}

	var plans []dimPlan
	for i, ds := range a.VisibleDims() {
		p := dimPlan{
			state:   ds,
			index:   i,
			baseVar: fmt.Sprintf("m%d_0", i+1),
		}
		steps, ok := ds.Dimension.PathToLevel(ds.Level)
		if !ok {
			return nil, fmt.Errorf("ql: no roll-up path from %s to %s", ds.Dimension.BaseLevel.Value, ds.Level.Value)
		}
		p.steps = steps
		p.groupVar = fmt.Sprintf("m%d_%d", i+1, len(steps))
		p.labelVar = fmt.Sprintf("l%d", i+1)
		plans = append(plans, p)
		t.GroupVars = append(t.GroupVars, p.groupVar)
		t.LabelVars = append(t.LabelVars, p.labelVar)
	}
	for i := range a.Schema.Measures {
		t.MeasureVars = append(t.MeasureVars, fmt.Sprintf("ag%d", i+1))
	}

	// Shared basic graph pattern: observation spine plus roll-up
	// navigation per visible dimension. ROLLUPs navigate the roll-up
	// relationships between members guided by the hierarchy metadata;
	// each step is a SPARQL graph pattern (a join).
	var bgp strings.Builder
	bgp.WriteString("  ?o qb:dataSet <" + a.Dataset.Value + "> .\n")
	for i, m := range a.Schema.Measures {
		fmt.Fprintf(&bgp, "  ?o <%s> ?v%d .\n", m.Property.Value, i+1)
	}
	for _, p := range plans {
		fmt.Fprintf(&bgp, "  ?o <%s> ?%s .\n", p.state.Dimension.BaseLevel.Value, p.baseVar)
		cur := p.baseVar
		for j, st := range p.steps {
			next := fmt.Sprintf("m%d_%d", p.index+1, j+1)
			fmt.Fprintf(&bgp, "  ?%s <%s> ?%s .\n", cur, st.Rollup.Value, next)
			cur = next
		}
	}

	lookup := make(map[rdf.Term]*dimPlan, len(plans))
	for i := range plans {
		lookup[plans[i].state.Dimension.IRI] = &plans[i]
	}

	// Classify dice conditions: pure measure conditions become HAVING
	// (they constrain the aggregated cell); attribute conditions become
	// FILTERs over attribute values.
	var filters, havings []string
	for _, cond := range a.Dices {
		expr, usesMeasure, err := t.renderCondition(cond, lookup)
		if err != nil {
			return nil, err
		}
		if usesMeasure {
			havings = append(havings, expr)
		} else {
			filters = append(filters, expr)
		}
	}

	// Attribute patterns needed by the filters: one triple per
	// (dimension, attribute) pair referenced in a condition.
	attrPatterns := map[string]string{}
	collectAttrPatterns(a, lookup, attrPatterns)

	t.Direct = t.renderDirect(bgp.String(), plans, filters, havings, attrPatterns)
	t.Alternative = t.renderAlternative(bgp.String(), plans, filters, havings, attrPatterns)
	return t, nil
}

// attrVar names the variable bound to an attribute of a dimension's
// group member.
func attrVar(dimIndex int, attr rdf.Term) string {
	return fmt.Sprintf("a%d_%s", dimIndex+1, sanitize(localOf(attr)))
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func localOf(t rdf.Term) string {
	v := t.Value
	if i := strings.LastIndexAny(v, "#/"); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

// collectAttrPatterns walks all dice conditions recording the triple
// patterns that bind attribute variables.
func collectAttrPatterns(a *Analysis, lookup map[rdf.Term]*dimPlan, out map[string]string) {
	var walk func(Condition)
	walk = func(c Condition) {
		switch x := c.(type) {
		case AttrCondition:
			p, ok := lookup[x.Dimension]
			if !ok {
				return
			}
			v := attrVar(p.index, x.Attribute)
			out[v] = fmt.Sprintf("  ?%s <%s> ?%s .", p.groupVar, x.Attribute.Value, v)
		case BoolCondition:
			walk(x.L)
			walk(x.R)
		case NotCondition:
			walk(x.X)
		}
	}
	for _, c := range a.Dices {
		walk(c)
	}
}

// renderCondition renders a condition to a SPARQL boolean expression.
// usesMeasure reports whether it references aggregated measures (and
// therefore must go to HAVING / the outer filter of the alternative
// form).
func (t *Translation) renderCondition(c Condition, lookup map[rdf.Term]*dimPlan) (string, bool, error) {
	switch x := c.(type) {
	case AttrCondition:
		p, ok := lookup[x.Dimension]
		if !ok {
			return "", false, fmt.Errorf("ql: condition on invisible dimension %s", x.Dimension.Value)
		}
		v := attrVar(p.index, x.Attribute)
		lhs := "?" + v
		rhs := renderValue(x.Value)
		if x.Value.IsLiteral() && (x.Value.Datatype == "" || x.Value.Datatype == rdf.XSDString) {
			// String comparisons go through STR() so language-tagged
			// labels still match plain string constants.
			lhs = "STR(?" + v + ")"
		}
		return fmt.Sprintf("%s %s %s", lhs, x.Op, rhs), false, nil
	case MemberCondition:
		p, ok := lookup[x.Dimension]
		if !ok {
			return "", false, fmt.Errorf("ql: condition on invisible dimension %s", x.Dimension.Value)
		}
		return fmt.Sprintf("?%s %s <%s>", p.groupVar, x.Op, x.Member.Value), false, nil
	case MeasureCondition:
		idx := -1
		for i, m := range t.Analysis.Schema.Measures {
			if m.Property == x.Measure {
				idx = i
			}
		}
		if idx < 0 {
			return "", false, fmt.Errorf("ql: unknown measure %s", x.Measure.Value)
		}
		m := t.Analysis.Schema.Measures[idx]
		agg := fmt.Sprintf("%s(?v%d)", m.Agg.SPARQL(), idx+1)
		return fmt.Sprintf("%s %s %s", agg, x.Op, renderValue(x.Value)), true, nil
	case BoolCondition:
		l, lm, err := t.renderCondition(x.L, lookup)
		if err != nil {
			return "", false, err
		}
		r, rm, err := t.renderCondition(x.R, lookup)
		if err != nil {
			return "", false, err
		}
		if lm != rm {
			return "", false, fmt.Errorf("ql: cannot mix measure and attribute conditions inside one boolean expression")
		}
		op := "||"
		if x.And {
			op = "&&"
		}
		return fmt.Sprintf("(%s %s %s)", l, op, r), lm, nil
	case NotCondition:
		inner, m, err := t.renderCondition(x.X, lookup)
		if err != nil {
			return "", false, err
		}
		return fmt.Sprintf("(!%s)", inner), m, nil
	default:
		return "", false, fmt.Errorf("ql: unknown condition %T", c)
	}
}

func renderValue(v rdf.Term) string {
	if v.IsIRI() {
		return "<" + v.Value + ">"
	}
	return v.String()
}

// renderDirect produces the flat single-SELECT translation: BGP +
// attribute patterns + FILTER + GROUP BY + HAVING.
func (t *Translation) renderDirect(bgp string, plans []dimPlan, filters, havings []string, attrPatterns map[string]string) string {
	var b strings.Builder
	b.WriteString("PREFIX qb: <http://purl.org/linked-data/cube#>\n")
	b.WriteString("PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n")
	b.WriteString("SELECT")
	for _, p := range plans {
		fmt.Fprintf(&b, " ?%s (SAMPLE(?lbl%d) AS ?%s)", p.groupVar, p.index+1, p.labelVar)
	}
	for i, m := range t.Analysis.Schema.Measures {
		fmt.Fprintf(&b, " (%s(?v%d) AS ?%s)", m.Agg.SPARQL(), i+1, t.MeasureVars[i])
	}
	b.WriteString("\nWHERE {\n")
	b.WriteString(bgp)
	for _, v := range sortedKeys(attrPatterns) {
		b.WriteString(attrPatterns[v])
		b.WriteByte('\n')
	}
	for _, p := range plans {
		fmt.Fprintf(&b, "  OPTIONAL { ?%s rdfs:label ?lbl%d }\n", p.groupVar, p.index+1)
	}
	for _, f := range filters {
		fmt.Fprintf(&b, "  FILTER(%s)\n", f)
	}
	b.WriteString("}\n")
	if len(plans) > 0 {
		b.WriteString("GROUP BY")
		for _, p := range plans {
			fmt.Fprintf(&b, " ?%s", p.groupVar)
		}
		b.WriteByte('\n')
	}
	for _, h := range havings {
		fmt.Fprintf(&b, "HAVING (%s)\n", h)
	}
	if len(plans) > 0 {
		b.WriteString("ORDER BY")
		for _, p := range plans {
			fmt.Fprintf(&b, " ?%s", p.groupVar)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// renderAlternative produces the subquery translation: the aggregation
// runs in an inner SELECT over the raw observation pattern; attribute
// joins, dice filters, labels, and measure filters apply outside. This
// mirrors the paper's alternative query "generated using optimization
// heuristics thought to deal with some of the typical limitations of
// SPARQL endpoints".
func (t *Translation) renderAlternative(bgp string, plans []dimPlan, filters, havings []string, attrPatterns map[string]string) string {
	var b strings.Builder
	b.WriteString("PREFIX qb: <http://purl.org/linked-data/cube#>\n")
	b.WriteString("PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n")
	b.WriteString("SELECT")
	for _, p := range plans {
		fmt.Fprintf(&b, " ?%s (SAMPLE(?lbl%d) AS ?%s)", p.groupVar, p.index+1, p.labelVar)
	}
	for i := range t.MeasureVars {
		fmt.Fprintf(&b, " (SAMPLE(?iag%d) AS ?%s)", i+1, t.MeasureVars[i])
	}
	b.WriteString("\nWHERE {\n")
	b.WriteString("  {\n")
	b.WriteString("    SELECT")
	for _, p := range plans {
		fmt.Fprintf(&b, " ?%s", p.groupVar)
	}
	for i, m := range t.Analysis.Schema.Measures {
		fmt.Fprintf(&b, " (%s(?v%d) AS ?iag%d)", m.Agg.SPARQL(), i+1, i+1)
	}
	b.WriteString("\n    WHERE {\n")
	for _, line := range strings.Split(strings.TrimRight(bgp, "\n"), "\n") {
		b.WriteString("    " + line + "\n")
	}
	b.WriteString("    }\n")
	if len(plans) > 0 {
		b.WriteString("    GROUP BY")
		for _, p := range plans {
			fmt.Fprintf(&b, " ?%s", p.groupVar)
		}
		b.WriteByte('\n')
	}
	b.WriteString("  }\n")
	for _, v := range sortedKeys(attrPatterns) {
		b.WriteString(attrPatterns[v])
		b.WriteByte('\n')
	}
	for _, p := range plans {
		fmt.Fprintf(&b, "  OPTIONAL { ?%s rdfs:label ?lbl%d }\n", p.groupVar, p.index+1)
	}
	for _, f := range filters {
		fmt.Fprintf(&b, "  FILTER(%s)\n", f)
	}
	for _, h := range havings {
		// Measure conditions reference the inner aggregate variable in
		// the outer scope.
		for j, m := range t.Analysis.Schema.Measures {
			h = strings.ReplaceAll(h, fmt.Sprintf("%s(?v%d)", m.Agg.SPARQL(), j+1), fmt.Sprintf("?iag%d", j+1))
		}
		fmt.Fprintf(&b, "  FILTER(%s)\n", h)
	}
	b.WriteString("}\n")
	if len(plans) > 0 {
		b.WriteString("GROUP BY")
		for _, p := range plans {
			fmt.Fprintf(&b, " ?%s", p.groupVar)
		}
		for i := range t.MeasureVars {
			fmt.Fprintf(&b, " ?iag%d", i+1)
		}
		b.WriteByte('\n')
		b.WriteString("ORDER BY")
		for _, p := range plans {
			fmt.Fprintf(&b, " ?%s", p.groupVar)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
