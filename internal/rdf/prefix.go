package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PrefixMap maps namespace prefixes to IRI namespaces, used for
// expanding prefixed names during parsing and compacting IRIs during
// serialization.
type PrefixMap struct {
	byPrefix map[string]string
}

// NewPrefixMap returns an empty prefix map.
func NewPrefixMap() *PrefixMap {
	return &PrefixMap{byPrefix: make(map[string]string)}
}

// Bind associates prefix with the namespace IRI, replacing any earlier
// binding.
func (m *PrefixMap) Bind(prefix, ns string) {
	if m.byPrefix == nil {
		m.byPrefix = make(map[string]string)
	}
	m.byPrefix[prefix] = ns
}

// Namespace returns the namespace bound to prefix, if any.
func (m *PrefixMap) Namespace(prefix string) (string, bool) {
	ns, ok := m.byPrefix[prefix]
	return ns, ok
}

// Expand resolves a prefixed name like "qb:dimension" to a full IRI.
func (m *PrefixMap) Expand(pname string) (string, error) {
	i := strings.Index(pname, ":")
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is not a prefixed name", pname)
	}
	ns, ok := m.byPrefix[pname[:i]]
	if !ok {
		return "", fmt.Errorf("rdf: unknown prefix %q", pname[:i])
	}
	return ns + pname[i+1:], nil
}

// Compact rewrites an IRI using the longest matching namespace, or
// returns ("", false) when no namespace applies or the local part is not
// a valid PN_LOCAL fragment.
func (m *PrefixMap) Compact(iri string) (string, bool) {
	bestPrefix, bestNS := "", ""
	for p, ns := range m.byPrefix {
		if strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) {
			bestPrefix, bestNS = p, ns
		}
	}
	if bestNS == "" {
		return "", false
	}
	local := iri[len(bestNS):]
	if !validLocalPart(local) {
		return "", false
	}
	return bestPrefix + ":" + local, true
}

// Prefixes returns the bound prefixes in sorted order.
func (m *PrefixMap) Prefixes() []string {
	out := make([]string, 0, len(m.byPrefix))
	for p := range m.byPrefix {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy.
func (m *PrefixMap) Clone() *PrefixMap {
	c := NewPrefixMap()
	for p, ns := range m.byPrefix {
		c.byPrefix[p] = ns
	}
	return c
}

// validLocalPart accepts a conservative subset of Turtle PN_LOCAL:
// letters, digits, '_', '-', '.', and '%' escapes; it must not be empty,
// start with '-' or '.', or end with '.'.
func validLocalPart(s string) bool {
	if s == "" {
		return true // empty local part (e.g. "qb:") is legal
	}
	if s[0] == '-' || s[0] == '.' || s[len(s)-1] == '.' {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_' || r == '-' || r == '.':
		case r > 127: // permit non-ASCII name chars
		default:
			return false
		}
	}
	return true
}
