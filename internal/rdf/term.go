// Package rdf provides the core RDF data model used throughout the
// repository: terms (IRIs, literals, blank nodes), triples, quads, and
// in-memory graphs.
//
// The model follows the RDF 1.1 abstract syntax. Terms are small value
// types designed to be cheap to copy and usable as map keys.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the concrete kind of a Term.
type TermKind uint8

// The possible kinds of RDF term.
const (
	// KindInvalid is the zero TermKind; it marks an uninitialized Term.
	KindInvalid TermKind = iota
	// KindIRI is an IRI reference such as <http://example.org/a>.
	KindIRI
	// KindLiteral is an RDF literal, optionally carrying a datatype IRI
	// or a language tag.
	KindLiteral
	// KindBlank is a blank node with a document-scoped label.
	KindBlank
)

func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "IRI"
	case KindLiteral:
		return "Literal"
	case KindBlank:
		return "BlankNode"
	default:
		return "Invalid"
	}
}

// Term is a single RDF term. The zero value is invalid.
//
// Representation: Value holds the IRI string, the literal lexical form,
// or the blank node label. For literals, Datatype holds the datatype IRI
// (empty means xsd:string per RDF 1.1) and Lang holds the language tag
// (non-empty implies datatype rdf:langString).
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewBlank returns a blank node term with the given label (without the
// "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// NewLiteral returns a plain literal, which in RDF 1.1 has datatype
// xsd:string.
func NewLiteral(lexical string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: XSDString}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal (datatype
// rdf:langString).
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: RDFLangString, Lang: lang}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return Term{Kind: KindLiteral, Value: fmt.Sprintf("%d", v), Datatype: XSDInteger}
}

// NewDecimal returns an xsd:decimal literal from a formatted value.
func NewDecimal(lexical string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: XSDDecimal}
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Term {
	return Term{Kind: KindLiteral, Value: formatFloat(v), Datatype: XSDDouble}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	if v {
		return Term{Kind: KindLiteral, Value: "true", Datatype: XSDBoolean}
	}
	return Term{Kind: KindLiteral, Value: "false", Datatype: XSDBoolean}
}

// Well-known datatype IRIs used across the code base.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDFloat    = "http://www.w3.org/2001/XMLSchema#float"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate     = "http://www.w3.org/2001/XMLSchema#date"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	XSDGYear    = "http://www.w3.org/2001/XMLSchema#gYear"
	XSDGYMonth  = "http://www.w3.org/2001/XMLSchema#gYearMonth"

	RDFLangString = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"
)

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsZero reports whether the term is the zero (invalid) term.
func (t Term) IsZero() bool { return t.Kind == KindInvalid }

// Equal reports term equality per RDF 1.1 (same kind, value, datatype,
// and language tag).
func (t Term) Equal(o Term) bool { return t == o }

// Compare orders terms deterministically: blanks < IRIs < literals, then
// by value, datatype, and language. Useful for stable serialization and
// test output.
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		return sortRank(t.Kind) - sortRank(o.Kind)
	}
	if c := strings.Compare(t.Value, o.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, o.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, o.Lang)
}

// sortRank orders term kinds for Compare: blanks < IRIs < literals,
// matching the ordering SPARQL uses for ORDER BY.
func sortRank(k TermKind) int {
	switch k {
	case KindBlank:
		return 1
	case KindIRI:
		return 2
	case KindLiteral:
		return 3
	default:
		return 0
	}
}

// String renders the term in N-Triples-like syntax, primarily for
// debugging and error messages.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindLiteral:
		s := quoteLiteral(t.Value)
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	default:
		return "<invalid>"
	}
}

func quoteLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	// xsd:double lexical forms need an exponent or decimal point to
	// round-trip; %g may emit a bare integer like "3".
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "NaN") && !strings.Contains(s, "Inf") {
		s += ".0"
	}
	return s
}
