package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	cases := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", NewIRI("http://example.org/a"), KindIRI, "<http://example.org/a>"},
		{"blank", NewBlank("b0"), KindBlank, "_:b0"},
		{"plain", NewLiteral("hi"), KindLiteral, `"hi"`},
		{"typed", NewTypedLiteral("5", XSDInteger), KindLiteral, `"5"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{"lang", NewLangLiteral("bonjour", "fr"), KindLiteral, `"bonjour"@fr`},
		{"int", NewInteger(-42), KindLiteral, `"-42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{"bool", NewBoolean(true), KindLiteral, `"true"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.term.Kind != c.kind {
				t.Fatalf("kind = %v, want %v", c.term.Kind, c.kind)
			}
			if got := c.term.String(); got != c.str {
				t.Fatalf("String() = %s, want %s", got, c.str)
			}
		})
	}
}

func TestTermPredicates(t *testing.T) {
	iri := NewIRI("http://x/a")
	lit := NewLiteral("v")
	bn := NewBlank("n")
	var zero Term
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Error("IRI predicates wrong")
	}
	if !lit.IsLiteral() || lit.IsIRI() {
		t.Error("literal predicates wrong")
	}
	if !bn.IsBlank() {
		t.Error("blank predicates wrong")
	}
	if !zero.IsZero() || iri.IsZero() {
		t.Error("zero predicates wrong")
	}
}

func TestTermEqualityAndCompare(t *testing.T) {
	a := NewLiteral("x")
	b := NewLiteral("x")
	if !a.Equal(b) {
		t.Error("identical literals must be equal")
	}
	if a.Equal(NewLangLiteral("x", "en")) {
		t.Error("lang-tagged literal must differ from plain")
	}
	if a.Equal(NewTypedLiteral("x", XSDInteger)) {
		t.Error("typed literal must differ from plain")
	}
	if NewIRI("a").Compare(NewIRI("b")) >= 0 {
		t.Error("IRI a should sort before b")
	}
	if NewBlank("z").Compare(NewIRI("a")) >= 0 {
		t.Error("blanks sort before IRIs")
	}
	if NewIRI("z").Compare(NewLiteral("a")) >= 0 {
		t.Error("IRIs sort before literals")
	}
	if a.Compare(b) != 0 {
		t.Error("equal terms compare 0")
	}
}

func TestLiteralQuoting(t *testing.T) {
	l := NewLiteral("a\"b\\c\nd\te\rf")
	want := `"a\"b\\c\nd\te\rf"`
	if got := l.String(); got != want {
		t.Fatalf("String() = %s, want %s", got, want)
	}
}

func TestDoubleFormat(t *testing.T) {
	if got := NewDouble(3).Value; got != "3.0" {
		t.Errorf("NewDouble(3) = %q, want 3.0", got)
	}
	if got := NewDouble(2.5).Value; got != "2.5" {
		t.Errorf("NewDouble(2.5) = %q", got)
	}
	if got := NewDouble(1e30).Value; got != "1e+30" {
		t.Errorf("NewDouble(1e30) = %q", got)
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b string) bool {
		x, y := NewLiteral(a), NewLiteral(b)
		return x.Compare(y) == -y.Compare(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTripleValidAndString(t *testing.T) {
	s := NewIRI("http://x/s")
	p := NewIRI("http://x/p")
	o := NewLiteral("o")
	tr := NewTriple(s, p, o)
	if !tr.Valid() {
		t.Error("triple should be valid")
	}
	if got := tr.String(); got != `<http://x/s> <http://x/p> "o"` {
		t.Errorf("String() = %s", got)
	}
	if NewTriple(o, p, s).Valid() {
		t.Error("literal subject must be invalid")
	}
	if NewTriple(s, o, s).Valid() {
		t.Error("literal predicate must be invalid")
	}
	if NewTriple(NewBlank("b"), p, o).Valid() != true {
		t.Error("blank subject is valid")
	}
}

func TestQuad(t *testing.T) {
	s, p, o := NewIRI("s"), NewIRI("p"), NewIRI("o")
	q := NewQuad(s, p, o, Term{})
	if !q.InDefaultGraph() {
		t.Error("zero graph term means default graph")
	}
	g := NewIRI("http://x/g")
	q2 := NewQuad(s, p, o, g)
	if q2.InDefaultGraph() {
		t.Error("named graph quad misreported")
	}
	if q2.Triple() != NewTriple(s, p, o) {
		t.Error("Triple() lost content")
	}
	if q2.String() != "<s> <p> <o> <http://x/g>" {
		t.Errorf("String() = %s", q2.String())
	}
}

func TestGraphAddHasMatch(t *testing.T) {
	g := NewGraph()
	s, p := NewIRI("s"), NewIRI("p")
	t1 := NewTriple(s, p, NewLiteral("1"))
	t2 := NewTriple(s, p, NewLiteral("2"))
	if !g.Add(t1) {
		t.Error("first Add must report true")
	}
	if g.Add(t1) {
		t.Error("duplicate Add must report false")
	}
	g.Add(t2)
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	if !g.Has(t1) || g.Has(NewTriple(p, p, p)) {
		t.Error("Has wrong")
	}
	if got := len(g.Match(s, Term{}, Term{})); got != 2 {
		t.Errorf("Match subject wildcard = %d, want 2", got)
	}
	if got := len(g.Match(Term{}, Term{}, NewLiteral("2"))); got != 1 {
		t.Errorf("Match object = %d, want 1", got)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := NewGraph()
	s, p, q := NewIRI("s"), NewIRI("p"), NewIRI("q")
	g.AddAll([]Triple{
		NewTriple(s, p, NewLiteral("a")),
		NewTriple(s, p, NewLiteral("b")),
		NewTriple(s, q, NewLiteral("c")),
	})
	if got := g.Object(s, p); got != NewLiteral("a") {
		t.Errorf("Object = %v", got)
	}
	if got := g.Object(s, NewIRI("missing")); !got.IsZero() {
		t.Errorf("missing Object = %v, want zero", got)
	}
	if got := len(g.Objects(s, p)); got != 2 {
		t.Errorf("Objects = %d, want 2", got)
	}
	subs := g.Subjects(p, NewLiteral("a"))
	if len(subs) != 1 || subs[0] != s {
		t.Errorf("Subjects = %v", subs)
	}
}

func TestGraphZeroValueUsable(t *testing.T) {
	var g Graph
	if !g.Add(NewTriple(NewIRI("s"), NewIRI("p"), NewIRI("o"))) {
		t.Error("Add on zero-value Graph must work")
	}
	if g.Len() != 1 {
		t.Error("zero-value graph lost triple")
	}
}

func TestPrefixMapExpandCompact(t *testing.T) {
	m := NewPrefixMap()
	m.Bind("qb", "http://purl.org/linked-data/cube#")
	m.Bind("", "http://example.org/")

	iri, err := m.Expand("qb:dimension")
	if err != nil || iri != "http://purl.org/linked-data/cube#dimension" {
		t.Fatalf("Expand = %q, %v", iri, err)
	}
	iri, err = m.Expand(":thing")
	if err != nil || iri != "http://example.org/thing" {
		t.Fatalf("Expand default = %q, %v", iri, err)
	}
	if _, err := m.Expand("nope:x"); err == nil {
		t.Error("unknown prefix must error")
	}
	if _, err := m.Expand("noprefix"); err == nil {
		t.Error("name without colon must error")
	}

	pn, ok := m.Compact("http://purl.org/linked-data/cube#measure")
	if !ok || pn != "qb:measure" {
		t.Fatalf("Compact = %q, %v", pn, ok)
	}
	if _, ok := m.Compact("urn:other"); ok {
		t.Error("Compact must fail for unbound namespace")
	}
	// Local parts with characters outside PN_LOCAL cannot be compacted.
	if _, ok := m.Compact("http://example.org/a/b"); ok {
		t.Error("slash in local part must prevent compaction")
	}
}

func TestPrefixMapLongestMatchAndClone(t *testing.T) {
	m := NewPrefixMap()
	m.Bind("a", "http://x/")
	m.Bind("b", "http://x/deep/")
	pn, ok := m.Compact("http://x/deep/leaf")
	if !ok || pn != "b:leaf" {
		t.Fatalf("Compact longest = %q %v", pn, ok)
	}
	c := m.Clone()
	c.Bind("a", "http://changed/")
	if ns, _ := m.Namespace("a"); ns != "http://x/" {
		t.Error("Clone must not alias")
	}
	if got := len(m.Prefixes()); got != 2 {
		t.Errorf("Prefixes = %d, want 2", got)
	}
}

func TestTripleCompareOrdering(t *testing.T) {
	a := NewTriple(NewIRI("a"), NewIRI("p"), NewLiteral("1"))
	b := NewTriple(NewIRI("b"), NewIRI("p"), NewLiteral("1"))
	c := NewTriple(NewIRI("a"), NewIRI("q"), NewLiteral("1"))
	d := NewTriple(NewIRI("a"), NewIRI("p"), NewLiteral("2"))
	if a.Compare(b) >= 0 || a.Compare(c) >= 0 || a.Compare(d) >= 0 {
		t.Error("subject/predicate/object ordering broken")
	}
	if a.Compare(a) != 0 {
		t.Error("self comparison must be 0")
	}
	if b.Compare(a) <= 0 {
		t.Error("antisymmetry broken")
	}
}

func TestGraphString(t *testing.T) {
	g := NewGraph()
	g.Add(NewTriple(NewIRI("s"), NewIRI("p"), NewLiteral("o")))
	want := "<s> <p> \"o\" .\n"
	if got := g.String(); got != want {
		t.Errorf("Graph.String() = %q, want %q", got, want)
	}
}

func TestTermKindString(t *testing.T) {
	names := map[TermKind]string{
		KindIRI: "IRI", KindLiteral: "Literal", KindBlank: "BlankNode", KindInvalid: "Invalid",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %s, want %s", k, k.String(), want)
		}
	}
}
