package rdf

import "strings"

// Triple is an RDF triple: subject, predicate, object.
type Triple struct {
	S, P, O Term
}

// NewTriple constructs a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// Valid reports whether the triple is well-formed per RDF 1.1: subject
// must be an IRI or blank node, predicate an IRI, object any term.
func (t Triple) Valid() bool {
	return (t.S.IsIRI() || t.S.IsBlank()) && t.P.IsIRI() && !t.O.IsZero()
}

// String renders the triple in N-Triples syntax (without trailing dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// Compare orders triples by subject, predicate, object.
func (t Triple) Compare(o Triple) int {
	if c := t.S.Compare(o.S); c != 0 {
		return c
	}
	if c := t.P.Compare(o.P); c != 0 {
		return c
	}
	return t.O.Compare(o.O)
}

// Quad is a triple plus the graph it belongs to. A zero Graph term
// denotes the default graph.
type Quad struct {
	S, P, O Term
	G       Term
}

// NewQuad constructs a quad. Pass the zero Term as g for the default
// graph.
func NewQuad(s, p, o, g Term) Quad { return Quad{S: s, P: p, O: o, G: g} }

// Triple returns the triple part of the quad.
func (q Quad) Triple() Triple { return Triple{S: q.S, P: q.P, O: q.O} }

// InDefaultGraph reports whether the quad belongs to the default graph.
func (q Quad) InDefaultGraph() bool { return q.G.IsZero() }

// String renders the quad in N-Quads syntax (without trailing dot).
func (q Quad) String() string {
	if q.InDefaultGraph() {
		return q.Triple().String()
	}
	return q.Triple().String() + " " + q.G.String()
}

// Graph is a simple set of triples with insertion-order iteration.
// It is the lightweight container used by parsers and triple
// generators; the query engine uses store.Store instead.
type Graph struct {
	triples []Triple
	index   map[Triple]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[Triple]struct{})}
}

// Add inserts a triple if not already present and reports whether it was
// added.
func (g *Graph) Add(t Triple) bool {
	if g.index == nil {
		g.index = make(map[Triple]struct{})
	}
	if _, ok := g.index[t]; ok {
		return false
	}
	g.index[t] = struct{}{}
	g.triples = append(g.triples, t)
	return true
}

// AddAll inserts every triple from ts.
func (g *Graph) AddAll(ts []Triple) {
	for _, t := range ts {
		g.Add(t)
	}
}

// Has reports whether the graph contains the triple.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.index[t]
	return ok
}

// Len returns the number of distinct triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns the triples in insertion order. The returned slice
// must not be modified.
func (g *Graph) Triples() []Triple { return g.triples }

// Match returns all triples matching the pattern; zero terms are
// wildcards.
func (g *Graph) Match(s, p, o Term) []Triple {
	var out []Triple
	for _, t := range g.triples {
		if !s.IsZero() && t.S != s {
			continue
		}
		if !p.IsZero() && t.P != p {
			continue
		}
		if !o.IsZero() && t.O != o {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Objects returns the objects of all triples with the given subject and
// predicate.
func (g *Graph) Objects(s, p Term) []Term {
	var out []Term
	for _, t := range g.Match(s, p, Term{}) {
		out = append(out, t.O)
	}
	return out
}

// Object returns the first object for (s, p), or the zero term.
func (g *Graph) Object(s, p Term) Term {
	for _, t := range g.triples {
		if t.S == s && t.P == p {
			return t.O
		}
	}
	return Term{}
}

// Subjects returns the distinct subjects of triples with the given
// predicate and object.
func (g *Graph) Subjects(p, o Term) []Term {
	seen := make(map[Term]struct{})
	var out []Term
	for _, t := range g.Match(Term{}, p, o) {
		if _, ok := seen[t.S]; ok {
			continue
		}
		seen[t.S] = struct{}{}
		out = append(out, t.S)
	}
	return out
}

// String renders the whole graph in N-Triples syntax, one triple per
// line, for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, t := range g.triples {
		b.WriteString(t.String())
		b.WriteString(" .\n")
	}
	return b.String()
}
