// Package sparql implements the subset of SPARQL 1.1 (query and update)
// that QB2OLAP generates and executes: SELECT/ASK/CONSTRUCT with basic
// graph patterns, property paths, OPTIONAL, UNION, FILTER (including
// EXISTS), BIND, VALUES, subqueries, GROUP BY with the standard
// aggregates, HAVING, ORDER BY, DISTINCT, LIMIT/OFFSET, and the
// INSERT/DELETE update forms. It evaluates directly against a
// store.Store and substitutes for the Virtuoso endpoint used in the
// paper.
//
// Query planning: each query entry point first runs the cost-based
// planner (plan.go, on by default, WithPlanner(false) to opt out),
// which reorders BGP joins by estimated cardinality from the store's
// statistics snapshot and pushes filters down to where their variables
// are first bound; evaluation then follows the planned order exactly.
// With the planner off, evalBGP falls back to its runtime greedy
// reorder (or textual order under DisableReorder).
//
// Concurrency contract: an Engine is safe for concurrent use — any
// number of goroutines may run queries and updates on one Engine, with
// per-scan snapshot semantics provided by the store (callers needing
// serialized updates must arrange it, as endpoint.Server does).
// Evaluation itself is parallel: the hot operators (BGP joins, FILTER,
// OPTIONAL, UNION, MINUS, hash GROUP BY) partition their input
// solution sequence across up to WithParallelism(n) worker goroutines
// and merge the per-chunk outputs in input order, so query results are
// identical at every parallelism level; n = 1 runs the original
// sequential code paths (see parallel.go). Engine configuration
// (SetParallelism, WithPlanner, DisableReorder) is not synchronized
// and must happen before the Engine is shared.
package sparql

import "repro/internal/rdf"

// QueryForm discriminates the top-level query form.
type QueryForm int

// Query forms.
const (
	FormSelect QueryForm = iota
	FormAsk
	FormConstruct
	FormDescribe
)

// Query is a parsed SPARQL query.
type Query struct {
	Form     QueryForm
	Prefixes *rdf.PrefixMap

	// Select projection. Star means SELECT *.
	Star       bool
	Distinct   bool
	Projection []SelectItem

	// Construct template (FormConstruct only).
	Template []TriplePattern

	// Describe targets (FormDescribe only): IRIs and/or variables bound
	// by the (optional) WHERE pattern.
	Describe []PatternTerm

	Where GroupGraphPattern

	GroupBy []Expression
	Having  []Expression
	OrderBy []OrderCondition
	Limit   int // -1 when absent
	Offset  int

	// Planned marks a query rewritten by the cost-based planner
	// (Engine.Plan): its BGP pattern order is authoritative and the
	// evaluator must not reorder it again. Queries that already carry
	// the mark pass through the planning entry hook untouched, so a
	// caller may cache a Plan result and re-run it.
	Planned bool
}

// SelectItem is one projected column: either a plain variable or an
// (expression AS ?var) binding.
type SelectItem struct {
	Var  string
	Expr Expression // nil for plain variables
}

// OrderCondition is one ORDER BY key.
type OrderCondition struct {
	Expr Expression
	Desc bool
}

// GroupGraphPattern is a sequence of graph pattern elements evaluated
// left to right.
type GroupGraphPattern struct {
	Elements []PatternElement
}

// PatternElement is a node of the group graph pattern tree.
type PatternElement interface{ isPatternElement() }

// TriplePattern is a triple with variables allowed in any position.
// Each position is a PatternTerm; the predicate may carry a property
// path instead of a plain term.
type TriplePattern struct {
	S, P, O PatternTerm
	Path    *PropertyPath // non-nil when the predicate is a path
}

func (TriplePattern) isPatternElement() {}

// PatternTerm is a term or variable in a triple pattern.
type PatternTerm struct {
	IsVar bool
	Var   string
	Term  rdf.Term
}

// Var returns a variable pattern term.
func VarTerm(name string) PatternTerm { return PatternTerm{IsVar: true, Var: name} }

// ConstTerm returns a constant pattern term.
func ConstTerm(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

// PathKind enumerates property path operators.
type PathKind int

// Path kinds.
const (
	PathIRI PathKind = iota // atomic IRI
	PathInverse
	PathSequence
	PathAlternative
	PathZeroOrMore
	PathOneOrMore
)

// PropertyPath is a property path expression tree.
type PropertyPath struct {
	Kind PathKind
	IRI  rdf.Term        // PathIRI
	Sub  []*PropertyPath // children for composite kinds
}

// FilterElement is a FILTER constraint.
type FilterElement struct {
	Expr Expression
}

func (FilterElement) isPatternElement() {}

// BindElement is a BIND(expr AS ?v).
type BindElement struct {
	Var  string
	Expr Expression
}

func (BindElement) isPatternElement() {}

// OptionalElement is an OPTIONAL { ... } block.
type OptionalElement struct {
	Pattern GroupGraphPattern
}

func (OptionalElement) isPatternElement() {}

// UnionElement is a { ... } UNION { ... } (n-way).
type UnionElement struct {
	Branches []GroupGraphPattern
}

func (UnionElement) isPatternElement() {}

// MinusElement is a MINUS { ... } block.
type MinusElement struct {
	Pattern GroupGraphPattern
}

func (MinusElement) isPatternElement() {}

// GraphElement is a GRAPH term-or-var { ... } block.
type GraphElement struct {
	Graph   PatternTerm
	Pattern GroupGraphPattern
}

func (GraphElement) isPatternElement() {}

// SubSelectElement is a nested SELECT query.
type SubSelectElement struct {
	Query *Query
}

func (SubSelectElement) isPatternElement() {}

// ValuesElement is an inline VALUES data block.
type ValuesElement struct {
	Vars []string
	Rows [][]rdf.Term // zero Term means UNDEF
}

func (ValuesElement) isPatternElement() {}

// GroupElement is a nested group { ... } evaluated as a unit (needed
// for correct OPTIONAL/FILTER scoping).
type GroupElement struct {
	Pattern GroupGraphPattern
}

func (GroupElement) isPatternElement() {}

// Expression is a SPARQL expression tree node.
type Expression interface{ isExpression() }

// ExprVar references a variable.
type ExprVar struct{ Name string }

func (ExprVar) isExpression() {}

// ExprConst is a constant term.
type ExprConst struct{ Term rdf.Term }

func (ExprConst) isExpression() {}

// Binary operators.
type BinaryOp int

// Binary operator kinds.
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// ExprBinary is a binary operation.
type ExprBinary struct {
	Op   BinaryOp
	L, R Expression
}

func (ExprBinary) isExpression() {}

// ExprNot is logical negation.
type ExprNot struct{ X Expression }

func (ExprNot) isExpression() {}

// ExprNeg is arithmetic negation.
type ExprNeg struct{ X Expression }

func (ExprNeg) isExpression() {}

// ExprCall is a built-in function call by upper-cased name.
type ExprCall struct {
	Name string
	Args []Expression
}

func (ExprCall) isExpression() {}

// ExprIn is "expr IN (list)" or its negation.
type ExprIn struct {
	X    Expression
	List []Expression
	Neg  bool
}

func (ExprIn) isExpression() {}

// ExprExists is EXISTS { ... } or NOT EXISTS { ... }.
type ExprExists struct {
	Pattern GroupGraphPattern
	Neg     bool
}

func (ExprExists) isExpression() {}

// ExprAggregate is an aggregate call; only legal in projections,
// HAVING, and ORDER BY of grouped queries.
type ExprAggregate struct {
	Func      string // COUNT, SUM, AVG, MIN, MAX, SAMPLE, GROUP_CONCAT
	Distinct  bool
	Star      bool // COUNT(*)
	Arg       Expression
	Separator string // GROUP_CONCAT
}

func (ExprAggregate) isExpression() {}

// Update is a parsed SPARQL update request: a sequence of operations.
type Update struct {
	Prefixes   *rdf.PrefixMap
	Operations []UpdateOperation
}

// UpdateOperation is one update operation.
type UpdateOperation interface{ isUpdateOperation() }

// InsertDataOp is INSERT DATA { quads }.
type InsertDataOp struct {
	Quads []rdf.Quad
}

func (InsertDataOp) isUpdateOperation() {}

// DeleteDataOp is DELETE DATA { quads }.
type DeleteDataOp struct {
	Quads []rdf.Quad
}

func (DeleteDataOp) isUpdateOperation() {}

// ModifyOp is DELETE {template} INSERT {template} WHERE {pattern}; either
// template may be empty. DELETE WHERE {p} parses as Delete=p, Where=p.
type ModifyOp struct {
	Delete []QuadPattern
	Insert []QuadPattern
	Where  GroupGraphPattern
}

func (ModifyOp) isUpdateOperation() {}

// ClearOp is CLEAR GRAPH <g> / CLEAR DEFAULT / CLEAR ALL.
type ClearOp struct {
	Graph   rdf.Term // zero = default
	All     bool
	Default bool
}

func (ClearOp) isUpdateOperation() {}

// QuadPattern is a triple pattern plus optional graph selector, used in
// update templates.
type QuadPattern struct {
	TriplePattern
	Graph PatternTerm // zero-value PatternTerm means default graph
}
