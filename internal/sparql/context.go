package sparql

import (
	"context"
	"fmt"

	"repro/internal/obs"
)

// This file is the engine's cancellation layer: context-aware entry
// points (QueryContext, SelectContext, AskContext, UpdateContext) and
// the cooperative checks the evaluator loops call.
//
// Cancellation contract: evaluation is cooperative. The coordinating
// goroutine checks the context at every algebra step (one check per
// element of a group graph pattern, one per join of a BGP chain), and
// the row-partitioned operator interiors — BGP join, FILTER, OPTIONAL,
// MINUS, GROUP BY accumulation, projection — check every
// cancelCheckRows rows, both on the coordinator and inside worker
// chunks, so a cancelled query returns promptly at every parallelism
// level. Workers that observe cancellation abandon their chunk and
// return truncated output; the coordinator then converts the
// cancellation into an error before any truncated rows can escape, so
// a cancelled query never yields a silently partial result.
//
// The disabled path (Query, Select, Ask, or a context that can never
// be cancelled) costs one nil check per hook: run.done stays nil and
// cancelled() returns immediately.

// cancelCheckRows is how many rows an operator inner loop processes
// between cancellation checks. Small enough that a cancelled 80k-row
// evaluation stops within a few thousand row visits, large enough that
// the per-row cost is one predictable branch.
const cancelCheckRows = 256

// bindContext arms the run's cancellation hooks. A nil context, or one
// that can never be cancelled (context.Background()), leaves the run on
// the zero-cost disabled path.
func (r *run) bindContext(ctx context.Context) {
	if ctx == nil {
		return
	}
	if done := ctx.Done(); done != nil {
		r.qctx = ctx
		r.done = done
	}
}

// cancelled reports whether the query's context has been cancelled. The
// disabled path is a single nil check.
func (r *run) cancelled() bool {
	if r.done == nil {
		return false
	}
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// cancelErr converts the context's cause into the engine's typed
// cancellation error. errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both see through it.
func (r *run) cancelErr() error {
	return &CanceledError{Cause: context.Cause(r.qctx)}
}

// sortShortCircuit returns a closure the ORDER BY comparators consult:
// it samples the context every cancelCheckRows comparisons and, once
// cancellation is observed, reports true for every later comparison so
// the sort drains in cheap constant comparisons (Go's sort terminates
// under an inconsistent comparator, and the arbitrary order it leaves
// behind is discarded by the caller's post-sort cancellation check).
func (r *run) sortShortCircuit() func() bool {
	if r.done == nil {
		return func() bool { return false }
	}
	n, tripped := 0, false
	return func() bool {
		if tripped {
			return true
		}
		if n++; n%cancelCheckRows == 0 && r.cancelled() {
			tripped = true
		}
		return tripped
	}
}

// CanceledError reports that query evaluation stopped cooperatively
// because its context was cancelled or its deadline expired. It wraps
// the context cause, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) hold as appropriate.
type CanceledError struct {
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sparql: query interrupted: %v", e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// QueryContext is Query under a context: evaluation checks ctx
// cooperatively and returns a *CanceledError (wrapping ctx's cause) as
// soon as it observes cancellation or deadline expiry. The sampling and
// tracing behaviour is identical to Query.
func (e *Engine) QueryContext(ctx context.Context, q *Query) (*Results, error) {
	if e.tracer != nil {
		if id := obs.NewTraceID(); e.sampler.Sample(id) {
			res, _, err := e.queryTracedID(ctx, q, id)
			return res, err
		}
	}
	return e.query(ctx, q, nil)
}

// QueryStringContext parses and evaluates a SELECT/ASK query string
// under a context.
func (e *Engine) QueryStringContext(ctx context.Context, src string) (*Results, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.QueryContext(ctx, q)
}

// SelectContext is Select under a context.
func (e *Engine) SelectContext(ctx context.Context, q *Query) (*Results, error) {
	return e.selectRun(ctx, q, nil)
}

// AskContext is Ask under a context.
func (e *Engine) AskContext(ctx context.Context, q *Query) (bool, error) {
	return e.askRun(ctx, q, nil)
}

// QueryTracedContext is QueryTraced under a context: tracing is forced
// and the trace collected so far is returned even when evaluation is
// cancelled mid-flight (the partial trace a server reports on a query
// deadline).
func (e *Engine) QueryTracedContext(ctx context.Context, q *Query) (*Results, *obs.Trace, error) {
	return e.queryTracedID(ctx, q, obs.NewTraceID())
}

// UpdateContext is Execute under a context. Cancellation is honored
// while the WHERE clauses of DELETE/INSERT WHERE operations evaluate
// and between operations; once an operation starts mutating the store
// it runs to completion, so each operation's write phase stays atomic
// and a cancelled update never leaves a half-applied template.
func (e *Engine) UpdateContext(ctx context.Context, u *Update) error {
	for _, op := range u.Operations {
		if ctx != nil && ctx.Err() != nil {
			return &CanceledError{Cause: context.Cause(ctx)}
		}
		if err := e.executeOpContext(ctx, op); err != nil {
			return err
		}
	}
	return nil
}

// ExecuteStringContext parses and applies an update request under a
// context (see UpdateContext for the cancellation semantics).
func (e *Engine) ExecuteStringContext(ctx context.Context, src string) error {
	u, err := ParseUpdate(src)
	if err != nil {
		return err
	}
	return e.UpdateContext(ctx, u)
}
