package sparql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
	"repro/internal/store"
)

func TestNestedOptional(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p ex:b .
ex:b ex:q ex:c .
ex:c ex:r "deep" .
ex:x ex:p ex:y .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s ?deep WHERE {
  ?s ex:p ?m
  OPTIONAL { ?m ex:q ?n OPTIONAL { ?n ex:r ?deep } }
} ORDER BY ?s`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if res.Binding(0, "deep").Value != "deep" {
		t.Errorf("a's chain should bind deep: %v", res.Rows[0])
	}
	if !res.Binding(1, "deep").IsZero() {
		t.Errorf("x's chain should leave deep unbound")
	}
}

func TestFilterInsideOptionalScope(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:v 5 .
ex:b ex:v 50 .`)
	// The filter applies inside the OPTIONAL: rows failing it keep the
	// left side with the optional part unbound.
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s ?v WHERE {
  ?s ex:v ?any
  OPTIONAL { ?s ex:v ?v FILTER(?v > 10) }
} ORDER BY ?s`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if !res.Binding(0, "v").IsZero() {
		t.Errorf("a should have unbound v, got %v", res.Binding(0, "v"))
	}
	if res.Binding(1, "v").Value != "50" {
		t.Errorf("b should bind 50, got %v", res.Binding(1, "v"))
	}
}

func TestUnionPreservesBindings(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:t ex:L . ex:a ex:p "left" .
ex:b ex:t ex:R . ex:b ex:q "right" .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s ?val WHERE {
  ?s ex:t ?klass
  { ?s ex:p ?val } UNION { ?s ex:q ?val }
} ORDER BY ?s`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if res.Binding(0, "val").Value != "left" || res.Binding(1, "val").Value != "right" {
		t.Fatalf("union values wrong: %v", res.Rows)
	}
}

func TestSubqueryLimitIsolation(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:v 1 . ex:b ex:v 2 . ex:c ex:v 3 .`)
	// The subquery's LIMIT applies inside, before the outer join.
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s ?v WHERE {
  { SELECT ?s WHERE { ?s ex:v ?x } ORDER BY ?s LIMIT 2 }
  ?s ex:v ?v
} ORDER BY ?s`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
}

func TestConstructSkipsPartialBindings(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:name "A" .
ex:b ex:name "B" ; ex:home ex:paris .`)
	e := NewEngine(st)
	q, err := ParseQuery(`
PREFIX ex: <http://example.org/>
CONSTRUCT { ?s ex:livesIn ?h } WHERE { ?s ex:name ?n OPTIONAL { ?s ex:home ?h } }`)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := e.Construct(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("triples = %d, want 1 (unbound ?h must be skipped)", len(ts))
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:name "zeta" ; ex:v 1 .
ex:b ex:name "alpha" ; ex:v 2 .`)

	// MIN/MAX over strings order lexically.
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT (MIN(?n) AS ?lo) (MAX(?n) AS ?hi) WHERE { ?s ex:name ?n }`)
	if res.Binding(0, "lo").Value != "alpha" || res.Binding(0, "hi").Value != "zeta" {
		t.Fatalf("string min/max: %v", res.Rows)
	}

	// SUM over a non-numeric leaves the cell unbound (expression error).
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT (SUM(?n) AS ?s) WHERE { ?x ex:name ?n }`)
	if !res.Binding(0, "s").IsZero() {
		t.Fatalf("SUM over strings must be unbound, got %v", res.Binding(0, "s"))
	}

	// AVG stays integer when exact, decimal otherwise.
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT (AVG(?v) AS ?a) WHERE { ?s ex:v ?v }`)
	if got := res.Binding(0, "a").Value; got != "1.5" {
		t.Fatalf("AVG = %s", got)
	}
}

func TestOrderByUnboundSortsFirst(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p "x" .
ex:b ex:p "y" ; ex:opt 1 .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s ?o WHERE { ?s ex:p ?p OPTIONAL { ?s ex:opt ?o } } ORDER BY ?o ?s`)
	if !res.Binding(0, "o").IsZero() {
		t.Fatalf("unbound must sort first: %v", res.Rows)
	}
}

func TestValuesUndefJoinsEverything(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:v 1 . ex:b ex:v 2 .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s ?tag WHERE {
  ?s ex:v ?v
  VALUES (?s ?tag) { (ex:a "first") (UNDEF "any") }
} ORDER BY ?s ?tag`)
	// ex:a matches both rows; ex:b matches only the UNDEF row.
	if res.Len() != 3 {
		t.Fatalf("rows = %d, want 3: %v", res.Len(), res.Rows)
	}
}

func TestSameVariableTwiceInPattern(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:knows ex:a .
ex:b ex:knows ex:c .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ?x ex:knows ?x }`)
	if res.Len() != 1 || !strings.HasSuffix(res.Binding(0, "x").Value, "a") {
		t.Fatalf("self-loop match: %v", res.Rows)
	}
}

func TestLangFunctions(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:label "Haus"@de .
ex:b ex:label "house"@en .
ex:c ex:label "casa" .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:label ?l FILTER(LANGMATCHES(LANG(?l), "en")) }`)
	if res.Len() != 1 {
		t.Fatalf("langmatches rows = %d", res.Len())
	}
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:label ?l FILTER(LANG(?l) = "") }`)
	if res.Len() != 1 {
		t.Fatalf("plain-literal rows = %d", res.Len())
	}
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:label ?l FILTER(LANGMATCHES(LANG(?l), "*")) }`)
	if res.Len() != 2 {
		t.Fatalf("lang * rows = %d", res.Len())
	}
}

func TestStrdtStrlangSameterm(t *testing.T) {
	st := loadStore(t, `@prefix ex: <http://example.org/> . ex:a ex:v "5" .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT (STRDT(?v, xsd:integer) AS ?typed) (STRLANG(?v, "en") AS ?tagged) (SAMETERM(?v, "5") AS ?same)
WHERE { ex:a ex:v ?v }`)
	if res.Binding(0, "typed") != rdf.NewTypedLiteral("5", rdf.XSDInteger) {
		t.Errorf("STRDT = %v", res.Binding(0, "typed"))
	}
	if res.Binding(0, "tagged") != rdf.NewLangLiteral("5", "en") {
		t.Errorf("STRLANG = %v", res.Binding(0, "tagged"))
	}
	if res.Binding(0, "same") != rdf.NewBoolean(true) {
		t.Errorf("SAMETERM = %v", res.Binding(0, "same"))
	}
}

func TestReplaceFunction(t *testing.T) {
	st := loadStore(t, `@prefix ex: <http://example.org/> . ex:a ex:v "2014M03" .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT (REPLACE(?v, "M", "-") AS ?r) WHERE { ex:a ex:v ?v }`)
	if res.Binding(0, "r").Value != "2014-03" {
		t.Fatalf("REPLACE = %v", res.Binding(0, "r"))
	}
}

// TestExpressionArithmeticProperties checks numeric evaluation against
// Go arithmetic on random inputs via testing/quick.
func TestExpressionArithmeticProperties(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	r := &run{e: e, vt: newVarTable()}
	empty := make(solution, 0)

	f := func(a, b int16) bool {
		ea := ExprConst{rdf.NewInteger(int64(a))}
		eb := ExprConst{rdf.NewInteger(int64(b))}
		sum, err := r.evalExpr(ExprBinary{Op: OpAdd, L: ea, R: eb}, empty)
		if err != nil {
			return false
		}
		if sum != rdf.NewInteger(int64(a)+int64(b)) {
			return false
		}
		prod, err := r.evalExpr(ExprBinary{Op: OpMul, L: ea, R: eb}, empty)
		if err != nil {
			return false
		}
		if prod != rdf.NewInteger(int64(a)*int64(b)) {
			return false
		}
		// Comparison agrees with Go.
		lt, err := r.evalExpr(ExprBinary{Op: OpLt, L: ea, R: eb}, empty)
		if err != nil {
			return false
		}
		return lt == rdf.NewBoolean(a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRandomBGPAgainstOracle cross-checks multi-pattern joins against a
// naive in-memory evaluation on random data.
func TestRandomBGPAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	type edge struct{ s, o int }
	for trial := 0; trial < 25; trial++ {
		// Random graph over 8 nodes with two predicates.
		st := store.New()
		var pEdges, qEdges []edge
		node := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://n/%d", i)) }
		p := rdf.NewIRI("http://x/p")
		qp := rdf.NewIRI("http://x/q")
		for i := 0; i < 12; i++ {
			e := edge{rng.Intn(8), rng.Intn(8)}
			pEdges = append(pEdges, e)
			st.Insert(rdf.NewQuad(node(e.s), p, node(e.o), rdf.Term{}))
			e2 := edge{rng.Intn(8), rng.Intn(8)}
			qEdges = append(qEdges, e2)
			st.Insert(rdf.NewQuad(node(e2.s), qp, node(e2.o), rdf.Term{}))
		}
		// Count join results ?a p ?b . ?b q ?c by brute force.
		want := 0
		seen := map[edge]bool{}
		var pUniq []edge
		for _, e := range pEdges {
			if !seen[e] {
				seen[e] = true
				pUniq = append(pUniq, e)
			}
		}
		seen = map[edge]bool{}
		var qUniq []edge
		for _, e := range qEdges {
			if !seen[e] {
				seen[e] = true
				qUniq = append(qUniq, e)
			}
		}
		for _, e1 := range pUniq {
			for _, e2 := range qUniq {
				if e1.o == e2.s {
					want++
				}
			}
		}
		res, err := NewEngine(st).QueryString(`
SELECT ?a ?b ?c WHERE { ?a <http://x/p> ?b . ?b <http://x/q> ?c }`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != want {
			t.Fatalf("trial %d: join rows = %d, oracle = %d", trial, res.Len(), want)
		}
	}
}

func TestDistinctAfterProjection(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:city ex:paris ; ex:year 2013 .
ex:b ex:city ex:paris ; ex:year 2014 .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT DISTINCT ?c WHERE { ?s ex:city ?c ; ex:year ?y }`)
	if res.Len() != 1 {
		t.Fatalf("distinct projected rows = %d", res.Len())
	}
}

func TestGraphPatternRespectsBoundVariable(t *testing.T) {
	st := store.New()
	g1, g2 := rdf.NewIRI("http://g/1"), rdf.NewIRI("http://g/2")
	s, p := rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p")
	st.Insert(rdf.NewQuad(s, p, rdf.NewLiteral("one"), g1))
	st.Insert(rdf.NewQuad(s, p, rdf.NewLiteral("two"), g2))
	res, err := NewEngine(st).QueryString(`
SELECT ?o WHERE {
  VALUES ?g { <http://g/2> }
  GRAPH ?g { ?s ?p ?o }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Binding(0, "o").Value != "two" {
		t.Fatalf("bound graph var: %v", res.Rows)
	}
}

func TestMinusNoSharedVariablesKeepsAll(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p 1 . ex:z ex:q 2 .`)
	// MINUS with disjoint domains removes nothing (SPARQL semantics).
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:p ?v MINUS { ?x ex:q ?w } }`)
	if res.Len() != 1 {
		t.Fatalf("MINUS with disjoint vars removed rows: %d", res.Len())
	}
}

func TestAskOnEmptyStore(t *testing.T) {
	e := NewEngine(store.New())
	q, _ := ParseQuery(`ASK { ?s ?p ?o }`)
	ok, err := e.Ask(q)
	if err != nil || ok {
		t.Fatalf("ASK on empty store = %v, %v", ok, err)
	}
}

func TestQueryStringErrorPropagation(t *testing.T) {
	e := NewEngine(store.New())
	if _, err := e.QueryString("NOT SPARQL"); err == nil {
		t.Fatal("parse error must propagate")
	}
	q, _ := ParseQuery(`CONSTRUCT { <http://a> <http://b> <http://c> } WHERE {}`)
	if _, err := e.Query(q); err == nil {
		t.Fatal("Query must reject CONSTRUCT")
	}
	if _, err := e.Select(q); err == nil {
		t.Fatal("Select must reject CONSTRUCT")
	}
	sq, _ := ParseQuery(`SELECT ?s WHERE { ?s ?p ?o }`)
	if _, err := e.Construct(sq); err == nil {
		t.Fatal("Construct must reject SELECT")
	}
}

func TestDescribe(t *testing.T) {
	st := loadStore(t, peopleTTL)
	e := NewEngine(st)

	// Direct IRI target: subject and object triples.
	q, err := ParseQuery(`PREFIX ex: <http://example.org/> DESCRIBE ex:paris`)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := e.Describe(q)
	if err != nil {
		t.Fatal(err)
	}
	// paris: 2 subject triples (label, inCountry) + 2 object triples
	// (alice/carol ex:city paris).
	if len(ts) != 4 {
		t.Fatalf("describe paris = %d triples: %v", len(ts), ts)
	}

	// Variable target with WHERE.
	q, err = ParseQuery(`
PREFIX ex: <http://example.org/>
DESCRIBE ?c WHERE { ?p ex:name "Bob" ; ex:city ?c }`)
	if err != nil {
		t.Fatal(err)
	}
	ts, err = e.Describe(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range ts {
		if tr.O.Value == "Lyon" {
			found = true
		}
	}
	if !found {
		t.Fatalf("describe of Bob's city missing Lyon label: %v", ts)
	}

	// Form checks.
	if _, err := e.Describe(&Query{Form: FormSelect}); err == nil {
		t.Error("Describe must reject SELECT")
	}
	if _, err := ParseQuery(`DESCRIBE`); err == nil {
		t.Error("empty DESCRIBE must fail")
	}
}
