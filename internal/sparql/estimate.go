package sparql

import "math"

// Cardinality estimation for the EXPLAIN ANALYZE surface. When a query
// is traced, every operator span carries the estimate the statistics
// layer would have produced for it, rendered as "est=… act=…" next to
// the actual row count. Each estimate is computed from the operator's
// *actual* input cardinality, so the rendered error isolates the
// per-operator estimator (join selectivity, filter default, …) from
// error accumulated upstream — exactly the q-error signal that judges
// whether the statistics are good enough to plan with. The cost-based
// planner (plan.go) consumes the same model, estimateJoinRows, to
// choose join orders before evaluation starts.
//
// Estimates are only computed while tracing (the cursor is non-nil);
// the untraced fast path pays nothing.

// estimateJoin is the tracing-time view of estimateJoinRows: it
// predicts the output rows of joining one triple pattern into in
// solutions from the operator's actual input cardinality.
func (r *run) estimateJoin(tp TriplePattern, bound map[string]bool, in int, ctx graphCtx) int64 {
	if tp.Path != nil {
		// No statistics for property paths; assume they preserve
		// cardinality.
		return int64(in)
	}
	return int64(math.Round(estimateJoinRows(r.e.store, tp, bound, float64(in), ctx.gid)))
}

// estimateFilter applies the textbook default 1/3 selectivity: nothing
// is known about the predicate expression, and the rendered est/act gap
// is precisely the missing-statistics signal.
func estimateFilter(in int) int64 {
	if in == 0 {
		return 0
	}
	if in < 3 {
		return 1
	}
	return int64(in / 3)
}

// estimateGroups predicts the number of aggregation groups as √in, the
// classic zero-information heuristic.
func estimateGroups(in int) int64 {
	return int64(math.Round(math.Sqrt(float64(in))))
}

// estimateSlice is exact: OFFSET/LIMIT arithmetic over the input.
func estimateSlice(in, offset, limit int) int64 {
	n := in - offset
	if n < 0 {
		n = 0
	}
	if limit >= 0 && limit < n {
		n = limit
	}
	return int64(n)
}
