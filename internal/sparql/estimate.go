package sparql

import (
	"math"

	"repro/internal/store"
)

// Cardinality estimation for the EXPLAIN ANALYZE surface. When a query
// is traced, every operator span carries the estimate the statistics
// layer would have produced for it, rendered as "est=… act=…" next to
// the actual row count. Each estimate is computed from the operator's
// *actual* input cardinality, so the rendered error isolates the
// per-operator estimator (join selectivity, filter default, …) from
// error accumulated upstream — exactly the signal a future cost-based
// join-ordering PR needs to judge whether the statistics are good
// enough to plan with.
//
// Estimates are only computed while tracing (the cursor is non-nil);
// the untraced fast path pays nothing.

// estimateJoin predicts the output rows of joining one triple pattern
// into in solutions, System R style: the per-row match count is the
// store's exact count of the constant-only pattern shrunk, under the
// independence assumption, by the distinct cardinality of every
// position occupied by an already-bound variable. Statistics come from
// store.PredicateStat (per-predicate distinct subjects/objects) when
// the predicate is constant, and graph-level distincts otherwise.
func (r *run) estimateJoin(tp TriplePattern, bound map[string]bool, in int, ctx graphCtx) int64 {
	if tp.Path != nil {
		// No statistics for property paths; assume they preserve
		// cardinality.
		return int64(in)
	}
	st := r.e.store
	dict := st.Dict()
	var pat store.IDTriple
	lookup := func(pt PatternTerm) (store.ID, bool) {
		if pt.IsVar {
			return store.NoID, true
		}
		id, ok := dict.Lookup(pt.Term)
		return id, ok
	}
	var ok bool
	if pat.S, ok = lookup(tp.S); !ok {
		return 0
	}
	if pat.P, ok = lookup(tp.P); !ok {
		return 0
	}
	if pat.O, ok = lookup(tp.O); !ok {
		return 0
	}
	base := float64(st.Count(ctx.gid, pat))
	if base == 0 {
		return 0
	}
	div := 1.0
	if pat.P != store.NoID {
		if ps, found := st.PredicateStat(ctx.gid, pat.P); found {
			if tp.S.IsVar && bound[tp.S.Var] && ps.DistinctS > 0 {
				div *= float64(ps.DistinctS)
			}
			if tp.O.IsVar && bound[tp.O.Var] && ps.DistinctO > 0 {
				div *= float64(ps.DistinctO)
			}
		}
	} else {
		gs := st.GraphStat(ctx.gid)
		if tp.S.IsVar && bound[tp.S.Var] && gs.DistinctSubjects > 0 {
			div *= float64(gs.DistinctSubjects)
		}
		if tp.O.IsVar && bound[tp.O.Var] && gs.DistinctObjects > 0 {
			div *= float64(gs.DistinctObjects)
		}
		if tp.P.IsVar && bound[tp.P.Var] && gs.DistinctPredicates > 0 {
			div *= float64(gs.DistinctPredicates)
		}
	}
	return int64(math.Round(float64(in) * base / div))
}

// estimateFilter applies the textbook default 1/3 selectivity: nothing
// is known about the predicate expression, and the rendered est/act gap
// is precisely the missing-statistics signal.
func estimateFilter(in int) int64 {
	if in == 0 {
		return 0
	}
	if in < 3 {
		return 1
	}
	return int64(in / 3)
}

// estimateGroups predicts the number of aggregation groups as √in, the
// classic zero-information heuristic.
func estimateGroups(in int) int64 {
	return int64(math.Round(math.Sqrt(float64(in))))
}

// estimateSlice is exact: OFFSET/LIMIT arithmetic over the input.
func estimateSlice(in, offset, limit int) int64 {
	n := in - offset
	if n < 0 {
		n = 0
	}
	if limit >= 0 && limit < n {
		n = limit
	}
	return int64(n)
}
