package sparql

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Engine evaluates parsed queries and updates against a store.Store.
//
// An Engine is safe for concurrent use: queries carry all per-execution
// state in a private run value, and the underlying store serializes
// access internally. Configuration (SetParallelism, WithPlanner,
// DisableReorder) must be done before the engine is shared.
type Engine struct {
	store *store.Store

	// parallelism is the maximum number of worker goroutines one query
	// evaluation may use (see WithParallelism). Always >= 1.
	parallelism int

	// planner enables the cost-based planning pass (plan.go) on every
	// query entry: statistics-driven BGP join ordering plus filter
	// pushdown, applied once before evaluation. On by default;
	// WithPlanner(false) restores the pre-planner behavior.
	planner bool

	// DisableReorder turns off evalBGP's runtime greedy join-order
	// heuristic, so an *unplanned* BGP runs in textual order. It only
	// matters with the planner off (a planned query's order is
	// authoritative either way); the planner ablation benchmarks use it
	// to isolate the two mechanisms.
	DisableReorder bool

	// tracer, when set (WithTracer), collects a per-operator trace of
	// every sampled query. Nil — the default — keeps evaluation on the
	// untraced fast path; see trace.go.
	tracer *obs.Tracer

	// sampler, when set (WithSampler), decides which queries the tracer
	// records. Nil samples everything.
	sampler *obs.Sampler

	// resources, when set (WithResources), aggregates every query's
	// in-flight materialized bytes into process-wide gauges; maxQueryMem,
	// when > 0 (WithMaxQueryMem), aborts queries whose in-flight bytes
	// exceed it with *MemLimitError. Either turns per-query resource
	// accounting on; see resource.go.
	resources   *obs.ResourceTracker
	maxQueryMem int64

	// chunkSize is the solution-chunk granularity of the streaming
	// pipeline (stream.go): untraced SELECT/ASK queries evaluate through
	// chunked pull iterators whose buffers hold about chunkSize rows,
	// with cancellation and memory accounting applied at chunk
	// boundaries. 0 disables streaming and restores the fully
	// materialized evaluator. Default defaultChunkSize.
	chunkSize int
}

// defaultChunkSize is the default streaming chunk granularity. 1024
// rows balances per-chunk kernel efficiency (large enough to engage the
// parallel operators, minParallelRows=128) against per-query buffer
// footprint (a ~1.5 KB OLAP row × 1024 ≈ 1.5 MB per pipeline stage);
// see BenchmarkChunkSize for the sweep backing the choice.
const defaultChunkSize = 1024

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithParallelism bounds the number of worker goroutines a single query
// evaluation may use for BGP joins, FILTER/OPTIONAL/UNION/MINUS
// evaluation, and GROUP BY aggregation. n <= 0 selects
// runtime.GOMAXPROCS(0), which is also the default. n == 1 runs the
// exact sequential code paths of the original engine; for n > 1 every
// parallel operator merges worker results in input order, so query
// results are identical at every parallelism level.
func WithParallelism(n int) Option {
	return func(e *Engine) { e.SetParallelism(n) }
}

// WithChunkSize sets the streaming pipeline's chunk granularity in
// rows. n <= 0 disables streaming: every query evaluates through the
// fully materialized operators (the pre-streaming engine). The default
// is defaultChunkSize.
func WithChunkSize(n int) Option {
	return func(e *Engine) { e.SetChunkSize(n) }
}

// ChunkSize reports the streaming chunk granularity (0 = streaming
// disabled).
func (e *Engine) ChunkSize() int { return e.chunkSize }

// SetChunkSize changes the streaming chunk granularity (n <= 0
// disables streaming). It must not be called concurrently with running
// queries.
func (e *Engine) SetChunkSize(n int) {
	if n < 0 {
		n = 0
	}
	e.chunkSize = n
}

// NewEngine returns an engine over st. The cost-based planner is on by
// default; pass WithPlanner(false) to disable it.
func NewEngine(st *store.Store, opts ...Option) *Engine {
	e := &Engine{store: st, parallelism: runtime.GOMAXPROCS(0), planner: true, chunkSize: defaultChunkSize}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Store returns the underlying store.
func (e *Engine) Store() *store.Store { return e.store }

// Parallelism reports the engine's worker budget per query evaluation.
func (e *Engine) Parallelism() int { return e.parallelism }

// SetParallelism changes the worker budget (n <= 0 selects
// runtime.GOMAXPROCS(0)). It must not be called concurrently with
// running queries.
func (e *Engine) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.parallelism = n
}

// Results is a SPARQL SELECT result table.
type Results struct {
	Vars []string
	Rows [][]rdf.Term // zero terms are unbound
}

// varTable assigns a dense slot to every variable of a query.
type varTable struct {
	names []string
	index map[string]int
}

func newVarTable() *varTable {
	return &varTable{index: make(map[string]int)}
}

func (vt *varTable) slot(name string) int {
	if i, ok := vt.index[name]; ok {
		return i
	}
	i := len(vt.names)
	vt.names = append(vt.names, name)
	vt.index[name] = i
	return i
}

// solution is one row of bindings, indexed by varTable slots; the zero
// term means unbound.
type solution []rdf.Term

func (s solution) clone() solution {
	c := make(solution, len(s))
	copy(c, s)
	return c
}

// graphCtx identifies the active graph during evaluation.
type graphCtx struct {
	gid store.ID // NoID = default graph
}

// run is the per-execution state.
type run struct {
	e   *Engine
	vt  *varTable
	ctx graphCtx

	// qctx/done arm cooperative cancellation (see context.go). done is
	// qctx.Done(); both stay nil for uncancellable evaluations, which
	// keeps every cancellation hook a single nil check. Workers share
	// them through the run-value copy.
	qctx context.Context
	done <-chan struct{}

	// planned records that the query being evaluated was rewritten by
	// the cost-based planner; evalBGP then treats the pattern order as
	// authoritative instead of applying its runtime greedy reorder.
	planned bool

	// trace is the current trace cursor: operator spans attach under
	// it. Nil (the default) disables tracing; every hook then reduces
	// to a nil check.
	trace *obs.Span

	// lastEst carries the most recent JOIN estimate out of evalBGP so
	// the enclosing BGP span can adopt it as its own output estimate.
	// Only written while tracing.
	lastEst int64

	// acct is the per-query resource account (rows/bytes materialized,
	// peak in-flight, optional budget). Nil — the default — disables
	// accounting; every hook is then a nil check. Workers share the
	// pointer through the run-value copy; QueryAcct is internally
	// atomic. ownAcct marks an account opened by this run (closeAcct
	// finishes it) as opposed to one injected via context.
	acct    *obs.QueryAcct
	ownAcct bool

	// depth counts evalGroup nesting. The in-flight release bookkeeping
	// (replacing one operator's live intermediate with the next) runs
	// only at depth 1, on the coordinating goroutine; nested groups and
	// worker copies (which inherit depth > 0 or increment their own
	// copy) just charge the account, so releases never race. The
	// resulting peak is biased high on nested shapes — documented as
	// approximate in DESIGN.md.
	depth int
}

// Query evaluates a SELECT or ASK query, returning a Results table (ASK
// yields a single row with variable "ask" bound to a boolean). When the
// engine has a tracer installed, each query draws a fresh trace ID and,
// if the sampler elects it (no sampler = always), the evaluation is
// traced and collected; an unsampled query runs the untraced fast path
// and allocates no span tree.
func (e *Engine) Query(q *Query) (*Results, error) {
	return e.QueryContext(context.Background(), q)
}

// query dispatches on the query form, attaching operator spans under
// root when it is non-nil.
func (e *Engine) query(ctx context.Context, q *Query, root *obs.Span) (*Results, error) {
	switch q.Form {
	case FormSelect:
		return e.selectRun(ctx, q, root)
	case FormAsk:
		ok, err := e.askRun(ctx, q, root)
		if err != nil {
			return nil, err
		}
		return &Results{Vars: []string{"ask"}, Rows: [][]rdf.Term{{rdf.NewBoolean(ok)}}}, nil
	case FormConstruct:
		return nil, fmt.Errorf("sparql: use Construct for CONSTRUCT queries")
	default:
		return nil, fmt.Errorf("sparql: unknown query form")
	}
}

// QueryString parses and evaluates a SELECT/ASK query string.
func (e *Engine) QueryString(src string) (*Results, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.Query(q)
}

// Select evaluates a SELECT query.
func (e *Engine) Select(q *Query) (*Results, error) {
	return e.selectRun(context.Background(), q, nil)
}

func (e *Engine) selectRun(ctx context.Context, q *Query, root *obs.Span) (*Results, error) {
	if q.Form != FormSelect {
		return nil, fmt.Errorf("sparql: not a SELECT query")
	}
	q = e.prepared(q)
	r := &run{e: e, vt: newVarTable(), trace: root, planned: q.Planned}
	r.bindContext(ctx)
	r.bindAcct(ctx, root != nil)
	defer r.closeAcct()
	collectVars(q, r.vt)
	if r.streaming() {
		return r.streamSelect(q)
	}
	return r.evalSelect(q)
}

// Ask evaluates an ASK query.
func (e *Engine) Ask(q *Query) (bool, error) {
	return e.askRun(context.Background(), q, nil)
}

func (e *Engine) askRun(ctx context.Context, q *Query, root *obs.Span) (bool, error) {
	q = e.prepared(q)
	r := &run{e: e, vt: newVarTable(), trace: root, planned: q.Planned}
	r.bindContext(ctx)
	r.bindAcct(ctx, root != nil)
	defer r.closeAcct()
	collectVars(q, r.vt)
	if r.streaming() {
		return r.streamAsk(q)
	}
	rows, err := r.evalGroup(q.Where, []solution{make(solution, len(r.vt.names))}, graphCtx{})
	if err != nil {
		return false, err
	}
	return len(rows) > 0, nil
}

// Construct evaluates a CONSTRUCT query and returns the instantiated,
// deduplicated triples.
func (e *Engine) Construct(q *Query) ([]rdf.Triple, error) {
	return e.ConstructContext(context.Background(), q)
}

// ConstructContext is Construct under a context (see QueryContext for
// the cancellation semantics).
func (e *Engine) ConstructContext(ctx context.Context, q *Query) ([]rdf.Triple, error) {
	if q.Form != FormConstruct {
		return nil, fmt.Errorf("sparql: not a CONSTRUCT query")
	}
	q = e.prepared(q)
	r := &run{e: e, vt: newVarTable(), planned: q.Planned}
	r.bindContext(ctx)
	r.bindAcct(ctx, false)
	defer r.closeAcct()
	collectVars(q, r.vt)
	rows, err := r.evalGroup(q.Where, []solution{make(solution, len(r.vt.names))}, graphCtx{})
	if err != nil {
		return nil, err
	}
	g := rdf.NewGraph()
	for _, row := range rows {
		for _, tp := range q.Template {
			s, okS := r.resolve(tp.S, row)
			p, okP := r.resolve(tp.P, row)
			o, okO := r.resolve(tp.O, row)
			if !okS || !okP || !okO {
				continue
			}
			t := rdf.NewTriple(s, p, o)
			if t.Valid() {
				g.Add(t)
			}
		}
	}
	return g.Triples(), nil
}

// resolve substitutes a pattern term under a row.
func (r *run) resolve(pt PatternTerm, row solution) (rdf.Term, bool) {
	if !pt.IsVar {
		return pt.Term, true
	}
	idx, ok := r.vt.index[pt.Var]
	if !ok {
		return rdf.Term{}, false
	}
	t := row[idx]
	return t, !t.IsZero()
}

func (r *run) evalSelect(q *Query) (*Results, error) {
	rows, err := r.evalGroup(q.Where, []solution{make(solution, len(r.vt.names))}, graphCtx{})
	if err != nil {
		return nil, err
	}
	return r.finishSelect(q, rows)
}

// finishSelect is the tail of SELECT evaluation — grouping/projection,
// DISTINCT, and SLICE over the materialized WHERE rows. The streaming
// pipeline (stream.go) reuses it verbatim after a pipeline breaker
// drains its input.
func (r *run) finishSelect(q *Query, rows []solution) (*Results, error) {
	grouped := len(q.GroupBy) > 0 || projectionHasAggregates(q)
	var res *Results
	var err error
	if grouped {
		res, err = r.evalGrouped(q, rows)
		if err != nil {
			return nil, err
		}
	} else {
		res, err = r.evalUngrouped(q, rows)
		if err != nil {
			return nil, err
		}
	}

	if q.Distinct {
		if r.cancelled() {
			return nil, r.cancelErr()
		}
		if r.overMem() {
			return nil, r.memErr()
		}
		sp := r.trace.StartChild("DISTINCT", "", len(res.Rows))
		sp.SetEst(int64(len(res.Rows)))
		res.Rows = distinctRows(res.Rows)
		if sp != nil {
			sp.Finish(len(res.Rows), 1)
		}
	}
	var ssp *obs.Span
	if r.trace != nil && (q.Offset > 0 || q.Limit >= 0) {
		ssp = r.trace.StartChild("SLICE", fmt.Sprintf("offset=%d limit=%d", q.Offset, q.Limit), len(res.Rows))
		ssp.SetEst(estimateSlice(len(res.Rows), q.Offset, q.Limit))
	}
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
	if ssp != nil {
		ssp.Finish(len(res.Rows), 1)
	}
	return res, nil
}

func projectionHasAggregates(q *Query) bool {
	for _, it := range q.Projection {
		if it.Expr != nil && exprHasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expression) bool {
	switch x := e.(type) {
	case ExprAggregate:
		return true
	case ExprBinary:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case ExprNot:
		return exprHasAggregate(x.X)
	case ExprNeg:
		return exprHasAggregate(x.X)
	case ExprCall:
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case ExprIn:
		if exprHasAggregate(x.X) {
			return true
		}
		for _, a := range x.List {
			if exprHasAggregate(a) {
				return true
			}
		}
	}
	return false
}

// selectVars is the projection header of an ungrouped SELECT: sorted
// visible variables for SELECT *, the projection list otherwise.
func (r *run) selectVars(q *Query) []string {
	var vars []string
	if q.Star {
		for _, n := range r.vt.names {
			if !strings.HasPrefix(n, "_") { // hide internal blank-node vars
				vars = append(vars, n)
			}
		}
		sort.Strings(vars)
	} else {
		for _, it := range q.Projection {
			vars = append(vars, it.Var)
		}
	}
	return vars
}

func (r *run) evalUngrouped(q *Query, rows []solution) (*Results, error) {
	// ORDER BY before projection so order keys may use any variable.
	if len(q.OrderBy) > 0 {
		if r.cancelled() {
			return nil, r.cancelErr()
		}
		sp := r.trace.StartChild("ORDER", "", len(rows))
		sp.SetEst(int64(len(rows)))
		r.sortRows(rows, q.OrderBy)
		if sp != nil {
			sp.Finish(len(rows), 1)
		}
		if r.cancelled() {
			return nil, r.cancelErr()
		}
	}
	vars := r.selectVars(q)
	out := &Results{Vars: vars}
	psp := r.trace.StartChild("PROJECT", "", len(rows))
	psp.SetEst(int64(len(rows)))
	mark := 0
	for ri, row := range rows {
		if ri%cancelCheckRows == 0 {
			if r.cancelled() {
				return nil, r.cancelErr()
			}
			if mark = accountNew(r, out.Rows, mark); r.overMem() {
				return nil, r.memErr()
			}
		}
		orow := make([]rdf.Term, len(vars))
		if q.Star {
			for i, n := range vars {
				orow[i] = row[r.vt.index[n]]
			}
		} else {
			for i, it := range q.Projection {
				if it.Expr == nil {
					if idx, ok := r.vt.index[it.Var]; ok {
						orow[i] = row[idx]
					}
					continue
				}
				if v, err := r.evalExpr(it.Expr, row); err == nil {
					orow[i] = v
				}
			}
		}
		out.Rows = append(out.Rows, orow)
	}
	accountNew(r, out.Rows, mark)
	if psp != nil {
		psp.Finish(len(out.Rows), 1)
	}
	return out, nil
}

// groupKey renders group-by expression values into a comparable key.
func (r *run) groupKey(exprs []Expression, row solution) (string, []rdf.Term) {
	vals := make([]rdf.Term, len(exprs))
	var b strings.Builder
	for i, e := range exprs {
		v, err := r.evalExpr(e, row)
		if err == nil {
			vals[i] = v
		}
		b.WriteString(vals[i].String())
		b.WriteByte('\x00')
	}
	return b.String(), vals
}

// aggGroup is one GROUP BY bucket: the rendered key values and the
// member rows in input order.
type aggGroup struct {
	keyVals []rdf.Term
	rows    []solution
}

// accumulateGroups hash-partitions rows by the group-by expressions,
// preserving first-occurrence order of the keys and input order of the
// rows within each group.
func (r *run) accumulateGroups(exprs []Expression, rows []solution) ([]string, map[string]*aggGroup) {
	order := []string{}
	groups := map[string]*aggGroup{}
	mark := 0
	for ri, row := range rows {
		if ri%cancelCheckRows == 0 {
			if r.cancelled() || r.overMem() {
				break // evalGrouped checks and errors out
			}
			mark = accountKept(r, rows[:ri], mark)
		}
		k, vals := r.groupKey(exprs, row)
		g, ok := groups[k]
		if !ok {
			g = &aggGroup{keyVals: vals}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, row)
	}
	return order, groups
}

// groupRow evaluates HAVING and the projection for one group, reporting
// whether the group survives. For HAVING/ORDER BY on grouped results we
// evaluate against a representative row (the first of the group, or an
// empty row).
func (r *run) groupRow(q *Query, g *aggGroup) ([]rdf.Term, bool) {
	rep := make(solution, len(r.vt.names))
	if len(g.rows) > 0 {
		rep = g.rows[0]
	}
	for _, h := range q.Having {
		v, err := r.evalAggExpr(h, g.rows, rep)
		if err != nil {
			return nil, false
		}
		b, err := ebv(v)
		if err != nil || !b {
			return nil, false
		}
	}
	orow := make([]rdf.Term, len(q.Projection))
	for i, it := range q.Projection {
		if it.Expr == nil {
			if idx, ok := r.vt.index[it.Var]; ok && len(g.rows) > 0 {
				orow[i] = rep[idx]
			}
			continue
		}
		if v, err := r.evalAggExpr(it.Expr, g.rows, rep); err == nil {
			orow[i] = v
		}
	}
	return orow, true
}

func (r *run) evalGrouped(q *Query, rows []solution) (*Results, error) {
	in := len(rows)
	sp := r.trace.StartChild("AGGREGATE", "", in)
	sp.SetEst(estimateGroups(in))
	order, groups := r.accumulateGroupsPar(q.GroupBy, rows)
	if r.cancelled() {
		return nil, r.cancelErr()
	}
	if r.overMem() {
		return nil, r.memErr()
	}
	// A grouped query with no GROUP BY clause (implicit grouping, e.g.
	// SELECT (COUNT(*) AS ?n)) forms a single group even when empty.
	if len(q.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &aggGroup{}
		order = append(order, "")
	}

	var vars []string
	for _, it := range q.Projection {
		vars = append(vars, it.Var)
	}
	out := &Results{Vars: vars}
	out.Rows = r.groupRowsPar(q, order, groups)
	if r.cancelled() {
		return nil, r.cancelErr()
	}
	if accountNew(r, out.Rows, 0); r.overMem() {
		return nil, r.memErr()
	}
	if sp != nil {
		sp.Detail = fmt.Sprintf("%d groups", len(order))
		r.finishRows(sp, len(out.Rows), in)
	}

	if len(q.OrderBy) > 0 {
		osp := r.trace.StartChild("ORDER", "", len(out.Rows))
		osp.SetEst(int64(len(out.Rows)))
		r.sortProjected(out, q.OrderBy)
		if osp != nil {
			osp.Finish(len(out.Rows), 1)
		}
		if r.cancelled() {
			return nil, r.cancelErr()
		}
	}
	return out, nil
}

// evalAggExpr evaluates an expression that may contain aggregates over
// the rows of one group; non-aggregate parts use the representative
// row.
func (r *run) evalAggExpr(e Expression, groupRows []solution, rep solution) (rdf.Term, error) {
	switch x := e.(type) {
	case ExprAggregate:
		return r.evalAggregate(x, groupRows)
	case ExprBinary:
		l, err := r.evalAggExpr(x.L, groupRows, rep)
		if err != nil {
			return rdf.Term{}, err
		}
		rv, err := r.evalAggExpr(x.R, groupRows, rep)
		if err != nil {
			return rdf.Term{}, err
		}
		return r.evalBinary(ExprBinary{Op: x.Op, L: ExprConst{l}, R: ExprConst{rv}}, rep)
	case ExprNot:
		inner, err := r.evalAggExpr(x.X, groupRows, rep)
		if err != nil {
			return rdf.Term{}, err
		}
		return r.evalExpr(ExprNot{X: ExprConst{inner}}, rep)
	case ExprNeg:
		inner, err := r.evalAggExpr(x.X, groupRows, rep)
		if err != nil {
			return rdf.Term{}, err
		}
		return r.evalExpr(ExprNeg{X: ExprConst{inner}}, rep)
	case ExprCall:
		args := make([]Expression, len(x.Args))
		for i, a := range x.Args {
			v, err := r.evalAggExpr(a, groupRows, rep)
			if err != nil {
				return rdf.Term{}, err
			}
			args[i] = ExprConst{v}
		}
		return r.evalCall(ExprCall{Name: x.Name, Args: args}, rep)
	default:
		return r.evalExpr(e, rep)
	}
}

func (r *run) evalAggregate(agg ExprAggregate, rows []solution) (rdf.Term, error) {
	// Collect argument values (skipping evaluation errors per spec).
	var vals []rdf.Term
	if agg.Star {
		vals = make([]rdf.Term, len(rows))
		for i := range rows {
			vals[i] = rdf.NewInteger(1) // placeholder; COUNT(*) counts rows
		}
	} else {
		for _, row := range rows {
			v, err := r.evalExpr(agg.Arg, row)
			if err != nil {
				continue
			}
			vals = append(vals, v)
		}
	}
	if agg.Distinct {
		seen := make(map[rdf.Term]struct{}, len(vals))
		uniq := vals[:0]
		for _, v := range vals {
			if _, ok := seen[v]; ok {
				continue
			}
			seen[v] = struct{}{}
			uniq = append(uniq, v)
		}
		vals = uniq
	}

	switch agg.Func {
	case "COUNT":
		return rdf.NewInteger(int64(len(vals))), nil
	case "SUM":
		sum := numeric{isInt: true}
		for _, v := range vals {
			n, ok := numericOf(v)
			if !ok {
				return rdf.Term{}, errTypeError
			}
			sum = addNumeric(sum, n)
		}
		return numericTerm(sum), nil
	case "AVG":
		if len(vals) == 0 {
			return rdf.NewInteger(0), nil
		}
		sum := numeric{isInt: true}
		for _, v := range vals {
			n, ok := numericOf(v)
			if !ok {
				return rdf.Term{}, errTypeError
			}
			sum = addNumeric(sum, n)
		}
		avg := sum.asFloat() / float64(len(vals))
		if sum.isInt && avg == float64(int64(avg)) {
			return rdf.NewInteger(int64(avg)), nil
		}
		return numericTerm(numeric{f: avg}), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return rdf.Term{}, errTypeError
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := compareTerms(v, best)
			if err != nil {
				c = strings.Compare(v.Value, best.Value)
			}
			if (agg.Func == "MIN" && c < 0) || (agg.Func == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "SAMPLE":
		if len(vals) == 0 {
			return rdf.Term{}, errTypeError
		}
		return vals[0], nil
	case "GROUP_CONCAT":
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.Value
		}
		return rdf.NewLiteral(strings.Join(parts, agg.Separator)), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown aggregate %s", agg.Func)
	}
}

func addNumeric(a, b numeric) numeric {
	if a.isInt && b.isInt {
		return numeric{isInt: true, i: a.i + b.i}
	}
	return numeric{f: a.asFloat() + b.asFloat()}
}

// sortRows orders full solutions by the given conditions. On
// cancellation the comparator degrades to a constant, so the sort
// drains in cheap comparisons and the caller's next cancellation check
// discards the (arbitrarily ordered) rows.
func (r *run) sortRows(rows []solution, conds []OrderCondition) {
	short := r.sortShortCircuit()
	sort.SliceStable(rows, func(i, j int) bool {
		if short() {
			return false
		}
		for _, c := range conds {
			vi, ei := r.evalExpr(c.Expr, rows[i])
			vj, ej := r.evalExpr(c.Expr, rows[j])
			cmp := orderCompare(vi, ei, vj, ej)
			if cmp == 0 {
				continue
			}
			if c.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
}

// sortProjected orders an already-projected result table; order
// expressions may reference projected variables only.
func (r *run) sortProjected(res *Results, conds []OrderCondition) {
	idx := make(map[string]int, len(res.Vars))
	for i, v := range res.Vars {
		idx[v] = i
	}
	lookup := func(e Expression, row []rdf.Term) (rdf.Term, error) {
		v, ok := e.(ExprVar)
		if !ok {
			return rdf.Term{}, errTypeError
		}
		i, ok := idx[v.Name]
		if !ok {
			return rdf.Term{}, errUnbound
		}
		return row[i], nil
	}
	short := r.sortShortCircuit()
	sort.SliceStable(res.Rows, func(i, j int) bool {
		if short() {
			return false
		}
		for _, c := range conds {
			vi, ei := lookup(c.Expr, res.Rows[i])
			vj, ej := lookup(c.Expr, res.Rows[j])
			cmp := orderCompare(vi, ei, vj, ej)
			if cmp == 0 {
				continue
			}
			if c.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
}

// orderCompare implements the SPARQL total order for ORDER BY: errors
// and unbound sort lowest, then by term order with numeric awareness.
func orderCompare(a rdf.Term, ea error, b rdf.Term, eb error) int {
	if ea != nil && eb != nil {
		return 0
	}
	if ea != nil {
		return -1
	}
	if eb != nil {
		return 1
	}
	if c, err := compareTerms(a, b); err == nil {
		return c
	}
	return a.Compare(b)
}

func distinctRows(rows [][]rdf.Term) [][]rdf.Term {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0]
	for _, row := range rows {
		var b strings.Builder
		for _, t := range row {
			b.WriteString(t.String())
			b.WriteByte('\x00')
		}
		k := b.String()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, row)
	}
	return out
}

// Describe evaluates a DESCRIBE query: for each target resource (given
// directly or bound by the WHERE pattern) it returns the one-hop
// description — every triple with the resource as subject or object.
func (e *Engine) Describe(q *Query) ([]rdf.Triple, error) {
	return e.DescribeContext(context.Background(), q)
}

// DescribeContext is Describe under a context (see QueryContext for the
// cancellation semantics).
func (e *Engine) DescribeContext(ctx context.Context, q *Query) ([]rdf.Triple, error) {
	if q.Form != FormDescribe {
		return nil, fmt.Errorf("sparql: not a DESCRIBE query")
	}
	q = e.prepared(q)
	r := &run{e: e, vt: newVarTable(), planned: q.Planned}
	r.bindContext(ctx)
	r.bindAcct(ctx, false)
	defer r.closeAcct()
	collectVars(q, r.vt)
	for _, d := range q.Describe {
		if d.IsVar {
			r.vt.slot(d.Var)
		}
	}

	rows := []solution{make(solution, len(r.vt.names))}
	if len(q.Where.Elements) > 0 {
		var err error
		rows, err = r.evalGroup(q.Where, rows, graphCtx{})
		if err != nil {
			return nil, err
		}
	}

	targets := make(map[rdf.Term]struct{})
	for _, d := range q.Describe {
		if !d.IsVar {
			targets[d.Term] = struct{}{}
			continue
		}
		idx, ok := r.vt.index[d.Var]
		if !ok {
			continue
		}
		for _, row := range rows {
			if t := row[idx]; !t.IsZero() {
				targets[t] = struct{}{}
			}
		}
	}

	g := rdf.NewGraph()
	for t := range targets {
		for _, tr := range e.store.MatchAll(rdf.Term{}, t, rdf.Term{}, rdf.Term{}) {
			g.Add(tr)
		}
		for _, tr := range e.store.MatchAll(rdf.Term{}, rdf.Term{}, rdf.Term{}, t) {
			g.Add(tr)
		}
	}
	return g.Triples(), nil
}
