package sparql

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
)

// collectVars walks the query registering every variable in the var
// table so solutions have a stable width.
func collectVars(q *Query, vt *varTable) {
	for _, it := range q.Projection {
		vt.slot(it.Var)
		if it.Expr != nil {
			collectExprVars(it.Expr, vt)
		}
	}
	collectGroupVars(q.Where, vt)
	for _, e := range q.GroupBy {
		collectExprVars(e, vt)
	}
	for _, e := range q.Having {
		collectExprVars(e, vt)
	}
	for _, oc := range q.OrderBy {
		collectExprVars(oc.Expr, vt)
	}
	for _, tp := range q.Template {
		collectPatternTermVars(tp.S, vt)
		collectPatternTermVars(tp.P, vt)
		collectPatternTermVars(tp.O, vt)
	}
}

func collectGroupVars(g GroupGraphPattern, vt *varTable) {
	for _, el := range g.Elements {
		switch e := el.(type) {
		case TriplePattern:
			collectPatternTermVars(e.S, vt)
			collectPatternTermVars(e.P, vt)
			collectPatternTermVars(e.O, vt)
		case FilterElement:
			collectExprVars(e.Expr, vt)
		case BindElement:
			vt.slot(e.Var)
			collectExprVars(e.Expr, vt)
		case OptionalElement:
			collectGroupVars(e.Pattern, vt)
		case UnionElement:
			for _, b := range e.Branches {
				collectGroupVars(b, vt)
			}
		case MinusElement:
			collectGroupVars(e.Pattern, vt)
		case GraphElement:
			collectPatternTermVars(e.Graph, vt)
			collectGroupVars(e.Pattern, vt)
		case GroupElement:
			collectGroupVars(e.Pattern, vt)
		case ValuesElement:
			for _, v := range e.Vars {
				vt.slot(v)
			}
		case SubSelectElement:
			// Only projected variables of the subquery join with the
			// outer query.
			for _, it := range e.Query.Projection {
				vt.slot(it.Var)
			}
			if e.Query.Star {
				sub := newVarTable()
				collectVars(e.Query, sub)
				for _, n := range sub.names {
					vt.slot(n)
				}
			}
		}
	}
}

func collectPatternTermVars(pt PatternTerm, vt *varTable) {
	if pt.IsVar {
		vt.slot(pt.Var)
	}
}

func collectExprVars(e Expression, vt *varTable) {
	switch x := e.(type) {
	case ExprVar:
		vt.slot(x.Name)
	case ExprBinary:
		collectExprVars(x.L, vt)
		collectExprVars(x.R, vt)
	case ExprNot:
		collectExprVars(x.X, vt)
	case ExprNeg:
		collectExprVars(x.X, vt)
	case ExprCall:
		for _, a := range x.Args {
			collectExprVars(a, vt)
		}
	case ExprIn:
		collectExprVars(x.X, vt)
		for _, a := range x.List {
			collectExprVars(a, vt)
		}
	case ExprExists:
		collectGroupVars(x.Pattern, vt)
	case ExprAggregate:
		if x.Arg != nil {
			collectExprVars(x.Arg, vt)
		}
	}
}

// evalGroup evaluates a group graph pattern over the input solutions.
// Consecutive triple patterns form a basic graph pattern and are
// join-ordered together; other elements apply in sequence.
func (r *run) evalGroup(g GroupGraphPattern, input []solution, ctx graphCtx) ([]solution, error) {
	prevCtx := r.ctx
	r.ctx = ctx
	r.depth++
	defer func() { r.ctx = prevCtx; r.depth-- }()

	// At the top-level group only, the coordinator tracks each
	// operator's net in-flight growth and releases the previous
	// operator's live intermediate when its successor replaces it, so
	// the account's peak approximates the real high-water mark instead
	// of the cumulative total. Nested groups and worker goroutines only
	// charge; see run.depth.
	topLevel := r.depth == 1 && r.acct != nil
	var live int64

	rows := input
	var bgp []TriplePattern
	flush := func() error {
		if len(bgp) == 0 {
			return nil
		}
		// The BGP span is the parent of one JOIN span per pattern
		// (added by evalBGP in optimizer order), so the trace exposes
		// every intermediate-result size of the join chain.
		var sp *obs.Span
		saved := r.trace
		if r.trace != nil {
			detail := fmt.Sprintf("%d patterns", len(bgp))
			if r.planned {
				detail += " (planned)"
			}
			sp = r.trace.StartChild("BGP", detail, len(rows))
			r.trace = sp
		}
		bytesMark, inflightMark := r.acct.Bytes(), r.acct.Inflight()
		var err error
		rows, err = r.evalBGP(bgp, rows, ctx)
		r.trace = saved
		if sp != nil {
			// The chain's final JOIN estimate is the BGP's own output
			// estimate (each JOIN re-estimates from actual input).
			sp.SetEst(r.lastEst)
			sp.SetMem(r.acct.Bytes() - bytesMark)
			sp.Finish(len(rows), 0)
		}
		if topLevel {
			grew := r.acct.Inflight() - inflightMark
			r.acct.Release(live)
			live = grew
		}
		bgp = nil
		return err
	}

	for _, el := range g.Elements {
		// One cooperative cancellation (and memory-budget) check per
		// algebra step; operator interiors that broke out early are
		// caught here (or by the post-loop check) before truncated rows
		// can escape.
		if r.cancelled() {
			return nil, r.cancelErr()
		}
		if r.overMem() {
			return nil, r.memErr()
		}
		if tp, ok := el.(TriplePattern); ok {
			bgp = append(bgp, tp)
			continue
		}
		if err := flush(); err != nil {
			return nil, err
		}
		bytesMark, inflightMark := r.acct.Bytes(), r.acct.Inflight()
		switch e := el.(type) {
		case FilterElement:
			in := len(rows)
			sp := r.trace.StartChild("FILTER", "", in)
			sp.SetEst(estimateFilter(in))
			saved := r.suspendTrace()
			rows = r.filterRowsPar(e.Expr, rows)
			r.trace = saved
			r.finishRows(sp, len(rows), in)
		case BindElement:
			sp := r.trace.StartChild("BIND", "?"+e.Var, len(rows))
			sp.SetEst(int64(len(rows)))
			saved := r.suspendTrace()
			idx := r.vt.slot(e.Var)
			var out []solution
			for _, row := range rows {
				nrow := row.clone()
				if v, err := r.evalExpr(e.Expr, row); err == nil {
					nrow[idx] = v
				}
				out = append(out, nrow)
			}
			rows = out
			accountNew(r, rows, 0)
			r.trace = saved
			if sp != nil {
				sp.Finish(len(rows), 1)
			}
		case OptionalElement:
			// Fast path: an OPTIONAL holding exactly one triple pattern
			// (the common shape for label lookups) avoids the recursive
			// group evaluation per row.
			in := len(rows)
			if tp, ok := singleTriplePattern(e.Pattern); ok {
				var sp *obs.Span
				if r.trace != nil {
					sp = r.trace.StartChild("OPTIONAL", patternDetail(tp), in)
					sp.SetEst(int64(in)) // left rows are preserved
				}
				saved := r.suspendTrace()
				rows = r.optionalSinglePar(tp, rows, ctx)
				r.trace = saved
				r.finishRows(sp, len(rows), in)
			} else {
				sp := r.trace.StartChild("OPTIONAL", "", in)
				sp.SetEst(int64(in))
				saved := r.suspendTrace()
				out, err := r.optionalPar(e.Pattern, rows, ctx)
				if err != nil {
					return nil, err
				}
				rows = out
				r.trace = saved
				r.finishRows(sp, len(rows), in)
			}
		case UnionElement:
			in := len(rows)
			var sp *obs.Span
			if r.trace != nil {
				sp = r.trace.StartChild("UNION", fmt.Sprintf("%d branches", len(e.Branches)), in)
				sp.SetEst(int64(in * len(e.Branches)))
			}
			saved := r.suspendTrace()
			out, err := r.unionPar(e.Branches, rows, ctx)
			if err != nil {
				return nil, err
			}
			rows = out
			r.trace = saved
			if sp != nil {
				w := 1
				if r.e.parallelism > 1 && len(e.Branches) >= 2 {
					w = min(r.e.parallelism, len(e.Branches))
				}
				sp.Finish(len(rows), w)
			}
		case MinusElement:
			// The right-side pattern evaluates once on this goroutine,
			// so its operators trace as children of the MINUS span.
			in := len(rows)
			sp := r.trace.StartChild("MINUS", "", in)
			sp.SetEst(int64(in))
			saved := r.trace
			r.trace = sp
			right, err := r.evalGroup(e.Pattern, []solution{make(solution, len(r.vt.names))}, ctx)
			r.trace = saved
			if err != nil {
				return nil, err
			}
			rows = r.minusRowsPar(rows, right)
			r.finishRows(sp, len(rows), in)
		case GraphElement:
			in := len(rows)
			var sp *obs.Span
			if r.trace != nil {
				sp = r.trace.StartChild("GRAPH", patternTermDetail(e.Graph), in)
				sp.SetEst(int64(in))
			}
			saved := r.trace
			r.trace = sp
			var out []solution
			if !e.Graph.IsVar {
				if gid, ok := r.e.store.GraphID(e.Graph.Term); ok {
					ext, err := r.evalGroup(e.Pattern, rows, graphCtx{gid: gid})
					if err != nil {
						return nil, err
					}
					out = ext
				}
			} else {
				idx := r.vt.slot(e.Graph.Var)
				for _, gid := range r.e.store.NamedGraphIDs() {
					gterm := r.e.store.Dict().Term(gid)
					// Respect an existing binding of the graph var.
					var seed []solution
					for _, row := range rows {
						if !row[idx].IsZero() && row[idx] != gterm {
							continue
						}
						nrow := row.clone()
						nrow[idx] = gterm
						seed = append(seed, nrow)
					}
					if len(seed) == 0 {
						continue
					}
					ext, err := r.evalGroup(e.Pattern, seed, graphCtx{gid: gid})
					if err != nil {
						return nil, err
					}
					out = append(out, ext...)
				}
			}
			r.trace = saved
			rows = out
			if sp != nil {
				sp.Finish(len(rows), 1)
			}
		case GroupElement:
			sp := r.trace.StartChild("GROUP", "", len(rows))
			sp.SetEst(int64(len(rows)))
			saved := r.trace
			r.trace = sp
			ext, err := r.evalGroup(e.Pattern, rows, ctx)
			r.trace = saved
			if err != nil {
				return nil, err
			}
			rows = ext
			if sp != nil {
				sp.Finish(len(rows), 1)
			}
		case ValuesElement:
			sp := r.trace.StartChild("VALUES", "", len(rows))
			sp.SetEst(int64(len(rows) * len(e.Rows)))
			rows = r.joinValues(rows, e)
			accountNew(r, rows, 0)
			if sp != nil {
				sp.Finish(len(rows), 1)
			}
		case SubSelectElement:
			sp := r.trace.StartChild("SUBSELECT", "", len(rows))
			sp.SetEst(int64(len(rows)))
			sub, err := r.evalSubSelect(e.Query, sp)
			if err != nil {
				return nil, err
			}
			rows = r.joinResults(rows, sub)
			accountNew(r, rows, 0)
			if sp != nil {
				sp.Finish(len(rows), 1)
			}
		}
		if r.acct != nil {
			// Annotate the operator's span with what it materialized and
			// replace the previous live intermediate with this one.
			if r.trace != nil {
				r.trace.LastChild().SetMem(r.acct.Bytes() - bytesMark)
			}
			if topLevel {
				grew := r.acct.Inflight() - inflightMark
				r.acct.Release(live)
				live = grew
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if r.cancelled() {
		return nil, r.cancelErr()
	}
	if r.overMem() {
		return nil, r.memErr()
	}
	return rows, nil
}

// evalSubSelect runs a nested SELECT independently and returns its
// result table; its operators trace under sp when tracing is on. The
// subquery of a planned query was planned along with its parent, so
// the planned flag follows the subquery's own mark.
func (r *run) evalSubSelect(q *Query, sp *obs.Span) (*Results, error) {
	sub := &run{e: r.e, vt: newVarTable(), trace: sp, planned: q.Planned,
		qctx: r.qctx, done: r.done, acct: r.acct, depth: r.depth}
	collectVars(q, sub.vt)
	return sub.evalSelect(q)
}

// joinResults joins the current solutions with a projected result table
// on shared variable names.
func (r *run) joinResults(rows []solution, res *Results) []solution {
	slots := make([]int, len(res.Vars))
	for i, v := range res.Vars {
		slots[i] = r.vt.slot(v)
	}
	var out []solution
	for _, row := range rows {
		for _, rrow := range res.Rows {
			nrow := row.clone()
			ok := true
			for i, slot := range slots {
				v := rrow[i]
				if v.IsZero() {
					continue
				}
				if !nrow[slot].IsZero() && nrow[slot] != v {
					ok = false
					break
				}
				nrow[slot] = v
			}
			if ok {
				out = append(out, nrow)
			}
		}
	}
	return out
}

func (r *run) joinValues(rows []solution, v ValuesElement) []solution {
	slots := make([]int, len(v.Vars))
	for i, name := range v.Vars {
		slots[i] = r.vt.slot(name)
	}
	var out []solution
	for _, row := range rows {
		for _, data := range v.Rows {
			nrow := row.clone()
			ok := true
			for i, slot := range slots {
				val := data[i]
				if val.IsZero() { // UNDEF
					continue
				}
				if !nrow[slot].IsZero() && nrow[slot] != val {
					ok = false
					break
				}
				nrow[slot] = val
			}
			if ok {
				out = append(out, nrow)
			}
		}
	}
	return out
}

// singleTriplePattern reports whether a group consists of exactly one
// plain triple pattern.
func singleTriplePattern(g GroupGraphPattern) (TriplePattern, bool) {
	if len(g.Elements) != 1 {
		return TriplePattern{}, false
	}
	tp, ok := g.Elements[0].(TriplePattern)
	if !ok || tp.Path != nil {
		return TriplePattern{}, false
	}
	return tp, true
}

// optionalSingle implements OPTIONAL { <one pattern> }: every left row
// is kept, extended by each match when there is one.
func (r *run) optionalSingle(tp TriplePattern, rows []solution, ctx graphCtx) []solution {
	gterm := r.graphTerm(ctx)
	out := make([]solution, 0, len(rows))
	mark := 0
	for ri, row := range rows {
		if ri%cancelCheckRows == 0 {
			if r.cancelled() || r.overMem() {
				break // the coordinator's next check errors out
			}
			mark = accountNew(r, out, mark)
		}
		s, sBound := r.resolve(tp.S, row)
		p, pBound := r.resolve(tp.P, row)
		o, oBound := r.resolve(tp.O, row)
		var sPat, pPat, oPat rdf.Term
		if sBound {
			sPat = s
		}
		if pBound {
			pPat = p
		}
		if oBound {
			oPat = o
		}
		matched := false
		r.e.store.Match(gterm, sPat, pPat, oPat, func(t rdf.Triple) bool {
			nrow := row.clone()
			if tp.S.IsVar && !sBound {
				idx := r.vt.index[tp.S.Var]
				if !nrow[idx].IsZero() && nrow[idx] != t.S {
					return true
				}
				nrow[idx] = t.S
			}
			if tp.P.IsVar && !pBound {
				idx := r.vt.index[tp.P.Var]
				if !nrow[idx].IsZero() && nrow[idx] != t.P {
					return true
				}
				nrow[idx] = t.P
			}
			if tp.O.IsVar && !oBound {
				idx := r.vt.index[tp.O.Var]
				if !nrow[idx].IsZero() && nrow[idx] != t.O {
					return true
				}
				nrow[idx] = t.O
			}
			matched = true
			out = append(out, nrow)
			return true
		})
		if !matched {
			out = append(out, row)
		}
	}
	accountNew(r, out, mark)
	return out
}

// compatibleSharing reports whether two solutions agree on all shared
// bound variables and share at least one.
func compatibleSharing(a, b solution) bool {
	shared := false
	for i := range a {
		if a[i].IsZero() || b[i].IsZero() {
			continue
		}
		if a[i] != b[i] {
			return false
		}
		shared = true
	}
	return shared
}

// evalBGP joins a basic graph pattern into the current solutions. For
// a planned query the pattern order is the planner's choice and is
// preserved; otherwise the runtime greedy selectivity heuristic picks
// each next pattern (unless DisableReorder pins the textual order).
func (r *run) evalBGP(patterns []TriplePattern, rows []solution, ctx graphCtx) ([]solution, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	remaining := make([]TriplePattern, len(patterns))
	copy(remaining, patterns)

	bound := make(map[string]bool)
	// Variables already bound in the input solutions count as bound for
	// selectivity estimation (probe the first row).
	for name, idx := range r.vt.index {
		if !rows[0][idx].IsZero() {
			bound[name] = true
		}
	}

	// Rows produced by a previous join iteration are exclusively owned
	// by this BGP evaluation and may be extended in place when a
	// pattern matches exactly once; the input rows are shared with the
	// caller and must be cloned.
	owned := false
	for len(remaining) > 0 {
		if r.cancelled() {
			return nil, r.cancelErr()
		}
		next := 0
		if !r.planned && !r.e.DisableReorder && len(remaining) > 1 {
			// Prefer patterns connected to the already-bound variables;
			// a disconnected pattern forces a cartesian product and is
			// only taken when nothing else remains.
			candidates := make([]int, 0, len(remaining))
			for i, tp := range remaining {
				if patternConnected(tp, bound) {
					candidates = append(candidates, i)
				}
			}
			if len(candidates) == 0 {
				for i := range remaining {
					candidates = append(candidates, i)
				}
			}
			best := -1
			for _, i := range candidates {
				cost := r.estimateCost(remaining[i], bound, ctx)
				if best < 0 || cost < best {
					best = cost
					next = i
				}
			}
		}
		tp := remaining[next]
		remaining = append(remaining[:next], remaining[next+1:]...)

		in := len(rows)
		var sp *obs.Span
		if r.trace != nil {
			sp = r.trace.StartChild("JOIN", patternDetail(tp), in)
			r.lastEst = r.estimateJoin(tp, bound, in, ctx)
			sp.SetEst(r.lastEst)
		}
		var err error
		rows, err = r.joinPatternPar(tp, rows, ctx, owned)
		if err != nil {
			return nil, err
		}
		r.finishRows(sp, len(rows), in)
		if len(rows) == 0 {
			return nil, nil
		}
		owned = true
		markBound(tp, bound)
	}
	return rows, nil
}

// patternConnected reports whether the pattern shares a variable with
// the bound set, or has no variables at all (pure existence check), or
// the bound set is still empty (any pattern may start the join).
func patternConnected(tp TriplePattern, bound map[string]bool) bool {
	if len(bound) == 0 {
		return true
	}
	vars := 0
	for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar {
			vars++
			if bound[pt.Var] {
				return true
			}
		}
	}
	return vars == 0
}

func markBound(tp TriplePattern, bound map[string]bool) {
	for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar {
			bound[pt.Var] = true
		}
	}
}

// estimateCost returns the store's exact count for the pattern with
// bound variables treated as constants of unknown value (estimated by
// the count with that position wildcarded). Lower is better.
func (r *run) estimateCost(tp TriplePattern, bound map[string]bool, ctx graphCtx) int {
	var pat store.IDTriple
	lookup := func(pt PatternTerm) (store.ID, bool) {
		if pt.IsVar {
			return store.NoID, true
		}
		id, ok := r.e.store.Dict().Lookup(pt.Term)
		if !ok {
			return store.NoID, false
		}
		return id, true
	}
	var ok bool
	if pat.S, ok = lookup(tp.S); !ok {
		return 0
	}
	if tp.Path == nil {
		if pat.P, ok = lookup(tp.P); !ok {
			return 0
		}
	}
	if pat.O, ok = lookup(tp.O); !ok {
		return 0
	}
	count := r.e.store.Count(ctx.gid, pat)
	// A variable that is already bound restricts the result further;
	// reward patterns touching bound variables.
	discount := 1
	if tp.S.IsVar && bound[tp.S.Var] {
		discount *= 8
	}
	if tp.O.IsVar && bound[tp.O.Var] {
		discount *= 4
	}
	if tp.P.IsVar && bound[tp.P.Var] {
		discount *= 2
	}
	return count / discount
}

// joinPattern extends every solution with the matches of one pattern.
// Input rows are never mutated.
func (r *run) joinPattern(tp TriplePattern, rows []solution, ctx graphCtx) ([]solution, error) {
	return r.joinPatternOwned(tp, rows, ctx, false)
}

// joinPatternOwned is joinPattern with an ownership hint: when owned is
// true, an input row with exactly one match is extended in place
// instead of cloned, which removes the dominant allocation cost of
// long functional join chains (one row per observation through every
// pattern of a generated OLAP query).
func (r *run) joinPatternOwned(tp TriplePattern, rows []solution, ctx graphCtx, owned bool) ([]solution, error) {
	if tp.Path != nil {
		return r.joinPath(tp, rows, ctx)
	}
	gterm := rdf.Term{}
	if ctx.gid != store.NoID {
		gterm = r.e.store.Dict().Term(ctx.gid)
	}
	out := make([]solution, 0, len(rows))
	mark := 0
	for ri, row := range rows {
		if ri%cancelCheckRows == 0 {
			if r.cancelled() {
				return nil, r.cancelErr()
			}
			if mark = accountNew(r, out, mark); r.overMem() {
				return nil, r.memErr()
			}
		}
		s, sBound := r.resolve(tp.S, row)
		p, pBound := r.resolve(tp.P, row)
		o, oBound := r.resolve(tp.O, row)
		var sPat, pPat, oPat rdf.Term
		if sBound {
			sPat = s
		}
		if pBound {
			pPat = p
		}
		if oBound {
			oPat = o
		}
		// extend writes the pattern's bindings into dst, reporting
		// whether repeated-variable constraints hold.
		extend := func(dst solution, t rdf.Triple) bool {
			if tp.S.IsVar && !sBound {
				idx := r.vt.index[tp.S.Var]
				if !dst[idx].IsZero() && dst[idx] != t.S {
					return false
				}
				dst[idx] = t.S
			}
			if tp.P.IsVar && !pBound {
				idx := r.vt.index[tp.P.Var]
				if !dst[idx].IsZero() && dst[idx] != t.P {
					return false
				}
				dst[idx] = t.P
			}
			if tp.O.IsVar && !oBound {
				idx := r.vt.index[tp.O.Var]
				if !dst[idx].IsZero() && dst[idx] != t.O {
					return false
				}
				dst[idx] = t.O
			}
			return true
		}

		var first rdf.Triple
		matches := 0
		r.e.store.Match(gterm, sPat, pPat, oPat, func(t rdf.Triple) bool {
			// A single unselective pattern can scan the whole store for
			// one input row, so the scan itself checks for cancellation
			// too (stopping the scan; the caller then errors out).
			matches++
			if matches%(cancelCheckRows*4) == 0 && r.cancelled() {
				return false
			}
			switch matches {
			case 1:
				first = t
			case 2:
				// More than one match: fall back to cloning, emitting
				// the deferred first match now.
				if nrow := row.clone(); extend(nrow, first) {
					out = append(out, nrow)
				}
				fallthrough
			default:
				if nrow := row.clone(); extend(nrow, t) {
					out = append(out, nrow)
				}
			}
			return true
		})
		if matches == 1 {
			dst := row
			if !owned {
				dst = row.clone()
			}
			if extend(dst, first) {
				out = append(out, dst)
			}
		}
	}
	accountNew(r, out, mark)
	return out, nil
}
