package sparql

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/store"
)

// joinPath extends solutions through a property-path pattern. Closure
// paths (* and +) require at least one bound endpoint per solution.
func (r *run) joinPath(tp TriplePattern, rows []solution, ctx graphCtx) ([]solution, error) {
	var out []solution
	for ri, row := range rows {
		if ri%cancelCheckRows == 0 && r.cancelled() {
			return nil, r.cancelErr()
		}
		s, sBound := r.resolve(tp.S, row)
		o, oBound := r.resolve(tp.O, row)
		var sPat, oPat rdf.Term
		if sBound {
			sPat = s
		}
		if oBound {
			oPat = o
		}
		pairs, err := r.pathPairs(tp.Path, sPat, oPat, ctx)
		if err != nil {
			return nil, err
		}
		for _, pr := range pairs {
			nrow := row.clone()
			if tp.S.IsVar && !sBound {
				idx := r.vt.index[tp.S.Var]
				if !nrow[idx].IsZero() && nrow[idx] != pr[0] {
					continue
				}
				nrow[idx] = pr[0]
			}
			if tp.O.IsVar && !oBound {
				idx := r.vt.index[tp.O.Var]
				if !nrow[idx].IsZero() && nrow[idx] != pr[1] {
					continue
				}
				nrow[idx] = pr[1]
			}
			out = append(out, nrow)
		}
	}
	return out, nil
}

// pathPairs enumerates the (start, end) node pairs connected by the
// path in the active graph. A zero term constrains nothing.
func (r *run) pathPairs(p *PropertyPath, s, o rdf.Term, ctx graphCtx) ([][2]rdf.Term, error) {
	switch p.Kind {
	case PathIRI:
		var out [][2]rdf.Term
		r.e.store.Match(r.graphTerm(ctx), s, p.IRI, o, func(t rdf.Triple) bool {
			out = append(out, [2]rdf.Term{t.S, t.O})
			return true
		})
		return out, nil
	case PathInverse:
		inner, err := r.pathPairs(p.Sub[0], o, s, ctx)
		if err != nil {
			return nil, err
		}
		out := make([][2]rdf.Term, len(inner))
		for i, pr := range inner {
			out[i] = [2]rdf.Term{pr[1], pr[0]}
		}
		return out, nil
	case PathAlternative:
		var out [][2]rdf.Term
		seen := make(map[[2]rdf.Term]struct{})
		for _, sub := range p.Sub {
			pairs, err := r.pathPairs(sub, s, o, ctx)
			if err != nil {
				return nil, err
			}
			for _, pr := range pairs {
				if _, ok := seen[pr]; ok {
					continue
				}
				seen[pr] = struct{}{}
				out = append(out, pr)
			}
		}
		return out, nil
	case PathSequence:
		// Fold left to right, joining on the intermediate node. The
		// final endpoint constraint applies only to the last step.
		cur, err := r.pathPairs(p.Sub[0], s, rdf.Term{}, ctx)
		if err != nil {
			return nil, err
		}
		for i := 1; i < len(p.Sub); i++ {
			last := i == len(p.Sub)-1
			endConstraint := rdf.Term{}
			if last {
				endConstraint = o
			}
			var next [][2]rdf.Term
			// Group current endpoints to avoid repeated scans. Mids are
			// visited in first-appearance order, not map order, so the
			// pair order — and with it the result row order — is
			// deterministic across runs.
			byMid := make(map[rdf.Term][]rdf.Term)
			var mids []rdf.Term
			for _, pr := range cur {
				if _, ok := byMid[pr[1]]; !ok {
					mids = append(mids, pr[1])
				}
				byMid[pr[1]] = append(byMid[pr[1]], pr[0])
			}
			for _, mid := range mids {
				starts := byMid[mid]
				pairs, err := r.pathPairs(p.Sub[i], mid, endConstraint, ctx)
				if err != nil {
					return nil, err
				}
				for _, pr := range pairs {
					for _, st := range starts {
						next = append(next, [2]rdf.Term{st, pr[1]})
					}
				}
			}
			cur = dedupePairs(next)
		}
		return cur, nil
	case PathOneOrMore, PathZeroOrMore:
		return r.closurePairs(p, s, o, ctx)
	default:
		return nil, fmt.Errorf("sparql: unsupported path kind %d", p.Kind)
	}
}

func dedupePairs(pairs [][2]rdf.Term) [][2]rdf.Term {
	seen := make(map[[2]rdf.Term]struct{}, len(pairs))
	out := pairs[:0]
	for _, pr := range pairs {
		if _, ok := seen[pr]; ok {
			continue
		}
		seen[pr] = struct{}{}
		out = append(out, pr)
	}
	return out
}

// closurePairs evaluates p+ and p* via breadth-first search from the
// bound endpoint. One endpoint must be bound.
func (r *run) closurePairs(p *PropertyPath, s, o rdf.Term, ctx graphCtx) ([][2]rdf.Term, error) {
	inner := p.Sub[0]
	zero := p.Kind == PathZeroOrMore

	switch {
	case !s.IsZero():
		reach, err := r.bfs(inner, s, false, ctx)
		if err != nil {
			return nil, err
		}
		var out [][2]rdf.Term
		if zero {
			reach = append([]rdf.Term{s}, reach...)
		}
		seen := make(map[rdf.Term]struct{})
		for _, t := range reach {
			if _, ok := seen[t]; ok {
				continue
			}
			seen[t] = struct{}{}
			if !o.IsZero() && t != o {
				continue
			}
			out = append(out, [2]rdf.Term{s, t})
		}
		return out, nil
	case !o.IsZero():
		reach, err := r.bfs(inner, o, true, ctx)
		if err != nil {
			return nil, err
		}
		var out [][2]rdf.Term
		if zero {
			reach = append([]rdf.Term{o}, reach...)
		}
		seen := make(map[rdf.Term]struct{})
		for _, t := range reach {
			if _, ok := seen[t]; ok {
				continue
			}
			seen[t] = struct{}{}
			out = append(out, [2]rdf.Term{t, o})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("sparql: closure path with both endpoints unbound is not supported")
	}
}

// bfs walks the inner path transitively from start (backwards when
// reverse is set) and returns every node reached in one or more steps.
func (r *run) bfs(inner *PropertyPath, start rdf.Term, reverse bool, ctx graphCtx) ([]rdf.Term, error) {
	visited := map[rdf.Term]struct{}{start: {}}
	frontier := []rdf.Term{start}
	var out []rdf.Term
	for len(frontier) > 0 {
		if r.cancelled() {
			return nil, r.cancelErr()
		}
		var next []rdf.Term
		for _, node := range frontier {
			var pairs [][2]rdf.Term
			var err error
			if reverse {
				pairs, err = r.pathPairs(inner, rdf.Term{}, node, ctx)
			} else {
				pairs, err = r.pathPairs(inner, node, rdf.Term{}, ctx)
			}
			if err != nil {
				return nil, err
			}
			for _, pr := range pairs {
				target := pr[1]
				if reverse {
					target = pr[0]
				}
				if _, ok := visited[target]; ok {
					continue
				}
				visited[target] = struct{}{}
				out = append(out, target)
				next = append(next, target)
			}
		}
		frontier = next
	}
	return out, nil
}

// graphTerm converts the active graph context to the term expected by
// store.Match (zero for the default graph).
func (r *run) graphTerm(ctx graphCtx) rdf.Term {
	if ctx.gid == store.NoID {
		return rdf.Term{}
	}
	return r.e.store.Dict().Term(ctx.gid)
}
