package sparql

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Sentinel errors used by expression evaluation. A type error in a
// FILTER silently removes the row, per the SPARQL semantics.
var (
	errTypeError          = errors.New("sparql: expression type error")
	errUnbound            = errors.New("sparql: unbound variable in expression")
	errPathInTemplate     = errors.New("sparql: property path not allowed in template")
	errComplexDeleteWhere = errors.New("sparql: DELETE WHERE pattern must be a basic graph pattern")
)

// numeric is a SPARQL numeric value that tracks whether it is still an
// integer, so integer arithmetic stays exact and result datatypes
// follow the operand types.
type numeric struct {
	isInt bool
	i     int64
	f     float64
}

func (n numeric) asFloat() float64 {
	if n.isInt {
		return float64(n.i)
	}
	return n.f
}

// numericOf extracts a numeric value from a literal term.
func numericOf(t rdf.Term) (numeric, bool) {
	if !t.IsLiteral() {
		return numeric{}, false
	}
	switch t.Datatype {
	case rdf.XSDInteger,
		"http://www.w3.org/2001/XMLSchema#int",
		"http://www.w3.org/2001/XMLSchema#long",
		"http://www.w3.org/2001/XMLSchema#short",
		"http://www.w3.org/2001/XMLSchema#nonNegativeInteger",
		"http://www.w3.org/2001/XMLSchema#positiveInteger":
		i, err := strconv.ParseInt(t.Value, 10, 64)
		if err != nil {
			return numeric{}, false
		}
		return numeric{isInt: true, i: i}, true
	case rdf.XSDDecimal, rdf.XSDDouble, rdf.XSDFloat:
		f, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return numeric{}, false
		}
		return numeric{f: f}, true
	default:
		return numeric{}, false
	}
}

// numericTerm converts a numeric back to a literal term.
func numericTerm(n numeric) rdf.Term {
	if n.isInt {
		return rdf.NewInteger(n.i)
	}
	// Prefer xsd:decimal rendering without exponent when exact.
	return rdf.NewTypedLiteral(strconv.FormatFloat(n.f, 'f', -1, 64), rdf.XSDDecimal)
}

// ebv computes the SPARQL effective boolean value.
func ebv(t rdf.Term) (bool, error) {
	if !t.IsLiteral() {
		return false, errTypeError
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return t.Value == "true" || t.Value == "1", nil
	case rdf.XSDString, "", rdf.RDFLangString:
		return t.Value != "", nil
	default:
		if n, ok := numericOf(t); ok {
			if n.isInt {
				return n.i != 0, nil
			}
			return n.f != 0 && !math.IsNaN(n.f), nil
		}
		return t.Value != "", nil
	}
}

// compareTerms compares two terms for the relational operators,
// returning -1/0/+1, or an error when the pair is not comparable.
func compareTerms(a, b rdf.Term) (int, error) {
	na, aok := numericOf(a)
	nb, bok := numericOf(b)
	if aok && bok {
		if na.isInt && nb.isInt {
			switch {
			case na.i < nb.i:
				return -1, nil
			case na.i > nb.i:
				return 1, nil
			default:
				return 0, nil
			}
		}
		fa, fb := na.asFloat(), nb.asFloat()
		switch {
		case fa < fb:
			return -1, nil
		case fa > fb:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.IsLiteral() && b.IsLiteral() {
		sa, sb := a.Datatype, b.Datatype
		stringish := func(dt string) bool {
			return dt == "" || dt == rdf.XSDString || dt == rdf.RDFLangString
		}
		if stringish(sa) && stringish(sb) {
			return strings.Compare(a.Value, b.Value), nil
		}
		if sa == sb {
			// Same non-numeric datatype (dates, gYear, ...): ISO lexical
			// forms order correctly as strings.
			return strings.Compare(a.Value, b.Value), nil
		}
		return 0, errTypeError
	}
	if a.IsIRI() && b.IsIRI() {
		return strings.Compare(a.Value, b.Value), nil
	}
	return 0, errTypeError
}

// equalTerms implements the '=' operator: value equality for numerics
// and plain strings, term equality otherwise.
func equalTerms(a, b rdf.Term) (bool, error) {
	if a == b {
		return true, nil
	}
	na, aok := numericOf(a)
	nb, bok := numericOf(b)
	if aok && bok {
		if na.isInt && nb.isInt {
			return na.i == nb.i, nil
		}
		return na.asFloat() == nb.asFloat(), nil
	}
	if a.IsLiteral() && b.IsLiteral() {
		stringish := func(dt string) bool { return dt == "" || dt == rdf.XSDString }
		if stringish(a.Datatype) && stringish(b.Datatype) && a.Lang == b.Lang {
			return a.Value == b.Value, nil
		}
		if a.Datatype == b.Datatype && a.Lang == b.Lang {
			return a.Value == b.Value, nil
		}
		// Different datatypes, both not numeric: per spec this is an
		// error (the values might still be equal in an unknown type
		// system).
		return false, errTypeError
	}
	return false, nil
}

// arith applies an arithmetic operator with SPARQL numeric promotion.
func arith(op BinaryOp, a, b rdf.Term) (rdf.Term, error) {
	na, aok := numericOf(a)
	nb, bok := numericOf(b)
	if !aok || !bok {
		return rdf.Term{}, errTypeError
	}
	if na.isInt && nb.isInt && op != OpDiv {
		var r int64
		switch op {
		case OpAdd:
			r = na.i + nb.i
		case OpSub:
			r = na.i - nb.i
		case OpMul:
			r = na.i * nb.i
		}
		return rdf.NewInteger(r), nil
	}
	fa, fb := na.asFloat(), nb.asFloat()
	var r float64
	switch op {
	case OpAdd:
		r = fa + fb
	case OpSub:
		r = fa - fb
	case OpMul:
		r = fa * fb
	case OpDiv:
		if fb == 0 {
			return rdf.Term{}, errTypeError
		}
		r = fa / fb
	}
	return numericTerm(numeric{f: r}), nil
}

// evalExpr evaluates an expression against a solution row. Aggregates
// are rejected here; grouped evaluation handles them separately.
func (r *run) evalExpr(e Expression, row solution) (rdf.Term, error) {
	switch x := e.(type) {
	case ExprConst:
		return x.Term, nil
	case ExprVar:
		idx, ok := r.vt.index[x.Name]
		if !ok {
			return rdf.Term{}, errUnbound
		}
		t := row[idx]
		if t.IsZero() {
			return rdf.Term{}, errUnbound
		}
		return t, nil
	case ExprBinary:
		return r.evalBinary(x, row)
	case ExprNot:
		v, err := r.evalExpr(x.X, row)
		if err != nil {
			return rdf.Term{}, err
		}
		b, err := ebv(v)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(!b), nil
	case ExprNeg:
		v, err := r.evalExpr(x.X, row)
		if err != nil {
			return rdf.Term{}, err
		}
		n, ok := numericOf(v)
		if !ok {
			return rdf.Term{}, errTypeError
		}
		if n.isInt {
			return rdf.NewInteger(-n.i), nil
		}
		return numericTerm(numeric{f: -n.f}), nil
	case ExprCall:
		return r.evalCall(x, row)
	case ExprIn:
		v, err := r.evalExpr(x.X, row)
		if err != nil {
			return rdf.Term{}, err
		}
		found := false
		for _, le := range x.List {
			lv, err := r.evalExpr(le, row)
			if err != nil {
				continue
			}
			if eq, err := equalTerms(v, lv); err == nil && eq {
				found = true
				break
			}
		}
		if x.Neg {
			found = !found
		}
		return rdf.NewBoolean(found), nil
	case ExprExists:
		rows, err := r.evalGroup(x.Pattern, []solution{row}, r.ctx)
		if err != nil {
			return rdf.Term{}, err
		}
		ok := len(rows) > 0
		if x.Neg {
			ok = !ok
		}
		return rdf.NewBoolean(ok), nil
	case ExprAggregate:
		return rdf.Term{}, fmt.Errorf("sparql: aggregate %s outside grouped projection", x.Func)
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown expression %T", e)
	}
}

func (r *run) evalBinary(x ExprBinary, row solution) (rdf.Term, error) {
	switch x.Op {
	case OpOr:
		lv, lerr := r.evalExpr(x.L, row)
		var lb bool
		if lerr == nil {
			if b, err := ebv(lv); err == nil {
				lb = b
			} else {
				lerr = err
			}
		}
		if lerr == nil && lb {
			return rdf.NewBoolean(true), nil
		}
		rv, rerr := r.evalExpr(x.R, row)
		if rerr == nil {
			if rb, err := ebv(rv); err == nil {
				if rb {
					return rdf.NewBoolean(true), nil
				}
				if lerr == nil {
					return rdf.NewBoolean(false), nil
				}
			}
		}
		return rdf.Term{}, errTypeError
	case OpAnd:
		lv, lerr := r.evalExpr(x.L, row)
		lb := false
		lok := false
		if lerr == nil {
			if b, err := ebv(lv); err == nil {
				lb, lok = b, true
			}
		}
		if lok && !lb {
			return rdf.NewBoolean(false), nil
		}
		rv, rerr := r.evalExpr(x.R, row)
		if rerr == nil {
			if rb, err := ebv(rv); err == nil {
				if !rb {
					return rdf.NewBoolean(false), nil
				}
				if lok {
					return rdf.NewBoolean(lb && rb), nil
				}
			}
		}
		return rdf.Term{}, errTypeError
	}

	l, err := r.evalExpr(x.L, row)
	if err != nil {
		return rdf.Term{}, err
	}
	rv, err := r.evalExpr(x.R, row)
	if err != nil {
		return rdf.Term{}, err
	}
	switch x.Op {
	case OpEq:
		b, err := equalTerms(l, rv)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(b), nil
	case OpNe:
		b, err := equalTerms(l, rv)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(!b), nil
	case OpLt, OpGt, OpLe, OpGe:
		c, err := compareTerms(l, rv)
		if err != nil {
			return rdf.Term{}, err
		}
		var b bool
		switch x.Op {
		case OpLt:
			b = c < 0
		case OpGt:
			b = c > 0
		case OpLe:
			b = c <= 0
		case OpGe:
			b = c >= 0
		}
		return rdf.NewBoolean(b), nil
	case OpAdd, OpSub, OpMul, OpDiv:
		return arith(x.Op, l, rv)
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown operator %d", x.Op)
}

func (r *run) evalCall(x ExprCall, row solution) (rdf.Term, error) {
	// BOUND, COALESCE and IF control evaluation of their arguments.
	switch x.Name {
	case "BOUND":
		if len(x.Args) != 1 {
			return rdf.Term{}, errTypeError
		}
		v, ok := x.Args[0].(ExprVar)
		if !ok {
			return rdf.Term{}, errTypeError
		}
		idx, ok := r.vt.index[v.Name]
		bound := ok && !row[idx].IsZero()
		return rdf.NewBoolean(bound), nil
	case "COALESCE":
		for _, a := range x.Args {
			if v, err := r.evalExpr(a, row); err == nil {
				return v, nil
			}
		}
		return rdf.Term{}, errTypeError
	case "IF":
		if len(x.Args) != 3 {
			return rdf.Term{}, errTypeError
		}
		c, err := r.evalExpr(x.Args[0], row)
		if err != nil {
			return rdf.Term{}, err
		}
		b, err := ebv(c)
		if err != nil {
			return rdf.Term{}, err
		}
		if b {
			return r.evalExpr(x.Args[1], row)
		}
		return r.evalExpr(x.Args[2], row)
	}

	args := make([]rdf.Term, len(x.Args))
	for i, a := range x.Args {
		v, err := r.evalExpr(a, row)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = v
	}
	one := func() rdf.Term { return args[0] }

	switch x.Name {
	case "STR":
		return rdf.NewLiteral(one().Value), nil
	case "LANG":
		if !one().IsLiteral() {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewLiteral(one().Lang), nil
	case "DATATYPE":
		t := one()
		if !t.IsLiteral() {
			return rdf.Term{}, errTypeError
		}
		dt := t.Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return rdf.NewIRI(dt), nil
	case "IRI", "URI":
		return rdf.NewIRI(one().Value), nil
	case "ISIRI", "ISURI":
		return rdf.NewBoolean(one().IsIRI()), nil
	case "ISLITERAL":
		return rdf.NewBoolean(one().IsLiteral()), nil
	case "ISBLANK":
		return rdf.NewBoolean(one().IsBlank()), nil
	case "ISNUMERIC":
		_, ok := numericOf(one())
		return rdf.NewBoolean(ok), nil
	case "STRLEN":
		return rdf.NewInteger(int64(len([]rune(one().Value)))), nil
	case "UCASE":
		return stringResult(one(), strings.ToUpper(one().Value)), nil
	case "LCASE":
		return stringResult(one(), strings.ToLower(one().Value)), nil
	case "CONTAINS":
		if len(args) != 2 {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewBoolean(strings.Contains(args[0].Value, args[1].Value)), nil
	case "STRSTARTS":
		if len(args) != 2 {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewBoolean(strings.HasPrefix(args[0].Value, args[1].Value)), nil
	case "STRENDS":
		if len(args) != 2 {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewBoolean(strings.HasSuffix(args[0].Value, args[1].Value)), nil
	case "SUBSTR":
		if len(args) < 2 || len(args) > 3 {
			return rdf.Term{}, errTypeError
		}
		src := []rune(args[0].Value)
		start, ok := numericOf(args[1])
		if !ok {
			return rdf.Term{}, errTypeError
		}
		from := int(start.asFloat()) - 1 // SPARQL is 1-based
		if from < 0 {
			from = 0
		}
		if from > len(src) {
			from = len(src)
		}
		to := len(src)
		if len(args) == 3 {
			length, ok := numericOf(args[2])
			if !ok {
				return rdf.Term{}, errTypeError
			}
			to = from + int(length.asFloat())
			if to > len(src) {
				to = len(src)
			}
		}
		return stringResult(args[0], string(src[from:to])), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			b.WriteString(a.Value)
		}
		return rdf.NewLiteral(b.String()), nil
	case "REGEX":
		if len(args) < 2 {
			return rdf.Term{}, errTypeError
		}
		pattern := args[1].Value
		if len(args) == 3 && strings.Contains(args[2].Value, "i") {
			pattern = "(?i)" + pattern
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewBoolean(re.MatchString(args[0].Value)), nil
	case "REPLACE":
		if len(args) < 3 {
			return rdf.Term{}, errTypeError
		}
		re, err := regexp.Compile(args[1].Value)
		if err != nil {
			return rdf.Term{}, errTypeError
		}
		return stringResult(args[0], re.ReplaceAllString(args[0].Value, args[2].Value)), nil
	case "ABS":
		n, ok := numericOf(one())
		if !ok {
			return rdf.Term{}, errTypeError
		}
		if n.isInt {
			if n.i < 0 {
				return rdf.NewInteger(-n.i), nil
			}
			return rdf.NewInteger(n.i), nil
		}
		return numericTerm(numeric{f: math.Abs(n.f)}), nil
	case "CEIL":
		return roundFunc(one(), math.Ceil)
	case "FLOOR":
		return roundFunc(one(), math.Floor)
	case "ROUND":
		return roundFunc(one(), math.Round)
	case "YEAR":
		return datePart(one(), 0, 4)
	case "MONTH":
		return datePart(one(), 5, 7)
	case "DAY":
		return datePart(one(), 8, 10)
	case "STRDT":
		if len(args) != 2 || !args[1].IsIRI() {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewTypedLiteral(args[0].Value, args[1].Value), nil
	case "STRLANG":
		if len(args) != 2 {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewLangLiteral(args[0].Value, args[1].Value), nil
	case "SAMETERM":
		if len(args) != 2 {
			return rdf.Term{}, errTypeError
		}
		return rdf.NewBoolean(args[0] == args[1]), nil
	case "LANGMATCHES":
		if len(args) != 2 {
			return rdf.Term{}, errTypeError
		}
		lang := strings.ToLower(args[0].Value)
		rng := strings.ToLower(args[1].Value)
		if rng == "*" {
			return rdf.NewBoolean(lang != ""), nil
		}
		return rdf.NewBoolean(lang == rng || strings.HasPrefix(lang, rng+"-")), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown function %s", x.Name)
}

// stringResult preserves the language tag of the source literal.
func stringResult(src rdf.Term, value string) rdf.Term {
	if src.Lang != "" {
		return rdf.NewLangLiteral(value, src.Lang)
	}
	return rdf.NewLiteral(value)
}

func roundFunc(t rdf.Term, f func(float64) float64) (rdf.Term, error) {
	n, ok := numericOf(t)
	if !ok {
		return rdf.Term{}, errTypeError
	}
	if n.isInt {
		return rdf.NewInteger(n.i), nil
	}
	return numericTerm(numeric{f: f(n.f)}), nil
}

// datePart extracts a slice of an ISO date/dateTime/gYearMonth lexical
// form and returns it as an integer.
func datePart(t rdf.Term, from, to int) (rdf.Term, error) {
	if !t.IsLiteral() || len(t.Value) < to {
		return rdf.Term{}, errTypeError
	}
	n, err := strconv.Atoi(t.Value[from:to])
	if err != nil {
		return rdf.Term{}, errTypeError
	}
	return rdf.NewInteger(int64(n)), nil
}
