package sparql

import (
	"testing"

	"repro/internal/store"
)

// FuzzParseQuery checks the SPARQL query parser never panics, and that
// anything it accepts can be evaluated against an empty store without
// panicking.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`SELECT * WHERE { ?s ?p ?o }`,
		`SELECT DISTINCT ?s (COUNT(*) AS ?n) WHERE { ?s a <http://t> } GROUP BY ?s HAVING (COUNT(*) > 1) ORDER BY DESC(?n) LIMIT 5 OFFSET 1`,
		`PREFIX ex: <http://x/> ASK { ex:a ex:p/ex:q+ ?o FILTER(?o > 3 && REGEX(STR(?o), "a")) }`,
		`CONSTRUCT { ?s <http://p> ?o } WHERE { ?s <http://q> ?o OPTIONAL { ?s <http://r> ?x } }`,
		`SELECT ?s WHERE { { ?s <http://a> 1 } UNION { ?s <http://b> 2.5 } MINUS { ?s <http://c> "x"@en } }`,
		`SELECT ?s WHERE { GRAPH ?g { ?s ?p ?o } VALUES (?s) { (<http://x>) (UNDEF) } }`,
		`SELECT ?s WHERE { ?s <http://p> [ <http://q> ( "collection" ) ] }`,
		`SELECT ?x WHERE { { SELECT (SUM(?v) AS ?x) WHERE { ?a <http://v> ?v } } FILTER(?x IN (1, 2, 3)) }`,
		`SELECT`,
		`{{{`,
		"SELECT ?s WHERE { ?s <http://p> \"unterminated }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		e := NewEngine(newEmptyTestStore())
		switch q.Form {
		case FormConstruct:
			_, _ = e.Construct(q)
		case FormAsk:
			_, _ = e.Ask(q)
		default:
			_, _ = e.Select(q)
		}
	})
}

// FuzzParseUpdate checks the update parser and executor never panic.
func FuzzParseUpdate(f *testing.F) {
	seeds := []string{
		`INSERT DATA { <http://s> <http://p> "v" }`,
		`INSERT DATA { GRAPH <http://g> { <http://s> <http://p> 1 } }`,
		`DELETE DATA { <http://s> <http://p> "v" }`,
		`DELETE WHERE { ?s ?p ?o }`,
		`DELETE { ?s ?p ?o } INSERT { ?s <http://new> ?o } WHERE { ?s ?p ?o }`,
		`CLEAR ALL ; CLEAR DEFAULT ; CLEAR GRAPH <http://g>`,
		`INSERT`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := ParseUpdate(src)
		if err != nil {
			return
		}
		_ = NewEngine(newEmptyTestStore()).Execute(u)
	})
}

func newEmptyTestStore() *store.Store { return store.New() }
